// The Kleinberg torus on the shared CSR hot path: build_kleinberg_overlay
// pinned hop-for-hop against the legacy baselines::KleinbergGrid reference
// on identical link sets, batch/scalar equivalence, and failure-view
// behaviour on a 2-D metric.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "baselines/kleinberg_grid.h"
#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "metric/grid2d.h"
#include "metric/space.h"
#include "util/rng.h"

namespace p2p {
namespace {

using graph::NodeId;

/// The per-node long-link table of a CSR overlay, as the flattened positions
/// the legacy reference stores — the bridge that pins both implementations
/// to the *same* sampled links.
std::vector<std::vector<metric::Point>> long_link_table(const graph::OverlayGraph& g) {
  std::vector<std::vector<metric::Point>> table(g.size());
  for (NodeId u = 0; u < g.size(); ++u) {
    for (const NodeId v : g.long_neighbors(u)) {
      table[u].push_back(static_cast<metric::Point>(v));
    }
  }
  return table;
}

TEST(TorusOverlay, BuilderEmitsFourLatticeLinksPlusLongLinks) {
  util::Rng rng(21);
  const std::uint32_t side = 16;
  const std::size_t q = 3;
  const auto g = graph::build_kleinberg_overlay(side, q, 2.0, rng);
  const metric::Torus2D torus(side);
  ASSERT_EQ(g.size(), torus.size());
  EXPECT_TRUE(g.dense());
  EXPECT_EQ(g.space(), metric::Space(torus));
  for (NodeId u = 0; u < g.size(); ++u) {
    ASSERT_EQ(g.short_degree(u), 4u);
    EXPECT_EQ(g.out_degree(u), 4u + q);
    // The four short links are the wrapped lattice neighbours.
    const auto neigh = g.neighbors(u);
    const auto [r, c] = torus.coords(static_cast<metric::Point>(u));
    const auto rr = static_cast<std::int64_t>(r);
    const auto cc = static_cast<std::int64_t>(c);
    EXPECT_EQ(neigh[0], static_cast<NodeId>(torus.at(rr + 1, cc)));
    EXPECT_EQ(neigh[1], static_cast<NodeId>(torus.at(rr - 1, cc)));
    EXPECT_EQ(neigh[2], static_cast<NodeId>(torus.at(rr, cc + 1)));
    EXPECT_EQ(neigh[3], static_cast<NodeId>(torus.at(rr, cc - 1)));
    // Long links land at distance >= 1 (never a self-link).
    for (const NodeId v : g.long_neighbors(u)) {
      EXPECT_NE(v, u);
      EXPECT_TRUE(torus.contains(static_cast<metric::Point>(v)));
    }
  }
}

TEST(TorusOverlay, PooledBuildMatchesSerial) {
  util::ThreadPool pool(4);
  util::Rng serial_rng(22);
  util::Rng pooled_rng(22);
  const auto serial = graph::build_kleinberg_overlay(24, 2, 2.0, serial_rng);
  const auto pooled = graph::build_kleinberg_overlay(24, 2, 2.0, pooled_rng, pool);
  ASSERT_EQ(serial.size(), pooled.size());
  for (NodeId u = 0; u < serial.size(); ++u) {
    const auto a = serial.neighbors(u);
    const auto b = pooled.neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()))
        << "u=" << u;
  }
}

/// CSR greedy routing vs the legacy reference, hop for hop, on the same
/// links, healthy and under identical dead sets.
void expect_bit_equivalent(std::uint32_t side, std::size_t q, double p_dead,
                           std::uint64_t seed) {
  util::Rng build_rng(seed);
  const auto g = graph::build_kleinberg_overlay(side, q, 2.0, build_rng);
  const baselines::KleinbergGrid legacy(side, long_link_table(g));

  // Same dead set on both sides: a bool per node and the matching view.
  util::Rng kill(seed + 1);
  std::vector<std::uint8_t> dead(g.size(), 0);
  auto view = failure::FailureView::all_alive(g);
  if (p_dead > 0.0) {
    for (NodeId u = 0; u < g.size(); ++u) {
      if (kill.next_bool(p_dead)) {
        dead[u] = 1;
        view.kill_node(u);
      }
    }
  }

  const std::size_t ttl = static_cast<std::size_t>(4) * side + 64;
  core::RouterConfig cfg;
  cfg.ttl = ttl;
  const core::Router router(g, view, cfg);

  util::Rng pick(seed + 2);
  util::Rng route_rng(seed + 3);  // terminate policy: never actually drawn
  int live_pairs = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto src = static_cast<NodeId>(pick.next_below(g.size()));
    const auto dst = static_cast<NodeId>(pick.next_below(g.size()));
    if (dead[src] != 0 || dead[dst] != 0) continue;
    ++live_pairs;
    const auto ours = router.route(src, static_cast<metric::Point>(dst), route_rng);
    const auto ref = legacy.route(static_cast<metric::Point>(src),
                                  static_cast<metric::Point>(dst),
                                  p_dead > 0.0 ? &dead : nullptr, ttl);
    ASSERT_EQ(ours.delivered(), ref.ok) << "src=" << src << " dst=" << dst;
    ASSERT_EQ(ours.hops, ref.hops) << "src=" << src << " dst=" << dst;
  }
  ASSERT_GT(live_pairs, 100);  // the comparison actually ran
}

TEST(TorusOverlay, CsrGreedyMatchesLegacyReferenceHealthy) {
  expect_bit_equivalent(32, 3, 0.0, 101);
}

TEST(TorusOverlay, CsrGreedyMatchesLegacyReferenceUnderFailures) {
  expect_bit_equivalent(24, 3, 0.3, 202);
}

TEST(TorusOverlay, CsrGreedyMatchesLegacyOnBareLattice) {
  expect_bit_equivalent(12, 0, 0.0, 303);
}

TEST(TorusOverlay, MinimumSideWiresDistinctLatticeLinksOnly) {
  // At side 2 the ±1 lattice neighbours coincide; the builder must not emit
  // duplicate slots (a slot-keyed link kill would otherwise leave the twin
  // slot alive). Each node has exactly two distinct lattice neighbours.
  util::Rng rng(71);
  const auto g = graph::build_kleinberg_overlay(2, 1, 2.0, rng);
  const metric::Torus2D torus(2);
  for (NodeId u = 0; u < g.size(); ++u) {
    ASSERT_EQ(g.short_degree(u), 2u);
    const auto neigh = g.neighbors(u);
    const auto [r, c] = torus.coords(static_cast<metric::Point>(u));
    EXPECT_EQ(neigh[0], static_cast<NodeId>(
                            torus.at(static_cast<std::int64_t>(r) + 1, c)));
    EXPECT_EQ(neigh[1], static_cast<NodeId>(
                            torus.at(r, static_cast<std::int64_t>(c) + 1)));
    EXPECT_NE(neigh[0], neigh[1]);
  }
  // Killing a lattice slot really severs the hop (no live twin slot).
  auto view = failure::FailureView::all_alive(g);
  view.kill_link(0, 0);
  EXPECT_FALSE(view.hop_usable(0, 0));
  // And routing still matches the legacy reference at this size.
  expect_bit_equivalent(2, 2, 0.0, 404);
}

TEST(TorusOverlay, RouteBatchWidthsAgreeOnTorus) {
  util::Rng rng(31);
  const auto g = graph::build_kleinberg_overlay(32, 3, 2.0, rng);
  const auto view = failure::FailureView::with_node_failures(g, 0.2, rng);
  core::RouterConfig cfg;
  cfg.stuck_policy = core::StuckPolicy::kRandomReroute;  // exercises the rng
  const core::Router router(g, view, cfg);

  constexpr std::size_t kQueries = 256;
  std::vector<core::Query> queries(kQueries);
  for (auto& qy : queries) {
    const NodeId src = view.random_alive(rng);
    NodeId dst = src;
    while (dst == src) dst = view.random_alive(rng);
    qy = {src, g.position(dst)};
  }
  const auto run_width = [&](std::size_t width) {
    std::vector<core::RouteResult> results(kQueries);
    util::Rng batch_rng(777);
    router.route_batch(queries, results, batch_rng, core::BatchConfig{width, 4});
    return results;
  };
  const auto w1 = run_width(1);
  const auto w32 = run_width(32);
  for (std::size_t i = 0; i < kQueries; ++i) {
    EXPECT_EQ(w1[i].status, w32[i].status) << "i=" << i;
    EXPECT_EQ(w1[i].hops, w32[i].hops) << "i=" << i;
    EXPECT_EQ(w1[i].reroutes, w32[i].reroutes) << "i=" << i;
    EXPECT_EQ(w1[i].completion_epoch, w32[i].completion_epoch) << "i=" << i;
  }
}

TEST(TorusOverlay, FailureViewKillReviveSmoke) {
  util::Rng rng(41);
  const auto g = graph::build_kleinberg_overlay(16, 2, 2.0, rng);
  auto view = failure::FailureView::all_alive(g);
  core::RouterConfig cfg;
  cfg.record_path = true;
  const core::Router router(g, view, cfg);

  const metric::Torus2D torus(16);
  const auto src = static_cast<NodeId>(torus.at(0, 0));
  const auto dst = static_cast<metric::Point>(torus.at(8, 8));
  const auto baseline = router.route(src, dst, rng);
  ASSERT_TRUE(baseline.delivered());
  ASSERT_GE(baseline.path.size(), 3u);  // at least one interior node

  // Kill an interior node of the healthy path; the route must now either
  // fail or avoid it. Reviving restores the exact original path.
  const NodeId blocked = baseline.path[baseline.path.size() / 2];
  view.kill_node(blocked);
  const auto detour = router.route(src, dst, rng);
  if (detour.delivered()) {
    for (const NodeId v : detour.path) EXPECT_NE(v, blocked);
  }
  view.revive_node(blocked);
  const auto healed = router.route(src, dst, rng);
  ASSERT_TRUE(healed.delivered());
  EXPECT_EQ(healed.path, baseline.path);
  EXPECT_EQ(healed.hops, baseline.hops);
}

TEST(TorusOverlay, SimdAndScalarSelectionAgreeOnTorus) {
  // On AVX-512 hosts the intact two-sided torus takes the vectorized scan
  // (reciprocal-multiplication row/col split); RouterConfig::force_scalar
  // pins it against the scalar table on the same machine, and both against
  // the allocating candidates() reference (the *_scalar CTest registration
  // additionally covers the P2P_NO_SIMD env override). Odd and
  // non-power-of-two sides exercise the wrap halves and the fixup paths.
  // Elsewhere the test passes trivially.
  for (const std::uint32_t side : {17u, 32u, 45u}) {
    util::Rng rng(side);
    const auto g = graph::build_kleinberg_overlay(side, 3, 2.0, rng);
    const auto view = failure::FailureView::all_alive(g);
    const core::Router simd_router(g, view);
    core::RouterConfig scalar_cfg;
    scalar_cfg.force_scalar = true;
    const core::Router scalar_router(g, view, scalar_cfg);
    util::Rng pick(side + 1);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto u = static_cast<NodeId>(pick.next_below(g.size()));
      const auto t = static_cast<metric::Point>(pick.next_below(g.size()));
      const NodeId with_simd = simd_router.select_candidate(u, t, 0);
      const NodeId without = scalar_router.select_candidate(u, t, 0);
      ASSERT_EQ(with_simd, without) << "side=" << side << " u=" << u << " t=" << t;
      const auto reference = scalar_router.candidates(u, t);
      ASSERT_EQ(without, reference.empty() ? graph::kInvalidNode : reference[0])
          << "side=" << side << " u=" << u << " t=" << t;
    }
  }
}

TEST(TorusOverlay, OneSidedRoutingRejectedOnTorus) {
  util::Rng rng(51);
  const auto g = graph::build_kleinberg_overlay(8, 1, 2.0, rng);
  const auto view = failure::FailureView::all_alive(g);
  core::RouterConfig cfg;
  cfg.sidedness = core::Sidedness::kOneSided;
  EXPECT_THROW(core::Router(g, view, cfg), std::invalid_argument);
  // Two-sided construction is fine.
  EXPECT_NO_THROW(core::Router(g, view));
}

TEST(TorusOverlay, OneDimensionalShortLinkWiringRejectedOnTorus) {
  graph::GraphBuilder builder{metric::Space::torus(4)};
  EXPECT_THROW(builder.wire_short_links(), std::invalid_argument);
  graph::OverlayGraph g{metric::Space::torus(4)};
  EXPECT_THROW(graph::wire_short_links(g), std::invalid_argument);
}

TEST(TorusOverlay, BuildRejectsBadParameters) {
  util::Rng rng(61);
  EXPECT_THROW(static_cast<void>(graph::build_kleinberg_overlay(1, 1, 2.0, rng)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(graph::build_kleinberg_overlay(8, 1, -1.0, rng)),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2p
