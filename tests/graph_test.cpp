// Unit + property tests for the graph substrate: overlay store, link
// distributions and the ideal builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/link_distribution.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::graph {
namespace {

using metric::Space1D;

TEST(OverlayGraph, DensePositionsAreIdentity) {
  OverlayGraph g(Space1D::ring(8));
  EXPECT_EQ(g.size(), 8u);
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(g.position(u), static_cast<metric::Point>(u));
  EXPECT_EQ(g.node_at(5), 5u);
  EXPECT_EQ(g.node_nearest(5), 5u);
}

TEST(OverlayGraph, SparsePositionsMapCorrectly) {
  OverlayGraph g(Space1D::line(100), {3, 10, 50, 99});
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.position(2), 50);
  EXPECT_EQ(g.node_at(10), 1u);
  EXPECT_EQ(g.node_at(11), kInvalidNode);
}

TEST(OverlayGraph, NodeNearestPicksClosest) {
  OverlayGraph g(Space1D::line(100), {3, 10, 50, 99});
  EXPECT_EQ(g.node_nearest(4), 0u);
  EXPECT_EQ(g.node_nearest(7), 1u);   // 7 is 4 from 3, 3 from 10
  EXPECT_EQ(g.node_nearest(30), 1u);  // 20 from 10, 20 from 50 -> lower position
  EXPECT_EQ(g.node_nearest(80), 3u);
}

TEST(OverlayGraph, NodeNearestWrapsOnRing) {
  OverlayGraph g(Space1D::ring(100), {10, 90});
  EXPECT_EQ(g.node_nearest(99), 1u);  // 9 from 90, 11 from 10 via wrap
  EXPECT_EQ(g.node_nearest(1), 0u);   // 9 from 10, 11 from 90 via wrap
}

TEST(OverlayGraph, ShortLinksMustPrecedeLongLinks) {
  OverlayGraph g(Space1D::line(4));
  g.add_short_link(0, 1);
  g.add_long_link(0, 2);
  EXPECT_THROW(g.add_short_link(0, 3), std::logic_error);
}

TEST(OverlayGraph, NeighborSpansSplitShortAndLong) {
  OverlayGraph g(Space1D::line(5));
  g.add_short_link(2, 1);
  g.add_short_link(2, 3);
  g.add_long_link(2, 0);
  EXPECT_EQ(g.short_degree(2), 2u);
  EXPECT_EQ(g.out_degree(2), 3u);
  ASSERT_EQ(g.long_neighbors(2).size(), 1u);
  EXPECT_EQ(g.long_neighbors(2)[0], 0u);
  EXPECT_EQ(g.link_count(), 3u);
}

TEST(OverlayGraph, ReplaceLongLink) {
  OverlayGraph g(Space1D::line(5));
  g.add_short_link(0, 1);
  g.add_long_link(0, 3);
  g.replace_long_link(0, 0, 4);
  EXPECT_TRUE(g.has_link(0, 4));
  EXPECT_FALSE(g.has_link(0, 3));
  EXPECT_THROW(g.replace_long_link(0, 1, 2), std::out_of_range);
}

TEST(OverlayGraph, ClearLinksResetsDegrees) {
  OverlayGraph g(Space1D::line(5));
  g.add_short_link(0, 1);
  g.add_long_link(0, 3);
  g.clear_links(0);
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.short_degree(0), 0u);
  EXPECT_EQ(g.link_count(), 0u);
}

TEST(OverlayGraph, InDegreesCountIncomingLinks) {
  OverlayGraph g(Space1D::line(4));
  g.add_long_link(0, 2);
  g.add_long_link(1, 2);
  g.add_long_link(3, 2);
  g.add_long_link(2, 0);
  const auto in = g.in_degrees();
  EXPECT_EQ(in[2], 3u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 0u);
}

TEST(OverlayGraph, LongLinkLengths) {
  OverlayGraph g(Space1D::ring(10));
  g.add_short_link(0, 1);
  g.add_long_link(0, 4);  // length 4
  g.add_long_link(0, 9);  // length 1 on the ring
  const auto lengths = g.long_link_lengths();
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 4u);
  EXPECT_EQ(lengths[1], 1u);
}

TEST(OverlayGraph, RejectsUnsortedSparsePositions) {
  EXPECT_THROW(OverlayGraph(Space1D::line(10), {5, 3}), std::invalid_argument);
  EXPECT_THROW(OverlayGraph(Space1D::line(10), {3, 3}), std::invalid_argument);
  EXPECT_THROW(OverlayGraph(Space1D::line(10), {3, 11}), std::invalid_argument);
}

// -- Power-law sampler --------------------------------------------------------

TEST(PowerLawLinkSampler, NeverReturnsSource) {
  const PowerLawLinkSampler s(Space1D::ring(64), 1.0);
  util::Rng rng(1);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(s.sample_target(rng, 17), 17);
}

TEST(PowerLawLinkSampler, ProbabilitiesSumToOneOnRing) {
  const PowerLawLinkSampler s(Space1D::ring(16), 1.0);
  double total = 0.0;
  for (metric::Point v = 0; v < 16; ++v) total += s.probability(3, v);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PowerLawLinkSampler, ProbabilitiesSumToOneOnLine) {
  for (const metric::Point src : {0, 5, 15}) {
    const PowerLawLinkSampler s(Space1D::line(16), 1.0);
    double total = 0.0;
    for (metric::Point v = 0; v < 16; ++v) total += s.probability(src, v);
    EXPECT_NEAR(total, 1.0, 1e-12) << "src=" << src;
  }
}

TEST(PowerLawLinkSampler, InverseDistanceShapeOnRing) {
  const PowerLawLinkSampler s(Space1D::ring(64), 1.0);
  // P(distance d) should be proportional to 1/d for each individual node.
  const double p1 = s.probability(0, 1);
  const double p4 = s.probability(0, 4);
  const double p16 = s.probability(0, 16);
  EXPECT_NEAR(p1 / p4, 4.0, 1e-9);
  EXPECT_NEAR(p4 / p16, 4.0, 1e-9);
}

TEST(PowerLawLinkSampler, ExponentZeroIsUniform) {
  const PowerLawLinkSampler s(Space1D::ring(32), 0.0);
  const double p = s.probability(0, 1);
  for (metric::Point v = 1; v < 32; ++v) {
    EXPECT_NEAR(s.probability(0, v), p, 1e-12);
  }
}

TEST(PowerLawLinkSampler, EmpiricalMatchesExactOnRing) {
  const Space1D space = Space1D::ring(128);
  const PowerLawLinkSampler s(space, 1.0);
  util::Rng rng(7);
  constexpr int kDraws = 400'000;
  std::vector<double> freq(128, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    freq[static_cast<std::size_t>(s.sample_target(rng, 0))] += 1.0;
  }
  for (metric::Point v = 1; v < 128; ++v) {
    const double p = s.probability(0, v);
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(freq[static_cast<std::size_t>(v)] / kDraws, p, 6 * sigma + 1e-4)
        << "v=" << v;
  }
}

TEST(PowerLawLinkSampler, EmpiricalMatchesExactOnLineEdges) {
  // A node at the line's edge has only one side to link to.
  const Space1D space = Space1D::line(64);
  const PowerLawLinkSampler s(space, 1.0);
  util::Rng rng(9);
  constexpr int kDraws = 200'000;
  std::vector<double> freq(64, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    const metric::Point t = s.sample_target(rng, 0);
    ASSERT_GT(t, 0);
    freq[static_cast<std::size_t>(t)] += 1.0;
  }
  for (metric::Point v = 1; v < 64; ++v) {
    const double p = s.probability(0, v);
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(freq[static_cast<std::size_t>(v)] / kDraws, p, 6 * sigma + 1e-4);
  }
}

TEST(PowerLawLinkSampler, TinySpaces) {
  util::Rng rng(11);
  const PowerLawLinkSampler ring2(Space1D::ring(2), 1.0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ring2.sample_target(rng, 0), 1);
  const PowerLawLinkSampler ring3(Space1D::ring(3), 1.0);
  for (int i = 0; i < 20; ++i) EXPECT_NE(ring3.sample_target(rng, 1), 1);
  const PowerLawLinkSampler line2(Space1D::line(2), 1.0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(line2.sample_target(rng, 1), 0);
}

TEST(PowerLawLinkSampler, RejectsBadParameters) {
  EXPECT_THROW(PowerLawLinkSampler(Space1D::ring(1), 1.0), std::invalid_argument);
  EXPECT_THROW(PowerLawLinkSampler(Space1D::ring(8), -0.5), std::invalid_argument);
}

// -- Deterministic link sets ---------------------------------------------------

TEST(BaseBOffsets, FullSetBase2) {
  // {1, 2, 4, 8} for n = 16 (digits {1} times powers below n).
  EXPECT_EQ(base_b_full_offsets(16, 2),
            (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

TEST(BaseBOffsets, FullSetBase4) {
  // digits {1,2,3} x powers {1,4,16} -> {1,2,3,4,8,12,16,32,48} for n = 64.
  EXPECT_EQ(base_b_full_offsets(64, 4),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 8, 12, 16, 32, 48}));
}

TEST(BaseBOffsets, PowersOnlySet) {
  EXPECT_EQ(base_b_power_offsets(100, 10), (std::vector<std::uint64_t>{1, 10}));
  EXPECT_EQ(base_b_power_offsets(101, 10),
            (std::vector<std::uint64_t>{1, 10, 100}));
}

TEST(BaseBOffsets, CanExpressEveryDistance) {
  // Greedy digit elimination must be able to cover any distance below n.
  const std::uint64_t n = 1000;
  for (const unsigned base : {2u, 3u, 10u}) {
    const auto offsets = base_b_full_offsets(n, base);
    for (std::uint64_t target : {1ULL, 7ULL, 999ULL, 512ULL}) {
      std::uint64_t remaining = target;
      std::size_t steps = 0;
      while (remaining > 0 && steps < 64) {
        // largest offset <= remaining
        const auto it =
            std::upper_bound(offsets.begin(), offsets.end(), remaining);
        ASSERT_NE(it, offsets.begin());
        remaining -= *std::prev(it);
        ++steps;
      }
      EXPECT_EQ(remaining, 0u) << "base=" << base << " target=" << target;
    }
  }
}

TEST(BaseBOffsets, RejectBadParameters) {
  EXPECT_THROW(base_b_full_offsets(10, 1), std::invalid_argument);
  EXPECT_THROW(base_b_full_offsets(1, 2), std::invalid_argument);
  EXPECT_THROW(base_b_power_offsets(10, 0), std::invalid_argument);
}

// -- Unified sampler on the Kleinberg torus -----------------------------------

TEST(TorusSampler, NeverReturnsSourceAndStaysInGrid) {
  const metric::Torus2D torus(8);
  const PowerLawLinkSampler s(metric::Space(torus), 2.0);
  util::Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const metric::Point t = s.sample_target(rng, 11);
    EXPECT_NE(t, 11);
    EXPECT_TRUE(torus.contains(t));
  }
}

TEST(TorusSampler, RadiusDistributionMatchesWeights) {
  const metric::Torus2D torus(9);
  const double r = 2.0;
  const PowerLawLinkSampler s(metric::Space(torus), r);
  util::Rng rng(17);
  constexpr int kDraws = 200'000;
  std::vector<double> by_radius(torus.diameter() + 1, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    by_radius[torus.distance(0, s.sample_target(rng, 0))] += 1.0;
  }
  double norm = 0.0;
  for (metric::Distance d = 1; d <= torus.diameter(); ++d) {
    norm += static_cast<double>(torus.ring_size(d)) * std::pow(d, -r);
  }
  for (metric::Distance d = 1; d <= torus.diameter(); ++d) {
    const double expect =
        static_cast<double>(torus.ring_size(d)) * std::pow(d, -r) / norm;
    const double sigma = std::sqrt(expect * (1 - expect) / kDraws);
    EXPECT_NEAR(by_radius[d] / kDraws, expect, 6 * sigma + 2e-3) << "d=" << d;
  }
}

// -- Ideal builder --------------------------------------------------------------

TEST(GraphBuilder, ShortLinksWireNearestNeighbours) {
  util::Rng rng(19);
  BuildSpec spec;
  spec.grid_size = 16;
  spec.long_links = 1;
  const OverlayGraph g = build_overlay(spec, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_EQ(g.short_degree(u), 2u) << "ring nodes have two immediate links";
    const auto neigh = g.neighbors(u);
    const NodeId next = static_cast<NodeId>((u + 1) % g.size());
    const NodeId prev = static_cast<NodeId>((u + g.size() - 1) % g.size());
    EXPECT_TRUE(std::find(neigh.begin(), neigh.end(), next) != neigh.end());
    EXPECT_TRUE(std::find(neigh.begin(), neigh.end(), prev) != neigh.end());
  }
}

TEST(GraphBuilder, LineEndpointsHaveOneShortLink) {
  util::Rng rng(23);
  BuildSpec spec;
  spec.grid_size = 16;
  spec.topology = Space1D::Kind::kLine;
  const OverlayGraph g = build_overlay(spec, rng);
  EXPECT_EQ(g.short_degree(0), 1u);
  EXPECT_EQ(g.short_degree(15), 1u);
  EXPECT_EQ(g.short_degree(7), 2u);
}

TEST(GraphBuilder, LongLinkCountMatchesSpec) {
  util::Rng rng(29);
  BuildSpec spec;
  spec.grid_size = 256;
  spec.long_links = 5;
  const OverlayGraph g = build_overlay(spec, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_EQ(g.long_neighbors(u).size(), 5u);
  }
}

TEST(GraphBuilder, BinomialPresenceThinsTheGrid) {
  util::Rng rng(31);
  BuildSpec spec;
  spec.grid_size = 4096;
  spec.presence = 0.5;
  const OverlayGraph g = build_overlay(spec, rng);
  EXPECT_GT(g.size(), 1800u);
  EXPECT_LT(g.size(), 2300u);
  // Every node still has its two ring short links to *existing* neighbours.
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_GE(g.out_degree(u), g.short_degree(u));
  }
}

TEST(GraphBuilder, SparseLinksOnlyTargetExistingNodes) {
  util::Rng rng(37);
  BuildSpec spec;
  spec.grid_size = 1024;
  spec.presence = 0.3;
  spec.long_links = 3;
  const OverlayGraph g = build_overlay(spec, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_LT(v, g.size());
    }
  }
}

TEST(GraphBuilder, BaseBFullLinksBothDirections) {
  util::Rng rng(41);
  BuildSpec spec;
  spec.grid_size = 64;
  spec.link_model = BuildSpec::LinkModel::kBaseBFull;
  spec.base = 2;
  const OverlayGraph g = build_overlay(spec, rng);
  // Node 32 on a 64-ring: offsets 1..32 both ways; offset 1 duplicates the
  // short links, so long links include ±2, ±4, ±8, ±16, ±32(=antipode).
  const auto neigh = g.neighbors(32);
  EXPECT_TRUE(std::find(neigh.begin(), neigh.end(), 34u) != neigh.end());
  EXPECT_TRUE(std::find(neigh.begin(), neigh.end(), 30u) != neigh.end());
  EXPECT_TRUE(std::find(neigh.begin(), neigh.end(), 0u) != neigh.end());
}

TEST(GraphBuilder, RejectsBadSpecs) {
  util::Rng rng(43);
  BuildSpec spec;
  spec.grid_size = 1;
  EXPECT_THROW(build_overlay(spec, rng), std::invalid_argument);
  spec.grid_size = 16;
  spec.presence = 0.0;
  EXPECT_THROW(build_overlay(spec, rng), std::invalid_argument);
  spec.presence = 1.0;
  spec.exponent = -1.0;
  EXPECT_THROW(build_overlay(spec, rng), std::invalid_argument);
}

TEST(GraphBuilder, BidirectionalAddsEveryReverseLink) {
  util::Rng rng(53);
  BuildSpec spec;
  spec.grid_size = 256;
  spec.long_links = 4;
  spec.bidirectional = true;
  const OverlayGraph g = build_overlay(spec, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    for (const NodeId v : g.long_neighbors(u)) {
      EXPECT_TRUE(g.has_link(v, u)) << u << " -> " << v << " lacks a reverse";
    }
  }
}

TEST(GraphBuilder, BidirectionalAddsNoDuplicates) {
  util::Rng rng(59);
  BuildSpec spec;
  spec.grid_size = 128;
  spec.long_links = 3;
  spec.bidirectional = true;
  const OverlayGraph g = build_overlay(spec, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    const auto longs = g.long_neighbors(u);
    // A reverse link is added only when absent, so each (u, v) long pair
    // appears at most twice total only if the forward side was drawn twice.
    std::size_t reverse_added = 0;
    for (const NodeId v : longs) {
      if (g.has_link(v, u)) ++reverse_added;
    }
    EXPECT_EQ(reverse_added, longs.size());
  }
}

TEST(GraphBuilder, AggregateLinkLengthsFollowInverseLaw) {
  // The builder's empirical length distribution must match 1/d: the exact
  // check behind Figure 5's "ideal" curve.
  util::Rng rng(47);
  BuildSpec spec;
  spec.grid_size = 512;
  spec.long_links = 8;
  const OverlayGraph g = build_overlay(spec, rng);
  const auto lengths = g.long_link_lengths();
  std::vector<double> count(g.space().diameter() + 1, 0.0);
  for (const auto d : lengths) count[d] += 1.0;
  // Compare mass at d=1 vs d=16: ratio should be ~16 (both sides of ring).
  ASSERT_GT(count[16], 0.0);
  const double ratio = count[1] / count[16];
  EXPECT_GT(ratio, 16.0 * 0.7);
  EXPECT_LT(ratio, 16.0 * 1.4);
}

// ---------------------------------------------------------------------------
// Pool-parallel builder paths must be bit-identical to their serial twins.

void expect_graphs_identical(const OverlayGraph& got, const OverlayGraph& want,
                             const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  ASSERT_EQ(got.link_count(), want.link_count()) << label;
  ASSERT_EQ(got.edge_slots(), want.edge_slots()) << label;
  for (NodeId u = 0; u < got.size(); ++u) {
    ASSERT_EQ(got.position(u), want.position(u)) << label << " node " << u;
    ASSERT_EQ(got.short_degree(u), want.short_degree(u)) << label << " node " << u;
    ASSERT_EQ(got.edge_base(u), want.edge_base(u)) << label << " node " << u;
    const auto a = got.neighbors(u);
    const auto b = want.neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << label << " node " << u;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << label << " node " << u << " link " << i;
    }
  }
}

/// One builder state with duplicate long links and missing reverses — the
/// corner cases make_bidirectional's serial/parallel equivalence hinges on.
GraphBuilder tricky_builder(std::uint64_t n, std::uint64_t seed) {
  GraphBuilder b(Space1D::ring(n));
  b.wire_short_links();
  util::Rng rng(seed);
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t links = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < links; ++k) {
      NodeId v = static_cast<NodeId>(rng.next_below(n));
      if (v == u) v = static_cast<NodeId>((u + 1) % n);
      b.add_long_link(u, v);  // duplicates allowed, as in sampling w/ replacement
    }
  }
  return b;
}

TEST(GraphBuilderParallel, FreezeMatchesSerial) {
  util::ThreadPool pool(4);
  GraphBuilder serial = tricky_builder(2048, 21);
  GraphBuilder parallel = tricky_builder(2048, 21);
  const OverlayGraph a = serial.freeze();
  const OverlayGraph b = parallel.freeze(pool);
  expect_graphs_identical(b, a, "freeze");
}

TEST(GraphBuilderParallel, MakeBidirectionalMatchesSerial) {
  util::ThreadPool pool(4);
  GraphBuilder serial = tricky_builder(2048, 22);
  GraphBuilder parallel = tricky_builder(2048, 22);
  serial.make_bidirectional();
  parallel.make_bidirectional(pool);
  const OverlayGraph a = serial.freeze();
  const OverlayGraph b = parallel.freeze(pool);
  expect_graphs_identical(b, a, "make_bidirectional");
}

TEST(GraphBuilderParallel, SmallBuildersFallBackToSerial) {
  util::ThreadPool pool(4);
  GraphBuilder serial = tricky_builder(64, 23);
  GraphBuilder parallel = tricky_builder(64, 23);
  serial.make_bidirectional();
  parallel.make_bidirectional(pool);  // below the parallel threshold
  expect_graphs_identical(parallel.freeze(pool), serial.freeze(), "small");
}

TEST(GraphBuilderParallel, BidirectionalBuildOverlayMatchesSerial) {
  BuildSpec spec;
  spec.grid_size = 4096;
  spec.long_links = 6;
  spec.bidirectional = true;
  util::Rng rng_a(24), rng_b(24);
  util::ThreadPool pool(4);
  const OverlayGraph a = build_overlay(spec, rng_a);
  const OverlayGraph b = build_overlay(spec, rng_b, pool);
  expect_graphs_identical(b, a, "build_overlay bidirectional");
}

TEST(OverlayGraph, StructuralGenerationTracksSlotMoves) {
  GraphBuilder builder(Space1D::ring(8));
  builder.wire_short_links();
  OverlayGraph g = builder.freeze();
  EXPECT_EQ(g.structural_generation(), 0u);
  g.clear_links(3);
  EXPECT_EQ(g.structural_generation(), 0u);  // truncation reserves slots
  g.add_short_link(3, 4);                    // slot reuse
  EXPECT_EQ(g.structural_generation(), 0u);
  g.add_short_link(3, 2);  // second reuse
  EXPECT_EQ(g.structural_generation(), 0u);
  g.add_long_link(3, 6);  // out of reserved slots: the flat arrays shift
  EXPECT_EQ(g.structural_generation(), 1u);
  g.add_long_link(5, 1);
  EXPECT_EQ(g.structural_generation(), 2u);
}

}  // namespace
}  // namespace p2p::graph
