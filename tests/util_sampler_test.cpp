// Unit + property tests for util/prefix_sampler.h.
//
// Both samplers must realize the weight vector exactly; the parameterized
// sweep checks empirical frequencies against exact probabilities for several
// weight shapes, including the 1/d shape the overlay uses.
#include "util/prefix_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace p2p::util {
namespace {

TEST(PrefixSampler, SingleElement) {
  PrefixSampler s(std::vector<double>{3.0});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(s.probability(0), 1.0);
}

TEST(PrefixSampler, ZeroWeightNeverSampled) {
  PrefixSampler s(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(s.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(s.probability(1), 0.0);
}

TEST(PrefixSampler, ProbabilitiesSumToOne) {
  PrefixSampler s(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  double total = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) total += s.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(s.probability(3), 0.4, 1e-12);
}

TEST(PrefixSampler, RejectsBadWeights) {
  EXPECT_THROW(PrefixSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(PrefixSampler(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(PrefixSampler(std::vector<double>{1.0, -1.0}), std::invalid_argument);
}

TEST(AliasSampler, RejectsBadWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{-2.0, 1.0}), std::invalid_argument);
}

// -- Parameterized frequency sweep ------------------------------------------

struct WeightCase {
  std::string name;
  std::vector<double> weights;
};

class SamplerFrequency : public ::testing::TestWithParam<WeightCase> {};

std::vector<double> empirical(const std::function<std::size_t(Rng&)>& draw,
                              std::size_t size, int draws, Rng& rng) {
  std::vector<double> freq(size, 0.0);
  for (int i = 0; i < draws; ++i) freq[draw(rng)] += 1.0;
  for (double& f : freq) f /= draws;
  return freq;
}

TEST_P(SamplerFrequency, PrefixMatchesExactDistribution) {
  const auto& [name, weights] = GetParam();
  const PrefixSampler sampler(weights);
  Rng rng(99);
  constexpr int kDraws = 200'000;
  const auto freq = empirical([&](Rng& r) { return sampler.sample(r); },
                              weights.size(), kDraws, rng);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p = sampler.probability(i);
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(freq[i], p, 6 * sigma + 1e-4) << name << " index " << i;
  }
}

TEST_P(SamplerFrequency, AliasMatchesPrefixDistribution) {
  const auto& [name, weights] = GetParam();
  const PrefixSampler exact(weights);
  const AliasSampler sampler(weights);
  Rng rng(101);
  constexpr int kDraws = 200'000;
  const auto freq = empirical([&](Rng& r) { return sampler.sample(r); },
                              weights.size(), kDraws, rng);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p = exact.probability(i);
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(freq[i], p, 6 * sigma + 1e-4) << name << " index " << i;
  }
}

std::vector<double> inverse_distance_weights(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = 1.0 / static_cast<double>(i + 1);
  return w;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SamplerFrequency,
    ::testing::Values(
        WeightCase{"uniform", {1, 1, 1, 1, 1, 1, 1, 1}},
        WeightCase{"skewed", {100, 1, 1, 1, 1}},
        WeightCase{"inverse_distance", inverse_distance_weights(32)},
        WeightCase{"with_zeros", {0, 5, 0, 5, 0}},
        WeightCase{"two_point", {0.25, 0.75}}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace p2p::util
