// Unit tests for the analysis library: bound formulas, the KUW integral and
// least-squares shape fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "analysis/bounds.h"
#include "analysis/fit.h"
#include "util/harmonic.h"

namespace p2p::analysis {
namespace {

TEST(KuwBound, ConstantDriftIsLinear) {
  // µ(z) = 1: T(x0) = ∫_1^{x0} dz = x0 - 1.
  const double t = kuw_upper_bound(100.0, [](double) { return 1.0; });
  EXPECT_NEAR(t, 99.0, 0.1);
}

TEST(KuwBound, LinearDriftIsLogarithmic) {
  // µ(z) = z: T(x0) = ln x0 — the classic "halving" recurrence.
  const double t = kuw_upper_bound(1000.0, [](double z) { return z; });
  EXPECT_NEAR(t, std::log(1000.0), 0.01);
}

TEST(KuwBound, MatchesTheorem12Shape) {
  // µ(k) = k / (2 H_n): T <= sum 2H_n/k = 2H_n² (paper, Theorem 12).
  const std::uint64_t n = 4096;
  const double hn = util::harmonic(n);
  const double t = kuw_upper_bound(
      static_cast<double>(n), [&](double z) { return z / (2.0 * hn); });
  // The continuous integral is 2 H_n ln n, slightly below the discrete sum
  // 2 H_n²; allow the integral-vs-sum gap.
  EXPECT_NEAR(t, 2.0 * hn * hn, 0.10 * 2.0 * hn * hn);
}

TEST(KuwBound, RejectsBadInput) {
  EXPECT_THROW(static_cast<void>(kuw_upper_bound(0.5, [](double) { return 1.0; })),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(kuw_upper_bound(10.0, [](double) { return 0.0; })),
               std::invalid_argument);
}

TEST(Theorem2Bound, ReducesToPlainIntegralWithoutLongJumps) {
  // m(z) = 1, ε = 0: bound = f(x0).
  const double t = theorem2_lower_bound(50.0, [](double) { return 1.0; }, 0.0);
  EXPECT_NEAR(t, 50.0, 0.01);
}

TEST(Theorem2Bound, EpsilonDampsTheBound) {
  const auto m = [](double) { return 1.0; };
  const double strict = theorem2_lower_bound(50.0, m, 0.0);
  const double damped = theorem2_lower_bound(50.0, m, 0.1);
  EXPECT_LT(damped, strict);
  // ε = 0.1, T = 50: bound = 50 / (5 + 0.9) ≈ 8.47.
  EXPECT_NEAR(damped, 50.0 / 5.9, 0.05);
}

TEST(UpperBounds, SingleLinkIsHarmonicSquared) {
  const double h10 = util::harmonic(1024);
  EXPECT_DOUBLE_EQ(upper_single_link(1024), 2.0 * h10 * h10);
  EXPECT_DOUBLE_EQ(upper_binomial_presence(1024), upper_single_link(1024));
}

TEST(UpperBounds, MultiLinkScalesInverselyWithLinks) {
  const double one = upper_multi_link(4096, 1.0);
  const double six = upper_multi_link(4096, 6.0);
  EXPECT_NEAR(one / six, 6.0, 1e-9);
}

TEST(UpperBounds, FailureBoundsInflateCorrectly) {
  EXPECT_NEAR(upper_link_failures(4096, 4, 0.5), 2.0 * upper_multi_link(4096, 4),
              1e-9);
  EXPECT_NEAR(upper_node_failures(4096, 4, 0.5), 2.0 * upper_multi_link(4096, 4),
              1e-9);
  EXPECT_GT(upper_base_b_failures(4096, 2, 0.5),
            upper_base_b_failures(4096, 2, 1.0));
}

TEST(UpperBounds, BaseBCountsDigits) {
  // ⌈log_b n⌉: 16 base-2 digits, 4 base-16 digits for n = 65536.
  EXPECT_DOUBLE_EQ(upper_base_b(65536, 2), 16.0);
  EXPECT_DOUBLE_EQ(upper_base_b(65536, 16), 4.0);
  EXPECT_DOUBLE_EQ(upper_base_b(1000, 10), 3.0);
  // Expected case: nonzero digits of the balanced (signed-digit) form.
  EXPECT_NEAR(expected_base_b_hops(65536, 2), 16.0 / 3.0, 1e-12);
  EXPECT_NEAR(expected_base_b_hops(65536, 16), 4.0 * 15.0 / 17.0, 1e-12);
}

TEST(UpperBounds, RejectBadParameters) {
  EXPECT_THROW(static_cast<void>(upper_multi_link(16, 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(upper_link_failures(16, 2, 0.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(upper_node_failures(16, 2, 1.0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(upper_base_b(16, 1)), std::invalid_argument);
}

TEST(LowerBounds, ShapesOrderCorrectly) {
  // More links -> smaller lower bound; larger n -> larger bound.
  EXPECT_GT(lower_one_sided(1 << 20, 1), lower_one_sided(1 << 20, 8));
  EXPECT_GT(lower_one_sided(1 << 20, 4), lower_one_sided(1 << 10, 4));
  // Two-sided bound is weaker (divides by ℓ² instead of ℓ).
  EXPECT_GT(lower_one_sided(1 << 20, 8), lower_two_sided(1 << 20, 8));
  EXPECT_GT(lower_large_degree(1 << 20, 16.0), 1.0);
}

TEST(FitScale, RecoversAKnownConstant) {
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 32.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(3.5 * x * x);
  }
  const ScaleFit fit = fit_scale(xs, ys, [](double x) { return x * x; });
  EXPECT_NEAR(fit.scale, 3.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitScale, PoorModelHasLowR2) {
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 32.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(x * x);
  }
  const ScaleFit quadratic = fit_scale(xs, ys, [](double x) { return x * x; });
  const ScaleFit constant = fit_scale(xs, ys, [](double) { return 1.0; });
  EXPECT_GT(quadratic.r_squared, constant.r_squared);
  EXPECT_LT(constant.r_squared, 0.5);
}

TEST(FitScale, RejectsDegenerateInput) {
  EXPECT_THROW(static_cast<void>(fit_scale(std::vector<double>{}, std::vector<double>{})),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fit_scale({0.0, 0.0}, {1.0, 2.0})),
               std::invalid_argument);
}

TEST(FitLine, RecoversSlopeAndIntercept) {
  std::vector<double> xs, ys;
  for (double x = 0.0; x < 10.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(2.0 * x + 1.0);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(static_cast<void>(fit_line({1.0}, {1.0})), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(fit_line({2.0, 2.0}, {1.0, 5.0})),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2p::analysis
