// Pins the NUMA-sharded routing service of ISSUE 9:
//  * detail::parse_cpulist over sysfs cpulist shapes (ranges, commas,
//    whitespace, duplicates) and malformed input;
//  * NumaTopology::single / resharded round-robin CPU dealing;
//  * a 1-shard ShardedRoutingService is bit-identical to a plain
//    RoutingService built from the shard-0 seed substream over the same
//    spec — the sharded interface adds partitioning, never perturbation;
//  * multi-shard route_all partitions the query span shard-first, routes
//    every block, and merges stats consistently with the per-query results;
//  * shard construction and routing are deterministic: two services from
//    one config agree result-for-result.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "service/numa.h"
#include "service/routing_service.h"
#include "service/sharded_service.h"
#include "service/view_publisher.h"
#include "util/rng.h"

namespace p2p::service {
namespace {

using graph::NodeId;

TEST(NumaTopology, ParseCpulist) {
  using detail::parse_cpulist;
  EXPECT_EQ(parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpulist(" 2 ,\n"), (std::vector<int>{2}));
  EXPECT_EQ(parse_cpulist("3-5"), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(parse_cpulist("1,1-2"), (std::vector<int>{1, 2}));  // dedup
  EXPECT_TRUE(parse_cpulist("").empty());
  EXPECT_TRUE(parse_cpulist("abc").empty());
  EXPECT_TRUE(parse_cpulist("5-3").empty());       // inverted range
  EXPECT_TRUE(parse_cpulist("4-").empty());        // dangling dash
  EXPECT_TRUE(parse_cpulist("9999999999").empty());  // implausible id
}

TEST(NumaTopology, SingleAndResharded) {
  const NumaTopology one = NumaTopology::single(4);
  ASSERT_EQ(one.domain_count(), 1u);
  EXPECT_EQ(one.domains()[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(one.cpu_count(), 4u);

  const NumaTopology two = one.resharded(2);
  ASSERT_EQ(two.domain_count(), 2u);
  EXPECT_EQ(two.domains()[0].cpus, (std::vector<int>{0, 2}));
  EXPECT_EQ(two.domains()[1].cpus, (std::vector<int>{1, 3}));
  EXPECT_EQ(two.cpu_count(), 4u);

  // More shards than CPUs: capped at one CPU per shard.
  EXPECT_EQ(one.resharded(16).domain_count(), 4u);
  // Same count round-trips unchanged.
  EXPECT_EQ(two.resharded(2).domain_count(), 2u);

  const NumaTopology detected = NumaTopology::detect();
  ASSERT_GE(detected.domain_count(), 1u);
  ASSERT_GE(detected.cpu_count(), 1u);
}

TEST(ShardedService, ShardSeedsAreDistinct) {
  const std::uint64_t s0 = ShardedRoutingService::shard_seed(1, 0);
  const std::uint64_t s1 = ShardedRoutingService::shard_seed(1, 1);
  const std::uint64_t t0 = ShardedRoutingService::shard_seed(2, 0);
  EXPECT_NE(s0, s1);
  EXPECT_NE(s0, t0);
  EXPECT_EQ(s0, ShardedRoutingService::shard_seed(1, 0));
}

graph::BuildSpec small_spec(std::uint64_t n, std::size_t links) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.bidirectional = true;
  spec.layout = graph::EdgeLayout::kCompact;  // the scale sweep's form
  return spec;
}

std::vector<core::Query> draw_queries(std::size_t count, std::uint64_t n,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<core::Query> queries(count);
  for (auto& q : queries) {
    q = {static_cast<NodeId>(rng.next_below(n)),
         static_cast<metric::Point>(rng.next_below(n))};
  }
  return queries;
}

TEST(ShardedService, OneShardMatchesPlainService) {
  const graph::BuildSpec spec = small_spec(2048, 11);
  const std::uint64_t seed = 7;

  // Plain reference: the exact build and stripe-seed contract shard 0 uses.
  util::Rng rng(ShardedRoutingService::shard_seed(seed, 0));
  const auto g = graph::build_overlay(spec, rng);
  ViewPublisher publisher(failure::FailureView::all_alive(g));
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.stripe = 64;
  cfg.seed = ShardedRoutingService::shard_seed(seed, 0);
  RoutingService plain(publisher, cfg);

  ShardedConfig scfg;
  scfg.service.stripe = 64;
  scfg.seed = seed;
  scfg.topology = NumaTopology::single(2);
  ShardedRoutingService sharded(spec, scfg);
  ASSERT_EQ(sharded.shard_count(), 1u);
  EXPECT_EQ(sharded.node_count(), g.size());
  EXPECT_EQ(sharded.graph_memory_bytes(), g.memory_bytes());
  EXPECT_TRUE(sharded.shard(0).graph->compact());

  const auto queries = draw_queries(400, spec.grid_size, 8);
  std::vector<core::RouteResult> want(queries.size());
  std::vector<core::RouteResult> got(queries.size());
  const ServiceStats want_stats = plain.route_all(queries, want);
  const ServiceStats got_stats = sharded.route_all(queries, got);

  EXPECT_EQ(got_stats.queries, want_stats.queries);
  EXPECT_EQ(got_stats.routed, want_stats.routed);
  EXPECT_EQ(got_stats.delivered, want_stats.delivered);
  EXPECT_EQ(got_stats.stripes, want_stats.stripes);
  EXPECT_DOUBLE_EQ(got_stats.mean_hops_delivered, want_stats.mean_hops_delivered);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i].status, want[i].status) << "query " << i;
    ASSERT_EQ(got[i].hops, want[i].hops) << "query " << i;
    ASSERT_EQ(got[i].backtracks, want[i].backtracks) << "query " << i;
  }
}

TEST(ShardedService, MultiShardPartitionsAndMerges) {
  const graph::BuildSpec spec = small_spec(512, 9);
  ShardedConfig scfg;
  scfg.service.stripe = 32;
  scfg.seed = 11;
  scfg.topology = NumaTopology::single(4).resharded(2);
  ShardedRoutingService sharded(spec, scfg);
  ASSERT_EQ(sharded.shard_count(), 2u);
  EXPECT_EQ(sharded.node_count(), 2 * spec.grid_size);
  EXPECT_EQ(sharded.graph_memory_bytes(),
            sharded.shard(0).graph->memory_bytes() +
                sharded.shard(1).graph->memory_bytes());
  // Distinct seed substreams: the two shard overlays are not the same graph.
  EXPECT_NE(ShardedRoutingService::shard_seed(11, 0),
            ShardedRoutingService::shard_seed(11, 1));

  // 333 queries over 2 shards: contiguous blocks of 167 and 166.
  const auto queries = draw_queries(333, spec.grid_size, 12);
  std::vector<core::RouteResult> results(queries.size());
  const ServiceStats stats = sharded.route_all(queries, results);
  EXPECT_EQ(stats.queries, queries.size());
  EXPECT_EQ(stats.routed, queries.size());
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_GE(stats.stripes, 2u);

  // Merged stats agree with the per-query results they summarize.
  std::size_t delivered = 0;
  double hop_sum = 0.0;
  for (const core::RouteResult& r : results) {
    if (r.delivered()) {
      ++delivered;
      hop_sum += static_cast<double>(r.hops);
    }
  }
  EXPECT_EQ(stats.delivered, delivered);
  ASSERT_GT(delivered, 0u);
  EXPECT_NEAR(stats.mean_hops_delivered,
              hop_sum / static_cast<double>(delivered), 1e-9);
  EXPECT_EQ(stats.staleness.size(), stats.stripes);

  // Empty query spans are a no-op.
  const ServiceStats empty = sharded.route_all({}, {});
  EXPECT_EQ(empty.queries, 0u);
  EXPECT_EQ(empty.routed, 0u);
  EXPECT_EQ(empty.stripes, 0u);
}

TEST(ShardedService, DeterministicAcrossConstructions) {
  const graph::BuildSpec spec = small_spec(512, 9);
  ShardedConfig scfg;
  scfg.service.stripe = 32;
  scfg.seed = 21;
  scfg.topology = NumaTopology::single(4).resharded(2);
  ShardedRoutingService first(spec, scfg);
  ShardedRoutingService second(spec, scfg);

  const auto queries = draw_queries(256, spec.grid_size, 22);
  std::vector<core::RouteResult> a(queries.size());
  std::vector<core::RouteResult> b(queries.size());
  const ServiceStats sa = first.route_all(queries, a);
  const ServiceStats sb = second.route_all(queries, b);
  EXPECT_EQ(sa.delivered, sb.delivered);
  EXPECT_DOUBLE_EQ(sa.mean_hops_delivered, sb.mean_hops_delivered);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(a[i].status, b[i].status) << "query " << i;
    ASSERT_EQ(a[i].hops, b[i].hops) << "query " << i;
  }
}

TEST(ShardedService, NodeFailuresPerShard) {
  const graph::BuildSpec spec = small_spec(512, 9);
  ShardedConfig scfg;
  scfg.seed = 31;
  scfg.node_fail_p = 0.2;
  scfg.topology = NumaTopology::single(2);
  ShardedRoutingService sharded(spec, scfg);
  const auto queries = draw_queries(128, spec.grid_size, 32);
  std::vector<core::RouteResult> results(queries.size());
  const ServiceStats stats = sharded.route_all(queries, results);
  EXPECT_EQ(stats.routed, queries.size());
  // With a fifth of the nodes dead some searches fail; the service still
  // completes the span.
  EXPECT_LT(stats.delivered, queries.size());
}

}  // namespace
}  // namespace p2p::service
