// Tests for the concurrent routing service (service/view_publisher.h,
// service/routing_service.h): publication-protocol unit tests, the
// no-torn-read hammer (readers pinning under a full-rate churn writer must
// only ever observe exact published epochs), snapshot-vs-direct route
// equivalence at every epoch, worker-count-independent determinism, and the
// graceful drain/shutdown contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "churn/churn_log.h"
#include "churn/trace_gen.h"
#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "service/routing_service.h"
#include "service/view_publisher.h"
#include "util/rng.h"

namespace p2p::service {
namespace {

using core::Query;
using core::RouteResult;
using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph make_graph(std::uint64_t n, std::size_t links,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

churn::ChurnLog make_node_churn(const OverlayGraph& g, std::size_t epochs,
                                std::uint64_t seed) {
  churn::TraceSpec spec;
  spec.scenario = churn::TraceSpec::Scenario::kPoissonChurn;
  spec.duration = static_cast<double>(epochs);
  spec.batch_interval = 1.0;
  spec.kill_rate = 2.0;
  spec.revive_rate = 2.0;
  util::Rng rng(seed);
  return churn::make_trace(g, spec, rng);
}

std::vector<Query> make_queries(const OverlayGraph& g, std::size_t count,
                                std::uint64_t seed) {
  std::vector<Query> queries(count);
  util::Rng rng(seed);
  for (Query& q : queries) {
    const auto src = static_cast<NodeId>(rng.next_below(g.size()));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng.next_below(g.size()));
    q = {src, g.position(dst)};
  }
  return queries;
}

/// Order-sensitive liveness fingerprint of a view: any torn read (a snapshot
/// caught between two published epochs) produces a checksum matching no
/// published epoch.
std::uint64_t view_checksum(const FailureView& view) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(view.epoch());
  mix(view.alive_count());
  for (NodeId u = 0; u < view.graph().size(); ++u) {
    mix(view.node_alive(u) ? u * 2 + 1 : u * 2);
  }
  return h;
}

bool results_equal(const RouteResult& a, const RouteResult& b) {
  return a.status == b.status && a.hops == b.hops &&
         a.backtracks == b.backtracks && a.reroutes == b.reroutes &&
         a.completion_epoch == b.completion_epoch;
}

// -- ViewPublisher unit tests -----------------------------------------------

TEST(ViewPublisher, InitialSnapshotIsPublished) {
  const auto g = make_graph(64, 3, 1);
  ViewPublisher pub(FailureView::all_alive(g));
  EXPECT_EQ(pub.sequence(), 0u);
  EXPECT_EQ(pub.publications(), 1u);
  EXPECT_EQ(pub.latest_epoch(), 0u);

  Reader reader = pub.make_reader();
  const ViewSnapshot* snap = reader.pin();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(snap->sequence, 0u);
  EXPECT_EQ(snap->view.alive_count(), g.size());
  reader.unpin();
}

TEST(ViewPublisher, PublishAdvancesSequenceAndEpoch) {
  const auto g = make_graph(64, 3, 1);
  ViewPublisher pub(FailureView::all_alive(g));
  pub.writer_view().kill_node(5);
  const ViewSnapshot* snap = pub.publish();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->sequence, 1u);
  EXPECT_EQ(snap->epoch, pub.writer_view().epoch());
  EXPECT_EQ(pub.sequence(), 1u);
  EXPECT_EQ(pub.latest_epoch(), snap->epoch);
  EXPECT_FALSE(snap->view.node_alive(5));
  EXPECT_EQ(snap->view.alive_count(), g.size() - 1);
}

TEST(ViewPublisher, PinnedSnapshotSurvivesLaterPublishes) {
  const auto g = make_graph(64, 3, 1);
  ViewPublisher pub(FailureView::all_alive(g));
  Reader reader = pub.make_reader();
  const ViewSnapshot* pinned = reader.pin();
  const std::uint64_t pinned_checksum = view_checksum(pinned->view);

  for (NodeId u = 0; u < 8; ++u) {
    pub.writer_view().kill_node(u);
    pub.publish();
  }
  // The pinned snapshot is retired but must not be reclaimed or mutated.
  EXPECT_GE(pub.retired_pending(), 1u);
  EXPECT_EQ(view_checksum(pinned->view), pinned_checksum);
  EXPECT_EQ(pinned->view.alive_count(), g.size());

  reader.unpin();
  pub.reclaim();
  EXPECT_EQ(pub.retired_pending(), 0u);
  EXPECT_GE(pub.reclaimed(), 1u);
}

TEST(ViewPublisher, ReaderSlotsAreBoundedAndRecycled) {
  const auto g = make_graph(16, 2, 1);
  ViewPublisher pub(FailureView::all_alive(g), 2);
  Reader a = pub.make_reader();
  {
    Reader b = pub.make_reader();
    EXPECT_THROW((void)pub.make_reader(), std::invalid_argument);
  }
  // b released its slot on destruction.
  Reader c = pub.make_reader();
  EXPECT_TRUE(c.registered());
}

// -- No-torn-read hammer ----------------------------------------------------

// Readers pin as fast as they can while the writer applies one delta per
// publish at full speed. Every pinned snapshot must (a) carry a
// non-decreasing sequence per reader, (b) have view.epoch() == snap->epoch,
// and (c) checksum-match the independently materialized view of that exact
// epoch — a torn or in-place-mutated view cannot.
TEST(ViewPublisher, HammeredReadersSeeOnlyExactPublishedEpochs) {
  const auto g = make_graph(512, 4, 2);
  const auto log = make_node_churn(g, 200, 3);
  ASSERT_GT(log.size(), 0u);

  std::vector<std::uint64_t> checksum_by_epoch(log.size() + 1);
  for (std::uint64_t e = 0; e <= log.size(); ++e) {
    checksum_by_epoch[e] = view_checksum(log.materialize(e));
  }

  ViewPublisher pub(log.baseline());
  constexpr std::size_t kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> pins{0};
  std::atomic<std::size_t> readers_started{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Reader reader = pub.make_reader();
      std::uint64_t last_sequence = 0;
      bool started = false;
      while (!stop.load(std::memory_order_relaxed)) {
        const ViewSnapshot* snap = reader.pin();
        const bool ok = snap->sequence >= last_sequence &&
                        snap->view.epoch() == snap->epoch &&
                        snap->epoch < checksum_by_epoch.size() &&
                        view_checksum(snap->view) ==
                            checksum_by_epoch[snap->epoch];
        if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
        last_sequence = snap->sequence;
        reader.unpin();
        pins.fetch_add(1, std::memory_order_relaxed);
        if (!started) {
          started = true;
          readers_started.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::size_t i = 0; i < log.size(); ++i) {
    pub.apply_and_publish(log.delta(i));
  }
  // On a single-core host the writer can finish before any reader is ever
  // scheduled; keep the latest epoch live until every reader verified at
  // least one pin, so the assertions below are meaningful.
  while (readers_started.load(std::memory_order_relaxed) < kReaders) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(pins.load(), 0u);
  EXPECT_EQ(pub.sequence(), log.size());
  EXPECT_EQ(pub.latest_epoch(), log.size());
  pub.reclaim();
  EXPECT_EQ(pub.retired_pending(), 0u);
}

// -- RoutingService ---------------------------------------------------------

TEST(RoutingService, MatchesDirectRouterAtEveryPublishedEpoch) {
  const auto g = make_graph(256, 4, 4);
  const auto log = make_node_churn(g, 16, 5);
  const auto queries = make_queries(g, 300, 6);

  ViewPublisher pub(log.baseline());
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.stripe = 64;
  cfg.seed = 99;
  RoutingService svc(pub, cfg);

  for (std::uint64_t epoch = 0; epoch <= log.size(); ++epoch) {
    if (epoch > 0) pub.apply_and_publish(log.delta(epoch - 1));

    std::vector<RouteResult> got(queries.size());
    const ServiceStats stats = svc.route_all(queries, got);
    ASSERT_EQ(stats.routed, queries.size());
    EXPECT_EQ(stats.min_epoch, epoch);
    EXPECT_EQ(stats.max_epoch, epoch);

    // Direct reference: the same stripe grid over the independently
    // materialized view, one BatchPipeline per stripe with the published
    // per-stripe seed base — no publisher, no threads.
    const FailureView direct_view = log.materialize(epoch);
    const core::Router router(g, direct_view, cfg.router);
    std::vector<RouteResult> want(queries.size());
    for (std::size_t k = 0; k * cfg.stripe < queries.size(); ++k) {
      const std::size_t lo = k * cfg.stripe;
      const std::size_t hi = std::min(queries.size(), lo + cfg.stripe);
      core::BatchPipeline(router,
                          std::span<const Query>(queries).subspan(lo, hi - lo),
                          std::span<RouteResult>(want).subspan(lo, hi - lo),
                          RoutingService::stripe_seed_base(cfg.seed, k),
                          cfg.batch)
          .run();
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results_equal(got[i], want[i]))
          << "epoch " << epoch << " query " << i;
      EXPECT_EQ(got[i].completion_epoch, epoch) << "query " << i;
    }
  }
}

TEST(RoutingService, ResultsIndependentOfWorkerCount) {
  const auto g = make_graph(256, 4, 7);
  const auto log = make_node_churn(g, 8, 8);
  const auto queries = make_queries(g, 500, 9);

  ViewPublisher pub(log.baseline());
  for (std::size_t i = 0; i < log.size(); ++i) {
    pub.apply_and_publish(log.delta(i));
  }

  std::vector<RouteResult> baseline;
  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.stripe = 32;  // 500 queries -> 16 stripes, a ragged tail included
    cfg.seed = 41;
    RoutingService svc(pub, cfg);
    EXPECT_EQ(svc.worker_count(), workers);
    std::vector<RouteResult> results(queries.size());
    const ServiceStats stats = svc.route_all(queries, results);
    ASSERT_EQ(stats.routed, queries.size());
    ASSERT_EQ(stats.stripes, (queries.size() + cfg.stripe - 1) / cfg.stripe);
    EXPECT_GT(stats.delivered, 0u);
    if (baseline.empty()) {
      baseline = std::move(results);
      continue;
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(results_equal(results[i], baseline[i]))
          << "workers " << workers << " query " << i;
    }
  }
}

TEST(RoutingService, RoutesUnderConcurrentWriter) {
  const auto g = make_graph(512, 4, 10);
  const auto log = make_node_churn(g, 400, 11);
  const auto queries = make_queries(g, 2000, 12);

  ViewPublisher pub(log.baseline());
  ServiceConfig cfg;
  cfg.workers = 4;
  cfg.stripe = 64;
  cfg.seed = 13;
  RoutingService svc(pub, cfg);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < log.size(); ++i) {
        pub.apply_and_publish(log.delta(i));
      }
      // Rewind to the baseline so repeated passes stay exact inversions.
      for (std::size_t i = log.size(); i-- > 0;) {
        pub.writer_view().revert(log.delta(i));
      }
      pub.publish();
    }
  });

  std::vector<RouteResult> results(queries.size());
  const ServiceStats stats = svc.route_all(queries, results);
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(stats.routed, queries.size());
  EXPECT_EQ(stats.staleness.size(), stats.stripes);
  EXPECT_GT(stats.delivered, 0u);
  // Every result is stamped with an epoch the writer actually published.
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_LE(results[i].completion_epoch, log.size()) << "query " << i;
  }
  EXPECT_LE(stats.max_epoch, log.size());
}

TEST(RoutingService, StopBeforeRouteAllRoutesNothing) {
  const auto g = make_graph(128, 3, 14);
  ViewPublisher pub(FailureView::all_alive(g));
  ServiceConfig cfg;
  cfg.workers = 2;
  RoutingService svc(pub, cfg);
  svc.request_stop();
  EXPECT_TRUE(svc.stop_requested());

  const auto queries = make_queries(g, 100, 15);
  std::vector<RouteResult> results(queries.size());
  const ServiceStats stats = svc.route_all(queries, results);
  EXPECT_EQ(stats.routed, 0u);
  EXPECT_EQ(stats.stripes, 0u);
  EXPECT_EQ(stats.delivered, 0u);
}

TEST(RoutingService, ConcurrentStopDrainsToAStripePrefix) {
  const auto g = make_graph(1024, 4, 16);
  ViewPublisher pub(FailureView::all_alive(g));
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.stripe = 16;
  RoutingService svc(pub, cfg);

  const auto queries = make_queries(g, 6000, 17);
  // Sentinel defaults: a query the service never routed keeps kStuck/0 hops.
  std::vector<RouteResult> results(queries.size());
  std::thread stopper([&svc] { svc.request_stop(); });
  const ServiceStats stats = svc.route_all(queries, results);
  stopper.join();

  EXPECT_LE(stats.routed, queries.size());
  EXPECT_EQ(stats.routed, stats.stripes * cfg.stripe);
  // All-alive overlay: every routed query delivers, so the routed prefix is
  // distinguishable from untouched sentinel slots.
  for (std::size_t i = 0; i < stats.routed; ++i) {
    EXPECT_EQ(results[i].status, RouteResult::Status::kDelivered)
        << "query " << i;
  }
  for (std::size_t i = stats.routed; i < results.size(); ++i) {
    ASSERT_EQ(results[i].status, RouteResult::Status::kStuck) << "query " << i;
    ASSERT_EQ(results[i].hops, 0u) << "query " << i;
  }

  // Sticky: a second route_all refuses work.
  const ServiceStats again = svc.route_all(queries, results);
  EXPECT_EQ(again.routed, 0u);
}

TEST(RoutingService, ValidatesQueriesAndConfigUpFront) {
  const auto g = make_graph(64, 3, 18);
  ViewPublisher pub(FailureView::all_alive(g));

  ServiceConfig one_sided;
  one_sided.router.sidedness = core::Sidedness::kOneSided;
  // 1-D ring: one-sided is legal — construction must succeed.
  EXPECT_NO_THROW(RoutingService(pub, one_sided));

  ServiceConfig cfg;
  cfg.workers = 1;
  RoutingService svc(pub, cfg);
  std::vector<Query> bad = {{static_cast<NodeId>(g.size()), 0}};
  std::vector<RouteResult> results(1);
  EXPECT_THROW((void)svc.route_all(bad, results), std::out_of_range);

  std::vector<Query> ok = {{0, 5}};
  std::vector<RouteResult> small(0);
  EXPECT_THROW((void)svc.route_all(ok, small), std::invalid_argument);
}

}  // namespace
}  // namespace p2p::service
