// Replica placement (store/placement.h): k-nearest-live selection.
//  * shape on the line / ring / torus: ordered by (distance, position),
//    unique, all alive, matching a brute-force sort of the live nodes;
//  * owner prefix: replica_set(view, p, 1)[0] == node_nearest for every
//    point, and growing k only appends;
//  * dead nodes are skipped and selection is a pure function of the view
//    bits — the same FailureView epoch yields the same set whether reached
//    by apply() going forward or revert() coming back;
//  * the pooled torus scan is bit-identical to the serial walk;
//  * count > alive clamps to the live population.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "store/placement.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::store {
namespace {

using failure::FailureView;
using graph::NodeId;

graph::OverlayGraph ring_overlay(std::uint64_t n, std::uint64_t seed = 5) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.topology = metric::Space1D::Kind::kRing;
  spec.long_links = 2;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

graph::OverlayGraph line_overlay(std::uint64_t n, std::uint64_t seed = 5) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.topology = metric::Space1D::Kind::kLine;
  spec.long_links = 2;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

/// Brute force: sort every live node by (distance to p, position).
std::vector<NodeId> brute_force(const FailureView& view, metric::Point p,
                                std::size_t count) {
  const auto& g = view.graph();
  const metric::Space space = g.space();
  std::vector<NodeId> live;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (view.node_alive(u)) live.push_back(u);
  }
  std::sort(live.begin(), live.end(), [&](NodeId a, NodeId b) {
    const auto da = space.distance(g.position(a), p);
    const auto db = space.distance(g.position(b), p);
    return da != db ? da < db : g.position(a) < g.position(b);
  });
  live.resize(std::min(count, live.size()));
  return live;
}

void expect_matches_brute_force(const FailureView& view, std::size_t count) {
  const metric::Space space = view.graph().space();
  util::Rng rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    const auto p =
        static_cast<metric::Point>(rng.next_below(space.size()));
    EXPECT_EQ(replica_set(view, p, count), brute_force(view, p, count))
        << "point " << p;
  }
}

TEST(Placement, RingMatchesBruteForce) {
  const auto g = ring_overlay(257);
  expect_matches_brute_force(FailureView::all_alive(g), 5);
}

TEST(Placement, LineMatchesBruteForce) {
  const auto g = line_overlay(200);
  // Lines have boundary asymmetry: probe ends and middle alike.
  const auto view = FailureView::all_alive(g);
  expect_matches_brute_force(view, 4);
  EXPECT_EQ(replica_set(view, 0, 3), brute_force(view, 0, 3));
  EXPECT_EQ(replica_set(view, 199, 3), brute_force(view, 199, 3));
}

TEST(Placement, TorusMatchesBruteForceSerialAndPooled) {
  util::Rng rng(31);
  const auto g = graph::build_kleinberg_overlay(12, 2, 2.0, rng);
  const auto view = FailureView::all_alive(g);
  expect_matches_brute_force(view, 6);

  util::ThreadPool pool(4);
  std::array<NodeId, kMaxReplicas> serial{};
  std::array<NodeId, kMaxReplicas> pooled{};
  for (metric::Point p = 0; p < 144; p += 7) {
    const std::size_t ns = nearest_live(view, p, 6, std::span<NodeId>(serial));
    const std::size_t np =
        nearest_live(view, p, 6, std::span<NodeId>(pooled), pool);
    ASSERT_EQ(ns, np);
    for (std::size_t t = 0; t < ns; ++t) EXPECT_EQ(serial[t], pooled[t]);
  }
}

TEST(Placement, OwnerPrefixAndGrowingKAppends) {
  const auto g = ring_overlay(128);
  const auto view = FailureView::all_alive(g);
  std::vector<metric::Point> positions(g.size());
  for (NodeId u = 0; u < g.size(); ++u) positions[u] = g.position(u);
  for (metric::Point p = 0; p < 128; ++p) {
    const auto k1 = replica_set(view, p, 1);
    ASSERT_EQ(k1.size(), 1u);
    EXPECT_EQ(k1[0], graph::detail::node_nearest(g.space(), positions, p));
    const auto k3 = replica_set(view, p, 3);
    const auto k5 = replica_set(view, p, 5);
    ASSERT_EQ(k5.size(), 5u);
    EXPECT_TRUE(std::equal(k3.begin(), k3.end(), k5.begin()));
    EXPECT_EQ(k1[0], k3[0]);
  }
}

TEST(Placement, DeadNodesAreSkipped) {
  const auto g = ring_overlay(64);
  auto view = FailureView::all_alive(g);
  const metric::Point p = 10;
  const auto before = replica_set(view, p, 3);
  view.kill_node(before[0]);
  view.kill_node(before[2]);
  const auto after = replica_set(view, p, 3);
  for (const NodeId u : after) {
    EXPECT_TRUE(view.node_alive(u));
    EXPECT_NE(u, before[0]);
    EXPECT_NE(u, before[2]);
  }
  EXPECT_EQ(after, brute_force(view, p, 3));
  EXPECT_EQ(after[0], before[1]);  // the surviving replica moves up
}

TEST(Placement, DeterministicAcrossEpochSeeks) {
  // The same epoch's view bits select the same replica sets whether the
  // epoch was reached by apply() or recovered by revert().
  const auto g = ring_overlay(96);
  auto view = FailureView::all_alive(g);

  failure::FailureDelta d1;
  d1.node_kills = {3, 17, 40, 41, 42};
  failure::FailureDelta d2;
  d2.node_kills = {5, 60};
  d2.node_revives = {17, 41};

  std::vector<std::vector<NodeId>> at_epoch(3);
  const auto snapshot = [&](const FailureView& v) {
    std::vector<NodeId> sets;
    for (metric::Point p = 0; p < 96; p += 5) {
      const auto s = replica_set(v, p, 4);
      sets.insert(sets.end(), s.begin(), s.end());
    }
    return sets;
  };

  at_epoch[0] = snapshot(view);
  view.apply(d1);
  at_epoch[1] = snapshot(view);
  view.apply(d2);
  at_epoch[2] = snapshot(view);

  view.revert(d2);
  EXPECT_EQ(snapshot(view), at_epoch[1]);
  view.revert(d1);
  EXPECT_EQ(snapshot(view), at_epoch[0]);
  view.apply(d1);
  EXPECT_EQ(snapshot(view), at_epoch[1]);
}

TEST(Placement, CountClampsToLivePopulation) {
  const auto g = ring_overlay(16);
  auto view = FailureView::all_alive(g);
  for (NodeId u = 4; u < 16; ++u) view.kill_node(u);

  std::array<NodeId, kMaxReplicas> out{};
  const std::size_t n = nearest_live(view, 9, 8, std::span<NodeId>(out));
  EXPECT_EQ(n, 4u);
  std::vector<NodeId> got(out.begin(), out.begin() + n);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeId>{0, 1, 2, 3}));

  const auto empty_count =
      nearest_live(view, 9, 0, std::span<NodeId>(out));
  EXPECT_EQ(empty_count, 0u);
}

}  // namespace
}  // namespace p2p::store
