// Unit tests for util/histogram.h: linear, exact and log-spaced counters.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p2p::util {
namespace {

TEST(LinearHistogram, BinsAndEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(LinearHistogram, CountsLandInRightBins) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);  // boundary: belongs to bin 1
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, UnderAndOverflow) {
  LinearHistogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, WeightsAccumulate) {
  LinearHistogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.bin(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ExactCounter, CountsExactValues) {
  ExactCounter c(100);
  c.add(0);
  c.add(7);
  c.add(7);
  c.add(100);
  EXPECT_EQ(c.count(0), 1u);
  EXPECT_EQ(c.count(7), 2u);
  EXPECT_EQ(c.count(100), 1u);
  EXPECT_EQ(c.count(8), 0u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ExactCounter, OverflowBeyondMax) {
  ExactCounter c(10);
  c.add(11);
  c.add(1'000'000);
  EXPECT_EQ(c.overflow(), 2u);
  EXPECT_EQ(c.total(), 2u);
}

TEST(ExactCounter, ProbabilityNormalizes) {
  ExactCounter c(4);
  c.add(1, 3);
  c.add(2, 1);
  EXPECT_DOUBLE_EQ(c.probability(1), 0.75);
  EXPECT_DOUBLE_EQ(c.probability(2), 0.25);
  EXPECT_DOUBLE_EQ(c.probability(3), 0.0);
}

TEST(ExactCounter, MergeAddsCounts) {
  ExactCounter a(5), b(5);
  a.add(2);
  b.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(2), 2u);
  EXPECT_EQ(a.count(3), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(ExactCounter, MergeRejectsMismatchedSizes) {
  ExactCounter a(5), b(6);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, BinEdgesArePowers) {
  LogHistogram h(2.0, 64);
  // Bins: [1,1], [2,3], [4,7], [8,15], [16,31], [32,63], [64,127].
  EXPECT_EQ(h.bin_lo(0), 1u);
  EXPECT_EQ(h.bin_hi(0), 1u);
  EXPECT_EQ(h.bin_lo(1), 2u);
  EXPECT_EQ(h.bin_hi(1), 3u);
  EXPECT_EQ(h.bin_lo(2), 4u);
  EXPECT_EQ(h.bin_hi(2), 7u);
}

TEST(LogHistogram, ValuesLandInRightBins) {
  LogHistogram h(2.0, 64);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(63);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogram, ZeroClampsToOne) {
  LogHistogram h(2.0, 8);
  h.add(0);
  EXPECT_EQ(h.bin(0), 1u);
}

TEST(LogHistogram, HugeValuesGoToLastBin) {
  LogHistogram h(2.0, 8);
  h.add(1'000'000);
  EXPECT_EQ(h.bin(h.bin_count() - 1), 1u);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(1.0, 8), std::invalid_argument);
  EXPECT_THROW(LogHistogram(2.0, 0), std::invalid_argument);
}

// -- merge + quantile extraction (telemetry substrate) -----------------------

TEST(LogBucketEdges, SharedEdgeFunctionsMatchLogHistogram) {
  const LogHistogram h(2.0, 64);
  const auto edges = log_bucket_edges(2.0, 64);
  ASSERT_EQ(edges.size(), h.bin_count() + 1);
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    EXPECT_EQ(edges[i], h.bin_lo(i)) << i;
    EXPECT_EQ(edges[i + 1] - 1, h.bin_hi(i)) << i;
  }
  // Index function agrees with add() for every value in range and beyond.
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 63ULL, 64ULL, 1000000ULL}) {
    LogHistogram probe(2.0, 64);
    probe.add(v);
    EXPECT_EQ(probe.bin(log_bucket_index(edges, v)), 1u) << v;
  }
}

TEST(LinearHistogram, MergeAddsBinsAndFlows) {
  LinearHistogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(1.0);
  b.add(-5.0);
  b.add(50.0);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(LinearHistogram, MergeRejectsMismatchedShape) {
  LinearHistogram a(0.0, 10.0, 5), b(0.0, 10.0, 4), c(0.0, 8.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(LinearHistogram, QuantileInterpolates) {
  LinearHistogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  // Median of a uniform fill sits mid-range; the top lands in the last bin.
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
  EXPECT_DOUBLE_EQ(LinearHistogram(0.0, 1.0, 2).quantile(0.5), 0.0);
}

TEST(ExactCounter, QuantileIsExact) {
  ExactCounter c(100);
  for (std::uint64_t v = 1; v <= 100; ++v) c.add(v);
  EXPECT_EQ(c.quantile(0.0), 1u);
  EXPECT_EQ(c.quantile(0.5), 50u);
  EXPECT_EQ(c.quantile(0.99), 99u);
  EXPECT_EQ(c.quantile(1.0), 100u);
  EXPECT_EQ(ExactCounter(10).quantile(0.5), 0u);
}

TEST(ExactCounter, QuantileOverflowMassSitsAboveMax) {
  ExactCounter c(10);
  c.add(5);
  c.add(1'000'000);  // overflow
  EXPECT_EQ(c.quantile(0.0), 5u);
  EXPECT_EQ(c.quantile(1.0), c.max_value() + 1);
}

TEST(LogHistogram, MergeAddsBins) {
  LogHistogram a(2.0, 64), b(2.0, 64);
  a.add(1);
  b.add(1);
  b.add(5);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(LogHistogram, MergeRejectsMismatchedShape) {
  LogHistogram a(2.0, 64), b(2.0, 128), c(3.0, 64);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(LogHistogram, QuantilesBracketTrueValues) {
  // 1..1000 uniformly: the interpolated quantile must stay within the true
  // value's bin (a factor-of-base window).
  LogHistogram h(2.0, 1024);
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_GE(h.p50(), 256.0);
  EXPECT_LE(h.p50(), 1023.0);
  EXPECT_GE(h.p99(), 512.0);
  EXPECT_LE(h.p99(), 1024.0);
  EXPECT_DOUBLE_EQ(LogHistogram(2.0, 8).quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleValueQuantileLandsInItsBin) {
  LogHistogram h(2.0, 1024);
  h.add(37, 1000);
  // All mass in [32, 63]: every quantile must stay inside that bin.
  EXPECT_GE(h.p50(), 32.0);
  EXPECT_LE(h.p50(), 63.0);
  EXPECT_GE(h.p99(), 32.0);
  EXPECT_LE(h.p99(), 63.0);
}

TEST(QuantileFromLogBins, MatchesHistogramAccessors) {
  LogHistogram h(2.0, 256);
  for (std::uint64_t v = 1; v <= 200; ++v) h.add(v);
  const double direct =
      quantile_from_log_bins(h.edges(), h.counts(), h.total(), 0.9);
  EXPECT_DOUBLE_EQ(direct, h.quantile(0.9));
}

}  // namespace
}  // namespace p2p::util
