// Unit tests for util/histogram.h: linear, exact and log-spaced counters.
#include "util/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace p2p::util {
namespace {

TEST(LinearHistogram, BinsAndEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(LinearHistogram, CountsLandInRightBins) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);  // boundary: belongs to bin 1
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, UnderAndOverflow) {
  LinearHistogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, WeightsAccumulate) {
  LinearHistogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.bin(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(ExactCounter, CountsExactValues) {
  ExactCounter c(100);
  c.add(0);
  c.add(7);
  c.add(7);
  c.add(100);
  EXPECT_EQ(c.count(0), 1u);
  EXPECT_EQ(c.count(7), 2u);
  EXPECT_EQ(c.count(100), 1u);
  EXPECT_EQ(c.count(8), 0u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(ExactCounter, OverflowBeyondMax) {
  ExactCounter c(10);
  c.add(11);
  c.add(1'000'000);
  EXPECT_EQ(c.overflow(), 2u);
  EXPECT_EQ(c.total(), 2u);
}

TEST(ExactCounter, ProbabilityNormalizes) {
  ExactCounter c(4);
  c.add(1, 3);
  c.add(2, 1);
  EXPECT_DOUBLE_EQ(c.probability(1), 0.75);
  EXPECT_DOUBLE_EQ(c.probability(2), 0.25);
  EXPECT_DOUBLE_EQ(c.probability(3), 0.0);
}

TEST(ExactCounter, MergeAddsCounts) {
  ExactCounter a(5), b(5);
  a.add(2);
  b.add(2);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.count(2), 2u);
  EXPECT_EQ(a.count(3), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(ExactCounter, MergeRejectsMismatchedSizes) {
  ExactCounter a(5), b(6);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, BinEdgesArePowers) {
  LogHistogram h(2.0, 64);
  // Bins: [1,1], [2,3], [4,7], [8,15], [16,31], [32,63], [64,127].
  EXPECT_EQ(h.bin_lo(0), 1u);
  EXPECT_EQ(h.bin_hi(0), 1u);
  EXPECT_EQ(h.bin_lo(1), 2u);
  EXPECT_EQ(h.bin_hi(1), 3u);
  EXPECT_EQ(h.bin_lo(2), 4u);
  EXPECT_EQ(h.bin_hi(2), 7u);
}

TEST(LogHistogram, ValuesLandInRightBins) {
  LogHistogram h(2.0, 64);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(63);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LogHistogram, ZeroClampsToOne) {
  LogHistogram h(2.0, 8);
  h.add(0);
  EXPECT_EQ(h.bin(0), 1u);
}

TEST(LogHistogram, HugeValuesGoToLastBin) {
  LogHistogram h(2.0, 8);
  h.add(1'000'000);
  EXPECT_EQ(h.bin(h.bin_count() - 1), 1u);
}

TEST(LogHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LogHistogram(1.0, 8), std::invalid_argument);
  EXPECT_THROW(LogHistogram(2.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace p2p::util
