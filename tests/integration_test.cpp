// Integration tests: whole-system behaviours the paper claims, at reduced
// scale. These cross module boundaries (construction -> snapshot -> failure
// -> routing -> measurement) and check shapes, not constants.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/bounds.h"
#include "core/construction.h"
#include "core/router.h"
#include "dht/dht.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "sim/hop_simulator.h"
#include "util/rng.h"

namespace p2p {
namespace {

using core::Router;
using core::RouterConfig;
using core::StuckPolicy;
using failure::FailureView;
using graph::BuildSpec;
using graph::OverlayGraph;
using metric::Point;
using metric::Space1D;

OverlayGraph ideal_network(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

OverlayGraph constructed_network(std::uint64_t n, std::size_t links,
                                 std::uint64_t seed) {
  core::ConstructionConfig cfg;
  cfg.long_links = links;
  core::DynamicOverlay overlay(Space1D::ring(n), cfg);
  util::Rng rng(seed);
  std::vector<Point> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (const Point p : order) overlay.join(p, rng);
  return overlay.snapshot();
}

double failure_fraction(const OverlayGraph& g, double p_fail, StuckPolicy policy,
                        std::size_t messages, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto view = FailureView::with_node_failures(g, p_fail, rng);
  if (view.alive_count() < 2) return 1.0;
  RouterConfig cfg;
  cfg.stuck_policy = policy;
  const Router router(g, view, cfg);
  const auto batch = sim::run_batch(router, messages, rng);
  return batch.failure_fraction();
}

TEST(Integration, FailedSearchFractionScalesWithFailedNodeFraction) {
  // §6: "Even if we just terminate the search, we get less than p fraction of
  // failed searches with p fraction of failed nodes." The strict < p holds at
  // the paper's scale (n = 2^17, ℓ = 17; see bench/fig6_node_failures); at
  // this reduced scale we assert the shape: same order as p and monotone.
  const auto g = ideal_network(4096, 12, 21);
  double prev = -1.0;
  for (const double p : {0.1, 0.3, 0.5}) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      total += failure_fraction(g, p, StuckPolicy::kTerminate, 300, 100 + seed);
    }
    const double fraction = total / 3.0;
    EXPECT_LT(fraction, p * 1.5) << "p=" << p;
    EXPECT_GT(fraction, prev) << "p=" << p;
    prev = fraction;
  }
}

TEST(Integration, BacktrackingBeatsTerminationUnderHeavyFailures) {
  const auto g = ideal_network(4096, 12, 22);
  const double p = 0.6;
  const double term = failure_fraction(g, p, StuckPolicy::kTerminate, 400, 7);
  const double back = failure_fraction(g, p, StuckPolicy::kBacktrack, 400, 7);
  EXPECT_LT(back, term);
}

TEST(Integration, RerouteFallsBetweenTerminateAndBacktrack) {
  const auto g = ideal_network(4096, 12, 23);
  const double p = 0.5;
  const double term = failure_fraction(g, p, StuckPolicy::kTerminate, 600, 9);
  const double rr = failure_fraction(g, p, StuckPolicy::kRandomReroute, 600, 9);
  const double back = failure_fraction(g, p, StuckPolicy::kBacktrack, 600, 9);
  EXPECT_LE(back, rr + 0.05);
  EXPECT_LE(rr, term + 0.02);  // reroute never does worse than terminating
}

TEST(Integration, ConstructedNetworkRoutesComparablyToIdeal) {
  // Figure 7's claim: the heuristic-built network fails somewhat more often
  // than the ideal one, but comparably.
  const auto ideal = ideal_network(2048, 11, 24);
  const auto constructed = constructed_network(2048, 11, 24);
  const double p = 0.4;
  const double f_ideal =
      failure_fraction(ideal, p, StuckPolicy::kTerminate, 500, 11);
  const double f_constructed =
      failure_fraction(constructed, p, StuckPolicy::kTerminate, 500, 11);
  EXPECT_LT(f_ideal, 0.5);
  EXPECT_LT(f_constructed, 0.65);
  EXPECT_LT(std::abs(f_constructed - f_ideal), 0.25);
}

TEST(Integration, MoreLinksMeanFewerHops) {
  // Theorem 13's shape: T = O(log² n / ℓ).
  util::Rng rng(25);
  const auto g1 = ideal_network(4096, 1, 26);
  const auto g8 = ideal_network(4096, 8, 27);
  const auto v1 = FailureView::all_alive(g1);
  const auto v8 = FailureView::all_alive(g8);
  const auto b1 = sim::run_batch(Router(g1, v1), 400, rng);
  const auto b8 = sim::run_batch(Router(g8, v8), 400, rng);
  EXPECT_LT(b8.hops_success.mean(), b1.hops_success.mean() / 2.0);
}

TEST(Integration, LinkFailuresSlowButRarelyStopSearches) {
  // Theorem 15: with ±1 links immortal, searches still deliver, just slower.
  util::Rng rng(28);
  BuildSpec spec;
  spec.grid_size = 2048;
  spec.long_links = 11;
  const auto g = graph::build_overlay(spec, rng);
  const auto healthy = FailureView::all_alive(g);
  util::Rng fail_rng(29);
  const auto degraded = FailureView::with_link_failures(g, 0.5, fail_rng);
  const auto b_ok = sim::run_batch(Router(g, healthy), 300, rng);
  const auto b_bad = sim::run_batch(Router(g, degraded), 300, rng);
  EXPECT_EQ(b_bad.failed(), 0u);  // short links guarantee delivery
  EXPECT_GT(b_bad.hops_success.mean(), b_ok.hops_success.mean());
}

TEST(Integration, DeterministicLinksMeetTheTheorem14Bound) {
  util::Rng rng(30);
  BuildSpec spec;
  spec.grid_size = 4096;
  spec.link_model = BuildSpec::LinkModel::kBaseBFull;
  spec.base = 2;
  const auto g = graph::build_overlay(spec, rng);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  const double digits = std::ceil(std::log2(4096.0));
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<graph::NodeId>(rng.next_below(g.size()));
    const auto dst = static_cast<graph::NodeId>(rng.next_below(g.size()));
    const auto res = router.route(src, g.position(dst), rng);
    ASSERT_TRUE(res.delivered());
    // Base-2 digit elimination: at most ⌈log₂ n⌉ hops (b-1 = 1 per digit).
    EXPECT_LE(static_cast<double>(res.hops), digits);
  }
}

TEST(Integration, BinomialPresenceMatchesFullGridShape) {
  // Theorem 17: thinning the grid leaves delivery time at the same order.
  util::Rng rng(31);
  BuildSpec full;
  full.grid_size = 4096;
  full.long_links = 6;
  BuildSpec half = full;
  half.presence = 0.5;
  const auto g_full = graph::build_overlay(full, rng);
  const auto g_half = graph::build_overlay(half, rng);
  const auto v_full = FailureView::all_alive(g_full);
  const auto v_half = FailureView::all_alive(g_half);
  const auto b_full = sim::run_batch(Router(g_full, v_full), 400, rng);
  const auto b_half = sim::run_batch(Router(g_half, v_half), 400, rng);
  EXPECT_EQ(b_half.failed(), 0u);
  // Same order: within 2x of each other (the half grid is also smaller).
  EXPECT_LT(b_half.hops_success.mean(), b_full.hops_success.mean() * 2.0);
}

TEST(Integration, MeasuredSingleLinkTimeIsWithinTheorem12Bound) {
  util::Rng rng(32);
  const auto g = ideal_network(4096, 1, 33);
  const auto view = FailureView::all_alive(g);
  const auto batch = sim::run_batch(Router(g, view), 400, rng);
  EXPECT_LT(batch.hops_success.mean(), analysis::upper_single_link(4096));
}

TEST(Integration, DhtServesLookupsOverAChurningOverlay) {
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 6;
  cfg.replication = 3;
  dht::Dht store(Space1D::ring(1024), cfg, /*seed=*/34);
  util::Rng rng(35);
  // Bootstrap 128 members.
  for (Point p = 0; p < 1024; p += 8) store.add_node(p);
  for (int i = 0; i < 40; ++i) {
    const std::string key = std::string("k") + std::to_string(i);
    const std::string value = std::string("v") + std::to_string(i);
    ASSERT_TRUE(store.put(0, key, value).ok);
  }
  // Churn: 30 joins at odd positions, 30 crashes of existing non-origin nodes.
  for (int i = 0; i < 30; ++i) {
    const Point p = 8 * static_cast<Point>(rng.next_below(128)) + 1 +
                    static_cast<Point>(rng.next_below(7));
    if (!store.has_node(p)) store.add_node(p);
    const auto members = store.overlay().members();
    const Point victim = members[rng.next_below(members.size())];
    if (victim != 0) store.crash_node(victim);
  }
  EXPECT_EQ(store.lost_keys(), 0u);
  for (int i = 0; i < 40; ++i) {
    const std::string key = std::string("k") + std::to_string(i);
    const auto got = store.get(0, key);
    ASSERT_TRUE(got.ok) << key;
    EXPECT_EQ(got.value, std::string("v") + std::to_string(i));
  }
}

}  // namespace
}  // namespace p2p
