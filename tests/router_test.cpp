// Unit + property tests for core/router.h: greedy semantics, one- vs
// two-sided routing, the three §6 recovery strategies, knowledge models and
// the resumable session.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::core {
namespace {

using failure::FailureView;
using graph::BuildSpec;
using graph::NodeId;
using graph::OverlayGraph;
using metric::Space1D;

/// Ring of n nodes with only the ±1 short links.
OverlayGraph bare_ring(std::uint64_t n) {
  OverlayGraph g(Space1D::ring(n));
  graph::wire_short_links(g);
  return g;
}

TEST(Router, DeliversAlongShortLinks) {
  const auto g = bare_ring(8);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 3, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.hops, 3u);
}

TEST(Router, TakesShorterArcOnRing) {
  const auto g = bare_ring(8);
  const auto view = FailureView::all_alive(g);
  RouterConfig cfg;
  cfg.record_path = true;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 6, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.hops, 2u);  // 0 -> 7 -> 6
  EXPECT_EQ(res.path, (std::vector<NodeId>{0, 7, 6}));
}

TEST(Router, ZeroHopsWhenAlreadyAtTarget) {
  const auto g = bare_ring(8);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  util::Rng rng(1);
  const RouteResult res = router.route(5, 5, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.hops, 0u);
}

TEST(Router, LongLinkShortcutsTheWalk) {
  auto g = bare_ring(32);
  g.add_long_link(0, 16);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 14, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.hops, 3u);  // 0 -> 16 -> 15 -> 14
}

TEST(Router, NextHopPicksClosestCandidate) {
  auto g = bare_ring(32);
  g.add_long_link(0, 8);
  g.add_long_link(0, 12);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  EXPECT_EQ(router.next_hop(0, 13), 12u);
  EXPECT_EQ(router.next_hop(0, 8), 8u);
  EXPECT_EQ(router.next_hop(0, 1), 1u);
}

TEST(Router, NextHopReturnsInvalidWhenStuck) {
  auto g = bare_ring(8);
  auto view = FailureView::all_alive(g);
  view.kill_node(1);
  view.kill_node(7);
  const Router router(g, view);
  EXPECT_EQ(router.next_hop(0, 3), graph::kInvalidNode);
}

TEST(Router, DuplicateLinksAreDeduplicated) {
  auto g = bare_ring(16);
  g.add_long_link(0, 5);
  g.add_long_link(0, 5);  // drawn twice "with replacement"
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  const auto cands = router.candidates(0, 5);
  EXPECT_EQ(std::count(cands.begin(), cands.end(), 5u), 1);
}

TEST(Router, OneSidedNeverOvershoots) {
  auto g = bare_ring(16);
  g.add_long_link(2, 12);  // overshoots target 14 when coming from 2
  const auto view = FailureView::all_alive(g);
  RouterConfig cfg;
  cfg.sidedness = Sidedness::kOneSided;
  cfg.record_path = true;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(2, 14, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.path, (std::vector<NodeId>{2, 1, 0, 15, 14}));
}

TEST(Router, TwoSidedUsesTheOvershootingLink) {
  auto g = bare_ring(16);
  g.add_long_link(2, 12);
  const auto view = FailureView::all_alive(g);
  RouterConfig cfg;
  cfg.record_path = true;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(2, 14, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.path, (std::vector<NodeId>{2, 12, 13, 14}));
}

TEST(Router, TerminatePolicyFailsAtDeadEnd) {
  auto g = bare_ring(10);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);  // blocks the clockwise walk 0 -> ... -> 5
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kTerminate;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 5, rng);
  EXPECT_EQ(res.status, RouteResult::Status::kStuck);
  EXPECT_EQ(res.hops, 3u);  // 0 -> 1 -> 2 -> 3, then no closer live neighbour
}

TEST(Router, BacktrackingEscapesTheDeadEnd) {
  auto g = bare_ring(10);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.record_path = true;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 5, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_GT(res.backtracks, 0u);
  // Walk in: 0,1,2,3; walk back: 2,1,0; then around: 9,8,7,6,5.
  EXPECT_EQ(res.hops, 11u);
  EXPECT_EQ(res.backtracks, 3u);
}

TEST(Router, BacktrackWindowLimitsTheEscape) {
  auto g = bare_ring(10);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.backtrack_window = 2;  // too small to get back to node 0
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 5, rng);
  EXPECT_EQ(res.status, RouteResult::Status::kStuck);
}

TEST(Router, RandomRerouteRescuesTheSearch) {
  auto g = bare_ring(10);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kRandomReroute;
  cfg.max_reroutes = 8;
  const Router router(g, view, cfg);
  // With enough reroutes the detour almost surely crosses to the far arc.
  util::Rng rng(3);
  int delivered = 0;
  for (int trial = 0; trial < 20; ++trial) {
    if (router.route(0, 5, rng).delivered()) ++delivered;
  }
  EXPECT_GT(delivered, 10);
}

TEST(Router, RerouteCountsAreReported) {
  auto g = bare_ring(10);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kRandomReroute;
  cfg.max_reroutes = 1;
  const Router router(g, view, cfg);
  util::Rng rng(7);
  bool saw_reroute = false;
  for (int trial = 0; trial < 10; ++trial) {
    const RouteResult res = router.route(0, 5, rng);
    if (res.reroutes > 0) saw_reroute = true;
    EXPECT_LE(res.reroutes, 1u);
  }
  EXPECT_TRUE(saw_reroute);
}

TEST(Router, StaleKnowledgeStopsAtTheDeadBestNeighbour) {
  auto g = bare_ring(8);
  g.add_long_link(0, 3);  // tie at distance 1 from target 2: node 1 wins
  auto view = FailureView::all_alive(g);
  view.kill_node(1);
  RouterConfig live_cfg;
  RouterConfig stale_cfg;
  stale_cfg.knowledge = Knowledge::kStale;
  util::Rng rng(1);
  const Router live(g, view, live_cfg);
  EXPECT_TRUE(live.route(0, 2, rng).delivered());  // picks 3 instead
  const Router stale(g, view, stale_cfg);
  EXPECT_EQ(stale.route(0, 2, rng).status, RouteResult::Status::kStuck);
}

TEST(Router, StaleKnowledgeStillSkipsDeadLinks) {
  auto g = bare_ring(8);
  g.add_long_link(0, 3);
  auto view = FailureView::all_alive(g);
  view.kill_link(0, 0);  // short link 0 -> 1 is down, both nodes alive
  RouterConfig cfg;
  cfg.knowledge = Knowledge::kStale;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 2, rng);
  EXPECT_TRUE(res.delivered());  // uses the long link to 3, then back to 2
}

TEST(Router, TtlBoundsTheSearch) {
  const auto g = bare_ring(64);
  const auto view = FailureView::all_alive(g);
  RouterConfig cfg;
  cfg.ttl = 3;
  const Router router(g, view, cfg);
  util::Rng rng(1);
  const RouteResult res = router.route(0, 32, rng);
  EXPECT_EQ(res.status, RouteResult::Status::kTtlExpired);
  EXPECT_LE(res.hops, 3u);
}

TEST(Router, RoutesToNearestNodeForVacantTargets) {
  OverlayGraph g(Space1D::line(100), {10, 20, 80});
  graph::wire_short_links(g);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  util::Rng rng(1);
  // Target position 78 is vacant; node at 80 is nearest.
  const RouteResult res = router.route(0, 78, rng);
  EXPECT_TRUE(res.delivered());
  EXPECT_EQ(res.hops, 2u);  // 10 -> 20 -> 80
}

TEST(Router, RejectsMismatchedView) {
  const auto g1 = bare_ring(8);
  const auto g2 = bare_ring(8);
  const auto view = FailureView::all_alive(g2);
  EXPECT_THROW(Router(g1, view), std::invalid_argument);
}

TEST(Router, RejectsBadRouteArguments) {
  const auto g = bare_ring(8);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  util::Rng rng(1);
  EXPECT_THROW(static_cast<void>(router.route(99, 0, rng)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(router.route(0, 99, rng)), std::invalid_argument);
}

TEST(RouteSession, StepByStepMatchesRoute) {
  util::Rng build_rng(5);
  BuildSpec spec;
  spec.grid_size = 256;
  spec.long_links = 4;
  const OverlayGraph g = build_overlay(spec, build_rng);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);

  util::Rng rng_a(9), rng_b(9);
  const RouteResult direct = router.route(7, 200, rng_a);

  RouteSession session(router, 7, 200);
  std::size_t steps = 0;
  while (session.step(rng_b)) ++steps;
  EXPECT_EQ(session.progress().status, direct.status);
  EXPECT_EQ(session.progress().hops, direct.hops);
  EXPECT_EQ(steps, direct.hops);
}

TEST(RouteSession, AdaptsToViewChangesMidFlight) {
  auto g = bare_ring(10);
  auto view = FailureView::all_alive(g);
  const Router router(g, view);
  RouteSession session(router, 0, 5);
  util::Rng rng(1);
  ASSERT_EQ(session.step(rng), std::optional<NodeId>(1));
  // Node 2 dies while the message sits at node 1: the session must stop.
  view.kill_node(2);
  EXPECT_EQ(session.step(rng), std::nullopt);
  EXPECT_EQ(session.state(), RouteSession::State::kStuck);
}

// -- Property sweep: greedy routing without failures always delivers ---------

struct SweepCase {
  std::string name;
  Space1D::Kind topology;
  Sidedness sidedness;
  std::uint64_t n;
  std::size_t links;
};

class GreedySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GreedySweep, AlwaysDeliversAndNeverLengthensTheWalk) {
  const auto& param = GetParam();
  util::Rng rng(1234);
  BuildSpec spec;
  spec.grid_size = param.n;
  spec.topology = param.topology;
  spec.long_links = param.links;
  const OverlayGraph g = build_overlay(spec, rng);
  const auto view = FailureView::all_alive(g);
  RouterConfig cfg;
  cfg.sidedness = param.sidedness;
  cfg.record_path = true;
  const Router router(g, view, cfg);

  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<NodeId>(rng.next_below(g.size()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.size()));
    const RouteResult res = router.route(src, g.position(dst), rng);
    ASSERT_TRUE(res.delivered()) << param.name;
    // Greedy moves strictly closer each hop, so hops <= initial distance and
    // recorded distances decrease monotonically.
    const metric::Distance d0 = g.node_distance(src, dst);
    EXPECT_LE(res.hops, d0);
    metric::Distance prev = d0;
    for (const NodeId v : res.path) {
      const metric::Distance d = g.node_distance(v, dst);
      if (v != src) {
        EXPECT_LT(d, prev);
      }
      prev = d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, GreedySweep,
    ::testing::Values(
        SweepCase{"ring_two_sided", Space1D::Kind::kRing, Sidedness::kTwoSided, 512, 4},
        SweepCase{"ring_one_sided", Space1D::Kind::kRing, Sidedness::kOneSided, 512, 4},
        SweepCase{"line_two_sided", Space1D::Kind::kLine, Sidedness::kTwoSided, 512, 4},
        SweepCase{"line_one_sided", Space1D::Kind::kLine, Sidedness::kOneSided, 512, 4},
        SweepCase{"ring_single_link", Space1D::Kind::kRing, Sidedness::kTwoSided, 256, 1},
        SweepCase{"tiny_ring", Space1D::Kind::kRing, Sidedness::kTwoSided, 4, 1},
        SweepCase{"tiny_line", Space1D::Kind::kLine, Sidedness::kOneSided, 4, 1}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace p2p::core
