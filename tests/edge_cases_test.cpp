// Cross-module edge cases: degenerate sizes, boundary interactions between
// failure views and routing policies, simulator corner behaviours, and DHT
// boundary conditions not covered by the per-module suites.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/construction.h"
#include "core/router.h"
#include "core/secure_router.h"
#include "dht/dht.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "sim/hop_simulator.h"
#include "sim/network_sim.h"
#include "util/rng.h"

namespace p2p {
namespace {

using core::Router;
using core::RouterConfig;
using core::StuckPolicy;
using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;
using metric::Point;
using metric::Space1D;

// -- Degenerate graph sizes ---------------------------------------------------

TEST(EdgeCases, TwoNodeRingRoutesBothWays) {
  OverlayGraph g(Space1D::ring(2));
  graph::wire_short_links(g);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  util::Rng rng(1);
  EXPECT_EQ(router.route(0, 1, rng).hops, 1u);
  EXPECT_EQ(router.route(1, 0, rng).hops, 1u);
}

TEST(EdgeCases, TwoNodeLineViaBuilder) {
  util::Rng rng(2);
  graph::BuildSpec spec;
  spec.grid_size = 2;
  spec.topology = Space1D::Kind::kLine;
  const auto g = graph::build_overlay(spec, rng);
  EXPECT_EQ(g.short_degree(0), 1u);
  EXPECT_EQ(g.short_degree(1), 1u);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  EXPECT_TRUE(router.route(0, 1, rng).delivered());
}

TEST(EdgeCases, SingleMemberOverlaySnapshotAndRouting) {
  core::ConstructionConfig cfg;
  cfg.long_links = 3;
  core::DynamicOverlay overlay(Space1D::ring(64), cfg);
  util::Rng rng(3);
  overlay.join(10, rng);
  const auto g = overlay.snapshot();
  EXPECT_EQ(g.size(), 1u);
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);
  // Routing anywhere resolves to the only node: zero hops.
  EXPECT_TRUE(router.route(0, 40, rng).delivered());
}

TEST(EdgeCases, ThreeMemberRingSnapshotShortLinksFormACycle) {
  core::ConstructionConfig cfg;
  cfg.long_links = 1;
  core::DynamicOverlay overlay(Space1D::ring(100), cfg);
  util::Rng rng(4);
  for (const Point p : {5, 50, 80}) overlay.join(p, rng);
  const auto g = overlay.snapshot();
  ASSERT_EQ(g.size(), 3u);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.short_degree(u), 2u);
  }
}

// -- FailureView x policy interactions ---------------------------------------

TEST(EdgeCases, BacktrackOverDeadSourceNeighboursFailsCleanly) {
  OverlayGraph g(Space1D::ring(8));
  graph::wire_short_links(g);
  auto view = FailureView::all_alive(g);
  view.kill_node(1);
  view.kill_node(7);  // source completely cut off
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  const Router router(g, view, cfg);
  util::Rng rng(5);
  const auto res = router.route(0, 4, rng);
  EXPECT_EQ(res.status, core::RouteResult::Status::kStuck);
  EXPECT_EQ(res.hops, 0u);
}

TEST(EdgeCases, RerouteWithZeroBudgetBehavesLikeTerminate) {
  OverlayGraph g(Space1D::ring(10));
  graph::wire_short_links(g);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kRandomReroute;
  cfg.max_reroutes = 0;
  const Router router(g, view, cfg);
  util::Rng rng(6);
  const auto res = router.route(0, 5, rng);
  EXPECT_EQ(res.status, core::RouteResult::Status::kStuck);
  EXPECT_EQ(res.reroutes, 0u);
}

TEST(EdgeCases, RouteToDeadTargetAlwaysFails) {
  util::Rng rng(7);
  graph::BuildSpec spec;
  spec.grid_size = 128;
  spec.long_links = 4;
  const auto g = graph::build_overlay(spec, rng);
  auto view = FailureView::all_alive(g);
  view.kill_node(64);
  for (const auto policy : {StuckPolicy::kTerminate, StuckPolicy::kRandomReroute,
                            StuckPolicy::kBacktrack}) {
    RouterConfig cfg;
    cfg.stuck_policy = policy;
    const Router router(g, view, cfg);
    EXPECT_FALSE(router.route(0, 64, rng).delivered());
  }
}

TEST(EdgeCases, LinkAndNodeFailureViewsCompose) {
  // kill_link on a node-failure view: both effects must apply.
  util::Rng rng(8);
  graph::BuildSpec spec;
  spec.grid_size = 32;
  spec.long_links = 2;
  const auto g = graph::build_overlay(spec, rng);
  auto view = FailureView::with_node_failures(g, 0.0, rng);
  view.kill_node(5);
  view.kill_link(0, 0);
  EXPECT_FALSE(view.hop_usable(0, 0));
  EXPECT_FALSE(view.node_alive(5));
  EXPECT_TRUE(view.node_alive(0));
}

// -- Simulator corners ---------------------------------------------------------

TEST(EdgeCases, SimulatorHandlesBacktrackPolicy) {
  OverlayGraph g(Space1D::ring(10));
  graph::wire_short_links(g);
  auto view = FailureView::all_alive(g);
  view.kill_node(4);
  core::RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  sim::NetworkSimulator simulator(g, std::move(view), cfg,
                                  sim::LatencyModel{1.0, 1.0}, 9);
  simulator.submit_search(0.0, 0, 5);
  simulator.run();
  ASSERT_EQ(simulator.records().size(), 1u);
  const auto& rec = simulator.records()[0];
  EXPECT_TRUE(rec.result.delivered());
  EXPECT_EQ(rec.result.hops, 11u);  // same walk as the synchronous router
  EXPECT_DOUBLE_EQ(rec.latency(), 11.0);
}

TEST(EdgeCases, SimulatorZeroHopSearchCompletesImmediately) {
  OverlayGraph g(Space1D::ring(4));
  graph::wire_short_links(g);
  sim::NetworkSimulator simulator(g, FailureView::all_alive(g), {},
                                  sim::LatencyModel{1.0, 1.0}, 10);
  simulator.submit_search(5.0, 2, 2);
  simulator.run();
  ASSERT_EQ(simulator.records().size(), 1u);
  EXPECT_TRUE(simulator.records()[0].result.delivered());
  EXPECT_DOUBLE_EQ(simulator.records()[0].latency(), 0.0);
}

TEST(EdgeCases, SimulatorCompletionCallbackFires) {
  OverlayGraph g(Space1D::ring(8));
  graph::wire_short_links(g);
  sim::NetworkSimulator simulator(g, FailureView::all_alive(g), {},
                                  sim::LatencyModel{1.0, 1.0}, 11);
  int completed = 0;
  simulator.on_search_complete([&](const sim::SearchRecord&) { ++completed; });
  simulator.submit_search(0.0, 0, 3);
  simulator.submit_search(0.0, 1, 5);
  simulator.run();
  EXPECT_EQ(completed, 2);
}

// -- DHT boundaries -------------------------------------------------------------

TEST(EdgeCases, DhtWithSingleNodeStoresLocally) {
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 2;
  cfg.replication = 3;  // more replicas than nodes: clamps to node count
  dht::Dht store(Space1D::ring(64), cfg, 12);
  store.add_node(7);
  ASSERT_TRUE(store.put(7, "k", "v").ok);
  EXPECT_EQ(store.stored_copies(), 1u);
  const auto got = store.get(7, "k");
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.value, "v");
}

TEST(EdgeCases, DhtEraseOfUnknownKeySucceedsIdempotently) {
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 2;
  dht::Dht store(Space1D::ring(64), cfg, 13);
  store.add_node(0);
  store.add_node(32);
  EXPECT_TRUE(store.erase(0, "never-put").ok);
  EXPECT_EQ(store.stored_copies(), 0u);
}

TEST(EdgeCases, DhtReplicationClampsToMembership) {
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 2;
  cfg.replication = 5;
  dht::Dht store(Space1D::ring(256), cfg, 14);
  store.add_node(0);
  store.add_node(100);
  ASSERT_TRUE(store.put(0, "k", "v").ok);
  EXPECT_EQ(store.stored_copies(), 2u);  // only two members exist
  store.add_node(50);
  store.add_node(150);
  store.add_node(200);
  // Rebalance on join grows the replica set toward the factor.
  EXPECT_EQ(store.owners_of("k").size(), 5u);
  EXPECT_EQ(store.stored_copies(), 5u);
}

TEST(EdgeCases, DhtValueOverwriteKeepsSingleHolderSet) {
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 2;
  cfg.replication = 2;
  dht::Dht store(Space1D::ring(128), cfg, 15);
  for (Point p = 0; p < 128; p += 16) store.add_node(p);
  for (int i = 0; i < 5; ++i) {
    const std::string value = std::string("v") + std::to_string(i);
    ASSERT_TRUE(store.put(0, "k", value).ok);
  }
  EXPECT_EQ(store.stored_copies(), 2u);  // overwrites do not duplicate
  EXPECT_EQ(store.get(16, "k").value, "v4");
}

// -- Secure router corners -------------------------------------------------------

TEST(EdgeCases, SecureRouterMorePathsThanNeighboursStillWorks) {
  OverlayGraph g(Space1D::ring(16));
  graph::wire_short_links(g);
  const auto view = FailureView::all_alive(g);
  const auto byz = failure::ByzantineSet::none(g);
  const core::SecureRouter router(g, view, byz, {.paths = 10});
  util::Rng rng(16);
  const auto res = router.route(0, 8, rng);
  EXPECT_TRUE(res.delivered);
  // Only two distinct first hops exist; extra walks reuse the last rank.
  EXPECT_EQ(res.successful_walks, 10u);
}

TEST(EdgeCases, FullyByzantineInteriorBlocksEverything) {
  OverlayGraph g(Space1D::ring(8));
  graph::wire_short_links(g);
  const auto view = FailureView::all_alive(g);
  auto byz = failure::ByzantineSet::none(g);
  for (NodeId u = 1; u < 8; ++u) {
    if (u != 4) byz.corrupt(u);
  }
  const core::SecureRouter router(g, view, byz, {.paths = 4});
  util::Rng rng(17);
  EXPECT_FALSE(router.route(0, 4, rng).delivered);
}

// -- run_batch preconditions -----------------------------------------------------

TEST(EdgeCases, RunBatchRequiresTwoLiveNodes) {
  OverlayGraph g(Space1D::ring(4));
  graph::wire_short_links(g);
  auto view = FailureView::all_alive(g);
  for (NodeId u = 1; u < 4; ++u) view.kill_node(u);
  const Router router(g, view);
  util::Rng rng(18);
  EXPECT_THROW(static_cast<void>(sim::run_batch(router, 10, rng)),
               std::invalid_argument);
}

}  // namespace
}  // namespace p2p
