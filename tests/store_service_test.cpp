// Concurrent store frontend (service/store_service.h) — the TSan-covered
// suite for the quorum store's threaded path:
//  * with an idle writer and distinct keys per stripe, run_all is
//    bit-identical across worker counts (the RoutingService determinism
//    contract carried over to quorum ops);
//  * a live churn writer publishing mid-run: every op still completes, every
//    executed stripe observed an exactly-published epoch, and the store's
//    stripe locks hold up under ThreadSanitizer;
//  * request_stop() before run_all drains to zero completed ops;
//  * constructor validation (graph mismatch, zero stripe).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "churn/churn_log.h"
#include "churn/trace_gen.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "service/store_service.h"
#include "service/view_publisher.h"
#include "store/quorum_store.h"
#include "util/rng.h"

namespace p2p::service {
namespace {

using failure::FailureView;
using graph::NodeId;

graph::OverlayGraph ring_overlay(std::uint64_t n, std::uint64_t seed = 9) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.topology = metric::Space1D::Kind::kRing;
  spec.long_links = 4;
  spec.bidirectional = true;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

/// Distinct keys per op (hence per stripe): the determinism contract's
/// precondition.
std::vector<store::Op> distinct_key_ops(const FailureView& view,
                                        std::size_t count,
                                        std::uint64_t seed = 21) {
  util::Rng rng(seed);
  std::vector<store::Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    store::Op op;
    op.type = (i % 4 == 3) ? store::OpType::kGet : store::OpType::kPut;
    op.client = view.random_alive(rng);
    op.key = "svc-" + std::to_string(i);
    op.value = "v" + std::to_string(i);
    ops.push_back(op);
  }
  return ops;
}

TEST(StoreService, ValidatesConstruction) {
  const auto g = ring_overlay(64);
  const auto other = ring_overlay(64, 10);
  ViewPublisher pub(FailureView::all_alive(g));
  store::QuorumStore mismatched(other);
  EXPECT_THROW(StoreService(pub, mismatched), std::invalid_argument);

  store::QuorumStore store(g);
  StoreServiceConfig cfg;
  cfg.stripe = 0;
  EXPECT_THROW(StoreService(pub, store, cfg), std::invalid_argument);
}

TEST(StoreService, WorkerCountsAgreeBitForBit) {
  const auto g = ring_overlay(128);
  ViewPublisher pub(FailureView::all_alive(g));
  const auto ops = distinct_key_ops(pub.writer_view(), 96);

  // Reference: single worker.
  std::vector<store::OpResult> ref(ops.size());
  {
    store::QuorumStore store(g);
    StoreServiceConfig cfg;
    cfg.workers = 1;
    cfg.stripe = 16;
    cfg.seed = 33;
    StoreService svc(pub, store, cfg);
    const StoreServiceStats stats = svc.run_all(ops, ref);
    EXPECT_EQ(stats.completed, ops.size());
    EXPECT_EQ(stats.ok, ops.size());
  }

  for (const std::size_t workers : {2u, 4u}) {
    store::QuorumStore store(g);
    StoreServiceConfig cfg;
    cfg.workers = workers;
    cfg.stripe = 16;
    cfg.seed = 33;
    StoreService svc(pub, store, cfg);
    std::vector<store::OpResult> results(ops.size());
    const StoreServiceStats stats = svc.run_all(ops, results);
    EXPECT_EQ(stats.completed, ops.size());
    EXPECT_EQ(stats.stripes, (ops.size() + 15) / 16);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(results[i].ok, ref[i].ok) << i;
      EXPECT_EQ(results[i].acks, ref[i].acks) << i;
      EXPECT_EQ(results[i].responses, ref[i].responses) << i;
      EXPECT_EQ(results[i].subqueries, ref[i].subqueries) << i;
      EXPECT_EQ(results[i].hops, ref[i].hops) << i;
      EXPECT_EQ(results[i].value, ref[i].value) << i;
      EXPECT_DOUBLE_EQ(results[i].latency_ms, ref[i].latency_ms) << i;
    }
  }
}

TEST(StoreService, RunsUnderLiveChurnWriter) {
  const auto g = ring_overlay(256);
  churn::TraceSpec spec;
  spec.scenario = churn::TraceSpec::Scenario::kPoissonChurn;
  spec.duration = 200.0;
  spec.batch_interval = 1.0;
  spec.kill_rate = 2.0;
  spec.revive_rate = 2.0;
  util::Rng trace_rng(17);
  const churn::ChurnLog log = churn::make_trace(g, spec, trace_rng);

  ViewPublisher pub(log.baseline());
  store::QuorumStore store(g);
  StoreServiceConfig cfg;
  cfg.workers = 4;
  cfg.stripe = 8;
  StoreService svc(pub, store, cfg);

  const auto ops = distinct_key_ops(pub.writer_view(), 256);
  std::vector<store::OpResult> results(ops.size());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Publish epochs as fast as the run consumes them; stop with the run.
    for (std::size_t e = 0; e < log.size() && !done.load(); ++e) {
      pub.writer_view().apply(log.delta(e));
      pub.publish();
      std::this_thread::yield();
    }
  });
  const StoreServiceStats stats = svc.run_all(ops, results);
  done.store(true);
  writer.join();

  EXPECT_EQ(stats.completed, ops.size());
  EXPECT_EQ(stats.stripes, ops.size() / 8);
  EXPECT_LE(stats.min_epoch, stats.max_epoch);
  EXPECT_LE(stats.max_epoch, log.size());
  // Quorum ops under churn may fail; completed results must still be sane.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_GE(results[i].subqueries, 1u) << i;
  }
}

TEST(StoreService, RequestStopDrainsToZero) {
  const auto g = ring_overlay(64);
  ViewPublisher pub(FailureView::all_alive(g));
  store::QuorumStore store(g);
  StoreService svc(pub, store);
  svc.request_stop();
  EXPECT_TRUE(svc.stop_requested());

  const auto ops = distinct_key_ops(pub.writer_view(), 16);
  std::vector<store::OpResult> results(ops.size());
  const StoreServiceStats stats = svc.run_all(ops, results);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.ok, 0u);
}

}  // namespace
}  // namespace p2p::service
