// Unit tests for failure/failure_model.h.
#include <gtest/gtest.h>

#include <stdexcept>

#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace p2p::failure {
namespace {

graph::OverlayGraph make_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

TEST(FailureView, AllAliveLeavesEverythingUsable) {
  const auto g = make_graph(64, 2, 1);
  const auto view = FailureView::all_alive(g);
  EXPECT_EQ(view.alive_count(), 64u);
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    EXPECT_TRUE(view.node_alive(u));
    for (std::size_t i = 0; i < g.out_degree(u); ++i) {
      EXPECT_TRUE(view.link_alive(u, i));
      EXPECT_TRUE(view.hop_usable(u, i));
    }
  }
}

TEST(FailureView, NodeFailureRateMatchesProbability) {
  const auto g = make_graph(4096, 1, 2);
  util::Rng rng(3);
  const auto view = FailureView::with_node_failures(g, 0.3, rng);
  const double dead_fraction =
      1.0 - static_cast<double>(view.alive_count()) / static_cast<double>(g.size());
  EXPECT_NEAR(dead_fraction, 0.3, 0.03);
}

TEST(FailureView, NodeFailureExtremes) {
  const auto g = make_graph(64, 1, 4);
  util::Rng rng(5);
  const auto none = FailureView::with_node_failures(g, 0.0, rng);
  EXPECT_EQ(none.alive_count(), 64u);
  const auto all = FailureView::with_node_failures(g, 1.0, rng);
  EXPECT_EQ(all.alive_count(), 0u);
}

TEST(FailureView, LinkFailuresNeverTouchShortLinks) {
  const auto g = make_graph(512, 8, 6);
  util::Rng rng(7);
  const auto view = FailureView::with_link_failures(g, 0.1, rng);
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    for (std::size_t i = 0; i < g.short_degree(u); ++i) {
      EXPECT_TRUE(view.link_alive(u, i));
    }
  }
}

TEST(FailureView, LinkFailureRateMatchesProbability) {
  const auto g = make_graph(1024, 8, 8);
  util::Rng rng(9);
  const double p_present = 0.6;
  const auto view = FailureView::with_link_failures(g, p_present, rng);
  std::size_t alive = 0, total = 0;
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    for (std::size_t i = g.short_degree(u); i < g.out_degree(u); ++i) {
      ++total;
      alive += view.link_alive(u, i) ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(alive) / static_cast<double>(total), p_present,
              0.02);
  // Node aliveness is untouched by link failures.
  EXPECT_EQ(view.alive_count(), g.size());
}

TEST(FailureView, HopUsableRequiresBothEnds) {
  const auto g = make_graph(16, 1, 10);
  auto view = FailureView::all_alive(g);
  const graph::NodeId v = g.neighbors(0)[0];
  view.kill_node(v);
  EXPECT_TRUE(view.link_alive(0, 0));
  EXPECT_FALSE(view.hop_usable(0, 0));
}

TEST(FailureView, KillAndReviveNode) {
  const auto g = make_graph(16, 1, 11);
  auto view = FailureView::all_alive(g);
  view.kill_node(3);
  EXPECT_FALSE(view.node_alive(3));
  EXPECT_EQ(view.alive_count(), 15u);
  view.kill_node(3);  // idempotent
  EXPECT_EQ(view.alive_count(), 15u);
  view.revive_node(3);
  EXPECT_TRUE(view.node_alive(3));
  EXPECT_EQ(view.alive_count(), 16u);
}

TEST(FailureView, KillLink) {
  const auto g = make_graph(16, 2, 12);
  auto view = FailureView::all_alive(g);
  view.kill_link(0, 1);
  EXPECT_FALSE(view.link_alive(0, 1));
  EXPECT_TRUE(view.link_alive(0, 0));
  EXPECT_TRUE(view.link_alive(1, 1));
}

TEST(FailureView, RandomAliveOnlyReturnsLiveNodes) {
  const auto g = make_graph(128, 1, 13);
  util::Rng rng(14);
  auto view = FailureView::with_node_failures(g, 0.9, rng);
  ASSERT_GT(view.alive_count(), 0u);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(view.node_alive(view.random_alive(rng)));
  }
}

TEST(FailureView, RandomAliveIsRoughlyUniform) {
  const auto g = make_graph(8, 1, 15);
  auto view = FailureView::all_alive(g);
  view.kill_node(0);
  util::Rng rng(16);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 70'000;
  for (int i = 0; i < kDraws; ++i) ++counts[view.random_alive(rng)];
  EXPECT_EQ(counts[0], 0);
  for (graph::NodeId u = 1; u < 8; ++u) {
    EXPECT_NEAR(counts[u], kDraws / 7.0, 450.0);
  }
}

TEST(FailureView, RejectsBadProbabilities) {
  const auto g = make_graph(16, 1, 17);
  util::Rng rng(18);
  EXPECT_THROW(FailureView::with_node_failures(g, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(FailureView::with_node_failures(g, 1.1, rng), std::invalid_argument);
  EXPECT_THROW(FailureView::with_link_failures(g, 2.0, rng), std::invalid_argument);
}

TEST(FailureView, RandomAliveThrowsWhenAllDead) {
  const auto g = make_graph(4, 1, 19);
  util::Rng rng(20);
  auto view = FailureView::with_node_failures(g, 1.0, rng);
  EXPECT_THROW(static_cast<void>(view.random_alive(rng)), std::invalid_argument);
}

}  // namespace
}  // namespace p2p::failure
