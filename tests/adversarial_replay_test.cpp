// Tests for churn::AdversarialReplay — crash churn and Byzantine
// corrupt/heal waves composed through core::SecureRouter on one
// discrete-event trace — including the PR acceptance equivalences:
//  * a full replay is bit-deterministic per (graph, log, waves, config);
//  * at widths 1 and 32, the replay driver's results are identical to a
//    manual driver that applies the merged delta schedule by hand between
//    pipeline ticks (same tick-debt accounting, same same-instant order:
//    crash before corruption);
//  * a walk standing on a node killed by a replay delta dies where it
//    stands — it never steps out of a crashed node, and the crash is not
//    blamed on the node's reputation;
//  * the composed kMisroute + kRegionalOutage scenario drives both epoch
//    cursors and the decay schedule while every per-query invariant holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "churn/adversarial_replay.h"
#include "churn/churn_log.h"
#include "churn/trace_gen.h"
#include "core/router.h"
#include "core/secure_router.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "failure/reputation.h"
#include "graph/graph_builder.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace p2p::churn {
namespace {

using core::SecureBatchPipeline;
using core::SecureRouteResult;
using core::SecureRouter;
using core::SecureRouterConfig;
using core::SecureRouteSession;
using core::WalkOutcome;
using failure::ByzantineBehavior;
using failure::ByzantineDelta;
using failure::ByzantineSet;
using failure::FailureView;
using failure::ReputationTable;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph make_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.bidirectional = true;
  return graph::build_overlay(spec, rng);
}

ChurnLog poisson_log(const OverlayGraph& g, double duration, std::uint64_t seed) {
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kPoissonChurn;
  spec.duration = duration;
  spec.kill_rate = 2.0;
  spec.revive_rate = 2.0;
  util::Rng rng(seed);
  return make_trace(g, spec, rng);
}

std::vector<ByzantineDelta> hub_waves(const OverlayGraph& g, double duration,
                                      double period, std::size_t wave_size) {
  ByzantineWaveSpec spec;
  spec.duration = duration;
  spec.wave_period = period;
  spec.wave_size = wave_size;
  spec.hub_offset = wave_size;  // disjoint from the crash waves' rank-0 tier
  return make_byzantine_waves(g, spec);
}

void expect_same_result(const SecureRouteResult& got,
                        const SecureRouteResult& want, const std::string& label) {
  EXPECT_EQ(got.delivered, want.delivered) << label;
  EXPECT_EQ(got.successful_walks, want.successful_walks) << label;
  EXPECT_EQ(got.total_messages, want.total_messages) << label;
  EXPECT_EQ(got.best_hops, want.best_hops) << label;
  EXPECT_EQ(got.walks_launched, want.walks_launched) << label;
  EXPECT_EQ(got.walks_died, want.walks_died) << label;
  EXPECT_EQ(got.walks_stuck, want.walks_stuck) << label;
  EXPECT_EQ(got.walks_ttl_expired, want.walks_ttl_expired) << label;
  EXPECT_EQ(got.escalations, want.escalations) << label;
  EXPECT_EQ(got.completion_epoch, want.completion_epoch) << label;
  EXPECT_EQ(got.byzantine_epoch, want.byzantine_epoch) << label;
}

TEST(AdversarialReplay, ReplayIsDeterministic) {
  const auto g = make_graph(1024, 8, 1);
  const auto log = poisson_log(g, 100.0, 2);
  const auto waves = hub_waves(g, 100.0, 25.0, 16);
  ASSERT_GT(log.size(), 0u);
  ASSERT_GT(waves.size(), 0u);

  AdversarialReplayConfig rc;
  rc.queries = 256;
  rc.width = 16;
  rc.seed = 7;
  rc.ticks_per_ms = 48.0;
  rc.decay_interval_ms = 20.0;

  const auto run_once = [&](std::vector<SecureRouteResult>& results,
                            std::vector<double>& times) {
    auto view = log.baseline();
    auto byz = ByzantineSet::none(g);
    ReputationTable table(g);
    SecureRouterConfig cfg;
    cfg.paths = 2;
    cfg.max_paths = 6;
    cfg.behavior = ByzantineBehavior::kMisroute;
    cfg.reputation = &table;
    const SecureRouter router(g, view, byz, cfg);
    sim::EventQueue queue;
    AdversarialReplay replay(router, log, waves, view, byz, queue, rc);
    const auto stats = replay.run();
    results.assign(replay.results().begin(), replay.results().end());
    times.assign(replay.completion_times().begin(),
                 replay.completion_times().end());
    return stats;
  };

  std::vector<SecureRouteResult> results_a, results_b;
  std::vector<double> times_a, times_b;
  const auto stats_a = run_once(results_a, times_a);
  const auto stats_b = run_once(results_b, times_b);

  EXPECT_EQ(stats_a.churn_deltas_applied, stats_b.churn_deltas_applied);
  EXPECT_EQ(stats_a.byzantine_deltas_applied, stats_b.byzantine_deltas_applied);
  EXPECT_EQ(stats_a.reputation_decays, stats_b.reputation_decays);
  EXPECT_EQ(stats_a.ticks, stats_b.ticks);
  EXPECT_EQ(stats_a.routed, stats_b.routed);
  EXPECT_EQ(stats_a.delivered, stats_b.delivered);
  EXPECT_EQ(stats_a.total_messages, stats_b.total_messages);
  EXPECT_EQ(stats_a.walks_launched, stats_b.walks_launched);
  EXPECT_EQ(stats_a.escalations, stats_b.escalations);
  EXPECT_EQ(stats_a.final_epoch, stats_b.final_epoch);
  EXPECT_EQ(stats_a.final_byzantine_epoch, stats_b.final_byzantine_epoch);
  ASSERT_EQ(results_a.size(), results_b.size());
  for (std::size_t i = 0; i < results_a.size(); ++i) {
    expect_same_result(results_a[i], results_b[i], "query " + std::to_string(i));
  }
  EXPECT_EQ(times_a, times_b);
}

// The replay's event machinery (queue, tick debt, same-instant ordering) must
// be observationally equivalent to applying the merged delta schedule by hand
// between pipeline ticks — at width 1 (fully serial searches) and the default
// 32 (interleaved lanes), since the tick interleave differs per width.
TEST(AdversarialReplay, MatchesManualDriverAtWidthsOneAndThirtyTwo) {
  const auto g = make_graph(1024, 8, 11);
  const auto log = poisson_log(g, 100.0, 12);
  const auto waves = hub_waves(g, 100.0, 25.0, 16);
  ASSERT_GT(log.size(), 0u);
  ASSERT_GT(waves.size(), 0u);

  // The merged schedule in the replay's same-instant order: crash deltas are
  // scheduled first, so EventQueue's sequence tie-break fires them before
  // same-instant corruption deltas.
  struct Event {
    double when;
    int kind;  // 0 = churn, 1 = byzantine
    std::size_t index;
  };
  std::vector<Event> events;
  for (std::size_t e = 0; e < log.size(); ++e) {
    events.push_back({log.delta(e).when, 0, e});
  }
  for (std::size_t i = 0; i < waves.size(); ++i) {
    events.push_back({waves[i].when, 1, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  });

  SecureRouterConfig cfg;
  cfg.paths = 2;
  cfg.max_paths = 6;
  cfg.behavior = ByzantineBehavior::kMisroute;

  for (const std::size_t width : {std::size_t{1}, std::size_t{32}}) {
    AdversarialReplayConfig rc;
    rc.queries = width == 1 ? 48 : 256;  // width 1 serializes; keep it cheap
    rc.width = width;
    rc.seed = 13;
    rc.ticks_per_ms = 48.0;
    rc.decay_interval_ms = 0.0;  // reputation off: nothing to decay

    // Replay driver.
    auto view_r = log.baseline();
    auto byz_r = ByzantineSet::none(g);
    const SecureRouter router_r(g, view_r, byz_r, cfg);
    sim::EventQueue queue;
    AdversarialReplay replay(router_r, log, waves, view_r, byz_r, queue, rc);
    const auto stats = replay.run();
    EXPECT_EQ(stats.churn_deltas_applied, log.size());
    EXPECT_EQ(stats.byzantine_deltas_applied, waves.size());

    // Manual driver: same queries, same per-query streams, deltas applied by
    // hand at the identical tick debt.
    const std::vector<core::Query> queries(replay.queries().begin(),
                                           replay.queries().end());
    auto view_m = log.baseline();
    auto byz_m = ByzantineSet::none(g);
    const SecureRouter router_m(g, view_m, byz_m, cfg);
    std::vector<SecureRouteResult> results(queries.size());
    SecureBatchPipeline pipe(
        router_m, queries, results,
        util::splitmix64(rc.seed ^ 0xc4ce'b9fe'1a85'ec53ULL), width);
    // `debt` mirrors the replay's tick accounting (it jumps ahead once the
    // workload drains); `actual` counts real pipeline ticks, which is what
    // stats.ticks reports.
    std::size_t debt = 0, actual = 0;
    bool live = true;
    const auto advance_to = [&](double now) {
      const auto target = static_cast<std::size_t>(now * rc.ticks_per_ms);
      while (live && debt < target) {
        live = pipe.tick();
        ++debt;
        ++actual;
      }
      if (!live) debt = std::max(debt, target);
    };
    for (const Event& ev : events) {
      advance_to(ev.when);
      if (ev.kind == 0) {
        log.seek(view_m, ev.index + 1);
      } else {
        byz_m.apply(waves[ev.index]);
      }
    }
    while (live) {
      live = pipe.tick();
      ++actual;
    }

    EXPECT_EQ(stats.ticks, actual) << "width=" << width;
    EXPECT_EQ(view_m.epoch(), stats.final_epoch) << "width=" << width;
    EXPECT_EQ(byz_m.epoch(), stats.final_byzantine_epoch) << "width=" << width;
    ASSERT_EQ(replay.results().size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      expect_same_result(replay.results()[i], results[i],
                         "width=" + std::to_string(width) + " query=" +
                             std::to_string(i));
    }
  }
}

// Sessions re-read the failure view every tick: a walk standing on a node a
// delta just killed must die *in place* (kDied at that node, no further
// transmission), and the crash must not be charged to the node's reputation
// (visible failures are the FailureView's business).
TEST(AdversarialReplay, WalkOnFreshlyKilledNodeDiesWhereItStands) {
  // A bare 8-ring of short links: from 0 toward 3 the only strictly closer
  // neighbour is 1, so the first hop is forced and the test fully determined.
  graph::GraphBuilder builder{metric::Space1D::ring(8)};
  builder.wire_short_links();
  const auto g = builder.freeze();

  auto view = FailureView::all_alive(g);
  const auto byz = ByzantineSet::none(g);
  ReputationTable table(g);
  SecureRouterConfig cfg;
  cfg.paths = 1;
  cfg.record_walks = true;
  cfg.reputation = &table;
  const SecureRouter router(g, view, byz, cfg);

  const core::Router plain(g, view);
  const NodeId first = plain.select_candidate(0, g.position(3), 0);
  ASSERT_EQ(first, 1u);

  SecureRouteSession session(router, 0, g.position(3));
  util::Rng rng(1);
  ASSERT_TRUE(session.tick(rng));  // one transmission: 0 -> 1
  view.kill_node(first);           // the delta lands between transmissions
  while (session.tick(rng)) {
  }
  const SecureRouteResult& res = session.result();
  EXPECT_FALSE(res.delivered);
  EXPECT_EQ(res.walks_died, 1u);
  EXPECT_EQ(res.total_messages, 1u);  // the walk never left the dead node
  ASSERT_EQ(res.walks.size(), 1u);
  EXPECT_EQ(res.walks[0].outcome, WalkOutcome::kDied);
  EXPECT_EQ(res.walks[0].last, first);
  EXPECT_EQ(res.walks[0].hops, 1u);
  // Crash != blame: an honestly crashed node keeps its clean record.
  EXPECT_DOUBLE_EQ(table.penalty(first), 0.0);
  EXPECT_TRUE(table.trusted(first));
}

// The composed scenario of the ISSUE: misrouting hub adversary + correlated
// regional outages, with reputation feedback and escalation live. Checks the
// schedule bookkeeping, both epoch cursors, the decay cadence and every
// per-query structural invariant.
TEST(AdversarialReplay, ComposedMisrouteAndRegionalOutage) {
  const auto g = make_graph(2048, 8, 21);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kRegionalOutage;
  spec.duration = 200.0;
  spec.outages = 2;
  spec.region_fraction = 0.15;
  util::Rng trace_rng(22);
  const auto log = make_trace(g, spec, trace_rng);
  const auto waves = hub_waves(g, 200.0, 50.0, 64);
  ASSERT_GT(log.size(), 0u);
  ASSERT_GT(waves.size(), 0u);

  auto view = log.baseline();
  auto byz = ByzantineSet::none(g);
  ReputationTable table(g);
  SecureRouterConfig cfg;
  cfg.paths = 2;
  cfg.max_paths = 6;
  cfg.behavior = ByzantineBehavior::kMisroute;
  cfg.reputation = &table;
  const SecureRouter router(g, view, byz, cfg);

  AdversarialReplayConfig rc;
  rc.queries = 384;
  rc.width = 32;
  rc.seed = 23;
  rc.ticks_per_ms = 32.0;
  rc.decay_interval_ms = 25.0;
  sim::EventQueue queue;
  AdversarialReplay replay(router, log, waves, view, byz, queue, rc);
  const auto stats = replay.run();

  EXPECT_EQ(stats.routed, rc.queries);
  EXPECT_EQ(stats.churn_deltas_applied, log.size());
  EXPECT_EQ(stats.byzantine_deltas_applied, waves.size());
  EXPECT_EQ(stats.final_epoch, log.size());
  EXPECT_EQ(stats.final_byzantine_epoch, waves.size());
  EXPECT_EQ(view.epoch(), log.size());
  EXPECT_EQ(byz.epoch(), waves.size());
  EXPECT_GT(stats.reputation_decays, 0u);
  EXPECT_EQ(table.epoch(), stats.reputation_decays);
  EXPECT_GT(stats.sim_end, 0.0);
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_LE(stats.delivered, stats.routed);
  EXPECT_GT(stats.success_rate(), 0.0);
  EXPECT_LE(stats.success_rate(), 1.0);
  EXPECT_GT(stats.messages_per_delivery(), 0.0);

  const auto results = replay.results();
  const auto times = replay.completion_times();
  ASSERT_EQ(results.size(), rc.queries);
  ASSERT_EQ(times.size(), rc.queries);
  std::size_t delivered = 0, messages = 0, escalations = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SecureRouteResult& r = results[i];
    delivered += r.delivered ? 1 : 0;
    messages += r.total_messages;
    escalations += r.escalations;
    EXPECT_GE(r.walks_launched, 1u) << i;
    EXPECT_LE(r.walks_launched, router.max_walks()) << i;
    // Every launched walk ended exactly one way.
    EXPECT_EQ(r.successful_walks + r.walks_died + r.walks_stuck +
                  r.walks_ttl_expired,
              r.walks_launched)
        << i;
    if (r.escalations > 0) EXPECT_GT(r.walks_launched, cfg.paths) << i;
    EXPECT_LE(r.completion_epoch, log.size()) << i;
    EXPECT_LE(r.byzantine_epoch, waves.size()) << i;
    // Every query retired, so every completion got a timestamp.
    EXPECT_GT(times[i], 0.0) << i;
  }
  EXPECT_EQ(stats.delivered, delivered);
  EXPECT_EQ(stats.total_messages, messages);
  EXPECT_EQ(stats.escalations, escalations);
  EXPECT_GT(stats.escalations, 0u);  // the adversary forced at least one retry
}

TEST(AdversarialReplay, ValidatesItsBindings) {
  const auto g = make_graph(256, 4, 31);
  const auto log = poisson_log(g, 50.0, 32);
  const auto waves = hub_waves(g, 50.0, 25.0, 8);
  ASSERT_GT(log.size(), 0u);
  ASSERT_GE(waves.size(), 2u);
  AdversarialReplayConfig rc;
  rc.queries = 16;
  rc.decay_interval_ms = 0.0;
  sim::EventQueue queue;
  const SecureRouterConfig cfg;

  {  // The replayed view must be the one the router reads.
    auto view = log.baseline();
    auto other = log.baseline();
    auto byz = ByzantineSet::none(g);
    const SecureRouter router(g, view, byz, cfg);
    EXPECT_THROW(AdversarialReplay(router, log, waves, other, byz, queue, rc),
                 std::invalid_argument);
  }
  {  // Same for the Byzantine set.
    auto view = log.baseline();
    auto byz = ByzantineSet::none(g);
    auto other = ByzantineSet::none(g);
    const SecureRouter router(g, view, byz, cfg);
    EXPECT_THROW(AdversarialReplay(router, log, waves, view, other, queue, rc),
                 std::invalid_argument);
  }
  {  // The view must start at epoch 0.
    auto view = log.baseline();
    auto byz = ByzantineSet::none(g);
    const SecureRouter router(g, view, byz, cfg);
    log.seek(view, 1);
    EXPECT_THROW(AdversarialReplay(router, log, waves, view, byz, queue, rc),
                 std::invalid_argument);
  }
  {  // So must the Byzantine set.
    auto view = log.baseline();
    auto byz = ByzantineSet::none(g);
    const SecureRouter router(g, view, byz, cfg);
    byz.apply(waves[0]);
    EXPECT_THROW(AdversarialReplay(router, log, waves, view, byz, queue, rc),
                 std::invalid_argument);
  }
  {  // Waves must be time-ordered.
    auto view = log.baseline();
    auto byz = ByzantineSet::none(g);
    const SecureRouter router(g, view, byz, cfg);
    std::vector<ByzantineDelta> shuffled{waves[1], waves[0]};
    EXPECT_THROW(AdversarialReplay(router, log, shuffled, view, byz, queue, rc),
                 std::invalid_argument);
  }
  {  // A decay schedule needs a reputation table to decay.
    auto view = log.baseline();
    auto byz = ByzantineSet::none(g);
    const SecureRouter router(g, view, byz, cfg);
    auto bad = rc;
    bad.decay_interval_ms = 5.0;
    EXPECT_THROW(AdversarialReplay(router, log, waves, view, byz, queue, bad),
                 std::invalid_argument);
    bad = rc;
    bad.ticks_per_ms = 0.0;
    EXPECT_THROW(AdversarialReplay(router, log, waves, view, byz, queue, bad),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace p2p::churn
