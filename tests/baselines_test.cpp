// Unit tests for the baselines: Chord, Kleinberg grid, flooding.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "baselines/chord.h"
#include "baselines/flood.h"
#include "baselines/kleinberg_grid.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "util/rng.h"
#include "util/stats.h"

namespace p2p::baselines {
namespace {

TEST(Chord, SuccessorIndexWrapsTheRing) {
  const ChordNetwork chord(6, {5, 20, 40});  // ring of 64
  EXPECT_EQ(chord.successor_index(5), 0u);
  EXPECT_EQ(chord.successor_index(6), 1u);
  EXPECT_EQ(chord.successor_index(41), 0u);  // wraps to id 5
  EXPECT_EQ(chord.successor_index(0), 0u);
}

TEST(Chord, FingersPointAtSuccessors) {
  const ChordNetwork chord(6, {0, 16, 32, 48});
  // Node 0's finger k targets successor(2^k): 1..16 -> node 16, 32 -> 32...
  const auto& fingers = chord.fingers_of(0);
  ASSERT_EQ(fingers.size(), 6u);
  EXPECT_EQ(chord.id_of(fingers[0]), 16u);  // successor(1)
  EXPECT_EQ(chord.id_of(fingers[4]), 16u);  // successor(16)
  EXPECT_EQ(chord.id_of(fingers[5]), 32u);  // successor(32)
}

TEST(Chord, RoutesToTheOwner) {
  util::Rng rng(1);
  const auto chord = ChordNetwork::random(12, 200, rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto src = static_cast<std::size_t>(rng.next_below(chord.size()));
    const std::uint64_t target = rng.next_below(1ULL << 12);
    const auto res = chord.route(src, target);
    EXPECT_TRUE(res.ok);
  }
}

TEST(Chord, HopCountIsLogarithmic) {
  util::Rng rng(2);
  const auto chord = ChordNetwork::random(16, 1024, rng);
  util::Accumulator hops;
  for (int trial = 0; trial < 300; ++trial) {
    const auto src = static_cast<std::size_t>(rng.next_below(chord.size()));
    const auto res = chord.route(src, rng.next_below(1ULL << 16));
    ASSERT_TRUE(res.ok);
    hops.add(static_cast<double>(res.hops));
  }
  // Expected ~ (1/2) lg n = 5; assert the right ballpark.
  EXPECT_GT(hops.mean(), 2.0);
  EXPECT_LT(hops.mean(), 10.0);
}

TEST(Chord, ZeroHopsWhenSourceOwnsTheKey) {
  const ChordNetwork chord(6, {10, 30});
  const auto res = chord.route(0, 7);  // successor(7) = node 10 = src
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.hops, 0u);
}

TEST(Chord, DeadFingersCauseFailuresOrDetours) {
  util::Rng rng(3);
  const auto chord = ChordNetwork::random(12, 256, rng);
  std::vector<std::uint8_t> dead(chord.size(), 0);
  for (std::size_t i = 0; i < chord.size(); ++i) dead[i] = rng.next_bool(0.5);
  std::size_t failures = 0, deliveries = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t src = 0;
    do {
      src = static_cast<std::size_t>(rng.next_below(chord.size()));
    } while (dead[src]);
    const auto res = chord.route(src, rng.next_below(1ULL << 12), &dead);
    (res.ok ? deliveries : failures) += 1;
  }
  EXPECT_GT(failures, 0u);   // one-sided routing is brittle under failures
  EXPECT_GT(deliveries, 0u);
}

TEST(Chord, RejectsMalformedNetworks) {
  EXPECT_THROW(ChordNetwork(6, {}), std::invalid_argument);
  EXPECT_THROW(ChordNetwork(6, {5, 3}), std::invalid_argument);
  EXPECT_THROW(ChordNetwork(6, {3, 3}), std::invalid_argument);
  EXPECT_THROW(ChordNetwork(6, {64}), std::invalid_argument);
  EXPECT_THROW(ChordNetwork(0, {0}), std::invalid_argument);
}

TEST(KleinbergGrid, DeliversOnLatticeAlone) {
  util::Rng rng(4);
  const KleinbergGrid grid(8, 0, 2.0, rng);
  const auto res = grid.route(grid.torus().at(0, 0), grid.torus().at(3, 5));
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.hops, 3u + 3u);  // Manhattan distance (5 wraps to 3)
}

TEST(KleinbergGrid, LongLinksShortenRoutes) {
  util::Rng rng(5);
  const KleinbergGrid bare(32, 0, 2.0, rng);
  const KleinbergGrid rich(32, 3, 2.0, rng);
  util::Accumulator bare_hops, rich_hops;
  util::Rng pick(6);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<metric::Point>(pick.next_below(bare.size()));
    const auto dst = static_cast<metric::Point>(pick.next_below(bare.size()));
    bare_hops.add(static_cast<double>(bare.route(src, dst).hops));
    rich_hops.add(static_cast<double>(rich.route(src, dst).hops));
  }
  EXPECT_LT(rich_hops.mean(), bare_hops.mean() * 0.8);
}

TEST(KleinbergGrid, ExponentTwoBeatsSteepExponentsAndTheLattice) {
  // Kleinberg's theorem: r = d = 2 is the efficient exponent. Steeper
  // exponents degenerate toward the bare lattice (links too short to help);
  // r = 0 only loses at scales beyond unit-test budgets, so the full sweep
  // lives in bench/baseline_comparison.
  util::Rng rng(7);
  const KleinbergGrid bare(48, 0, 2.0, rng);
  const KleinbergGrid r2(48, 1, 2.0, rng);
  const KleinbergGrid r4(48, 1, 4.0, rng);
  util::Rng pick(8);
  util::Accumulator lattice, h2, h4;
  for (int trial = 0; trial < 400; ++trial) {
    const auto src = static_cast<metric::Point>(pick.next_below(r2.size()));
    const auto dst = static_cast<metric::Point>(pick.next_below(r2.size()));
    lattice.add(static_cast<double>(bare.route(src, dst).hops));
    h2.add(static_cast<double>(r2.route(src, dst).hops));
    h4.add(static_cast<double>(r4.route(src, dst).hops));
  }
  EXPECT_LT(h2.mean(), h4.mean());
  EXPECT_LT(h4.mean(), lattice.mean());  // even short links beat none
  EXPECT_LT(h2.mean(), lattice.mean() * 0.75);
}

TEST(KleinbergGrid, DeadNodesBlockOrFailRoutes) {
  util::Rng rng(9);
  const KleinbergGrid grid(16, 2, 2.0, rng);
  std::vector<std::uint8_t> dead(grid.size(), 0);
  util::Rng kill(10);
  for (auto& d : dead) d = kill.next_bool(0.4);
  std::size_t failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    metric::Point src = 0, dst = 0;
    do {
      src = static_cast<metric::Point>(kill.next_below(grid.size()));
    } while (dead[static_cast<std::size_t>(src)]);
    do {
      dst = static_cast<metric::Point>(kill.next_below(grid.size()));
    } while (dead[static_cast<std::size_t>(dst)]);
    if (!grid.route(src, dst, &dead).ok) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

graph::OverlayGraph flood_graph(std::uint64_t n, std::size_t links,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

TEST(Flood, FindsNearbyTargetCheaply) {
  const auto g = flood_graph(256, 3, 11);
  const auto view = failure::FailureView::all_alive(g);
  const auto res = flood_search(g, view, 0, 1, /*ttl=*/1);
  EXPECT_TRUE(res.found);
  EXPECT_EQ(res.depth, 1u);
  EXPECT_LE(res.messages, g.out_degree(0));
}

TEST(Flood, TtlCutsOffDistantTargets) {
  // Bare ring: a target n/2 away needs ttl >= n/2.
  graph::OverlayGraph g(metric::Space1D::ring(64));
  graph::wire_short_links(g);
  const auto view = failure::FailureView::all_alive(g);
  EXPECT_FALSE(flood_search(g, view, 0, 32, 10).found);
  EXPECT_TRUE(flood_search(g, view, 0, 32, 32).found);
}

TEST(Flood, MessageCostExplodesWithTtl) {
  // Fixture seed picked so the target is not reachable within the shallow
  // TTL (a shallow hit ends the flood early and hides the blow-up); re-check
  // the depth profile if the builder's sampling stream ever changes.
  const auto g = flood_graph(1024, 5, 15);
  const auto view = failure::FailureView::all_alive(g);
  // Count messages to a far target at increasing TTLs (§3's trade-off).
  const auto shallow = flood_search(g, view, 0, 512, 2);
  const auto deep = flood_search(g, view, 0, 512, 6);
  EXPECT_GT(deep.messages, shallow.messages * 4);
}

TEST(Flood, DeadNodesAreNotExpanded) {
  graph::OverlayGraph g(metric::Space1D::ring(16));
  graph::wire_short_links(g);
  auto view = failure::FailureView::all_alive(g);
  view.kill_node(1);
  view.kill_node(15);
  const auto res = flood_search(g, view, 0, 8, 16);
  EXPECT_FALSE(res.found);  // both arcs blocked
  EXPECT_LE(res.nodes_touched, 1u);
}

TEST(Flood, DeadSourceFindsNothing) {
  const auto g = flood_graph(64, 2, 13);
  auto view = failure::FailureView::all_alive(g);
  view.kill_node(0);
  const auto res = flood_search(g, view, 0, 5, 8);
  EXPECT_FALSE(res.found);
  EXPECT_EQ(res.messages, 0u);
}

}  // namespace
}  // namespace p2p::baselines
