// Pins the failure-aware (masked) SIMD candidate scan of ISSUE 5:
//  * FailureView's link-liveness words and node-alive byte sideband agree
//    bit-for-bit with the scalar link_alive_at/node_alive queries, through
//    manual kills/revives and delta-log apply/revert;
//  * select_candidate under arbitrary failure views — dead nodes, dead
//    links, both, stale knowledge — is identical between the vectorized
//    path and the scalar table (P2P_NO_SIMD pins both on one host), and
//    both equal the allocating candidates() reference, on the line, the
//    ring and the Kleinberg torus;
//  * route()/route_batch() (widths 1 and 32) are bit-identical between the
//    two implementations under failures, and stay so while a churn log
//    seeks the view forward and backward across epochs.
// On hosts without AVX-512 both routers run the scalar table and the
// equivalences hold trivially.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "churn/churn_log.h"
#include "churn/trace_gen.h"
#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p {
namespace {

using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph ring_overlay(std::uint64_t n, std::size_t links, std::uint64_t seed,
                          metric::Space1D::Kind kind = metric::Space1D::Kind::kRing) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.topology = kind;
  spec.bidirectional = true;  // reverse links push hub degrees past kInlineEdges
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

/// A router pair over one (graph, view, config): `simd` built with the
/// default dispatch, `scalar` with RouterConfig::force_scalar pinning the
/// scalar table (the *_scalar CTest registration additionally forces the
/// `simd` one scalar too via P2P_NO_SIMD=1, covering the env override).
struct RouterPair {
  core::Router simd;
  core::Router scalar;

  RouterPair(const OverlayGraph& g, const FailureView& view,
             core::RouterConfig cfg = {})
      : simd(g, view, cfg), scalar(g, view, scalar_config(cfg)) {
    EXPECT_FALSE(scalar.simd_eligible());
  }

  static core::RouterConfig scalar_config(core::RouterConfig cfg) {
    cfg.force_scalar = true;
    return cfg;
  }
};

/// select_candidate (simd vs scalar vs candidates()) over `trials` random
/// (u, target) pairs, ranks 0..2.
void check_selection_equivalence(const RouterPair& pair, std::uint64_t seed,
                                 int trials, const std::string& label) {
  const OverlayGraph& g = pair.simd.graph();
  util::Rng pick(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const auto u = static_cast<NodeId>(pick.next_below(g.size()));
    const auto t = g.position(static_cast<NodeId>(pick.next_below(g.size())));
    const auto reference = pair.scalar.candidates(u, t);
    for (std::size_t rank = 0; rank < 3; ++rank) {
      const NodeId with_simd = pair.simd.select_candidate(u, t, rank);
      const NodeId without = pair.scalar.select_candidate(u, t, rank);
      const NodeId want =
          rank < reference.size() ? reference[rank] : graph::kInvalidNode;
      ASSERT_EQ(with_simd, without)
          << label << " u=" << u << " t=" << t << " rank=" << rank;
      ASSERT_EQ(without, want)
          << label << " u=" << u << " t=" << t << " rank=" << rank;
    }
  }
}

/// route() and route_batch() (widths 1 and 32) bit-identical between the
/// simd and scalar routers.
void check_route_equivalence(const RouterPair& pair, std::uint64_t seed,
                             std::size_t messages, const std::string& label) {
  const OverlayGraph& g = pair.simd.graph();
  util::Rng pick(seed);
  std::vector<core::Query> queries(messages);
  for (auto& q : queries) {
    q = {static_cast<NodeId>(pick.next_below(g.size())),
         g.position(static_cast<NodeId>(pick.next_below(g.size())))};
  }
  for (std::size_t i = 0; i < messages; ++i) {
    util::Rng a(seed + 1 + i);
    util::Rng b(seed + 1 + i);
    const auto with_simd = pair.simd.route(queries[i].src, queries[i].target, a);
    const auto without = pair.scalar.route(queries[i].src, queries[i].target, b);
    ASSERT_EQ(with_simd.status, without.status) << label << " query=" << i;
    ASSERT_EQ(with_simd.hops, without.hops) << label << " query=" << i;
    ASSERT_EQ(with_simd.backtracks, without.backtracks) << label << " query=" << i;
    ASSERT_EQ(with_simd.reroutes, without.reroutes) << label << " query=" << i;
  }
  for (const std::size_t width : {std::size_t{1}, std::size_t{32}}) {
    core::BatchConfig batch;
    batch.width = width;
    std::vector<core::RouteResult> got(messages);
    std::vector<core::RouteResult> want(messages);
    util::Rng a(seed + 7);
    util::Rng b(seed + 7);
    pair.simd.route_batch(queries, got, a, batch);
    pair.scalar.route_batch(queries, want, b, batch);
    for (std::size_t i = 0; i < messages; ++i) {
      ASSERT_EQ(got[i].status, want[i].status)
          << label << " width=" << width << " query=" << i;
      ASSERT_EQ(got[i].hops, want[i].hops)
          << label << " width=" << width << " query=" << i;
    }
  }
}

/// One view per failure shape the masked kernels distinguish: dead nodes
/// only, dead links only, both at once.
std::vector<std::pair<std::string, FailureView>> failure_views(
    const OverlayGraph& g, std::uint64_t seed) {
  std::vector<std::pair<std::string, FailureView>> views;
  util::Rng rng(seed);
  views.emplace_back("nodes", FailureView::with_node_failures(g, 0.3, rng));
  views.emplace_back("links", FailureView::with_link_failures(g, 0.6, rng));
  auto both = FailureView::with_link_failures(g, 0.7, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    if (rng.next_bool(0.25)) both.kill_node(u);
  }
  views.emplace_back("both", std::move(both));
  return views;
}

TEST(MaskedScan, SidebandsMatchScalarQueries) {
  const auto g = ring_overlay(512, 6, 21);
  auto view = FailureView::all_alive(g);
  EXPECT_EQ(view.node_alive_bytes(), nullptr);
  util::Rng rng(22);
  for (int round = 0; round < 200; ++round) {
    const auto u = static_cast<NodeId>(rng.next_below(g.size()));
    if (rng.next_bool(0.5)) {
      rng.next_bool(0.5) ? view.kill_node(u) : view.revive_node(u);
    } else if (g.out_degree(u) > 0) {
      const std::size_t i = rng.next_below(g.out_degree(u));
      rng.next_bool(0.5) ? view.kill_link(u, i) : view.revive_link(u, i);
    }
  }
  ASSERT_NE(view.node_alive_bytes(), nullptr);
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_EQ(view.node_alive_bytes()[u], view.node_alive(u) ? 1 : 0) << u;
  }
  ASSERT_FALSE(view.links_intact());
  for (NodeId u = 0; u < g.size(); ++u) {
    const std::size_t base = g.edge_base(u);
    const std::uint64_t word = view.link_live_word(base);
    for (std::size_t i = 0; i < g.out_degree(u) && i < 64; ++i) {
      EXPECT_EQ((word >> i) & 1u, view.link_alive_at(base + i) ? 1u : 0u)
          << "u=" << u << " i=" << i;
    }
  }
  // Windows at arbitrary (unaligned) slots, including the very last one.
  util::Rng slots(23);
  for (int round = 0; round < 200; ++round) {
    const std::size_t first = slots.next_below(g.edge_slots());
    const std::uint64_t word = view.link_live_word(first);
    for (std::size_t k = 0; k < 64 && first + k < g.edge_slots(); ++k) {
      ASSERT_EQ((word >> k) & 1u, view.link_alive_at(first + k) ? 1u : 0u)
          << "first=" << first << " k=" << k;
    }
  }
}

TEST(MaskedScan, SidebandsTrackDeltaApplyRevert) {
  const auto g = ring_overlay(512, 6, 31);
  churn::TraceSpec spec;
  spec.scenario = churn::TraceSpec::Scenario::kPoissonChurn;
  spec.duration = 64.0;
  spec.kill_rate = 4.0;
  spec.revive_rate = 4.0;
  util::Rng trace_rng(32);
  const auto log = churn::make_trace(g, spec, trace_rng);
  ASSERT_GT(log.size(), 0u);
  auto view = log.baseline();
  const auto check = [&] {
    if (view.nodes_intact()) {
      EXPECT_EQ(view.node_alive_bytes(), nullptr);
      return;
    }
    ASSERT_NE(view.node_alive_bytes(), nullptr);
    for (NodeId u = 0; u < g.size(); ++u) {
      ASSERT_EQ(view.node_alive_bytes()[u], view.node_alive(u) ? 1 : 0)
          << "epoch=" << view.epoch() << " u=" << u;
    }
  };
  for (std::uint64_t e = 0; e < log.size(); ++e) {
    log.seek(view, e + 1);
    check();
  }
  for (std::uint64_t e = log.size(); e > 0; --e) {
    log.seek(view, e - 1);
    check();
  }
}

TEST(MaskedScan, SelectionEquivalenceOneDimensional) {
  for (const auto kind :
       {metric::Space1D::Kind::kLine, metric::Space1D::Kind::kRing}) {
    const std::string space = kind == metric::Space1D::Kind::kLine ? "line" : "ring";
    const auto g = ring_overlay(4096, 12, 41, kind);
    for (auto& [name, view] : failure_views(g, 42)) {
      for (const auto knowledge :
           {core::Knowledge::kLiveness, core::Knowledge::kStale}) {
        core::RouterConfig cfg;
        cfg.knowledge = knowledge;
        const RouterPair pair(g, view, cfg);
        const std::string label =
            space + "/" + name +
            (knowledge == core::Knowledge::kStale ? "/stale" : "/live");
        check_selection_equivalence(pair, 43, 600, label);
      }
    }
  }
}

TEST(MaskedScan, SelectionEquivalenceTorus) {
  util::Rng build_rng(51);
  const auto g = graph::build_kleinberg_overlay(45, 8, 2.0, build_rng);
  for (auto& [name, view] : failure_views(g, 52)) {
    for (const auto knowledge :
         {core::Knowledge::kLiveness, core::Knowledge::kStale}) {
      core::RouterConfig cfg;
      cfg.knowledge = knowledge;
      const RouterPair pair(g, view, cfg);
      const std::string label =
          "torus/" + name +
          (knowledge == core::Knowledge::kStale ? "/stale" : "/live");
      check_selection_equivalence(pair, 53, 600, label);
    }
  }
}

TEST(MaskedScan, SelectionEquivalenceHighDegreeHub) {
  // A node whose degree crosses both the inline prefix (13) and the 64-bit
  // liveness-word boundary, so the masked scan's multi-word refetch and the
  // spill-tail path are both on the hook.
  const std::uint64_t n = 1024;
  graph::GraphBuilder builder{metric::Space1D::ring(n)};
  builder.wire_short_links();
  util::Rng rng(61);
  for (int i = 0; i < 150; ++i) {
    NodeId v = 0;
    while (v == 0) v = static_cast<NodeId>(rng.next_below(n));
    builder.add_long_link(0, v);
  }
  const auto g = builder.freeze();
  ASSERT_GT(g.out_degree(0), 64u);
  auto view = FailureView::with_node_failures(g, 0.4, rng);
  for (std::size_t i = 0; i < g.out_degree(0); ++i) {
    if (rng.next_bool(0.3)) view.kill_link(0, i);
  }
  const RouterPair pair(g, view);
  util::Rng pick(62);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto t = static_cast<metric::Point>(pick.next_below(n));
    const auto reference = pair.scalar.candidates(0, t);
    const NodeId want = reference.empty() ? graph::kInvalidNode : reference[0];
    ASSERT_EQ(pair.simd.select_candidate(0, t, 0), want) << "t=" << t;
    ASSERT_EQ(pair.scalar.select_candidate(0, t, 0), want) << "t=" << t;
  }
}

TEST(MaskedScan, RouteAndBatchEquivalenceUnderFailures) {
  const auto g = ring_overlay(4096, 12, 71);
  util::Rng torus_rng(72);
  const auto tg = graph::build_kleinberg_overlay(45, 8, 2.0, torus_rng);
  for (const OverlayGraph* graph : {&g, &tg}) {
    for (auto& [name, view] : failure_views(*graph, 73)) {
      for (const auto knowledge :
           {core::Knowledge::kLiveness, core::Knowledge::kStale}) {
        core::RouterConfig cfg;
        cfg.knowledge = knowledge;
        const RouterPair pair(*graph, view, cfg);
        check_route_equivalence(pair, 74, 64,
                                (graph == &g ? "ring/" : "torus/") + name);
      }
    }
  }
}

TEST(MaskedScan, EquivalenceAcrossChurnEpochs) {
  const auto g = ring_overlay(2048, 10, 81);
  // Node churn and link flap interleaved in one log: stage both scenarios'
  // worth of changes by committing two generated traces back to back.
  churn::TraceSpec node_spec;
  node_spec.scenario = churn::TraceSpec::Scenario::kPoissonChurn;
  node_spec.duration = 24.0;
  node_spec.kill_rate = 16.0;
  node_spec.revive_rate = 12.0;
  util::Rng node_rng(82);
  const auto node_log = churn::make_trace(g, node_spec, node_rng);
  churn::TraceSpec link_spec;
  link_spec.scenario = churn::TraceSpec::Scenario::kLinkFlap;
  link_spec.duration = 24.0;
  link_spec.flap_fraction = 0.05;
  util::Rng link_rng(83);
  const auto link_log = churn::make_trace(g, link_spec, link_rng);

  for (const churn::ChurnLog* log : {&node_log, &link_log}) {
    ASSERT_GT(log->size(), 0u);
    auto view = log->baseline();
    const RouterPair pair(g, view);
    // Forward through every epoch, then back down to 0; both routers read
    // the same mutating view, so equivalence at each stop pins the masked
    // kernels against incrementally maintained liveness state (never
    // re-derived between epochs).
    const auto stops = [&](std::uint64_t e) {
      log->seek(view, e);
      check_selection_equivalence(pair, 84 + e, 40,
                                  "epoch=" + std::to_string(e));
    };
    for (std::uint64_t e = 1; e <= log->size(); ++e) stops(e);
    for (std::uint64_t e = log->size(); e-- > 0;) stops(e);
    check_route_equivalence(pair, 85, 48, "post-churn");
  }
}

}  // namespace
}  // namespace p2p
