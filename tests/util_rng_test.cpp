// Unit tests for util/rng.h: determinism, range correctness, stream
// independence, and the Poisson sampler's moments.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace p2p::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_EQ(seen.size(), 100u);  // no immediate repetition from a zero state
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(7);
  const std::uint64_t first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, 600.0);  // ~6 sigma
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100'000.0, 0.5, 0.01);
}

TEST(Rng, NextBoolMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 100'000; ++i) heads += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 100'000.0, 0.3, 0.01);
}

TEST(Rng, NextBoolDegenerateProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, SplitStreamsAreUncorrelated) {
  Rng parent(29);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Splitmix64, KnownFixedPointFree) {
  // Distinct small inputs map to distinct well-spread outputs.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(splitmix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Poisson, ZeroMeanGivesZero) {
  Rng rng(31);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(poisson_sample(rng, 0.0), 0);
}

TEST(Poisson, MeanAndVarianceMatch) {
  Rng rng(37);
  const double mean = 14.0;  // the paper's Fig-5 link count
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = poisson_sample(rng, mean);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / kDraws;
  const double var = sum_sq / kDraws - m * m;
  EXPECT_NEAR(m, mean, 0.15);
  EXPECT_NEAR(var, mean, 0.5);  // Poisson: variance == mean
}

TEST(Poisson, SmallMeanMostlyZero) {
  Rng rng(41);
  int zeros = 0;
  for (int i = 0; i < 10'000; ++i) zeros += poisson_sample(rng, 0.01) == 0 ? 1 : 0;
  EXPECT_GT(zeros, 9'800);  // P(0) = e^-0.01 ~ 0.99
}

}  // namespace
}  // namespace p2p::util
