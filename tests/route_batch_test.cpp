// Pins the software-pipelined batch scheduler (satellites of ISSUE 2):
//  * route_batch results are bit-identical to per-query Router::route seeded
//    with util::substream(base, i), across stuck policies, sidedness modes,
//    stale knowledge, batch widths and batches larger than the width;
//  * mid-batch churn (FailureView mutation between BatchPipeline ticks) is
//    deterministic and, at width 1, identical to a stepped RouteSession fed
//    the same mutation schedule;
//  * the tick loop performs no heap allocations after pipeline setup.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing operator new in this binary lets the
// no-allocation test observe the batch tick loop directly; counting is cheap
// enough not to disturb the other tests.

namespace {
std::size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded == 0 ? a : rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace p2p::core {
namespace {

using failure::FailureView;
using graph::BuildSpec;
using graph::NodeId;
using graph::OverlayGraph;
using metric::Space1D;

OverlayGraph test_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.bidirectional = true;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

std::vector<Query> random_queries(const OverlayGraph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> queries(count);
  for (auto& q : queries) {
    q = {static_cast<NodeId>(rng.next_below(g.size())),
         g.position(static_cast<NodeId>(rng.next_below(g.size())))};
  }
  return queries;
}

void expect_identical(const RouteResult& got, const RouteResult& want,
                      const std::string& label) {
  EXPECT_EQ(got.status, want.status) << label;
  EXPECT_EQ(got.hops, want.hops) << label;
  EXPECT_EQ(got.backtracks, want.backtracks) << label;
  EXPECT_EQ(got.reroutes, want.reroutes) << label;
  EXPECT_EQ(got.path, want.path) << label;
}

/// Runs `queries` through route_batch and through per-query route() with the
/// matching substreams; every field of every result must agree.
void check_batch_equivalence(const Router& router,
                             const std::vector<Query>& queries,
                             std::size_t width, const std::string& label) {
  const std::uint64_t seed = 0xb0b0 + width;
  BatchConfig batch;
  batch.width = width;
  std::vector<RouteResult> got(queries.size());
  util::Rng batch_rng(seed);
  router.route_batch(queries, got, batch_rng, batch);

  util::Rng base_rng(seed);
  const std::uint64_t base = base_rng();
  for (std::size_t i = 0; i < queries.size(); ++i) {
    util::Rng sub = util::substream(base, i);
    const RouteResult want =
        router.route(queries[i].src, queries[i].target, sub);
    expect_identical(got[i], want,
                     label + " width=" + std::to_string(width) +
                         " query=" + std::to_string(i));
  }
}

TEST(RouteBatch, BitIdenticalToSequentialRouteAcrossConfigs) {
  const OverlayGraph g = test_graph(1024, 8, 17);
  util::Rng fail_rng(23);
  const auto intact = FailureView::all_alive(g);
  const auto failing = FailureView::with_node_failures(g, 0.35, fail_rng);
  const auto queries = random_queries(g, 150, 29);

  const StuckPolicy policies[] = {StuckPolicy::kTerminate,
                                  StuckPolicy::kRandomReroute,
                                  StuckPolicy::kBacktrack};
  const Sidedness sides[] = {Sidedness::kTwoSided, Sidedness::kOneSided};
  for (const StuckPolicy policy : policies) {
    for (const Sidedness side : sides) {
      for (const bool failed_view : {false, true}) {
        RouterConfig cfg;
        cfg.stuck_policy = policy;
        cfg.sidedness = side;
        cfg.record_path = true;  // pin the full walk, not just the summary
        const Router router(g, failed_view ? failing : intact, cfg);
        const std::string label =
            "policy=" + std::to_string(static_cast<int>(policy)) +
            " side=" + std::to_string(static_cast<int>(side)) +
            " failed=" + std::to_string(failed_view);
        for (const std::size_t width : {std::size_t{1}, std::size_t{7},
                                        std::size_t{64}}) {
          check_batch_equivalence(router, queries, width, label);
        }
      }
    }
  }
}

TEST(RouteBatch, StaleKnowledgeMatchesSequentialRoute) {
  const OverlayGraph g = test_graph(1024, 8, 31);
  util::Rng fail_rng(37);
  const auto view = FailureView::with_node_failures(g, 0.3, fail_rng);
  const auto queries = random_queries(g, 120, 41);
  for (const StuckPolicy policy :
       {StuckPolicy::kTerminate, StuckPolicy::kRandomReroute,
        StuckPolicy::kBacktrack}) {
    RouterConfig cfg;
    cfg.knowledge = Knowledge::kStale;
    cfg.stuck_policy = policy;
    cfg.record_path = true;
    const Router router(g, view, cfg);
    check_batch_equivalence(router, queries, 7,
                            "stale policy=" +
                                std::to_string(static_cast<int>(policy)));
  }
}

TEST(RouteBatch, WidthLargerThanBatchAndDegenerateShapes) {
  const OverlayGraph g = test_graph(512, 6, 43);
  const auto view = FailureView::all_alive(g);
  RouterConfig cfg;
  cfg.record_path = true;
  const Router router(g, view, cfg);
  // Fewer queries than lanes.
  check_batch_equivalence(router, random_queries(g, 5, 47), 64, "narrow");
  // width 0 clamps to 1.
  check_batch_equivalence(router, random_queries(g, 9, 53), 0, "w0");
  // Empty batch: consumes the base draw and touches nothing.
  std::vector<Query> none;
  std::vector<RouteResult> no_results;
  util::Rng rng(59);
  router.route_batch(none, no_results, rng);
}

/// Deterministic churn schedule: after global tick t, kill or revive a
/// pseudo-random node. Applied identically to independent runs.
void apply_churn(FailureView& view, std::size_t t) {
  if (t % 3 != 0) return;
  const auto n = view.graph().size();
  const auto u = static_cast<NodeId>(util::splitmix64(t) % n);
  if (t % 6 == 0) {
    view.kill_node(u);
  } else {
    view.revive_node(u);
  }
}

TEST(RouteBatch, MidBatchChurnIsDeterministic) {
  const OverlayGraph g = test_graph(512, 6, 61);
  const auto queries = random_queries(g, 80, 67);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.record_path = true;
  const auto run_once = [&]() {
    util::Rng fail_rng(71);
    auto view = FailureView::with_node_failures(g, 0.2, fail_rng);
    const Router router(g, view, cfg);
    std::vector<RouteResult> results(queries.size());
    BatchConfig batch;
    batch.width = 16;
    BatchPipeline pipeline(router, queries, results, /*seed_base=*/73, batch);
    std::size_t t = 0;
    while (pipeline.tick()) {
      apply_churn(view, t);
      ++t;
    }
    EXPECT_EQ(pipeline.retired(), queries.size());
    return results;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_identical(first[i], second[i], "churn query " + std::to_string(i));
  }
}

TEST(RouteBatch, WidthOneChurnMatchesSteppedSession) {
  const OverlayGraph g = test_graph(512, 6, 79);
  const auto queries = random_queries(g, 40, 83);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.record_path = true;
  constexpr std::uint64_t kBase = 89;

  // Pipeline run at width 1: strictly sequential queries, churn after every
  // tick that leaves work pending.
  util::Rng fail_rng(97);
  auto view = FailureView::with_node_failures(g, 0.2, fail_rng);
  const Router router(g, view, cfg);
  std::vector<RouteResult> got(queries.size());
  BatchConfig batch;
  batch.width = 1;
  BatchPipeline pipeline(router, queries, got, kBase, batch);
  std::size_t t = 0;
  while (pipeline.tick()) {
    apply_churn(view, t);
    ++t;
  }

  // Reference: one RouteSession per query, stepped manually with the same
  // global tick counter driving the same churn schedule.
  util::Rng ref_fail_rng(97);
  auto ref_view = FailureView::with_node_failures(g, 0.2, ref_fail_rng);
  const Router ref_router(g, ref_view, cfg);
  std::size_t ref_t = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    RouteSession session(ref_router, queries[i].src, queries[i].target);
    util::Rng sub = util::substream(kBase, i);
    for (;;) {
      session.step(sub);
      const bool all_done = session.finished() && i + 1 == queries.size();
      if (!all_done) {
        apply_churn(ref_view, ref_t);
        ++ref_t;
      }
      if (session.finished()) break;
    }
    expect_identical(got[i], session.progress(),
                     "stepped query " + std::to_string(i));
  }
  EXPECT_EQ(t, ref_t);
}

TEST(RouteBatch, SimdAndScalarSelectionAgree) {
  // On AVX-512 hosts the default Router takes the vectorized rank-0 scan;
  // RouterConfig::force_scalar pins it against the scalar table on the same
  // machine (the *_scalar CTest registration additionally covers the
  // P2P_NO_SIMD env override). On other hosts both routers are scalar and
  // the test passes trivially.
  const OverlayGraph g = test_graph(2048, 9, 113);
  const auto intact = FailureView::all_alive(g);
  util::Rng fail_rng(131);
  const auto failing = FailureView::with_node_failures(g, 0.3, fail_rng);
  const auto queries = random_queries(g, 300, 127);
  // The fast path is live both on the intact view (liveness knowledge) and
  // on a failed view under stale knowledge (no per-node checks, links
  // intact) — the §6 sweep configuration. Pin both.
  struct Case {
    const FailureView* view;
    Knowledge knowledge;
    const char* label;
  };
  const Case cases[] = {{&intact, Knowledge::kLiveness, "intact"},
                        {&failing, Knowledge::kStale, "stale-failed"}};
  for (const Case& c : cases) {
    RouterConfig cfg;
    cfg.knowledge = c.knowledge;
    cfg.stuck_policy = StuckPolicy::kBacktrack;
    cfg.record_path = true;
    const Router simd_router(g, *c.view, cfg);
    RouterConfig scalar_cfg = cfg;
    scalar_cfg.force_scalar = true;
    const Router scalar_router(g, *c.view, scalar_cfg);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      util::Rng a(i), b(i);
      const RouteResult with_simd =
          simd_router.route(queries[i].src, queries[i].target, a);
      const RouteResult without =
          scalar_router.route(queries[i].src, queries[i].target, b);
      expect_identical(with_simd, without,
                       std::string(c.label) + " query " + std::to_string(i));
    }
  }
}

TEST(RouteBatch, TickLoopDoesNotAllocate) {
  const OverlayGraph g = test_graph(2048, 8, 101);
  util::Rng fail_rng(103);
  const auto view = FailureView::with_node_failures(g, 0.3, fail_rng);
  const auto queries = random_queries(g, 256, 107);
  for (const StuckPolicy policy :
       {StuckPolicy::kTerminate, StuckPolicy::kRandomReroute,
        StuckPolicy::kBacktrack}) {
    RouterConfig cfg;
    cfg.stuck_policy = policy;  // record_path off: the hot configuration
    const Router router(g, view, cfg);
    std::vector<RouteResult> results(queries.size());
    BatchConfig batch;
    batch.width = 16;
    BatchPipeline pipeline(router, queries, results, /*seed_base=*/109, batch);
    const std::size_t before = g_alloc_count;
    pipeline.run();
    const std::size_t after = g_alloc_count;
    EXPECT_EQ(after, before)
        << "policy " << static_cast<int>(policy)
        << ": the batch tick loop must not allocate after setup";
    EXPECT_EQ(pipeline.retired(), queries.size());
  }
}

}  // namespace
}  // namespace p2p::core
