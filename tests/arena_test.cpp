// Pins util::Arena — the huge-page bump allocator under the compact overlay
// representation — and the HugePageAllocator vector policy:
//  * round_up_huge / map_huge round-trips (with and without the THP hint);
//  * alignment, accounting (allocated/reserved/chunk_count), oversized
//    dedicated chunks, cross-chunk writes;
//  * reset() rewinds accounting but retains chunks, and the next generation
//    reuses them without growing the reservation;
//  * move construction/assignment transfer ownership and leave the source
//    empty;
//  * HpVector storage works on both sides of the 1 MiB mmap threshold.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "util/arena.h"

namespace p2p::util {
namespace {

constexpr std::size_t kHuge = std::size_t{2} << 20;

TEST(Arena, RoundUpHuge) {
  EXPECT_EQ(round_up_huge(1), kHuge);
  EXPECT_EQ(round_up_huge(kHuge - 1), kHuge);
  EXPECT_EQ(round_up_huge(kHuge), kHuge);
  EXPECT_EQ(round_up_huge(kHuge + 1), 2 * kHuge);
  EXPECT_EQ(round_up_huge(3 * kHuge), 3 * kHuge);
}

TEST(Arena, MapHugeRoundTrip) {
  for (const bool hint : {true, false}) {
    void* p = map_huge(kHuge, hint);
#if defined(__linux__)
    ASSERT_NE(p, nullptr) << "hint=" << hint;
    // Touch first and last byte: the mapping must be readable/writable
    // whether or not the kernel honoured the THP hint.
    auto* bytes = static_cast<unsigned char*>(p);
    bytes[0] = 0xAB;
    bytes[kHuge - 1] = 0xCD;
    EXPECT_EQ(bytes[0], 0xAB);
    EXPECT_EQ(bytes[kHuge - 1], 0xCD);
#endif
    unmap_huge(p, kHuge);
  }
  unmap_huge(nullptr, kHuge);  // explicit no-op contract
}

TEST(Arena, AlignmentAndAccounting) {
  Arena arena;
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), 0u);
  EXPECT_EQ(arena.chunk_count(), 0u);

  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(64, 64);
  void* c = arena.allocate(1, 4096);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 4096, 0u);
  EXPECT_EQ(arena.allocated_bytes(), 3u + 64u + 1u);
  EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes());
  EXPECT_EQ(arena.chunk_count(), 1u);

  auto* words = arena.allocate_array<std::uint64_t>(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) % alignof(std::uint64_t), 0u);
  for (std::size_t i = 0; i < 1000; ++i) words[i] = i * i;
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(words[i], i * i) << i;

  // Zero-byte requests still return distinct usable storage.
  void* z1 = arena.allocate(0);
  void* z2 = arena.allocate(0);
  EXPECT_NE(z1, z2);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(kHuge);  // small chunks so the oversize path triggers
  void* small = arena.allocate(16);
  ASSERT_NE(small, nullptr);
  const std::size_t chunks_before = arena.chunk_count();
  const std::size_t big = 5 * kHuge;
  auto* p = static_cast<unsigned char*>(arena.allocate(big, 64));
  ASSERT_NE(p, nullptr);
  EXPECT_GT(arena.chunk_count(), chunks_before);
  std::memset(p, 0x5A, big);
  EXPECT_EQ(p[0], 0x5A);
  EXPECT_EQ(p[big - 1], 0x5A);
}

TEST(Arena, CrossChunkWrites) {
  Arena arena(kHuge);
  std::vector<std::uint32_t*> blocks;
  constexpr std::size_t kPerBlock = 300000;  // ~1.2 MB, forces chunk turnover
  for (int i = 0; i < 8; ++i) {
    auto* block = arena.allocate_array<std::uint32_t>(kPerBlock);
    for (std::size_t j = 0; j < kPerBlock; ++j) {
      block[j] = static_cast<std::uint32_t>(i * 31 + j);
    }
    blocks.push_back(block);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  for (int i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < kPerBlock; j += 997) {
      ASSERT_EQ(blocks[i][j], static_cast<std::uint32_t>(i * 31 + j))
          << "block " << i << " word " << j;
    }
  }
}

TEST(Arena, ResetRetainsChunksForReuse) {
  Arena arena(kHuge);
  for (int i = 0; i < 4; ++i) (void)arena.allocate(kHuge / 2);
  const std::size_t reserved = arena.reserved_bytes();
  const std::size_t chunks = arena.chunk_count();
  ASSERT_GT(chunks, 1u);

  arena.reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);

  // The next generation fits in the retained chunks: no new reservation.
  for (int i = 0; i < 4; ++i) (void)arena.allocate(kHuge / 2);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a(kHuge);
  auto* data = a.allocate_array<std::uint64_t>(4096);
  for (std::size_t i = 0; i < 4096; ++i) data[i] = i ^ 0xDEADBEEF;
  const std::size_t reserved = a.reserved_bytes();

  Arena b(std::move(a));
  EXPECT_EQ(a.chunk_count(), 0u);
  EXPECT_EQ(a.reserved_bytes(), 0u);
  EXPECT_EQ(b.reserved_bytes(), reserved);
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(data[i], i ^ 0xDEADBEEF) << i;  // storage survived the move
  }

  Arena c;
  (void)c.allocate(128);
  c = std::move(b);
  EXPECT_EQ(b.chunk_count(), 0u);
  EXPECT_EQ(c.reserved_bytes(), reserved);
  for (std::size_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(data[i], i ^ 0xDEADBEEF) << i;
  }
}

TEST(HugePageAllocator, SmallAndLargeBlocks) {
  // Below the threshold: plain operator new path.
  HpVector<std::uint32_t> small;
  for (std::uint32_t i = 0; i < 1000; ++i) small.push_back(i);
  for (std::uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(small[i], i);

  // Above the threshold: the mmap path (2 MiB of u64s).
  constexpr std::size_t kBig = (std::size_t{2} << 20) / sizeof(std::uint64_t);
  HpVector<std::uint64_t> big(kBig);
  big.front() = 1;
  big.back() = 2;
  big[kBig / 2] = 3;
  EXPECT_EQ(big.front(), 1u);
  EXPECT_EQ(big.back(), 2u);
  EXPECT_EQ(big[kBig / 2], 3u);

  // Growth across the threshold reallocates without losing contents.
  HpVector<std::uint64_t> grow;
  for (std::size_t i = 0; i < kBig + 17; ++i) grow.push_back(i);
  for (std::size_t i = 0; i < grow.size(); i += 4099) ASSERT_EQ(grow[i], i);

  // Copies compare equal through the stateless allocator.
  HpVector<std::uint64_t> copy = big;
  EXPECT_EQ(copy.size(), big.size());
  EXPECT_EQ(copy.front(), 1u);
  EXPECT_TRUE(HugePageAllocator<std::uint64_t>() ==
              HugePageAllocator<std::uint32_t>());
  EXPECT_FALSE(HugePageAllocator<std::uint64_t>() !=
               HugePageAllocator<std::uint32_t>());
}

}  // namespace
}  // namespace p2p::util
