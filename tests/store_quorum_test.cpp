// Quorum store (store/quorum_store.h): the replication state machine.
//  * W+R>k intersection: with static membership, every quorum read returns
//    the latest committed write — across a random interleaved put/get mix;
//  * versions are per-key monotonic and committed only on quorum;
//  * a timed-out write is lost in flight, not applied late;
//  * failover promotes standbys past dead primaries and hinted handoff
//    replays the write when the primary revives;
//  * crash amnesia + repair_sweep: a forgotten replica is re-filled from a
//    surviving holder, and a key with no surviving copy counts as lost;
//  * install/replica/latest_committed introspection, and run_batch
//    determinism (same inputs, fresh store -> bit-identical results).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/router.h"
#include "dht/hash.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "store/placement.h"
#include "store/quorum_store.h"
#include "util/rng.h"

namespace p2p::store {
namespace {

using failure::FailureView;
using graph::NodeId;

graph::OverlayGraph ring_overlay(std::uint64_t n, std::uint64_t seed = 7) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.topology = metric::Space1D::Kind::kRing;
  spec.long_links = 4;
  spec.bidirectional = true;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

core::RouterConfig robust_router() {
  core::RouterConfig cfg;
  cfg.stuck_policy = core::StuckPolicy::kBacktrack;
  return cfg;
}

std::vector<OpResult> run(QuorumStore& store, const FailureView& view,
                          std::span<const Op> ops, std::uint64_t seed = 77) {
  const core::Router router(store.graph(), view, robust_router());
  std::vector<OpResult> results(ops.size());
  store.run_batch(router, ops, results, seed);
  return results;
}

TEST(QuorumStore, ConfigValidation) {
  const auto g = ring_overlay(32);
  QuorumConfig bad;
  bad.r = 4;  // > k
  EXPECT_THROW(QuorumStore(g, bad), std::invalid_argument);
  bad = QuorumConfig{};
  bad.w = 0;
  EXPECT_THROW(QuorumStore(g, bad), std::invalid_argument);
  bad = QuorumConfig{};
  bad.k = kMaxReplicas;
  bad.r = bad.w = 1;
  bad.max_failovers = 1;  // k + max_failovers > kMaxReplicas
  EXPECT_THROW(QuorumStore(g, bad), std::invalid_argument);
  bad = QuorumConfig{};
  bad.timeout_ms = 0.0;
  EXPECT_THROW(QuorumStore(g, bad), std::invalid_argument);
}

TEST(QuorumStore, InstallPlacesOnPrimariesAndCommits) {
  const auto g = ring_overlay(64);
  const auto view = FailureView::all_alive(g);
  QuorumStore store(g);

  const Version v = store.install(view, "alpha", "payload");
  EXPECT_EQ(v.seq, 1u);
  ASSERT_TRUE(store.latest_committed("alpha").has_value());
  EXPECT_EQ(*store.latest_committed("alpha"), v);
  EXPECT_EQ(store.key_count(), 1u);

  const auto primaries = replica_set(
      view, dht::point_for_key("alpha", g.space()), store.config().k);
  for (const NodeId p : primaries) {
    const auto rep = store.replica(p, "alpha");
    ASSERT_TRUE(rep.has_value()) << "primary " << p;
    EXPECT_EQ(rep->first, v);
    EXPECT_EQ(rep->second, "payload");
  }
  EXPECT_FALSE(store.latest_committed("beta").has_value());
}

TEST(QuorumStore, QuorumReadSeesLatestCommittedWrite) {
  // W+R>k with static membership: the read set of any get intersects the
  // write set of the latest committed put, so reads are never stale.
  const auto g = ring_overlay(128);
  const auto view = FailureView::all_alive(g);
  QuorumStore store(g);  // k=3, R=2, W=2

  util::Rng rng(13);
  std::map<std::string, std::string> expected;
  std::uint64_t counter = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<Op> ops;
    for (int j = 0; j < 24; ++j) {
      Op op;
      op.key = "key-" + std::to_string(rng.next_below(6));
      op.client = view.random_alive(rng);
      if (expected.empty() || rng.next_bool(0.5)) {
        op.type = OpType::kPut;
        op.value = "val-" + std::to_string(++counter);
      }
      ops.push_back(op);
    }
    const auto results = run(store, view, ops, 1000 + round);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      const OpResult& res = results[i];
      ASSERT_TRUE(res.ok) << "op " << i << " lost quorum on a static view";
      if (op.type == OpType::kPut) {
        EXPECT_EQ(res.acks, store.config().k);
        expected[op.key] = op.value;
      } else {
        EXPECT_GE(res.responses, store.config().r);
        EXPECT_FALSE(res.stale);
        const auto want = expected.find(op.key);
        if (want != expected.end()) {
          ASSERT_TRUE(res.found);
          EXPECT_EQ(res.value, want->second);
        }
      }
    }
  }
}

TEST(QuorumStore, VersionsAreMonotonicPerKey) {
  const auto g = ring_overlay(64);
  const auto view = FailureView::all_alive(g);
  QuorumStore store(g);

  std::uint64_t last_seq = 0;
  for (int i = 0; i < 5; ++i) {
    Op op;
    op.type = OpType::kPut;
    op.client = static_cast<NodeId>(i * 7);
    op.key = "mono";
    op.value = "v" + std::to_string(i);
    const auto results = run(store, view, std::span<const Op>(&op, 1), 50 + i);
    ASSERT_TRUE(results[0].ok);
    EXPECT_GT(results[0].version.seq, last_seq);
    last_seq = results[0].version.seq;
    EXPECT_EQ(store.latest_committed("mono")->seq, last_seq);
  }
  EXPECT_EQ(store.key_count(), 1u);
}

TEST(QuorumStore, TimedOutWriteIsLostNotApplied) {
  const auto g = ring_overlay(64);
  const auto view = FailureView::all_alive(g);
  QuorumConfig cfg;
  cfg.timeout_ms = 1e-6;  // every sub-query's latency exceeds this
  QuorumStore store(g, cfg);

  Op op;
  op.type = OpType::kPut;
  op.client = 1;
  op.key = "doomed";
  op.value = "never";
  const auto results = run(store, view, std::span<const Op>(&op, 1));
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].acks, 0u);
  // Failovers were attempted, then the op gave up.
  EXPECT_EQ(results[0].failovers, cfg.max_failovers);
  EXPECT_FALSE(store.latest_committed("doomed").has_value());
  const auto primaries = replica_set(
      view, dht::point_for_key("doomed", g.space()), cfg.k);
  for (const NodeId p : primaries) {
    EXPECT_FALSE(store.replica(p, "doomed").has_value());
  }

  // A get against the never-written key reaches quorum but finds nothing.
  Op get;
  get.type = OpType::kGet;
  get.client = 2;
  get.key = "doomed";
  QuorumStore fresh(g);
  const auto got = run(fresh, view, std::span<const Op>(&get, 1));
  EXPECT_TRUE(got[0].ok);
  EXPECT_FALSE(got[0].found);
}

TEST(QuorumStore, FailoverPastDeadPrimaryAndHintedHandoff) {
  const auto g = ring_overlay(128);
  auto view = FailureView::all_alive(g);
  QuorumStore store(g);

  const auto point = dht::point_for_key("hinted", g.space());
  const auto primaries = replica_set(view, point, store.config().k);
  view.kill_node(primaries[0]);

  util::Rng client_rng(3);
  Op op;
  op.type = OpType::kPut;
  op.client = view.random_alive(client_rng);
  op.key = "hinted";
  op.value = "payload";
  const auto results = run(store, view, std::span<const Op>(&op, 1));
  ASSERT_TRUE(results[0].ok);
  // Placement skipped the dead primary entirely, so the put lands on the
  // k nearest *live* nodes without failing over.
  EXPECT_EQ(results[0].acks, store.config().k);
  EXPECT_FALSE(store.replica(primaries[0], "hinted").has_value());

  // Repair path back to full replication once the primary revives: the
  // sweep sees the revived (amnesiac) node as a primary missing the value.
  view.revive_node(primaries[0]);
  const SweepStats sweep = store.repair_sweep(view);
  EXPECT_EQ(sweep.degraded, 1u);
  EXPECT_EQ(sweep.repaired, 1u);
  EXPECT_EQ(sweep.lost, 0u);
  const auto rep = store.replica(primaries[0], "hinted");
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->second, "payload");
  EXPECT_EQ(store.repair_sweep(view).degraded, 0u);  // now quiescent
}

TEST(QuorumStore, UnreachablePrimaryFailsOverAndStoresHint) {
  // A sloppy-quorum write: the primary is alive (placement selects it) but
  // link-isolated (every in-link dead), so its sub-query is unreachable.
  // The op fails over to the standby, acks there, and remembers a hint for
  // the primary — delivered once the partition heals.
  const auto g = ring_overlay(128);
  auto view = FailureView::all_alive(g);
  QuorumConfig cfg;
  cfg.k = 1;
  cfg.r = 1;
  cfg.w = 1;
  QuorumStore store(g, cfg);

  const NodeId owner =
      replica_set(view, dht::point_for_key("hint-key", g.space()), 1)[0];
  std::vector<std::pair<NodeId, std::size_t>> isolated;
  for (NodeId v = 0; v < g.size(); ++v) {
    const auto neigh = g.neighbors(v);
    for (std::size_t idx = 0; idx < neigh.size(); ++idx) {
      if (neigh[idx] == owner) {
        view.kill_link(v, idx);
        isolated.emplace_back(v, idx);
      }
    }
  }
  ASSERT_FALSE(isolated.empty());

  Op op;
  op.type = OpType::kPut;
  op.client = owner == 5 ? 6 : 5;
  op.key = "hint-key";
  op.value = "x";
  const auto results = run(store, view, std::span<const Op>(&op, 1));
  ASSERT_TRUE(results[0].ok);
  EXPECT_GE(results[0].failovers, 1u);
  EXPECT_FALSE(store.replica(owner, "hint-key").has_value());
  EXPECT_EQ(store.pending_hints(), 1u);

  // Heal the partition; the hint replays the write onto the primary.
  for (const auto& [v, idx] : isolated) view.revive_link(v, idx);
  EXPECT_EQ(store.deliver_hints(view), 1u);
  EXPECT_EQ(store.pending_hints(), 0u);
  const auto rep = store.replica(owner, "hint-key");
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->second, "x");
}

TEST(QuorumStore, ForgetThenSweepRepairsFromSurvivor) {
  const auto g = ring_overlay(96);
  const auto view = FailureView::all_alive(g);
  QuorumStore store(g);

  store.install(view, "obj", "data");
  const auto primaries =
      replica_set(view, dht::point_for_key("obj", g.space()), 3);
  store.forget(primaries[1]);
  EXPECT_FALSE(store.replica(primaries[1], "obj").has_value());

  const SweepStats sweep = store.repair_sweep(view);
  EXPECT_EQ(sweep.examined, 1u);
  EXPECT_EQ(sweep.degraded, 1u);
  EXPECT_EQ(sweep.repaired, 1u);
  ASSERT_TRUE(store.replica(primaries[1], "obj").has_value());
  EXPECT_EQ(store.replica(primaries[1], "obj")->second, "data");
}

TEST(QuorumStore, KeyWithNoSurvivingCopyCountsAsLost) {
  const auto g = ring_overlay(96);
  const auto view = FailureView::all_alive(g);
  QuorumConfig cfg;
  cfg.k = 1;
  cfg.r = cfg.w = 1;
  QuorumStore store(g, cfg);

  store.install(view, "fragile", "data");
  const auto owner =
      replica_set(view, dht::point_for_key("fragile", g.space()), 1);
  store.forget(owner[0]);

  const SweepStats sweep = store.repair_sweep(view);
  EXPECT_EQ(sweep.lost, 1u);
  EXPECT_EQ(sweep.degraded, 0u);
  EXPECT_EQ(sweep.repaired, 0u);

  // A fresh write resurrects the key; the next sweep is clean.
  store.install(view, "fragile", "data2");
  const SweepStats after = store.repair_sweep(view);
  EXPECT_EQ(after.lost, 0u);
  EXPECT_EQ(after.degraded, 0u);
}

TEST(QuorumStore, RunBatchIsDeterministic) {
  const auto g = ring_overlay(128);
  const auto view = FailureView::all_alive(g);
  util::Rng rng(5);
  std::vector<Op> ops;
  for (int i = 0; i < 40; ++i) {
    Op op;
    op.type = (i % 3 == 0) ? OpType::kGet : OpType::kPut;
    op.client = view.random_alive(rng);
    op.key = "d" + std::to_string(i % 9);
    op.value = "v" + std::to_string(i);
    ops.push_back(op);
  }

  QuorumStore a(g);
  QuorumStore b(g);
  const auto ra = run(a, view, ops, 4242);
  const auto rb = run(b, view, ops, 4242);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ra[i].ok, rb[i].ok);
    EXPECT_EQ(ra[i].acks, rb[i].acks);
    EXPECT_EQ(ra[i].responses, rb[i].responses);
    EXPECT_EQ(ra[i].subqueries, rb[i].subqueries);
    EXPECT_EQ(ra[i].hops, rb[i].hops);
    EXPECT_EQ(ra[i].version, rb[i].version);
    EXPECT_EQ(ra[i].value, rb[i].value);
    EXPECT_DOUBLE_EQ(ra[i].latency_ms, rb[i].latency_ms);
  }
}

TEST(QuorumStore, StaleDetectionAgainstDirectory) {
  // A read that observes an older-than-committed version reports stale=true:
  // v2 commits while primaries[0] is down (it keeps its v1 copy — no crash),
  // then an R=1 read under the healed view hits primaries[0] and sees v1.
  const auto g = ring_overlay(128);
  auto view = FailureView::all_alive(g);
  QuorumConfig cfg;
  cfg.r = 1;
  cfg.read_repair = false;
  QuorumStore store(g, cfg);

  const Version v1 = store.install(view, "s", "old");
  const auto primaries =
      replica_set(view, dht::point_for_key("s", g.space()), 3);
  view.kill_node(primaries[0]);
  const Version v2 = store.install(view, "s", "new");
  ASSERT_TRUE(v2.newer_than(v1));
  view.revive_node(primaries[0]);

  Op get;
  get.type = OpType::kGet;
  get.client = 9;
  get.key = "s";
  const auto results = run(store, view, std::span<const Op>(&get, 1));
  ASSERT_TRUE(results[0].ok);
  ASSERT_TRUE(results[0].found);
  EXPECT_EQ(results[0].version, v1);
  EXPECT_EQ(results[0].value, "old");
  EXPECT_TRUE(results[0].stale);
}

}  // namespace
}  // namespace p2p::store
