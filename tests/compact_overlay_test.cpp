// Pins the compact frozen representation of ISSUE 9 against the standard
// CSR layout:
//  * a graph built twice from the same (spec, seed) — once kStandard, once
//    kCompact — has identical structure through the shared query surface
//    (neighbors / operator[] / long_neighbors / decode_links / edge_base /
//    edge_slots / out_degree / short_degree / has_link);
//  * the delta-encoded stream round-trips escape-encoded (far) targets, not
//    just the one-word deltas small rings produce;
//  * routing is bit-identical across layouts: candidates(),
//    select_candidate (SIMD and forced-scalar, ranks 0..2), route() and
//    route_batch() (widths 1 and 32) — under all-alive, node-failure,
//    link-failure and mixed views, on the ring, the line and a hand-built
//    Kleinberg torus (the torus AVX-512 compact decode path);
//  * slot numbering matches: the same kill/revive sequence applied to views
//    over both layouts keeps every equivalence;
//  * degrees past the SIMD decode buffer (256) take the scalar fallback and
//    still agree;
//  * compact graphs refuse mutation (std::logic_error) and cost <= 60% of
//    the standard layout's bytes at the paper's lg n link density.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "metric/space.h"
#include "util/rng.h"

namespace p2p {
namespace {

using failure::FailureView;
using graph::EdgeLayout;
using graph::NodeId;
using graph::OverlayGraph;

/// One adjacency, both frozen forms: `standard` and `compact` are built from
/// identical specs and identical rng seeds, so they differ only in layout.
struct LayoutPair {
  OverlayGraph standard;
  OverlayGraph compact;
};

OverlayGraph build_ring(std::uint64_t n, std::size_t links, std::uint64_t seed,
                        EdgeLayout layout, double exponent,
                        metric::Space1D::Kind kind) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.exponent = exponent;
  spec.topology = kind;
  spec.bidirectional = true;  // reverse links push hub degrees past kInlineEdges
  spec.layout = layout;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

LayoutPair ring_pair(std::uint64_t n, std::size_t links, std::uint64_t seed,
                     double exponent = 1.0,
                     metric::Space1D::Kind kind = metric::Space1D::Kind::kRing) {
  return {build_ring(n, links, seed, EdgeLayout::kStandard, exponent, kind),
          build_ring(n, links, seed, EdgeLayout::kCompact, exponent, kind)};
}

/// Hand-built Kleinberg lattice (build_kleinberg_overlay always freezes
/// standard, so the compact torus comes from wiring the same lattice + the
/// same seeded long links through two builders).
OverlayGraph build_torus(std::uint32_t side, std::size_t long_links,
                         std::uint64_t seed, EdgeLayout layout) {
  const metric::Torus2D torus(side);
  graph::GraphBuilder builder{metric::Space(torus)};
  builder.reserve_links(long_links + 4);
  for (NodeId u = 0; u < builder.size(); ++u) {
    const auto [row, col] = torus.coords(static_cast<metric::Point>(u));
    const auto r = static_cast<std::int64_t>(row);
    const auto c = static_cast<std::int64_t>(col);
    builder.add_short_link(u, static_cast<NodeId>(torus.at(r + 1, c)));
    builder.add_short_link(u, static_cast<NodeId>(torus.at(r - 1, c)));
    builder.add_short_link(u, static_cast<NodeId>(torus.at(r, c + 1)));
    builder.add_short_link(u, static_cast<NodeId>(torus.at(r, c - 1)));
  }
  util::Rng rng(seed);
  const std::uint64_t n = builder.size();
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < long_links; ++k) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (v != u) builder.add_long_link(u, v);
    }
  }
  graph::FreezeOptions opts;
  opts.layout = layout;
  return builder.freeze(opts);
}

LayoutPair torus_pair(std::uint32_t side, std::size_t long_links,
                      std::uint64_t seed) {
  return {build_torus(side, long_links, seed, EdgeLayout::kStandard),
          build_torus(side, long_links, seed, EdgeLayout::kCompact)};
}

void check_structure(const LayoutPair& p) {
  const OverlayGraph& a = p.standard;
  const OverlayGraph& b = p.compact;
  ASSERT_FALSE(a.compact());
  ASSERT_TRUE(b.compact());
  ASSERT_EQ(b.layout(), EdgeLayout::kCompact);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.link_count(), b.link_count());
  ASSERT_EQ(a.edge_slots(), b.edge_slots());
  ASSERT_EQ(a.space(), b.space());
  std::vector<NodeId> decoded;
  for (NodeId u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a.out_degree(u), b.out_degree(u)) << "u=" << u;
    ASSERT_EQ(a.short_degree(u), b.short_degree(u)) << "u=" << u;
    ASSERT_EQ(a.edge_base(u), b.edge_base(u)) << "u=" << u;
    ASSERT_EQ(a.position(u), b.position(u)) << "u=" << u;
    // Iteration (the decode-as-you-go cursor) against the raw slice.
    const auto ra = a.neighbors(u);
    const auto rb = b.neighbors(u);
    ASSERT_EQ(ra.size(), rb.size()) << "u=" << u;
    auto ia = ra.begin();
    auto ib = rb.begin();
    for (std::size_t i = 0; i < ra.size(); ++i, ++ia, ++ib) {
      ASSERT_EQ(*ia, *ib) << "u=" << u << " i=" << i;
    }
    // Bulk decode and random access agree with iteration.
    decoded.assign(rb.size(), graph::kInvalidNode);
    if (!rb.empty()) {
      ASSERT_EQ(b.decode_links(u, decoded.data()), rb.size()) << "u=" << u;
    }
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i], decoded[i]) << "u=" << u << " i=" << i;
      ASSERT_EQ(rb[i], decoded[i]) << "u=" << u << " i=" << i;
    }
    // Long-link suffix.
    const auto la = a.long_neighbors(u);
    const auto lb = b.long_neighbors(u);
    ASSERT_EQ(la.size(), lb.size()) << "u=" << u;
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i], lb[i]) << "u=" << u << " i=" << i;
    }
  }
  // has_link spot checks: every real link plus a few absent ones.
  util::Rng probe(977);
  for (int t = 0; t < 200; ++t) {
    const auto u = static_cast<NodeId>(probe.next_below(a.size()));
    const auto v = static_cast<NodeId>(probe.next_below(a.size()));
    ASSERT_EQ(a.has_link(u, v), b.has_link(u, v)) << "u=" << u << " v=" << v;
    if (a.out_degree(u) > 0) {
      const NodeId w = a.neighbors(u)[probe.next_below(a.out_degree(u))];
      ASSERT_TRUE(b.has_link(u, w)) << "u=" << u << " w=" << w;
    }
  }
}

/// Failure views drawn from one seed per layout: slot numbering and node
/// count match, so the draws land identically.
std::vector<std::pair<std::string, std::pair<FailureView, FailureView>>>
view_pairs(const LayoutPair& p, std::uint64_t seed) {
  std::vector<std::pair<std::string, std::pair<FailureView, FailureView>>> out;
  {
    out.emplace_back("alive", std::make_pair(FailureView::all_alive(p.standard),
                                             FailureView::all_alive(p.compact)));
  }
  {
    util::Rng ra(seed);
    util::Rng rb(seed);
    out.emplace_back(
        "nodes",
        std::make_pair(FailureView::with_node_failures(p.standard, 0.3, ra),
                       FailureView::with_node_failures(p.compact, 0.3, rb)));
  }
  {
    util::Rng ra(seed + 1);
    util::Rng rb(seed + 1);
    out.emplace_back(
        "links",
        std::make_pair(FailureView::with_link_failures(p.standard, 0.6, ra),
                       FailureView::with_link_failures(p.compact, 0.6, rb)));
  }
  {
    util::Rng ra(seed + 2);
    util::Rng rb(seed + 2);
    auto va = FailureView::with_link_failures(p.standard, 0.7, ra);
    auto vb = FailureView::with_link_failures(p.compact, 0.7, rb);
    for (NodeId u = 0; u < p.standard.size(); ++u) {
      if (ra.next_bool(0.25)) va.kill_node(u);
      if (rb.next_bool(0.25)) vb.kill_node(u);
    }
    out.emplace_back("both", std::make_pair(std::move(va), std::move(vb)));
  }
  return out;
}

core::Router scalar_router(const OverlayGraph& g, const FailureView& view,
                           core::RouterConfig cfg) {
  cfg.force_scalar = true;
  return core::Router(g, view, cfg);
}

/// candidates() / select_candidate bit-identity: the standard scalar table is
/// the reference; the compact SIMD and scalar paths (and the standard SIMD
/// path) must all agree with it.
void check_layout_selection(const LayoutPair& p, const FailureView& va,
                            const FailureView& vb, core::RouterConfig cfg,
                            std::uint64_t seed, int trials,
                            const std::string& label) {
  const core::Router std_simd(p.standard, va, cfg);
  const core::Router std_scalar = scalar_router(p.standard, va, cfg);
  const core::Router cmp_simd(p.compact, vb, cfg);
  const core::Router cmp_scalar = scalar_router(p.compact, vb, cfg);
  util::Rng pick(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const auto u = static_cast<NodeId>(pick.next_below(p.standard.size()));
    const auto t =
        p.standard.position(static_cast<NodeId>(pick.next_below(p.standard.size())));
    const auto reference = std_scalar.candidates(u, t);
    const auto compact_list = cmp_scalar.candidates(u, t);
    ASSERT_EQ(compact_list, reference) << label << " u=" << u << " t=" << t;
    for (std::size_t rank = 0; rank < 3; ++rank) {
      const NodeId want =
          rank < reference.size() ? reference[rank] : graph::kInvalidNode;
      ASSERT_EQ(std_simd.select_candidate(u, t, rank), want)
          << label << "/std-simd u=" << u << " t=" << t << " rank=" << rank;
      ASSERT_EQ(cmp_simd.select_candidate(u, t, rank), want)
          << label << "/cmp-simd u=" << u << " t=" << t << " rank=" << rank;
      ASSERT_EQ(cmp_scalar.select_candidate(u, t, rank), want)
          << label << "/cmp-scalar u=" << u << " t=" << t << " rank=" << rank;
    }
  }
}

/// route() / route_batch() bit-identity across layouts and dispatches.
void check_layout_routes(const LayoutPair& p, const FailureView& va,
                         const FailureView& vb, core::RouterConfig cfg,
                         std::uint64_t seed, std::size_t messages,
                         const std::string& label) {
  const core::Router std_simd(p.standard, va, cfg);
  const core::Router cmp_simd(p.compact, vb, cfg);
  const core::Router cmp_scalar = scalar_router(p.compact, vb, cfg);
  util::Rng pick(seed);
  std::vector<core::Query> queries(messages);
  for (auto& q : queries) {
    q = {static_cast<NodeId>(pick.next_below(p.standard.size())),
         p.standard.position(
             static_cast<NodeId>(pick.next_below(p.standard.size())))};
  }
  for (std::size_t i = 0; i < messages; ++i) {
    util::Rng a(seed + 1 + i);
    util::Rng b(seed + 1 + i);
    util::Rng c(seed + 1 + i);
    const auto want = std_simd.route(queries[i].src, queries[i].target, a);
    const auto got = cmp_simd.route(queries[i].src, queries[i].target, b);
    const auto got_scalar =
        cmp_scalar.route(queries[i].src, queries[i].target, c);
    ASSERT_EQ(got.status, want.status) << label << " query=" << i;
    ASSERT_EQ(got.hops, want.hops) << label << " query=" << i;
    ASSERT_EQ(got.backtracks, want.backtracks) << label << " query=" << i;
    ASSERT_EQ(got.reroutes, want.reroutes) << label << " query=" << i;
    ASSERT_EQ(got_scalar.status, want.status) << label << " query=" << i;
    ASSERT_EQ(got_scalar.hops, want.hops) << label << " query=" << i;
  }
  for (const std::size_t width : {std::size_t{1}, std::size_t{32}}) {
    core::BatchConfig batch;
    batch.width = width;
    std::vector<core::RouteResult> want(messages);
    std::vector<core::RouteResult> got(messages);
    util::Rng a(seed + 7);
    util::Rng b(seed + 7);
    std_simd.route_batch(queries, want, a, batch);
    cmp_simd.route_batch(queries, got, b, batch);
    for (std::size_t i = 0; i < messages; ++i) {
      ASSERT_EQ(got[i].status, want[i].status)
          << label << " width=" << width << " query=" << i;
      ASSERT_EQ(got[i].hops, want[i].hops)
          << label << " width=" << width << " query=" << i;
    }
  }
}

TEST(CompactOverlay, StructuralEquivalenceRing) {
  check_structure(ring_pair(4096, 12, 91));
}

TEST(CompactOverlay, StructuralEquivalenceTorus) {
  check_structure(torus_pair(23, 6, 93));
}

TEST(CompactOverlay, EscapeEncodedFarTargets) {
  // Uniform long links on a 200k ring put most deltas far outside the
  // one-word zigzag range, so the escape (0xFFFF + absolute) encoding is the
  // common case here rather than a corner.
  const auto p = ring_pair(200000, 4, 95, /*exponent=*/0.0);
  std::size_t escapes = 0;
  for (NodeId u = 0; u < p.compact.size(); ++u) {
    const auto& h = p.compact.cheader(u);
    const std::uint16_t* s = p.compact.enc_stream(h);
    const std::uint16_t* word = s;
    for (std::uint32_t i = 0; i < h.degree; ++i) {
      if (*word == graph::detail::kEscapeWord) ++escapes;
      (void)graph::detail::decode_link(word, u);
    }
  }
  ASSERT_GT(escapes, p.compact.size());  // far targets dominate
  check_structure(p);
  const auto views = view_pairs(p, 96);
  const auto& [name, pair] = views[1];  // node failures
  check_layout_routes(p, pair.first, pair.second, {}, 97, 32,
                      "escape/" + name);
}

TEST(CompactOverlay, MutatorsThrow) {
  auto p = ring_pair(256, 4, 99);
  EXPECT_THROW(p.compact.add_short_link(0, 1), std::logic_error);
  EXPECT_THROW(p.compact.add_long_link(0, 5), std::logic_error);
  EXPECT_THROW(p.compact.replace_long_link(0, 0, 5), std::logic_error);
  EXPECT_THROW(p.compact.clear_links(0), std::logic_error);
  // The standard twin stays mutable.
  p.standard.replace_long_link(0, 0, 7);
}

TEST(CompactOverlay, MemoryAtMostSixtyPercentOfStandard) {
  const auto p = ring_pair(65536, 16, 101);
  const auto breakdown = p.compact.memory_breakdown();
  EXPECT_EQ(breakdown.tail, 0u);
  EXPECT_EQ(breakdown.short_degrees, 0u);
  EXPECT_GT(breakdown.headers, 0u);
  EXPECT_GT(breakdown.edges, 0u);
  // Same adjacency, so the analytic standard cost matches the real standard
  // graph (both dense: no positions term).
  EXPECT_EQ(p.compact.standard_layout_bytes(), p.standard.standard_layout_bytes());
  EXPECT_EQ(p.standard.standard_layout_bytes(), p.standard.memory_bytes());
  EXPECT_LE(static_cast<double>(p.compact.memory_bytes()),
            0.6 * static_cast<double>(p.compact.standard_layout_bytes()));
}

TEST(CompactOverlay, SelectionEquivalenceOneDimensional) {
  for (const auto kind :
       {metric::Space1D::Kind::kLine, metric::Space1D::Kind::kRing}) {
    const std::string space =
        kind == metric::Space1D::Kind::kLine ? "line" : "ring";
    const auto p = ring_pair(4096, 12, 103, 1.0, kind);
    for (auto& [name, views] : view_pairs(p, 104)) {
      for (const auto knowledge :
           {core::Knowledge::kLiveness, core::Knowledge::kStale}) {
        core::RouterConfig cfg;
        cfg.knowledge = knowledge;
        const std::string label =
            space + "/" + name +
            (knowledge == core::Knowledge::kStale ? "/stale" : "/live");
        check_layout_selection(p, views.first, views.second, cfg, 105, 400,
                               label);
      }
    }
  }
}

TEST(CompactOverlay, SelectionEquivalenceTorus) {
  const auto p = torus_pair(45, 8, 107);
  for (auto& [name, views] : view_pairs(p, 108)) {
    for (const auto knowledge :
         {core::Knowledge::kLiveness, core::Knowledge::kStale}) {
      core::RouterConfig cfg;
      cfg.knowledge = knowledge;
      const std::string label =
          "torus/" + name +
          (knowledge == core::Knowledge::kStale ? "/stale" : "/live");
      check_layout_selection(p, views.first, views.second, cfg, 109, 400, label);
    }
  }
}

TEST(CompactOverlay, RouteAndBatchEquivalence) {
  const auto ring = ring_pair(4096, 12, 111);
  const auto torus = torus_pair(45, 8, 112);
  for (const LayoutPair* p : {&ring, &torus}) {
    for (auto& [name, views] : view_pairs(*p, 113)) {
      for (const auto knowledge :
           {core::Knowledge::kLiveness, core::Knowledge::kStale}) {
        core::RouterConfig cfg;
        cfg.knowledge = knowledge;
        check_layout_routes(*p, views.first, views.second, cfg, 114, 48,
                            (p == &ring ? "ring/" : "torus/") + name);
      }
    }
  }
}

TEST(CompactOverlay, KillReviveSlotEquivalence) {
  // The same slot-keyed kill/revive sequence applied to views over both
  // layouts: slot numbering is shared, so liveness stays identical and so
  // does every selection.
  const auto p = ring_pair(2048, 10, 117);
  auto va = FailureView::all_alive(p.standard);
  auto vb = FailureView::all_alive(p.compact);
  util::Rng rng(118);
  for (int round = 0; round < 600; ++round) {
    const auto u = static_cast<NodeId>(rng.next_below(p.standard.size()));
    if (rng.next_bool(0.4)) {
      if (rng.next_bool(0.5)) {
        va.kill_node(u);
        vb.kill_node(u);
      } else {
        va.revive_node(u);
        vb.revive_node(u);
      }
    } else if (p.standard.out_degree(u) > 0) {
      const std::size_t i = rng.next_below(p.standard.out_degree(u));
      if (rng.next_bool(0.5)) {
        va.kill_link(u, i);
        vb.kill_link(u, i);
      } else {
        va.revive_link(u, i);
        vb.revive_link(u, i);
      }
    }
    if (round % 200 == 199) {
      for (NodeId n = 0; n < p.standard.size(); ++n) {
        ASSERT_EQ(va.node_alive(n), vb.node_alive(n)) << "node " << n;
      }
      for (std::size_t s = 0; s < p.standard.edge_slots(); ++s) {
        ASSERT_EQ(va.link_alive_at(s), vb.link_alive_at(s)) << "slot " << s;
      }
    }
  }
  check_layout_selection(p, va, vb, {}, 119, 400, "killrevive");
  check_layout_routes(p, va, vb, {}, 120, 48, "killrevive");
}

TEST(CompactOverlay, HubPastSimdDecodeBuffer) {
  // One node's degree beyond the 256-entry SIMD decode buffer: the compact
  // AVX-512 path must hand the hub to the scalar fallback and still match.
  const std::uint64_t n = 4096;
  auto build = [&](EdgeLayout layout) {
    graph::GraphBuilder builder{metric::Space1D::ring(n)};
    builder.wire_short_links();
    util::Rng rng(121);
    for (int i = 0; i < 320; ++i) {
      NodeId v = 0;
      while (v == 0) v = static_cast<NodeId>(rng.next_below(n));
      builder.add_long_link(0, v);
    }
    graph::FreezeOptions opts;
    opts.layout = layout;
    return builder.freeze(opts);
  };
  const LayoutPair p{build(EdgeLayout::kStandard), build(EdgeLayout::kCompact)};
  ASSERT_GT(p.compact.out_degree(0), 256u);
  check_structure(p);
  util::Rng ra(122);
  util::Rng rb(122);
  auto va = FailureView::with_node_failures(p.standard, 0.4, ra);
  auto vb = FailureView::with_node_failures(p.compact, 0.4, rb);
  for (std::size_t i = 0; i < p.standard.out_degree(0); ++i) {
    const bool kill_a = ra.next_bool(0.3);
    const bool kill_b = rb.next_bool(0.3);
    ASSERT_EQ(kill_a, kill_b);
    if (kill_a) {
      va.kill_link(0, i);
      vb.kill_link(0, i);
    }
  }
  const core::Router std_scalar = scalar_router(p.standard, va, {});
  const core::Router cmp_simd(p.compact, vb, {});
  const core::Router cmp_scalar = scalar_router(p.compact, vb, {});
  util::Rng pick(123);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto t = static_cast<metric::Point>(pick.next_below(n));
    const auto reference = std_scalar.candidates(0, t);
    const NodeId want = reference.empty() ? graph::kInvalidNode : reference[0];
    ASSERT_EQ(cmp_simd.select_candidate(0, t, 0), want) << "t=" << t;
    ASSERT_EQ(cmp_scalar.select_candidate(0, t, 0), want) << "t=" << t;
  }
}

}  // namespace
}  // namespace p2p
