// Unit + equivalence tests for the churn delta log (churn/churn_log.h):
// recording normalization, apply/revert inversion, and the PR acceptance
// invariant — a replayed ChurnLog prefix is bit-identical to a from-scratch
// FailureView build at the same epoch, at every epoch, in both directions.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>

#include "churn/churn_log.h"
#include "churn/trace_gen.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace p2p::churn {
namespace {

using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph make_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

/// Full liveness-state equality: every node bit, every link slot bit, the
/// alive count and the epoch cursor.
void expect_views_identical(const FailureView& got, const FailureView& want,
                            const std::string& label) {
  ASSERT_EQ(&got.graph(), &want.graph()) << label;
  EXPECT_EQ(got.epoch(), want.epoch()) << label;
  ASSERT_EQ(got.alive_count(), want.alive_count()) << label;
  const auto& g = got.graph();
  for (NodeId u = 0; u < g.size(); ++u) {
    ASSERT_EQ(got.node_alive(u), want.node_alive(u)) << label << " node " << u;
  }
  for (std::size_t slot = 0; slot < g.edge_slots(); ++slot) {
    ASSERT_EQ(got.link_alive_at(slot), want.link_alive_at(slot))
        << label << " slot " << slot;
  }
}

TEST(ChurnLog, RecordsNormalizedBatches) {
  const auto g = make_graph(32, 2, 1);
  ChurnLog log(g);
  log.kill_node(3);
  log.kill_node(3);  // duplicate: no-op against the shadow
  log.kill_node(5);
  EXPECT_EQ(log.staged_changes(), 2u);
  log.revive_node(7);  // alive already: dropped
  EXPECT_EQ(log.staged_changes(), 2u);
  EXPECT_EQ(log.commit(1.0), 1u);
  EXPECT_TRUE(log.staged_empty());

  const auto& d = log.delta(0);
  EXPECT_EQ(d.when, 1.0);
  EXPECT_EQ(d.node_kills.size(), 2u);
  EXPECT_TRUE(d.node_revives.empty());
  EXPECT_EQ(log.total_changes(), 2u);
}

TEST(ChurnLog, KillThenReviveInOneBatchCancels) {
  const auto g = make_graph(32, 2, 2);
  ChurnLog log(g);
  log.kill_node(4);
  log.revive_node(4);
  EXPECT_TRUE(log.staged_empty());
  log.kill_link(0, 1);
  log.revive_link(0, 1);
  EXPECT_TRUE(log.staged_empty());
  // ... and the state machine still tracks: the net effect is nothing, so a
  // second kill is a real change again.
  log.kill_node(4);
  EXPECT_EQ(log.staged_changes(), 1u);
}

TEST(ChurnLog, CommitTimesMustBeMonotone) {
  const auto g = make_graph(16, 1, 3);
  ChurnLog log(g);
  log.kill_node(1);
  log.commit(5.0);
  log.kill_node(2);
  EXPECT_THROW(log.commit(4.0), std::invalid_argument);
}

TEST(ChurnLog, ApplyAdvancesEpochAndFlipsBits) {
  const auto g = make_graph(64, 3, 4);
  ChurnLog log(g);
  log.kill_node(10);
  log.kill_link(2, 0);
  log.commit(1.0);
  log.revive_node(10);
  log.commit(2.0);

  FailureView view = log.baseline();
  EXPECT_EQ(view.epoch(), 0u);
  view.apply(log.delta(0));
  EXPECT_EQ(view.epoch(), 1u);
  EXPECT_FALSE(view.node_alive(10));
  EXPECT_FALSE(view.link_alive(2, 0));
  EXPECT_EQ(view.alive_count(), g.size() - 1);
  view.apply(log.delta(1));
  EXPECT_EQ(view.epoch(), 2u);
  EXPECT_TRUE(view.node_alive(10));
  EXPECT_FALSE(view.link_alive(2, 0));  // link stays dead
}

TEST(ChurnLog, ApplyRejectsUnnormalizedDeltas) {
  const auto g = make_graph(32, 2, 5);
  FailureView view = FailureView::all_alive(g);
  FailureDelta bogus;
  bogus.node_revives.push_back(3);  // node 3 is alive
  EXPECT_THROW(view.apply(bogus), std::invalid_argument);
  bogus = {};
  bogus.node_kills.push_back(3);
  view.apply(bogus);
  EXPECT_THROW(view.apply(bogus), std::invalid_argument);  // already dead
}

TEST(ChurnLog, RevertIsExactInverse) {
  const auto g = make_graph(64, 3, 6);
  ChurnLog log(g);
  util::Rng rng(7);
  for (int e = 0; e < 20; ++e) {
    for (int k = 0; k < 5; ++k) {
      const auto u = static_cast<NodeId>(rng.next_below(g.size()));
      if (rng.next_bool(0.5)) {
        log.kill_node(u);
      } else {
        log.revive_node(u);
      }
    }
    log.commit(static_cast<double>(e));
  }

  FailureView view = log.baseline();
  log.seek(view, log.size());
  EXPECT_EQ(view.epoch(), log.size());
  log.seek(view, 0);
  expect_views_identical(view, log.baseline(), "after full round trip");
}

TEST(ChurnLog, RevertRejectsWrongDelta) {
  const auto g = make_graph(32, 2, 8);
  ChurnLog log(g);
  log.kill_node(1);
  log.commit(1.0);
  log.kill_node(2);
  log.commit(2.0);
  FailureView view = log.baseline();
  EXPECT_THROW(view.revert(log.delta(0)), std::invalid_argument);  // at epoch 0
  view.apply(log.delta(0));
  EXPECT_THROW(view.revert(log.delta(1)), std::invalid_argument);  // wrong batch
  view.revert(log.delta(0));
  EXPECT_EQ(view.epoch(), 0u);
}

// The acceptance-criteria equivalence: a replayed prefix must be
// bit-identical to a from-scratch build at the same epoch — for every epoch
// of a mixed node+link trace, seeking forward and backward.
TEST(ChurnLog, SeekMatchesMaterializeAtEveryEpoch) {
  const auto g = make_graph(256, 4, 9);
  ChurnLog log(g);
  util::Rng rng(10);
  for (int e = 0; e < 40; ++e) {
    for (int k = 0; k < 6; ++k) {
      const auto u = static_cast<NodeId>(rng.next_below(g.size()));
      switch (rng.next_below(4)) {
        case 0:
          log.kill_node(u);
          break;
        case 1:
          log.revive_node(u);
          break;
        case 2:
          log.kill_link(u, rng.next_below(g.out_degree(u)));
          break;
        default:
          log.revive_link(u, rng.next_below(g.out_degree(u)));
          break;
      }
    }
    log.commit(static_cast<double>(e));
  }
  ASSERT_GT(log.total_changes(), 0u);

  FailureView view = log.baseline();
  for (std::size_t e = 0; e <= log.size(); ++e) {
    log.seek(view, e);
    expect_views_identical(view, log.materialize(e),
                           "forward epoch " + std::to_string(e));
  }
  // Descend in strides so the revert path is exercised against every target.
  for (std::size_t e = log.size() + 1; e-- > 0;) {
    log.seek(view, e);
    expect_views_identical(view, log.materialize(e),
                           "backward epoch " + std::to_string(e));
  }
}

TEST(ChurnLog, SeekValidatesEpochAndGraph) {
  const auto g = make_graph(32, 2, 11);
  ChurnLog log(g);
  log.kill_node(1);
  log.commit(1.0);
  FailureView view = log.baseline();
  EXPECT_THROW(log.seek(view, 2), std::invalid_argument);  // beyond the log
  const auto other = make_graph(32, 2, 12);
  FailureView foreign = FailureView::all_alive(other);
  EXPECT_THROW(log.seek(foreign, 0), std::invalid_argument);
}

TEST(ChurnLog, NonZeroBaselinesReplayFromTheirOwnState) {
  const auto g = make_graph(128, 3, 13);
  util::Rng rng(14);
  const auto baseline = FailureView::with_node_failures(g, 0.3, rng);
  ChurnLog log(baseline);
  // Reviving a baseline-dead node is a real change; killing it is a no-op.
  NodeId dead = graph::kInvalidNode;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (!baseline.node_alive(u)) {
      dead = u;
      break;
    }
  }
  ASSERT_NE(dead, graph::kInvalidNode);
  log.kill_node(dead);
  EXPECT_TRUE(log.staged_empty());
  log.revive_node(dead);
  EXPECT_EQ(log.staged_changes(), 1u);
  log.commit(1.0);

  FailureView view = baseline;
  log.seek(view, 1);
  EXPECT_TRUE(view.node_alive(dead));
  EXPECT_EQ(view.alive_count(), baseline.alive_count() + 1);
  expect_views_identical(view, log.materialize(1), "non-zero baseline");
}

TEST(ChurnLog, RejectsMidLogBaselines) {
  const auto g = make_graph(32, 2, 15);
  ChurnLog log(g);
  log.kill_node(1);
  log.commit(1.0);
  FailureView advanced = log.materialize(1);
  EXPECT_THROW(ChurnLog{advanced}, std::invalid_argument);
}

// Satellite: the structural-generation invariant. A slot-moving graph
// mutation must make every view mutator fail loudly instead of silently
// mis-keying link bits.
TEST(StructuralGeneration, ViewMutatorsThrowAfterSlotMovingMutation) {
  graph::GraphBuilder builder(metric::Space1D::ring(16));
  builder.wire_short_links();
  for (NodeId u = 0; u < 16; ++u) builder.add_long_link(u, (u + 5) % 16);
  OverlayGraph g = builder.freeze();
  const auto gen0 = g.structural_generation();

  FailureView view = FailureView::all_alive(g);
  view.kill_link(0, 0);  // allocate link bits against gen0

  g.replace_long_link(2, 0, 9);  // in-place: never moves slots
  EXPECT_EQ(g.structural_generation(), gen0);
  view.kill_link(1, 0);  // still valid

  g.add_long_link(3, 9);  // no reserved slot: shifts the flat arrays
  EXPECT_GT(g.structural_generation(), gen0);
  EXPECT_THROW(view.kill_link(0, 1), std::invalid_argument);
  EXPECT_THROW(view.revive_link(0, 0), std::invalid_argument);
  FailureDelta delta;
  delta.node_kills.push_back(1);
  EXPECT_THROW(view.apply(delta), std::invalid_argument);

  // A fresh view over the mutated graph is keyed to the new generation.
  FailureView fresh = FailureView::all_alive(g);
  fresh.kill_link(3, 2);
  EXPECT_FALSE(fresh.link_alive(3, 2));
}

TEST(StructuralGeneration, ApplyRejectsLinkDeltasRecordedBeforeGrowth) {
  graph::GraphBuilder builder(metric::Space1D::ring(16));
  builder.wire_short_links();
  for (NodeId u = 0; u < 16; ++u) builder.add_long_link(u, (u + 3) % 16);
  OverlayGraph g = builder.freeze();

  // A link delta recorded against the pre-growth slot layout...
  FailureDelta link_delta;
  link_delta.link_kills.push_back(static_cast<std::uint32_t>(g.edge_base(4)));
  FailureDelta node_delta;
  node_delta.node_kills.push_back(4);

  FailureView view = FailureView::all_alive(g);  // no link bits allocated
  g.add_long_link(2, 9);                         // slots move

  // ...cannot be applied afterwards even though the view has no link bits
  // yet (a fresh bitset would mis-key the recorded slots). Node ids are
  // stable across growth, so a node-only delta still applies.
  EXPECT_THROW(view.apply(link_delta), std::invalid_argument);
  view.apply(node_delta);
  EXPECT_FALSE(view.node_alive(4));
  EXPECT_EQ(view.epoch(), 1u);
}

TEST(StructuralGeneration, SlotReusingMutationsKeepViewsValid) {
  graph::GraphBuilder builder(metric::Space1D::ring(16));
  builder.wire_short_links();
  for (NodeId u = 0; u < 16; ++u) builder.add_long_link(u, (u + 5) % 16);
  OverlayGraph g = builder.freeze();
  const auto gen0 = g.structural_generation();

  FailureView view = FailureView::all_alive(g);
  view.kill_link(4, 2);
  g.clear_links(7);           // truncation reserves the slots
  g.add_short_link(7, 8);     // reuses a reserved slot
  g.add_short_link(7, 6);
  g.add_long_link(7, 12);
  EXPECT_EQ(g.structural_generation(), gen0);
  view.kill_link(7, 0);  // still keyed correctly
  EXPECT_FALSE(view.link_alive(7, 0));
}

}  // namespace
}  // namespace p2p::churn
