// Tests for the telemetry subsystem (src/telemetry) and its wiring through
// the routing stack:
//  * registry shard-merge exactness against a serial reference;
//  * snapshot isolation (a snapshot never moves after later recording) and
//    counter monotonicity across snapshots under concurrent writers (the
//    TSan-labeled hammer — this suite carries the "concurrency" ctest label);
//  * flight-recorder trails pinned hop-for-hop against RouteResult::path;
//  * per-query route/secure/service metric bundles agreeing with the result
//    aggregates they mirror;
//  * exporter output sanity (Prometheus text exposition + JSON).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/route_telemetry.h"
#include "core/router.h"
#include "core/secure_router.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "service/routing_service.h"
#include "service/service_telemetry.h"
#include "service/view_publisher.h"
#include "telemetry/export.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metric_registry.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace p2p::telemetry {
namespace {

using core::Query;
using core::RouteResult;
using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph make_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.bidirectional = true;
  return graph::build_overlay(spec, rng);
}

std::vector<Query> make_queries(const OverlayGraph& g, std::size_t count,
                                std::uint64_t seed) {
  std::vector<Query> queries(count);
  util::Rng rng(seed);
  for (Query& q : queries) {
    const auto src = static_cast<NodeId>(rng.next_below(g.size()));
    auto dst = src;
    while (dst == src) dst = static_cast<NodeId>(rng.next_below(g.size()));
    q = {src, g.position(dst)};
  }
  return queries;
}

// -- Registry unit tests ------------------------------------------------------

TEST(Registry, RegistrationValidation) {
  Registry reg(2);
  (void)reg.counter("a");
  EXPECT_THROW((void)reg.counter("a"), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("a"), std::invalid_argument);
  reg.seal();
  EXPECT_TRUE(reg.sealed());
  EXPECT_THROW((void)reg.counter("b"), std::invalid_argument);
  EXPECT_THROW((void)reg.recorder(2), std::out_of_range);
  EXPECT_THROW(Registry(0), std::invalid_argument);
}

TEST(Registry, DefaultHandlesAndRecordersAreInert) {
  Registry reg(1);
  const Counter c = reg.counter("c");
  Recorder detached;  // default: drops everything
  detached.add(c, 5);
  Recorder live = reg.recorder(0);
  live.add(Counter{}, 7);  // default handle: no-op
  EXPECT_FALSE(detached.attached());
  EXPECT_TRUE(live.attached());
  EXPECT_EQ(reg.snapshot().counter_or("c"), 0u);
}

TEST(Registry, ShardMergeMatchesSerialReference) {
  constexpr std::size_t kShards = 4;
  Registry reg(kShards);
  const Counter c = reg.counter("ops");
  const Gauge gauge = reg.gauge("level");
  const Histogram h = reg.histogram("latency", 2.0, 1 << 10);

  // Serial reference mirrors of the three merge rules.
  std::uint64_t ref_count = 0;
  std::uint64_t ref_updates = 0;
  util::LogHistogram ref_hist(2.0, 1 << 10);

  util::Rng rng(42);
  for (std::size_t s = 0; s < kShards; ++s) {
    Recorder rec = reg.recorder(s);
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t n = rng.next_below(16);
      rec.add(c, n);
      ref_count += n;
      const std::uint64_t v = rng.next_below(1 << 12);
      rec.set_min(gauge, v);
      rec.set_max(gauge, v);  // same cell pair: last op wins the value slot
      ref_updates += 2;
      rec.observe(h, v);
      ref_hist.add(v);
    }
  }

  const Snapshot snap = reg.snapshot(3, 9);
  EXPECT_EQ(snap.epoch_lo, 3u);
  EXPECT_EQ(snap.epoch_hi, 9u);
  EXPECT_EQ(snap.counter_or("ops"), ref_count);

  const GaugeAggregate* g = snap.gauge("level");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->updates, ref_updates);

  const HistogramAggregate* hist = snap.histogram("latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total, ref_hist.total());
  ASSERT_EQ(hist->counts.size(), ref_hist.counts().size());
  for (std::size_t b = 0; b < hist->counts.size(); ++b) {
    EXPECT_EQ(hist->counts[b], ref_hist.counts()[b]) << "bin " << b;
  }
  EXPECT_DOUBLE_EQ(hist->p50(), ref_hist.p50());
  EXPECT_DOUBLE_EQ(hist->p99(), ref_hist.p99());
}

TEST(Registry, GaugeAggregatesMinMaxAcrossShards) {
  Registry reg(3);
  const Gauge g = reg.gauge("epoch");
  reg.recorder(0).set(g, 10);
  reg.recorder(2).set(g, 4);  // shard 1 never sets it
  const Snapshot snap = reg.snapshot();
  const GaugeAggregate* agg = snap.gauge("epoch");
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(agg->set());
  EXPECT_EQ(agg->min, 4u);
  EXPECT_EQ(agg->max, 10u);
  EXPECT_EQ(agg->sum, 14u);
  EXPECT_EQ(agg->updates, 2u);

  Registry reg2(1);
  (void)reg2.gauge("never");
  const GaugeAggregate* none = reg2.snapshot().gauge("never");
  ASSERT_NE(none, nullptr);
  EXPECT_FALSE(none->set());
}

TEST(Registry, SnapshotIsolation) {
  Registry reg(1);
  const Counter c = reg.counter("n");
  Recorder rec = reg.recorder(0);
  rec.add(c, 5);
  const Snapshot before = reg.snapshot();
  rec.add(c, 100);
  EXPECT_EQ(before.counter_or("n"), 5u);  // unchanged by later recording
  EXPECT_EQ(reg.snapshot().counter_or("n"), 105u);
}

// The TSan hammer: one writer per shard at full rate, the main thread
// snapshotting concurrently. Counter values across successive snapshots must
// be monotone, and the final merge exact.
TEST(Registry, ConcurrentRecordingHammer) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 200'000;
  Registry reg(kThreads);
  const Counter c = reg.counter("ops");
  const Histogram h = reg.histogram("vals", 2.0, 1 << 8);
  reg.seal();

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, c, h, t] {
      Recorder rec = reg.recorder(t);
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        rec.add(c);
        rec.observe(h, (i & 0xff) + 1);
      }
    });
  }

  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t now = reg.snapshot().counter_or("ops");
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& w : writers) w.join();

  const Snapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counter_or("ops"), kThreads * kOpsPerThread);
  EXPECT_EQ(final_snap.histogram("vals")->total, kThreads * kOpsPerThread);
}

// -- Flight recorder ----------------------------------------------------------

TEST(TraceBuffer, SamplesOneInK) {
  TraceBuffer buf(64, 4);
  std::size_t traced = 0;
  for (std::uint64_t q = 0; q < 32; ++q) {
    const std::uint32_t t = buf.begin(q, 0);
    if (t != TraceBuffer::kNone) {
      ++traced;
      buf.end(t, 0);
    }
  }
  EXPECT_EQ(traced, 8u);  // 1 in 4
  EXPECT_EQ(buf.sampled(), 8u);

  TraceBuffer off(64, 0);
  EXPECT_EQ(off.begin(0, 0), TraceBuffer::kNone);
  EXPECT_EQ(off.sampled(), 0u);
}

TEST(TraceBuffer, RingRecyclesClosedSlotsAndTruncates) {
  TraceBuffer buf(2, 1, /*max_hops=*/3);
  for (std::uint64_t q = 0; q < 5; ++q) {
    const std::uint32_t t = buf.begin(q, 7);
    ASSERT_NE(t, TraceBuffer::kNone);
    for (std::uint32_t hop = 0; hop < 5; ++hop) buf.hop(t, hop, 0, 0);
    buf.end(t, 1);
  }
  std::size_t closed = 0;
  for (const Trail& trail : buf.slots()) {
    if (!trail.closed) continue;
    ++closed;
    EXPECT_TRUE(trail.truncated);
    EXPECT_EQ(trail.hops.size(), 3u);  // capped
    EXPECT_EQ(trail.src, 7u);
    EXPECT_EQ(trail.outcome, 1u);
  }
  EXPECT_EQ(closed, 2u);  // ring capacity
}

// The flight-recorder acceptance check: a sampled trail must reproduce the
// session's RouteResult::path hop-for-hop (path[0] is the source; every
// subsequent entry is one recorded hop), with the matching outcome.
TEST(FlightRecorder, TrailsMatchRecordedPaths) {
  const auto g = make_graph(512, 6, 3);
  util::Rng fail_rng(9);
  const auto view = FailureView::with_node_failures(g, 0.2, fail_rng);
  core::RouterConfig rcfg;
  rcfg.record_path = true;
  const core::Router router(g, view, rcfg);

  const auto queries = make_queries(g, 64, 17);
  std::vector<RouteResult> results(queries.size());

  TraceBuffer trace(/*capacity=*/queries.size(), /*sample_every=*/1,
                    /*max_hops=*/100'000);
  core::BatchConfig batch;
  batch.trace = &trace;
  core::BatchPipeline pipeline(router, queries, results, 123, batch);
  pipeline.run();

  EXPECT_EQ(trace.sampled(), queries.size());
  std::size_t checked = 0;
  for (const Trail& trail : trace.slots()) {
    if (!trail.closed) continue;
    const RouteResult& res = results[trail.query];
    ASSERT_FALSE(trail.truncated);
    EXPECT_EQ(trail.src, queries[trail.query].src);
    EXPECT_EQ(trail.outcome, static_cast<std::uint8_t>(res.status));
    ASSERT_EQ(trail.hops.size() + 1, res.path.size()) << "query " << trail.query;
    for (std::size_t i = 0; i < trail.hops.size(); ++i) {
      EXPECT_EQ(trail.hops[i].node, res.path[i + 1])
          << "query " << trail.query << " hop " << i;
    }
    ++checked;
  }
  EXPECT_EQ(checked, queries.size());
}

// -- Route/secure metric bundles ---------------------------------------------

TEST(RouteTelemetry, CountersMatchResultAggregates) {
  const auto g = make_graph(512, 6, 5);
  util::Rng fail_rng(2);
  const auto view = FailureView::with_node_failures(g, 0.3, fail_rng);
  const core::Router router(g, view, {});

  Registry reg(1);
  core::RouteMetrics metrics = core::RouteMetrics::create(reg);
  core::RouteTelemetry sink{reg.recorder(0), metrics};

  const auto queries = make_queries(g, 256, 23);
  std::vector<RouteResult> results(queries.size());
  core::BatchConfig batch;
  batch.telemetry = &sink;
  core::BatchPipeline pipeline(router, queries, results, 55, batch);
  pipeline.run();

  std::uint64_t delivered = 0, hops = 0, backtracks = 0;
  for (const RouteResult& r : results) {
    if (r.delivered()) ++delivered;
    hops += r.hops;
    backtracks += r.backtracks;
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("route.queries"), queries.size());
  EXPECT_EQ(snap.counter_or("route.delivered"), delivered);
  EXPECT_EQ(snap.counter_or("route.hops"), hops);
  EXPECT_EQ(snap.counter_or("route.backtracks"), backtracks);
  EXPECT_EQ(snap.histogram("route.hop_hist")->total, queries.size());
}

TEST(SecureTelemetry, CountersMatchResultAggregates) {
  const auto g = make_graph(512, 6, 7);
  util::Rng fail_rng(4);
  auto view = FailureView::with_node_failures(g, 0.1, fail_rng);
  auto byz = failure::ByzantineSet::random(g, 0.1, fail_rng);
  failure::ReputationTable table(g);

  Registry reg(1);
  core::SecureRouteMetrics metrics = core::SecureRouteMetrics::create(reg);
  core::SecureTelemetry sink{reg.recorder(0), metrics};

  core::SecureRouterConfig cfg;
  cfg.paths = 2;
  cfg.max_paths = 4;
  cfg.reputation = &table;
  cfg.telemetry = &sink;
  const core::SecureRouter router(g, view, byz, cfg);

  const auto queries = make_queries(g, 64, 31);
  std::uint64_t delivered = 0, messages = 0, launched = 0, escalations = 0;
  util::Rng rng(77);
  for (const Query& q : queries) {
    const auto r = router.route(q.src, q.target, rng);
    if (r.delivered) ++delivered;
    messages += r.total_messages;
    launched += r.walks_launched;
    escalations += r.escalations;
  }

  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("secure.queries"), queries.size());
  EXPECT_EQ(snap.counter_or("secure.delivered"), delivered);
  EXPECT_EQ(snap.counter_or("secure.messages"), messages);
  EXPECT_EQ(snap.counter_or("secure.walks_launched"), launched);
  EXPECT_EQ(snap.counter_or("secure.escalations"), escalations);
  // Reputation attribution fires when walks die/deliver against the table.
  EXPECT_EQ(snap.histogram("secure.messages_hist")->total, queries.size());
}

// -- Service integration ------------------------------------------------------

TEST(ServiceTelemetry, ServiceCountersMatchStats) {
  const auto g = make_graph(1024, 8, 13);
  service::ViewPublisher pub(FailureView::all_alive(g));

  constexpr std::size_t kWorkers = 4;
  Registry reg(kWorkers + 1);  // workers + the publisher's own shard
  service::ServiceTelemetry telem = service::ServiceTelemetry::create(reg);
  service::PublisherMetrics pub_metrics = service::PublisherMetrics::create(reg);
  FlightRecorder flight(kWorkers, 32, /*sample_every=*/8);
  telem.flight = &flight;
  pub.attach_telemetry(reg.recorder(kWorkers), pub_metrics);

  service::ServiceConfig cfg;
  cfg.workers = kWorkers;
  cfg.stripe = 64;
  cfg.telemetry = &telem;
  service::RoutingService svc(pub, cfg);

  const auto queries = make_queries(g, 1024, 41);
  std::vector<RouteResult> results(queries.size());
  const auto stats = svc.route_all(queries, results);

  const Snapshot snap = reg.snapshot(stats.min_epoch, stats.max_epoch);
  EXPECT_EQ(snap.counter_or("service.route.queries"), stats.routed);
  EXPECT_EQ(snap.counter_or("service.route.delivered"), stats.delivered);
  EXPECT_EQ(snap.counter_or("service.stripes"), stats.stripes);

  const GaugeAggregate* lo = snap.gauge("service.stripe_epoch_min");
  const GaugeAggregate* hi = snap.gauge("service.stripe_epoch_max");
  ASSERT_NE(lo, nullptr);
  ASSERT_NE(hi, nullptr);
  EXPECT_EQ(lo->min, stats.min_epoch);
  EXPECT_EQ(hi->max, stats.max_epoch);

  const HistogramAggregate* staleness = snap.histogram("service.staleness_hist");
  ASSERT_NE(staleness, nullptr);
  EXPECT_EQ(staleness->total, stats.stripes);

  // Publisher side: a couple of publishes through the attached recorder.
  pub.writer_view().kill_node(0);
  (void)pub.publish();
  (void)pub.publish();
  const Snapshot after = reg.snapshot();
  EXPECT_EQ(after.counter_or("publisher.publications"), 2u);
  EXPECT_EQ(after.gauge("publisher.latest_epoch")->max, pub.latest_epoch());

  // Sampled trails landed in the per-worker buffers.
  EXPECT_GT(flight.trail_count(), 0u);
  EXPECT_NE(flight.dump_json().find("\"trails\""), std::string::npos);
}

// Telemetry must never perturb results: the same workload with and without a
// wired registry routes bit-identically.
TEST(ServiceTelemetry, RecordingDoesNotPerturbResults) {
  const auto g = make_graph(512, 6, 19);
  const auto queries = make_queries(g, 512, 43);

  const auto run = [&](bool wire) {
    service::ViewPublisher pub(FailureView::all_alive(g));
    Registry reg(5);
    service::ServiceTelemetry telem = service::ServiceTelemetry::create(reg);
    service::ServiceConfig cfg;
    cfg.workers = 4;
    cfg.stripe = 64;
    cfg.seed = 99;
    if (wire) cfg.telemetry = &telem;
    service::RoutingService svc(pub, cfg);
    std::vector<RouteResult> results(queries.size());
    (void)svc.route_all(queries, results);
    return results;
  };

  const auto with = run(true);
  const auto without = run(false);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].status, without[i].status) << i;
    EXPECT_EQ(with[i].hops, without[i].hops) << i;
  }
}

// -- Exporters ----------------------------------------------------------------

TEST(Exporters, PrometheusTextExposition) {
  Registry reg(1);
  const Counter c = reg.counter("route.queries");
  const Gauge g = reg.gauge("publisher.latest_epoch");
  const Histogram h = reg.histogram("route.hop_hist", 2.0, 16);
  Recorder rec = reg.recorder(0);
  rec.add(c, 12);
  rec.set(g, 7);
  rec.observe(h, 3);
  rec.observe(h, 9);

  const std::string text = prometheus_text(reg.snapshot(2, 5));
  EXPECT_NE(text.find("p2p_snapshot_epoch_lo 2"), std::string::npos);
  EXPECT_NE(text.find("p2p_snapshot_epoch_hi 5"), std::string::npos);
  EXPECT_NE(text.find("p2p_route_queries 12"), std::string::npos);
  EXPECT_NE(text.find("p2p_publisher_latest_epoch"), std::string::npos);
  EXPECT_NE(text.find("p2p_route_hop_hist_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("p2p_route_hop_hist_count 2"), std::string::npos);
}

TEST(Exporters, JsonShape) {
  Registry reg(1);
  const Counter c = reg.counter("route.queries");
  const Histogram h = reg.histogram("route.hop_hist", 2.0, 16);
  Recorder rec = reg.recorder(0);
  rec.add(c, 3);
  rec.observe(h, 4);

  const std::string text = json_text(reg.snapshot(1, 4));
  EXPECT_NE(text.find("\"epoch_range\": [1, 4]"), std::string::npos);
  EXPECT_NE(text.find("\"route.queries\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"route.hop_hist\""), std::string::npos);
  EXPECT_NE(text.find("\"p50\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\""), std::string::npos);
}

}  // namespace
}  // namespace p2p::telemetry
