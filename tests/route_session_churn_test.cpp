// Regression tests for the allocation-free RouteSession::step path
// (satellite of the CSR refactor): step-by-step sessions must agree
// hop-for-hop with route() and with the reference candidates() semantics,
// including when the failure view churns mid-search.
#include <gtest/gtest.h>

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::core {
namespace {

using failure::FailureView;
using graph::BuildSpec;
using graph::NodeId;
using graph::OverlayGraph;
using metric::Space1D;

/// Reference re-implementation of the pre-refactor step loop: cursor into a
/// freshly materialized candidates() vector per hop (backtrack policy,
/// liveness knowledge, no reroutes). Used to pin the streaming session to
/// the old semantics under churn.
class ReferenceSession {
 public:
  ReferenceSession(const Router& router, NodeId src, metric::Point target)
      : router_(&router), current_(src) {
    target_node_ = router.graph().node_nearest(target);
    budget_ = router.effective_ttl();
  }

  /// One message transmission; nullopt when terminal.
  std::optional<NodeId> step() {
    const RouterConfig& cfg = router_->config();
    while (budget_ > 0) {
      --budget_;
      if (current_ == target_node_) {
        done_ = true;
        delivered_ = true;
        return std::nullopt;
      }
      const auto cands =
          router_->candidates(current_, router_->graph().position(target_node_));
      if (cursor_ < cands.size()) {
        if (cfg.stuck_policy == StuckPolicy::kBacktrack) {
          trail_.emplace_back(current_, cursor_ + 1);
          if (trail_.size() > cfg.backtrack_window) trail_.pop_front();
        }
        current_ = cands[cursor_];
        cursor_ = 0;
        ++hops_;
        return current_;
      }
      if (cfg.stuck_policy == StuckPolicy::kBacktrack && !trail_.empty()) {
        const auto [prev, rank] = trail_.back();
        trail_.pop_back();
        current_ = prev;
        cursor_ = rank;
        ++hops_;
        ++backtracks_;
        return current_;
      }
      done_ = true;
      return std::nullopt;
    }
    done_ = true;
    return std::nullopt;
  }

  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] bool delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::size_t hops() const noexcept { return hops_; }
  [[nodiscard]] std::size_t backtracks() const noexcept { return backtracks_; }

 private:
  const Router* router_;
  NodeId current_;
  NodeId target_node_;
  std::deque<std::pair<NodeId, std::size_t>> trail_;
  std::size_t cursor_ = 0;
  std::size_t budget_;
  std::size_t hops_ = 0;
  std::size_t backtracks_ = 0;
  bool done_ = false;
  bool delivered_ = false;
};

OverlayGraph test_overlay(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return build_overlay(spec, rng);
}

/// Kill schedule: after the k-th message transmission, kill node[k % alive].
struct ChurnSchedule {
  std::vector<NodeId> victims;
  std::size_t period = 2;  ///< kill one victim every `period` hops
};

TEST(RouteSessionChurn, SessionMatchesReferenceUnderChurn) {
  const OverlayGraph g = test_overlay(512, 4, 11);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;

  util::Rng pick(23);
  for (int trial = 0; trial < 40; ++trial) {
    // Two identical views over the same graph, churned in lockstep.
    auto view_a = FailureView::all_alive(g);
    auto view_b = FailureView::all_alive(g);
    const Router router_a(g, view_a, cfg);
    const Router router_b(g, view_b, cfg);

    const auto src = static_cast<NodeId>(pick.next_below(g.size()));
    const auto dst = static_cast<NodeId>(pick.next_below(g.size()));
    ChurnSchedule churn;
    for (int k = 0; k < 12; ++k) {
      churn.victims.push_back(static_cast<NodeId>(pick.next_below(g.size())));
    }

    RouteSession session(router_a, src, g.position(dst));
    ReferenceSession reference(router_b, src, g.position(dst));
    util::Rng step_rng(7);  // unused by backtracking, required by step()

    std::size_t transmissions = 0;
    std::size_t next_victim = 0;
    for (;;) {
      const auto hop_a = session.step(step_rng);
      const auto hop_b = reference.step();
      ASSERT_EQ(hop_a.has_value(), hop_b.has_value())
          << "trial " << trial << " transmission " << transmissions;
      if (!hop_a) break;
      ASSERT_EQ(*hop_a, *hop_b) << "trial " << trial << " transmission "
                                << transmissions;
      ++transmissions;
      // Mid-search churn, applied identically to both views.
      if (transmissions % churn.period == 0 && next_victim < churn.victims.size()) {
        NodeId victim = churn.victims[next_victim++];
        if (victim != dst && victim != *hop_a) {
          view_a.kill_node(victim);
          view_b.kill_node(victim);
        }
      }
    }
    EXPECT_EQ(session.progress().hops, reference.hops());
    EXPECT_EQ(session.progress().backtracks, reference.backtracks());
    EXPECT_EQ(session.state() == RouteSession::State::kDelivered,
              reference.delivered());
  }
}

TEST(RouteSessionChurn, RouteAgreesWithSessionOnChurnedView) {
  // After churn settles, a fresh route() and a fresh stepped session over
  // the same mutated view must agree hop-for-hop.
  const OverlayGraph g = test_overlay(512, 4, 19);
  auto view = FailureView::all_alive(g);
  util::Rng churn_rng(3);
  for (int k = 0; k < 150; ++k) {
    view.kill_node(static_cast<NodeId>(churn_rng.next_below(g.size())));
  }

  for (const StuckPolicy policy :
       {StuckPolicy::kTerminate, StuckPolicy::kRandomReroute, StuckPolicy::kBacktrack}) {
    RouterConfig cfg;
    cfg.stuck_policy = policy;
    cfg.record_path = true;
    const Router router(g, view, cfg);
    util::Rng pick(41);
    for (int trial = 0; trial < 30; ++trial) {
      const NodeId src = view.random_alive(pick);
      const NodeId dst = view.random_alive(pick);
      util::Rng rng_a(1000 + trial), rng_b(1000 + trial);
      const RouteResult direct = router.route(src, g.position(dst), rng_a);

      RouteSession session(router, src, g.position(dst));
      std::vector<NodeId> stepped{src};
      while (const auto hop = session.step(rng_b)) stepped.push_back(*hop);

      EXPECT_EQ(session.progress().status, direct.status);
      EXPECT_EQ(session.progress().hops, direct.hops);
      EXPECT_EQ(session.progress().backtracks, direct.backtracks);
      EXPECT_EQ(session.progress().reroutes, direct.reroutes);
      EXPECT_EQ(stepped, direct.path);
    }
  }
}

TEST(RouteSessionChurn, SessionStopsWhenPathDiesMidFlight) {
  // The classic mid-flight adaptation case, now against the CSR fast path:
  // a node dying between steps must be honoured by the next step.
  graph::GraphBuilder builder(Space1D::ring(10));
  builder.wire_short_links();
  OverlayGraph g = builder.freeze();
  auto view = FailureView::all_alive(g);
  const Router router(g, view);
  RouteSession session(router, 0, 5);
  util::Rng rng(1);
  ASSERT_EQ(session.step(rng), std::optional<NodeId>(1));
  view.kill_node(2);
  EXPECT_EQ(session.step(rng), std::nullopt);
  EXPECT_EQ(session.state(), RouteSession::State::kStuck);
}

}  // namespace
}  // namespace p2p::core
