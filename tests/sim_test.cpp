// Unit tests for the simulator substrate: event queue, message-level
// simulation, workloads, and the multi-trial driver.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "sim/hop_simulator.h"
#include "sim/network_sim.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::sim {
namespace {

using failure::FailureView;
using graph::BuildSpec;
using graph::NodeId;
using graph::OverlayGraph;

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakInSubmissionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RejectsSchedulingIntoThePast) {
  EventQueue q;
  q.schedule(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, ResetDiscardsPendingAndRewindsClock) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(9.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0.0);
  // Scheduling "into the past" of the old clock is legal again.
  q.schedule(0.5, [&] { ++fired; });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 0.5);
}

OverlayGraph test_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

TEST(NetworkSimulator, DeliversWithHopTimesLatency) {
  const auto g = test_graph(64, 3, 1);
  NetworkSimulator sim(g, FailureView::all_alive(g), core::RouterConfig{},
                       LatencyModel{2.0, 2.0}, /*seed=*/7);
  sim.submit_search(0.0, 5, 40);
  sim.run();
  ASSERT_EQ(sim.records().size(), 1u);
  const SearchRecord& rec = sim.records()[0];
  EXPECT_TRUE(rec.result.delivered());
  EXPECT_DOUBLE_EQ(rec.latency(), 2.0 * static_cast<double>(rec.result.hops));
}

TEST(NetworkSimulator, HopCountsMatchSynchronousRouter) {
  const auto g = test_graph(256, 4, 2);
  const auto view = FailureView::all_alive(g);
  const core::Router router(g, view);

  NetworkSimulator sim(g, FailureView::all_alive(g), core::RouterConfig{},
                       LatencyModel{1.0, 1.0}, /*seed=*/3);
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(g.size()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.size()));
    sim.submit_search(static_cast<SimTime>(i) * 100.0, src, g.position(dst));
  }
  sim.run();
  util::Rng verify_rng(99);
  for (const SearchRecord& rec : sim.records()) {
    const auto direct = router.route(rec.src, rec.target, verify_rng);
    EXPECT_EQ(rec.result.hops, direct.hops);
    EXPECT_EQ(rec.result.status, direct.status);
  }
}

TEST(NetworkSimulator, MidFlightFailureChangesTheOutcome) {
  // Bare ring: the only path 0 -> 5 is through nodes 1..4 or 9..6.
  OverlayGraph g(metric::Space1D::ring(10));
  graph::wire_short_links(g);
  NetworkSimulator sim(g, FailureView::all_alive(g), core::RouterConfig{},
                       LatencyModel{1.0, 1.0}, /*seed=*/5);
  sim.submit_search(0.0, 0, 5);
  // Hop decisions fire at t = 0, 1, 2, ...: the message reaches node 2 at
  // t=1 (decision) and decides its next hop at t=2. Killing 3 and 9 at t=1.5
  // closes both arcs before that decision.
  sim.schedule_failure(1.5, 3);
  sim.schedule_failure(1.5, 9);
  sim.run();
  ASSERT_EQ(sim.records().size(), 1u);
  EXPECT_EQ(sim.records()[0].result.status, core::RouteResult::Status::kStuck);
}

TEST(NetworkSimulator, RecoveryRestoresDelivery) {
  OverlayGraph g(metric::Space1D::ring(10));
  graph::wire_short_links(g);
  auto view = FailureView::all_alive(g);
  view.kill_node(2);
  view.kill_node(9);
  NetworkSimulator sim(g, std::move(view), core::RouterConfig{},
                       LatencyModel{1.0, 1.0}, /*seed=*/6);
  // Node 2 recovers before the message (submitted late) starts.
  sim.schedule_recovery(5.0, 2);
  sim.submit_search(10.0, 0, 5);
  sim.run();
  ASSERT_EQ(sim.records().size(), 1u);
  EXPECT_TRUE(sim.records()[0].result.delivered());
}

TEST(HopSimulator, BatchAggregatesAreConsistent) {
  const auto g = test_graph(512, 5, 8);
  const auto view = FailureView::all_alive(g);
  const core::Router router(g, view);
  util::Rng rng(9);
  const BatchResult batch = run_batch(router, 500, rng);
  EXPECT_EQ(batch.messages, 500u);
  EXPECT_EQ(batch.delivered, 500u);  // no failures: greedy always delivers
  EXPECT_EQ(batch.failed(), 0u);
  EXPECT_DOUBLE_EQ(batch.failure_fraction(), 0.0);
  EXPECT_GT(batch.hops_success.mean(), 1.0);
  EXPECT_LT(batch.hops_success.mean(), 64.0);
}

TEST(HopSimulator, FailuresShowUpInTheBatch) {
  const auto g = test_graph(512, 5, 10);
  util::Rng fail_rng(11);
  const auto view = FailureView::with_node_failures(g, 0.5, fail_rng);
  const core::Router router(g, view);
  util::Rng rng(12);
  const BatchResult batch = run_batch(router, 500, rng);
  EXPECT_GT(batch.failed(), 0u);
  EXPECT_EQ(batch.delivered + batch.failed(), 500u);
}

TEST(HopSimulator, MergeCombinesCounts) {
  BatchResult a, b;
  a.messages = 10;
  a.delivered = 9;
  a.stuck = 1;
  a.hops_success.add(5.0);
  b.messages = 5;
  b.delivered = 5;
  b.hops_success.add(7.0);
  a.merge(b);
  EXPECT_EQ(a.messages, 15u);
  EXPECT_EQ(a.delivered, 14u);
  EXPECT_EQ(a.hops_success.count(), 2u);
}

TEST(Workload, RandomLivePairAvoidsDeadAndEqualNodes) {
  const auto g = test_graph(64, 2, 13);
  util::Rng rng(14);
  auto view = FailureView::with_node_failures(g, 0.5, rng);
  for (int i = 0; i < 500; ++i) {
    const auto [src, dst] = random_live_pair(view, rng);
    EXPECT_NE(src, dst);
    EXPECT_TRUE(view.node_alive(src));
    EXPECT_TRUE(view.node_alive(dst));
  }
}

TEST(Workload, PoissonGapsHaveTheRightMean) {
  PoissonProcess proc{0.5};
  util::Rng rng(15);
  double sum = 0.0;
  constexpr int kDraws = 50'000;
  for (int i = 0; i < kDraws; ++i) sum += proc.next_gap(rng);
  EXPECT_NEAR(sum / kDraws, 2.0, 0.05);  // mean gap = 1/rate
}

TEST(Workload, ChurnTraceIsConsistent) {
  util::Rng rng(16);
  const auto space = metric::Space1D::ring(256);
  std::vector<metric::Point> initial{10, 20, 30, 40, 50};
  const auto trace = make_churn_trace(space, initial, 0.5, 0.2, 0.2, 200.0, rng);
  ASSERT_FALSE(trace.empty());
  std::set<metric::Point> occupied(initial.begin(), initial.end());
  double prev = 0.0;
  for (const ChurnEvent& ev : trace) {
    EXPECT_GE(ev.when, prev);
    prev = ev.when;
    if (ev.kind == ChurnEvent::Kind::kJoin) {
      EXPECT_FALSE(occupied.contains(ev.position));
      occupied.insert(ev.position);
    } else {
      EXPECT_TRUE(occupied.contains(ev.position));
      occupied.erase(ev.position);
    }
  }
}

TEST(Experiment, TrialsAreDeterministicAndOrdered) {
  util::ThreadPool pool(4);
  const auto fn = [](std::size_t trial, util::Rng& rng) {
    return static_cast<double>(trial) + rng.next_double();
  };
  const auto a = run_trials(pool, 16, 42, fn);
  const auto b = run_trials(pool, 16, 42, fn);
  EXPECT_EQ(a, b);  // bit-identical across runs despite threading
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i], static_cast<double>(i));
    EXPECT_LT(a[i], static_cast<double>(i) + 1.0);
  }
}

TEST(Experiment, DifferentSeedsDiffer) {
  util::ThreadPool pool(2);
  const auto fn = [](std::size_t, util::Rng& rng) { return rng.next_double(); };
  EXPECT_NE(run_trials(pool, 4, 1, fn), run_trials(pool, 4, 2, fn));
}

TEST(Experiment, MultiMetricsAccumulate) {
  util::ThreadPool pool(2);
  const auto rows = run_trials_multi(pool, 8, 7, [](std::size_t t, util::Rng&) {
    return std::vector<double>{static_cast<double>(t), 2.0};
  });
  const auto cols = accumulate_columns(rows);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_DOUBLE_EQ(cols[0].mean(), 3.5);  // mean of 0..7
  EXPECT_DOUBLE_EQ(cols[1].mean(), 2.0);
  EXPECT_EQ(cols[0].count(), 8u);
}

}  // namespace
}  // namespace p2p::sim
