// Unit tests for util/stats.h: Welford accumulator, merging, quantiles.
#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace p2p::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stderror(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Rng rng(1);
  Accumulator whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // empty lhs: adopt rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  Rng rng(2);
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10'000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(QuantileSorted, Interpolation) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.375), 2.5);  // between 2 and 3
}

TEST(QuantileSorted, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.99), 7.0);
}

TEST(Summarize, MatchesHandComputation) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace p2p::util
