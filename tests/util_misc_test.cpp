// Unit tests for util/table.h, util/thread_pool.h, util/options.h and
// util/harmonic.h.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>

#include "util/harmonic.h"
#include "util/options.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace p2p::util {
namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"n", "hops"});
  t.add_row({"1024", "12.5"});
  t.add_row({"2048", "14.1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1024"), std::string::npos);
  EXPECT_NE(out.find("14.1"), std::string::npos);
  EXPECT_NE(out.find("hops"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, DoubleRowsUsePrecision) {
  Table t({"v"});
  t.add_numeric_row(std::vector<double>{3.14159}, 2);
  EXPECT_EQ(t.cell(0, 0), "3.14");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.cell(0, 1), "");
  EXPECT_EQ(t.cell(0, 2), "");
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.0, 2), "1.00");
  EXPECT_EQ(format_double(0.12345, 3), "0.123");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelReduceSumsEveryIndex) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  const auto sum = pool.parallel_reduce(
      n, 16, std::uint64_t{0},
      [](std::size_t lo, std::size_t hi) {
        std::uint64_t s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += i;
        return s;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ThreadPool, ParallelReduceFoldOrderIsFixed) {
  // The chunk decomposition and fold order depend only on (jobs, max_chunks),
  // so a floating-point reduction is bit-identical across runs and pools.
  const auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce(
        777, 13, 0.0,
        [](std::size_t lo, std::size_t hi) {
          double s = 0.0;
          for (std::size_t i = lo; i < hi; ++i) {
            s += 1.0 / static_cast<double>(i + 1);
          }
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double once = run(1);
  EXPECT_EQ(once, run(3));
  EXPECT_EQ(once, run(8));
}

TEST(ThreadPool, ParallelReduceEmptyReturnsInit) {
  ThreadPool pool(2);
  const int got = pool.parallel_reduce(
      0, 4, 42, [](std::size_t, std::size_t) { return 0; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 42);
}

TEST(ThreadPool, SubmitBoundedRunsEverythingUnderBackpressure) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit_bounded([&counter] { counter.fetch_add(1); }, 4);
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, SubmitBoundedRejectsZeroBound) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit_bounded([] {}, 0), std::invalid_argument);
}

TEST(Options, EnvU64ParsesAndFallsBack) {
  ::setenv("P2P_TEST_OPT", "123", 1);
  EXPECT_EQ(env_u64("P2P_TEST_OPT", 7), 123u);
  ::setenv("P2P_TEST_OPT", "not_a_number", 1);
  EXPECT_EQ(env_u64("P2P_TEST_OPT", 7), 7u);
  ::unsetenv("P2P_TEST_OPT");
  EXPECT_EQ(env_u64("P2P_TEST_OPT", 7), 7u);
}

TEST(Options, PresetScaling) {
  ::unsetenv("P2P_NODES");
  ::setenv("P2P_SCALE", "smoke", 1);
  auto opts = scale_options_from_env();
  EXPECT_EQ(opts.resolve_nodes(1024, 131072), 128u);
  ::setenv("P2P_SCALE", "paper", 1);
  opts = scale_options_from_env();
  EXPECT_EQ(opts.resolve_nodes(1024, 131072), 131072u);
  ::unsetenv("P2P_SCALE");
  opts = scale_options_from_env();
  EXPECT_EQ(opts.resolve_nodes(1024, 131072), 1024u);
}

TEST(Options, BatchShapeFromEnv) {
  ::unsetenv("P2P_WIDTH");
  ::unsetenv("P2P_PREFETCH");
  auto opts = scale_options_from_env();
  EXPECT_EQ(opts.batch_width, 0u);  // 0 = keep the caller's default
  EXPECT_EQ(opts.prefetch_distance, ScaleOptions::kUnsetPrefetch);
  ::setenv("P2P_WIDTH", "64", 1);
  ::setenv("P2P_PREFETCH", "0", 1);  // 0 is meaningful: prefetch disabled
  opts = scale_options_from_env();
  EXPECT_EQ(opts.batch_width, 64u);
  EXPECT_EQ(opts.prefetch_distance, 0u);
  ::unsetenv("P2P_WIDTH");
  ::unsetenv("P2P_PREFETCH");
}

TEST(Options, ExplicitOverrideBeatsPreset) {
  ::setenv("P2P_SCALE", "paper", 1);
  ::setenv("P2P_NODES", "4096", 1);
  const auto opts = scale_options_from_env();
  EXPECT_EQ(opts.resolve_nodes(1024, 131072), 4096u);
  ::unsetenv("P2P_SCALE");
  ::unsetenv("P2P_NODES");
}

TEST(Options, ThreadsFromEnv) {
  ::unsetenv("P2P_THREADS");
  EXPECT_EQ(scale_options_from_env().threads, 0u);  // 0 = hardware concurrency
  ::setenv("P2P_THREADS", "6", 1);
  EXPECT_EQ(scale_options_from_env().threads, 6u);
  ::setenv("P2P_THREADS", "garbage", 1);
  EXPECT_EQ(scale_options_from_env().threads, 0u);
  ::unsetenv("P2P_THREADS");
}

TEST(Harmonic, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3.0 + 0.25, 1e-15);
}

TEST(Harmonic, AsymptoticMatchesSummation) {
  // Cross-check the asymptotic branch against direct summation.
  for (const std::uint64_t n : {129ULL, 1000ULL, 65536ULL}) {
    double direct = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) direct += 1.0 / static_cast<double>(i);
    EXPECT_NEAR(harmonic(n), direct, 1e-10) << "n=" << n;
  }
}

TEST(Harmonic, GeneralizedReducesToHarmonic) {
  EXPECT_NEAR(harmonic_general(100, 1.0), harmonic(100), 1e-12);
  EXPECT_DOUBLE_EQ(harmonic_general(3, 0.0), 3.0);  // Σ i^0 = n
  EXPECT_NEAR(harmonic_general(2, 2.0), 1.25, 1e-15);
}

}  // namespace
}  // namespace p2p::util
