// Tests for the §4.2 lower-bound model: Δ-set sampling, greedy walks and the
// aggregate chain (Lemmas 4 and 6, checked empirically).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "analysis/bounds.h"
#include "analysis/delta_model.h"
#include "util/rng.h"
#include "util/stats.h"

namespace p2p::analysis {
namespace {

TEST(DeltaModel, CalibratesExpectedDegree) {
  for (const double r : {0.0, 0.5, 1.0, 1.5}) {
    const auto model = DeltaModel::power_law(1 << 14, 12.0, r);
    EXPECT_NEAR(model.expected_degree(), 12.0, 0.05) << "r=" << r;
  }
}

TEST(DeltaModel, ProbabilityShapeFollowsPowerLaw) {
  const auto model = DeltaModel::power_law(1 << 14, 8.0, 1.0);
  EXPECT_DOUBLE_EQ(model.probability(1), 1.0);
  // p_d ∝ 1/d wherever the cap does not bind.
  const double p64 = model.probability(64);
  const double p128 = model.probability(128);
  EXPECT_NEAR(p64 / p128, 2.0, 1e-9);
}

TEST(DeltaModel, SampledSetsMatchInclusionProbabilities) {
  const auto model = DeltaModel::power_law(1 << 10, 8.0, 1.0);
  util::Rng rng(1);
  constexpr int kDraws = 40'000;
  std::vector<double> hits((1 << 10) + 1, 0.0);  // offsets go up to n inclusive
  double total_size = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const auto side = model.sample_side(rng);
    total_size += static_cast<double>(side.size());
    for (const auto d : side) hits[d] += 1.0;
  }
  // Mean side size = E|Δ|/2.
  EXPECT_NEAR(total_size / kDraws, model.expected_degree() / 2.0, 0.1);
  // Per-offset inclusion frequency matches p_d at several scales.
  for (const std::uint64_t d : {1ULL, 2ULL, 5ULL, 32ULL, 200ULL}) {
    const double p = model.probability(d);
    const double sigma = std::sqrt(p * (1 - p) / kDraws);
    EXPECT_NEAR(hits[d] / kDraws, p, 6 * sigma + 1e-3) << "d=" << d;
  }
}

TEST(DeltaModel, SampleSideIsSortedUniqueAndContainsOne) {
  const auto model = DeltaModel::power_law(4096, 10.0, 1.0);
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto side = model.sample_side(rng);
    ASSERT_FALSE(side.empty());
    EXPECT_EQ(side.front(), 1u);
    EXPECT_TRUE(std::is_sorted(side.begin(), side.end()));
    EXPECT_EQ(std::adjacent_find(side.begin(), side.end()), side.end());
    EXPECT_LE(side.back(), 4096u);
  }
}

TEST(DeltaModel, BaseBIncludesExactlyThePowers) {
  const auto model = DeltaModel::base_b(100, 3);
  util::Rng rng(3);
  const auto side = model.sample_side(rng);
  EXPECT_EQ(side, (std::vector<std::uint64_t>{1, 3, 9, 27, 81}));
  // Deterministic: every draw identical.
  EXPECT_EQ(model.sample_side(rng), side);
  EXPECT_DOUBLE_EQ(model.expected_degree(), 10.0);  // ±{1,3,9,27,81}
}

TEST(DeltaModel, RejectsBadParameters) {
  EXPECT_THROW(DeltaModel::power_law(1, 8.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DeltaModel::power_law(64, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DeltaModel::power_law(64, 8.0, -1.0), std::invalid_argument);
  EXPECT_THROW(DeltaModel::base_b(64, 1), std::invalid_argument);
}

TEST(GreedyWalk, ReachesZeroAndNeverExceedsStart) {
  const auto model = DeltaModel::power_law(1 << 12, 8.0, 1.0);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const auto start = static_cast<std::int64_t>(rng.next_below(1 << 12) + 1);
    const std::size_t one = greedy_walk(model, GreedySide::kOneSided, start, rng);
    const std::size_t two = greedy_walk(model, GreedySide::kTwoSided, start, rng);
    // Every step moves at least one unit closer, so τ <= start.
    EXPECT_LE(one, static_cast<std::size_t>(start));
    EXPECT_LE(two, static_cast<std::size_t>(start));
    EXPECT_GE(one, 1u);
  }
}

TEST(GreedyWalk, ZeroStartTakesZeroSteps) {
  const auto model = DeltaModel::power_law(64, 6.0, 1.0);
  util::Rng rng(5);
  EXPECT_EQ(greedy_walk(model, GreedySide::kOneSided, 0, rng), 0u);
}

TEST(GreedyWalk, BaseBOneSidedMatchesDigitCount) {
  // With offsets {1, b, b^2, ...} one-sided greedy takes exactly the sum of
  // the base-b digits of the start.
  const auto model = DeltaModel::base_b(1 << 12, 2);
  util::Rng rng(6);
  EXPECT_EQ(greedy_walk(model, GreedySide::kOneSided, 0b1011, rng), 3u);
  EXPECT_EQ(greedy_walk(model, GreedySide::kOneSided, 1024, rng), 1u);
  EXPECT_EQ(greedy_walk(model, GreedySide::kOneSided, 1023, rng), 10u);
}

TEST(GreedyWalk, PowerLawBeatsUniformAndSteepAtScale) {
  // The headline claim at test scale: r = 1 beats r = 0 and r = 2.
  const std::uint64_t n = 1 << 14;
  util::Rng rng(7);
  const double t_uniform = simulate_greedy_time(
      DeltaModel::power_law(n, 8.0, 0.0), GreedySide::kOneSided, n, 3000, rng);
  const double t_inverse = simulate_greedy_time(
      DeltaModel::power_law(n, 8.0, 1.0), GreedySide::kOneSided, n, 3000, rng);
  const double t_steep = simulate_greedy_time(
      DeltaModel::power_law(n, 8.0, 2.0), GreedySide::kOneSided, n, 3000, rng);
  EXPECT_LT(t_inverse, t_uniform);
  EXPECT_LT(t_inverse, t_steep);
}

TEST(GreedyWalk, RespectsTheorem10LowerBound) {
  // E[τ] must sit above c * log²n/(ℓ log log n) for a small constant c —
  // no distribution can beat the bound.
  const std::uint64_t n = 1 << 14;
  util::Rng rng(8);
  const double lower = lower_one_sided(n, 8.0);
  for (const double r : {0.0, 1.0, 2.0}) {
    const double t = simulate_greedy_time(DeltaModel::power_law(n, 8.0, r),
                                          GreedySide::kOneSided, n, 2000, rng);
    EXPECT_GT(t, 0.2 * lower) << "r=" << r;
  }
}

TEST(GreedyWalk, TwoSidedNeverWorseThanOneSidedOnAverage) {
  const std::uint64_t n = 1 << 13;
  util::Rng rng(9);
  const auto model = DeltaModel::power_law(n, 8.0, 1.0);
  const double one =
      simulate_greedy_time(model, GreedySide::kOneSided, n, 4000, rng);
  const double two =
      simulate_greedy_time(model, GreedySide::kTwoSided, n, 4000, rng);
  EXPECT_LE(two, one * 1.05);  // small slack: independent randomness
}

TEST(AggregateChain, AbsorbsAndShrinksMonotonically) {
  const auto model = DeltaModel::power_law(1 << 10, 8.0, 1.0);
  util::Rng rng(10);
  AggregateChain chain(model, 1 << 10);
  std::uint64_t prev = chain.size();
  std::size_t steps = 0;
  while (!chain.absorbed() && steps < 100'000) {
    chain.step(rng);
    EXPECT_LE(chain.size(), prev);
    prev = chain.size();
    ++steps;
  }
  EXPECT_TRUE(chain.absorbed());
}

TEST(AggregateChain, Lemma6DropBoundHolds) {
  // Lemma 6: P[|S^{t+1}| <= |S^t|/a] <= 3ℓ/a. Check empirically at a = 12ℓ,
  // where the bound is 1/4.
  const double links = 8.0;
  const auto model = DeltaModel::power_law(1 << 12, links, 1.0);
  util::Rng rng(11);
  const double a = 12.0 * links;
  int big_drops = 0, observations = 0;
  for (int run = 0; run < 400; ++run) {
    AggregateChain chain(model, 1 << 12);
    while (!chain.absorbed() && chain.size() > 64) {
      const double before = static_cast<double>(chain.size());
      chain.step(rng);
      ++observations;
      if (static_cast<double>(chain.size()) <= before / a) ++big_drops;
    }
  }
  ASSERT_GT(observations, 1000);
  const double rate = static_cast<double>(big_drops) / observations;
  EXPECT_LE(rate, 3.0 * links / a * 1.3);  // 30% statistical slack
}

TEST(AggregateChain, Lemma4AbsorptionMatchesSingleChain) {
  // Lemma 4: a uniform element of S^t is distributed as X^t. In particular
  // P[absorbed by step t] must match P[X^t = 0]. Compare the two absorption-
  // time means statistically.
  const std::uint64_t n = 1 << 10;
  const auto model = DeltaModel::power_law(n, 8.0, 1.0);
  util::Rng rng(12);
  util::Accumulator chain_time, walk_time;
  for (int run = 0; run < 3000; ++run) {
    AggregateChain chain(model, n);
    std::size_t steps = 0;
    while (!chain.absorbed() && steps < 100'000) {
      chain.step(rng);
      ++steps;
    }
    chain_time.add(static_cast<double>(steps));
    const auto start = static_cast<std::int64_t>(rng.next_below(n) + 1);
    walk_time.add(
        static_cast<double>(greedy_walk(model, GreedySide::kOneSided, start, rng)));
  }
  // Means agree within joint confidence intervals (generous 5-sigma).
  const double gap = std::abs(chain_time.mean() - walk_time.mean());
  EXPECT_LT(gap, 5.0 * (chain_time.stderror() + walk_time.stderror()) + 0.5);
}

}  // namespace
}  // namespace p2p::analysis
