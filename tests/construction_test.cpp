// Unit + statistical tests for core/construction.h — the §5 heuristic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/construction.h"
#include "util/harmonic.h"
#include "util/rng.h"

namespace p2p::core {
namespace {

using metric::Point;
using metric::Space1D;

ConstructionConfig config(std::size_t links,
                          ReplacePolicy policy = ReplacePolicy::kPowerLaw) {
  ConstructionConfig cfg;
  cfg.long_links = links;
  cfg.replace_policy = policy;
  return cfg;
}

/// Joins every grid position in a random order.
DynamicOverlay build_full(std::uint64_t n, std::size_t links, std::uint64_t seed,
                          ReplacePolicy policy = ReplacePolicy::kPowerLaw) {
  DynamicOverlay overlay(Space1D::ring(n), config(links, policy));
  util::Rng rng(seed);
  std::vector<Point> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  for (const Point p : order) overlay.join(p, rng);
  return overlay;
}

TEST(DynamicOverlay, StartsEmpty) {
  DynamicOverlay overlay(Space1D::ring(16), config(2));
  EXPECT_EQ(overlay.node_count(), 0u);
  EXPECT_FALSE(overlay.occupied(3));
}

TEST(DynamicOverlay, FirstJoinHasNoLinks) {
  DynamicOverlay overlay(Space1D::ring(16), config(2));
  util::Rng rng(1);
  overlay.join(5, rng);
  EXPECT_EQ(overlay.node_count(), 1u);
  EXPECT_TRUE(overlay.occupied(5));
  EXPECT_TRUE(overlay.long_links_of(5).empty());
}

TEST(DynamicOverlay, JoinCreatesDesignOutDegree) {
  DynamicOverlay overlay(Space1D::ring(64), config(3));
  util::Rng rng(2);
  overlay.join(0, rng);
  overlay.join(32, rng);
  overlay.join(16, rng);
  // Every later joiner gets exactly ℓ outgoing long links.
  EXPECT_EQ(overlay.long_links_of(16).size(), 3u);
  // All link targets are occupied members.
  for (const Point t : overlay.long_links_of(16)) {
    EXPECT_TRUE(overlay.occupied(t));
    EXPECT_NE(t, 16);
  }
}

TEST(DynamicOverlay, JoinRejectsOccupiedOrOutside) {
  DynamicOverlay overlay(Space1D::ring(16), config(1));
  util::Rng rng(3);
  overlay.join(5, rng);
  EXPECT_THROW(overlay.join(5, rng), std::invalid_argument);
  EXPECT_THROW(overlay.join(16, rng), std::invalid_argument);
  EXPECT_THROW(overlay.join(-1, rng), std::invalid_argument);
}

TEST(DynamicOverlay, NearestMemberAndSuccessors) {
  DynamicOverlay overlay(Space1D::ring(100), config(1));
  util::Rng rng(4);
  for (const Point p : {10, 50, 90}) overlay.join(p, rng);
  EXPECT_EQ(overlay.nearest_member(12, -1), 10);
  EXPECT_EQ(overlay.nearest_member(95, -1), 90);
  EXPECT_EQ(overlay.nearest_member(99, -1), 90);  // 90 is 9 away, 10 is 11 (wrap)
  EXPECT_EQ(overlay.nearest_member(99, 90), 10);  // exclusion forces the wrap
  EXPECT_EQ(overlay.successor(10), 50);
  EXPECT_EQ(overlay.successor(90), 10);  // ring wrap
  EXPECT_EQ(overlay.predecessor(10), 90);
  EXPECT_EQ(overlay.predecessor(55), 50);
}

TEST(DynamicOverlay, SuccessorOnLineStopsAtTheEnds) {
  DynamicOverlay overlay(Space1D::line(100), config(1));
  util::Rng rng(5);
  for (const Point p : {10, 50}) overlay.join(p, rng);
  EXPECT_EQ(overlay.successor(50), -1);
  EXPECT_EQ(overlay.predecessor(10), -1);
}

/// The reverse (in-link) index must exactly mirror the forward links.
void expect_link_indexes_consistent(const DynamicOverlay& overlay) {
  std::multiset<std::pair<Point, Point>> forward;
  for (const Point p : overlay.members()) {
    for (const Point t : overlay.long_links_of(p)) {
      forward.insert({p, t});
    }
  }
  // Each forward link to a live target must appear when walking links of all
  // members; dangling targets must be flagged by dangling_count().
  std::size_t dangling = 0;
  for (const auto& [from, to] : forward) {
    if (!overlay.occupied(to)) ++dangling;
  }
  EXPECT_EQ(overlay.dangling_count(), dangling);
}

TEST(DynamicOverlay, FullBuildInvariants) {
  const auto overlay = build_full(256, 4, 6);
  EXPECT_EQ(overlay.node_count(), 256u);
  EXPECT_EQ(overlay.dangling_count(), 0u);
  expect_link_indexes_consistent(overlay);
  // Out-degree: joiners draw ℓ links; redirects keep the count at ℓ.
  for (const Point p : overlay.members()) {
    EXPECT_LE(overlay.long_links_of(p).size(), 4u);
  }
}

TEST(DynamicOverlay, LeaveRemovesAllTracesAndRedraws) {
  auto overlay = build_full(128, 3, 7);
  util::Rng rng(8);
  overlay.leave(64, rng);
  EXPECT_FALSE(overlay.occupied(64));
  EXPECT_EQ(overlay.node_count(), 127u);
  EXPECT_EQ(overlay.dangling_count(), 0u);  // graceful: links redrawn at once
  for (const Point p : overlay.members()) {
    for (const Point t : overlay.long_links_of(p)) {
      EXPECT_NE(t, 64) << "a link still points at the departed node";
    }
  }
}

TEST(DynamicOverlay, CrashLeavesDanglingLinksThatRepairFixes) {
  auto overlay = build_full(128, 3, 9);
  util::Rng rng(10);
  // Crash a handful of nodes; their in-links dangle.
  for (const Point p : {10, 40, 90}) overlay.crash(p);
  EXPECT_GT(overlay.dangling_count(), 0u);
  const std::size_t repaired = overlay.repair(rng);
  EXPECT_GT(repaired, 0u);
  EXPECT_EQ(overlay.dangling_count(), 0u);
  expect_link_indexes_consistent(overlay);
}

TEST(DynamicOverlay, LeaveAndCrashRejectVacantPositions) {
  DynamicOverlay overlay(Space1D::ring(16), config(1));
  util::Rng rng(11);
  overlay.join(3, rng);
  EXPECT_THROW(overlay.leave(4, rng), std::invalid_argument);
  EXPECT_THROW(overlay.crash(4), std::invalid_argument);
}

TEST(DynamicOverlay, SnapshotMirrorsTheOverlay) {
  const auto overlay = build_full(128, 3, 12);
  const graph::OverlayGraph g = overlay.snapshot();
  EXPECT_EQ(g.size(), 128u);
  // Short links: ring neighbours; long links: exactly the stored targets.
  for (const Point p : overlay.members()) {
    const auto id = g.node_at(p);
    ASSERT_NE(id, graph::kInvalidNode);
    const auto stored = overlay.long_links_of(p);
    const auto in_graph = g.long_neighbors(id);
    EXPECT_EQ(in_graph.size(), stored.size());
    for (const Point t : stored) {
      EXPECT_TRUE(g.has_link(id, g.node_at(t)));
    }
  }
}

TEST(DynamicOverlay, BidirectionalSnapshotHasReverseLinks) {
  const auto overlay = build_full(128, 3, 20);
  const graph::OverlayGraph g = overlay.snapshot(/*bidirectional=*/true);
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    for (const graph::NodeId v : g.long_neighbors(u)) {
      EXPECT_TRUE(g.has_link(v, u));
    }
  }
}

TEST(DynamicOverlay, PartialSnapshotUsesSparsePositions) {
  DynamicOverlay overlay(Space1D::ring(64), config(2));
  util::Rng rng(13);
  for (const Point p : {1, 17, 33, 49}) overlay.join(p, rng);
  const graph::OverlayGraph g = overlay.snapshot();
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.position(0), 1);
  EXPECT_EQ(g.position(3), 49);
  // Ring short links connect the sparse members in a cycle.
  EXPECT_TRUE(g.has_link(g.node_at(49), g.node_at(1)));
}

TEST(DynamicOverlay, OldestPolicyReplacesTheOldestLink) {
  // A node with design degree 1: its single link is the oldest by
  // definition, so any accepted redirect must replace it.
  DynamicOverlay overlay(Space1D::ring(1024), config(1, ReplacePolicy::kOldest));
  util::Rng rng(14);
  for (Point p = 0; p < 512; ++p) overlay.join(p, rng);
  expect_link_indexes_consistent(overlay);
  for (const Point p : overlay.members()) {
    EXPECT_LE(overlay.long_links_of(p).size(), 1u);
  }
}

TEST(DynamicOverlay, NeverPolicyKeepsJoinLinksOnly) {
  const auto overlay = build_full(256, 2, 15, ReplacePolicy::kNever);
  // Without redirects every node keeps exactly the links it drew at join
  // (the first joiner has none).
  std::size_t with_fewer = 0;
  for (const Point p : overlay.members()) {
    const auto links = overlay.long_links_of(p);
    EXPECT_LE(links.size(), 2u);
    if (links.size() < 2) ++with_fewer;
  }
  EXPECT_LE(with_fewer, 1u);  // only the bootstrap node
}

TEST(DynamicOverlay, LinkLengthDistributionTracksInversePowerLaw) {
  // Statistical heart of Figure 5: aggregate link lengths from the heuristic
  // must be close to P(d) ∝ 1/d. We compare the empirical mass of short vs
  // medium lengths against the ideal with generous tolerances.
  const std::uint64_t n = 2048;
  const auto overlay = build_full(n, 8, 16);
  const auto lengths = overlay.long_link_lengths();
  ASSERT_GT(lengths.size(), 10'000u);
  std::vector<double> mass(n / 2 + 1, 0.0);
  for (const auto d : lengths) mass[d] += 1.0;
  for (double& m : mass) m /= static_cast<double>(lengths.size());

  // Ideal on a ring: P(d) = 2 * (1/d) / (2 * H_{n/2} - antipode term).
  const double denom = 2.0 * util::harmonic(n / 2) - 2.0 / static_cast<double>(n);
  const auto ideal = [&](std::uint64_t d) {
    const double sides = d == n / 2 ? 1.0 : 2.0;
    return sides / (static_cast<double>(d) * denom);
  };
  // Pointwise at short lengths (where the paper reports max error ~0.022).
  EXPECT_NEAR(mass[1], ideal(1), 0.05);
  EXPECT_NEAR(mass[2], ideal(2), 0.04);
  // Aggregated tail mass: lengths in [64, 256).
  double got = 0.0, want = 0.0;
  for (std::uint64_t d = 64; d < 256; ++d) {
    got += mass[d];
    want += ideal(d);
  }
  EXPECT_NEAR(got, want, 0.05);
}

TEST(DynamicOverlay, RejectsBadConfig) {
  EXPECT_THROW(DynamicOverlay(Space1D::ring(16), config(0)), std::invalid_argument);
  ConstructionConfig bad = config(1);
  bad.exponent = -2.0;
  EXPECT_THROW(DynamicOverlay(Space1D::ring(16), bad), std::invalid_argument);
}

TEST(DynamicOverlay, RepairOnEmptyOverlayIsZero) {
  DynamicOverlay overlay(Space1D::ring(16), config(1));
  util::Rng rng(17);
  EXPECT_EQ(overlay.repair(rng), 0u);
  EXPECT_EQ(overlay.dangling_count(), 0u);
}

}  // namespace
}  // namespace p2p::core
