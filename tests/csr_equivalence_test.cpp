// CSR equivalence: the same topology assembled through the legacy
// incremental OverlayGraph mutators and through GraphBuilder::freeze must be
// structurally identical and produce byte-identical RouteResults for every
// stuck policy and sidedness, with and without failures — the guarantee that
// the builder/frozen split did not change routing semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p {
namespace {

using core::Router;
using core::RouteResult;
using core::RouterConfig;
using core::Sidedness;
using core::StuckPolicy;
using failure::FailureView;
using graph::GraphBuilder;
using graph::NodeId;
using graph::OverlayGraph;
using metric::Space1D;

/// Deterministic long-link plan: for each node, `links` targets drawn by a
/// fixed-seed Rng. Replaying the plan through both construction paths
/// guarantees identical topologies.
std::vector<std::pair<NodeId, NodeId>> long_link_plan(std::size_t n,
                                                      std::size_t links,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> plan;
  plan.reserve(n * links);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < links; ++k) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (v != u) plan.emplace_back(u, v);
    }
  }
  return plan;
}

OverlayGraph build_incremental(const Space1D& space,
                               const std::vector<std::pair<NodeId, NodeId>>& plan) {
  OverlayGraph g(space);
  graph::wire_short_links(g);
  for (const auto& [u, v] : plan) g.add_long_link(u, v);
  return g;
}

OverlayGraph build_frozen(const Space1D& space,
                          const std::vector<std::pair<NodeId, NodeId>>& plan) {
  GraphBuilder builder(space);
  builder.wire_short_links();
  for (const auto& [u, v] : plan) builder.add_long_link(u, v);
  return builder.freeze();
}

void expect_same_structure(const OverlayGraph& a, const OverlayGraph& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (NodeId u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a.position(u), b.position(u));
    ASSERT_EQ(a.short_degree(u), b.short_degree(u));
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
              std::vector<NodeId>(nb.begin(), nb.end()))
        << "node " << u;
  }
}

void expect_same_result(const RouteResult& a, const RouteResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.status, b.status) << label;
  EXPECT_EQ(a.hops, b.hops) << label;
  EXPECT_EQ(a.backtracks, b.backtracks) << label;
  EXPECT_EQ(a.reroutes, b.reroutes) << label;
  EXPECT_EQ(a.path, b.path) << label;
}

struct PolicyCase {
  const char* name;
  StuckPolicy policy;
  Sidedness sidedness;
};

const PolicyCase kPolicyCases[] = {
    {"terminate_two_sided", StuckPolicy::kTerminate, Sidedness::kTwoSided},
    {"terminate_one_sided", StuckPolicy::kTerminate, Sidedness::kOneSided},
    {"reroute_two_sided", StuckPolicy::kRandomReroute, Sidedness::kTwoSided},
    {"reroute_one_sided", StuckPolicy::kRandomReroute, Sidedness::kOneSided},
    {"backtrack_two_sided", StuckPolicy::kBacktrack, Sidedness::kTwoSided},
    {"backtrack_one_sided", StuckPolicy::kBacktrack, Sidedness::kOneSided},
};

void run_equivalence(const Space1D& space, double p_fail) {
  const std::size_t n = space.size();
  const auto plan = long_link_plan(n, 4, /*seed=*/77);
  const OverlayGraph incremental = build_incremental(space, plan);
  const OverlayGraph frozen = build_frozen(space, plan);
  expect_same_structure(incremental, frozen);

  // Same seed + identical topology => identical failure draws on both.
  util::Rng fail_a(5), fail_b(5);
  const FailureView view_a =
      p_fail > 0.0 ? FailureView::with_node_failures(incremental, p_fail, fail_a)
                   : FailureView::all_alive(incremental);
  const FailureView view_b =
      p_fail > 0.0 ? FailureView::with_node_failures(frozen, p_fail, fail_b)
                   : FailureView::all_alive(frozen);
  ASSERT_EQ(view_a.alive_count(), view_b.alive_count());
  if (view_a.alive_count() < 2) return;

  for (const PolicyCase& pc : kPolicyCases) {
    RouterConfig cfg;
    cfg.stuck_policy = pc.policy;
    cfg.sidedness = pc.sidedness;
    cfg.record_path = true;
    const Router router_a(incremental, view_a, cfg);
    const Router router_b(frozen, view_b, cfg);
    util::Rng rng_a(99), rng_b(99), pick(13);
    for (int trial = 0; trial < 50; ++trial) {
      NodeId src = view_a.random_alive(pick);
      NodeId dst = view_a.random_alive(pick);
      const RouteResult ra = router_a.route(src, incremental.position(dst), rng_a);
      const RouteResult rb = router_b.route(src, frozen.position(dst), rng_b);
      expect_same_result(ra, rb, pc.name);
    }
  }
}

TEST(CsrEquivalence, RingNoFailures) { run_equivalence(Space1D::ring(512), 0.0); }

TEST(CsrEquivalence, LineNoFailures) { run_equivalence(Space1D::line(512), 0.0); }

TEST(CsrEquivalence, RingWithNodeFailures) {
  run_equivalence(Space1D::ring(512), 0.3);
}

TEST(CsrEquivalence, LineWithNodeFailures) {
  run_equivalence(Space1D::line(512), 0.3);
}

TEST(CsrEquivalence, LinkFailuresMatch) {
  const Space1D space = Space1D::ring(256);
  const auto plan = long_link_plan(space.size(), 3, /*seed=*/21);
  const OverlayGraph incremental = build_incremental(space, plan);
  const OverlayGraph frozen = build_frozen(space, plan);

  util::Rng fail_a(9), fail_b(9);
  const auto view_a = FailureView::with_link_failures(incremental, 0.6, fail_a);
  const auto view_b = FailureView::with_link_failures(frozen, 0.6, fail_b);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.record_path = true;
  const Router router_a(incremental, view_a, cfg);
  const Router router_b(frozen, view_b, cfg);
  util::Rng rng_a(3), rng_b(3), pick(4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<NodeId>(pick.next_below(incremental.size()));
    const auto dst = static_cast<NodeId>(pick.next_below(incremental.size()));
    expect_same_result(router_a.route(src, incremental.position(dst), rng_a),
                       router_b.route(src, frozen.position(dst), rng_b),
                       "link_failures");
  }
}

TEST(CsrEquivalence, SparsePositions) {
  // Sparse (binomial presence style) node sets through both paths.
  const Space1D space = Space1D::ring(300);
  std::vector<metric::Point> positions;
  for (metric::Point p = 0; p < 300; p += 3) positions.push_back(p);
  const std::size_t n = positions.size();
  const auto plan = long_link_plan(n, 3, /*seed=*/55);

  OverlayGraph incremental(space, positions);
  graph::wire_short_links(incremental);
  for (const auto& [u, v] : plan) incremental.add_long_link(u, v);

  GraphBuilder builder(space, positions);
  builder.wire_short_links();
  for (const auto& [u, v] : plan) builder.add_long_link(u, v);
  const OverlayGraph frozen = builder.freeze();

  expect_same_structure(incremental, frozen);

  const auto view_a = FailureView::all_alive(incremental);
  const auto view_b = FailureView::all_alive(frozen);
  RouterConfig cfg;
  cfg.record_path = true;
  const Router router_a(incremental, view_a, cfg);
  const Router router_b(frozen, view_b, cfg);
  util::Rng rng_a(8), rng_b(8), pick(2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto src = static_cast<NodeId>(pick.next_below(n));
    const auto dst = static_cast<NodeId>(pick.next_below(n));
    expect_same_result(router_a.route(src, incremental.position(dst), rng_a),
                       router_b.route(src, frozen.position(dst), rng_b),
                       "sparse");
  }
}

TEST(CsrEquivalence, MutationsKeepReplicasInSync) {
  // replace_long_link / clear_links / re-add exercise every replica write
  // path (inline prefix, spill tail, reserved-slot reuse); candidates() —
  // which reads the canonical CSR slice — must keep agreeing with
  // select_candidate — which reads the header replica.
  const Space1D space = Space1D::ring(64);
  GraphBuilder builder(space);
  builder.wire_short_links();
  util::Rng rng(31);
  for (NodeId u = 0; u < 64; ++u) {
    for (int k = 0; k < 16; ++k) {  // degree 18 > inline prefix
      const auto v = static_cast<NodeId>(rng.next_below(64));
      if (v != u) builder.add_long_link(u, v);
    }
  }
  OverlayGraph g = builder.freeze();
  const auto view = FailureView::all_alive(g);
  const Router router(g, view);

  const auto check_agreement = [&](const std::string& label) {
    for (NodeId u = 0; u < g.size(); ++u) {
      for (metric::Point t = 0; t < 64; t += 7) {
        const auto cands = router.candidates(u, t);
        for (std::size_t r = 0; r < cands.size(); ++r) {
          ASSERT_EQ(router.select_candidate(u, t, r), cands[r])
              << label << " node " << u << " target " << t << " rank " << r;
        }
        ASSERT_EQ(router.select_candidate(u, t, cands.size()), graph::kInvalidNode)
            << label;
      }
    }
  };

  check_agreement("frozen");
  // In-place rewires hit both inline and spill replica slots.
  for (NodeId u = 0; u < g.size(); u += 3) {
    const std::size_t longs = g.out_degree(u) - g.short_degree(u);
    g.replace_long_link(u, 0, static_cast<NodeId>((u + 31) % 64));
    g.replace_long_link(u, longs - 1, static_cast<NodeId>((u + 17) % 64));
  }
  check_agreement("after_replace");
  // Degree truncation plus reserved-slot reuse.
  for (NodeId u = 0; u < g.size(); u += 5) {
    g.clear_links(u);
    g.add_short_link(u, (u + 1) % 64);
    g.add_short_link(u, (u + 63) % 64);
    for (int k = 0; k < 15; ++k) {
      g.add_long_link(u, static_cast<NodeId>((u + 2 + 4 * k) % 64));
    }
  }
  check_agreement("after_clear_and_readd");
}

}  // namespace
}  // namespace p2p
