// Tests for the churn trace generators (churn/trace_gen.h) and the
// discrete-event replay driver (churn/replay.h), including the PR acceptance
// equivalence: route_batch under *replayed* (delta-log) churn must agree with
// direct view mutation and with manually stepped sessions — the PR 2
// stepped-session churn test, with ChurnLog as the churn driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "churn/churn_log.h"
#include "churn/replay.h"
#include "churn/trace_gen.h"
#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "sim/event_queue.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::churn {
namespace {

using core::BatchConfig;
using core::BatchPipeline;
using core::Query;
using core::RouteResult;
using core::Router;
using core::RouterConfig;
using core::RouteSession;
using core::StuckPolicy;
using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph make_graph(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  return graph::build_overlay(spec, rng);
}

std::vector<Query> random_queries(const OverlayGraph& g, std::size_t count,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> queries(count);
  for (auto& q : queries) {
    q = {static_cast<NodeId>(rng.next_below(g.size())),
         static_cast<metric::Point>(rng.next_below(g.space().size()))};
  }
  return queries;
}

/// Routing-outcome equality. Epochs are compared only when `with_epochs`:
/// delta-log churn advances the view epoch where direct kill/revive calls do
/// not, so the cross-driver equivalence checks everything but the stamp.
void expect_same_outcome(const RouteResult& got, const RouteResult& want,
                         const std::string& label, bool with_epochs = true) {
  EXPECT_EQ(got.status, want.status) << label;
  EXPECT_EQ(got.hops, want.hops) << label;
  EXPECT_EQ(got.backtracks, want.backtracks) << label;
  EXPECT_EQ(got.reroutes, want.reroutes) << label;
  EXPECT_EQ(got.path, want.path) << label;
  if (with_epochs) EXPECT_EQ(got.completion_epoch, want.completion_epoch) << label;
}

// ---------------------------------------------------------------------------
// Trace generators

TEST(TraceGen, DeterministicPerSeed) {
  const auto g = make_graph(512, 4, 1);
  TraceSpec spec;
  spec.duration = 100.0;
  spec.kill_rate = 2.0;
  spec.revive_rate = 2.0;
  util::Rng a(5), b(5), c(6);
  const auto log_a = make_trace(g, spec, a);
  const auto log_b = make_trace(g, spec, b);
  const auto log_c = make_trace(g, spec, c);
  ASSERT_EQ(log_a.size(), log_b.size());
  EXPECT_EQ(log_a.total_changes(), log_b.total_changes());
  for (std::size_t e = 0; e < log_a.size(); ++e) {
    EXPECT_EQ(log_a.delta(e).node_kills, log_b.delta(e).node_kills) << e;
    EXPECT_EQ(log_a.delta(e).node_revives, log_b.delta(e).node_revives) << e;
    EXPECT_EQ(log_a.delta(e).when, log_b.delta(e).when) << e;
  }
  EXPECT_NE(log_a.total_changes(), log_c.total_changes());
}

TEST(TraceGen, EveryScenarioProducesAReplayableLog) {
  const auto g = make_graph(512, 5, 2);
  for (const auto scenario :
       {TraceSpec::Scenario::kPoissonChurn, TraceSpec::Scenario::kFlashCrowd,
        TraceSpec::Scenario::kRegionalOutage,
        TraceSpec::Scenario::kAdversarialWaves, TraceSpec::Scenario::kLinkFlap}) {
    TraceSpec spec;
    spec.scenario = scenario;
    spec.duration = 200.0;
    spec.kill_rate = 1.0;
    spec.revive_rate = 1.0;
    spec.wave_size = 16;
    spec.wave_period = 50.0;
    spec.outages = 3;
    util::Rng rng(3);
    const auto log = make_trace(g, spec, rng);
    ASSERT_GT(log.size(), 0u) << scenario_name(scenario);
    ASSERT_GT(log.total_changes(), 0u) << scenario_name(scenario);
    // Replayable end to end and back, bit-identical to from-scratch builds.
    FailureView view = log.baseline();
    log.seek(view, log.size());
    const auto rebuilt = log.materialize(log.size());
    EXPECT_EQ(view.epoch(), rebuilt.epoch()) << scenario_name(scenario);
    EXPECT_EQ(view.alive_count(), rebuilt.alive_count()) << scenario_name(scenario);
    for (NodeId u = 0; u < g.size(); ++u) {
      ASSERT_EQ(view.node_alive(u), rebuilt.node_alive(u))
          << scenario_name(scenario) << " node " << u;
    }
    log.seek(view, 0);
    EXPECT_EQ(view.alive_count(), g.size()) << scenario_name(scenario);
  }
}

TEST(TraceGen, FlashCrowdDepartsInOneDelta) {
  const auto g = make_graph(1024, 4, 4);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kFlashCrowd;
  spec.duration = 100.0;
  spec.crowd_fraction = 0.4;
  spec.crowd_time = 0.5;
  spec.kill_rate = 0.1;
  spec.revive_rate = 0.5;
  util::Rng rng(5);
  const auto log = make_trace(g, spec, rng);
  std::size_t biggest = 0;
  for (std::size_t e = 0; e < log.size(); ++e) {
    biggest = std::max(biggest, log.delta(e).node_kills.size());
  }
  // The crowd batch kills ~40% of the live population at once.
  EXPECT_GE(biggest, static_cast<std::size_t>(0.3 * 1024));
}

TEST(TraceGen, RegionalOutagesAreContiguousArcs) {
  const auto g = make_graph(1024, 4, 6);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kRegionalOutage;
  spec.duration = 400.0;
  spec.region_fraction = 0.1;
  spec.outages = 4;
  util::Rng rng(7);
  const auto log = make_trace(g, spec, rng);
  ASSERT_EQ(log.size(), 8u);  // kill + revive per outage
  for (std::size_t e = 0; e < log.size(); e += 2) {
    const auto& kills = log.delta(e).node_kills;
    ASSERT_FALSE(kills.empty());
    // Sorted positions must form one contiguous run modulo n.
    std::vector<NodeId> sorted = kills;
    std::sort(sorted.begin(), sorted.end());
    std::size_t gaps = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const NodeId next = sorted[(i + 1) % sorted.size()];
      const auto step = static_cast<NodeId>(
          (next + g.size() - sorted[i]) % static_cast<NodeId>(g.size()));
      if (step != 1) ++gaps;
    }
    EXPECT_LE(gaps, 1u) << "outage " << e;  // one wrap gap at most
    EXPECT_EQ(log.delta(e + 1).node_revives.size(), kills.size());
  }
}

TEST(TraceGen, AdversarialWavesHitTheTopHubs) {
  const auto g = make_graph(512, 6, 8);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kAdversarialWaves;
  spec.duration = 100.0;
  spec.wave_size = 10;
  spec.wave_period = 100.0;  // exactly one wave
  util::Rng rng(9);
  const auto log = make_trace(g, spec, rng);
  ASSERT_GE(log.size(), 1u);
  const auto hubs = high_degree_targets(g, 10);
  const auto& first = log.delta(0).node_kills;
  EXPECT_EQ(std::set<NodeId>(first.begin(), first.end()),
            std::set<NodeId>(hubs.begin(), hubs.end()));

  // The in-degree ranking really is descending.
  const auto in = g.in_degrees();
  for (std::size_t i = 1; i < hubs.size(); ++i) {
    EXPECT_GE(in[hubs[i - 1]], in[hubs[i]]);
  }
  // And the ByzantineSet bridge corrupts exactly that set.
  const auto adversary = hub_adversary(g, 10);
  EXPECT_EQ(adversary.count(), 10u);
  for (const NodeId u : hubs) EXPECT_TRUE(adversary.is_byzantine(u));
}

TEST(TraceGen, TorusRegionalOutagesAreRectangles) {
  util::Rng build_rng(12);
  const auto g = graph::build_kleinberg_overlay(32, 3, 2.0, build_rng);
  const metric::Torus2D torus = g.space().as_torus();
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kRegionalOutage;
  spec.duration = 400.0;
  spec.region_fraction = 0.05;  // ~51 nodes -> a ~7x8 block
  spec.outages = 4;
  util::Rng rng(13);
  const auto log = make_trace(g, spec, rng);  // kAuto resolves to kRect
  ASSERT_EQ(log.size(), 8u);  // kill + revive per outage
  const std::size_t target = static_cast<std::size_t>(0.05 * g.size());
  for (std::size_t e = 0; e < log.size(); e += 2) {
    const auto& kills = log.delta(e).node_kills;
    ASSERT_GE(kills.size(), target) << "outage " << e;
    // The footprint is a lattice rectangle: both axes span a contiguous
    // wrapped run whose extents multiply out to the kill count.
    std::set<std::uint32_t> rows, cols;
    for (const NodeId u : kills) {
      const auto [row, col] = torus.coords(g.position(u));
      rows.insert(row);
      cols.insert(col);
    }
    const auto wrapped_extent = [&](const std::set<std::uint32_t>& axis) {
      // The rectangle's span along one axis: side minus the biggest circular
      // gap between present coordinates, plus one.
      std::size_t best_gap = 0;
      std::uint32_t prev = *axis.rbegin();
      bool first = true;
      for (const std::uint32_t v : axis) {
        const std::uint32_t step =
            first ? static_cast<std::uint32_t>(
                        (v + torus.side() - *axis.rbegin()) % torus.side())
                  : v - prev;
        if (!first || axis.size() > 1) {
          best_gap = std::max<std::size_t>(best_gap, step);
        }
        prev = v;
        first = false;
      }
      return axis.size() == 1 ? std::size_t{1}
                              : static_cast<std::size_t>(torus.side()) -
                                    best_gap + 1;
    };
    EXPECT_EQ(wrapped_extent(rows) * wrapped_extent(cols), kills.size())
        << "outage " << e << " is not a full rectangle";
    EXPECT_EQ(log.delta(e + 1).node_revives.size(), kills.size());
  }
}

TEST(TraceGen, TorusL1BallOutagesRespectTheMetric) {
  util::Rng build_rng(14);
  const auto g = graph::build_kleinberg_overlay(32, 3, 2.0, build_rng);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kRegionalOutage;
  spec.region_shape = TraceSpec::RegionShape::kL1Ball;
  spec.duration = 100.0;
  spec.region_fraction = 0.04;  // ~41 nodes -> radius 4 ball (41 points)
  spec.outages = 2;
  util::Rng rng(15);
  const auto log = make_trace(g, spec, rng);
  ASSERT_EQ(log.size(), 4u);
  const metric::Space& space = g.space();
  for (std::size_t e = 0; e < log.size(); e += 2) {
    const auto& kills = log.delta(e).node_kills;
    ASSERT_FALSE(kills.empty());
    // An L1 ball has a center: some killed node within distance r of every
    // other, where |ball(r)| = 2r(r+1)+1 = kill count.
    std::int64_t r = 0;
    while (static_cast<std::size_t>(2 * r * (r + 1) + 1) < kills.size()) ++r;
    ASSERT_EQ(static_cast<std::size_t>(2 * r * (r + 1) + 1), kills.size())
        << "outage " << e << " kill count is not a whole lattice ball";
    bool centered = false;
    for (const NodeId c : kills) {
      bool all_within = true;
      for (const NodeId u : kills) {
        if (space.distance(g.position(c), g.position(u)) >
            static_cast<metric::Distance>(r)) {
          all_within = false;
          break;
        }
      }
      if (all_within) {
        centered = true;
        break;
      }
    }
    EXPECT_TRUE(centered) << "outage " << e << " has no L1 center";
  }
}

TEST(TraceGen, TwoDimensionalShapesRejectedOffTheTorus) {
  const auto g = make_graph(256, 4, 16);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kRegionalOutage;
  spec.region_shape = TraceSpec::RegionShape::kRect;
  util::Rng rng(17);
  EXPECT_THROW(static_cast<void>(make_trace(g, spec, rng)), std::invalid_argument);
  spec.region_shape = TraceSpec::RegionShape::kL1Ball;
  EXPECT_THROW(static_cast<void>(make_trace(g, spec, rng)), std::invalid_argument);
  // Explicit arcs remain valid on the torus (the legacy row-stripe shape).
  util::Rng build_rng(18);
  const auto tg = graph::build_kleinberg_overlay(16, 2, 2.0, build_rng);
  spec.region_shape = TraceSpec::RegionShape::kArc;
  EXPECT_NO_THROW(static_cast<void>(make_trace(tg, spec, rng)));
}

TEST(TraceGen, AdversarialWavesHitTorusInDegreeHubs) {
  util::Rng build_rng(19);
  const auto g = graph::build_kleinberg_overlay(24, 4, 2.0, build_rng);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kAdversarialWaves;
  spec.duration = 100.0;
  spec.wave_size = 12;
  spec.wave_period = 100.0;  // exactly one wave
  util::Rng rng(20);
  const auto log = make_trace(g, spec, rng);
  ASSERT_GE(log.size(), 1u);
  const auto hubs = high_degree_targets(g, 12);
  const auto& first = log.delta(0).node_kills;
  EXPECT_EQ(std::set<NodeId>(first.begin(), first.end()),
            std::set<NodeId>(hubs.begin(), hubs.end()));
  // The hub ranking is by torus in-degree (reverse long links concentrate
  // on Kleinberg's well-placed nodes), and the ByzantineSet bridge corrupts
  // exactly that set.
  const auto in = g.in_degrees();
  for (std::size_t i = 1; i < hubs.size(); ++i) {
    EXPECT_GE(in[hubs[i - 1]], in[hubs[i]]);
  }
  const auto adversary = hub_adversary(g, 12);
  EXPECT_EQ(adversary.count(), 12u);
  for (const NodeId u : hubs) EXPECT_TRUE(adversary.is_byzantine(u));
}

TEST(TraceGen, LinkFlapTouchesOnlyLongLinks) {
  const auto g = make_graph(256, 4, 10);
  TraceSpec spec;
  spec.scenario = TraceSpec::Scenario::kLinkFlap;
  spec.duration = 20.0;
  spec.flap_fraction = 0.1;
  util::Rng rng(11);
  const auto log = make_trace(g, spec, rng);
  ASSERT_GT(log.size(), 0u);
  for (std::size_t e = 0; e < log.size(); ++e) {
    EXPECT_TRUE(log.delta(e).node_kills.empty());
    EXPECT_TRUE(log.delta(e).node_revives.empty());
    for (const auto slot : log.delta(e).link_kills) {
      // Locate the owning node and check the slot is past its short prefix.
      NodeId owner = 0;
      while (owner + 1 < g.size() && g.edge_base(owner + 1) <= slot) ++owner;
      EXPECT_GE(slot, g.edge_base(owner) + g.short_degree(owner))
          << "short link flapped at slot " << slot;
    }
  }
}

// ---------------------------------------------------------------------------
// Replayed churn vs direct mutation and stepped sessions

/// Deterministic epoch schedule shared by every driver below: after global
/// tick t, the view must be at epoch min(t / kTickPeriod, log.size()).
constexpr std::size_t kTickPeriod = 3;

void seek_for_tick(const ChurnLog& log, FailureView& view, std::size_t t) {
  log.seek(view, std::min<std::uint64_t>(t / kTickPeriod, log.size()));
}

ChurnLog mixed_trace(const OverlayGraph& g, std::uint64_t seed, int epochs) {
  ChurnLog log(g);
  util::Rng rng(seed);
  for (int e = 0; e < epochs; ++e) {
    for (int k = 0; k < 3; ++k) {
      const auto u = static_cast<NodeId>(rng.next_below(g.size()));
      if (rng.next_bool(0.6)) {
        log.kill_node(u);
      } else {
        log.revive_node(u);
      }
    }
    log.commit(static_cast<double>(e));
  }
  return log;
}

TEST(ChurnReplay, ReplayedDeltasMatchDirectMutation) {
  const auto g = make_graph(512, 6, 12);
  const auto log = mixed_trace(g, 13, 60);
  const auto queries = random_queries(g, 60, 14);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.record_path = true;
  constexpr std::uint64_t kBase = 15;
  BatchConfig batch;
  batch.width = 8;

  // Driver A: churn via the delta log between ticks.
  FailureView view_a = log.baseline();
  const Router router_a(g, view_a, cfg);
  std::vector<RouteResult> got(queries.size());
  BatchPipeline pipe_a(router_a, queries, got, kBase, batch);
  std::size_t t = 0;
  while (pipe_a.tick()) {
    ++t;
    seek_for_tick(log, view_a, t);
  }

  // Driver B: the identical churn performed by direct kill/revive calls.
  FailureView view_b = log.baseline();
  const Router router_b(g, view_b, cfg);
  std::vector<RouteResult> want(queries.size());
  BatchPipeline pipe_b(router_b, queries, want, kBase, batch);
  std::size_t epoch_b = 0;
  std::size_t tb = 0;
  while (pipe_b.tick()) {
    ++tb;
    const std::size_t target = std::min(tb / kTickPeriod, log.size());
    for (; epoch_b < target; ++epoch_b) {
      const auto& d = log.delta(epoch_b);
      for (const NodeId u : d.node_kills) view_b.kill_node(u);
      for (const NodeId u : d.node_revives) view_b.revive_node(u);
    }
  }

  ASSERT_EQ(t, tb);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_same_outcome(got[i], want[i], "query " + std::to_string(i),
                        /*with_epochs=*/false);
  }
}

// The PR 2 width-1 stepped-session churn test, with the delta log driving
// the churn: a width-1 pipeline and manually stepped RouteSessions sharing
// one global tick counter must agree bit-for-bit, epochs included.
TEST(ChurnReplay, WidthOneReplayedChurnMatchesSteppedSessions) {
  const auto g = make_graph(512, 6, 16);
  const auto log = mixed_trace(g, 17, 80);
  const auto queries = random_queries(g, 40, 18);
  RouterConfig cfg;
  cfg.stuck_policy = StuckPolicy::kBacktrack;
  cfg.record_path = true;
  constexpr std::uint64_t kBase = 19;

  FailureView view = log.baseline();
  const Router router(g, view, cfg);
  std::vector<RouteResult> got(queries.size());
  BatchConfig batch;
  batch.width = 1;
  BatchPipeline pipeline(router, queries, got, kBase, batch);
  std::size_t t = 0;
  while (pipeline.tick()) {
    ++t;
    seek_for_tick(log, view, t);
  }

  FailureView ref_view = log.baseline();
  const Router ref_router(g, ref_view, cfg);
  std::size_t ref_t = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    RouteSession session(ref_router, queries[i].src, queries[i].target);
    util::Rng sub = util::substream(kBase, i);
    for (;;) {
      session.step(sub);
      const bool all_done = session.finished() && i + 1 == queries.size();
      if (!all_done) {
        ++ref_t;
        seek_for_tick(log, ref_view, ref_t);
      }
      if (session.finished()) break;
    }
    expect_same_outcome(got[i], session.progress(),
                        "stepped query " + std::to_string(i));
  }
  EXPECT_EQ(t, ref_t);
}

TEST(ChurnReplay, ReplayIsDeterministic) {
  const auto g = make_graph(1024, 6, 20);
  TraceSpec spec;
  spec.duration = 200.0;
  spec.kill_rate = 3.0;
  spec.revive_rate = 3.0;

  const auto run_once = [&](ReplayStats& stats) {
    util::Rng trace_rng(21);
    const auto log = make_trace(g, spec, trace_rng);
    FailureView view = log.baseline();
    const Router router(g, view);
    sim::EventQueue queue;
    ReplayConfig cfg;
    cfg.queries = 256;
    cfg.seed = 22;
    cfg.ticks_per_ms = 64.0;
    Replay replay(router, log, view, queue, cfg);
    stats = replay.run();
    return std::vector<RouteResult>(replay.results().begin(),
                                    replay.results().end());
  };

  ReplayStats s1, s2;
  const auto r1 = run_once(s1);
  const auto r2 = run_once(s2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    expect_same_outcome(r1[i], r2[i], "replay query " + std::to_string(i));
  }
  EXPECT_EQ(s1.deltas_applied, s2.deltas_applied);
  EXPECT_EQ(s1.ticks, s2.ticks);
  EXPECT_EQ(s1.routed, s2.routed);
  EXPECT_EQ(s1.delivered, s2.delivered);

  // The whole trace applied; every query retired; epochs stamped within the
  // log's range.
  util::Rng trace_rng(21);
  const auto log = make_trace(g, spec, trace_rng);
  EXPECT_EQ(s1.deltas_applied, log.size());
  EXPECT_EQ(s1.final_epoch, log.size());
  EXPECT_EQ(s1.routed, 256u);
  bool any_mid_churn = false;
  for (const auto& res : r1) {
    EXPECT_LE(res.completion_epoch, log.size());
    if (res.completion_epoch > 0) any_mid_churn = true;
  }
  EXPECT_TRUE(any_mid_churn);  // the load really interleaved with the churn
}

// Per-trial traces fan over the experiment pool exactly like static-failure
// trials: each trial builds its own trace from its private substream and
// replays it, and the fan-out is deterministic and order-stable regardless
// of thread scheduling.
TEST(ChurnReplay, PerTrialTracesFanOverExperimentPool) {
  const auto g = make_graph(512, 5, 25);
  const auto trial = [&](std::size_t, util::Rng& rng) {
    TraceSpec spec;
    spec.duration = 50.0;
    spec.kill_rate = 2.0;
    spec.revive_rate = 2.0;
    const auto log = make_trace(g, spec, rng);
    FailureView view = log.baseline();
    const Router router(g, view);
    sim::EventQueue queue;
    ReplayConfig cfg;
    cfg.queries = 64;
    cfg.seed = rng();
    cfg.ticks_per_ms = 32.0;
    Replay replay(router, log, view, queue, cfg);
    const auto stats = replay.run();
    return std::vector<double>{static_cast<double>(stats.deltas_applied),
                               static_cast<double>(stats.delivered),
                               stats.mean_hops_delivered};
  };
  util::ThreadPool pool(4);
  const auto a = sim::run_trials_multi(pool, 8, 31, trial);
  const auto b = sim::run_trials_multi(pool, 8, 31, trial);
  EXPECT_EQ(a, b);  // bit-identical across runs despite threading
  ASSERT_EQ(a.size(), 8u);
  bool distinct = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i] != a[0]) distinct = true;
  }
  EXPECT_TRUE(distinct);  // trials really drew different traces
}

TEST(ChurnReplay, ValidatesItsBindings) {
  const auto g = make_graph(64, 3, 23);
  const auto log = mixed_trace(g, 24, 5);
  FailureView view = log.baseline();
  FailureView other = log.baseline();
  const Router router(g, other);  // router over a *different* view
  sim::EventQueue queue;
  EXPECT_THROW(Replay(router, log, view, queue), std::invalid_argument);

  // A view left mid-log by a previous run must be seeked back to epoch 0.
  log.seek(other, 2);
  EXPECT_THROW(Replay(router, log, other, queue), std::invalid_argument);
  log.seek(other, 0);
  Replay ok(router, log, other, queue);  // valid again after the rewind
}

}  // namespace
}  // namespace p2p::churn
