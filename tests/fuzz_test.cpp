// Model-based randomized tests ("fuzz"): long random operation sequences
// against simple reference models, with invariants checked after every step.
//
//  * DynamicOverlay: joins/leaves/crashes/repairs in random order must keep
//    membership, link-target validity and the in/out reverse index
//    consistent, and the overlay must stay routable.
//  * Dht: put/get/erase/add_node/remove_node/crash_node sequences checked
//    against an in-memory map; replication invariant ("the R closest members
//    hold every key") re-verified after each membership change; graceful
//    operations must never lose data.
//  * AdversaryFuzz: corrupt/heal/apply/revert/kill/revive/seek/record/decay
//    interleavings over ByzantineSet + FailureView + ReputationTable against
//    reference models; every byte sideband must equal its scalar
//    re-derivation after each step.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "churn/churn_log.h"
#include "churn/trace_gen.h"
#include "core/construction.h"
#include "core/router.h"
#include "core/secure_router.h"
#include "dht/dht.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "failure/reputation.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace p2p {
namespace {

using metric::Point;
using metric::Space1D;

// ---------------------------------------------------------------------------
// DynamicOverlay fuzz
// ---------------------------------------------------------------------------

class OverlayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

void check_overlay_invariants(const core::DynamicOverlay& overlay) {
  const auto members = overlay.members();
  std::set<Point> member_set(members.begin(), members.end());
  ASSERT_EQ(member_set.size(), overlay.node_count());

  std::size_t dangling = 0;
  for (const Point p : members) {
    ASSERT_TRUE(overlay.occupied(p));
    for (const Point t : overlay.long_links_of(p)) {
      ASSERT_NE(t, p) << "self-link at " << p;
      ASSERT_TRUE(overlay.space().contains(t));
      if (!member_set.contains(t)) ++dangling;
    }
    ASSERT_LE(overlay.long_links_of(p).size(), overlay.config().long_links);
  }
  ASSERT_EQ(dangling, overlay.dangling_count());
}

TEST_P(OverlayFuzz, RandomOperationSequencesKeepInvariants) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const std::uint64_t grid = 512;
  core::ConstructionConfig cfg;
  cfg.long_links = 4;
  cfg.replace_policy = (seed % 2 == 0) ? core::ReplacePolicy::kPowerLaw
                                       : core::ReplacePolicy::kOldest;
  core::DynamicOverlay overlay(Space1D::ring(grid), cfg);

  // Seed membership so leaves/crashes have something to hit.
  for (Point p = 0; p < static_cast<Point>(grid); p += 16) overlay.join(p, rng);

  for (int op = 0; op < 600; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.40) {  // join a vacant position
      const auto p = static_cast<Point>(rng.next_below(grid));
      if (!overlay.occupied(p)) overlay.join(p, rng);
    } else if (dice < 0.60 && overlay.node_count() > 4) {  // graceful leave
      const auto members = overlay.members();
      overlay.leave(members[rng.next_below(members.size())], rng);
    } else if (dice < 0.85 && overlay.node_count() > 4) {  // crash
      const auto members = overlay.members();
      overlay.crash(members[rng.next_below(members.size())]);
    } else {  // repair pass
      overlay.repair(rng);
      ASSERT_EQ(overlay.dangling_count(), 0u);
    }
    if (op % 50 == 0) check_overlay_invariants(overlay);
  }
  check_overlay_invariants(overlay);

  // After a final repair, the snapshot must be fully routable.
  overlay.repair(rng);
  const auto g = overlay.snapshot();
  const auto view = failure::FailureView::all_alive(g);
  const core::Router router(g, view);
  for (int i = 0; i < 50; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.next_below(g.size()));
    const auto dst = static_cast<graph::NodeId>(rng.next_below(g.size()));
    ASSERT_TRUE(router.route(src, g.position(dst), rng).delivered());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Dht fuzz against a reference map
// ---------------------------------------------------------------------------

class DhtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DhtFuzz, MatchesReferenceMapThroughChurn) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 7919 + 13);
  const std::uint64_t grid = 1024;
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 6;
  cfg.replication = 3;
  dht::Dht store(Space1D::ring(grid), cfg, seed);

  // Bootstrap membership. Position 0 stays alive as the query origin.
  store.add_node(0);
  for (Point p = 8; p < static_cast<Point>(grid); p += 8) store.add_node(p);

  std::map<std::string, std::string> reference;
  std::size_t next_key = 0;

  const auto check_replication = [&]() {
    for (const auto& [key, value] : reference) {
      const auto owners = store.owners_of(key);
      ASSERT_EQ(owners.size(),
                std::min<std::size_t>(cfg.replication, store.node_count()));
      for (const Point holder : owners) {
        const auto keys = store.keys_at(holder);
        ASSERT_TRUE(std::find(keys.begin(), keys.end(), key) != keys.end())
            << "owner " << holder << " lost " << key;
      }
    }
  };

  for (int op = 0; op < 400; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.30) {  // put (new or overwrite)
      const std::string key =
          "k" + std::to_string(reference.empty() || rng.next_bool(0.7)
                                   ? next_key++
                                   : rng.next_below(next_key));
      const std::string value = "v" + std::to_string(op);
      const auto res = store.put(0, key, value);
      ASSERT_TRUE(res.ok);
      reference[key] = value;
    } else if (dice < 0.55 && !reference.empty()) {  // get existing
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(reference.size())));
      const auto res = store.get(0, it->first);
      ASSERT_TRUE(res.ok) << it->first;
      ASSERT_EQ(res.value, it->second);
    } else if (dice < 0.62 && !reference.empty()) {  // erase
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(reference.size())));
      ASSERT_TRUE(store.erase(0, it->first).ok);
      ASSERT_FALSE(store.get(0, it->first).ok);
      reference.erase(it);
    } else if (dice < 0.72) {  // get a key that never existed
      ASSERT_FALSE(store.get(0, "ghost-" + std::to_string(op)).ok);
    } else if (dice < 0.82) {  // join at a vacant position
      const auto p = static_cast<Point>(rng.next_below(grid));
      if (!store.has_node(p)) {
        store.add_node(p);
        check_replication();
      }
    } else if (dice < 0.92 && store.node_count() > 8) {  // graceful leave
      const auto members = store.overlay().members();
      const Point victim = members[rng.next_below(members.size())];
      if (victim != 0) {
        store.remove_node(victim);
        check_replication();
      }
    } else if (store.node_count() > 8) {  // crash
      const auto members = store.overlay().members();
      const Point victim = members[rng.next_below(members.size())];
      if (victim != 0) {
        store.crash_node(victim);
        // With replication 3 and one crash at a time, nothing is lost and
        // re-replication restores the invariant immediately.
        ASSERT_EQ(store.lost_keys(), 0u);
        check_replication();
      }
    }
  }

  // Full final audit: every reference entry readable with the right value,
  // total copies = R * keys.
  for (const auto& [key, value] : reference) {
    const auto res = store.get(0, key);
    ASSERT_TRUE(res.ok) << key;
    EXPECT_EQ(res.value, value);
  }
  EXPECT_EQ(store.stored_copies(), reference.size() * cfg.replication);
  EXPECT_EQ(store.lost_keys(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhtFuzz, ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Adversary-state fuzz: ByzantineSet + ReputationTable + FailureView
// ---------------------------------------------------------------------------
//
// Random interleavings of corrupt/heal, delta apply/revert, kill/revive,
// churn-log seeks, outcome records and reputation decays, checked against
// plain reference models. The key invariant is the sideband contract the
// masked SIMD scan relies on: every byte sideband (Byzantine flags aside,
// node liveness and trust) must equal a scalar re-derivation from the
// authoritative state after every step.

class AdversaryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdversaryFuzz, SidebandsMatchReferenceThroughInterleavedOps) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = 96;
  spec.long_links = 4;
  spec.bidirectional = true;
  const auto g = graph::build_overlay(spec, rng);
  const auto n = g.size();

  auto view = failure::FailureView::all_alive(g);
  // Two sets, matching real usage: replay drives one through the delta
  // cursor (apply/revert, where interleaved manual flips would legitimately
  // desynchronize the schedule), manual injection flips the other.
  auto manual_set = failure::ByzantineSet::none(g);
  auto delta_set = failure::ByzantineSet::none(g);
  failure::ReputationTable rep(g);
  const auto& rcfg = rep.config();
  constexpr double kPenaltyEpsilon = 1.0 / 1024.0;  // reputation.h's snap

  // A delta-log-driven second view: seeks must land on the exact epoch.
  churn::TraceSpec trace;
  trace.scenario = churn::TraceSpec::Scenario::kPoissonChurn;
  trace.duration = 50.0;
  trace.kill_rate = 2.0;
  trace.revive_rate = 2.0;
  const auto log = churn::make_trace(g, trace, rng);
  auto seek_view = log.baseline();

  // Reference models.
  std::vector<std::uint8_t> manual_ref(n, 0);
  std::vector<std::uint8_t> delta_ref(n, 0);
  std::vector<std::uint8_t> alive_ref(n, 1);
  std::vector<double> pen_ref(n, 0.0);
  std::vector<failure::ByzantineDelta> applied;  // revert stack

  const failure::Observation kinds[] = {
      failure::Observation::kDelivered, failure::Observation::kDiedAtHop,
      failure::Observation::kRegressed, failure::Observation::kTimedOut};
  const auto penalty_delta = [&](failure::Observation what) {
    switch (what) {
      case failure::Observation::kDelivered: return -rcfg.reward_delivered;
      case failure::Observation::kDiedAtHop: return rcfg.penalty_died;
      case failure::Observation::kRegressed: return rcfg.penalty_regressed;
      case failure::Observation::kTimedOut: return rcfg.penalty_timeout;
    }
    return 0.0;
  };

  const auto check = [&](int op) {
    std::size_t manual_count = 0, delta_count = 0, distrusted = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(manual_set.is_byzantine(u), manual_ref[u] != 0)
          << "op=" << op << " u=" << u;
      ASSERT_EQ(delta_set.is_byzantine(u), delta_ref[u] != 0)
          << "op=" << op << " u=" << u;
      ASSERT_EQ(view.node_alive(u), alive_ref[u] != 0) << "op=" << op << " u=" << u;
      if (view.node_alive_bytes() != nullptr) {
        ASSERT_EQ(view.node_alive_bytes()[u], alive_ref[u]) << "op=" << op;
      }
      ASSERT_DOUBLE_EQ(rep.penalty(u), pen_ref[u]) << "op=" << op << " u=" << u;
      // The acceptance invariant: the trust sideband byte equals the scalar
      // re-derivation from the penalty, bit for bit.
      const bool want_trusted = pen_ref[u] < rcfg.distrust_threshold;
      ASSERT_EQ(rep.trusted(u), want_trusted) << "op=" << op << " u=" << u;
      ASSERT_EQ(rep.trusted_bytes()[u], want_trusted ? 1 : 0)
          << "op=" << op << " u=" << u;
      manual_count += manual_ref[u];
      delta_count += delta_ref[u];
      if (!want_trusted) ++distrusted;
    }
    ASSERT_EQ(manual_set.count(), manual_count) << "op=" << op;
    ASSERT_EQ(delta_set.count(), delta_count) << "op=" << op;
    ASSERT_EQ(rep.distrusted_count(), distrusted) << "op=" << op;
    ASSERT_EQ(manual_set.epoch(), 0u) << "op=" << op;
    ASSERT_EQ(delta_set.epoch(), applied.size()) << "op=" << op;
  };

  for (int op = 0; op < 600; ++op) {
    const double dice = rng.next_double();
    const auto u = static_cast<graph::NodeId>(rng.next_below(n));
    if (dice < 0.12) {  // manual corruption (idempotent)
      manual_set.corrupt(u);
      manual_ref[u] = 1;
    } else if (dice < 0.24) {  // manual heal (idempotent)
      manual_set.heal(u);
      manual_ref[u] = 0;
    } else if (dice < 0.34) {  // normalized delta apply
      failure::ByzantineDelta d;
      d.when = static_cast<double>(op);
      for (graph::NodeId v = 0; v < n; ++v) {
        if (!rng.next_bool(0.04)) continue;
        (delta_ref[v] != 0 ? d.heals : d.corrupts).push_back(v);
      }
      delta_set.apply(d);
      for (const auto v : d.corrupts) delta_ref[v] = 1;
      for (const auto v : d.heals) delta_ref[v] = 0;
      applied.push_back(std::move(d));
    } else if (dice < 0.44 && !applied.empty()) {  // exact-inverse revert
      const auto d = std::move(applied.back());
      applied.pop_back();
      delta_set.revert(d);
      for (const auto v : d.corrupts) delta_ref[v] = 0;
      for (const auto v : d.heals) delta_ref[v] = 1;
    } else if (dice < 0.56) {  // crash
      view.kill_node(u);
      alive_ref[u] = 0;
    } else if (dice < 0.68) {  // revive
      view.revive_node(u);
      alive_ref[u] = 1;
    } else if (dice < 0.76 && log.size() > 0) {  // churn-log seek (any epoch)
      const auto e = rng.next_below(log.size() + 1);
      log.seek(seek_view, e);
      ASSERT_EQ(seek_view.epoch(), e);
    } else if (dice < 0.94) {  // outcome record
      const auto what = kinds[rng.next_below(4)];
      rep.record(u, what);
      pen_ref[u] = std::clamp(pen_ref[u] + penalty_delta(what), 0.0,
                              rcfg.max_penalty);
    } else {  // reputation decay epoch
      rep.decay_epoch();
      for (auto& p : pen_ref) {
        p *= rcfg.decay;
        if (p < kPenaltyEpsilon) p = 0.0;
      }
    }
    if (op % 25 == 0) check(op);
  }
  check(600);

  // The composed state must still route: a SecureRouter over all three
  // sidebands at once, attributing outcomes back into the same table. After
  // routing mutated the penalties, the sideband must still re-derive.
  core::SecureRouterConfig scfg;
  scfg.paths = 2;
  scfg.reputation = &rep;
  const core::SecureRouter router(g, view, delta_set, scfg);
  for (int i = 0; i < 20; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.next_below(n));
    const auto res = router.route(src, g.position(static_cast<graph::NodeId>(
                                           rng.next_below(n))),
                                  rng);
    ASSERT_LE(res.successful_walks, res.walks_launched);
  }
  std::size_t distrusted = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    const bool want = rep.penalty(u) < rcfg.distrust_threshold;
    ASSERT_EQ(rep.trusted(u), want) << u;
    ASSERT_EQ(rep.trusted_bytes()[u], want ? 1 : 0) << u;
    if (!want) ++distrusted;
  }
  ASSERT_EQ(rep.distrusted_count(), distrusted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversaryFuzz,
                         ::testing::Values(11u, 12u, 13u, 14u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace p2p
