// Model-based randomized tests ("fuzz"): long random operation sequences
// against simple reference models, with invariants checked after every step.
//
//  * DynamicOverlay: joins/leaves/crashes/repairs in random order must keep
//    membership, link-target validity and the in/out reverse index
//    consistent, and the overlay must stay routable.
//  * Dht: put/get/erase/add_node/remove_node/crash_node sequences checked
//    against an in-memory map; replication invariant ("the R closest members
//    hold every key") re-verified after each membership change; graceful
//    operations must never lose data.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/construction.h"
#include "core/router.h"
#include "dht/dht.h"
#include "failure/failure_model.h"
#include "util/rng.h"

namespace p2p {
namespace {

using metric::Point;
using metric::Space1D;

// ---------------------------------------------------------------------------
// DynamicOverlay fuzz
// ---------------------------------------------------------------------------

class OverlayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

void check_overlay_invariants(const core::DynamicOverlay& overlay) {
  const auto members = overlay.members();
  std::set<Point> member_set(members.begin(), members.end());
  ASSERT_EQ(member_set.size(), overlay.node_count());

  std::size_t dangling = 0;
  for (const Point p : members) {
    ASSERT_TRUE(overlay.occupied(p));
    for (const Point t : overlay.long_links_of(p)) {
      ASSERT_NE(t, p) << "self-link at " << p;
      ASSERT_TRUE(overlay.space().contains(t));
      if (!member_set.contains(t)) ++dangling;
    }
    ASSERT_LE(overlay.long_links_of(p).size(), overlay.config().long_links);
  }
  ASSERT_EQ(dangling, overlay.dangling_count());
}

TEST_P(OverlayFuzz, RandomOperationSequencesKeepInvariants) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const std::uint64_t grid = 512;
  core::ConstructionConfig cfg;
  cfg.long_links = 4;
  cfg.replace_policy = (seed % 2 == 0) ? core::ReplacePolicy::kPowerLaw
                                       : core::ReplacePolicy::kOldest;
  core::DynamicOverlay overlay(Space1D::ring(grid), cfg);

  // Seed membership so leaves/crashes have something to hit.
  for (Point p = 0; p < static_cast<Point>(grid); p += 16) overlay.join(p, rng);

  for (int op = 0; op < 600; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.40) {  // join a vacant position
      const auto p = static_cast<Point>(rng.next_below(grid));
      if (!overlay.occupied(p)) overlay.join(p, rng);
    } else if (dice < 0.60 && overlay.node_count() > 4) {  // graceful leave
      const auto members = overlay.members();
      overlay.leave(members[rng.next_below(members.size())], rng);
    } else if (dice < 0.85 && overlay.node_count() > 4) {  // crash
      const auto members = overlay.members();
      overlay.crash(members[rng.next_below(members.size())]);
    } else {  // repair pass
      overlay.repair(rng);
      ASSERT_EQ(overlay.dangling_count(), 0u);
    }
    if (op % 50 == 0) check_overlay_invariants(overlay);
  }
  check_overlay_invariants(overlay);

  // After a final repair, the snapshot must be fully routable.
  overlay.repair(rng);
  const auto g = overlay.snapshot();
  const auto view = failure::FailureView::all_alive(g);
  const core::Router router(g, view);
  for (int i = 0; i < 50; ++i) {
    const auto src = static_cast<graph::NodeId>(rng.next_below(g.size()));
    const auto dst = static_cast<graph::NodeId>(rng.next_below(g.size()));
    ASSERT_TRUE(router.route(src, g.position(dst), rng).delivered());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Dht fuzz against a reference map
// ---------------------------------------------------------------------------

class DhtFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DhtFuzz, MatchesReferenceMapThroughChurn) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 7919 + 13);
  const std::uint64_t grid = 1024;
  dht::DhtConfig cfg;
  cfg.overlay.long_links = 6;
  cfg.replication = 3;
  dht::Dht store(Space1D::ring(grid), cfg, seed);

  // Bootstrap membership. Position 0 stays alive as the query origin.
  store.add_node(0);
  for (Point p = 8; p < static_cast<Point>(grid); p += 8) store.add_node(p);

  std::map<std::string, std::string> reference;
  std::size_t next_key = 0;

  const auto check_replication = [&]() {
    for (const auto& [key, value] : reference) {
      const auto owners = store.owners_of(key);
      ASSERT_EQ(owners.size(),
                std::min<std::size_t>(cfg.replication, store.node_count()));
      for (const Point holder : owners) {
        const auto keys = store.keys_at(holder);
        ASSERT_TRUE(std::find(keys.begin(), keys.end(), key) != keys.end())
            << "owner " << holder << " lost " << key;
      }
    }
  };

  for (int op = 0; op < 400; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.30) {  // put (new or overwrite)
      const std::string key =
          "k" + std::to_string(reference.empty() || rng.next_bool(0.7)
                                   ? next_key++
                                   : rng.next_below(next_key));
      const std::string value = "v" + std::to_string(op);
      const auto res = store.put(0, key, value);
      ASSERT_TRUE(res.ok);
      reference[key] = value;
    } else if (dice < 0.55 && !reference.empty()) {  // get existing
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(reference.size())));
      const auto res = store.get(0, it->first);
      ASSERT_TRUE(res.ok) << it->first;
      ASSERT_EQ(res.value, it->second);
    } else if (dice < 0.62 && !reference.empty()) {  // erase
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(reference.size())));
      ASSERT_TRUE(store.erase(0, it->first).ok);
      ASSERT_FALSE(store.get(0, it->first).ok);
      reference.erase(it);
    } else if (dice < 0.72) {  // get a key that never existed
      ASSERT_FALSE(store.get(0, "ghost-" + std::to_string(op)).ok);
    } else if (dice < 0.82) {  // join at a vacant position
      const auto p = static_cast<Point>(rng.next_below(grid));
      if (!store.has_node(p)) {
        store.add_node(p);
        check_replication();
      }
    } else if (dice < 0.92 && store.node_count() > 8) {  // graceful leave
      const auto members = store.overlay().members();
      const Point victim = members[rng.next_below(members.size())];
      if (victim != 0) {
        store.remove_node(victim);
        check_replication();
      }
    } else if (store.node_count() > 8) {  // crash
      const auto members = store.overlay().members();
      const Point victim = members[rng.next_below(members.size())];
      if (victim != 0) {
        store.crash_node(victim);
        // With replication 3 and one crash at a time, nothing is lost and
        // re-replication restores the invariant immediately.
        ASSERT_EQ(store.lost_keys(), 0u);
        check_replication();
      }
    }
  }

  // Full final audit: every reference entry readable with the right value,
  // total copies = R * keys.
  for (const auto& [key, value] : reference) {
    const auto res = store.get(0, key);
    ASSERT_TRUE(res.ok) << key;
    EXPECT_EQ(res.value, value);
  }
  EXPECT_EQ(store.stored_copies(), reference.size() * cfg.replication);
  EXPECT_EQ(store.lost_keys(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DhtFuzz, ::testing::Values(1u, 2u, 3u, 4u),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace p2p
