// Tests for the Byzantine model and the redundant secure router.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/secure_router.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace p2p::core {
namespace {

using failure::ByzantineBehavior;
using failure::ByzantineSet;
using failure::FailureView;
using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph test_graph(std::uint64_t n, std::size_t links, std::uint64_t seed,
                        bool bidirectional = false) {
  util::Rng rng(seed);
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.bidirectional = bidirectional;
  return graph::build_overlay(spec, rng);
}

TEST(ByzantineSet, NoneHasNoCorruptNodes) {
  const auto g = test_graph(64, 2, 1);
  const auto set = ByzantineSet::none(g);
  EXPECT_EQ(set.count(), 0u);
  for (NodeId u = 0; u < g.size(); ++u) EXPECT_FALSE(set.is_byzantine(u));
}

TEST(ByzantineSet, RandomFractionMatches) {
  const auto g = test_graph(4096, 1, 2);
  util::Rng rng(3);
  const auto set = ByzantineSet::random(g, 0.25, rng);
  EXPECT_NEAR(static_cast<double>(set.count()) / 4096.0, 0.25, 0.03);
}

TEST(ByzantineSet, ExplicitPlacementAndHealing) {
  const auto g = test_graph(64, 2, 4);
  auto set = ByzantineSet::of(g, {3, 7, 7});
  EXPECT_EQ(set.count(), 2u);  // duplicate ignored
  EXPECT_TRUE(set.is_byzantine(3));
  set.heal(3);
  EXPECT_FALSE(set.is_byzantine(3));
  EXPECT_EQ(set.count(), 1u);
  set.corrupt(5);
  EXPECT_TRUE(set.is_byzantine(5));
  EXPECT_THROW(set.corrupt(64), std::out_of_range);
}

TEST(SecureRouter, NoAttackersBehavesLikePlainGreedy) {
  const auto g = test_graph(1024, 8, 5);
  const auto view = FailureView::all_alive(g);
  const auto byz = ByzantineSet::none(g);
  const SecureRouter secure(g, view, byz, {.paths = 1});
  const Router plain(g, view);
  util::Rng rng_a(6), rng_b(6);
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<NodeId>(rng_a.next_below(g.size()));
    const auto dst = static_cast<NodeId>(rng_a.next_below(g.size()));
    static_cast<void>(rng_b.next_below(g.size()));
    static_cast<void>(rng_b.next_below(g.size()));
    const auto a = secure.route(src, g.position(dst), rng_a);
    const auto b = plain.route(src, g.position(dst), rng_b);
    ASSERT_TRUE(a.delivered);
    EXPECT_EQ(a.best_hops, b.hops);
  }
}

TEST(SecureRouter, BlackholeOnThePathKillsASingleWalk) {
  // Bare ring: the unique greedy path 0 -> 5 passes node 2.
  OverlayGraph g(metric::Space1D::ring(10));
  graph::wire_short_links(g);
  const auto view = FailureView::all_alive(g);
  const auto byz = ByzantineSet::of(g, {2});
  util::Rng rng(7);
  const SecureRouter single(g, view, byz, {.paths = 1});
  const auto res = single.route(0, 4, rng);
  EXPECT_FALSE(res.delivered);
  EXPECT_EQ(res.successful_walks, 0u);
}

TEST(SecureRouter, DiverseSecondPathRoutesAroundTheBlackhole) {
  OverlayGraph g(metric::Space1D::ring(10));
  graph::wire_short_links(g);
  const auto view = FailureView::all_alive(g);
  const auto byz = ByzantineSet::of(g, {2});
  util::Rng rng(8);
  // Walk 0 goes clockwise into the blackhole; walk 1 leaves over the other
  // short link and reaches 4 counter-clockwise.
  const SecureRouter redundant(g, view, byz, {.paths = 2});
  const auto res = redundant.route(0, 4, rng);
  EXPECT_TRUE(res.delivered);
  EXPECT_EQ(res.successful_walks, 1u);
  EXPECT_EQ(res.best_hops, 6u);  // 0 -> 9 -> 8 -> 7 -> 6 -> 5 -> 4
}

TEST(SecureRouter, SourceIsTrustedTargetDeliversToItself) {
  const auto g = test_graph(256, 4, 9);
  const auto view = FailureView::all_alive(g);
  const auto byz = ByzantineSet::of(g, {17});
  const SecureRouter secure(g, view, byz, {.paths = 2});
  util::Rng rng(10);
  // A search *originating* at a corrupted node still runs (the attacker
  // gains nothing by dropping its own query).
  EXPECT_TRUE(secure.route(17, 200, rng).delivered);
  // A zero-hop search trivially succeeds.
  EXPECT_TRUE(secure.route(40, 40, rng).delivered);
}

TEST(SecureRouter, MisrouteInflatesCostAndFailsUnderTightTtl) {
  const auto g = test_graph(2048, 10, 11, /*bidirectional=*/true);
  const auto view = FailureView::all_alive(g);
  util::Rng rng(12);
  const auto byz = ByzantineSet::random(g, 0.25, rng);
  const auto clean = ByzantineSet::none(g);

  // Generous TTL: misroute cannot stop a search outright (honest greedy
  // re-converges), but it inflates the message cost.
  const SecureRouter attacked(
      g, view, byz, {.paths = 1, .behavior = ByzantineBehavior::kMisroute});
  const SecureRouter unattacked(g, view, clean, {.paths = 1});
  // Tight TTL: the wasted budget turns into outright failures, and
  // redundancy buys some of them back.
  const SecureRouter tight_single(
      g, view, byz,
      {.paths = 1, .ttl = 12, .behavior = ByzantineBehavior::kMisroute});
  const SecureRouter tight_redundant(
      g, view, byz,
      {.paths = 4, .ttl = 12, .behavior = ByzantineBehavior::kMisroute});

  std::size_t attacked_cost = 0, clean_cost = 0;
  std::size_t attacked_ok = 0;
  std::size_t tight_ok_single = 0, tight_ok_redundant = 0;
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(g.size()));
    const auto dst = static_cast<NodeId>(rng.next_below(g.size()));
    const auto a = attacked.route(src, g.position(dst), rng);
    // Generous TTL: honest greedy usually re-converges after a detour
    // (loop-free walks can still dead-end occasionally).
    attacked_ok += a.delivered ? 1 : 0;
    attacked_cost += a.total_messages;
    clean_cost += unattacked.route(src, g.position(dst), rng).total_messages;
    if (tight_single.route(src, g.position(dst), rng).delivered) {
      ++tight_ok_single;
    }
    if (tight_redundant.route(src, g.position(dst), rng).delivered) {
      ++tight_ok_redundant;
    }
  }
  EXPECT_GT(attacked_ok, 240);                   // >= 80% still served
  EXPECT_GT(attacked_cost, clean_cost * 5 / 4);  // >= 25% cost inflation
  EXPECT_LT(tight_ok_single, 300);               // tight budget: some fail
  EXPECT_GT(tight_ok_redundant, tight_ok_single);
}

TEST(SecureRouter, RedundancyCostIsAccounted) {
  const auto g = test_graph(512, 6, 13);
  const auto view = FailureView::all_alive(g);
  const auto byz = ByzantineSet::none(g);
  const SecureRouter secure(g, view, byz, {.paths = 4});
  util::Rng rng(14);
  const auto res = secure.route(3, 400, rng);
  ASSERT_TRUE(res.delivered);
  EXPECT_EQ(res.successful_walks, 4u);  // no attackers: every walk arrives
  EXPECT_GE(res.total_messages, 4 * res.best_hops);
}

TEST(ByzantineSet, CorruptAndHealAreIdempotent) {
  const auto g = test_graph(64, 2, 40);
  auto set = ByzantineSet::none(g);
  // Healing an honest node — even before any flags exist — is a no-op.
  set.heal(5);
  EXPECT_EQ(set.count(), 0u);
  set.corrupt(5);
  set.corrupt(5);
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set.is_byzantine(5));
  set.heal(5);
  set.heal(5);
  EXPECT_EQ(set.count(), 0u);
  EXPECT_FALSE(set.is_byzantine(5));
  // Manual flips never move the delta cursor.
  EXPECT_EQ(set.epoch(), 0u);
}

TEST(ByzantineSet, DeltaApplyAndRevertAreExactInverses) {
  const auto g = test_graph(64, 2, 41);
  auto set = ByzantineSet::of(g, {1, 2});
  failure::ByzantineDelta first;
  first.when = 1.0;
  first.corrupts = {3, 4};
  first.heals = {1};
  failure::ByzantineDelta second;
  second.when = 2.0;
  second.corrupts = {1};
  second.heals = {3, 4};

  set.apply(first);
  EXPECT_EQ(set.epoch(), 1u);
  EXPECT_EQ(set.count(), 3u);  // {2, 3, 4}
  EXPECT_FALSE(set.is_byzantine(1));
  EXPECT_TRUE(set.is_byzantine(3));
  set.apply(second);
  EXPECT_EQ(set.epoch(), 2u);
  EXPECT_EQ(set.count(), 2u);  // {1, 2}
  EXPECT_TRUE(set.is_byzantine(1));
  EXPECT_FALSE(set.is_byzantine(4));

  set.revert(second);
  EXPECT_EQ(set.epoch(), 1u);
  EXPECT_EQ(set.count(), 3u);
  EXPECT_FALSE(set.is_byzantine(1));
  EXPECT_TRUE(set.is_byzantine(4));
  set.revert(first);
  EXPECT_EQ(set.epoch(), 0u);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_TRUE(set.is_byzantine(1));
  EXPECT_TRUE(set.is_byzantine(2));
  EXPECT_FALSE(set.is_byzantine(3));
}

TEST(ByzantineSet, ApplyRejectsOutOfSyncDeltas) {
  const auto g = test_graph(64, 2, 42);
  auto set = ByzantineSet::of(g, {7});
  failure::ByzantineDelta corrupt_again;
  corrupt_again.corrupts = {7};  // no-op change: schedule out of sync
  EXPECT_THROW(set.apply(corrupt_again), std::invalid_argument);
  failure::ByzantineDelta heal_honest;
  heal_honest.heals = {9};
  EXPECT_THROW(set.apply(heal_honest), std::invalid_argument);
  failure::ByzantineDelta out_of_range;
  out_of_range.corrupts = {64};
  EXPECT_THROW(set.apply(out_of_range), std::out_of_range);
  // Revert below epoch 0 is a cursor error even for an invertible batch.
  failure::ByzantineDelta fine;
  fine.corrupts = {3};
  EXPECT_THROW(set.revert(fine), std::invalid_argument);
  set.apply(fine);
  EXPECT_EQ(set.epoch(), 1u);
  // Reverting a batch that is not the one that produced the current epoch
  // trips the same normalization check (its heals/corrupts are no-ops).
  failure::ByzantineDelta wrong;
  wrong.corrupts = {5};
  EXPECT_THROW(set.revert(wrong), std::invalid_argument);
}

// Satellite: the structural-generation guard, mirroring FailureView's
// stale-view discipline — a slot-moving graph mutation must make every set
// mutator fail loudly instead of silently mis-keying node flags.
TEST(ByzantineSet, MutatorsThrowAfterStructuralGraphChange) {
  graph::GraphBuilder builder(metric::Space1D::ring(16));
  builder.wire_short_links();
  for (NodeId u = 0; u < 16; ++u) builder.add_long_link(u, (u + 5) % 16);
  OverlayGraph g = builder.freeze();
  const auto gen0 = g.structural_generation();

  auto set = ByzantineSet::none(g);
  set.corrupt(2);  // allocate flags against gen0

  g.replace_long_link(2, 0, 9);  // in-place: never moves slots
  EXPECT_EQ(g.structural_generation(), gen0);
  set.corrupt(3);  // still valid
  EXPECT_EQ(set.count(), 2u);

  g.add_long_link(3, 9);  // no reserved slot: shifts the flat arrays
  EXPECT_GT(g.structural_generation(), gen0);
  EXPECT_THROW(set.corrupt(4), std::invalid_argument);
  EXPECT_THROW(set.heal(2), std::invalid_argument);
  failure::ByzantineDelta delta;
  delta.corrupts = {5};
  EXPECT_THROW(set.apply(delta), std::invalid_argument);

  // A fresh set over the mutated graph is keyed to the new generation.
  auto fresh = ByzantineSet::none(g);
  fresh.corrupt(4);
  EXPECT_TRUE(fresh.is_byzantine(4));
}

TEST(SecureRouter, RejectsBadWiring) {
  const auto g1 = test_graph(64, 2, 15);
  const auto g2 = test_graph(64, 2, 16);
  const auto view = FailureView::all_alive(g1);
  const auto byz = ByzantineSet::none(g2);
  EXPECT_THROW(SecureRouter(g1, view, byz, {}), std::invalid_argument);
  const auto byz_ok = ByzantineSet::none(g1);
  EXPECT_THROW(SecureRouter(g1, view, byz_ok, {.paths = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace p2p::core
