// Unit + property tests for the metric spaces (line, ring, torus).
#include <gtest/gtest.h>

#include <stdexcept>

#include "metric/grid2d.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::metric {
namespace {

TEST(Space1D, LineDistances) {
  const auto line = Space1D::line(10);
  EXPECT_EQ(line.distance(0, 9), 9u);
  EXPECT_EQ(line.distance(3, 3), 0u);
  EXPECT_EQ(line.distance(7, 2), 5u);
  EXPECT_EQ(line.diameter(), 9u);
}

TEST(Space1D, RingDistancesWrap) {
  const auto ring = Space1D::ring(10);
  EXPECT_EQ(ring.distance(0, 9), 1u);
  EXPECT_EQ(ring.distance(0, 5), 5u);
  EXPECT_EQ(ring.distance(2, 8), 4u);
  EXPECT_EQ(ring.diameter(), 5u);
}

TEST(Space1D, Contains) {
  const auto line = Space1D::line(4);
  EXPECT_TRUE(line.contains(0));
  EXPECT_TRUE(line.contains(3));
  EXPECT_FALSE(line.contains(4));
  EXPECT_FALSE(line.contains(-1));
}

TEST(Space1D, MaxDistance) {
  const auto line = Space1D::line(10);
  EXPECT_EQ(line.max_distance(0), 9u);
  EXPECT_EQ(line.max_distance(9), 9u);
  EXPECT_EQ(line.max_distance(5), 5u);
  const auto ring = Space1D::ring(10);
  EXPECT_EQ(ring.max_distance(3), 5u);
}

TEST(Space1D, OffsetOnLineFallsOffEnds) {
  const auto line = Space1D::line(5);
  EXPECT_EQ(line.offset(2, 2), Point{4});
  EXPECT_EQ(line.offset(2, -2), Point{0});
  EXPECT_FALSE(line.offset(4, 1).has_value());
  EXPECT_FALSE(line.offset(0, -1).has_value());
}

TEST(Space1D, OffsetOnRingWraps) {
  const auto ring = Space1D::ring(5);
  EXPECT_EQ(ring.offset(4, 1), Point{0});
  EXPECT_EQ(ring.offset(0, -1), Point{4});
  EXPECT_EQ(ring.offset(2, 7), Point{4});   // 2 + 7 = 9 mod 5
  EXPECT_EQ(ring.offset(2, -8), Point{4});  // 2 - 8 = -6 mod 5
}

TEST(Space1D, DirectionOnLine) {
  const auto line = Space1D::line(10);
  EXPECT_EQ(line.direction(2, 7), 1);
  EXPECT_EQ(line.direction(7, 2), -1);
  EXPECT_EQ(line.direction(4, 4), 0);
}

TEST(Space1D, DirectionOnRingTakesShortArc) {
  const auto ring = Space1D::ring(10);
  EXPECT_EQ(ring.direction(0, 3), 1);
  EXPECT_EQ(ring.direction(0, 8), -1);  // 2 steps counter-clockwise
  EXPECT_EQ(ring.direction(0, 5), 1);   // antipodal tie resolves to +1
}

TEST(Space1D, BetweenOnLine) {
  const auto line = Space1D::line(10);
  // v between u=8 and target t=2 (strictly), or v == t.
  EXPECT_TRUE(line.between(5, 8, 2));
  EXPECT_TRUE(line.between(2, 8, 2));
  EXPECT_FALSE(line.between(9, 8, 2));
  EXPECT_FALSE(line.between(1, 8, 2));  // overshoot past the target
  EXPECT_FALSE(line.between(8, 8, 2));  // v == u is not progress
}

TEST(Space1D, BetweenOnRingFollowsShortArc) {
  const auto ring = Space1D::ring(12);
  // From u=1 toward t=10 the short arc goes counter-clockwise via 0, 11.
  EXPECT_TRUE(ring.between(0, 1, 10));
  EXPECT_TRUE(ring.between(11, 1, 10));
  EXPECT_FALSE(ring.between(5, 1, 10));  // on the long arc
  EXPECT_TRUE(ring.between(10, 1, 10));  // landing on t is allowed
}

TEST(Space1D, RejectsEmptySpaces) {
  EXPECT_THROW(static_cast<void>(Space1D::line(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Space1D::ring(0)), std::invalid_argument);
}

TEST(Space1D, ToStringNamesKindAndSize) {
  EXPECT_EQ(Space1D::line(8).to_string(), "line(8)");
  EXPECT_EQ(Space1D::ring(16).to_string(), "ring(16)");
}

// -- Metric axioms, parameterized over space shapes --------------------------

struct SpaceCase {
  std::string name;
  Space1D space;
};

class MetricAxioms : public ::testing::TestWithParam<SpaceCase> {};

TEST_P(MetricAxioms, SymmetryIdentityTriangle) {
  const Space1D& s = GetParam().space;
  util::Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<Point>(rng.next_below(s.size()));
    const auto b = static_cast<Point>(rng.next_below(s.size()));
    const auto c = static_cast<Point>(rng.next_below(s.size()));
    EXPECT_EQ(s.distance(a, b), s.distance(b, a));
    EXPECT_EQ(s.distance(a, a), 0u);
    if (a != b) {
      EXPECT_GT(s.distance(a, b), 0u);
    }
    EXPECT_LE(s.distance(a, c), s.distance(a, b) + s.distance(b, c));
    EXPECT_LE(s.distance(a, b), s.diameter());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, MetricAxioms,
    ::testing::Values(SpaceCase{"line64", Space1D::line(64)},
                      SpaceCase{"ring64", Space1D::ring(64)},
                      SpaceCase{"ring65_odd", Space1D::ring(65)},
                      SpaceCase{"line2", Space1D::line(2)},
                      SpaceCase{"ring2", Space1D::ring(2)},
                      SpaceCase{"ring3", Space1D::ring(3)}),
    [](const auto& info) { return info.param.name; });

// -- Torus2D -----------------------------------------------------------------

TEST(Torus2D, CoordinateRoundTrip) {
  const Torus2D t(8);
  for (Point p = 0; p < 64; ++p) {
    const auto [r, c] = t.coords(p);
    EXPECT_EQ(t.at(r, c), p);
  }
}

TEST(Torus2D, AtWrapsNegativeAndLarge) {
  const Torus2D t(8);
  EXPECT_EQ(t.at(-1, 0), t.at(7, 0));
  EXPECT_EQ(t.at(0, 9), t.at(0, 1));
  EXPECT_EQ(t.at(16, -8), t.at(0, 0));
}

TEST(Torus2D, ManhattanDistanceWithWraparound) {
  const Torus2D t(8);
  EXPECT_EQ(t.distance(t.at(0, 0), t.at(0, 1)), 1u);
  EXPECT_EQ(t.distance(t.at(0, 0), t.at(0, 7)), 1u);   // wraps
  EXPECT_EQ(t.distance(t.at(0, 0), t.at(4, 4)), 8u);   // diameter
  EXPECT_EQ(t.distance(t.at(2, 3), t.at(2, 3)), 0u);
  EXPECT_EQ(t.diameter(), 8u);
}

TEST(Torus2D, MetricAxiomsHold) {
  const Torus2D t(7);
  util::Rng rng(6);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<Point>(rng.next_below(t.size()));
    const auto b = static_cast<Point>(rng.next_below(t.size()));
    const auto c = static_cast<Point>(rng.next_below(t.size()));
    EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    EXPECT_EQ(t.distance(a, a), 0u);
    EXPECT_LE(t.distance(a, c), t.distance(a, b) + t.distance(b, c));
  }
}

TEST(Torus2D, RingSizeCountsExactly) {
  // Brute-force cross-check: count points at each distance from the origin.
  for (const std::uint32_t side : {4u, 5u, 8u}) {
    const Torus2D t(side);
    std::vector<std::uint64_t> counts(t.diameter() + 1, 0);
    for (Point p = 0; p < static_cast<Point>(t.size()); ++p) {
      ++counts[t.distance(0, p)];
    }
    for (Distance d = 0; d <= t.diameter(); ++d) {
      EXPECT_EQ(t.ring_size(d), counts[d]) << "side=" << side << " d=" << d;
    }
  }
}

TEST(Torus2D, RingSizeBeyondDiameterIsZero) {
  const Torus2D t(6);
  EXPECT_EQ(t.ring_size(t.diameter() + 1), 0u);
}

TEST(Torus2D, RejectsZeroSide) { EXPECT_THROW(Torus2D(0), std::invalid_argument); }

}  // namespace
}  // namespace p2p::metric
