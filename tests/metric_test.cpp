// Unit + property tests for the metric spaces (line, ring, torus) and the
// Space variant the overlay stack is generic over.
#include <gtest/gtest.h>

#include <stdexcept>

#include "metric/grid2d.h"
#include "metric/space.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::metric {
namespace {

TEST(Space1D, LineDistances) {
  const auto line = Space1D::line(10);
  EXPECT_EQ(line.distance(0, 9), 9u);
  EXPECT_EQ(line.distance(3, 3), 0u);
  EXPECT_EQ(line.distance(7, 2), 5u);
  EXPECT_EQ(line.diameter(), 9u);
}

TEST(Space1D, RingDistancesWrap) {
  const auto ring = Space1D::ring(10);
  EXPECT_EQ(ring.distance(0, 9), 1u);
  EXPECT_EQ(ring.distance(0, 5), 5u);
  EXPECT_EQ(ring.distance(2, 8), 4u);
  EXPECT_EQ(ring.diameter(), 5u);
}

TEST(Space1D, Contains) {
  const auto line = Space1D::line(4);
  EXPECT_TRUE(line.contains(0));
  EXPECT_TRUE(line.contains(3));
  EXPECT_FALSE(line.contains(4));
  EXPECT_FALSE(line.contains(-1));
}

TEST(Space1D, MaxDistance) {
  const auto line = Space1D::line(10);
  EXPECT_EQ(line.max_distance(0), 9u);
  EXPECT_EQ(line.max_distance(9), 9u);
  EXPECT_EQ(line.max_distance(5), 5u);
  const auto ring = Space1D::ring(10);
  EXPECT_EQ(ring.max_distance(3), 5u);
}

TEST(Space1D, OffsetOnLineFallsOffEnds) {
  const auto line = Space1D::line(5);
  EXPECT_EQ(line.offset(2, 2), Point{4});
  EXPECT_EQ(line.offset(2, -2), Point{0});
  EXPECT_FALSE(line.offset(4, 1).has_value());
  EXPECT_FALSE(line.offset(0, -1).has_value());
}

TEST(Space1D, OffsetOnRingWraps) {
  const auto ring = Space1D::ring(5);
  EXPECT_EQ(ring.offset(4, 1), Point{0});
  EXPECT_EQ(ring.offset(0, -1), Point{4});
  EXPECT_EQ(ring.offset(2, 7), Point{4});   // 2 + 7 = 9 mod 5
  EXPECT_EQ(ring.offset(2, -8), Point{4});  // 2 - 8 = -6 mod 5
}

TEST(Space1D, DirectionOnLine) {
  const auto line = Space1D::line(10);
  EXPECT_EQ(line.direction(2, 7), 1);
  EXPECT_EQ(line.direction(7, 2), -1);
  EXPECT_EQ(line.direction(4, 4), 0);
}

TEST(Space1D, DirectionOnRingTakesShortArc) {
  const auto ring = Space1D::ring(10);
  EXPECT_EQ(ring.direction(0, 3), 1);
  EXPECT_EQ(ring.direction(0, 8), -1);  // 2 steps counter-clockwise
  EXPECT_EQ(ring.direction(0, 5), 1);   // antipodal tie resolves to +1
}

TEST(Space1D, BetweenOnLine) {
  const auto line = Space1D::line(10);
  // v between u=8 and target t=2 (strictly), or v == t.
  EXPECT_TRUE(line.between(5, 8, 2));
  EXPECT_TRUE(line.between(2, 8, 2));
  EXPECT_FALSE(line.between(9, 8, 2));
  EXPECT_FALSE(line.between(1, 8, 2));  // overshoot past the target
  EXPECT_FALSE(line.between(8, 8, 2));  // v == u is not progress
}

TEST(Space1D, BetweenOnRingFollowsShortArc) {
  const auto ring = Space1D::ring(12);
  // From u=1 toward t=10 the short arc goes counter-clockwise via 0, 11.
  EXPECT_TRUE(ring.between(0, 1, 10));
  EXPECT_TRUE(ring.between(11, 1, 10));
  EXPECT_FALSE(ring.between(5, 1, 10));  // on the long arc
  EXPECT_TRUE(ring.between(10, 1, 10));  // landing on t is allowed
}

TEST(Space1D, RejectsEmptySpaces) {
  EXPECT_THROW(static_cast<void>(Space1D::line(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Space1D::ring(0)), std::invalid_argument);
}

TEST(Space1D, ToStringNamesKindAndSize) {
  EXPECT_EQ(Space1D::line(8).to_string(), "line(8)");
  EXPECT_EQ(Space1D::ring(16).to_string(), "ring(16)");
}

// -- Metric axioms, parameterized over space shapes --------------------------

struct SpaceCase {
  std::string name;
  Space1D space;
};

class MetricAxioms : public ::testing::TestWithParam<SpaceCase> {};

TEST_P(MetricAxioms, SymmetryIdentityTriangle) {
  const Space1D& s = GetParam().space;
  util::Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<Point>(rng.next_below(s.size()));
    const auto b = static_cast<Point>(rng.next_below(s.size()));
    const auto c = static_cast<Point>(rng.next_below(s.size()));
    EXPECT_EQ(s.distance(a, b), s.distance(b, a));
    EXPECT_EQ(s.distance(a, a), 0u);
    if (a != b) {
      EXPECT_GT(s.distance(a, b), 0u);
    }
    EXPECT_LE(s.distance(a, c), s.distance(a, b) + s.distance(b, c));
    EXPECT_LE(s.distance(a, b), s.diameter());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, MetricAxioms,
    ::testing::Values(SpaceCase{"line64", Space1D::line(64)},
                      SpaceCase{"ring64", Space1D::ring(64)},
                      SpaceCase{"ring65_odd", Space1D::ring(65)},
                      SpaceCase{"line2", Space1D::line(2)},
                      SpaceCase{"ring2", Space1D::ring(2)},
                      SpaceCase{"ring3", Space1D::ring(3)}),
    [](const auto& info) { return info.param.name; });

// -- Torus2D -----------------------------------------------------------------

TEST(Torus2D, CoordinateRoundTrip) {
  const Torus2D t(8);
  for (Point p = 0; p < 64; ++p) {
    const auto [r, c] = t.coords(p);
    EXPECT_EQ(t.at(r, c), p);
  }
}

TEST(Torus2D, AtWrapsNegativeAndLarge) {
  const Torus2D t(8);
  EXPECT_EQ(t.at(-1, 0), t.at(7, 0));
  EXPECT_EQ(t.at(0, 9), t.at(0, 1));
  EXPECT_EQ(t.at(16, -8), t.at(0, 0));
}

TEST(Torus2D, ManhattanDistanceWithWraparound) {
  const Torus2D t(8);
  EXPECT_EQ(t.distance(t.at(0, 0), t.at(0, 1)), 1u);
  EXPECT_EQ(t.distance(t.at(0, 0), t.at(0, 7)), 1u);   // wraps
  EXPECT_EQ(t.distance(t.at(0, 0), t.at(4, 4)), 8u);   // diameter
  EXPECT_EQ(t.distance(t.at(2, 3), t.at(2, 3)), 0u);
  EXPECT_EQ(t.diameter(), 8u);
}

TEST(Torus2D, MetricAxiomsHold) {
  const Torus2D t(7);
  util::Rng rng(6);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<Point>(rng.next_below(t.size()));
    const auto b = static_cast<Point>(rng.next_below(t.size()));
    const auto c = static_cast<Point>(rng.next_below(t.size()));
    EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    EXPECT_EQ(t.distance(a, a), 0u);
    EXPECT_LE(t.distance(a, c), t.distance(a, b) + t.distance(b, c));
  }
}

TEST(Torus2D, RingSizeCountsExactly) {
  // Brute-force cross-check: count points at each distance from the origin.
  for (const std::uint32_t side : {4u, 5u, 8u}) {
    const Torus2D t(side);
    std::vector<std::uint64_t> counts(t.diameter() + 1, 0);
    for (Point p = 0; p < static_cast<Point>(t.size()); ++p) {
      ++counts[t.distance(0, p)];
    }
    for (Distance d = 0; d <= t.diameter(); ++d) {
      EXPECT_EQ(t.ring_size(d), counts[d]) << "side=" << side << " d=" << d;
    }
  }
}

TEST(Torus2D, RingSizeBeyondDiameterIsZero) {
  const Torus2D t(6);
  EXPECT_EQ(t.ring_size(t.diameter() + 1), 0u);
}

TEST(Torus2D, RingSizesSumToEveryOtherPoint) {
  // The rings around any point partition the other size()-1 points.
  for (const std::uint32_t side : {2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
    const Torus2D t(side);
    std::uint64_t total = 0;
    for (Distance d = 1; d <= t.diameter(); ++d) total += t.ring_size(d);
    EXPECT_EQ(total, t.size() - 1) << "side=" << side;
  }
}

TEST(Torus2D, DistanceSymmetricOverRandomPairs) {
  for (const std::uint32_t side : {6u, 7u}) {
    const Torus2D t(side);
    util::Rng rng(23);
    for (int trial = 0; trial < 1000; ++trial) {
      const auto a = static_cast<Point>(rng.next_below(t.size()));
      const auto b = static_cast<Point>(rng.next_below(t.size()));
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
    }
  }
}

TEST(Torus2D, WraparoundIdentities) {
  const Torus2D t(8);
  const auto s = static_cast<std::int64_t>(t.side());
  util::Rng rng(29);
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = static_cast<Point>(rng.next_below(t.size()));
    const auto b = static_cast<Point>(rng.next_below(t.size()));
    const auto [ar, ac] = t.coords(a);
    const auto [br, bc] = t.coords(b);
    // Coordinates are periodic in the side.
    EXPECT_EQ(t.at(ar + s, ac), a);
    EXPECT_EQ(t.at(ar, ac - s), a);
    // Distance is translation invariant: shifting both points by the same
    // offset (wrapping) never changes it.
    const auto dr = static_cast<std::int64_t>(rng.next_below(t.side()));
    const auto dc = static_cast<std::int64_t>(rng.next_below(t.side()));
    EXPECT_EQ(t.distance(a, b),
              t.distance(t.at(ar + dr, ac + dc), t.at(br + dr, bc + dc)));
    // One full lap along either axis is a no-op.
    EXPECT_EQ(t.distance(a, t.at(ar + s, ac)), 0u);
  }
}

// -- metric::Space — the variant the overlay stack is generic over -----------

TEST(Space, LiftsPreserveEverySharedQuery) {
  const Space1D ring = Space1D::ring(20);
  const Space1D line = Space1D::line(20);
  const Torus2D torus(5);
  const Space spaces[] = {Space(line), Space(ring), Space(torus)};
  const auto check_against = [](const Space& s, const auto& underlying) {
    EXPECT_EQ(s.size(), underlying.size());
    EXPECT_EQ(s.diameter(), underlying.diameter());
    EXPECT_TRUE(s.contains(0));
    EXPECT_FALSE(s.contains(static_cast<Point>(underlying.size())));
    EXPECT_FALSE(s.contains(-1));
    util::Rng rng(31);
    for (int trial = 0; trial < 500; ++trial) {
      const auto a = static_cast<Point>(rng.next_below(s.size()));
      const auto b = static_cast<Point>(rng.next_below(s.size()));
      EXPECT_EQ(s.distance(a, b), underlying.distance(a, b));
    }
  };
  check_against(spaces[0], line);
  check_against(spaces[1], ring);
  check_against(spaces[2], torus);
}

TEST(Space, TorusDistanceMatchesReferenceAcrossSides) {
  // Exercises the reciprocal-multiplication coordinate split against the
  // plain-division Torus2D reference, including the largest side the magic
  // path admits (65536) and sides just around powers of two.
  for (const std::uint32_t side : {2u, 3u, 317u, 4096u, 4097u, 65535u, 65536u}) {
    const Torus2D torus(side);
    const Space s(torus);
    util::Rng rng(side);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto a = static_cast<Point>(rng.next_below(torus.size()));
      const auto b = static_cast<Point>(rng.next_below(torus.size()));
      ASSERT_EQ(s.distance(a, b), torus.distance(a, b))
          << "side=" << side << " a=" << a << " b=" << b;
    }
    // Edge positions: corners of the flattened range.
    const auto last = static_cast<Point>(torus.size() - 1);
    EXPECT_EQ(s.distance(0, last), torus.distance(0, last));
    EXPECT_EQ(s.distance(last, last), 0u);
  }
}

TEST(Space, KindsAndFactories) {
  EXPECT_EQ(Space::line(8).kind(), Space::Kind::kLine);
  EXPECT_EQ(Space::ring(8).kind(), Space::Kind::kRing);
  EXPECT_EQ(Space::torus(4).kind(), Space::Kind::kTorus2D);
  EXPECT_TRUE(Space::line(8).one_dimensional());
  EXPECT_TRUE(Space::ring(8).one_dimensional());
  EXPECT_FALSE(Space::torus(4).one_dimensional());
  EXPECT_EQ(Space::torus(4).size(), 16u);
  EXPECT_EQ(Space::line(8), Space(Space1D::line(8)));
  EXPECT_NE(Space::line(8), Space::ring(8));
  EXPECT_NE(Space::ring(16), Space::torus(4));  // same size, different metric
}

TEST(Space, OneDimensionalRoundTrips) {
  const Space ring = Space::ring(12);
  EXPECT_EQ(ring.as_1d(), Space1D::ring(12));
  EXPECT_EQ(ring.offset(11, 1), Point{0});
  EXPECT_EQ(ring.direction(0, 3), 1);
  EXPECT_TRUE(ring.between(0, 1, 10));
  EXPECT_EQ(ring.max_distance(3), Space1D::ring(12).max_distance(3));
  const Space torus = Space::torus(6);
  EXPECT_EQ(torus.as_torus().side(), 6u);
  EXPECT_EQ(torus.max_distance(0), torus.diameter());
}

TEST(Space, SidednessOperationsThrowOnTorus) {
  const Space torus = Space::torus(6);
  EXPECT_THROW(static_cast<void>(torus.offset(0, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(torus.direction(0, 1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(torus.as_1d()), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(Space::ring(8).as_torus()), std::invalid_argument);
}

TEST(Space, ToStringNamesTheMetric) {
  EXPECT_EQ(Space::line(8).to_string(), "line(8)");
  EXPECT_EQ(Space::ring(16).to_string(), "ring(16)");
  EXPECT_EQ(Space::torus(32).to_string(), "torus(32x32)");
}

struct AnySpaceCase {
  std::string name;
  Space space;
};

class SpaceMetricAxioms : public ::testing::TestWithParam<AnySpaceCase> {};

TEST_P(SpaceMetricAxioms, SymmetryIdentityTriangle) {
  const Space& s = GetParam().space;
  util::Rng rng(37);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<Point>(rng.next_below(s.size()));
    const auto b = static_cast<Point>(rng.next_below(s.size()));
    const auto c = static_cast<Point>(rng.next_below(s.size()));
    EXPECT_EQ(s.distance(a, b), s.distance(b, a));
    EXPECT_EQ(s.distance(a, a), 0u);
    if (a != b) {
      EXPECT_GT(s.distance(a, b), 0u);
    }
    EXPECT_LE(s.distance(a, c), s.distance(a, b) + s.distance(b, c));
    EXPECT_LE(s.distance(a, b), s.diameter());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Spaces, SpaceMetricAxioms,
    ::testing::Values(AnySpaceCase{"line64", Space::line(64)},
                      AnySpaceCase{"ring64", Space::ring(64)},
                      AnySpaceCase{"torus8", Space::torus(8)},
                      AnySpaceCase{"torus9_odd", Space::torus(9)},
                      AnySpaceCase{"torus2", Space::torus(2)}),
    [](const auto& info) { return info.param.name; });

TEST(Torus2D, RejectsZeroSide) { EXPECT_THROW(Torus2D(0), std::invalid_argument); }

}  // namespace
}  // namespace p2p::metric
