// Tests for failure::ReputationTable (outcome-driven distrust scores) and
// the Router's trust mask — the third byte sideband riding the masked-SIMD
// candidate scan next to link/node liveness. The PR acceptance equivalence
// lives here: with distrust active, select_candidate must be bit-identical
// between the vectorized path and the scalar table (RouterConfig::force_scalar
// pins both on one host; the *_scalar CTest registration re-runs the suite
// under P2P_NO_SIMD=1), and both must equal the allocating candidates()
// reference, on the ring and on the Kleinberg torus, composed with failures.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "failure/reputation.h"
#include "graph/graph_builder.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::failure {
namespace {

using graph::NodeId;
using graph::OverlayGraph;

OverlayGraph ring_overlay(std::uint64_t n, std::size_t links, std::uint64_t seed) {
  graph::BuildSpec spec;
  spec.grid_size = n;
  spec.long_links = links;
  spec.bidirectional = true;
  util::Rng rng(seed);
  return graph::build_overlay(spec, rng);
}

// ---------------------------------------------------------------------------
// Score mechanics

TEST(ReputationTable, StartsFullyTrusted) {
  const auto g = ring_overlay(64, 2, 1);
  const ReputationTable table(g);
  EXPECT_EQ(table.distrusted_count(), 0u);
  EXPECT_EQ(table.epoch(), 0u);
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_DOUBLE_EQ(table.penalty(u), 0.0);
    EXPECT_TRUE(table.trusted(u));
    EXPECT_EQ(table.trusted_bytes()[u], 1);
  }
}

TEST(ReputationTable, PenaltiesAccumulateAndCrossTheThreshold) {
  const auto g = ring_overlay(64, 2, 2);
  ReputationTable table(g);
  const auto& cfg = table.config();

  table.record(5, Observation::kTimedOut);
  EXPECT_DOUBLE_EQ(table.penalty(5), cfg.penalty_timeout);
  EXPECT_TRUE(table.trusted(5));

  table.record(5, Observation::kDiedAtHop);
  EXPECT_DOUBLE_EQ(table.penalty(5), cfg.penalty_timeout + cfg.penalty_died);
  EXPECT_TRUE(table.trusted(5));  // 3.25 < 4.0

  table.record(5, Observation::kRegressed);
  EXPECT_GE(table.penalty(5), cfg.distrust_threshold);
  EXPECT_FALSE(table.trusted(5));
  EXPECT_EQ(table.trusted_bytes()[5], 0);
  EXPECT_EQ(table.distrusted_count(), 1u);

  // A reward pulls the penalty back down; enough of them restore trust.
  table.record(5, Observation::kDelivered);
  EXPECT_DOUBLE_EQ(table.penalty(5),
                   cfg.penalty_timeout + cfg.penalty_died +
                       cfg.penalty_regressed - cfg.reward_delivered);
  for (int i = 0; i < 64; ++i) table.record(5, Observation::kDelivered);
  EXPECT_DOUBLE_EQ(table.penalty(5), 0.0);  // floored, never negative
  EXPECT_TRUE(table.trusted(5));
  EXPECT_EQ(table.distrusted_count(), 0u);
}

TEST(ReputationTable, PenaltySaturatesAtTheCap) {
  const auto g = ring_overlay(64, 2, 3);
  ReputationTable table(g);
  for (int i = 0; i < 20; ++i) table.record(9, Observation::kDiedAtHop);
  EXPECT_DOUBLE_EQ(table.penalty(9), table.config().max_penalty);
  EXPECT_FALSE(table.trusted(9));
}

TEST(ReputationTable, RewardOnCleanNodeStaysAtZero) {
  const auto g = ring_overlay(64, 2, 4);
  ReputationTable table(g);
  table.record(7, Observation::kDelivered);
  EXPECT_DOUBLE_EQ(table.penalty(7), 0.0);
  EXPECT_TRUE(table.trusted(7));
}

TEST(ReputationTable, DecayRecoversTrustAndSnapsToExactZero) {
  const auto g = ring_overlay(64, 2, 5);
  ReputationTable table(g);
  for (int i = 0; i < 20; ++i) table.record(3, Observation::kDiedAtHop);
  ASSERT_DOUBLE_EQ(table.penalty(3), 16.0);
  ASSERT_FALSE(table.trusted(3));

  // 16 -> 8 -> 4: at the threshold is still distrusted (trust is strict <).
  table.decay_epoch();
  table.decay_epoch();
  EXPECT_DOUBLE_EQ(table.penalty(3), 4.0);
  EXPECT_FALSE(table.trusted(3));
  EXPECT_EQ(table.epoch(), 2u);

  table.decay_epoch();
  EXPECT_DOUBLE_EQ(table.penalty(3), 2.0);
  EXPECT_TRUE(table.trusted(3));
  EXPECT_EQ(table.distrusted_count(), 0u);

  // Multiplicative decay alone never reaches zero; the epsilon snap must.
  for (int i = 0; i < 16; ++i) table.decay_epoch();
  EXPECT_DOUBLE_EQ(table.penalty(3), 0.0);
  EXPECT_EQ(table.epoch(), 19u);

  // Decay with nothing penalized is a cheap no-op that still counts epochs.
  table.decay_epoch();
  EXPECT_EQ(table.epoch(), 20u);
}

TEST(ReputationTable, ResetForgetsEverything) {
  const auto g = ring_overlay(64, 2, 6);
  ReputationTable table(g);
  for (NodeId u = 0; u < 8; ++u) {
    table.record(u, Observation::kDiedAtHop);
    table.record(u, Observation::kDiedAtHop);
    table.record(u, Observation::kDiedAtHop);
  }
  table.decay_epoch();  // 9.0 -> 4.5: decayed but still past the threshold
  ASSERT_GT(table.distrusted_count(), 0u);
  ASSERT_EQ(table.epoch(), 1u);
  table.reset();
  EXPECT_EQ(table.distrusted_count(), 0u);
  EXPECT_EQ(table.epoch(), 0u);
  for (NodeId u = 0; u < g.size(); ++u) {
    EXPECT_DOUBLE_EQ(table.penalty(u), 0.0);
    EXPECT_TRUE(table.trusted(u));
    EXPECT_EQ(table.trusted_bytes()[u], 1);
  }
}

TEST(ReputationTable, ValidatesItsConfig) {
  const auto g = ring_overlay(64, 2, 7);
  ReputationConfig bad;
  bad.distrust_threshold = 0.0;
  EXPECT_THROW(ReputationTable(g, bad), std::invalid_argument);
  bad = {};
  bad.decay = 1.0;  // must shrink: [0, 1)
  EXPECT_THROW(ReputationTable(g, bad), std::invalid_argument);
  bad = {};
  bad.decay = -0.5;
  EXPECT_THROW(ReputationTable(g, bad), std::invalid_argument);
  bad = {};
  bad.max_penalty = bad.distrust_threshold - 1.0;  // cap below the threshold
  EXPECT_THROW(ReputationTable(g, bad), std::invalid_argument);
  EXPECT_THROW(ReputationTable(g).record(static_cast<NodeId>(g.size()),
                                         Observation::kDiedAtHop),
               std::invalid_argument);
}

// The byte sideband is the *derived* form of the scores; randomized op
// sequences must keep it in lockstep with a scalar re-derivation from the
// penalties (the same equivalence the SIMD gather relies on).
TEST(ReputationTable, SidebandMatchesScalarRederivationUnderRandomOps) {
  const auto g = ring_overlay(128, 2, 8);
  ReputationTable table(g);
  const double threshold = table.config().distrust_threshold;
  util::Rng rng(88);
  const Observation kinds[] = {Observation::kDelivered, Observation::kDiedAtHop,
                               Observation::kRegressed, Observation::kTimedOut};
  for (int op = 0; op < 3000; ++op) {
    if (rng.next_bool(0.05)) {
      table.decay_epoch();
    } else {
      const auto u = static_cast<NodeId>(rng.next_below(g.size()));
      table.record(u, kinds[rng.next_below(4)]);
    }
    if (op % 100 == 0 || op == 2999) {
      std::size_t distrusted = 0;
      for (NodeId u = 0; u < g.size(); ++u) {
        const bool want = table.penalty(u) < threshold;
        ASSERT_EQ(table.trusted(u), want) << "op=" << op << " u=" << u;
        ASSERT_EQ(table.trusted_bytes()[u], want ? 1 : 0)
            << "op=" << op << " u=" << u;
        if (!want) ++distrusted;
      }
      ASSERT_EQ(table.distrusted_count(), distrusted) << "op=" << op;
    }
  }
}

// ---------------------------------------------------------------------------
// Router integration: the trust mask in candidate selection

/// Distrusts `u` outright (cap >= threshold makes two deaths sufficient).
void distrust(ReputationTable& table, NodeId u) {
  while (table.trusted(u)) table.record(u, Observation::kDiedAtHop);
}

TEST(RouterTrustMask, CandidatesSkipDistrustedNeighbours) {
  const auto g = ring_overlay(1024, 8, 11);
  const auto view = FailureView::all_alive(g);
  ReputationTable table(g);
  core::RouterConfig cfg;
  cfg.reputation = &table;
  const core::Router masked(g, view, cfg);
  const core::Router plain(g, view);

  const NodeId u = 17;
  const auto t = g.position(600);
  const auto before = plain.candidates(u, t);
  ASSERT_GE(before.size(), 2u);

  // Nobody distrusted: the mask self-gates, selection identical to plain.
  EXPECT_EQ(masked.candidates(u, t), before);

  distrust(table, before[0]);
  const auto after = masked.candidates(u, t);
  EXPECT_EQ(after.size(), before.size() - 1);
  for (const NodeId v : after) EXPECT_NE(v, before[0]);
  // The filtered list is exactly the old list minus the suspect, in order.
  std::vector<NodeId> expect(before.begin() + 1, before.end());
  EXPECT_EQ(after, expect);
  // Plain router (no table) is unaffected — the SecureRouter's fallback.
  EXPECT_EQ(plain.candidates(u, t), before);

  // Streaming selection agrees with the reference at every rank.
  for (std::size_t rank = 0; rank <= after.size(); ++rank) {
    const NodeId want = rank < after.size() ? after[rank] : graph::kInvalidNode;
    EXPECT_EQ(masked.select_candidate(u, t, rank), want) << rank;
  }

  // Trust restored (decay to zero) re-admits the neighbour.
  while (!table.trusted(before[0])) table.decay_epoch();
  EXPECT_EQ(masked.candidates(u, t), before);
}

/// simd-dispatch vs forced-scalar selection over random (u, target, rank)
/// triples, both checked against the allocating candidates() reference.
void check_trust_equivalence(const OverlayGraph& g, const FailureView& view,
                             const ReputationTable& table, std::uint64_t seed,
                             const std::string& label) {
  core::RouterConfig cfg;
  cfg.reputation = &table;
  const core::Router simd(g, view, cfg);
  auto scalar_cfg = cfg;
  scalar_cfg.force_scalar = true;
  const core::Router scalar(g, view, scalar_cfg);
  EXPECT_FALSE(scalar.simd_eligible());

  util::Rng pick(seed);
  for (int trial = 0; trial < 600; ++trial) {
    const auto u = static_cast<NodeId>(pick.next_below(g.size()));
    const auto t = g.position(static_cast<NodeId>(pick.next_below(g.size())));
    const auto reference = scalar.candidates(u, t);
    for (const NodeId v : reference) {
      ASSERT_TRUE(table.trusted(v)) << label << " candidate " << v;
    }
    for (std::size_t rank = 0; rank < 3; ++rank) {
      const NodeId want =
          rank < reference.size() ? reference[rank] : graph::kInvalidNode;
      ASSERT_EQ(simd.select_candidate(u, t, rank), want)
          << label << " u=" << u << " t=" << t << " rank=" << rank;
      ASSERT_EQ(scalar.select_candidate(u, t, rank), want)
          << label << " u=" << u << " t=" << t << " rank=" << rank;
    }
  }
}

TEST(RouterTrustMask, SimdAndScalarAgreeUnderDistrust) {
  // Ring and Kleinberg torus, distrust alone and distrust composed with
  // node/link failures — every combination the third sideband must mask
  // identically across the vectorized and scalar kernels.
  const auto ring = ring_overlay(4096, 12, 21);
  util::Rng torus_rng(22);
  const auto torus = graph::build_kleinberg_overlay(45, 8, 2.0, torus_rng);

  for (const OverlayGraph* g : {&ring, &torus}) {
    const std::string space = g == &ring ? "ring" : "torus";
    ReputationTable table(*g);
    util::Rng mark(23);
    for (NodeId u = 0; u < g->size(); ++u) {
      if (mark.next_bool(0.2)) distrust(table, u);
    }
    ASSERT_GT(table.distrusted_count(), 0u);

    const auto clean = FailureView::all_alive(*g);
    check_trust_equivalence(*g, clean, table, 24, space + "/intact");

    util::Rng fail_rng(25);
    auto failed = FailureView::with_link_failures(*g, 0.5, fail_rng);
    for (NodeId u = 0; u < g->size(); ++u) {
      if (fail_rng.next_bool(0.2)) failed.kill_node(u);
    }
    check_trust_equivalence(*g, failed, table, 26, space + "/failed");

    // Partial decay moves some penalties below the threshold mid-flight;
    // re-check so the sideband the kernels gather is the *current* one.
    table.decay_epoch();
    table.decay_epoch();
    table.decay_epoch();
    check_trust_equivalence(*g, failed, table, 27, space + "/decayed");
  }
}

}  // namespace
}  // namespace p2p::failure
