// Unit tests for the DHT layer: hashing, ownership, replication, handoff,
// crash recovery and self-healing routes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "dht/dht.h"
#include "dht/hash.h"
#include "util/rng.h"

namespace p2p::dht {
namespace {

using metric::Point;
using metric::Space1D;

DhtConfig dht_config(std::size_t links, std::size_t replication) {
  DhtConfig cfg;
  cfg.overlay.long_links = links;
  cfg.replication = replication;
  return cfg;
}

/// A DHT over a ring populated at every multiple of `stride`.
Dht populated_dht(std::uint64_t grid, Point stride, std::size_t links,
                  std::size_t replication, std::uint64_t seed = 1) {
  Dht dht(Space1D::ring(grid), dht_config(links, replication), seed);
  for (Point p = 0; p < static_cast<Point>(grid); p += stride) dht.add_node(p);
  return dht;
}

TEST(Hash, Fnv1aMatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, PointForKeyIsStableAndInRange) {
  for (const std::string key : {"alice.mp3", "bob.txt", "", "z"}) {
    const Point p = point_for_key(key, 1024);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 1024);
    EXPECT_EQ(p, point_for_key(key, 1024));  // deterministic
  }
}

TEST(Hash, PointsSpreadAcrossTheGrid) {
  std::set<Point> points;
  for (int i = 0; i < 1000; ++i) {
    points.insert(point_for_key("key-" + std::to_string(i), 1 << 20));
  }
  EXPECT_GT(points.size(), 990u);  // essentially no collisions at 2^20
}

TEST(Dht, PutThenGetRoundTrips) {
  auto dht = populated_dht(256, 4, 3, 1);
  const auto put = dht.put(0, "song.mp3", "payload");
  ASSERT_TRUE(put.ok);
  const auto got = dht.get(128, "song.mp3");
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.value, "payload");
  EXPECT_GT(got.hops, 0u);
}

TEST(Dht, GetMissingKeyFailsCleanly) {
  auto dht = populated_dht(256, 4, 3, 1);
  const auto got = dht.get(0, "never-stored");
  EXPECT_FALSE(got.ok);
  EXPECT_FALSE(got.value.has_value());
}

TEST(Dht, OverwriteReplacesTheValue) {
  auto dht = populated_dht(256, 4, 3, 1);
  ASSERT_TRUE(dht.put(0, "k", "v1").ok);
  ASSERT_TRUE(dht.put(4, "k", "v2").ok);
  EXPECT_EQ(dht.get(8, "k").value, "v2");
}

TEST(Dht, EraseRemovesEveryCopy)
{
  auto dht = populated_dht(256, 4, 3, 3);
  ASSERT_TRUE(dht.put(0, "k", "v").ok);
  EXPECT_EQ(dht.stored_copies(), 3u);
  ASSERT_TRUE(dht.erase(12, "k").ok);
  EXPECT_EQ(dht.stored_copies(), 0u);
  EXPECT_FALSE(dht.get(0, "k").ok);
}

TEST(Dht, OwnersAreTheClosestMembers) {
  auto dht = populated_dht(100, 10, 2, 3);
  const std::string key = "some-key";
  const Point kp = dht.key_point(key);
  const auto owners = dht.owners_of(key);
  ASSERT_EQ(owners.size(), 3u);
  // Every owner must be at least as close to kp as any non-owner.
  metric::Distance worst_owner = 0;
  const auto space = Space1D::ring(100);
  for (const Point o : owners) {
    worst_owner = std::max(worst_owner, space.distance(o, kp));
  }
  for (Point p = 0; p < 100; p += 10) {
    if (std::find(owners.begin(), owners.end(), p) != owners.end()) continue;
    EXPECT_GE(space.distance(p, kp), worst_owner);
  }
}

TEST(Dht, ReplicationStoresExactlyRCopies) {
  auto dht = populated_dht(256, 4, 3, 3);
  ASSERT_TRUE(dht.put(0, "k1", "v").ok);
  ASSERT_TRUE(dht.put(0, "k2", "v").ok);
  EXPECT_EQ(dht.stored_copies(), 6u);
}

TEST(Dht, KeysAtReportsTheOwnerStore) {
  auto dht = populated_dht(256, 4, 3, 1);
  ASSERT_TRUE(dht.put(0, "k", "v").ok);
  const auto owners = dht.owners_of("k");
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(dht.keys_at(owners[0]), (std::vector<std::string>{"k"}));
}

TEST(Dht, CrashOfSoleOwnerLosesTheKey) {
  auto dht = populated_dht(256, 4, 3, 1);
  ASSERT_TRUE(dht.put(0, "k", "v").ok);
  const auto owners = dht.owners_of("k");
  ASSERT_EQ(owners.size(), 1u);
  dht.crash_node(owners[0]);
  EXPECT_FALSE(dht.get(0, "k").ok);
  EXPECT_EQ(dht.lost_keys(), 1u);
}

TEST(Dht, ReplicationSurvivesOwnerCrash) {
  auto dht = populated_dht(256, 4, 3, 3);
  ASSERT_TRUE(dht.put(0, "k", "v").ok);
  const auto owners = dht.owners_of("k");
  dht.crash_node(owners[0]);
  const auto got = dht.get(4, "k");
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.value, "v");
  EXPECT_EQ(dht.lost_keys(), 0u);
  // Re-replication restored the factor among the survivors.
  EXPECT_EQ(dht.owners_of("k").size(), 3u);
}

TEST(Dht, GracefulLeaveHandsKeysOff) {
  auto dht = populated_dht(256, 4, 3, 1);
  ASSERT_TRUE(dht.put(0, "k", "v").ok);
  const auto owners = dht.owners_of("k");
  ASSERT_EQ(owners.size(), 1u);
  dht.remove_node(owners[0]);  // graceful: value must survive
  const auto got = dht.get(4, "k");
  ASSERT_TRUE(got.ok);
  EXPECT_EQ(got.value, "v");
  EXPECT_EQ(dht.lost_keys(), 0u);
}

TEST(Dht, JoiningOwnerTakesTheKeyOver) {
  auto dht = populated_dht(256, 16, 3, 1, /*seed=*/3);
  ASSERT_TRUE(dht.put(0, "k", "v").ok);
  const Point kp = dht.key_point("k");
  // A node lands exactly on the key's point: it becomes the owner.
  if (!dht.has_node(kp)) dht.add_node(kp);
  const auto owners = dht.owners_of("k");
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0], kp);
  EXPECT_EQ(dht.keys_at(kp), (std::vector<std::string>{"k"}));
  EXPECT_EQ(dht.get(0, "k").value, "v");
}

TEST(Dht, ManyKeysSurviveChurnWithReplication) {
  auto dht = populated_dht(512, 8, 4, 3, /*seed=*/5);
  util::Rng rng(6);
  std::vector<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back("key-" + std::to_string(i));
    ASSERT_TRUE(dht.put(0, keys.back(), "value-" + std::to_string(i)).ok);
  }
  // Churn: crash a third of the nodes (never position 0, our query origin).
  std::vector<Point> members = dht.overlay().members();
  for (const Point p : members) {
    if (p != 0 && rng.next_bool(0.33)) dht.crash_node(p);
  }
  EXPECT_EQ(dht.lost_keys(), 0u);
  for (int i = 0; i < 50; ++i) {
    const auto got = dht.get(0, keys[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(got.ok) << keys[static_cast<std::size_t>(i)];
    EXPECT_EQ(got.value, "value-" + std::to_string(i));
  }
}

TEST(Dht, SelfHealRepairsDanglingLinksDuringRoutes) {
  auto dht = populated_dht(512, 4, 4, 2, /*seed=*/7);
  util::Rng rng(8);
  std::vector<Point> members = dht.overlay().members();
  for (const Point p : members) {
    if (p != 0 && rng.next_bool(0.2)) dht.crash_node(p);
  }
  const std::size_t before = dht.overlay().dangling_count();
  ASSERT_GT(before, 0u);
  // A burst of lookups walks much of the overlay; every visited node with a
  // dangling link repairs itself, so damage shrinks markedly.
  for (int i = 0; i < 400; ++i) {
    static_cast<void>(dht.get(0, "key-" + std::to_string(i)));
  }
  EXPECT_LT(dht.overlay().dangling_count(), before / 2 + 1);
}

TEST(Dht, RejectsBadConfigAndArguments) {
  EXPECT_THROW(Dht(Space1D::ring(16), dht_config(1, 0), 1), std::invalid_argument);
  auto dht = populated_dht(64, 8, 2, 1);
  EXPECT_THROW(dht.remove_node(1), std::invalid_argument);  // vacant
  EXPECT_THROW(dht.crash_node(1), std::invalid_argument);
}

}  // namespace
}  // namespace p2p::dht
