// Distributed hash table on top of the dynamic overlay.
//
// DEPRECATED SURFACE — this class is the legacy single-coordinator store
// over the Space1D/DynamicOverlay path. New code should use the replicated
// object service in src/store (store/quorum_store.h): it is metric-generic
// (line/ring/torus via metric::Space), places k replicas against the frozen
// CSR overlay's FailureView, executes quorum reads/writes as routed
// sub-queries through Router::route_batch, and reports through
// telemetry::Registry. Dht stays for the join/leave/self-heal protocol study
// on the dynamic overlay, which the frozen-graph store does not model.
//
// This is the "hash table-like functionality" §1 promises: resources are
// mapped to grid points by hashing their keys (dht/hash.h); the node whose
// position is closest to a key's point *owns* that key; lookups are greedy
// routes to the key's point (§2's resource-location protocol).
//
// Fault tolerance beyond the paper's routing story:
//  * replication — each key is stored at the `replication` members closest
//    to its point, so a crashed owner does not lose the value;
//  * handoff — joins and graceful leaves move keys so the owner-set
//    invariant ("the `replication` closest members hold the key") is
//    restored immediately;
//  * self-healing — routes that traverse dangling links (left by crashes)
//    repair them on the way, amortizing repair over searches exactly as §1
//    proposes ("we expect to amortize these costs over the search and
//    insert operations").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/construction.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::dht {

/// Result of one DHT operation.
struct OpResult {
  bool ok = false;
  /// Overlay messages consumed (route hops + replica probes/copies).
  std::size_t hops = 0;
  /// The value, for successful get().
  std::optional<std::string> value;
};

/// DHT configuration.
struct DhtConfig {
  core::ConstructionConfig overlay;  ///< §5 heuristic knobs
  std::size_t replication = 1;       ///< copies per key (>= 1)
  bool self_heal = true;             ///< repair dangling links during routes
  std::size_t ttl = 0;               ///< route hop budget; 0 = automatic
};

/// A peer-to-peer key-value store addressed by greedy routing.
///
/// Nodes are identified by their grid position. All randomness (overlay
/// maintenance, repairs) flows from the seed given at construction.
class Dht {
 public:
  /// Preconditions: space.size() >= 2, cfg.replication >= 1.
  Dht(metric::Space1D space, DhtConfig cfg, std::uint64_t seed);

  // -- membership ----------------------------------------------------------

  /// Joins a node at vacant position p (§5 protocol) and hands off any keys
  /// it now owns. Throws std::invalid_argument if p is occupied.
  void add_node(metric::Point p);

  /// Graceful departure: keys are handed to their new owners first.
  void remove_node(metric::Point p);

  /// Abrupt crash: the node's stored values are lost; surviving replicas
  /// re-establish the replication factor.
  void crash_node(metric::Point p);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return overlay_.node_count();
  }
  [[nodiscard]] bool has_node(metric::Point p) const noexcept {
    return overlay_.occupied(p);
  }
  [[nodiscard]] const core::DynamicOverlay& overlay() const noexcept {
    return overlay_;
  }

  // -- data operations (issued from an origin node) -------------------------

  /// Stores key → value. Fails (ok = false) when routing to the key's owner
  /// gets stuck.
  OpResult put(metric::Point origin, const std::string& key, std::string value);

  /// Fetches a key's value; probes the owner first, then its replicas.
  OpResult get(metric::Point origin, const std::string& key);

  /// Removes a key from all replicas.
  OpResult erase(metric::Point origin, const std::string& key);

  /// Grid point the key hashes to.
  [[nodiscard]] metric::Point key_point(const std::string& key) const;

  /// The members that should hold `key` (owner first, then the next closest
  /// members, `replication` in total).
  [[nodiscard]] std::vector<metric::Point> owners_of(const std::string& key) const;

  /// Total key copies stored across all nodes (replicas counted).
  [[nodiscard]] std::size_t stored_copies() const noexcept;

  /// Keys held by the node at p (empty when p is vacant or stores nothing).
  [[nodiscard]] std::vector<std::string> keys_at(metric::Point p) const;

  /// Number of registered keys whose value no longer exists on any node
  /// (lost to crashes that outran the replication factor).
  [[nodiscard]] std::size_t lost_keys() const;

 private:
  struct RouteOutcome {
    bool ok = false;
    metric::Point arrived = -1;
    std::size_t hops = 0;
  };

  /// Greedy two-sided walk over the live overlay toward `target`; repairs
  /// dangling links on the way when self_heal is on.
  RouteOutcome route_to(metric::Point from, metric::Point target);

  /// Owner set of a grid point: the `replication` members closest to it.
  [[nodiscard]] std::vector<metric::Point> owners_of_point(metric::Point kp) const;

  /// Stores a copy and maintains the holder index.
  void store_copy(metric::Point holder, const std::string& key,
                  const std::string& value);
  /// Drops a copy and maintains the holder index.
  void drop_copy(metric::Point holder, const std::string& key);

  /// Re-establishes the owner-set invariant for every key hashing into the
  /// neighbourhood of position p (called after membership changes at p).
  void rebalance_near(metric::Point p);

  /// Restores the invariant for one key; returns false when the value was
  /// lost entirely.
  bool fix_key(const std::string& key, metric::Point kp);

  [[nodiscard]] std::size_t effective_ttl() const noexcept;

  metric::Space1D space_;
  DhtConfig config_;
  core::DynamicOverlay overlay_;
  util::Rng rng_;
  /// Per-node storage: node position -> (key -> value).
  std::unordered_map<metric::Point, std::unordered_map<std::string, std::string>>
      store_;
  /// key -> positions currently holding a copy (kept exactly in sync with
  /// store_ by store_copy/drop_copy).
  std::unordered_map<std::string, std::vector<metric::Point>> holders_;
  /// key point -> keys hashing there (drives neighbourhood rebalancing).
  std::map<metric::Point, std::set<std::string>> keys_by_point_;
};

}  // namespace p2p::dht
