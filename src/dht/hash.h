// Key hashing: K → V, the resource embedding of §2.
//
// "We assume a hash function h : K → V such that resource r maps to the
// point v = h(key(r)) in a metric space" — implemented as FNV-1a over the
// key bytes followed by a splitmix64 finalizer (so short, similar keys still
// spread evenly over the grid), reduced modulo the grid size.
#pragma once

#include <cstdint>
#include <string_view>

#include "metric/space.h"
#include "metric/space1d.h"

namespace p2p::dht {

/// 64-bit FNV-1a of arbitrary bytes.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Well-mixed 64-bit digest of a key (FNV-1a + splitmix64 finalizer).
[[nodiscard]] std::uint64_t key_digest(std::string_view key) noexcept;

/// Grid point a key hashes to in a space of `grid_size` points.
/// Precondition: grid_size >= 1.
[[nodiscard]] metric::Point point_for_key(std::string_view key,
                                          std::uint64_t grid_size);

/// Metric-generic embedding: the point a key hashes to in `space` — line,
/// ring, or flattened torus alike (the digest reduced over the point count;
/// replica placement interprets the point under the space's own metric).
/// This is the mapping the replicated object store (src/store) places by.
[[nodiscard]] metric::Point point_for_key(std::string_view key,
                                          const metric::Space& space);

}  // namespace p2p::dht
