#include "dht/hash.h"

#include "util/require.h"
#include "util/rng.h"

namespace p2p::dht {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x00000100000001b3ULL;
  }
  return h;
}

std::uint64_t key_digest(std::string_view key) noexcept {
  return util::splitmix64(fnv1a64(key));
}

metric::Point point_for_key(std::string_view key, std::uint64_t grid_size) {
  util::require(grid_size >= 1, "point_for_key: grid_size must be >= 1");
  return static_cast<metric::Point>(key_digest(key) % grid_size);
}

metric::Point point_for_key(std::string_view key, const metric::Space& space) {
  return point_for_key(key, space.size());
}

}  // namespace p2p::dht
