#include "dht/dht.h"

#include <algorithm>
#include <cmath>

#include "dht/hash.h"
#include "util/require.h"

namespace p2p::dht {

Dht::Dht(metric::Space1D space, DhtConfig cfg, std::uint64_t seed)
    : space_(space),
      config_(cfg),
      overlay_(space, cfg.overlay),
      rng_(util::splitmix64(seed)) {
  util::require(cfg.replication >= 1, "Dht: replication must be >= 1");
}

std::size_t Dht::effective_ttl() const noexcept {
  if (config_.ttl != 0) return config_.ttl;
  const double lg =
      std::ceil(std::log2(static_cast<double>(overlay_.node_count()) + 2.0));
  const auto budget = static_cast<std::size_t>(8.0 * lg * lg);
  return budget < 64 ? 64 : budget;
}

metric::Point Dht::key_point(const std::string& key) const {
  return point_for_key(key, space_.size());
}

std::vector<metric::Point> Dht::owners_of_point(metric::Point kp) const {
  // The owner is the nearest member; further replicas are the next-closest
  // members, found by expanding outward through successors/predecessors.
  std::vector<metric::Point> owners;
  if (overlay_.node_count() == 0) return owners;
  const std::size_t want = std::min(config_.replication, overlay_.node_count());
  metric::Point right = overlay_.occupied(kp) ? kp : overlay_.successor(kp);
  metric::Point left = overlay_.predecessor(kp);
  while (owners.size() < want) {
    const bool right_ok = right >= 0 &&
                          std::find(owners.begin(), owners.end(), right) == owners.end();
    const bool left_ok = left >= 0 &&
                         std::find(owners.begin(), owners.end(), left) == owners.end();
    if (!right_ok && !left_ok) break;
    if (right_ok &&
        (!left_ok || space_.distance(right, kp) <= space_.distance(left, kp))) {
      owners.push_back(right);
      right = overlay_.successor(right);
    } else {
      owners.push_back(left);
      left = overlay_.predecessor(left);
    }
  }
  return owners;
}

std::vector<metric::Point> Dht::owners_of(const std::string& key) const {
  return owners_of_point(key_point(key));
}

Dht::RouteOutcome Dht::route_to(metric::Point from, metric::Point target) {
  RouteOutcome out;
  util::require(overlay_.occupied(from), "route_to: origin is not a member");
  const metric::Point owner = overlay_.nearest_member(target, /*exclude=*/-1);
  if (owner < 0) return out;

  // Route toward the owner's position (the paper routes "to v itself", but
  // the search ends at the closest occupied vertex; aiming at the owner
  // avoids distance ties against the raw key point).
  metric::Point current = from;
  std::size_t budget = effective_ttl();
  while (budget-- > 0) {
    if (current == owner) {
      out.ok = true;
      out.arrived = current;
      return out;
    }
    const metric::Distance here = space_.distance(current, owner);
    metric::Point best = -1;
    metric::Distance best_d = here;
    const auto consider = [&](metric::Point v) {
      if (v < 0 || v == current || !overlay_.occupied(v)) return;
      const metric::Distance d = space_.distance(v, owner);
      if (d < best_d || (d == best_d && best >= 0 && v < best)) {
        best = v;
        best_d = d;
      }
    };
    consider(overlay_.successor(current));
    consider(overlay_.predecessor(current));
    bool saw_dangling = false;
    // for_each_long_link avoids materializing a vector per hop.
    overlay_.for_each_long_link(current, [&](const metric::Point v) {
      if (!overlay_.occupied(v)) {
        saw_dangling = true;
        return;
      }
      consider(v);
    });
    if (saw_dangling && config_.self_heal) {
      // Amortized, localized repair: the routing node fixes its own dangling
      // links now that a search has discovered them.
      overlay_.repair_node(current, rng_);
    }
    if (best < 0) {
      out.arrived = current;
      return out;  // stuck
    }
    current = best;
    ++out.hops;
  }
  out.arrived = current;
  return out;  // budget exhausted
}

void Dht::store_copy(metric::Point holder, const std::string& key,
                     const std::string& value) {
  auto& bucket = store_[holder];
  const bool fresh = !bucket.contains(key);
  bucket[key] = value;
  if (fresh) holders_[key].push_back(holder);
}

void Dht::drop_copy(metric::Point holder, const std::string& key) {
  const auto node_it = store_.find(holder);
  if (node_it == store_.end()) return;
  if (node_it->second.erase(key) == 0) return;
  auto& hv = holders_[key];
  const auto it = std::find(hv.begin(), hv.end(), holder);
  if (it != hv.end()) {
    *it = hv.back();
    hv.pop_back();
  }
}

OpResult Dht::put(metric::Point origin, const std::string& key, std::string value) {
  OpResult res;
  const metric::Point kp = key_point(key);
  const RouteOutcome route = route_to(origin, kp);
  res.hops = route.hops;
  if (!route.ok) return res;

  keys_by_point_[kp].insert(key);
  for (const metric::Point holder : owners_of_point(kp)) {
    store_copy(holder, key, value);
    if (holder != route.arrived) ++res.hops;  // replica copy message
  }
  res.ok = true;
  res.value = std::move(value);
  return res;
}

OpResult Dht::get(metric::Point origin, const std::string& key) {
  OpResult res;
  const metric::Point kp = key_point(key);
  const RouteOutcome route = route_to(origin, kp);
  res.hops = route.hops;
  if (!route.ok) return res;

  // The owner answers directly; on a miss, probe the rest of the owner set
  // (one message each) — replicas cover an owner that crashed after a put.
  const auto answer_from = [&](metric::Point holder) -> bool {
    const auto node_it = store_.find(holder);
    if (node_it == store_.end()) return false;
    const auto it = node_it->second.find(key);
    if (it == node_it->second.end()) return false;
    res.ok = true;
    res.value = it->second;
    return true;
  };
  if (answer_from(route.arrived)) return res;
  for (const metric::Point holder : owners_of_point(kp)) {
    if (holder == route.arrived) continue;
    ++res.hops;
    if (answer_from(holder)) return res;
  }
  return res;  // routed fine, but no replica holds the key
}

OpResult Dht::erase(metric::Point origin, const std::string& key) {
  OpResult res;
  const metric::Point kp = key_point(key);
  const RouteOutcome route = route_to(origin, kp);
  res.hops = route.hops;
  if (!route.ok) return res;

  // Erase every live copy (the holder index knows them all).
  const auto hv_it = holders_.find(key);
  if (hv_it != holders_.end()) {
    const std::vector<metric::Point> holders = hv_it->second;  // copy: mutation
    for (const metric::Point holder : holders) {
      if (holder != route.arrived) ++res.hops;
      drop_copy(holder, key);
    }
  }
  holders_.erase(key);
  const auto kb_it = keys_by_point_.find(kp);
  if (kb_it != keys_by_point_.end()) {
    kb_it->second.erase(key);
    if (kb_it->second.empty()) keys_by_point_.erase(kb_it);
  }
  res.ok = true;
  return res;
}

bool Dht::fix_key(const std::string& key, metric::Point kp) {
  const auto owners = owners_of_point(kp);
  if (owners.empty()) return false;
  const auto hv_it = holders_.find(key);
  if (hv_it == holders_.end() || hv_it->second.empty()) return false;  // lost

  // Any surviving copy serves as the source.
  const metric::Point source = hv_it->second.front();
  const std::string value = store_[source][key];

  // Copy to owners that lack it, then drop stragglers.
  for (const metric::Point holder : owners) store_copy(holder, key, value);
  const std::vector<metric::Point> holders = holders_[key];  // copy: mutation
  for (const metric::Point holder : holders) {
    if (std::find(owners.begin(), owners.end(), holder) == owners.end()) {
      drop_copy(holder, key);
    }
  }
  return true;
}

void Dht::rebalance_near(metric::Point p) {
  // Only keys hashing into the neighbourhood spanned by the `replication`
  // members on each side of p can change owner sets. Walk that span, then
  // fix every key whose point falls inside it.
  if (overlay_.node_count() == 0 || keys_by_point_.empty()) return;

  metric::Point lo = p, hi = p;
  for (std::size_t i = 0; i <= config_.replication; ++i) {
    const metric::Point prev = overlay_.predecessor(lo);
    if (prev < 0 || prev == hi) break;  // wrapped all the way around
    lo = prev;
    const metric::Point next = overlay_.successor(hi);
    if (next < 0 || next == lo) break;
    hi = next;
  }

  const auto fix_range = [&](metric::Point a, metric::Point b) {
    for (auto it = keys_by_point_.lower_bound(a);
         it != keys_by_point_.end() && it->first <= b; ++it) {
      for (const std::string& key : it->second) fix_key(key, it->first);
    }
  };
  if (lo <= hi) {
    fix_range(lo, hi);
  } else {
    // Ring wraparound: two sub-ranges.
    fix_range(lo, static_cast<metric::Point>(space_.size()) - 1);
    fix_range(0, hi);
  }
}

void Dht::add_node(metric::Point p) {
  overlay_.join(p, rng_);
  rebalance_near(p);
}

void Dht::remove_node(metric::Point p) {
  util::require(overlay_.occupied(p), "remove_node: position not occupied");
  overlay_.leave(p, rng_);
  // Graceful: the departing node's copies are still readable during handoff.
  rebalance_near(p);
  // Drop whatever it still holds, maintaining the holder index.
  const auto it = store_.find(p);
  if (it != store_.end()) {
    std::vector<std::string> keys;
    keys.reserve(it->second.size());
    for (const auto& [key, value] : it->second) keys.push_back(key);
    for (const std::string& key : keys) drop_copy(p, key);
    store_.erase(p);
  }
}

void Dht::crash_node(metric::Point p) {
  util::require(overlay_.occupied(p), "crash_node: position not occupied");
  overlay_.crash(p);
  // Its data is gone *before* anyone can copy from it.
  const auto it = store_.find(p);
  if (it != store_.end()) {
    std::vector<std::string> keys;
    keys.reserve(it->second.size());
    for (const auto& [key, value] : it->second) keys.push_back(key);
    for (const std::string& key : keys) drop_copy(p, key);
    store_.erase(p);
  }
  rebalance_near(p);
}

std::size_t Dht::stored_copies() const noexcept {
  std::size_t total = 0;
  for (const auto& [node, bucket] : store_) total += bucket.size();
  return total;
}

std::vector<std::string> Dht::keys_at(metric::Point p) const {
  std::vector<std::string> keys;
  const auto it = store_.find(p);
  if (it == store_.end()) return keys;
  keys.reserve(it->second.size());
  for (const auto& [key, value] : it->second) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::size_t Dht::lost_keys() const {
  std::size_t lost = 0;
  for (const auto& [point, keys] : keys_by_point_) {
    for (const std::string& key : keys) {
      const auto it = holders_.find(key);
      if (it == holders_.end() || it->second.empty()) ++lost;
    }
  }
  return lost;
}

}  // namespace p2p::dht
