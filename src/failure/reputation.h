// Per-neighbour reputation from observed route outcomes (ROADMAP item 2:
// "per-neighbor reputation scores updated from observed route outcomes ...
// folded into candidate selection as a tie-break or penalty mask").
//
// Crash failures are visible (FailureView); Byzantine misbehaviour is not —
// a blackhole or misrouting node looks alive to every liveness probe. What
// *is* locally observable is how searches fare: a walk that dies at a hop, a
// hop that destroys greedy progress, a search that times out. ReputationTable
// accumulates those observations into a per-node penalty score and exposes
// the derived binary verdict as a byte sideband (`trusted_bytes()`, 1 =
// trusted) shaped exactly like FailureView::node_alive_bytes(): the masked
// AVX-512 candidate scan gathers it per 8-candidate group the same way it
// gathers node liveness, so distrust rides the existing kernel shape, and
// the scalar selection path reads the same byte — the two stay bit-identical
// by construction.
//
// Graceful degradation, not blacklisting: penalties saturate at a cap and
// decay multiplicatively over epochs (`decay_epoch`), so a node that was
// corrupted and later healed — or an innocent that absorbed a few misrouted
// walks — recovers trust after a bounded quiet period. Distrust only ever
// *biases* selection; the SecureRouter falls back to distrusted candidates
// when no trusted one exists, so a mostly-distrusted neighbourhood degrades
// to plain greedy instead of going dark.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/overlay_graph.h"

namespace p2p::failure {

/// A locally observable search outcome attributed to one node.
enum class Observation : std::uint8_t {
  kDelivered,  ///< the node lay on a walk that reached its target (reward)
  kDiedAtHop,  ///< a walk was handed to the node and never seen again
  kRegressed,  ///< the node forwarded a message *away* from its goal
  kTimedOut,   ///< a walk's TTL expired while the node held the message
};

/// Scoring knobs. Penalties accumulate per node; a node is distrusted while
/// its penalty is at or above `distrust_threshold`.
struct ReputationConfig {
  /// kDiedAtHop — strong but ambiguous (an innocent crash also explains it).
  double penalty_died = 3.0;
  /// kRegressed — certain evidence: honest forwarding is strictly closer, so
  /// only a misrouting node can move a message away from its goal.
  double penalty_regressed = 3.0;
  double penalty_timeout = 0.25;  ///< kTimedOut — weak (end node is often innocent)
  double reward_delivered = 0.5;  ///< kDelivered — subtracted, floor 0
  double distrust_threshold = 4.0;
  /// Multiplier applied to every penalty by decay_epoch(); 0.5 halves the
  /// grudge per decay epoch so healed nodes recover in O(log cap) epochs.
  double decay = 0.5;
  /// Penalty saturation: bounds recovery time for long-lived attackers.
  double max_penalty = 16.0;
};

/// Penalty scores + derived distrust sideband over one graph's nodes.
class ReputationTable {
 public:
  /// `g` must outlive the table. Starts with every node trusted, penalty 0.
  explicit ReputationTable(const graph::OverlayGraph& g,
                           ReputationConfig config = {});

  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const ReputationConfig& config() const noexcept { return config_; }

  /// Folds one observation into u's penalty and re-derives its trust byte.
  void record(graph::NodeId u, Observation what);

  /// One reputation epoch: multiplies every non-zero penalty by
  /// config().decay (values below a fixed epsilon snap to 0) and re-derives
  /// trust. O(nodes with non-zero penalty), not O(n).
  void decay_epoch();

  /// Forgets everything: all penalties 0, every node trusted.
  void reset();

  [[nodiscard]] double penalty(graph::NodeId u) const noexcept {
    assert(u < penalty_.size());
    return penalty_[u];
  }

  /// The binary verdict the selection mask applies. Reads the sideband byte,
  /// so scalar selection and the SIMD gather agree by construction.
  [[nodiscard]] bool trusted(graph::NodeId u) const noexcept {
    assert(u < graph_->size());
    return trusted_byte_[u] != 0;
  }

  /// Byte-addressable trust sideband: bytes[u] == 1 iff u is trusted. Padded
  /// past size() (the SIMD gather loads 4 bytes per lane at arbitrary node
  /// offsets, exactly like FailureView::node_alive_bytes()). Always valid.
  [[nodiscard]] const std::uint8_t* trusted_bytes() const noexcept {
    return trusted_byte_.data();
  }

  /// Number of currently distrusted nodes — the routers' fast-path gate:
  /// while 0 the selection mask is a no-op and never dispatched.
  [[nodiscard]] std::size_t distrusted_count() const noexcept {
    return distrusted_count_;
  }

  /// Reputation epochs elapsed (decay_epoch() calls since construction/reset).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  /// Sets u's penalty and maintains the trust byte, the distrust count and
  /// the touched list (nodes with non-zero penalty, each listed once).
  void set_penalty(graph::NodeId u, double value);

  /// Decayed penalties below this snap to zero (drops the node from the
  /// touched list, keeping decay_epoch O(penalized)).
  static constexpr double kPenaltyEpsilon = 1.0 / 1024.0;
  /// Gather lanes read 4 bytes at trusted_byte_[v]; padding keeps the load
  /// in bounds for v = size()-1 (same contract as FailureView's sideband).
  static constexpr std::size_t kBytePad = 8;

  const graph::OverlayGraph* graph_;
  ReputationConfig config_;
  std::vector<double> penalty_;
  std::vector<std::uint8_t> trusted_byte_;  // 1 = trusted; padded past size()
  /// Nodes with penalty > 0 (unordered, no duplicates): decay_epoch's
  /// worklist. tracked_[u] mirrors membership.
  std::vector<graph::NodeId> touched_;
  std::vector<graph::NodeId> scratch_;  // decay_epoch worklist reuse
  std::vector<std::uint8_t> tracked_;
  std::size_t distrusted_count_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace p2p::failure
