#include "failure/failure_model.h"

#include "util/require.h"

namespace p2p::failure {

FailureView FailureView::all_alive(const graph::OverlayGraph& g) {
  FailureView view(g);
  view.alive_count_ = g.size();
  return view;
}

FailureView FailureView::with_node_failures(const graph::OverlayGraph& g, double p_fail,
                                            util::Rng& rng) {
  util::require(p_fail >= 0.0 && p_fail <= 1.0,
                "with_node_failures: p_fail must be in [0,1]");
  FailureView view(g);
  view.node_dead_.assign(g.size(), 0);
  view.alive_count_ = g.size();
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    if (rng.next_bool(p_fail)) {
      view.node_dead_[u] = 1;
      --view.alive_count_;
    }
  }
  return view;
}

FailureView FailureView::with_link_failures(const graph::OverlayGraph& g,
                                            double p_present, util::Rng& rng) {
  util::require(p_present >= 0.0 && p_present <= 1.0,
                "with_link_failures: p_present must be in [0,1]");
  FailureView view(g);
  view.alive_count_ = g.size();
  view.link_dead_.resize(g.size());
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    const std::size_t degree = g.out_degree(u);
    const std::size_t shorts = g.short_degree(u);
    view.link_dead_[u].assign(degree, 0);
    for (std::size_t i = shorts; i < degree; ++i) {
      if (!rng.next_bool(p_present)) view.link_dead_[u][i] = 1;
    }
  }
  return view;
}

graph::NodeId FailureView::random_alive(util::Rng& rng) const {
  util::require(alive_count_ > 0, "random_alive: no alive nodes");
  // Rejection sampling is O(n/alive) expected; fall back to a scan when the
  // alive fraction is tiny so the draw stays bounded.
  const std::size_t n = graph_->size();
  if (alive_count_ * 8 >= n) {
    for (;;) {
      const auto u = static_cast<graph::NodeId>(rng.next_below(n));
      if (node_alive(u)) return u;
    }
  }
  std::size_t index = static_cast<std::size_t>(rng.next_below(alive_count_));
  for (graph::NodeId u = 0; u < n; ++u) {
    if (node_alive(u)) {
      if (index == 0) return u;
      --index;
    }
  }
  return graph::kInvalidNode;  // unreachable: alive_count_ > 0
}

void FailureView::kill_node(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "kill_node: node out of range");
  if (node_dead_.empty()) node_dead_.assign(graph_->size(), 0);
  if (node_dead_[u] == 0) {
    node_dead_[u] = 1;
    --alive_count_;
  }
}

void FailureView::revive_node(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "revive_node: node out of range");
  if (node_dead_.empty()) return;
  if (node_dead_[u] == 1) {
    node_dead_[u] = 0;
    ++alive_count_;
  }
}

void FailureView::kill_link(graph::NodeId u, std::size_t link_index) {
  util::require_in_range(u < graph_->size(), "kill_link: node out of range");
  util::require_in_range(link_index < graph_->out_degree(u),
                         "kill_link: link index out of range");
  if (link_dead_.empty()) link_dead_.resize(graph_->size());
  if (link_dead_[u].empty()) link_dead_[u].assign(graph_->out_degree(u), 0);
  link_dead_[u][link_index] = 1;
}

}  // namespace p2p::failure
