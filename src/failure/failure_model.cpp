#include "failure/failure_model.h"

#include "util/require.h"

namespace p2p::failure {

FailureView::FailureView(const graph::OverlayGraph& g)
    : graph_(&g), graph_generation_(g.structural_generation()) {}

FailureView FailureView::all_alive(const graph::OverlayGraph& g) {
  FailureView view(g);
  view.alive_count_ = g.size();
  return view;
}

FailureView FailureView::with_node_failures(const graph::OverlayGraph& g, double p_fail,
                                            util::Rng& rng) {
  util::require(p_fail >= 0.0 && p_fail <= 1.0,
                "with_node_failures: p_fail must be in [0,1]");
  FailureView view(g);
  view.alive_count_ = g.size();
  view.ensure_node_bits();
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    if (rng.next_bool(p_fail)) {
      set_bit(view.node_dead_, u);
      view.node_alive_byte_[u] = 0;
      --view.alive_count_;
    }
  }
  // A draw that killed nobody keeps the all-alive fast path.
  if (view.alive_count_ == g.size()) {
    view.node_dead_.clear();
    view.node_alive_byte_.clear();
  }
  return view;
}

FailureView FailureView::with_link_failures(const graph::OverlayGraph& g,
                                            double p_present, util::Rng& rng) {
  util::require(p_present >= 0.0 && p_present <= 1.0,
                "with_link_failures: p_present must be in [0,1]");
  FailureView view(g);
  view.alive_count_ = g.size();
  view.link_slots_ = g.edge_slots();
  // +1: guard word so link_live_word's two-word window stays in bounds.
  view.link_dead_.assign(words_for(view.link_slots_) + 1, 0);
  bool any_dead = false;
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    const std::size_t base = g.edge_base(u);
    const std::size_t degree = g.out_degree(u);
    for (std::size_t i = g.short_degree(u); i < degree; ++i) {
      if (!rng.next_bool(p_present)) {
        set_bit(view.link_dead_, base + i);
        any_dead = true;
      }
    }
  }
  if (!any_dead) view.link_dead_.clear();
  return view;
}

graph::NodeId FailureView::random_alive(util::Rng& rng) const {
  util::require(alive_count_ > 0, "random_alive: no alive nodes");
  // Rejection sampling is O(n/alive) expected; fall back to a scan when the
  // alive fraction is tiny so the draw stays bounded.
  const std::size_t n = graph_->size();
  if (alive_count_ * 8 >= n) {
    for (;;) {
      const auto u = static_cast<graph::NodeId>(rng.next_below(n));
      if (node_alive(u)) return u;
    }
  }
  std::size_t index = static_cast<std::size_t>(rng.next_below(alive_count_));
  for (graph::NodeId u = 0; u < n; ++u) {
    if (node_alive(u)) {
      if (index == 0) return u;
      --index;
    }
  }
  return graph::kInvalidNode;  // unreachable: alive_count_ > 0
}

void FailureView::kill_node(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "kill_node: node out of range");
  ensure_node_bits();
  if (!test_bit(node_dead_, u)) {
    set_bit(node_dead_, u);
    node_alive_byte_[u] = 0;
    --alive_count_;
  }
}

void FailureView::revive_node(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "revive_node: node out of range");
  if (node_dead_.empty()) return;
  if (test_bit(node_dead_, u)) {
    reset_bit(node_dead_, u);
    node_alive_byte_[u] = 1;
    ++alive_count_;
  }
}

void FailureView::ensure_node_bits() {
  if (!node_dead_.empty()) return;
  node_dead_.assign(words_for(graph_->size()), 0);
  node_alive_byte_.assign(graph_->size() + kNodeBytePad, 1);
}

void FailureView::ensure_link_bits() {
  if (link_dead_.empty()) {
    // First link bit: key the bitset to the graph's current slot layout.
    // +1: guard word so link_live_word's two-word window stays in bounds.
    graph_generation_ = graph_->structural_generation();
    link_slots_ = graph_->edge_slots();
    link_dead_.assign(words_for(link_slots_) + 1, 0);
    return;
  }
  // Structural growth moves flat slots, silently mis-keying every bit
  // recorded so far — fail loudly instead (see the class comment: views
  // holding link bits must be rebuilt after a slot-moving mutation).
  util::require(graph_->structural_generation() == graph_generation_,
                "FailureView: graph changed structurally; rebuild the view");
}

void FailureView::kill_link(graph::NodeId u, std::size_t link_index) {
  util::require_in_range(u < graph_->size(), "kill_link: node out of range");
  util::require_in_range(link_index < graph_->out_degree(u),
                         "kill_link: link index out of range");
  ensure_link_bits();
  set_bit(link_dead_, graph_->edge_base(u) + link_index);
}

void FailureView::revive_link(graph::NodeId u, std::size_t link_index) {
  util::require_in_range(u < graph_->size(), "revive_link: node out of range");
  util::require_in_range(link_index < graph_->out_degree(u),
                         "revive_link: link index out of range");
  if (link_dead_.empty()) return;
  ensure_link_bits();
  reset_bit(link_dead_, graph_->edge_base(u) + link_index);
}

void FailureView::kill_link_slot(std::size_t slot) {
  util::require_in_range(slot < graph_->edge_slots(),
                         "kill_link_slot: slot out of range");
  ensure_link_bits();
  set_bit(link_dead_, slot);
}

void FailureView::revive_link_slot(std::size_t slot) {
  util::require_in_range(slot < graph_->edge_slots(),
                         "revive_link_slot: slot out of range");
  if (link_dead_.empty()) return;
  ensure_link_bits();
  reset_bit(link_dead_, slot);
}

void FailureView::apply(const FailureDelta& delta) {
  util::require(link_dead_.empty() ||
                    graph_->structural_generation() == graph_generation_,
                "FailureView::apply: graph changed structurally; rebuild the view");
  if (!delta.link_kills.empty() || !delta.link_revives.empty()) {
    // Delta link slots are keyed to the layout this view was created
    // against; unlike the slot-computing mutators (which may re-key a fresh
    // bitset to the current layout), a stale generation cannot be re-stamped
    // away here — the delta's slot basis is unknowable.
    util::require(graph_->structural_generation() == graph_generation_,
                  "FailureView::apply: graph changed structurally since the "
                  "delta's slots were recorded");
    ensure_link_bits();
  }
  if (!delta.node_kills.empty()) ensure_node_bits();
  for (const graph::NodeId u : delta.node_kills) {
    util::require_in_range(u < graph_->size(), "apply: node out of range");
    util::require(!test_bit(node_dead_, u),
                  "apply: kill of a dead node (delta not normalized)");
    set_bit(node_dead_, u);
    node_alive_byte_[u] = 0;
    --alive_count_;
  }
  for (const graph::NodeId u : delta.node_revives) {
    util::require_in_range(u < graph_->size(), "apply: node out of range");
    util::require(!node_dead_.empty() && test_bit(node_dead_, u),
                  "apply: revive of a live node (delta not normalized)");
    reset_bit(node_dead_, u);
    node_alive_byte_[u] = 1;
    ++alive_count_;
  }
  for (const std::uint32_t slot : delta.link_kills) {
    util::require_in_range(slot < link_slots_, "apply: link slot out of range");
    util::require(!test_bit(link_dead_, slot),
                  "apply: kill of a dead link (delta not normalized)");
    set_bit(link_dead_, slot);
  }
  for (const std::uint32_t slot : delta.link_revives) {
    util::require_in_range(slot < link_slots_, "apply: link slot out of range");
    util::require(test_bit(link_dead_, slot),
                  "apply: revive of a live link (delta not normalized)");
    reset_bit(link_dead_, slot);
  }
  ++epoch_;
}

void FailureView::revert(const FailureDelta& delta) {
  util::require(epoch_ > 0, "revert: already at epoch 0");
  util::require(link_dead_.empty() ||
                    graph_->structural_generation() == graph_generation_,
                "FailureView::revert: graph changed structurally; rebuild the view");
  // The inverse batch: what apply killed gets revived and vice versa. The
  // normalization requires mirror apply's, so a revert with the wrong delta
  // (or out of order) fails loudly instead of silently corrupting the view.
  for (const graph::NodeId u : delta.node_kills) {
    util::require_in_range(u < graph_->size(), "revert: node out of range");
    util::require(!node_dead_.empty() && test_bit(node_dead_, u),
                  "revert: node not dead (wrong delta for this epoch)");
    reset_bit(node_dead_, u);
    node_alive_byte_[u] = 1;
    ++alive_count_;
  }
  for (const graph::NodeId u : delta.node_revives) {
    util::require_in_range(u < graph_->size(), "revert: node out of range");
    ensure_node_bits();
    util::require(!test_bit(node_dead_, u),
                  "revert: node not alive (wrong delta for this epoch)");
    set_bit(node_dead_, u);
    node_alive_byte_[u] = 0;
    --alive_count_;
  }
  if (!delta.link_kills.empty() || !delta.link_revives.empty()) {
    // See apply: delta slots cannot be re-keyed to a changed layout.
    util::require(graph_->structural_generation() == graph_generation_,
                  "FailureView::revert: graph changed structurally since the "
                  "delta's slots were recorded");
    ensure_link_bits();
  }
  for (const std::uint32_t slot : delta.link_kills) {
    util::require_in_range(slot < link_slots_, "revert: link slot out of range");
    util::require(test_bit(link_dead_, slot),
                  "revert: link not dead (wrong delta for this epoch)");
    reset_bit(link_dead_, slot);
  }
  for (const std::uint32_t slot : delta.link_revives) {
    util::require_in_range(slot < link_slots_, "revert: link slot out of range");
    util::require(!test_bit(link_dead_, slot),
                  "revert: link not alive (wrong delta for this epoch)");
    set_bit(link_dead_, slot);
  }
  --epoch_;
}

}  // namespace p2p::failure
