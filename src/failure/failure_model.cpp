#include "failure/failure_model.h"

#include "util/require.h"

namespace p2p::failure {

FailureView FailureView::all_alive(const graph::OverlayGraph& g) {
  FailureView view(g);
  view.alive_count_ = g.size();
  return view;
}

FailureView FailureView::with_node_failures(const graph::OverlayGraph& g, double p_fail,
                                            util::Rng& rng) {
  util::require(p_fail >= 0.0 && p_fail <= 1.0,
                "with_node_failures: p_fail must be in [0,1]");
  FailureView view(g);
  view.node_dead_.assign(words_for(g.size()), 0);
  view.alive_count_ = g.size();
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    if (rng.next_bool(p_fail)) {
      set_bit(view.node_dead_, u);
      --view.alive_count_;
    }
  }
  // A draw that killed nobody keeps the all-alive fast path.
  if (view.alive_count_ == g.size()) view.node_dead_.clear();
  return view;
}

FailureView FailureView::with_link_failures(const graph::OverlayGraph& g,
                                            double p_present, util::Rng& rng) {
  util::require(p_present >= 0.0 && p_present <= 1.0,
                "with_link_failures: p_present must be in [0,1]");
  FailureView view(g);
  view.alive_count_ = g.size();
  view.link_slots_ = g.edge_slots();
  view.link_dead_.assign(words_for(view.link_slots_), 0);
  bool any_dead = false;
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    const std::size_t base = g.edge_base(u);
    const std::size_t degree = g.out_degree(u);
    for (std::size_t i = g.short_degree(u); i < degree; ++i) {
      if (!rng.next_bool(p_present)) {
        set_bit(view.link_dead_, base + i);
        any_dead = true;
      }
    }
  }
  if (!any_dead) view.link_dead_.clear();
  return view;
}

graph::NodeId FailureView::random_alive(util::Rng& rng) const {
  util::require(alive_count_ > 0, "random_alive: no alive nodes");
  // Rejection sampling is O(n/alive) expected; fall back to a scan when the
  // alive fraction is tiny so the draw stays bounded.
  const std::size_t n = graph_->size();
  if (alive_count_ * 8 >= n) {
    for (;;) {
      const auto u = static_cast<graph::NodeId>(rng.next_below(n));
      if (node_alive(u)) return u;
    }
  }
  std::size_t index = static_cast<std::size_t>(rng.next_below(alive_count_));
  for (graph::NodeId u = 0; u < n; ++u) {
    if (node_alive(u)) {
      if (index == 0) return u;
      --index;
    }
  }
  return graph::kInvalidNode;  // unreachable: alive_count_ > 0
}

void FailureView::kill_node(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "kill_node: node out of range");
  if (node_dead_.empty()) node_dead_.assign(words_for(graph_->size()), 0);
  if (!test_bit(node_dead_, u)) {
    set_bit(node_dead_, u);
    --alive_count_;
  }
}

void FailureView::revive_node(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "revive_node: node out of range");
  if (node_dead_.empty()) return;
  if (test_bit(node_dead_, u)) {
    reset_bit(node_dead_, u);
    ++alive_count_;
  }
}

void FailureView::kill_link(graph::NodeId u, std::size_t link_index) {
  util::require_in_range(u < graph_->size(), "kill_link: node out of range");
  util::require_in_range(link_index < graph_->out_degree(u),
                         "kill_link: link index out of range");
  if (link_dead_.empty()) {
    link_slots_ = graph_->edge_slots();
    link_dead_.assign(words_for(link_slots_), 0);
  } else {
    // Structural growth moves flat slots, silently mis-keying every bit
    // recorded so far — fail loudly instead (see the class comment: views
    // must be rebuilt after a slot-moving mutation).
    util::require(graph_->edge_slots() == link_slots_,
                  "kill_link: graph changed structurally; rebuild the view");
  }
  set_bit(link_dead_, graph_->edge_base(u) + link_index);
}

}  // namespace p2p::failure
