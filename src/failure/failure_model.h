// Failure models over an overlay graph (§4.3.3–§4.3.4, §6).
//
// A FailureView is an immutable-graph overlay recording which nodes and which
// individual links are currently dead. Views are cheap relative to graph
// construction, so one built network can serve many failure draws (exactly
// how the paper's experiments run: "the network is set up afresh, and a
// fraction p of the nodes fail").
//
// Liveness is stored in packed 64-bit word bitsets — one bit per node and
// one bit per CSR link slot (keyed by OverlayGraph::edge_base(u) + i) — so
// the router's inner loop pays one shift-and-mask per query and the common
// all-alive case is a null check. Views key link bits by flat slot index:
// after a structural graph mutation that moves slots (see overlay_graph.h),
// a view holding link bits must be rebuilt — an invariant enforced against
// the graph's structural generation counter: once link bits exist, mutators
// throw and (debug builds) queries assert when the graph has structurally
// changed since the bits were allocated. Views without link bits (the
// all-alive fast path, node-only failures) have no slot-keyed state and stay
// valid across growth. replace_long_link and clear_links never move slots.
//
// Views also carry an *epoch*: a cursor into a churn::ChurnLog delta log.
// apply(delta) / revert(delta) flip exactly the bits a FailureDelta lists —
// O(changed bits), the incremental alternative to an O(n) rebuild — and move
// the epoch forward/backward by one. Manual kill_/revive_ calls leave the
// epoch untouched (they are not part of any log).
//
// Three factory models:
//  * with_link_failures(p)  — each *long-distance* link is independently dead
//    with probability 1-p_present; ±1 links never fail (§4.3.3 assumes "the
//    links to the immediate neighbours are always present").
//  * with_node_failures(p)  — each node is dead independently with
//    probability p (§4.3.4.2 / §6).
//  * all_alive()            — the failure-free baseline.
//
// Binomial node presence (§4.3.4.1) is *not* a view: absent nodes never join
// the graph at all, so it lives in graph::GraphBuilder (BuildSpec::presence).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/overlay_graph.h"
#include "util/arena.h"
#include "util/rng.h"

namespace p2p::failure {

/// One epoch's batch of liveness flips, stamped with its virtual time.
///
/// A delta is *normalized*: every listed node/link is a real state change
/// relative to the epoch before it (no killing the dead, no reviving the
/// living), which makes apply and revert exact inverses. churn::ChurnLog is
/// the sanctioned producer; FailureView::apply/revert enforce normalization.
struct FailureDelta {
  /// Virtual time (sim::SimTime milliseconds) the batch takes effect.
  double when = 0.0;
  std::vector<graph::NodeId> node_kills;
  std::vector<graph::NodeId> node_revives;
  /// Flat CSR slots (OverlayGraph::edge_base(u) + link_index).
  std::vector<std::uint32_t> link_kills;
  std::vector<std::uint32_t> link_revives;

  [[nodiscard]] bool empty() const noexcept {
    return node_kills.empty() && node_revives.empty() && link_kills.empty() &&
           link_revives.empty();
  }
  [[nodiscard]] std::size_t change_count() const noexcept {
    return node_kills.size() + node_revives.size() + link_kills.size() +
           link_revives.size();
  }
};

/// Records node/link aliveness for one failure scenario over a fixed graph.
class FailureView {
 public:
  /// Everything alive.
  [[nodiscard]] static FailureView all_alive(const graph::OverlayGraph& g);

  /// Each node dead independently with probability `p_fail` in [0,1].
  [[nodiscard]] static FailureView with_node_failures(const graph::OverlayGraph& g,
                                                      double p_fail, util::Rng& rng);

  /// Each long link dead independently with probability 1 - `p_present`;
  /// short (immediate-neighbour) links always survive.
  [[nodiscard]] static FailureView with_link_failures(const graph::OverlayGraph& g,
                                                      double p_present, util::Rng& rng);

  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }

  /// True when no node has ever been marked dead (fast-path gate: when this
  /// and links_intact() hold, every hop is usable and the router can skip
  /// per-link queries entirely).
  [[nodiscard]] bool nodes_intact() const noexcept { return node_dead_.empty(); }

  /// True when no link has ever been marked dead.
  [[nodiscard]] bool links_intact() const noexcept { return link_dead_.empty(); }

  [[nodiscard]] bool node_alive(graph::NodeId u) const noexcept {
    return node_dead_.empty() || !test_bit(node_dead_, u);
  }

  /// Aliveness of the link at `link_index` within neighbors(u).
  [[nodiscard]] bool link_alive(graph::NodeId u, std::size_t link_index) const noexcept {
    assert((link_dead_.empty() ||
            graph_->structural_generation() == graph_generation_) &&
           "FailureView: graph changed structurally; rebuild the view");
    return link_dead_.empty() ||
           !test_bit(link_dead_, graph_->edge_base(u) + link_index);
  }

  /// Aliveness of the link in flat CSR slot `slot` (= edge_base(u) + i).
  /// The router's inner loop uses this to skip the per-node base lookup.
  [[nodiscard]] bool link_alive_at(std::size_t slot) const noexcept {
    assert((link_dead_.empty() ||
            graph_->structural_generation() == graph_generation_) &&
           "FailureView: graph changed structurally; rebuild the view");
    return link_dead_.empty() || !test_bit(link_dead_, slot);
  }

  /// True when the hop u -> neighbors(u)[link_index] is usable: the link is
  /// up and the far node is alive.
  [[nodiscard]] bool hop_usable(graph::NodeId u, std::size_t link_index) const noexcept {
    return link_alive(u, link_index) &&
           node_alive(graph_->neighbors(u)[link_index]);
  }

  /// 64 link-liveness bits starting at flat CSR slot `first`: bit k is set
  /// iff slot first+k is alive. Link slots are per-node contiguous
  /// (edge_base(u)+i), so a node's whole <=64-link slice is one call and the
  /// SIMD candidate scan refetches every 64 links; bits at or past
  /// edge_slots() read as alive (a guard word keeps the two-word window in
  /// bounds). Precondition: !links_intact() and first < edge_slots().
  [[nodiscard]] std::uint64_t link_live_word(std::size_t first) const noexcept {
    assert(!link_dead_.empty() && first < link_slots_);
    assert(graph_->structural_generation() == graph_generation_ &&
           "FailureView: graph changed structurally; rebuild the view");
    const std::size_t w = first >> 6;
    const unsigned sh = static_cast<unsigned>(first & 63);
    std::uint64_t dead = link_dead_[w] >> sh;
    if (sh != 0) dead |= link_dead_[w + 1] << (64 - sh);
    return ~dead;
  }

  /// Byte-addressable node-liveness sideband: bytes[u] == 1 iff node u is
  /// alive. nullptr while nodes_intact(). The SIMD candidate scan gathers
  /// these bytes (one 4-byte load per lane at arbitrary offsets — the array
  /// is padded past size()) instead of bit-testing node_dead_ per candidate.
  [[nodiscard]] const std::uint8_t* node_alive_bytes() const noexcept {
    return node_alive_byte_.empty() ? nullptr : node_alive_byte_.data();
  }

  [[nodiscard]] std::size_t alive_count() const noexcept { return alive_count_; }

  /// Draws a uniformly random alive node. Precondition: alive_count() > 0.
  [[nodiscard]] graph::NodeId random_alive(util::Rng& rng) const;

  /// Manual failure injection (tests, churn simulations). Leaves epoch()
  /// untouched.
  void kill_node(graph::NodeId u);
  void revive_node(graph::NodeId u);
  void kill_link(graph::NodeId u, std::size_t link_index);
  void revive_link(graph::NodeId u, std::size_t link_index);
  /// Same, keyed by flat CSR slot (= edge_base(u) + link_index).
  void kill_link_slot(std::size_t slot);
  void revive_link_slot(std::size_t slot);

  /// Delta-log cursor: how many FailureDeltas have been applied on top of
  /// the state this view was created with. See churn::ChurnLog.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Applies one normalized delta batch: kills the listed nodes/links,
  /// revives the listed nodes/links, advances epoch() by one. O(changed
  /// bits). Throws if the delta is not normalized against the current state
  /// (a listed change that is a no-op means the view and the log are out of
  /// sync) or the graph changed structurally since the view was built.
  void apply(const FailureDelta& delta);

  /// Exact inverse of apply(delta): rewinds epoch() by one. Preconditions as
  /// apply, plus epoch() > 0 and `delta` being the batch that produced the
  /// current epoch.
  void revert(const FailureDelta& delta);

  /// Resident bytes of the view's bitsets and sidebands (capacity-based —
  /// the HpVector allocator maps >= 1 MiB blocks on whole huge pages).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return node_dead_.capacity() * sizeof(std::uint64_t) +
           node_alive_byte_.capacity() +
           link_dead_.capacity() * sizeof(std::uint64_t);
  }

 private:
  explicit FailureView(const graph::OverlayGraph& g);

  /// Bitset word storage: huge-page-backed once past the allocator's mmap
  /// threshold — at 1e8 nodes the node bitset alone is 12.5 MB and the link
  /// bitset ~350 MB, exactly the TLB-hostile sizes THP exists for.
  using BitWords = util::HpVector<std::uint64_t>;

  [[nodiscard]] static bool test_bit(const BitWords& bits,
                                     std::size_t i) noexcept {
    return (bits[i >> 6] >> (i & 63)) & 1u;
  }
  static void set_bit(BitWords& bits, std::size_t i) noexcept {
    bits[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  static void reset_bit(BitWords& bits, std::size_t i) noexcept {
    bits[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  static std::size_t words_for(std::size_t bits) noexcept { return (bits + 63) / 64; }

  /// Allocates the link bitset on first use, stamping the graph generation
  /// the slots are keyed against; once bits exist, throws when the graph
  /// has structurally changed since (slots would be mis-keyed).
  void ensure_link_bits();

  /// Allocates node_dead_ and the byte sideband together on first node
  /// death; the two must never exist separately (the SIMD scan trusts
  /// node_alive_bytes() whenever nodes_intact() is false).
  void ensure_node_bits();

  /// Gather lanes read 4 bytes at node_alive_byte_[v]; padding keeps the
  /// load in bounds for v = size()-1.
  static constexpr std::size_t kNodeBytePad = 8;

  const graph::OverlayGraph* graph_;
  BitWords node_dead_;  // packed, 1 = dead; empty = all alive
  /// bytes[u] == 1 iff u alive; empty exactly when node_dead_ is. Kept in
  /// lockstep by every mutator so the router can gather bytes per candidate.
  util::HpVector<std::uint8_t> node_alive_byte_;
  BitWords link_dead_;  // packed over CSR slots (+ guard word)
  std::size_t link_slots_ = 0;  // edge_slots() when link_dead_ was allocated
  std::size_t alive_count_ = 0;
  std::uint64_t epoch_ = 0;             // delta-log cursor (see apply/revert)
  std::uint64_t graph_generation_ = 0;  // structural_generation() at creation
};

}  // namespace p2p::failure
