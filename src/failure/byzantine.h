// Byzantine failure model (§7: "study the security properties of greedy
// routing schemes to see how they can be adapted to provide desirable
// properties like ... robustness against Byzantine failures").
//
// A Byzantine node participates in the protocol but misbehaves when asked to
// forward a message:
//  * kDrop     — silently discards it (blackhole);
//  * kMisroute — forwards it to a uniformly random neighbour instead of the
//    greedy choice, wasting the sender's progress (wormhole/detour attack).
//
// Crash-faulty nodes are visibly dead; Byzantine nodes look healthy, so a
// greedy sender cannot route around them proactively. The countermeasures in
// core/secure_router.h are redundant routing over diverse first hops and
// reputation-weighted candidate selection (failure/reputation.h).
//
// Membership is time-varying: an adversary corrupts and heals nodes as the
// trace plays (churn::make_byzantine_waves aims these at in-degree hubs). A
// ByzantineDelta is the Byzantine twin of failure::FailureDelta — a
// normalized epoch-stamped batch of corrupt/heal flips — and
// ByzantineSet::apply/revert move an epoch cursor exactly the way
// FailureView::apply/revert do, so crash churn and Byzantine churn replay
// through one discrete-event queue with a shared notion of time.
//
// Stale-set discipline mirrors FailureView: flags are keyed by node id over
// a snapshot of the graph's node range, so once flags exist, mutators throw
// (and debug queries assert) if the graph has structurally changed since the
// flags were allocated — rebuild the set instead of silently indexing out of
// range.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::failure {

enum class ByzantineBehavior { kDrop, kMisroute };

/// One epoch's batch of Byzantine membership flips, stamped with its virtual
/// time (sim::SimTime milliseconds). Normalized like FailureDelta: every
/// listed node is a real state change (no corrupting the corrupt, no healing
/// the honest), making apply and revert exact inverses.
struct ByzantineDelta {
  double when = 0.0;
  std::vector<graph::NodeId> corrupts;
  std::vector<graph::NodeId> heals;

  [[nodiscard]] bool empty() const noexcept {
    return corrupts.empty() && heals.empty();
  }
  [[nodiscard]] std::size_t change_count() const noexcept {
    return corrupts.size() + heals.size();
  }
};

/// The (adversary-chosen, time-varying) set of Byzantine nodes over one graph.
class ByzantineSet {
 public:
  /// No Byzantine nodes.
  [[nodiscard]] static ByzantineSet none(const graph::OverlayGraph& g);

  /// Each node turns Byzantine independently with probability `fraction`.
  [[nodiscard]] static ByzantineSet random(const graph::OverlayGraph& g,
                                           double fraction, util::Rng& rng);

  /// An explicit set of corrupted nodes (targeted placement). Ids are
  /// validated against the graph (throws std::out_of_range); duplicates are
  /// idempotent.
  [[nodiscard]] static ByzantineSet of(const graph::OverlayGraph& g,
                                       const std::vector<graph::NodeId>& nodes);

  [[nodiscard]] bool is_byzantine(graph::NodeId u) const noexcept {
    assert((flags_.empty() ||
            graph_->structural_generation() == graph_generation_) &&
           "ByzantineSet: graph changed structurally; rebuild the set");
    return !flags_.empty() && flags_[u] != 0;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }

  /// Idempotent single-node flips (manual injection; leave epoch() alone).
  /// Throw std::out_of_range for ids outside the graph and
  /// std::invalid_argument if the graph changed structurally since flags
  /// were allocated.
  void corrupt(graph::NodeId u);
  void heal(graph::NodeId u);

  /// Delta-log cursor: how many ByzantineDeltas have been applied on top of
  /// the membership this set was created with.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Applies one normalized delta batch: corrupts then heals the listed
  /// nodes, advances epoch() by one. O(changed nodes). Throws if any listed
  /// change is a no-op (the set and the schedule are out of sync), an id is
  /// out of range, or the graph changed structurally since flag allocation.
  void apply(const ByzantineDelta& delta);

  /// Exact inverse of apply(delta): rewinds epoch() by one. Preconditions as
  /// apply, plus epoch() > 0 and `delta` being the batch that produced the
  /// current epoch.
  void revert(const ByzantineDelta& delta);

 private:
  explicit ByzantineSet(const graph::OverlayGraph& g) : graph_(&g) {}

  /// Allocates flags on first corruption, stamping the structural generation
  /// the node range was snapshotted at; once flags exist, throws when the
  /// graph has structurally changed since.
  void ensure_flags();

  /// Non-idempotent single flips used by apply/revert to enforce
  /// normalization (flipping to the current state throws).
  void corrupt_checked(graph::NodeId u, const char* what);
  void heal_checked(graph::NodeId u, const char* what);

  const graph::OverlayGraph* graph_;
  std::vector<std::uint8_t> flags_;
  std::size_t count_ = 0;
  std::uint64_t epoch_ = 0;             // delta cursor (see apply/revert)
  std::uint64_t graph_generation_ = 0;  // structural_generation() at flag alloc
};

}  // namespace p2p::failure
