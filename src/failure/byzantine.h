// Byzantine failure model (§7: "study the security properties of greedy
// routing schemes to see how they can be adapted to provide desirable
// properties like ... robustness against Byzantine failures").
//
// A Byzantine node participates in the protocol but misbehaves when asked to
// forward a message:
//  * kDrop     — silently discards it (blackhole);
//  * kMisroute — forwards it to a uniformly random neighbour instead of the
//    greedy choice, wasting the sender's progress (wormhole/detour attack).
//
// Crash-faulty nodes are visibly dead; Byzantine nodes look healthy, so a
// greedy sender cannot route around them proactively. The countermeasure in
// core/secure_router.h is redundant routing over diverse first hops.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::failure {

enum class ByzantineBehavior { kDrop, kMisroute };

/// The (adversary-chosen) set of Byzantine nodes over one graph.
class ByzantineSet {
 public:
  /// No Byzantine nodes.
  [[nodiscard]] static ByzantineSet none(const graph::OverlayGraph& g);

  /// Each node turns Byzantine independently with probability `fraction`.
  [[nodiscard]] static ByzantineSet random(const graph::OverlayGraph& g,
                                           double fraction, util::Rng& rng);

  /// An explicit set of corrupted nodes (targeted placement).
  [[nodiscard]] static ByzantineSet of(const graph::OverlayGraph& g,
                                       const std::vector<graph::NodeId>& nodes);

  [[nodiscard]] bool is_byzantine(graph::NodeId u) const noexcept {
    return !flags_.empty() && flags_[u] != 0;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }

  void corrupt(graph::NodeId u);
  void heal(graph::NodeId u);

 private:
  explicit ByzantineSet(const graph::OverlayGraph& g) : graph_(&g) {}

  const graph::OverlayGraph* graph_;
  std::vector<std::uint8_t> flags_;
  std::size_t count_ = 0;
};

}  // namespace p2p::failure
