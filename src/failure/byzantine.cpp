#include "failure/byzantine.h"

#include "util/require.h"

namespace p2p::failure {

ByzantineSet ByzantineSet::none(const graph::OverlayGraph& g) {
  ByzantineSet set(g);
  set.graph_generation_ = g.structural_generation();
  return set;
}

ByzantineSet ByzantineSet::random(const graph::OverlayGraph& g, double fraction,
                                  util::Rng& rng) {
  util::require(fraction >= 0.0 && fraction <= 1.0,
                "ByzantineSet::random: fraction must be in [0,1]");
  ByzantineSet set(g);
  set.graph_generation_ = g.structural_generation();
  set.flags_.assign(g.size(), 0);
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    if (rng.next_bool(fraction)) {
      set.flags_[u] = 1;
      ++set.count_;
    }
  }
  return set;
}

ByzantineSet ByzantineSet::of(const graph::OverlayGraph& g,
                              const std::vector<graph::NodeId>& nodes) {
  ByzantineSet set(g);
  set.graph_generation_ = g.structural_generation();
  set.flags_.assign(g.size(), 0);
  for (const graph::NodeId u : nodes) {
    util::require_in_range(u < g.size(), "ByzantineSet::of: node out of range");
    if (set.flags_[u] == 0) {
      set.flags_[u] = 1;
      ++set.count_;
    }
  }
  return set;
}

void ByzantineSet::ensure_flags() {
  if (flags_.empty()) {
    // First corruption: snapshot the node range the flags are keyed over.
    graph_generation_ = graph_->structural_generation();
    flags_.assign(graph_->size(), 0);
    return;
  }
  // Structural growth extends the node range past the flag array, silently
  // mis-keying is_byzantine — fail loudly instead (mirrors FailureView's
  // stale-view discipline; rebuild the set after structural mutation).
  util::require(graph_->structural_generation() == graph_generation_,
                "ByzantineSet: graph changed structurally; rebuild the set");
}

void ByzantineSet::corrupt(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "corrupt: node out of range");
  ensure_flags();
  if (flags_[u] == 0) {
    flags_[u] = 1;
    ++count_;
  }
}

void ByzantineSet::heal(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "heal: node out of range");
  if (flags_.empty()) return;  // healing the honest is a no-op
  ensure_flags();
  if (flags_[u] == 1) {
    flags_[u] = 0;
    --count_;
  }
}

void ByzantineSet::corrupt_checked(graph::NodeId u, const char* what) {
  util::require_in_range(u < graph_->size(), what);
  util::require(flags_[u] == 0, what);
  flags_[u] = 1;
  ++count_;
}

void ByzantineSet::heal_checked(graph::NodeId u, const char* what) {
  util::require_in_range(u < graph_->size(), what);
  util::require(flags_[u] == 1, what);
  flags_[u] = 0;
  --count_;
}

void ByzantineSet::apply(const ByzantineDelta& delta) {
  ensure_flags();
  for (const graph::NodeId u : delta.corrupts) {
    corrupt_checked(u, "ByzantineSet::apply: corrupting an already-corrupt "
                       "node (set and schedule out of sync)");
  }
  for (const graph::NodeId u : delta.heals) {
    heal_checked(u, "ByzantineSet::apply: healing an honest node (set and "
                    "schedule out of sync)");
  }
  ++epoch_;
}

void ByzantineSet::revert(const ByzantineDelta& delta) {
  util::require(epoch_ > 0, "ByzantineSet::revert: already at epoch 0");
  ensure_flags();
  // The inverse batch: what apply corrupted gets healed and vice versa, so a
  // revert with the wrong delta (or out of order) fails loudly.
  for (const graph::NodeId u : delta.corrupts) {
    heal_checked(u, "ByzantineSet::revert: delta does not match the current "
                    "epoch (corrupt entry not corrupt)");
  }
  for (const graph::NodeId u : delta.heals) {
    corrupt_checked(u, "ByzantineSet::revert: delta does not match the "
                       "current epoch (heal entry not honest)");
  }
  --epoch_;
}

}  // namespace p2p::failure
