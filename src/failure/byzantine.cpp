#include "failure/byzantine.h"

#include "util/require.h"

namespace p2p::failure {

ByzantineSet ByzantineSet::none(const graph::OverlayGraph& g) {
  return ByzantineSet(g);
}

ByzantineSet ByzantineSet::random(const graph::OverlayGraph& g, double fraction,
                                  util::Rng& rng) {
  util::require(fraction >= 0.0 && fraction <= 1.0,
                "ByzantineSet::random: fraction must be in [0,1]");
  ByzantineSet set(g);
  set.flags_.assign(g.size(), 0);
  for (graph::NodeId u = 0; u < g.size(); ++u) {
    if (rng.next_bool(fraction)) {
      set.flags_[u] = 1;
      ++set.count_;
    }
  }
  return set;
}

ByzantineSet ByzantineSet::of(const graph::OverlayGraph& g,
                              const std::vector<graph::NodeId>& nodes) {
  ByzantineSet set(g);
  set.flags_.assign(g.size(), 0);
  for (const graph::NodeId u : nodes) {
    util::require_in_range(u < g.size(), "ByzantineSet::of: node out of range");
    if (set.flags_[u] == 0) {
      set.flags_[u] = 1;
      ++set.count_;
    }
  }
  return set;
}

void ByzantineSet::corrupt(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "corrupt: node out of range");
  if (flags_.empty()) flags_.assign(graph_->size(), 0);
  if (flags_[u] == 0) {
    flags_[u] = 1;
    ++count_;
  }
}

void ByzantineSet::heal(graph::NodeId u) {
  util::require_in_range(u < graph_->size(), "heal: node out of range");
  if (!flags_.empty() && flags_[u] == 1) {
    flags_[u] = 0;
    --count_;
  }
}

}  // namespace p2p::failure
