#include "failure/reputation.h"

#include <algorithm>

#include "util/require.h"

namespace p2p::failure {

ReputationTable::ReputationTable(const graph::OverlayGraph& g,
                                 ReputationConfig config)
    : graph_(&g), config_(config) {
  util::require(config_.distrust_threshold > 0.0,
                "ReputationTable: distrust_threshold must be positive");
  util::require(config_.decay >= 0.0 && config_.decay < 1.0,
                "ReputationTable: decay must lie in [0, 1)");
  util::require(config_.max_penalty >= config_.distrust_threshold,
                "ReputationTable: max_penalty must cover the threshold");
  penalty_.assign(g.size(), 0.0);
  trusted_byte_.assign(g.size() + kBytePad, std::uint8_t{1});
  tracked_.assign(g.size(), std::uint8_t{0});
  touched_.reserve(64);
}

void ReputationTable::record(graph::NodeId u, Observation what) {
  util::require(u < graph_->size(), "ReputationTable::record: node out of range");
  double delta = 0.0;
  switch (what) {
    case Observation::kDelivered: delta = -config_.reward_delivered; break;
    case Observation::kDiedAtHop: delta = config_.penalty_died; break;
    case Observation::kRegressed: delta = config_.penalty_regressed; break;
    case Observation::kTimedOut:  delta = config_.penalty_timeout; break;
  }
  double next = penalty_[u] + delta;
  next = std::clamp(next, 0.0, config_.max_penalty);
  set_penalty(u, next);
}

void ReputationTable::decay_epoch() {
  ++epoch_;
  // set_penalty mutates touched_, so detach the worklist first; surviving
  // entries are re-tracked as set_penalty processes them.
  scratch_.clear();
  scratch_.swap(touched_);
  for (graph::NodeId u : scratch_) {
    tracked_[u] = 0;
    double next = penalty_[u] * config_.decay;
    if (next < kPenaltyEpsilon) next = 0.0;
    set_penalty(u, next);
  }
}

void ReputationTable::reset() {
  for (graph::NodeId u : touched_) {
    penalty_[u] = 0.0;
    tracked_[u] = 0;
    trusted_byte_[u] = 1;
  }
  touched_.clear();
  distrusted_count_ = 0;
  epoch_ = 0;
}

void ReputationTable::set_penalty(graph::NodeId u, double value) {
  penalty_[u] = value;
  const bool now_trusted = value < config_.distrust_threshold;
  const bool was_trusted = trusted_byte_[u] != 0;
  if (now_trusted != was_trusted) {
    trusted_byte_[u] = now_trusted ? 1 : 0;
    if (now_trusted) {
      --distrusted_count_;
    } else {
      ++distrusted_count_;
    }
  }
  if (value > 0.0) {
    if (!tracked_[u]) {
      tracked_[u] = 1;
      touched_.push_back(u);
    }
  } else if (tracked_[u]) {
    // Swap-erase keeps touched_ at exactly {nodes with penalty > 0}, which
    // is what makes decay_epoch O(penalized) rather than O(n).
    tracked_[u] = 0;
    auto it = std::find(touched_.begin(), touched_.end(), u);
    if (it != touched_.end()) {
      *it = touched_.back();
      touched_.pop_back();
    }
  }
}

}  // namespace p2p::failure
