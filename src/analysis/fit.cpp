#include "analysis/fit.h"

#include "util/require.h"

namespace p2p::analysis {

ScaleFit fit_scale(const std::vector<double>& model, const std::vector<double>& y) {
  util::require(model.size() == y.size() && !y.empty(),
                "fit_scale: need equal non-empty inputs");
  double mm = 0.0, my = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    mm += model[i] * model[i];
    my += model[i] * y[i];
  }
  util::require(mm > 0.0, "fit_scale: model is identically zero");
  ScaleFit fit;
  fit.scale = my / mm;

  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - fit.scale * model[i];
    ss_res += r * r;
    const double d = y[i] - mean;
    ss_tot += d * d;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

ScaleFit fit_scale(const std::vector<double>& xs, const std::vector<double>& ys,
                   const std::function<double(double)>& model) {
  std::vector<double> m;
  m.reserve(xs.size());
  for (const double x : xs) m.push_back(model(x));
  return fit_scale(m, ys);
}

LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  util::require(xs.size() == ys.size() && xs.size() >= 2,
                "fit_line: need >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  util::require(denom != 0.0, "fit_line: xs are degenerate");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
    const double d = ys[i] - mean;
    ss_tot += d * d;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace p2p::analysis
