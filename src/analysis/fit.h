// Least-squares shape fitting.
//
// The benches check Table 1's *shapes*: measured delivery times should track
// c · bound(n) for a constant c. fit_scale finds the best c and reports R²
// so "who wins / how it scales" is a number, not a visual impression.
#pragma once

#include <functional>
#include <vector>

namespace p2p::analysis {

/// Result of fitting y ≈ c · m(x).
struct ScaleFit {
  double scale = 0.0;      ///< best-fit c
  double r_squared = 0.0;  ///< 1 - SS_res / SS_tot (1 = perfect shape match)
};

/// Fits y_i ≈ c · model_i by least squares.
/// Preconditions: equal non-zero lengths; some model_i != 0.
[[nodiscard]] ScaleFit fit_scale(const std::vector<double>& model,
                                 const std::vector<double>& y);

/// Convenience: evaluates `model` over xs, then fits.
[[nodiscard]] ScaleFit fit_scale(const std::vector<double>& xs,
                                 const std::vector<double>& ys,
                                 const std::function<double(double)>& model);

/// Ordinary least squares line y = a + b·x; returns {a, b, R²}.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
[[nodiscard]] LineFit fit_line(const std::vector<double>& xs,
                               const std::vector<double>& ys);

}  // namespace p2p::analysis
