#include "analysis/delta_model.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace p2p::analysis {

DeltaModel::DeltaModel(std::vector<double> probabilities)
    : probabilities_(std::move(probabilities)) {
  const std::size_t size = probabilities_.size();
  log_survival_.assign(size, 0.0);
  double running = 0.0;
  double expected_side = 0.0;
  for (std::size_t d = 1; d < size; ++d) {
    const double p = probabilities_[d];
    expected_side += p;
    if (p >= 1.0) {
      if (d >= 2) always_included_.push_back(d);
    } else if (p > 0.0) {
      running += std::log1p(-p);
    }
    log_survival_[d] = running;
  }
  expected_degree_ = 2.0 * expected_side;
}

double DeltaModel::probability(std::uint64_t d) const {
  util::require_in_range(d >= 1 && d < probabilities_.size(),
                         "DeltaModel::probability: offset out of range");
  return probabilities_[d];
}

DeltaModel DeltaModel::power_law(std::uint64_t max_offset, double links,
                                 double exponent) {
  util::require(max_offset >= 2, "DeltaModel: max_offset must be >= 2");
  util::require(links > 2.0, "DeltaModel: links must exceed the two ±1 offsets");
  util::require(exponent >= 0.0, "DeltaModel: exponent must be >= 0");
  const double target_per_side = (links - 2.0) / 2.0;

  std::vector<double> weights(max_offset + 1, 0.0);
  for (std::uint64_t d = 2; d <= max_offset; ++d) {
    weights[d] = std::pow(static_cast<double>(d), -exponent);
  }
  // Calibrate c so that Σ min(1, c·w_d) = target_per_side. The sum is
  // monotone in c: binary search.
  const auto mass = [&](double c) {
    double total = 0.0;
    for (std::uint64_t d = 2; d <= max_offset; ++d) {
      total += std::min(1.0, c * weights[d]);
    }
    return total;
  };
  double lo = 0.0, hi = 1.0;
  while (mass(hi) < target_per_side &&
         hi < 1e18) {  // hi large enough even for steep exponents
    hi *= 2.0;
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (mass(mid) < target_per_side ? lo : hi) = mid;
  }
  const double c = 0.5 * (lo + hi);

  std::vector<double> probabilities(max_offset + 1, 0.0);
  probabilities[1] = 1.0;
  for (std::uint64_t d = 2; d <= max_offset; ++d) {
    probabilities[d] = std::min(1.0, c * weights[d]);
  }
  return DeltaModel(std::move(probabilities));
}

DeltaModel DeltaModel::uniform(std::uint64_t max_offset, double links) {
  return power_law(max_offset, links, 0.0);
}

DeltaModel DeltaModel::base_b(std::uint64_t max_offset, unsigned base) {
  util::require(max_offset >= 2, "DeltaModel: max_offset must be >= 2");
  util::require(base >= 2, "DeltaModel: base must be >= 2");
  std::vector<double> probabilities(max_offset + 1, 0.0);
  probabilities[1] = 1.0;
  for (std::uint64_t power = base; power <= max_offset && power >= base;
       power *= base) {
    probabilities[power] = 1.0;
    if (power > max_offset / base) break;
  }
  return DeltaModel(std::move(probabilities));
}

std::vector<std::uint64_t> DeltaModel::sample_side(util::Rng& rng) const {
  std::vector<std::uint64_t> side{1};
  side.insert(side.end(), always_included_.begin(), always_included_.end());
  // Skip sampling over the p < 1 entries: from position d, the next included
  // offset is the smallest d' > d with L[d'] <= L[d] + ln(u). L is the
  // nonincreasing prefix of ln(1-p) over fractional entries.
  const std::size_t max_d = probabilities_.size() - 1;
  std::uint64_t d = 1;
  while (d < max_d) {
    double u = rng.next_double();
    if (u <= 0.0) u = 1e-300;
    const double target = log_survival_[d] + std::log(u);
    // Binary search: first index in (d, max_d] with L[idx] <= target.
    std::uint64_t lo = d + 1, hi = max_d + 1;
    if (log_survival_[max_d] > target) break;  // survives past the end
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (log_survival_[mid] <= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo > max_d) break;
    // lo is the next included fractional offset (p_lo < 1 entries move L).
    if (probabilities_[lo] < 1.0 && probabilities_[lo] > 0.0) side.push_back(lo);
    d = lo;
  }
  std::sort(side.begin(), side.end());
  side.erase(std::unique(side.begin(), side.end()), side.end());
  return side;
}

std::size_t greedy_walk(const DeltaModel& model, GreedySide side,
                        std::int64_t start, util::Rng& rng) {
  util::require(start >= 0, "greedy_walk: start must be non-negative");
  std::uint64_t distance = static_cast<std::uint64_t>(start);
  std::size_t steps = 0;
  while (distance > 0) {
    const auto offsets = model.sample_side(rng);  // sorted ascending
    // Only offsets toward the target matter: the mandatory 1 already beats
    // any move away from it.
    std::uint64_t next = distance - 1;  // fallback: the ±1 link
    if (side == GreedySide::kOneSided) {
      // Largest offset <= distance (never past the target).
      const auto it = std::upper_bound(offsets.begin(), offsets.end(), distance);
      const std::uint64_t best = *std::prev(it);  // offsets[0] == 1 exists
      next = distance - best;
    } else {
      // Offset minimising |distance - δ| — overshoot allowed (§4.2.1).
      const auto it = std::lower_bound(offsets.begin(), offsets.end(), distance);
      std::uint64_t best_gap = distance;  // staying put is never chosen
      if (it != offsets.end()) {
        best_gap = std::min(best_gap, *it - distance);
      }
      if (it != offsets.begin()) {
        best_gap = std::min(best_gap, distance - *std::prev(it));
      }
      next = best_gap;
    }
    distance = next;
    ++steps;
  }
  return steps;
}

double simulate_greedy_time(const DeltaModel& model, GreedySide side,
                            std::uint64_t n, std::size_t trials, util::Rng& rng) {
  util::require(n >= 1, "simulate_greedy_time: n must be >= 1");
  util::require(trials >= 1, "simulate_greedy_time: trials must be >= 1");
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto start = static_cast<std::int64_t>(rng.next_below(n) + 1);
    total += static_cast<double>(greedy_walk(model, side, start, rng));
  }
  return total / static_cast<double>(trials);
}

double simulate_greedy_time(const DeltaModel& model, GreedySide side,
                            std::uint64_t n, std::size_t trials,
                            std::uint64_t seed, util::ThreadPool& pool) {
  util::require(n >= 1, "simulate_greedy_time: n must be >= 1");
  util::require(trials >= 1, "simulate_greedy_time: trials must be >= 1");
  // Fixed chunk decomposition (parallel_chunks is thread-count independent)
  // with per-trial substreams; per-trial results are summed in index order
  // so the floating-point total is deterministic regardless of scheduling.
  std::vector<double> walk_steps(trials, 0.0);
  pool.parallel_chunks(trials, 256, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t t = lo; t < hi; ++t) {
      util::Rng rng = util::substream(seed, t);
      const auto start = static_cast<std::int64_t>(rng.next_below(n) + 1);
      walk_steps[t] = static_cast<double>(greedy_walk(model, side, start, rng));
    }
  });
  double total = 0.0;
  for (const double steps : walk_steps) total += steps;
  return total / static_cast<double>(trials);
}

AggregateChain::AggregateChain(const DeltaModel& model, std::uint64_t n)
    : model_(&model), size_(n) {
  util::require(n >= 1, "AggregateChain: n must be >= 1");
}

void AggregateChain::step(util::Rng& rng) {
  if (absorbed_) return;
  // One-sided aggregate transition (Lemma 5: states are {0} or {1..k}).
  // Drawing a uniform representative x in {1..k} and following its block
  // realizes the size-proportional block choice of equation (14).
  const auto offsets = model_->sample_side(rng);
  const std::uint64_t x = rng.next_below(size_) + 1;
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), x);
  const std::uint64_t delta = *std::prev(it);  // largest offset <= x
  if (x == delta) {
    // x lands exactly on the target: the chosen block is S_Δi0 = {δ} → {0}.
    absorbed_ = true;
    size_ = 1;
    return;
  }
  // Block S_Δi+ = [δ+1, min(next_offset - 1, k)] shifted down by δ.
  std::uint64_t block_end = size_;
  if (it != offsets.end()) {
    block_end = std::min<std::uint64_t>(size_, *it - 1);
  }
  size_ = block_end - delta;
}

}  // namespace p2p::analysis
