#include "analysis/bounds.h"

#include <cmath>

#include "util/harmonic.h"
#include "util/require.h"

namespace p2p::analysis {

namespace {
double log2d(std::uint64_t n) { return std::log2(static_cast<double>(n)); }
}  // namespace

double kuw_upper_bound(double x0, const std::function<double(double)>& drift,
                       std::size_t grid) {
  util::require(x0 >= 1.0, "kuw_upper_bound: x0 must be >= 1");
  util::require(grid >= 2, "kuw_upper_bound: grid too small");
  // Trapezoid rule on a geometric grid over [1, x0]: z_i = x0^(i/grid).
  const double log_x0 = std::log(x0);
  double total = 0.0;
  double prev_z = 1.0;
  double prev_f = 1.0 / drift(1.0);
  for (std::size_t i = 1; i <= grid; ++i) {
    const double z = std::exp(log_x0 * static_cast<double>(i) /
                              static_cast<double>(grid));
    const double mu = drift(z);
    util::require(mu > 0.0, "kuw_upper_bound: drift must be positive");
    const double f = 1.0 / mu;
    total += 0.5 * (prev_f + f) * (z - prev_z);
    prev_z = z;
    prev_f = f;
  }
  return total;
}

double theorem2_lower_bound(double fx0, const std::function<double(double)>& m,
                            double epsilon, std::size_t grid) {
  util::require(fx0 > 0.0, "theorem2_lower_bound: f(x0) must be positive");
  util::require(epsilon >= 0.0 && epsilon < 1.0,
                "theorem2_lower_bound: epsilon must be in [0,1)");
  // T = ∫_0^{fx0} dz / m(z), linear grid (the integrand is bounded).
  double total = 0.0;
  double prev_f = 1.0 / m(0.0);
  const double step = fx0 / static_cast<double>(grid);
  for (std::size_t i = 1; i <= grid; ++i) {
    const double z = step * static_cast<double>(i);
    const double mz = m(z);
    util::require(mz > 0.0, "theorem2_lower_bound: m must be positive");
    const double f = 1.0 / mz;
    total += 0.5 * (prev_f + f) * step;
    prev_f = f;
  }
  return total / (epsilon * total + (1.0 - epsilon));
}

double upper_single_link(std::uint64_t n) {
  const double h = util::harmonic(n);
  return 2.0 * h * h;
}

double upper_multi_link(std::uint64_t n, double links) {
  util::require(links >= 1.0, "upper_multi_link: links must be >= 1");
  return (1.0 + log2d(n)) * 8.0 * util::harmonic(n) / links;
}

double upper_base_b(std::uint64_t n, unsigned base) {
  util::require(base >= 2, "upper_base_b: base must be >= 2");
  return std::ceil(std::log(static_cast<double>(n)) /
                   std::log(static_cast<double>(base)));
}

double expected_base_b_hops(std::uint64_t n, unsigned base) {
  util::require(base >= 2, "expected_base_b_hops: base must be >= 2");
  const double b = static_cast<double>(base);
  // Smooth digit count: averaging over uniform distances washes out the
  // ceiling in ⌈log_b n⌉.
  const double digits = std::log(static_cast<double>(n)) / std::log(b);
  return digits * (b - 1.0) / (b + 1.0);
}

double upper_link_failures(std::uint64_t n, double links, double p_present) {
  util::require(p_present > 0.0 && p_present <= 1.0,
                "upper_link_failures: p must be in (0,1]");
  return upper_multi_link(n, links) / p_present;
}

double upper_base_b_failures(std::uint64_t n, unsigned base, double p_present) {
  util::require(base >= 2, "upper_base_b_failures: base must be >= 2");
  util::require(p_present > 0.0 && p_present <= 1.0,
                "upper_base_b_failures: p must be in (0,1]");
  const double q = 1.0 - p_present;
  return 1.0 + 2.0 * (static_cast<double>(base) - q) * util::harmonic(n) / p_present;
}

double upper_binomial_presence(std::uint64_t n) { return upper_single_link(n); }

double upper_node_failures(std::uint64_t n, double links, double p_fail) {
  util::require(p_fail >= 0.0 && p_fail < 1.0,
                "upper_node_failures: p must be in [0,1)");
  return upper_multi_link(n, links) / (1.0 - p_fail);
}

double lower_large_degree(std::uint64_t n, double links) {
  util::require(links > 1.0, "lower_large_degree: links must be > 1");
  return std::log(static_cast<double>(n)) / std::log(links);
}

double lower_one_sided(std::uint64_t n, double links) {
  util::require(links >= 1.0, "lower_one_sided: links must be >= 1");
  const double ln = std::log(static_cast<double>(n));
  const double lln = std::log(std::max(std::exp(1.0), ln));
  return ln * ln / (links * lln);
}

double lower_two_sided(std::uint64_t n, double links) {
  util::require(links >= 1.0, "lower_two_sided: links must be >= 1");
  const double ln = std::log(static_cast<double>(n));
  const double lln = std::log(std::max(std::exp(1.0), ln));
  return ln * ln / (links * links * lln);
}

}  // namespace p2p::analysis
