// Closed-form delivery-time bounds from the paper, plus the
// Karp–Upfal–Wigderson machinery behind them.
//
// Every bench prints the measured delivery time next to the matching bound
// so the *shape* claim of each theorem (and of Table 1) can be checked
// directly. Constants follow the proofs where the paper states them
// (Theorems 12, 13, 15, 16, 18); lower bounds are asymptotic shapes.
#pragma once

#include <cstdint>
#include <functional>

namespace p2p::analysis {

/// Lemma 1 (Karp–Upfal–Wigderson): T(x0) <= ∫_1^{x0} dz / µ(z) for a
/// nonincreasing chain with nondecreasing drift µ. Numerical evaluation by
/// adaptive trapezoid on a log grid (µ varies slowly in log-space for every
/// chain in the paper). Preconditions: x0 >= 1, µ(z) > 0 on [1, x0].
[[nodiscard]] double kuw_upper_bound(double x0,
                                     const std::function<double(double)>& drift,
                                     std::size_t grid = 4096);

/// Theorem 2's lower-bound integral T(x0) = ∫_0^{f(x0)} dz / m(z), with the
/// final correction E[τ] >= T / (εT + (1-ε)).
[[nodiscard]] double theorem2_lower_bound(double fx0,
                                          const std::function<double(double)>& m,
                                          double epsilon, std::size_t grid = 4096);

// -- Upper bounds (Section 4.3) --------------------------------------------

/// Theorem 12: single long link, no failures. T(n) = O(H_n²); the proof's
/// integral gives Σ_{k=1..n} 2H_n/k = 2H_n². Returns 2·H_n².
[[nodiscard]] double upper_single_link(std::uint64_t n);

/// Theorem 13: ℓ ∈ [1, lg n] links. E[X] <= (1 + lg n)(8 H_n / ℓ).
[[nodiscard]] double upper_multi_link(std::uint64_t n, double links);

/// Theorem 14: deterministic base-b links. T(n) = O(log_b n): with every
/// digit multiple j·bⁱ available, each hop eliminates one whole base-b digit
/// of the remaining distance, so the bound is ⌈log_b n⌉ hops.
[[nodiscard]] double upper_base_b(std::uint64_t n, unsigned base);

/// Expected-case refinement of Theorem 14 for uniformly random targets under
/// *two-sided* greedy routing: links in both directions realize the balanced
/// (signed-digit) base-b representation, whose expected number of nonzero
/// digits is ⌈log_b n⌉ · (b-1)/(b+1) — e.g. lg n / 3 for b = 2.
[[nodiscard]] double expected_base_b_hops(std::uint64_t n, unsigned base);

/// Theorem 15: link failures, each long link present with probability p.
/// E[X] <= (1 + lg n)(8 H_n / (p ℓ)).
[[nodiscard]] double upper_link_failures(std::uint64_t n, double links, double p_present);

/// Theorem 16: deterministic power-of-b links with failures.
/// T(n) = 1 + 2(b - q) H_n / p with q = 1 - p.
[[nodiscard]] double upper_base_b_failures(std::uint64_t n, unsigned base,
                                           double p_present);

/// Theorem 17: binomial node presence — same bound as Theorem 12 (the
/// surviving network is just a smaller random graph). Returns 2·H_n².
[[nodiscard]] double upper_binomial_presence(std::uint64_t n);

/// Theorem 18: node failures with probability p.
/// E <= (1 + lg n)(8 H_n)/((1-p) ℓ).
[[nodiscard]] double upper_node_failures(std::uint64_t n, double links, double p_fail);

// -- Lower bounds (Section 4.2) ---------------------------------------------

/// Theorem 3: ℓ ∈ (lg n, n^c] links: T = Ω(log n / log ℓ).
[[nodiscard]] double lower_large_degree(std::uint64_t n, double links);

/// Theorem 10, one-sided: Ω(log²n / (ℓ log log n)).
[[nodiscard]] double lower_one_sided(std::uint64_t n, double links);

/// Theorem 10, two-sided: Ω(log²n / (ℓ² log log n)).
[[nodiscard]] double lower_two_sided(std::uint64_t n, double links);

}  // namespace p2p::analysis
