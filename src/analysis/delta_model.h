// The §4.2 lower-bound model, made executable.
//
// §4.2.2 models each node's outgoing links as a random offset set Δ: each
// integer offset δ is included independently with probability p_δ, where p
// is symmetric (p_δ = p_-δ), unimodal, p_±1 = 1, and inclusions are pairwise
// independent. Greedy routing walks the integer line from a uniform start in
// {1..n} toward 0 (§4.2.1), one-sided (never past the target) or two-sided.
//
// This module provides:
//  * DeltaModel — p_δ families (inverse power law with exponent r, uniform,
//    deterministic base-b) with the expected out-degree E|Δ| calibrated to a
//    target ℓ, plus O(ℓ log n) sampling of a fresh Δ set via skip sampling;
//  * simulate_greedy_time — the E[τ] of Theorem 10's walks, measured;
//  * AggregateChain — the S^t interval chain of §4.2.3 (used by tests to
//    check Lemma 4's equivalence and Lemma 6's drop bound).
//
// bench/lower_bound_frontier sweeps the power-law exponent r against the
// Theorem 10 bound, exhibiting the paper's headline theory claim: the
// r = 1 distribution is within a log-log factor of optimal.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::analysis {

/// Greedy variant of §4.2.1.
enum class GreedySide { kOneSided, kTwoSided };

/// A symmetric random offset-set distribution (the Δ of §4.2.2).
class DeltaModel {
 public:
  /// Inverse power law: p_d ∝ d^-r for 2 <= d <= max_offset, calibrated so
  /// that the expected number of long offsets per side is (links-2)/2
  /// (E|Δ| ≈ links, counting the mandatory ±1).
  /// Preconditions: max_offset >= 2, links > 2, r >= 0.
  [[nodiscard]] static DeltaModel power_law(std::uint64_t max_offset, double links,
                                            double exponent);

  /// Uniform: p_d constant over 2 <= d <= max_offset (power law with r = 0).
  [[nodiscard]] static DeltaModel uniform(std::uint64_t max_offset, double links);

  /// Deterministic base-b offsets {b^i}: p_d = 1 on powers of b, else 0.
  [[nodiscard]] static DeltaModel base_b(std::uint64_t max_offset, unsigned base);

  /// Expected |Δ| (including the two mandatory ±1 offsets).
  [[nodiscard]] double expected_degree() const noexcept { return expected_degree_; }

  [[nodiscard]] std::uint64_t max_offset() const noexcept {
    return probabilities_.size() - 1;
  }

  /// Inclusion probability of offset ±d (d >= 1; p_1 = 1).
  [[nodiscard]] double probability(std::uint64_t d) const;

  /// Draws a fresh positive-offset set (the negative side is a second
  /// independent draw, per pairwise independence + symmetry). Always
  /// contains 1. Cost O(E|Δ| log max_offset).
  [[nodiscard]] std::vector<std::uint64_t> sample_side(util::Rng& rng) const;

 private:
  explicit DeltaModel(std::vector<double> probabilities);

  std::vector<double> probabilities_;  // index d; [0] unused, [1] = 1.0
  // log_survival_[d] = sum_{i<=d} ln(1 - p_i) over i with p_i < 1, used for
  // skip sampling; entries where p_i == 1 are handled separately.
  std::vector<double> log_survival_;
  std::vector<std::uint64_t> always_included_;  // offsets with p == 1 (d >= 2)
  double expected_degree_ = 0.0;
};

/// One greedy trajectory of the §4.2 model: start at `start`, target 0.
/// Returns the number of steps taken (τ). Each visited node draws a fresh Δ
/// (legitimate because the ±1 offsets prevent revisits, §4.2.3).
[[nodiscard]] std::size_t greedy_walk(const DeltaModel& model, GreedySide side,
                                      std::int64_t start, util::Rng& rng);

/// Mean of `trials` walks from uniform starts in {1..n} (E[τ] of Theorem 10).
[[nodiscard]] double simulate_greedy_time(const DeltaModel& model, GreedySide side,
                                          std::uint64_t n, std::size_t trials,
                                          util::Rng& rng);

/// As above, fanning the independent walks across `pool` with one
/// util::substream(seed, trial) per walk — the batch-migration path for the
/// §6-style sweeps; deterministic for any thread count.
[[nodiscard]] double simulate_greedy_time(const DeltaModel& model, GreedySide side,
                                          std::uint64_t n, std::size_t trials,
                                          std::uint64_t seed, util::ThreadPool& pool);

/// The aggregate interval chain S^t of §4.2.3 (one-sided variant: states are
/// {0} or {1..k}). Exposed for tests of Lemma 4 (distributional equivalence
/// with the single-point chain) and Lemma 6 (bounded multiplicative drops).
class AggregateChain {
 public:
  /// Starts at S^0 = {1..n}.
  AggregateChain(const DeltaModel& model, std::uint64_t n);

  /// Current interval size |S^t| (1 and at position 0 means absorbed).
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool absorbed() const noexcept { return absorbed_; }

  /// One transition per equation (14): draws Δ, splits S by the greedy
  /// successor function, picks a block size-proportionally.
  void step(util::Rng& rng);

 private:
  const DeltaModel* model_;
  std::uint64_t size_;
  bool absorbed_ = false;
};

}  // namespace p2p::analysis
