#include "sim/network_sim.h"

#include <memory>

namespace p2p::sim {

NetworkSimulator::NetworkSimulator(const graph::OverlayGraph& g,
                                   failure::FailureView view,
                                   core::RouterConfig router_config,
                                   LatencyModel latency, std::uint64_t seed)
    : graph_(&g),
      view_(std::move(view)),
      router_(g, view_, router_config),
      latency_(latency),
      rng_(seed) {}

void NetworkSimulator::submit_search(SimTime when, graph::NodeId src,
                                     metric::Point target) {
  const std::size_t index = records_.size();
  SearchRecord record;
  record.id = index;
  record.src = src;
  record.target = target;
  record.submitted = when;
  records_.push_back(record);
  events_.schedule(when, [this, index, src, target] {
    auto session = std::make_shared<core::RouteSession>(router_, src, target);
    advance_search(index, std::move(session));
  });
}

void NetworkSimulator::schedule_failure(SimTime when, graph::NodeId node) {
  events_.schedule(when, [this, node] { view_.kill_node(node); });
}

void NetworkSimulator::schedule_recovery(SimTime when, graph::NodeId node) {
  events_.schedule(when, [this, node] { view_.revive_node(node); });
}

void NetworkSimulator::advance_search(std::size_t record_index,
                                      std::shared_ptr<core::RouteSession> session) {
  const auto hop = session->step(rng_);
  if (!hop) {
    SearchRecord& record = records_[record_index];
    record.completed = events_.now();
    record.result = session->progress();
    if (completion_callback_) completion_callback_(record);
    return;
  }
  events_.schedule_in(latency_.sample(rng_),
                      [this, record_index, session = std::move(session)]() mutable {
                        advance_search(record_index, std::move(session));
                      });
}

void NetworkSimulator::run(std::size_t max_events) { events_.run(max_events); }

}  // namespace p2p::sim
