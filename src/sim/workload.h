// Workload generators: random search pairs, Poisson arrivals, churn traces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "metric/space.h"
#include "util/rng.h"

namespace p2p::sim {

/// Uniformly random pair of distinct live nodes.
/// Precondition: view.alive_count() >= 2.
[[nodiscard]] std::pair<graph::NodeId, graph::NodeId> random_live_pair(
    const failure::FailureView& view, util::Rng& rng);

/// Exponential inter-arrival times with the given rate (events per ms).
struct PoissonProcess {
  double rate = 1.0;

  /// Time until the next event. Precondition: rate > 0.
  [[nodiscard]] double next_gap(util::Rng& rng) const;
};

/// One scheduled churn action.
struct ChurnEvent {
  double when = 0.0;
  enum class Kind { kJoin, kLeave, kCrash } kind = Kind::kCrash;
  metric::Point position = 0;
};

/// Generates a randomized churn trace over a grid: joins arrive at vacant
/// positions, leaves/crashes hit occupied ones, with the given rates (events
/// per ms) over [0, duration]. Positions are flattened grid points, so any
/// metric::Space (line, ring, torus) works — occupancy is metric-blind.
///
/// `initial_members` seeds the occupancy model so the trace stays
/// consistent (no leave of a node that never joined).
[[nodiscard]] std::vector<ChurnEvent> make_churn_trace(
    const metric::Space& space, const std::vector<metric::Point>& initial_members,
    double join_rate, double leave_rate, double crash_rate, double duration,
    util::Rng& rng);

}  // namespace p2p::sim
