#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/require.h"

namespace p2p::sim {

std::pair<graph::NodeId, graph::NodeId> random_live_pair(
    const failure::FailureView& view, util::Rng& rng) {
  util::require(view.alive_count() >= 2, "random_live_pair: need two live nodes");
  const graph::NodeId src = view.random_alive(rng);
  graph::NodeId dst = src;
  while (dst == src) dst = view.random_alive(rng);
  return {src, dst};
}

double PoissonProcess::next_gap(util::Rng& rng) const {
  util::require(rate > 0.0, "PoissonProcess: rate must be positive");
  double u = rng.next_double();
  if (u <= 0.0) u = 1e-300;  // guard against log(0)
  return -std::log(u) / rate;
}

std::vector<ChurnEvent> make_churn_trace(const metric::Space& space,
                                         const std::vector<metric::Point>& initial_members,
                                         double join_rate, double leave_rate,
                                         double crash_rate, double duration,
                                         util::Rng& rng) {
  util::require(duration >= 0.0, "make_churn_trace: duration must be >= 0");
  std::set<metric::Point> occupied(initial_members.begin(), initial_members.end());
  std::vector<ChurnEvent> trace;

  const double total_rate = join_rate + leave_rate + crash_rate;
  if (total_rate <= 0.0) return trace;
  const PoissonProcess clock{total_rate};

  const auto vacant_position = [&]() -> metric::Point {
    if (occupied.size() >= space.size()) return -1;
    for (int tries = 0; tries < 512; ++tries) {
      const auto p = static_cast<metric::Point>(rng.next_below(space.size()));
      if (!occupied.contains(p)) return p;
    }
    // Dense grid: scan for the first vacancy.
    for (std::uint64_t p = 0; p < space.size(); ++p) {
      if (!occupied.contains(static_cast<metric::Point>(p))) {
        return static_cast<metric::Point>(p);
      }
    }
    return -1;
  };
  const auto occupied_position = [&]() -> metric::Point {
    if (occupied.size() <= 2) return -1;  // keep a routable core
    auto it = occupied.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng.next_below(occupied.size())));
    return *it;
  };

  double t = clock.next_gap(rng);
  while (t <= duration) {
    const double pick = rng.next_double() * total_rate;
    ChurnEvent event;
    event.when = t;
    if (pick < join_rate) {
      event.kind = ChurnEvent::Kind::kJoin;
      event.position = vacant_position();
      if (event.position >= 0) {
        occupied.insert(event.position);
        trace.push_back(event);
      }
    } else {
      event.kind = pick < join_rate + leave_rate ? ChurnEvent::Kind::kLeave
                                                 : ChurnEvent::Kind::kCrash;
      event.position = occupied_position();
      if (event.position >= 0) {
        occupied.erase(event.position);
        trace.push_back(event);
      }
    }
    t += clock.next_gap(rng);
  }
  return trace;
}

}  // namespace p2p::sim
