// Synchronous hop-level batch driver — the paper's measurement harness.
//
// §6: "we repeatedly choose random source and destination nodes that have
// not failed and route a message between them", averaging the number of hops
// of successful searches and the number of failed searches. run_batch does
// exactly that over one (graph, failure view, router) triple.
#pragma once

#include <cstddef>

#include "core/router.h"
#include "failure/failure_model.h"
#include "util/rng.h"
#include "util/stats.h"

namespace p2p::sim {

/// Aggregate of one batch of searches.
struct BatchResult {
  std::size_t messages = 0;
  std::size_t delivered = 0;
  std::size_t stuck = 0;
  std::size_t ttl_expired = 0;
  util::Accumulator hops_success;   ///< hops of delivered searches only
  util::Accumulator hops_failed;    ///< hops consumed by failed searches
  util::Accumulator backtracks;     ///< backtrack returns per search
  util::Accumulator reroutes;       ///< reroutes per search

  [[nodiscard]] std::size_t failed() const noexcept { return stuck + ttl_expired; }
  [[nodiscard]] double failure_fraction() const noexcept {
    return messages == 0 ? 0.0
                         : static_cast<double>(failed()) / static_cast<double>(messages);
  }

  void merge(const BatchResult& other) noexcept;
};

/// Routes `messages` searches between uniformly random distinct *live*
/// src/dst pairs, software-pipelined through Router::route_batch (`batch`
/// sets the width/prefetch shape). Draws all pairs from `rng` up front, then
/// one more value as the batch's substream base. Preconditions: the view has
/// at least two live nodes.
[[nodiscard]] BatchResult run_batch(const core::Router& router, std::size_t messages,
                                    util::Rng& rng,
                                    const core::BatchConfig& batch = {});

}  // namespace p2p::sim
