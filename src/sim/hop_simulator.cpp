#include "sim/hop_simulator.h"

#include <vector>

#include "util/require.h"

namespace p2p::sim {

void BatchResult::merge(const BatchResult& other) noexcept {
  messages += other.messages;
  delivered += other.delivered;
  stuck += other.stuck;
  ttl_expired += other.ttl_expired;
  hops_success.merge(other.hops_success);
  hops_failed.merge(other.hops_failed);
  backtracks.merge(other.backtracks);
  reroutes.merge(other.reroutes);
}

BatchResult run_batch(const core::Router& router, std::size_t messages,
                      util::Rng& rng, const core::BatchConfig& config) {
  const failure::FailureView& view = router.view();
  util::require(view.alive_count() >= 2, "run_batch: need at least two live nodes");

  std::vector<core::Query> queries(messages);
  for (auto& query : queries) {
    const graph::NodeId src = view.random_alive(rng);
    graph::NodeId dst = src;
    while (dst == src) dst = view.random_alive(rng);
    query = {src, router.graph().position(dst)};
  }
  std::vector<core::RouteResult> results(messages);
  router.route_batch(queries, results, rng, config);

  BatchResult batch;
  for (const core::RouteResult& result : results) {
    ++batch.messages;
    batch.backtracks.add(static_cast<double>(result.backtracks));
    batch.reroutes.add(static_cast<double>(result.reroutes));
    switch (result.status) {
      case core::RouteResult::Status::kDelivered:
        ++batch.delivered;
        batch.hops_success.add(static_cast<double>(result.hops));
        break;
      case core::RouteResult::Status::kStuck:
        ++batch.stuck;
        batch.hops_failed.add(static_cast<double>(result.hops));
        break;
      case core::RouteResult::Status::kTtlExpired:
        ++batch.ttl_expired;
        batch.hops_failed.add(static_cast<double>(result.hops));
        break;
    }
  }
  return batch;
}

}  // namespace p2p::sim
