#include "sim/hop_simulator.h"

#include "util/require.h"

namespace p2p::sim {

void BatchResult::merge(const BatchResult& other) noexcept {
  messages += other.messages;
  delivered += other.delivered;
  stuck += other.stuck;
  ttl_expired += other.ttl_expired;
  hops_success.merge(other.hops_success);
  hops_failed.merge(other.hops_failed);
  backtracks.merge(other.backtracks);
  reroutes.merge(other.reroutes);
}

BatchResult run_batch(const core::Router& router, std::size_t messages,
                      util::Rng& rng) {
  const failure::FailureView& view = router.view();
  util::require(view.alive_count() >= 2, "run_batch: need at least two live nodes");

  BatchResult batch;
  for (std::size_t m = 0; m < messages; ++m) {
    const graph::NodeId src = view.random_alive(rng);
    graph::NodeId dst = src;
    while (dst == src) dst = view.random_alive(rng);

    const core::RouteResult result =
        router.route(src, router.graph().position(dst), rng);
    ++batch.messages;
    batch.backtracks.add(static_cast<double>(result.backtracks));
    batch.reroutes.add(static_cast<double>(result.reroutes));
    switch (result.status) {
      case core::RouteResult::Status::kDelivered:
        ++batch.delivered;
        batch.hops_success.add(static_cast<double>(result.hops));
        break;
      case core::RouteResult::Status::kStuck:
        ++batch.stuck;
        batch.hops_failed.add(static_cast<double>(result.hops));
        break;
      case core::RouteResult::Status::kTtlExpired:
        ++batch.ttl_expired;
        batch.hops_failed.add(static_cast<double>(result.hops));
        break;
    }
  }
  return batch;
}

}  // namespace p2p::sim
