#include "sim/event_queue.h"

#include "util/require.h"

namespace p2p::sim {

void EventQueue::schedule(SimTime when, std::function<void()> action) {
  util::require(when >= now_, "EventQueue: cannot schedule into the past");
  heap_.push(Entry{when, next_seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the action is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  auto& top = const_cast<Entry&>(heap_.top());
  now_ = top.when;
  auto action = std::move(top.action);
  heap_.pop();
  action();
  return true;
}

std::size_t EventQueue::run(std::size_t limit) {
  std::size_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::size_t EventQueue::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().when <= until && step()) ++executed;
  return executed;
}

void EventQueue::reset() {
  heap_ = {};
  now_ = 0.0;
  next_seq_ = 0;
}

}  // namespace p2p::sim
