// Message-level overlay simulator.
//
// Wraps a built overlay graph in virtual time: searches advance one message
// transmission per latency draw, and node failures/recoveries can be
// scheduled mid-flight. Because RouteSession re-reads the failure view on
// every hop, searches adapt to churn that happens while they are in transit
// — the scenario §2 footnote 1 describes ("the request message may be routed
// over a series of different overlay networks").
//
// Hop counts produced here match core::Router::route exactly (same session
// machinery); the paper's hop-count experiments use sim/hop_simulator.h,
// which skips the event queue for speed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "sim/event_queue.h"
#include "util/rng.h"

namespace p2p::sim {

/// Per-hop latency: uniform in [min_ms, max_ms].
struct LatencyModel {
  double min_ms = 1.0;
  double max_ms = 1.0;

  [[nodiscard]] double sample(util::Rng& rng) const noexcept {
    return min_ms + (max_ms - min_ms) * rng.next_double();
  }
};

/// Completed (or failed) search bookkeeping.
struct SearchRecord {
  std::uint64_t id = 0;
  graph::NodeId src = graph::kInvalidNode;
  metric::Point target = 0;
  SimTime submitted = 0.0;
  SimTime completed = 0.0;
  core::RouteResult result;

  [[nodiscard]] double latency() const noexcept { return completed - submitted; }
};

/// Discrete-event simulation of searches over one overlay.
class NetworkSimulator {
 public:
  /// The graph must outlive the simulator. The failure view is copied and
  /// owned (it mutates under scheduled churn).
  NetworkSimulator(const graph::OverlayGraph& g, failure::FailureView view,
                   core::RouterConfig router_config, LatencyModel latency,
                   std::uint64_t seed);

  /// Queues a search to start at virtual time `when`.
  void submit_search(SimTime when, graph::NodeId src, metric::Point target);

  /// Schedules a node crash / recovery.
  void schedule_failure(SimTime when, graph::NodeId node);
  void schedule_recovery(SimTime when, graph::NodeId node);

  /// Optional observer invoked as each search completes.
  void on_search_complete(std::function<void(const SearchRecord&)> callback) {
    completion_callback_ = std::move(callback);
  }

  /// Drains the event queue (or up to `max_events`).
  void run(std::size_t max_events = static_cast<std::size_t>(-1));

  [[nodiscard]] SimTime now() const noexcept { return events_.now(); }
  [[nodiscard]] const std::vector<SearchRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const failure::FailureView& view() const noexcept { return view_; }
  [[nodiscard]] failure::FailureView& view() noexcept { return view_; }

 private:
  void advance_search(std::size_t record_index,
                      std::shared_ptr<core::RouteSession> session);

  const graph::OverlayGraph* graph_;
  failure::FailureView view_;
  core::Router router_;
  LatencyModel latency_;
  util::Rng rng_;
  EventQueue events_;
  std::vector<SearchRecord> records_;
  std::function<void(const SearchRecord&)> completion_callback_;
};

}  // namespace p2p::sim
