// Discrete-event core: a virtual clock plus an ordered callback queue.
//
// Events at equal timestamps fire in submission order (a monotonically
// increasing sequence number breaks ties), which keeps simulations
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace p2p::sim {

/// Virtual time in milliseconds.
using SimTime = double;

/// Min-heap of timed callbacks with a stable tie-break.
class EventQueue {
 public:
  /// Schedules `action` at absolute virtual time `when`.
  /// Precondition: when >= now() (no scheduling into the past).
  void schedule(SimTime when, std::function<void()> action);

  /// Schedules `action` `delay` after the current time.
  void schedule_in(SimTime delay, std::function<void()> action) {
    schedule(now_ + delay, std::move(action));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Pops and executes the earliest event; advances the clock to its time.
  /// Returns false when the queue is empty.
  bool step();

  /// Runs events until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = static_cast<std::size_t>(-1));

  /// Runs events with time <= `until` (events beyond stay queued).
  std::size_t run_until(SimTime until);

  /// Discards every pending event and rewinds the clock to 0 — reuse across
  /// independent simulation runs (e.g. per-trial churn replays) without
  /// reconstructing the queue.
  void reset();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> action;
    bool operator>(const Entry& other) const noexcept {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace p2p::sim
