// Multi-trial experiment driver.
//
// The paper's experiments repeat each configuration over many freshly built
// networks ("for each value of p, we ran 1000 simulations") and average.
// run_trials fans trials across a thread pool with one independent,
// deterministic Rng stream per trial; results come back in trial order so
// output is reproducible regardless of scheduling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace p2p::sim {

/// Runs `fn(trial_index, rng)` for each trial on `pool`, collecting scalar
/// results in trial order. Each trial's Rng stream derives from `seed` and
/// the trial index, so results are independent of thread scheduling.
[[nodiscard]] std::vector<double> run_trials(
    util::ThreadPool& pool, std::size_t trials, std::uint64_t seed,
    const std::function<double(std::size_t, util::Rng&)>& fn);

/// As run_trials, but each trial yields a vector of metrics (e.g. failure
/// fraction and mean hops). All trials must return the same length.
[[nodiscard]] std::vector<std::vector<double>> run_trials_multi(
    util::ThreadPool& pool, std::size_t trials, std::uint64_t seed,
    const std::function<std::vector<double>(std::size_t, util::Rng&)>& fn);

/// Column-wise accumulation of run_trials_multi output.
[[nodiscard]] std::vector<util::Accumulator> accumulate_columns(
    const std::vector<std::vector<double>>& rows);

}  // namespace p2p::sim
