#include "sim/experiment.h"

#include "util/require.h"

namespace p2p::sim {

std::vector<double> run_trials(util::ThreadPool& pool, std::size_t trials,
                               std::uint64_t seed,
                               const std::function<double(std::size_t, util::Rng&)>& fn) {
  std::vector<double> results(trials, 0.0);
  pool.parallel_for(trials, [&](std::size_t trial) {
    util::Rng rng = util::substream(seed, trial);
    results[trial] = fn(trial, rng);
  });
  return results;
}

std::vector<std::vector<double>> run_trials_multi(
    util::ThreadPool& pool, std::size_t trials, std::uint64_t seed,
    const std::function<std::vector<double>(std::size_t, util::Rng&)>& fn) {
  std::vector<std::vector<double>> results(trials);
  pool.parallel_for(trials, [&](std::size_t trial) {
    util::Rng rng = util::substream(seed, trial);
    results[trial] = fn(trial, rng);
  });
  return results;
}

std::vector<util::Accumulator> accumulate_columns(
    const std::vector<std::vector<double>>& rows) {
  std::vector<util::Accumulator> columns;
  for (const auto& row : rows) {
    if (columns.size() < row.size()) columns.resize(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) columns[c].add(row[c]);
  }
  return columns;
}

}  // namespace p2p::sim
