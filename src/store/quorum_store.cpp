#include "store/quorum_store.h"

#include <algorithm>
#include <limits>

#include "dht/hash.h"
#include "util/require.h"

namespace p2p::store {

namespace {

using graph::NodeId;

/// Per-hint accounting overhead charged to repair/hint traffic on top of the
/// value bytes (version + addressing).
constexpr std::size_t kRecordOverhead = 16;

/// In-flight replica sub-query of one wave.
struct SubQuery {
  std::uint32_t op = 0;
  NodeId replica = 0;
  /// The failed primary this standby stands in for (hinted handoff), or
  /// kInvalidNode for a primary attempt.
  NodeId hint_for = graph::kInvalidNode;
  /// Virtual launch time within the op (failovers start after the failed
  /// attempt's completion plus backoff).
  double launch_ms = 0.0;
};

/// Mutable per-op state across waves.
struct OpState {
  std::array<NodeId, kMaxReplicas> cand{};
  std::size_t cand_count = 0;
  std::size_t primaries = 0;
  std::size_t next_standby = 0;
  std::uint64_t digest = 0;
  Version put_version;
  util::Rng lat_rng{0};
  std::uint32_t acks = 0;
  std::uint32_t responses = 0;
  std::uint32_t subqueries = 0;
  std::uint32_t failovers = 0;
  std::uint64_t hops = 0;
  double latency_ms = 0.0;
  bool quorum = false;
  bool found = false;
  Version best;
  std::string best_value;
};

}  // namespace

QuorumStore::QuorumStore(const graph::OverlayGraph& g, QuorumConfig config)
    : graph_(&g), config_(config), storage_(g.size()) {
  util::require(config_.k >= 1, "QuorumStore: k must be >= 1");
  util::require(config_.r >= 1 && config_.r <= config_.k,
                "QuorumStore: R must be in [1, k]");
  util::require(config_.w >= 1 && config_.w <= config_.k,
                "QuorumStore: W must be in [1, k]");
  util::require(config_.k + config_.max_failovers <= kMaxReplicas,
                "QuorumStore: k + max_failovers exceeds kMaxReplicas");
  util::require(config_.timeout_ms > 0.0, "QuorumStore: timeout must be > 0");
}

metric::Point QuorumStore::point_of(std::uint64_t digest) const noexcept {
  return static_cast<metric::Point>(digest % graph_->space().size());
}

bool QuorumStore::apply_write(NodeId node, std::uint64_t digest,
                              const Version& version, std::string_view value) {
  bool first_copy = false;
  bool changed = false;
  {
    std::lock_guard lock(node_mutex_[node_stripe(node)].m);
    auto& map = storage_[node];
    auto it = map.find(digest);
    if (it == map.end()) {
      map.emplace(digest, Stored{version, std::string(value)});
      first_copy = changed = true;
    } else if (version.newer_than(it->second.version)) {
      it->second.version = version;
      it->second.value.assign(value);
      changed = true;
    }
  }
  if (first_copy) {
    std::lock_guard lock(key_mutex_[key_stripe(digest)].m);
    auto& holders = directory_[key_stripe(digest)][digest].holders;
    if (std::find(holders.begin(), holders.end(), node) == holders.end()) {
      holders.push_back(node);
    }
  }
  return changed;
}

Version QuorumStore::next_version(std::uint64_t digest, NodeId writer) {
  std::lock_guard lock(key_mutex_[key_stripe(digest)].m);
  KeyInfo& ki = directory_[key_stripe(digest)][digest];
  return Version{++ki.issued, writer};
}

void QuorumStore::commit(std::uint64_t digest, const Version& version) {
  std::lock_guard lock(key_mutex_[key_stripe(digest)].m);
  KeyInfo& ki = directory_[key_stripe(digest)][digest];
  if (ki.committed.seq == 0) {
    keys_committed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (version.newer_than(ki.committed)) ki.committed = version;
  // A committed seq must never outrun the issue counter (install() commits
  // versions it issued itself; run_batch issues before routing).
  if (version.seq > ki.issued) ki.issued = version.seq;
}

std::optional<QuorumStore::Stored> QuorumStore::read_replica(
    NodeId node, std::uint64_t digest) const {
  std::lock_guard lock(node_mutex_[node_stripe(node)].m);
  const auto& map = storage_[node];
  const auto it = map.find(digest);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

void QuorumStore::run_batch(const core::Router& router, std::span<const Op> ops,
                            std::span<OpResult> results,
                            std::uint64_t seed_base, StoreTelemetry telem) {
  util::require(results.size() >= ops.size(),
                "QuorumStore: results span shorter than ops");
  util::require(&router.graph() == graph_,
                "QuorumStore: router is over a different graph");
  const failure::FailureView& view = router.view();
  const std::size_t want = config_.k + config_.max_failovers;

  // Latency streams live in a substream family distinct from the routing
  // one: op i's per-hop draws depend only on (seed_base, i), never on wave
  // composition.
  const std::uint64_t lat_base = util::splitmix64(seed_base ^ 0x9d5c0f1e6b7a3d42ULL);

  std::vector<OpState> states(ops.size());
  std::vector<SubQuery> inflight;
  std::vector<SubQuery> next;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    OpState& st = states[i];
    util::require_in_range(op.client < graph_->size(),
                           "QuorumStore: op client out of range");
    st.digest = dht::key_digest(op.key);
    st.lat_rng = util::substream(lat_base, i);
    st.cand_count = nearest_live(view, point_of(st.digest), want,
                                 std::span<NodeId>(st.cand));
    st.primaries = std::min(config_.k, st.cand_count);
    st.next_standby = st.primaries;
    if (op.type == OpType::kPut) {
      st.put_version = next_version(st.digest, op.client);
    }
    const std::size_t fanout = op.type == OpType::kPut
                                   ? st.primaries
                                   : std::min(config_.r, st.primaries);
    for (std::size_t t = 0; t < fanout; ++t) {
      inflight.push_back(SubQuery{static_cast<std::uint32_t>(i), st.cand[t],
                                  graph::kInvalidNode, 0.0});
    }
  }

  std::vector<core::Query> queries;
  std::vector<core::RouteResult> rres;
  std::size_t wave = 0;
  while (!inflight.empty()) {
    queries.clear();
    queries.reserve(inflight.size());
    for (const SubQuery& sq : inflight) {
      queries.push_back(core::Query{ops[sq.op].client,
                                    graph_->position(sq.replica)});
    }
    rres.assign(inflight.size(), core::RouteResult{});
    util::Rng wave_rng = util::substream(seed_base, wave);
    router.route_batch(queries, rres, wave_rng, config_.batch);

    next.clear();
    for (std::size_t j = 0; j < inflight.size(); ++j) {
      const SubQuery& sq = inflight[j];
      const Op& op = ops[sq.op];
      OpState& st = states[sq.op];
      ++st.subqueries;
      telem.recorder.add(telem.metrics.subqueries);
      st.hops += rres[j].hops;

      bool success = false;
      double cost = config_.timeout_ms;  // a lost sub-query is waited out
      if (rres[j].delivered()) {
        double lat = 0.0;
        for (std::size_t h = 0; h < rres[j].hops; ++h) {
          lat += config_.latency.sample(st.lat_rng);
        }
        if (lat <= config_.timeout_ms) {
          success = true;
          cost = lat;
        } else {
          telem.recorder.add(telem.metrics.timeouts);
        }
      } else {
        telem.recorder.add(telem.metrics.unreachable);
      }
      const double done_ms = sq.launch_ms + cost;
      st.latency_ms = std::max(st.latency_ms, done_ms);

      if (success) {
        if (op.type == OpType::kPut) {
          apply_write(sq.replica, st.digest, st.put_version, op.value);
          ++st.acks;
          st.quorum = st.acks >= config_.w;
          if (config_.hinted_handoff && sq.hint_for != graph::kInvalidNode) {
            std::lock_guard lock(hints_mutex_);
            hints_.push_back(
                Hint{sq.hint_for, st.digest, st.put_version, op.value});
            telem.recorder.add(telem.metrics.hints_stored);
          }
        } else {
          ++st.responses;
          st.quorum = st.responses >= config_.r;
          if (auto stored = read_replica(sq.replica, st.digest)) {
            if (!st.found || stored->version.newer_than(st.best)) {
              st.best = stored->version;
              st.best_value = std::move(stored->value);
            }
            st.found = true;
          }
        }
      } else if (!st.quorum && st.next_standby < st.cand_count) {
        // Failover: promote the next standby, inheriting the hint target of
        // the primary this attempt chain started from.
        const NodeId standby = st.cand[st.next_standby++];
        const NodeId hint_for =
            sq.hint_for != graph::kInvalidNode ? sq.hint_for : sq.replica;
        ++st.failovers;
        telem.recorder.add(telem.metrics.failovers);
        next.push_back(
            SubQuery{sq.op, standby, hint_for, done_ms + config_.backoff_ms});
      }
    }
    inflight.swap(next);
    ++wave;
  }

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    OpState& st = states[i];
    OpResult& res = results[i];
    res = OpResult{};
    res.acks = st.acks;
    res.responses = st.responses;
    res.subqueries = st.subqueries;
    res.failovers = st.failovers;
    res.hops = st.hops;
    res.latency_ms = st.latency_ms;
    telem.recorder.observe(telem.metrics.op_hops, st.hops);
    telem.recorder.observe(
        telem.metrics.op_latency_us,
        static_cast<std::uint64_t>(st.latency_ms * 1000.0));

    if (op.type == OpType::kPut) {
      telem.recorder.add(telem.metrics.puts);
      telem.recorder.observe(telem.metrics.op_acks, st.acks);
      res.ok = st.acks >= config_.w;
      res.version = st.put_version;
      if (res.ok) {
        commit(st.digest, st.put_version);
      } else {
        telem.recorder.add(telem.metrics.put_quorum_fail);
      }
      continue;
    }

    telem.recorder.add(telem.metrics.gets);
    telem.recorder.observe(telem.metrics.op_acks, st.responses);
    res.ok = st.responses >= config_.r;
    res.found = st.found;
    if (!res.ok) telem.recorder.add(telem.metrics.get_quorum_fail);
    if (!st.found) {
      telem.recorder.add(telem.metrics.not_found);
      continue;
    }
    res.version = st.best;
    res.value = st.best_value;
    {
      std::lock_guard lock(key_mutex_[key_stripe(st.digest)].m);
      const auto& shard = directory_[key_stripe(st.digest)];
      const auto it = shard.find(st.digest);
      if (it != shard.end() && it->second.committed.newer_than(st.best)) {
        res.stale = true;
      }
    }
    if (res.stale) telem.recorder.add(telem.metrics.stale_reads);
    if (config_.read_repair && res.ok) {
      // Push the returned version to live primaries holding less. apply_write
      // merges by max version, so repairing with a stale read is harmless.
      for (std::size_t t = 0; t < st.primaries; ++t) {
        const NodeId p = st.cand[t];
        if (!view.node_alive(p)) continue;
        const auto stored = read_replica(p, st.digest);
        if (stored && !st.best.newer_than(stored->version)) continue;
        if (apply_write(p, st.digest, st.best, st.best_value)) {
          telem.recorder.add(telem.metrics.repair_pushes);
          telem.recorder.add(telem.metrics.repair_bytes,
                             st.best_value.size() + kRecordOverhead);
        }
      }
    }
  }
  telem.recorder.set(telem.metrics.keys, key_count());
}

Version QuorumStore::install(const failure::FailureView& view,
                             std::string_view key, std::string_view value,
                             NodeId writer) {
  const std::uint64_t digest = dht::key_digest(key);
  const Version version = next_version(digest, writer);
  std::array<NodeId, kMaxReplicas> cand{};
  const std::size_t n = nearest_live(view, point_of(digest), config_.k,
                                     std::span<NodeId>(cand));
  for (std::size_t t = 0; t < n; ++t) {
    apply_write(cand[t], digest, version, value);
  }
  commit(digest, version);
  return version;
}

void QuorumStore::forget(NodeId node) {
  std::unordered_map<std::uint64_t, Stored> dropped;
  {
    std::lock_guard lock(node_mutex_[node_stripe(node)].m);
    dropped.swap(storage_[node]);
  }
  for (const auto& [digest, stored] : dropped) {
    std::lock_guard lock(key_mutex_[key_stripe(digest)].m);
    auto& shard = directory_[key_stripe(digest)];
    const auto it = shard.find(digest);
    if (it == shard.end()) continue;
    auto& holders = it->second.holders;
    holders.erase(std::remove(holders.begin(), holders.end(), node),
                  holders.end());
  }
}

std::size_t QuorumStore::deliver_hints(const failure::FailureView& view,
                                       StoreTelemetry telem) {
  std::vector<Hint> pending;
  {
    std::lock_guard lock(hints_mutex_);
    pending.swap(hints_);
  }
  std::size_t delivered = 0;
  std::vector<Hint> keep;
  for (Hint& h : pending) {
    if (!view.node_alive(h.target)) {
      keep.push_back(std::move(h));
      continue;
    }
    apply_write(h.target, h.digest, h.version, h.value);
    ++delivered;
    telem.recorder.add(telem.metrics.hints_delivered);
    telem.recorder.add(telem.metrics.repair_bytes,
                       h.value.size() + kRecordOverhead);
  }
  if (!keep.empty()) {
    std::lock_guard lock(hints_mutex_);
    hints_.insert(hints_.end(), std::make_move_iterator(keep.begin()),
                  std::make_move_iterator(keep.end()));
  }
  return delivered;
}

SweepStats QuorumStore::repair_sweep(const failure::FailureView& view,
                                     StoreTelemetry telem) {
  SweepStats stats;
  std::array<NodeId, kMaxReplicas> cand{};
  for (std::size_t s = 0; s < kStripes; ++s) {
    // Snapshot the stripe's committed keys, then work lock-free per key
    // (replica reads/writes take the node-stripe locks themselves).
    std::vector<std::pair<std::uint64_t, KeyInfo>> keys;
    {
      std::lock_guard lock(key_mutex_[s].m);
      keys.reserve(directory_[s].size());
      for (const auto& [digest, ki] : directory_[s]) {
        if (ki.committed.seq > 0) keys.emplace_back(digest, ki);
      }
    }
    for (const auto& [digest, ki] : keys) {
      ++stats.examined;
      const std::size_t n = nearest_live(view, point_of(digest), config_.k,
                                         std::span<NodeId>(cand));
      std::vector<NodeId> missing;
      for (std::size_t t = 0; t < n; ++t) {
        const auto stored = read_replica(cand[t], digest);
        if (!stored || ki.committed.newer_than(stored->version)) {
          missing.push_back(cand[t]);
        }
      }
      if (missing.empty()) continue;

      // Source: any live holder with a version >= the committed one.
      std::optional<Stored> source;
      for (const NodeId holder : ki.holders) {
        if (!view.node_alive(holder)) continue;
        auto stored = read_replica(holder, digest);
        if (stored && !ki.committed.newer_than(stored->version)) {
          source = std::move(stored);
          break;
        }
      }
      if (!source) {
        ++stats.lost;
        continue;
      }
      ++stats.degraded;
      for (const NodeId target : missing) {
        if (apply_write(target, digest, source->version, source->value)) {
          telem.recorder.add(telem.metrics.repair_pushes);
          telem.recorder.add(telem.metrics.repair_bytes,
                             source->value.size() + kRecordOverhead);
        }
      }
      ++stats.repaired;
    }
  }
  telem.recorder.set(telem.metrics.degraded_keys, stats.degraded + stats.lost);
  telem.recorder.set(telem.metrics.keys, key_count());
  return stats;
}

std::optional<Version> QuorumStore::latest_committed(
    std::string_view key) const {
  const std::uint64_t digest = dht::key_digest(key);
  std::lock_guard lock(key_mutex_[key_stripe(digest)].m);
  const auto& shard = directory_[key_stripe(digest)];
  const auto it = shard.find(digest);
  if (it == shard.end() || it->second.committed.seq == 0) return std::nullopt;
  return it->second.committed;
}

std::optional<std::pair<Version, std::string>> QuorumStore::replica(
    NodeId node, std::string_view key) const {
  const auto stored = read_replica(node, dht::key_digest(key));
  if (!stored) return std::nullopt;
  return std::make_pair(stored->version, stored->value);
}

std::size_t QuorumStore::pending_hints() const {
  std::lock_guard lock(hints_mutex_);
  return hints_.size();
}

}  // namespace p2p::store
