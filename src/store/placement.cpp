#include "store/placement.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/require.h"
#include "util/thread_pool.h"

namespace p2p::store {

namespace {

using graph::NodeId;
using metric::Distance;

/// One (distance, id) selection candidate; the (d, id) lexicographic order is
/// the placement order ((distance, position) — node ids ascend with
/// positions, so comparing ids compares positions).
struct Cand {
  Distance d;
  NodeId id;
  [[nodiscard]] bool before(const Cand& other) const noexcept {
    return d != other.d ? d < other.d : id < other.id;
  }
};

constexpr Distance kInfDist = std::numeric_limits<Distance>::max();

/// 1-D walk: the k nearest nodes of p form a contiguous run of the
/// position-sorted node order, so two cursors expanding outward from the
/// nearest node visit candidates in exact (distance, position) order.
std::size_t nearest_live_1d(const failure::FailureView& view, metric::Point p,
                            std::size_t count, std::span<NodeId> out) {
  const graph::OverlayGraph& g = view.graph();
  const metric::Space& space = g.space();
  const auto m = static_cast<std::int64_t>(g.size());
  const bool ring = space.kind() == metric::Space::Kind::kRing;

  const auto start = static_cast<std::int64_t>(g.node_nearest(p));
  auto wrap = [m](std::int64_t i) noexcept { return ((i % m) + m) % m; };
  auto cand_at = [&](std::int64_t i) noexcept {
    const auto id = static_cast<NodeId>(i);
    return Cand{space.distance(g.position(id), p), id};
  };

  // Cursor "next" positions: left emits start, start-1, ...; right emits
  // start+1, start+2, ... Together they consider each node exactly once
  // while `consumed` stays below m.
  std::int64_t left = start;
  std::int64_t right = start + 1;
  std::size_t consumed = 0;
  std::size_t emitted = 0;
  while (emitted < count && consumed < static_cast<std::size_t>(m)) {
    const bool left_ok = ring || left >= 0;
    const bool right_ok = ring || right < m;
    Cand cl = left_ok ? cand_at(wrap(left)) : Cand{kInfDist, 0};
    Cand cr = right_ok ? cand_at(wrap(right)) : Cand{kInfDist, 0};
    if (!right_ok || (left_ok && cl.before(cr))) {
      --left;
      ++consumed;
      if (view.node_alive(cl.id)) out[emitted++] = cl.id;
    } else {
      ++right;
      ++consumed;
      if (view.node_alive(cr.id)) out[emitted++] = cr.id;
    }
  }
  return emitted;
}

/// Bounded insertion of c into the sorted prefix heap[0..filled): keeps the
/// best `count` candidates in (d, id) order.
void insert_bounded(std::vector<Cand>& best, std::size_t count, Cand c) {
  if (best.size() == count && !c.before(best.back())) return;
  auto it = std::upper_bound(
      best.begin(), best.end(), c,
      [](const Cand& a, const Cand& b) { return a.before(b); });
  best.insert(it, c);
  if (best.size() > count) best.pop_back();
}

/// Torus scan over one id range: local top-`count` by (d, id).
std::vector<Cand> scan_range(const failure::FailureView& view, metric::Point p,
                             std::size_t count, std::size_t lo, std::size_t hi) {
  const graph::OverlayGraph& g = view.graph();
  const metric::Space& space = g.space();
  std::vector<Cand> best;
  best.reserve(count);
  for (std::size_t u = lo; u < hi; ++u) {
    const auto id = static_cast<NodeId>(u);
    if (!view.node_alive(id)) continue;
    insert_bounded(best, count, Cand{space.distance(g.position(id), p), id});
  }
  return best;
}

std::size_t emit(const std::vector<Cand>& best, std::span<NodeId> out) {
  for (std::size_t i = 0; i < best.size(); ++i) out[i] = best[i].id;
  return best.size();
}

void check_args(const failure::FailureView& view, metric::Point p,
                std::size_t count, std::span<NodeId> out) {
  util::require(view.graph().size() > 0, "nearest_live: empty graph");
  util::require(view.graph().space().contains(p),
                "nearest_live: point outside the space");
  util::require(count <= kMaxReplicas, "nearest_live: count > kMaxReplicas");
  util::require(out.size() >= count, "nearest_live: out span too small");
}

}  // namespace

std::size_t nearest_live(const failure::FailureView& view, metric::Point p,
                         std::size_t count, std::span<NodeId> out) {
  check_args(view, p, count, out);
  if (count == 0) return 0;
  if (view.graph().space().one_dimensional()) {
    return nearest_live_1d(view, p, count, out);
  }
  return emit(scan_range(view, p, count, 0, view.graph().size()), out);
}

std::size_t nearest_live(const failure::FailureView& view, metric::Point p,
                         std::size_t count, std::span<NodeId> out,
                         util::ThreadPool& pool) {
  check_args(view, p, count, out);
  if (count == 0) return 0;
  if (view.graph().space().one_dimensional()) {
    return nearest_live_1d(view, p, count, out);  // already O(k); no fan-out
  }
  const std::size_t n = view.graph().size();
  // Exact top-`count` under the (d, id) total order is unique, so merging
  // per-chunk top-`count` lists reproduces the serial scan bit-for-bit no
  // matter how the range was cut.
  auto best = pool.parallel_reduce(
      n, pool.thread_count() * 4, std::vector<Cand>{},
      [&](std::size_t lo, std::size_t hi) {
        return scan_range(view, p, count, lo, hi);
      },
      [&](std::vector<Cand> acc, std::vector<Cand> part) {
        for (const Cand& c : part) insert_bounded(acc, count, c);
        return acc;
      });
  return emit(best, out);
}

std::vector<graph::NodeId> replica_set(const failure::FailureView& view,
                                       metric::Point p, std::size_t k) {
  std::vector<NodeId> out(std::min(k, kMaxReplicas));
  out.resize(nearest_live(view, p, out.size(), out));
  return out;
}

}  // namespace p2p::store
