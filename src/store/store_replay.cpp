#include "store/store_replay.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "failure/failure_model.h"
#include "util/require.h"
#include "util/rng.h"

namespace p2p::store {

StoreReplayStats replay_store(QuorumStore& store, const churn::ChurnLog& log,
                              const StoreReplayConfig& cfg,
                              StoreTelemetry telem) {
  util::require(&log.graph() == &store.graph(),
                "replay_store: log is over a different graph");
  util::require(cfg.keys >= 1, "replay_store: keys must be >= 1");
  util::require(cfg.ops_per_ms >= 0.0, "replay_store: ops_per_ms must be >= 0");

  const graph::OverlayGraph& g = store.graph();
  failure::FailureView view = log.baseline();
  util::Rng rng(cfg.seed);
  StoreReplayStats stats;
  stats.epochs = log.size();

  std::vector<std::string> keyspace;
  keyspace.reserve(cfg.keys);
  for (std::size_t i = 0; i < cfg.keys; ++i) {
    keyspace.push_back("obj-" + std::to_string(i));
  }
  for (const std::string& key : keyspace) {
    store.install(view, key, "v0-" + key);
  }
  telem.recorder.set(telem.metrics.keys, store.key_count());

  std::vector<Op> ops;
  std::vector<OpResult> results;
  double prev_when = 0.0;
  double carry = 0.0;
  std::uint64_t value_counter = 0;

  for (std::size_t e = 0; e < log.size(); ++e) {
    const failure::FailureDelta& delta = log.delta(e);
    carry += std::max(0.0, delta.when - prev_when) * cfg.ops_per_ms;
    prev_when = delta.when;
    const auto n_ops = static_cast<std::size_t>(carry);
    carry -= static_cast<double>(n_ops);

    if (n_ops > 0) {
      ops.clear();
      for (std::size_t j = 0; j < n_ops; ++j) {
        Op op;
        op.type = rng.next_bool(cfg.read_fraction) ? OpType::kGet : OpType::kPut;
        op.client = view.random_alive(rng);
        op.key = keyspace[rng.next_below(keyspace.size())];
        if (op.type == OpType::kPut) {
          char value[24];
          std::snprintf(value, sizeof value, "v%llu",
                        static_cast<unsigned long long>(++value_counter));
          op.value = value;
        }
        ops.push_back(std::move(op));
      }
      results.assign(ops.size(), OpResult{});
      const core::Router router(g, view, cfg.router);
      store.run_batch(router, ops, results,
                      util::splitmix64(cfg.seed ^ (e + 1)), telem);
      for (std::size_t j = 0; j < ops.size(); ++j) {
        const OpResult& res = results[j];
        if (ops[j].type == OpType::kPut) {
          ++stats.puts;
          stats.put_ok += res.ok ? 1 : 0;
        } else {
          ++stats.gets;
          stats.get_ok += res.ok ? 1 : 0;
          stats.stale_reads += res.stale ? 1 : 0;
        }
        stats.failovers += res.failovers;
        stats.subqueries += res.subqueries;
      }
    }

    // Crash amnesia precedes the view flip: the replicas die with the node.
    for (const graph::NodeId u : delta.node_kills) store.forget(u);
    view.apply(delta);
    stats.hints_delivered += store.deliver_hints(view, telem);
  }

  // Recovery: flush hints against the healed membership, then sweep until a
  // pass finds nothing repairable. The first sweep measures the damage the
  // trace left behind; recovery_ms charges one interval per pass.
  stats.hints_delivered += store.deliver_hints(view, telem);
  for (std::size_t s = 0; s < cfg.max_sweeps; ++s) {
    const SweepStats sw = store.repair_sweep(view, telem);
    ++stats.sweeps_used;
    if (s == 0) {
      stats.degraded_keys = sw.degraded + sw.lost;
      stats.lost_keys = sw.lost;
    }
    stats.repaired_keys += sw.repaired;
    if (sw.degraded == 0) {
      stats.lost_keys = sw.lost;
      break;
    }
  }
  stats.recovery_ms =
      static_cast<double>(stats.sweeps_used) * cfg.sweep_interval_ms;
  return stats;
}

}  // namespace p2p::store
