// End-to-end churn replay of the quorum store: one ChurnLog trace driven
// through a QuorumStore, interleaving client operations with epoch deltas —
// the object-availability counterpart of churn::Replay's routing replay.
//
// The loop is the same discrete-event merge churn::Replay performs: between
// consecutive deltas, the window's worth of client ops (ops_per_ms, a
// read_fraction get/put mix over a preloaded keyspace) runs as one
// QuorumStore::run_batch against the current view; then the delta applies —
// with crash *amnesia*: a killed node forgets its replicas before the view
// flips, so a later revival returns empty and must be re-filled by
// read-repair, hinted handoff, or an anti-entropy sweep. After the trace,
// deliver_hints() flushes writes hinted during outages and up to max_sweeps
// repair passes measure the recovery window: how much replication the trace
// degraded, and how fast anti-entropy restores it.
//
// Deterministic: (store config, log, replay config) fixes every op, every
// latency draw and every routing stream bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>

#include "churn/churn_log.h"
#include "core/router.h"
#include "store/quorum_store.h"
#include "store/store_telemetry.h"

namespace p2p::store {

struct StoreReplayConfig {
  /// Preloaded keyspace size ("obj-0".."obj-<keys-1>", installed at epoch 0).
  std::size_t keys = 512;
  /// Client operations per virtual ms of trace time.
  double ops_per_ms = 2.0;
  /// Fraction of ops that are gets (the rest are puts of fresh values).
  double read_fraction = 0.7;
  std::uint64_t seed = 1;
  /// Routing behaviour of the replica sub-queries.
  core::RouterConfig router;
  /// Virtual cost charged per post-trace anti-entropy pass (the recovery
  /// window is sweeps_used * sweep_interval_ms).
  double sweep_interval_ms = 10.0;
  std::size_t max_sweeps = 16;
};

struct StoreReplayStats {
  std::size_t puts = 0;
  std::size_t gets = 0;
  std::size_t put_ok = 0;
  std::size_t get_ok = 0;
  std::size_t stale_reads = 0;
  std::size_t failovers = 0;
  std::size_t subqueries = 0;
  std::size_t hints_delivered = 0;
  std::uint64_t epochs = 0;

  /// Damage at trace end (first post-trace sweep): keys whose live primary
  /// set was missing the latest committed version...
  std::size_t degraded_keys = 0;
  /// ...of which this many had no live copy at all (unrepairable until a
  /// revival; excluded from the recovery-fraction denominator).
  std::size_t lost_keys = 0;
  /// Degraded keys restored to full live replication by the sweeps.
  std::size_t repaired_keys = 0;
  std::size_t sweeps_used = 0;
  double recovery_ms = 0.0;

  [[nodiscard]] std::size_t ops() const noexcept { return puts + gets; }
  [[nodiscard]] double put_availability() const noexcept {
    return puts == 0 ? 1.0
                     : static_cast<double>(put_ok) / static_cast<double>(puts);
  }
  [[nodiscard]] double get_availability() const noexcept {
    return gets == 0 ? 1.0
                     : static_cast<double>(get_ok) / static_cast<double>(gets);
  }
  [[nodiscard]] double availability() const noexcept {
    return ops() == 0 ? 1.0
                      : static_cast<double>(put_ok + get_ok) /
                            static_cast<double>(ops());
  }
  /// Fraction of repairable degraded keys the sweeps restored.
  [[nodiscard]] double recovered_fraction() const noexcept {
    const std::size_t repairable = degraded_keys - lost_keys;
    return repairable == 0 ? 1.0
                           : static_cast<double>(repaired_keys) /
                                 static_cast<double>(repairable);
  }
};

/// Replays `log` through `store`. Preconditions: the log is over the store's
/// graph, and the store is freshly constructed (the preload installs the
/// keyspace at epoch 0).
StoreReplayStats replay_store(QuorumStore& store, const churn::ChurnLog& log,
                              const StoreReplayConfig& cfg,
                              StoreTelemetry telem = {});

}  // namespace p2p::store
