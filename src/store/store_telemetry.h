// Telemetry surface of the replicated object store: every quorum outcome the
// ISSUE's acceptance criteria name (quorum achieved/failed, repair bytes,
// staleness, failover count) flows through telemetry::Registry handles — no
// ad-hoc tallies on the store hot path.
//
// Same shape as service/service_telemetry.h: a Metrics struct registered once
// (create()), and a per-writer-thread bundle pairing a Recorder with the
// handles. The store records per *operation*, not per hop — the routing layer
// underneath already has its own RouteTelemetry; these keys cover what the
// quorum layer adds on top.
#pragma once

#include <string>

#include "telemetry/metric_registry.h"

namespace p2p::store {

/// Registered store metric handles. Key table (also in README):
///   store.puts / store.gets           quorum operations started
///   store.put_quorum_fail             puts that ended with acks < W
///   store.get_quorum_fail             gets that ended with responses < R
///   store.subqueries                  routed replica sub-queries issued
///   store.failovers                   standby replicas promoted mid-op
///   store.timeouts                    sub-queries lost to latency > timeout
///   store.unreachable                 sub-queries lost to routing failure
///   store.stale_reads                 gets that observed < latest committed
///   store.not_found                   gets for keys with no surviving value
///   store.repair_pushes/.repair_bytes read-repair + sweep traffic
///   store.hints_stored/.hints_delivered  hinted-handoff lifecycle
///   store.op_latency_us / .op_hops / .op_acks  per-op distributions
///   store.keys / store.degraded_keys  directory size / last sweep's damage
struct StoreMetrics {
  telemetry::Counter puts;
  telemetry::Counter gets;
  telemetry::Counter put_quorum_fail;
  telemetry::Counter get_quorum_fail;
  telemetry::Counter subqueries;
  telemetry::Counter failovers;
  telemetry::Counter timeouts;
  telemetry::Counter unreachable;
  telemetry::Counter stale_reads;
  telemetry::Counter not_found;
  telemetry::Counter repair_pushes;
  telemetry::Counter repair_bytes;
  telemetry::Counter hints_stored;
  telemetry::Counter hints_delivered;
  telemetry::Histogram op_latency_us;
  telemetry::Histogram op_hops;
  telemetry::Histogram op_acks;
  telemetry::Gauge keys;
  telemetry::Gauge degraded_keys;

  static StoreMetrics create(telemetry::Registry& reg,
                             const std::string& prefix = "store") {
    StoreMetrics m;
    m.puts = reg.counter(prefix + ".puts");
    m.gets = reg.counter(prefix + ".gets");
    m.put_quorum_fail = reg.counter(prefix + ".put_quorum_fail");
    m.get_quorum_fail = reg.counter(prefix + ".get_quorum_fail");
    m.subqueries = reg.counter(prefix + ".subqueries");
    m.failovers = reg.counter(prefix + ".failovers");
    m.timeouts = reg.counter(prefix + ".timeouts");
    m.unreachable = reg.counter(prefix + ".unreachable");
    m.stale_reads = reg.counter(prefix + ".stale_reads");
    m.not_found = reg.counter(prefix + ".not_found");
    m.repair_pushes = reg.counter(prefix + ".repair_pushes");
    m.repair_bytes = reg.counter(prefix + ".repair_bytes");
    m.hints_stored = reg.counter(prefix + ".hints_stored");
    m.hints_delivered = reg.counter(prefix + ".hints_delivered");
    m.op_latency_us = reg.histogram(prefix + ".op_latency_us", 2.0,
                                    std::uint64_t{1} << 30);
    m.op_hops = reg.histogram(prefix + ".op_hops");
    m.op_acks = reg.histogram(prefix + ".op_acks", 2.0, 256);
    m.keys = reg.gauge(prefix + ".keys");
    m.degraded_keys = reg.gauge(prefix + ".degraded_keys");
    return m;
  }
};

/// One writer thread's store telemetry: a shard-bound Recorder plus the
/// shared handles. Copyable; a default-constructed bundle drops everything
/// (the registry-less path costs two null checks per op).
struct StoreTelemetry {
  telemetry::Recorder recorder;
  StoreMetrics metrics;
};

}  // namespace p2p::store
