// Quorum-replicated key-value objects over the routing core — the "hash
// table-like functionality" §1 of the paper promises, hardened the way the
// robust-DHT literature (DistHash in PAPERS.md) hardens it: every object
// lives on the k nearest live nodes to its hashed point (store/placement.h),
// and reads/writes are quorum operations against that replica set.
//
// Execution model. The store simulates the data plane on top of the real
// control plane: replica sub-queries are genuine routed searches through
// Router::route_batch over the caller's FailureView (a dead or partitioned
// replica is unreachable because greedy routing cannot reach it, not because
// a flag says so), while replica *storage* is process-local state the
// simulator owns. Per sub-query latency is the sum of per-hop
// sim::LatencyModel draws; a sub-query whose routed latency exceeds
// timeout_ms is lost in flight (a timed-out write is NOT applied — the
// message died, it does not arrive late), which is what makes the
// slow-replica column of the failure matrix distinct from the dead-replica
// column (README "Replicated objects").
//
// Quorum state machine, per operation:
//   1. placement: cand = the (k + max_failovers) nearest live nodes; the
//      first k are primaries, the rest standbys.
//   2. wave 0: a put routes to all k primaries, a get to the first R.
//   3. each failed sub-query (routing stuck/TTL, or latency > timeout) fails
//      over to the next unused standby with backoff_ms added — a sloppy
//      quorum: a standby ack counts toward W, and (hinted_handoff) the write
//      is remembered as a hint against the failed primary, delivered when
//      deliver_hints() sees the primary alive again.
//   4. a put is ok at acks >= W (the version is then committed in the
//      directory); a get is ok at responses >= R, returning the max version
//      observed (per-key monotonic seq, writer id as tiebreak).
//   5. (read_repair) an ok get pushes the returned version to any live
//      primary holding an older or missing copy.
//
// The directory (per-key issued/committed version counters) models the
// client-side causal metadata a real deployment carries in its requests; it
// is bookkeeping, not a replica — losing a node never touches it.
//
// Concurrency: run_batch may be called from many threads at once (the
// StoreService stripes one op span across workers, each binding its own
// pinned-snapshot Router). Replica storage and the directory are
// stripe-locked (64 node stripes, 64 key stripes, never held together);
// concurrent writers to the same replica merge by max version, so replicas
// are convergent last-writer-wins registers. With a static view and distinct
// keys per stripe, per-op results are bit-identical across worker counts
// (same contract as RoutingService; tests/store_service_test.cpp pins it).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/router.h"
#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "sim/network_sim.h"
#include "store/placement.h"
#include "store/store_telemetry.h"
#include "util/rng.h"

namespace p2p::store {

/// Object version: per-key monotonic sequence with the coordinating node as
/// a total-order tiebreak. seq 0 is "never written".
struct Version {
  std::uint64_t seq = 0;
  graph::NodeId writer = 0;

  friend bool operator==(const Version&, const Version&) = default;
  [[nodiscard]] bool newer_than(const Version& o) const noexcept {
    return seq != o.seq ? seq > o.seq : writer > o.writer;
  }
};

struct QuorumConfig {
  /// Replication degree, read quorum, write quorum (R, W <= k).
  std::size_t k = 3;
  std::size_t r = 2;
  std::size_t w = 2;
  /// Standby replicas available for failover, beyond the k primaries.
  /// k + max_failovers <= kMaxReplicas.
  std::size_t max_failovers = 2;
  /// Per-hop latency draw for replica sub-queries.
  sim::LatencyModel latency{1.0, 2.0};
  /// A sub-query slower than this is lost in flight.
  double timeout_ms = 120.0;
  /// Added launch delay per failover attempt.
  double backoff_ms = 5.0;
  bool read_repair = true;
  bool hinted_handoff = true;
  /// Pipeline shape for the routed sub-query batches.
  core::BatchConfig batch;
};

enum class OpType : std::uint8_t { kGet, kPut };

/// One client operation: `client` is the coordinating node sub-queries route
/// from.
struct Op {
  OpType type = OpType::kGet;
  graph::NodeId client = 0;
  std::string key;
  std::string value;  ///< puts only
};

/// Outcome of one quorum operation.
struct OpResult {
  bool ok = false;     ///< quorum reached (acks >= W / responses >= R)
  bool found = false;  ///< gets: some replica returned a value
  bool stale = false;  ///< gets: returned version < latest committed
  std::uint32_t acks = 0;
  std::uint32_t responses = 0;
  std::uint32_t subqueries = 0;
  std::uint32_t failovers = 0;
  std::uint64_t hops = 0;    ///< routed hops across all sub-queries
  double latency_ms = 0.0;   ///< completion of the op's last sub-query
  Version version{};         ///< committed version (put) / returned (get)
  std::string value;         ///< gets only
};

/// One anti-entropy pass (repair_sweep).
struct SweepStats {
  std::size_t examined = 0;
  /// Keys whose current live primary set is missing the latest committed
  /// version while some live node still holds it.
  std::size_t degraded = 0;
  /// Degraded keys restored to full live replication by this pass.
  std::size_t repaired = 0;
  /// Keys whose latest committed version survives on no live node (only a
  /// revival — and then a hint or sweep — can bring these back).
  std::size_t lost = 0;
};

class QuorumStore {
 public:
  /// The graph must outlive the store. Throws std::invalid_argument on an
  /// inconsistent config (r/w outside [1, k], k + max_failovers beyond
  /// kMaxReplicas).
  explicit QuorumStore(const graph::OverlayGraph& g, QuorumConfig config = {});

  QuorumStore(const QuorumStore&) = delete;
  QuorumStore& operator=(const QuorumStore&) = delete;

  [[nodiscard]] const QuorumConfig& config() const noexcept { return config_; }
  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept {
    return *graph_;
  }

  /// Executes ops[i] into results[i] as routed quorum operations against
  /// `router`'s (graph, view). The router must be over graph(). Op i draws
  /// its latency stream from util::substream families of (seed_base, i), so
  /// a (ops, view, seed_base) triple is deterministic; thread-safe against
  /// concurrent run_batch/forget/deliver_hints/repair_sweep calls.
  void run_batch(const core::Router& router, std::span<const Op> ops,
                 std::span<OpResult> results, std::uint64_t seed_base,
                 StoreTelemetry telem = {});

  /// Directly installs key=value on its current k primaries and commits the
  /// version — the non-routed preload path for replays and benches.
  Version install(const failure::FailureView& view, std::string_view key,
                  std::string_view value, graph::NodeId writer = 0);

  /// Crash amnesia: a node that failed loses its replica contents. Replays
  /// call this for every killed node; a later revival comes back empty.
  void forget(graph::NodeId node);

  /// Delivers pending hinted-handoff writes whose target is alive in `view`;
  /// returns how many were delivered.
  std::size_t deliver_hints(const failure::FailureView& view,
                            StoreTelemetry telem = {});

  /// One anti-entropy pass: for every committed key, re-derive the k-primary
  /// set under `view` and push the latest committed version to live
  /// primaries missing it (sourced from any live holder).
  SweepStats repair_sweep(const failure::FailureView& view,
                          StoreTelemetry telem = {});

  // -- Introspection (tests, analysis) --------------------------------------

  /// Latest committed version of `key`, if any write ever reached quorum.
  [[nodiscard]] std::optional<Version> latest_committed(
      std::string_view key) const;

  /// The replica of `key` held at `node`, if any.
  [[nodiscard]] std::optional<std::pair<Version, std::string>> replica(
      graph::NodeId node, std::string_view key) const;

  /// Committed keys in the directory.
  [[nodiscard]] std::size_t key_count() const noexcept {
    return keys_committed_.load(std::memory_order_relaxed);
  }

  /// Undelivered hinted-handoff writes.
  [[nodiscard]] std::size_t pending_hints() const;

 private:
  static constexpr std::size_t kStripes = 64;

  struct alignas(64) PaddedMutex {
    std::mutex m;
  };

  struct Stored {
    Version version;
    std::string value;
  };

  struct KeyInfo {
    /// Highest version seq ever issued for the key (>= committed.seq);
    /// concurrent puts to one key get distinct seqs.
    std::uint64_t issued = 0;
    Version committed;
    /// Nodes holding any version of the key (repair-source index).
    std::vector<graph::NodeId> holders;
  };

  struct Hint {
    graph::NodeId target = 0;
    std::uint64_t digest = 0;
    Version version;
    std::string value;
  };

  [[nodiscard]] static std::size_t node_stripe(graph::NodeId u) noexcept {
    return u % kStripes;
  }
  [[nodiscard]] static std::size_t key_stripe(std::uint64_t digest) noexcept {
    return digest % kStripes;
  }
  [[nodiscard]] metric::Point point_of(std::uint64_t digest) const noexcept;

  /// Stores (version, value) at `node` if newer than what it holds; keeps
  /// the holders index current. Returns true when the replica changed.
  bool apply_write(graph::NodeId node, std::uint64_t digest,
                   const Version& version, std::string_view value);

  /// Issues the next version for `digest` (bumps the per-key issued counter).
  Version next_version(std::uint64_t digest, graph::NodeId writer);

  /// Commits `version` as the key's latest if it is the newest committed.
  void commit(std::uint64_t digest, const Version& version);

  [[nodiscard]] std::optional<Stored> read_replica(graph::NodeId node,
                                                   std::uint64_t digest) const;

  const graph::OverlayGraph* graph_;
  QuorumConfig config_;

  /// Per-node replica contents, stripe-locked by node id.
  std::vector<std::unordered_map<std::uint64_t, Stored>> storage_;
  mutable std::array<PaddedMutex, kStripes> node_mutex_;

  /// Per-key directory shards, stripe-locked by digest.
  std::array<std::unordered_map<std::uint64_t, KeyInfo>, kStripes> directory_;
  mutable std::array<PaddedMutex, kStripes> key_mutex_;

  mutable std::mutex hints_mutex_;
  std::vector<Hint> hints_;

  std::atomic<std::size_t> keys_committed_{0};
};

}  // namespace p2p::store
