// Replica placement: the k nearest *live* nodes to a point of the overlay
// metric — the successor-style neighbourhood a replicated object lives on.
//
// §1 of the paper promises "hash table-like functionality"; the robust-DHT
// literature (DistHash in PAPERS.md) replicates each object on the k members
// closest to its hashed point so that no single crash loses a key. Placement
// here is a pure function of (FailureView, point, k): the same view bits
// always select the same replica set, so any two nodes that agree on the
// failure view agree on every object's replica set — no placement metadata
// is exchanged, exactly like consistent hashing's successor lists.
//
// Ordering is (metric distance, position) ascending, the same tie-break
// node_nearest uses, so replica_set(view, p, 1)[0] is the key's legacy
// single-homed owner and growing k only ever appends.
//
// Complexity: on the line and the ring the k nearest nodes of any point form
// a contiguous run of the position-sorted node order, so selection is a
// two-cursor outward walk from the nearest node — O(k + dead skipped),
// independent of n. On the torus the flattened order is not metric order and
// selection is an O(n·k) bounded-insertion scan; the pooled overload fans
// that scan (per-range top-k, deterministic merge) and is bit-identical to
// the serial walk. Torus-placed stores are a test/demo-scale configuration;
// the availability benches run on the ring.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "metric/space.h"

namespace p2p::util {
class ThreadPool;
}  // namespace p2p::util

namespace p2p::store {

/// Upper bound on one selection request (primaries + failover standbys).
/// Keeps per-op replica state in fixed-size arrays on the quorum hot path.
inline constexpr std::size_t kMaxReplicas = 64;

/// Fills out[0..] with the up-to-`count` nearest live nodes to `p`, ordered
/// by (distance, position) ascending, and returns how many were written
/// (< count only when fewer than `count` nodes are alive). Allocation-free.
/// Preconditions: view's graph is non-empty, space contains p,
/// count <= kMaxReplicas <= out.size().
std::size_t nearest_live(const failure::FailureView& view, metric::Point p,
                         std::size_t count, std::span<graph::NodeId> out);

/// Pool-fanned variant of the torus scan (1-D spaces take the serial walk
/// regardless — it is already O(k)). Bit-identical to the serial overload.
std::size_t nearest_live(const failure::FailureView& view, metric::Point p,
                         std::size_t count, std::span<graph::NodeId> out,
                         util::ThreadPool& pool);

/// Allocating convenience wrapper: the k-replica set of a key point.
[[nodiscard]] std::vector<graph::NodeId> replica_set(
    const failure::FailureView& view, metric::Point p, std::size_t k);

}  // namespace p2p::store
