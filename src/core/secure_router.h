// Byzantine-tolerant routing by redundancy (§7 future work, realized).
//
// A greedy sender cannot distinguish a Byzantine next hop from an honest
// one, so any single greedy walk is hostage to every node on its path. The
// classic mitigation (cf. S/Kademlia's disjoint-path lookups) is to launch
// k walks over *diverse first hops*: walk i leaves the source over its i-th
// best candidate, so the walks tend to traverse disjoint regions, and the
// search succeeds if any walk reaches the target.
//
// The walk semantics under attack:
//  * an honest node forwards greedily (best live candidate);
//  * a kDrop Byzantine node swallows the message — the walk dies silently;
//  * a kMisroute Byzantine node forwards to a uniformly random neighbour;
//    the walk continues but its progress is destroyed (it still counts
//    against the TTL, and may never recover).
//
// The destination validates content by key (§2's metric-space invariant:
// the *location* of a resource is checkable by anyone), so a Byzantine node
// cannot forge a successful delivery — it can only prevent one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/router.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::core {

/// Redundant-routing knobs.
struct SecureRouterConfig {
  /// Number of parallel walks (1 = plain greedy).
  std::size_t paths = 3;
  /// Per-walk hop budget; 0 = automatic (same rule as RouterConfig::ttl).
  std::size_t ttl = 0;
  /// What Byzantine nodes do to messages they should forward.
  failure::ByzantineBehavior behavior = failure::ByzantineBehavior::kDrop;
};

/// Outcome of a redundant search.
struct SecureRouteResult {
  bool delivered = false;
  /// Walks that reached the target.
  std::size_t successful_walks = 0;
  /// Total messages across all walks (the redundancy cost).
  std::size_t total_messages = 0;
  /// Hops of the fastest successful walk (0 when none succeeded).
  std::size_t best_hops = 0;
};

/// Greedy router hardened with k diverse redundant walks.
class SecureRouter {
 public:
  /// All referenced objects must outlive the router; `byzantine` must be
  /// over the same graph as `view`.
  SecureRouter(const graph::OverlayGraph& g, const failure::FailureView& view,
               const failure::ByzantineSet& byzantine, SecureRouterConfig config);

  /// Launches config.paths walks from src toward the node nearest `target`.
  [[nodiscard]] SecureRouteResult route(graph::NodeId src, metric::Point target,
                                        util::Rng& rng) const;

  [[nodiscard]] const SecureRouterConfig& config() const noexcept { return config_; }

 private:
  /// Per-route() scratch shared by all k walks: an epoch-stamped visited
  /// marker (no clearing between walks) and a reusable first-hop ranking
  /// buffer. One allocation per route() call; the walk loop itself is
  /// allocation-free.
  struct WalkScratch {
    std::vector<std::uint32_t> visited_epoch;
    std::vector<std::pair<metric::Distance, graph::NodeId>> ranked;
    std::uint32_t epoch = 0;
  };

  /// One walk; `first_hop_rank` indexes the source's candidate list so that
  /// different walks leave over different links.
  struct WalkResult {
    bool delivered = false;
    std::size_t hops = 0;
  };
  [[nodiscard]] WalkResult walk(graph::NodeId src, graph::NodeId target_node,
                                metric::Point goal, std::size_t first_hop_rank,
                                WalkScratch& scratch, util::Rng& rng) const;

  const graph::OverlayGraph* graph_;
  const failure::FailureView* view_;
  const failure::ByzantineSet* byzantine_;
  Router greedy_;  // candidate machinery reused from the plain router
  SecureRouterConfig config_;
};

}  // namespace p2p::core
