// Byzantine-tolerant routing by redundancy (§7 future work, realized).
//
// A greedy sender cannot distinguish a Byzantine next hop from an honest
// one, so any single greedy walk is hostage to every node on its path. The
// classic mitigation (cf. S/Kademlia's disjoint-path lookups) is to launch
// k walks over *diverse first hops*: walk i leaves the source over its i-th
// best candidate, so the walks tend to traverse disjoint regions, and the
// search succeeds if any walk reaches the target.
//
// The walk semantics under attack:
//  * an honest node forwards greedily (best live candidate);
//  * a kDrop Byzantine node swallows the message — the walk dies silently;
//  * a kMisroute Byzantine node forwards to a uniformly random neighbour;
//    the walk continues but its progress is destroyed (it still counts
//    against the TTL, and may never recover).
//
// The destination validates content by key (§2's metric-space invariant:
// the *location* of a resource is checkable by anyone), so a Byzantine node
// cannot forge a successful delivery — it can only prevent one.
//
// Beyond plain redundancy, two adaptive layers (both off by default):
//  * retry/backoff — when every walk of a batch dies, escalate: launch
//    further batches over later-ranked first hops, up to
//    SecureRouterConfig::max_paths total walks;
//  * reputation feedback — with a failure::ReputationTable wired in, each
//    walk's locally observable outcome is attributed to nodes (died-at-hop,
//    regressed-a-message, timed-out, delivered) and the resulting distrust
//    mask biases candidate selection away from suspects via the Router's
//    trust sideband. Distrust never partitions reachability: when the
//    trusted selection has no candidate the walk falls back to the plain
//    greedy choice, so a heavily penalized neighbourhood degrades to
//    ordinary routing instead of going dark, and decay_epoch() lets healed
//    nodes recover (graceful degradation, not blacklisting).
//
// Like the plain Router, three entry points share one implementation:
// route() walks a search synchronously, SecureRouteSession advances the
// same search one message transmission at a time (the discrete-event
// replay's unit — sessions re-read the failure view *and* the Byzantine set
// every step, so crash churn and corrupt/heal events mid-search are
// honoured), and SecureBatchPipeline rotates many sessions round-robin for
// replay throughput. route() is the session ticked to completion, so all
// three stay bit-identical per query.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/router.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "failure/reputation.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::core {

struct SecureTelemetry;  // core/route_telemetry.h — walk-outcome metric sink

/// Redundant-routing knobs.
struct SecureRouterConfig {
  /// Number of parallel walks per batch (1 = plain greedy).
  std::size_t paths = 3;
  /// Per-walk hop budget; 0 = automatic (same rule as RouterConfig::ttl).
  std::size_t ttl = 0;
  /// What Byzantine nodes do to messages they should forward.
  failure::ByzantineBehavior behavior = failure::ByzantineBehavior::kDrop;
  /// Escalation ceiling on total walks per query: when a whole batch ends
  /// with zero deliveries and fewer than max_paths walks have launched,
  /// another batch of `paths` walks goes out over later-ranked first hops.
  /// 0 (default) disables escalation (max_paths == paths).
  std::size_t max_paths = 0;
  /// Optional reputation feedback (see the file comment). The table must be
  /// over the same graph and outlive the router; it is *mutated* by routing
  /// (outcome attribution), which is the point. nullptr = off.
  failure::ReputationTable* reputation = nullptr;
  /// Record a per-walk WalkReport in SecureRouteResult::walks.
  bool record_walks = false;
  /// Optional walk-outcome/escalation/reputation-attribution metrics
  /// (core/route_telemetry.h). Recorded once per retired query plus one
  /// counter bump per reputation observation; null = off. The bundle's
  /// Recorder shard must belong to the thread routing through this router.
  SecureTelemetry* telemetry = nullptr;
};

/// How one walk ended.
enum class WalkOutcome : std::uint8_t {
  kDelivered,   ///< reached the target node
  kDied,        ///< blackholed by a Byzantine node or stranded on a crash
  kStuck,       ///< honest node with no unvisited live closer candidate
  kTtlExpired,  ///< hop budget exhausted (e.g. misrouted into a loop)
};

/// Per-walk attribution, recorded when SecureRouterConfig::record_walks.
struct WalkReport {
  WalkOutcome outcome = WalkOutcome::kStuck;
  /// Messages this walk transmitted.
  std::size_t hops = 0;
  /// Rank of the source link the walk left over (the diversity index).
  std::size_t first_hop_rank = 0;
  /// Where the walk ended: the target (kDelivered), the node it died at
  /// (kDied), or where it was stranded (kStuck / kTtlExpired).
  graph::NodeId last = graph::kInvalidNode;
};

/// Outcome of a redundant search.
struct SecureRouteResult {
  bool delivered = false;
  /// Walks that reached the target.
  std::size_t successful_walks = 0;
  /// Total messages across all walks (the redundancy cost).
  std::size_t total_messages = 0;
  /// Hops of the fastest successful walk (0 when none succeeded).
  std::size_t best_hops = 0;
  /// Walks launched in total (paths + any escalation batches).
  std::size_t walks_launched = 0;
  /// Outcome attribution across all launched walks.
  std::size_t walks_died = 0;
  std::size_t walks_stuck = 0;
  std::size_t walks_ttl_expired = 0;
  /// Escalation batches taken beyond the first (0 = first batch sufficed or
  /// escalation disabled).
  std::size_t escalations = 0;
  /// FailureView::epoch() / ByzantineSet::epoch() when the search
  /// terminated — buckets each outcome against both adversarial timelines
  /// under replay (static scenarios leave them 0).
  std::uint64_t completion_epoch = 0;
  std::uint64_t byzantine_epoch = 0;
  /// Per-walk reports when SecureRouterConfig::record_walks is set.
  std::vector<WalkReport> walks;
};

/// Greedy router hardened with k diverse redundant walks.
class SecureRouter {
 public:
  /// All referenced objects must outlive the router; `byzantine` (and
  /// config.reputation, when set) must be over the same graph as `view`.
  SecureRouter(const graph::OverlayGraph& g, const failure::FailureView& view,
               const failure::ByzantineSet& byzantine, SecureRouterConfig config);

  /// Launches config.paths walks from src toward the node nearest `target`
  /// (plus escalation batches, when enabled). Implemented as a
  /// SecureRouteSession ticked to completion — bit-identical to stepping one
  /// yourself.
  [[nodiscard]] SecureRouteResult route(graph::NodeId src, metric::Point target,
                                        util::Rng& rng) const;

  [[nodiscard]] const SecureRouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const failure::FailureView& view() const noexcept { return *view_; }
  [[nodiscard]] const failure::ByzantineSet& byzantine() const noexcept {
    return *byzantine_;
  }
  /// The reputation table routing feeds, or nullptr when off.
  [[nodiscard]] failure::ReputationTable* reputation() const noexcept {
    return config_.reputation;
  }

  /// Effective per-walk hop budget (config.ttl or the automatic rule).
  [[nodiscard]] std::size_t walk_ttl() const noexcept;
  /// Effective escalation ceiling (config.max_paths or paths when disabled).
  [[nodiscard]] std::size_t max_walks() const noexcept;

 private:
  friend class SecureRouteSession;

  const graph::OverlayGraph* graph_;
  const failure::FailureView* view_;
  const failure::ByzantineSet* byzantine_;
  /// Candidate machinery reused from the plain router: greedy_ selects with
  /// no trust mask (the fallback / reputation-off path), trusted_ carries
  /// the distrust sideband when reputation is wired (and aliases greedy_'s
  /// behaviour while nobody is distrusted — the mask self-gates).
  Router greedy_;
  Router trusted_;
  SecureRouterConfig config_;
};

/// One in-flight redundant search, advanced a single message transmission
/// (or terminal walk event) at a time. Walks run sequentially within the
/// session; the failure view and Byzantine set are re-read every tick, so
/// mid-search churn and corrupt/heal events are honoured — a walk standing
/// on a node killed by a replay delta dies on its next tick rather than
/// stepping out of a crashed node.
class SecureRouteSession {
 public:
  /// Preconditions as SecureRouter::route. Allocates the visited array once
  /// (one u32 per node); restart() reuses it.
  SecureRouteSession(const SecureRouter& router, graph::NodeId src,
                     metric::Point target);

  /// Rebinds the session to a fresh search, reusing all buffers — the batch
  /// pipeline's lane-refill path.
  void restart(graph::NodeId src, metric::Point target);

  /// Advances by one message transmission or one terminal walk event.
  /// Returns false once the whole search has terminated (results in
  /// result()).
  bool tick(util::Rng& rng);

  [[nodiscard]] bool finished() const noexcept { return done_; }
  /// The accumulated outcome; complete once finished().
  [[nodiscard]] const SecureRouteResult& result() const noexcept { return result_; }

 private:
  /// Starts walk number result_.walks_launched (bookkeeping only — no
  /// message moves until the next tick()).
  void start_walk();
  /// Terminal transition of the active walk: accumulates the outcome,
  /// attributes reputation, and decides continue / escalate / finish.
  void finish_walk(WalkOutcome outcome);

  const SecureRouter* router_;
  graph::NodeId src_ = 0;
  graph::NodeId target_node_ = 0;
  metric::Point goal_ = 0;

  // Active walk state.
  bool walk_active_ = false;
  bool first_hop_ = true;
  graph::NodeId current_ = 0;
  metric::Distance current_dist_ = 0;
  std::size_t budget_ = 0;
  std::size_t walk_hops_ = 0;
  std::size_t batch_left_ = 0;  // walks remaining in the current batch

  // Shared per-session scratch: epoch-stamped visited markers (no clearing
  // between walks or restarts), the first-hop ranking buffer, and the
  // active walk's path (kept only when reputation feedback needs to reward
  // a delivered walk's relay nodes).
  std::vector<std::uint32_t> visited_epoch_;
  std::vector<std::pair<metric::Distance, graph::NodeId>> ranked_;
  std::vector<graph::NodeId> path_;
  std::uint32_t epoch_ = 0;

  bool done_ = false;
  SecureRouteResult result_;
};

/// Round-robin scheduler over many SecureRouteSessions — the secure twin of
/// core::BatchPipeline, minus the prefetch machinery (secure walks are
/// dominated by redundancy, not header latency). Lane i of the batch runs on
/// util::substream(seed_base, i), so results are bit-identical to routing
/// each query directly with that stream, independent of width or
/// interleaving — and, as with BatchPipeline, the failure view and Byzantine
/// set may be mutated *between ticks* (sessions re-read both every step),
/// which is exactly how churn::AdversarialReplay composes the two
/// adversarial timelines with routing.
class SecureBatchPipeline {
 public:
  /// `queries` and `results` must outlive the pipeline;
  /// results.size() >= queries.size().
  SecureBatchPipeline(const SecureRouter& router, std::span<const Query> queries,
                      std::span<SecureRouteResult> results,
                      std::uint64_t seed_base, std::size_t width = 32);

  /// Advances one in-flight search by one transmission. Returns false once
  /// every query has retired (the final retiring advance included).
  bool tick();

  /// Ticks until every query has retired.
  void run() {
    while (tick()) {
    }
  }

  [[nodiscard]] std::size_t in_flight() const noexcept { return lanes_.size(); }
  [[nodiscard]] std::size_t retired() const noexcept { return retired_; }
  /// The query index retired by the most recent tick() that increased
  /// retired() — at most one retires per tick. Meaningful only immediately
  /// after such a tick; replay drivers use it to timestamp completions.
  [[nodiscard]] std::size_t last_retired_query() const noexcept {
    return last_retired_;
  }

 private:
  struct Lane {
    SecureRouteSession session;
    util::Rng rng;
    std::size_t query = 0;
  };

  const SecureRouter* router_;
  std::span<const Query> queries_;
  std::span<SecureRouteResult> results_;
  std::uint64_t seed_base_;
  std::vector<Lane> lanes_;
  std::size_t cursor_ = 0;
  std::size_t next_query_ = 0;
  std::size_t retired_ = 0;
  std::size_t last_retired_ = 0;
};

}  // namespace p2p::core
