// Greedy routing over the overlay, with the paper's failure-recovery
// strategies.
//
// §4.2.1 defines two greedy variants:
//  * two-sided — move to the neighbour minimising distance to the target,
//    regardless of which side of the target it lands on (the default);
//  * one-sided — never traverse a link that would take the message past the
//    target (models Chord-style unidirectional routing and is the variant
//    with the stronger lower bound).
//
// §6 studies three ways to recover when a node has no live neighbour closer
// to the target than itself:
//  * terminate      — the search fails;
//  * random reroute — deliver the message to a uniformly random live node,
//    then retry toward the original destination (Valiant-style [14]);
//  * backtracking   — keep the last `backtrack_window` (paper: 5) visited
//    nodes; when stuck, return to the most recent one and have it try its
//    next-best neighbour.
//
// Knowledge models: by default a node knows which of its neighbours are
// alive (kLiveness) and picks the best live one; the kStale ablation picks
// the best neighbour obliviously and triggers recovery when that single
// choice turns out dead, matching §6's remark that "once a node chooses its
// best neighbour, it does not send the message to any other link".
//
// The hot path is allocation-free: each hop streams over the node's CSR
// neighbour slice with select_candidate (a k-th order statistic scan over
// ~lg n links) instead of materializing and sorting a candidate vector. The
// vector-returning candidates() survives as the reference implementation
// for tests and offline analysis; select_candidate(u, t, rank) must always
// equal candidates(u, t)[rank].
//
// Two entry points share one implementation: Router::route() walks a search
// synchronously (hop counting, the paper's measurements), and RouteSession
// exposes the same walk one message-transmission at a time for the
// discrete-event simulator.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::core {

enum class Sidedness { kTwoSided, kOneSided };
enum class StuckPolicy { kTerminate, kRandomReroute, kBacktrack };
enum class Knowledge { kLiveness, kStale };

/// Routing behaviour knobs; value type, cheap to copy.
struct RouterConfig {
  Sidedness sidedness = Sidedness::kTwoSided;
  StuckPolicy stuck_policy = StuckPolicy::kTerminate;
  Knowledge knowledge = Knowledge::kLiveness;
  /// Number of recently visited nodes kept for backtracking (paper: 5).
  std::size_t backtrack_window = 5;
  /// Random-reroute attempts before giving up (the paper reroutes once).
  std::size_t max_reroutes = 1;
  /// Hop budget; 0 selects an automatic budget of max(64, 8·⌈lg n⌉²) hops,
  /// far above any successful search.
  std::size_t ttl = 0;
  /// Record the sequence of visited nodes in RouteResult::path.
  bool record_path = false;
};

/// Outcome of one routed search.
struct RouteResult {
  enum class Status { kDelivered, kStuck, kTtlExpired };
  Status status = Status::kStuck;
  /// Messages sent: every forward hop, reroute hop and backtrack return.
  std::size_t hops = 0;
  /// Backtrack returns taken (subset of hops).
  std::size_t backtracks = 0;
  /// Random reroutes consumed.
  std::size_t reroutes = 0;
  /// Visited nodes, when RouterConfig::record_path is set (src first).
  std::vector<graph::NodeId> path;

  [[nodiscard]] bool delivered() const noexcept {
    return status == Status::kDelivered;
  }
};

/// Stateless greedy router over a graph + failure view.
///
/// The router never mutates the graph or the view, so a single (graph, view)
/// pair can serve any number of concurrent route() calls (one Rng per
/// caller).
class Router {
 public:
  /// The referenced graph and view must outlive the router.
  Router(const graph::OverlayGraph& g, const failure::FailureView& view,
         RouterConfig config = {});

  /// Routes a message from node `src` to the node nearest `target`.
  ///
  /// Preconditions: src < graph size, space contains target. The result is
  /// kDelivered only if the message reached the node whose position is
  /// nearest to `target` among all nodes (dead or alive — callers pick live
  /// targets; a dead target makes delivery impossible by definition).
  [[nodiscard]] RouteResult route(graph::NodeId src, metric::Point target,
                                  util::Rng& rng) const;

  /// The single best next hop from `u` toward `target` under this
  /// configuration, or kInvalidNode when u is stuck. Ignores the stuck
  /// policy; used by the DHT layer for hop-at-a-time forwarding.
  [[nodiscard]] graph::NodeId next_hop(graph::NodeId u, metric::Point target) const;

  /// Streaming selection: the rank-th entry of candidates(u, target)
  /// (0 = best) without materializing the list, or kInvalidNode when fewer
  /// than rank+1 candidates exist. Allocation-free; O((rank+1)·degree).
  [[nodiscard]] graph::NodeId select_candidate(graph::NodeId u, metric::Point target,
                                               std::size_t rank) const noexcept;

  /// Live neighbours of u strictly closer to `target`, best first (ties by
  /// position). With Knowledge::kStale, candidates ignore node aliveness.
  /// Reference implementation for select_candidate; allocates — tests and
  /// analysis only, never the hot path.
  [[nodiscard]] std::vector<graph::NodeId> candidates(graph::NodeId u,
                                                      metric::Point target) const;

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const failure::FailureView& view() const noexcept { return *view_; }

  [[nodiscard]] std::size_t effective_ttl() const noexcept;

 private:
  const graph::OverlayGraph* graph_;
  const failure::FailureView* view_;
  RouterConfig config_;
};

/// One in-flight search, advanced a single message transmission at a time.
///
/// The session re-reads the failure view on every step, so views mutated
/// between steps (churn during a search) are honoured — exactly what the
/// discrete-event simulator needs.
class RouteSession {
 public:
  /// Preconditions as Router::route.
  RouteSession(const Router& router, graph::NodeId src, metric::Point target);

  enum class State { kInTransit, kDelivered, kStuck, kTtlExpired };

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool finished() const noexcept { return state_ != State::kInTransit; }
  [[nodiscard]] graph::NodeId current() const noexcept { return current_; }
  [[nodiscard]] graph::NodeId target_node() const noexcept { return target_node_; }

  /// Advances until the next physical message transmission or a terminal
  /// state. Returns the node the message moved to, or std::nullopt when the
  /// session ended (check state()). Each returned hop is one unit of
  /// delivery time.
  std::optional<graph::NodeId> step(util::Rng& rng);

  /// Hops, backtracks, reroutes and status so far (status meaningful once
  /// finished()).
  [[nodiscard]] const RouteResult& progress() const noexcept { return result_; }

 private:
  /// Fixed-capacity ring buffer of (node, next candidate rank) — the
  /// backtrack trail. Capacity backtrack_window; allocated lazily on the
  /// first push so terminate/reroute searches stay allocation-free.
  class Trail {
   public:
    void push(graph::NodeId node, std::size_t rank, std::size_t window) {
      if (buf_.empty()) buf_.resize(window);
      if (count_ == buf_.size()) {
        head_ = (head_ + 1) % buf_.size();  // evict the oldest
        --count_;
      }
      buf_[(head_ + count_) % buf_.size()] = {node, rank};
      ++count_;
    }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::pair<graph::NodeId, std::size_t> pop() noexcept {
      --count_;
      return buf_[(head_ + count_) % buf_.size()];
    }

   private:
    std::vector<std::pair<graph::NodeId, std::size_t>> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  const Router* router_;
  graph::NodeId current_;
  graph::NodeId target_node_;
  metric::Point final_goal_;
  std::optional<metric::Point> interim_;
  graph::NodeId interim_node_ = graph::kInvalidNode;
  Trail trail_;
  std::size_t cursor_ = 0;
  std::size_t budget_;
  State state_ = State::kInTransit;
  RouteResult result_;
};

}  // namespace p2p::core
