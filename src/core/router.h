// Greedy routing over the overlay, with the paper's failure-recovery
// strategies.
//
// §4.2.1 defines two greedy variants:
//  * two-sided — move to the neighbour minimising distance to the target,
//    regardless of which side of the target it lands on (the default);
//  * one-sided — never traverse a link that would take the message past the
//    target (models Chord-style unidirectional routing and is the variant
//    with the stronger lower bound). Sidedness is an ordering notion that
//    only 1-D spaces define; constructing a one-sided Router over a 2-D
//    (torus) overlay throws std::invalid_argument.
//
// §6 studies three ways to recover when a node has no live neighbour closer
// to the target than itself:
//  * terminate      — the search fails;
//  * random reroute — deliver the message to a uniformly random live node,
//    then retry toward the original destination (Valiant-style [14]);
//  * backtracking   — keep the last `backtrack_window` (paper: 5) visited
//    nodes; when stuck, return to the most recent one and have it try its
//    next-best neighbour.
//
// Knowledge models: by default a node knows which of its neighbours are
// alive (kLiveness) and picks the best live one; the kStale ablation picks
// the best neighbour obliviously and triggers recovery when that single
// choice turns out dead, matching §6's remark that "once a node chooses its
// best neighbour, it does not send the message to any other link".
//
// The hot path is allocation-free: each hop streams over the node's CSR
// neighbour slice with select_candidate (a k-th order statistic scan over
// ~lg n links) instead of materializing and sorting a candidate vector. The
// vector-returning candidates() survives as the reference implementation
// for tests and offline analysis; select_candidate(u, t, rank) must always
// equal candidates(u, t)[rank].
//
// Three entry points share one implementation: Router::route() walks a
// search synchronously (hop counting, the paper's measurements), RouteSession
// exposes the same walk one message-transmission at a time for the
// discrete-event simulator, and Router::route_batch() software-pipelines many
// independent searches through a rotating ring of RouteSessions. The shared
// per-hop advance lives in RouteSession::step_inline (this header) so all
// three stay bit-identical per query.
//
// Batching exists because a single search is a serial chain of dependent
// header loads (~one cache line per hop, see overlay_graph.h): at large n the
// scalar path is bound by DRAM latency, not work. route_batch keeps W
// searches in flight and advances them round-robin — each lane's next header
// was prefetched ~W ticks earlier, so the misses of independent searches
// overlap instead of serializing. Per-query results are bit-identical to
// route() seeded with util::substream(base, query_index), independent of the
// interleaving.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "failure/failure_model.h"
#include "graph/overlay_graph.h"
#include "metric/space.h"
#include "util/rng.h"

namespace p2p::failure {
class ReputationTable;  // failure/reputation.h — distrust mask provider
}

namespace p2p::telemetry {
class TraceBuffer;  // telemetry/flight_recorder.h — sampled hop-trail ring
}

namespace p2p::core {

struct RouteTelemetry;  // core/route_telemetry.h — per-query metric sink

enum class Sidedness { kTwoSided, kOneSided };
enum class StuckPolicy { kTerminate, kRandomReroute, kBacktrack };
enum class Knowledge { kLiveness, kStale };

/// Routing behaviour knobs; value type, cheap to copy.
struct RouterConfig {
  Sidedness sidedness = Sidedness::kTwoSided;
  StuckPolicy stuck_policy = StuckPolicy::kTerminate;
  Knowledge knowledge = Knowledge::kLiveness;
  /// Number of recently visited nodes kept for backtracking (paper: 5).
  std::size_t backtrack_window = 5;
  /// Random-reroute attempts before giving up (the paper reroutes once).
  std::size_t max_reroutes = 1;
  /// Hop budget; 0 selects an automatic budget of max(64, 8·⌈lg n⌉²) hops,
  /// far above any successful search.
  std::size_t ttl = 0;
  /// Record the sequence of visited nodes in RouteResult::path.
  bool record_path = false;
  /// Force the scalar selection table even where the vectorized scan is
  /// eligible. Results are identical by construction; tests and benches use
  /// this to pin SIMD against scalar on one host without mutating the
  /// process environment (P2P_NO_SIMD=1 is the env-level equivalent).
  bool force_scalar = false;
  /// Optional distrust mask (failure/reputation.h). When set, candidate
  /// selection skips neighbours the table currently distrusts — a third
  /// byte-sideband riding the masked-SIMD scan lanes next to the link/node
  /// liveness masks, with the scalar table as fallback. The table must be
  /// over the same graph and outlive the router; while its
  /// distrusted_count() is zero the mask costs nothing (the intact kernels
  /// dispatch). Distrust *biases* selection, it does not partition
  /// reachability: callers wanting a fallback route through distrusted
  /// nodes keep a second Router without the table (see core::SecureRouter).
  const failure::ReputationTable* reputation = nullptr;
};

/// Outcome of one routed search.
struct RouteResult {
  enum class Status { kDelivered, kStuck, kTtlExpired };
  Status status = Status::kStuck;
  /// Messages sent: every forward hop, reroute hop and backtrack return.
  std::size_t hops = 0;
  /// Backtrack returns taken (subset of hops).
  std::size_t backtracks = 0;
  /// Random reroutes consumed.
  std::size_t reroutes = 0;
  /// FailureView::epoch() at the moment the search terminated. Static views
  /// leave this 0; under delta-log churn (churn::Replay) it buckets each
  /// outcome against the churn timeline.
  std::uint64_t completion_epoch = 0;
  /// Visited nodes, when RouterConfig::record_path is set (src first).
  std::vector<graph::NodeId> path;

  [[nodiscard]] bool delivered() const noexcept {
    return status == Status::kDelivered;
  }
};

/// One search request of a batch: route from node `src` to the node nearest
/// `target`.
struct Query {
  graph::NodeId src = 0;
  metric::Point target = 0;
};

/// Shape of the software-pipelined batch: `width` searches in flight in a
/// rotating ring; each scheduler tick prefetches the header of the lane
/// `prefetch_distance` positions ahead before advancing the current lane, so
/// a lane's line is resident by the time its turn comes around.
struct BatchConfig {
  std::size_t width = 32;
  std::size_t prefetch_distance = 4;
  /// Optional per-query outcome metrics (core/route_telemetry.h). Resolved
  /// once at pipeline construction — the tick loop pays one predictable
  /// branch per *retired query*, nothing per hop — and compiled out entirely
  /// under P2P_TELEMETRY=OFF. Null = off. The bundle's Recorder shard must
  /// belong to the thread running the batch.
  RouteTelemetry* telemetry = nullptr;
  /// Optional sampled flight recorder (telemetry/flight_recorder.h). The
  /// buffer must be owned by the thread running the batch; sampled lanes
  /// append one HopRecord per transmission. Null = off.
  telemetry::TraceBuffer* trace = nullptr;
};

/// Stateless greedy router over a graph + failure view.
///
/// The router never mutates the graph or the view, so a single (graph, view)
/// pair can serve any number of concurrent route() calls (one Rng per
/// caller).
class Router {
 public:
  /// The referenced graph and view must outlive the router. Throws
  /// std::invalid_argument when config asks for one-sided routing over a
  /// graph whose metric is not one-dimensional (see Sidedness above).
  Router(const graph::OverlayGraph& g, const failure::FailureView& view,
         RouterConfig config = {});

  /// Routes a message from node `src` to the node nearest `target`.
  ///
  /// Preconditions: src < graph size, space contains target. The result is
  /// kDelivered only if the message reached the node whose position is
  /// nearest to `target` among all nodes (dead or alive — callers pick live
  /// targets; a dead target makes delivery impossible by definition).
  [[nodiscard]] RouteResult route(graph::NodeId src, metric::Point target,
                                  util::Rng& rng) const;

  /// Routes `queries` through the software-pipelined batch scheduler,
  /// writing results[i] for queries[i]. Preconditions as route() for every
  /// query; results must be at least as long as queries.
  ///
  /// Draws exactly one value `base` from `rng`; query i then runs on the
  /// private stream util::substream(base, i), so results[i] is bit-identical
  /// to route(queries[i].src, queries[i].target, util::substream(base, i))
  /// regardless of batch width, prefetch distance or interleaving.
  void route_batch(std::span<const Query> queries, std::span<RouteResult> results,
                   util::Rng& rng, const BatchConfig& batch = {}) const;

  /// The single best next hop from `u` toward `target` under this
  /// configuration, or kInvalidNode when u is stuck. Ignores the stuck
  /// policy; used by the DHT layer for hop-at-a-time forwarding.
  [[nodiscard]] graph::NodeId next_hop(graph::NodeId u, metric::Point target) const;

  /// Streaming selection: the rank-th entry of candidates(u, target)
  /// (0 = best) without materializing the list, or kInvalidNode when fewer
  /// than rank+1 candidates exist. Allocation-free; O((rank+1)·degree).
  [[nodiscard]] graph::NodeId select_candidate(graph::NodeId u, metric::Point target,
                                               std::size_t rank) const noexcept;

  /// Live neighbours of u strictly closer to `target`, best first (ties by
  /// position). With Knowledge::kStale, candidates ignore node aliveness.
  /// With RouterConfig::reputation set, currently-distrusted neighbours are
  /// filtered exactly as in select_candidate. Reference implementation for
  /// select_candidate; allocates — tests and analysis only, never the hot
  /// path.
  [[nodiscard]] std::vector<graph::NodeId> candidates(graph::NodeId u,
                                                      metric::Point target) const;

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const failure::FailureView& view() const noexcept { return *view_; }

  [[nodiscard]] std::size_t effective_ttl() const noexcept;

  /// True when this (graph, config, CPU) combination dispatches the
  /// vectorized rank-0 selection — intact and failure-masked variants alike.
  /// Informational (benches, tests asserting the fast path is actually
  /// exercised); selection results never depend on it.
  [[nodiscard]] bool simd_eligible() const noexcept { return simd_ok_; }

 private:
  const graph::OverlayGraph* graph_;
  const failure::FailureView* view_;
  RouterConfig config_;
  /// True when this (graph, config, CPU) combination may take the vectorized
  /// rank-0 selection fast path (see simd_eligible()).
  bool simd_ok_ = false;
};

/// One in-flight search, advanced a single message transmission at a time.
///
/// The session re-reads the failure view on every step, so views mutated
/// between steps (churn during a search) are honoured — exactly what the
/// discrete-event simulator needs.
class RouteSession {
 public:
  /// Preconditions as Router::route.
  RouteSession(const Router& router, graph::NodeId src, metric::Point target);

  enum class State { kInTransit, kDelivered, kStuck, kTtlExpired };

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool finished() const noexcept { return state_ != State::kInTransit; }
  [[nodiscard]] graph::NodeId current() const noexcept { return current_; }
  [[nodiscard]] graph::NodeId target_node() const noexcept { return target_node_; }

  /// Rebinds the session to a fresh search (preconditions as the
  /// constructor), reusing the trail and path buffers — the batch pipeline's
  /// lane-refill path. Never allocates unless record_path is set.
  void restart(graph::NodeId src, metric::Point target);

  /// Advances until the next physical message transmission or a terminal
  /// state. Returns the node the message moved to, or std::nullopt when the
  /// session ended (check state()). Each returned hop is one unit of
  /// delivery time.
  std::optional<graph::NodeId> step(util::Rng& rng);

  /// Body of step(), visible here so the batch pipeline's tick loop and the
  /// single-stream entry points compile against the one implementation and
  /// stay bit-identical per query. Allocation-free except record_path.
  std::optional<graph::NodeId> step_inline(util::Rng& rng) {
    if (state_ != State::kInTransit) return std::nullopt;
    const RouterConfig& cfg = router_->config();
    const graph::OverlayGraph& g = router_->graph();

    while (budget_ > 0) {
      --budget_;
      if (current_ == target_node_) {
        return finish(State::kDelivered, RouteResult::Status::kDelivered);
      }
      if (interim_ && current_ == interim_node_) {
        interim_.reset();  // reached the detour node; resume toward the target
        cursor_ = 0;
        continue;
      }
      const metric::Point goal = interim_ ? *interim_ : final_goal_;
      graph::NodeId next = router_->select_candidate(current_, goal, cursor_);
      if (next != graph::kInvalidNode && cfg.knowledge == Knowledge::kStale &&
          !router_->view().node_alive(next)) {
        // §6: "once a node chooses its best neighbour, it does not send the
        // message to any other link" — a dead pick means this node is stuck.
        next = graph::kInvalidNode;
      }

      if (next != graph::kInvalidNode) {
        if (cfg.stuck_policy == StuckPolicy::kBacktrack) {
          trail_.push(current_, cursor_ + 1);
        }
        last_rank_ = static_cast<std::uint32_t>(cursor_);
        current_ = next;
        cursor_ = 0;
        ++result_.hops;
        if (cfg.record_path) result_.path.push_back(current_);
        return current_;
      }

      // Stuck: no (further) live neighbour strictly closer to the goal.
      switch (cfg.stuck_policy) {
        case StuckPolicy::kTerminate:
          return finish(State::kStuck, RouteResult::Status::kStuck);
        case StuckPolicy::kRandomReroute: {
          if (result_.reroutes >= cfg.max_reroutes ||
              router_->view().alive_count() == 0) {
            return finish(State::kStuck, RouteResult::Status::kStuck);
          }
          ++result_.reroutes;
          interim_node_ = router_->view().random_alive(rng);
          interim_ = g.position(interim_node_);
          cursor_ = 0;
          continue;
        }
        case StuckPolicy::kBacktrack: {
          if (trail_.empty()) {
            return finish(State::kStuck, RouteResult::Status::kStuck);
          }
          const auto [prev, next_rank] = trail_.pop();
          last_rank_ = static_cast<std::uint32_t>(next_rank);
          current_ = prev;
          cursor_ = next_rank;
          ++result_.hops;  // the message physically travels back
          ++result_.backtracks;
          if (cfg.record_path) result_.path.push_back(current_);
          return current_;
        }
      }
    }
    return finish(State::kTtlExpired, RouteResult::Status::kTtlExpired);
  }

  /// Hops, backtracks, reroutes and status so far (status meaningful once
  /// finished()).
  [[nodiscard]] const RouteResult& progress() const noexcept { return result_; }

  /// Candidate rank of the most recent transmission: the rank the forward
  /// hop was selected at, or the resume rank of a backtrack return.
  /// Meaningful immediately after a step that returned a node; the flight
  /// recorder stamps it into sampled hop trails.
  [[nodiscard]] std::uint32_t last_rank() const noexcept { return last_rank_; }

 private:
  /// Terminal transition shared by every exit of step_inline: records the
  /// outcome and stamps the failure-view epoch the search ended at.
  std::optional<graph::NodeId> finish(State state,
                                      RouteResult::Status status) noexcept {
    state_ = state;
    result_.status = status;
    result_.completion_epoch = router_->view().epoch();
    return std::nullopt;
  }

  /// Fixed-capacity ring buffer of (node, next candidate rank) — the
  /// backtrack trail. Sessions under kBacktrack allocate the full window up
  /// front (the batch tick loop must never allocate mid-flight); other
  /// policies never push and carry an empty buffer.
  class Trail {
   public:
    Trail() = default;
    explicit Trail(std::size_t window) : buf_(window) {}
    /// Precondition: constructed with a window (kBacktrack sessions only).
    void push(graph::NodeId node, std::size_t rank) noexcept {
      if (count_ == buf_.size()) {
        head_ = (head_ + 1) % buf_.size();  // evict the oldest
        --count_;
      }
      buf_[(head_ + count_) % buf_.size()] = {node, rank};
      ++count_;
    }
    void clear() noexcept { head_ = count_ = 0; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::pair<graph::NodeId, std::size_t> pop() noexcept {
      --count_;
      return buf_[(head_ + count_) % buf_.size()];
    }

   private:
    std::vector<std::pair<graph::NodeId, std::size_t>> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  const Router* router_;
  graph::NodeId current_;
  graph::NodeId target_node_;
  metric::Point final_goal_;
  std::optional<metric::Point> interim_;
  graph::NodeId interim_node_ = graph::kInvalidNode;
  Trail trail_;
  std::size_t cursor_ = 0;
  std::size_t budget_;
  std::uint32_t last_rank_ = 0;
  State state_ = State::kInTransit;
  RouteResult result_;
};

/// The software-pipelined batch scheduler behind Router::route_batch,
/// exposed so churn experiments and tests can mutate the failure view
/// *between ticks* (sessions re-read the view every step, so mid-batch churn
/// is honoured exactly as in RouteSession).
///
/// Keeps min(width, #queries) lanes in flight. Each tick issues a prefetch
/// for the lane `prefetch_distance` ahead in the ring, advances the current
/// lane by one message transmission, retires it if finished, and refills the
/// lane from the pending queries (once those run out, retired lanes compact
/// out of the ring so the drain phase keeps prefetching over live lanes
/// only). After construction the tick loop performs no allocations
/// (record_path excepted).
class BatchPipeline {
 public:
  /// Lane i of the batch runs on util::substream(seed_base, i); see
  /// Router::route_batch for the determinism contract. `queries` and
  /// `results` must outlive the pipeline; results.size() >= queries.size().
  BatchPipeline(const Router& router, std::span<const Query> queries,
                std::span<RouteResult> results, std::uint64_t seed_base,
                const BatchConfig& config = {});

  /// Advances one in-flight search by one transmission. Returns false once
  /// every query has retired (the final retiring advance included).
  bool tick();

  /// Ticks until every query has retired.
  void run() {
    while (tick()) {
    }
  }

  [[nodiscard]] std::size_t in_flight() const noexcept { return lanes_.size(); }
  [[nodiscard]] std::size_t retired() const noexcept { return retired_; }

 private:
  /// Matches telemetry::TraceBuffer::kNone (static_asserted in router.cpp);
  /// kept local so this header needs only the forward declaration.
  static constexpr std::uint32_t kNoTrail = ~std::uint32_t{0};

  struct Lane {
    RouteSession session;
    util::Rng rng;
    std::size_t query = 0;
    std::uint32_t trail = kNoTrail;  // flight-recorder handle, when sampled
  };

  const Router* router_;
  std::span<const Query> queries_;
  std::span<RouteResult> results_;
  std::uint64_t seed_base_;
  std::size_t prefetch_distance_;
  RouteTelemetry* telemetry_ = nullptr;
  telemetry::TraceBuffer* trace_ = nullptr;
  std::vector<Lane> lanes_;     // every lane in the ring is in flight
  std::size_t cursor_ = 0;      // ring position of the lane advanced next
  std::size_t next_query_ = 0;  // first query not yet assigned to a lane
  std::size_t retired_ = 0;
};

}  // namespace p2p::core
