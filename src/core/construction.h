// Dynamic construction and maintenance of the overlay (§5).
//
// The invariant to maintain: at all times, the probability that node u has a
// long link to node v is Ω(1/d(u,v)). The heuristic achieves this without
// global coordination:
//
//  * A joining node v draws its ℓ outgoing links from the inverse power-law
//    distribution; a draw that lands on an unoccupied grid point snaps to
//    the closest occupied one (the "basin of attraction" argument of §5).
//  * v then estimates how many incoming links it "should" have — a
//    Poisson(ℓ) draw — and asks that many existing nodes (chosen by the same
//    distribution) for an incoming link.
//  * An asked node u with links at distances d_1..d_k accepts with
//    probability p_{k+1} / Σ_{j=1..k+1} p_j (p_i = 1/d_i, p_{k+1} = 1/d(u,v))
//    and redirects an existing link chosen with probability p_i / Σ_{j=1..k} p_j
//    — the Sarshar–Roychowdhury rule generalised to multiple links, which
//    makes the net change in u's link distribution exactly what the invariant
//    demands (the displayed equation at the end of §5).
//  * The alternative strategy studied in §5 — redirect the *oldest* link —
//    and a no-redirect ablation are selectable via ReplacePolicy.
//
// Departures: leave() lets every in-neighbour immediately redraw the lost
// link; crash() leaves dangling links behind that a later repair() pass (or
// the next routing failures) discovers — §5's "the same heuristic can be
// used for regeneration of links when a node crashes".
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "graph/link_distribution.h"
#include "graph/overlay_graph.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::core {

/// Which existing link an asked node redirects to the newcomer.
enum class ReplacePolicy {
  kPowerLaw,  ///< victim chosen with probability p_i / Σp_j (§5 main rule)
  kOldest,    ///< victim is the oldest link (§5 alternative)
  kNever      ///< never redirect (ablation: join out-links only)
};

/// Knobs of the §5 heuristic.
struct ConstructionConfig {
  std::size_t long_links = 1;  ///< ℓ, outgoing long links per node
  double exponent = 1.0;       ///< inverse power-law exponent
  ReplacePolicy replace_policy = ReplacePolicy::kPowerLaw;
};

/// A membership-aware overlay maintained incrementally by the §5 heuristic.
///
/// Grid positions of the space may be occupied or vacant; join/leave/crash
/// mutate membership and links. snapshot() exports the current overlay as a
/// compact OverlayGraph for use with Router/FailureView.
class DynamicOverlay {
 public:
  /// Preconditions: space.size() >= 2, cfg.long_links >= 1, exponent >= 0.
  DynamicOverlay(metric::Space1D space, ConstructionConfig cfg);

  [[nodiscard]] const metric::Space1D& space() const noexcept { return space_; }
  [[nodiscard]] const ConstructionConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return members_.size(); }
  [[nodiscard]] bool occupied(metric::Point p) const noexcept;

  /// Adds a node at the vacant position p and runs the §5 join protocol.
  /// Throws std::invalid_argument if p is occupied or outside the space.
  void join(metric::Point p, util::Rng& rng);

  /// Graceful departure: every in-neighbour redraws its lost link, then the
  /// node's own links are dismantled. Throws if p is not occupied.
  void leave(metric::Point p, util::Rng& rng);

  /// Abrupt failure: the node vanishes; links *to* it dangle until repair().
  /// Throws if p is not occupied.
  void crash(metric::Point p);

  /// Redraws every dangling long link (targets that no longer exist).
  /// Returns the number of links repaired.
  std::size_t repair(util::Rng& rng);

  /// Redraws only the dangling long links of the node at p (the localized
  /// repair a routing node performs when a search discovers the damage).
  /// Returns the number of links repaired. Throws if p is not occupied.
  std::size_t repair_node(metric::Point p, util::Rng& rng);

  /// Number of long links currently pointing at absent targets.
  [[nodiscard]] std::size_t dangling_count() const noexcept;

  /// Occupied position closest to p (ties to the lower position), excluding
  /// `exclude` (pass -1 to exclude nothing). Returns -1 when no member
  /// qualifies.
  [[nodiscard]] metric::Point nearest_member(metric::Point p,
                                             metric::Point exclude) const noexcept;

  /// Next occupied position after p in increasing order (wrapping on a
  /// ring); -1 when none exists. p itself need not be occupied.
  [[nodiscard]] metric::Point successor(metric::Point p) const noexcept;

  /// Previous occupied position before p (wrapping on a ring); -1 when none.
  [[nodiscard]] metric::Point predecessor(metric::Point p) const noexcept;

  /// All occupied positions in increasing order.
  [[nodiscard]] std::vector<metric::Point> members() const {
    return {members_.begin(), members_.end()};
  }

  /// Current long-link targets of the node at p (dangling ones included).
  [[nodiscard]] std::vector<metric::Point> long_links_of(metric::Point p) const;

  /// Visits every long-link target of the node at p (dangling ones included)
  /// without materializing a vector — the DHT routing hot path.
  /// Precondition: space().contains(p).
  template <typename Fn>
  void for_each_long_link(metric::Point p, Fn&& fn) const {
    for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
      fn(rec.target);
    }
  }

  /// Lengths of all live long links (Figure 5's measurement).
  [[nodiscard]] std::vector<metric::Distance> long_link_lengths() const;

  /// Exports a compact OverlayGraph over the current members: short links
  /// to nearest present neighbours, live long links as stored (dangling
  /// links are dropped). With `bidirectional`, reverse long links are added
  /// (see graph::BuildSpec::bidirectional).
  [[nodiscard]] graph::OverlayGraph snapshot(bool bidirectional = false) const;

 private:
  struct LinkRecord {
    metric::Point target;
    std::uint64_t birth;  // global counter; smaller = older
  };

  /// Draws a power-law target from `from` and snaps to the nearest member,
  /// excluding `exclude` and `from` itself. Returns -1 when no member exists.
  [[nodiscard]] metric::Point sample_member(util::Rng& rng, metric::Point from,
                                            metric::Point exclude) const;

  void add_long_link(metric::Point from, metric::Point to);
  void remove_long_link_at(metric::Point from, std::size_t index);
  void erase_in_record(metric::Point target, metric::Point from);

  /// §5 redirect decision at node u for newcomer v; returns true when a
  /// link was redirected (or added, if u is below its design degree).
  bool offer_in_link(metric::Point u, metric::Point v, util::Rng& rng);

  metric::Space1D space_;
  ConstructionConfig config_;
  graph::PowerLawLinkSampler sampler_;
  std::set<metric::Point> members_;
  std::vector<std::vector<LinkRecord>> out_links_;   // indexed by grid position
  std::vector<std::vector<metric::Point>> in_links_;  // reverse index
  std::uint64_t birth_counter_ = 0;
};

}  // namespace p2p::core
