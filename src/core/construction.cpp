#include "core/construction.h"

#include <algorithm>
#include <cmath>

#include "graph/graph_builder.h"
#include "util/require.h"

namespace p2p::core {

DynamicOverlay::DynamicOverlay(metric::Space1D space, ConstructionConfig cfg)
    : space_(space),
      config_(cfg),
      sampler_(space, cfg.exponent),
      out_links_(space.size()),
      in_links_(space.size()) {
  util::require(space_.size() >= 2, "DynamicOverlay: space must have >= 2 points");
  util::require(config_.long_links >= 1, "DynamicOverlay: long_links must be >= 1");
}

bool DynamicOverlay::occupied(metric::Point p) const noexcept {
  return space_.contains(p) && members_.contains(p);
}

metric::Point DynamicOverlay::nearest_member(metric::Point p,
                                             metric::Point exclude) const noexcept {
  metric::Point best = -1;
  metric::Distance best_d = 0;
  const auto consider = [&](metric::Point cand) {
    if (cand == exclude) return;
    const metric::Distance d = space_.distance(cand, p);
    if (best < 0 || d < best_d || (d == best_d && cand < best)) {
      best = cand;
      best_d = d;
    }
  };
  // The nearest member is adjacent to p in the ordered member set: check the
  // two neighbours of the insertion point (three when excluding), plus the
  // wraparound extremes on a ring.
  auto it = members_.lower_bound(p);
  auto fwd = it;
  for (int i = 0; i < 2 && fwd != members_.end(); ++i, ++fwd) consider(*fwd);
  auto bwd = it;
  for (int i = 0; i < 2 && bwd != members_.begin(); ++i) consider(*--bwd);
  if (space_.kind() == metric::Space1D::Kind::kRing && !members_.empty()) {
    consider(*members_.begin());
    consider(*members_.rbegin());
    if (members_.size() > 1) {
      consider(*std::next(members_.begin()));
      consider(*std::prev(members_.end(), 2));
    }
  }
  return best;
}

metric::Point DynamicOverlay::successor(metric::Point p) const noexcept {
  if (members_.empty()) return -1;
  auto it = members_.upper_bound(p);
  if (it != members_.end()) return *it;
  if (space_.kind() == metric::Space1D::Kind::kRing) return *members_.begin();
  return -1;
}

metric::Point DynamicOverlay::predecessor(metric::Point p) const noexcept {
  if (members_.empty()) return -1;
  auto it = members_.lower_bound(p);
  if (it != members_.begin()) return *std::prev(it);
  if (space_.kind() == metric::Space1D::Kind::kRing) return *members_.rbegin();
  return -1;
}

metric::Point DynamicOverlay::sample_member(util::Rng& rng, metric::Point from,
                                            metric::Point exclude) const {
  const metric::Point ideal = sampler_.sample_target(rng, from);
  if (ideal != from && ideal != exclude && members_.contains(ideal)) return ideal;
  // Snap to the closest occupied point — §5's basin of attraction.
  metric::Point snapped = nearest_member(ideal, /*exclude=*/from);
  if (snapped == exclude) {
    // Rare: the snap landed on the excluded node; take the nearest member
    // that is neither `from` nor `exclude` by checking around both.
    metric::Point best = -1;
    metric::Distance best_d = 0;
    for (metric::Point m : members_) {
      if (m == from || m == exclude) continue;
      const metric::Distance d = space_.distance(m, ideal);
      if (best < 0 || d < best_d) {
        best = m;
        best_d = d;
      }
    }
    snapped = best;
  }
  return snapped;
}

void DynamicOverlay::add_long_link(metric::Point from, metric::Point to) {
  out_links_[static_cast<std::size_t>(from)].push_back({to, birth_counter_++});
  in_links_[static_cast<std::size_t>(to)].push_back(from);
}

void DynamicOverlay::erase_in_record(metric::Point target, metric::Point from) {
  auto& in = in_links_[static_cast<std::size_t>(target)];
  const auto it = std::find(in.begin(), in.end(), from);
  if (it != in.end()) {
    *it = in.back();
    in.pop_back();
  }
}

void DynamicOverlay::remove_long_link_at(metric::Point from, std::size_t index) {
  auto& out = out_links_[static_cast<std::size_t>(from)];
  const metric::Point target = out[index].target;
  out.erase(out.begin() + static_cast<std::ptrdiff_t>(index));
  erase_in_record(target, from);
}

bool DynamicOverlay::offer_in_link(metric::Point u, metric::Point v, util::Rng& rng) {
  if (config_.replace_policy == ReplacePolicy::kNever) return false;
  auto& links = out_links_[static_cast<std::size_t>(u)];
  const double r = config_.exponent;
  const double p_new =
      std::pow(static_cast<double>(space_.distance(u, v)), -r);

  if (links.size() < config_.long_links) {
    // Below design degree (early bootstrap): take the link outright.
    add_long_link(u, v);
    return true;
  }

  double sum = 0.0;
  for (const LinkRecord& rec : links) {
    sum += std::pow(static_cast<double>(space_.distance(u, rec.target)), -r);
  }
  // Accept with probability p_{k+1} / Σ_{j=1..k+1} p_j.
  if (!rng.next_bool(p_new / (sum + p_new))) return false;

  std::size_t victim = 0;
  if (config_.replace_policy == ReplacePolicy::kPowerLaw) {
    // Victim i with probability p_i / Σ_{j=1..k} p_j.
    double pick = rng.next_double() * sum;
    for (std::size_t i = 0; i < links.size(); ++i) {
      const double w =
          std::pow(static_cast<double>(space_.distance(u, links[i].target)), -r);
      if (pick < w) {
        victim = i;
        break;
      }
      pick -= w;
      victim = i;  // FP guard: fall back to the last link
    }
  } else {  // kOldest
    victim = 0;
    for (std::size_t i = 1; i < links.size(); ++i) {
      if (links[i].birth < links[victim].birth) victim = i;
    }
  }
  const metric::Point old_target = links[victim].target;
  erase_in_record(old_target, u);
  links[victim] = {v, birth_counter_++};
  in_links_[static_cast<std::size_t>(v)].push_back(u);
  return true;
}

void DynamicOverlay::join(metric::Point p, util::Rng& rng) {
  util::require(space_.contains(p), "join: position outside the space");
  util::require(!members_.contains(p), "join: position already occupied");

  if (!members_.empty()) {
    // (1) Outgoing links: ℓ draws from the ideal distribution, snapped.
    for (std::size_t k = 0; k < config_.long_links; ++k) {
      const metric::Point target = sample_member(rng, p, /*exclude=*/-1);
      if (target >= 0) add_long_link(p, target);
    }
    // (2) Incoming links: Poisson(ℓ) existing nodes get the chance to
    // redirect one of their links to the newcomer.
    const int requests = util::poisson_sample(rng, static_cast<double>(config_.long_links));
    for (int k = 0; k < requests; ++k) {
      const metric::Point asked = sample_member(rng, p, /*exclude=*/-1);
      if (asked >= 0) offer_in_link(asked, p, rng);
    }
  }
  members_.insert(p);
}

void DynamicOverlay::leave(metric::Point p, util::Rng& rng) {
  util::require(occupied(p), "leave: position not occupied");
  members_.erase(p);  // remove first so redraws cannot pick p again

  // In-neighbours redraw the lost link immediately (§5 regeneration).
  auto in = in_links_[static_cast<std::size_t>(p)];  // copy: mutation below
  for (const metric::Point u : in) {
    auto& out = out_links_[static_cast<std::size_t>(u)];
    const auto it = std::find_if(out.begin(), out.end(), [&](const LinkRecord& rec) {
      return rec.target == p;
    });
    if (it == out.end()) continue;  // duplicate in-record already handled
    out.erase(it);
    if (members_.size() > 1) {
      const metric::Point fresh = sample_member(rng, u, /*exclude=*/p);
      if (fresh >= 0 && fresh != u) add_long_link(u, fresh);
    }
  }
  in_links_[static_cast<std::size_t>(p)].clear();

  // Dismantle the departing node's own links.
  for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
    erase_in_record(rec.target, p);
  }
  out_links_[static_cast<std::size_t>(p)].clear();
}

void DynamicOverlay::crash(metric::Point p) {
  util::require(occupied(p), "crash: position not occupied");
  members_.erase(p);
  // The node's own state dies with it.
  for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
    erase_in_record(rec.target, p);
  }
  out_links_[static_cast<std::size_t>(p)].clear();
  // Links *to* p stay behind, dangling, until repair() or rebuild.
}

std::size_t DynamicOverlay::dangling_count() const noexcept {
  std::size_t dangling = 0;
  for (const metric::Point p : members_) {
    for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
      if (!members_.contains(rec.target)) ++dangling;
    }
  }
  return dangling;
}

std::size_t DynamicOverlay::repair_node(metric::Point p, util::Rng& rng) {
  util::require(occupied(p), "repair_node: position not occupied");
  std::size_t repaired = 0;
  auto& out = out_links_[static_cast<std::size_t>(p)];
  for (auto& rec : out) {
    if (members_.contains(rec.target)) continue;
    const metric::Point fresh = sample_member(rng, p, /*exclude=*/-1);
    if (fresh >= 0 && fresh != p) {
      // The dead target keeps no in-record (cleared on crash), so only the
      // fresh target's reverse index needs an update.
      rec = {fresh, birth_counter_++};
      in_links_[static_cast<std::size_t>(fresh)].push_back(p);
      ++repaired;
    }
  }
  return repaired;
}

std::size_t DynamicOverlay::repair(util::Rng& rng) {
  std::size_t repaired = 0;
  for (const metric::Point p : members_) {
    repaired += repair_node(p, rng);
  }
  return repaired;
}

std::vector<metric::Point> DynamicOverlay::long_links_of(metric::Point p) const {
  util::require(space_.contains(p), "long_links_of: position outside the space");
  std::vector<metric::Point> targets;
  targets.reserve(out_links_[static_cast<std::size_t>(p)].size());
  for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
    targets.push_back(rec.target);
  }
  return targets;
}

std::vector<metric::Distance> DynamicOverlay::long_link_lengths() const {
  std::vector<metric::Distance> lengths;
  for (const metric::Point p : members_) {
    for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
      if (members_.contains(rec.target)) {
        lengths.push_back(space_.distance(p, rec.target));
      }
    }
  }
  return lengths;
}

graph::OverlayGraph DynamicOverlay::snapshot(bool bidirectional) const {
  util::require(!members_.empty(), "snapshot: empty overlay");
  std::vector<metric::Point> positions(members_.begin(), members_.end());
  const bool full = positions.size() == space_.size();
  graph::GraphBuilder builder = full
                                    ? graph::GraphBuilder(space_)
                                    : graph::GraphBuilder(space_, std::move(positions));
  builder.reserve_links(config_.long_links + 2);
  builder.wire_short_links();
  for (graph::NodeId i = 0; i < builder.size(); ++i) {
    const metric::Point p = builder.position(i);
    for (const LinkRecord& rec : out_links_[static_cast<std::size_t>(p)]) {
      const graph::NodeId target = builder.node_at(rec.target);
      if (target != graph::kInvalidNode && target != i) {
        builder.add_long_link(i, target);
      }
    }
  }
  if (bidirectional) builder.make_bidirectional();
  return builder.freeze();
}

}  // namespace p2p::core
