// Metric bundles binding the telemetry registry to routing outcome types.
//
// The registry (src/telemetry) is deliberately ignorant of routing; these
// bundles own the metric names and the RouteResult/SecureRouteResult ->
// counter mapping. A bundle is wired by pointer into BatchConfig /
// SecureRouterConfig: null means telemetry off (the runtime P2P_TELEMETRY
// knob simply leaves the pointer unset), and recording happens once per
// *retired query*, never per hop, so the instrumented hot path stays within
// the micro_perf-enforced overhead budget.
//
// Shard discipline: a RouteTelemetry/SecureTelemetry instance carries a
// shard-bound Recorder, so each worker thread needs its own instance (over a
// distinct shard) while the *Metrics handle sets are shared freely.
#pragma once

#include <string>

#include "core/router.h"
#include "core/secure_router.h"
#include "telemetry/metric_registry.h"

namespace p2p::core {

/// Per-query outcome metrics for the plain routing path. The histogram buckets
/// hops (messages per query, backtracks included).
struct RouteMetrics {
  telemetry::Counter queries;
  telemetry::Counter delivered;
  telemetry::Counter stuck;
  telemetry::Counter ttl_expired;
  telemetry::Counter hops;
  telemetry::Counter backtracks;
  telemetry::Counter reroutes;
  telemetry::Histogram hop_hist;

  static RouteMetrics create(telemetry::Registry& reg,
                             const std::string& prefix = "route") {
    RouteMetrics m;
    m.queries = reg.counter(prefix + ".queries");
    m.delivered = reg.counter(prefix + ".delivered");
    m.stuck = reg.counter(prefix + ".stuck");
    m.ttl_expired = reg.counter(prefix + ".ttl_expired");
    m.hops = reg.counter(prefix + ".hops");
    m.backtracks = reg.counter(prefix + ".backtracks");
    m.reroutes = reg.counter(prefix + ".reroutes");
    m.hop_hist = reg.histogram(prefix + ".hop_hist", 1.5, 1 << 14);
    return m;
  }
};

/// Shard-bound recording handle a BatchPipeline writes through.
struct RouteTelemetry {
  telemetry::Recorder recorder;
  RouteMetrics metrics;

  void record(const RouteResult& r) noexcept {
    recorder.add(metrics.queries);
    switch (r.status) {
      case RouteResult::Status::kDelivered:
        recorder.add(metrics.delivered);
        break;
      case RouteResult::Status::kStuck:
        recorder.add(metrics.stuck);
        break;
      case RouteResult::Status::kTtlExpired:
        recorder.add(metrics.ttl_expired);
        break;
    }
    if (r.hops != 0) recorder.add(metrics.hops, r.hops);
    if (r.backtracks != 0) recorder.add(metrics.backtracks, r.backtracks);
    if (r.reroutes != 0) recorder.add(metrics.reroutes, r.reroutes);
    recorder.observe(metrics.hop_hist, r.hops);
  }
};

/// Walk-outcome, retry-escalation and reputation-attribution metrics for the
/// redundant (Byzantine-hardened) path.
struct SecureRouteMetrics {
  telemetry::Counter queries;
  telemetry::Counter delivered;
  telemetry::Counter escalations;
  telemetry::Counter messages;
  telemetry::Counter walks_launched;
  telemetry::Counter walks_delivered;
  telemetry::Counter walks_died;
  telemetry::Counter walks_stuck;
  telemetry::Counter walks_ttl_expired;
  telemetry::Counter rep_penalties;
  telemetry::Counter rep_rewards;
  telemetry::Histogram best_hops_hist;  // fastest successful walk, delivered only
  telemetry::Histogram messages_hist;   // redundancy cost per query

  static SecureRouteMetrics create(telemetry::Registry& reg,
                                   const std::string& prefix = "secure") {
    SecureRouteMetrics m;
    m.queries = reg.counter(prefix + ".queries");
    m.delivered = reg.counter(prefix + ".delivered");
    m.escalations = reg.counter(prefix + ".escalations");
    m.messages = reg.counter(prefix + ".messages");
    m.walks_launched = reg.counter(prefix + ".walks_launched");
    m.walks_delivered = reg.counter(prefix + ".walks_delivered");
    m.walks_died = reg.counter(prefix + ".walks_died");
    m.walks_stuck = reg.counter(prefix + ".walks_stuck");
    m.walks_ttl_expired = reg.counter(prefix + ".walks_ttl_expired");
    m.rep_penalties = reg.counter(prefix + ".rep_penalties");
    m.rep_rewards = reg.counter(prefix + ".rep_rewards");
    m.best_hops_hist = reg.histogram(prefix + ".best_hops_hist", 1.5, 1 << 14);
    m.messages_hist = reg.histogram(prefix + ".messages_hist", 1.5, 1 << 16);
    return m;
  }
};

/// Shard-bound recording handle for SecureRouter sessions. Penalty/reward
/// counters are bumped at the reputation attribution sites; everything else
/// once per retired query.
struct SecureTelemetry {
  telemetry::Recorder recorder;
  SecureRouteMetrics metrics;

  void record(const SecureRouteResult& r) noexcept {
    recorder.add(metrics.queries);
    if (r.delivered) {
      recorder.add(metrics.delivered);
      recorder.observe(metrics.best_hops_hist, r.best_hops);
    }
    if (r.escalations != 0) recorder.add(metrics.escalations, r.escalations);
    if (r.total_messages != 0) recorder.add(metrics.messages, r.total_messages);
    recorder.observe(metrics.messages_hist, r.total_messages);
    recorder.add(metrics.walks_launched, r.walks_launched);
    if (r.successful_walks != 0)
      recorder.add(metrics.walks_delivered, r.successful_walks);
    if (r.walks_died != 0) recorder.add(metrics.walks_died, r.walks_died);
    if (r.walks_stuck != 0) recorder.add(metrics.walks_stuck, r.walks_stuck);
    if (r.walks_ttl_expired != 0)
      recorder.add(metrics.walks_ttl_expired, r.walks_ttl_expired);
  }

  void record_penalty(std::uint64_t n = 1) noexcept {
    recorder.add(metrics.rep_penalties, n);
  }
  void record_reward(std::uint64_t n = 1) noexcept {
    recorder.add(metrics.rep_rewards, n);
  }
};

}  // namespace p2p::core
