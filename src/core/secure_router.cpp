#include "core/secure_router.h"

#include <algorithm>

#include "util/require.h"

namespace p2p::core {

SecureRouter::SecureRouter(const graph::OverlayGraph& g,
                           const failure::FailureView& view,
                           const failure::ByzantineSet& byzantine,
                           SecureRouterConfig config)
    : graph_(&g),
      view_(&view),
      byzantine_(&byzantine),
      greedy_(g, view, RouterConfig{}),
      config_(config) {
  util::require(&view.graph() == &g, "SecureRouter: view must be over the graph");
  util::require(&byzantine.graph() == &g,
                "SecureRouter: byzantine set must be over the graph");
  util::require(config_.paths >= 1, "SecureRouter: need at least one path");
}

SecureRouter::WalkResult SecureRouter::walk(graph::NodeId src,
                                            graph::NodeId target_node,
                                            metric::Point goal,
                                            std::size_t first_hop_rank,
                                            WalkScratch& scratch,
                                            util::Rng& rng) const {
  WalkResult result;
  std::size_t budget = config_.ttl != 0 ? config_.ttl : greedy_.effective_ttl();
  graph::NodeId current = src;
  bool first = true;
  // Walks are loop-free: an honest node never forwards to a node this walk
  // has already visited, so diverse walks cannot remerge through distance
  // ties (misrouted hops are exempt — attackers do not cooperate). Visited
  // markers are epoch stamps so successive walks reuse the buffer without
  // clearing it.
  const std::uint32_t epoch = ++scratch.epoch;
  auto& visited = scratch.visited_epoch;
  const auto mark = [&](graph::NodeId v) { visited[v] = epoch; };
  const auto seen = [&](graph::NodeId v) { return visited[v] == epoch; };
  mark(src);
  while (budget-- > 0) {
    if (current == target_node) {
      result.delivered = true;
      return result;
    }
    graph::NodeId next = graph::kInvalidNode;
    if (current != src && byzantine_->is_byzantine(current)) {
      // The source itself is assumed honest (it originates the search);
      // intermediate Byzantine nodes misbehave.
      if (config_.behavior == failure::ByzantineBehavior::kDrop) {
        return result;  // blackholed
      }
      // Misroute: forward to a uniformly random live neighbour.
      const auto neigh = graph_->neighbors(current);
      for (int tries = 0; tries < 16 && next == graph::kInvalidNode; ++tries) {
        const std::size_t i = static_cast<std::size_t>(rng.next_below(neigh.size()));
        if (view_->hop_usable(current, i)) next = neigh[i];
      }
      if (next == graph::kInvalidNode) return result;  // isolated attacker
    } else if (first) {
      // Diverse egress: the first hop of walk i is the i-th *usable*
      // neighbour ranked by distance to the goal — including neighbours
      // farther than the source, so walks can leave in genuinely different
      // directions (a ring source has only one strictly-closer neighbour).
      const auto neigh = graph_->neighbors(current);
      auto& ranked = scratch.ranked;
      ranked.clear();
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        if (!view_->hop_usable(current, i)) continue;
        if (neigh[i] == current || seen(neigh[i])) continue;
        ranked.emplace_back(
            graph_->space().distance(graph_->position(neigh[i]), goal), neigh[i]);
      }
      if (ranked.empty()) return result;  // isolated source
      std::sort(ranked.begin(), ranked.end());
      ranked.erase(std::unique(ranked.begin(), ranked.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second == b.second;
                               }),
                   ranked.end());
      next = ranked[std::min(first_hop_rank, ranked.size() - 1)].second;
    } else {
      // Streaming selection: the best-ranked candidate this walk has not
      // visited yet, without materializing the candidate list.
      for (std::size_t rank = 0;; ++rank) {
        const graph::NodeId cand = greedy_.select_candidate(current, goal, rank);
        if (cand == graph::kInvalidNode) break;
        if (!seen(cand)) {
          next = cand;
          break;
        }
      }
      if (next == graph::kInvalidNode) return result;  // honest but stuck
    }
    first = false;
    current = next;
    mark(current);
    ++result.hops;
  }
  return result;  // TTL exhausted (e.g. misrouted into a loop)
}

SecureRouteResult SecureRouter::route(graph::NodeId src, metric::Point target,
                                      util::Rng& rng) const {
  util::require_in_range(src < graph_->size(), "route: src out of range");
  util::require(graph_->space().contains(target), "route: target outside space");
  const graph::NodeId target_node = graph_->node_nearest(target);
  const metric::Point goal = graph_->position(target_node);

  SecureRouteResult result;
  WalkScratch scratch;
  scratch.visited_epoch.assign(graph_->size(), 0);
  for (std::size_t path = 0; path < config_.paths; ++path) {
    const WalkResult w = walk(src, target_node, goal, path, scratch, rng);
    result.total_messages += w.hops;
    if (w.delivered) {
      ++result.successful_walks;
      if (result.best_hops == 0 || w.hops < result.best_hops) {
        result.best_hops = w.hops;
      }
    }
  }
  result.delivered = result.successful_walks > 0;
  return result;
}

}  // namespace p2p::core
