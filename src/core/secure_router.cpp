#include "core/secure_router.h"

#include <algorithm>

#include "core/route_telemetry.h"
#include "util/require.h"

namespace p2p::core {

namespace {

RouterConfig trusted_router_config(const SecureRouterConfig& config) {
  RouterConfig rc;
  rc.reputation = config.reputation;
  return rc;
}

}  // namespace

SecureRouter::SecureRouter(const graph::OverlayGraph& g,
                           const failure::FailureView& view,
                           const failure::ByzantineSet& byzantine,
                           SecureRouterConfig config)
    : graph_(&g),
      view_(&view),
      byzantine_(&byzantine),
      greedy_(g, view, RouterConfig{}),
      trusted_(g, view, trusted_router_config(config)),
      config_(config) {
  util::require(&view.graph() == &g, "SecureRouter: view must be over the graph");
  util::require(&byzantine.graph() == &g,
                "SecureRouter: byzantine set must be over the graph");
  util::require(config_.paths >= 1, "SecureRouter: need at least one path");
  util::require(config_.max_paths == 0 || config_.max_paths >= config_.paths,
                "SecureRouter: max_paths must be 0 (off) or >= paths");
  // trusted_'s constructor already rejected a reputation table over a
  // different graph.
}

std::size_t SecureRouter::walk_ttl() const noexcept {
  return config_.ttl != 0 ? config_.ttl : greedy_.effective_ttl();
}

std::size_t SecureRouter::max_walks() const noexcept {
  return config_.max_paths == 0 ? config_.paths : config_.max_paths;
}

SecureRouteResult SecureRouter::route(graph::NodeId src, metric::Point target,
                                      util::Rng& rng) const {
  SecureRouteSession session(*this, src, target);
  while (session.tick(rng)) {
  }
  return session.result();
}

SecureRouteSession::SecureRouteSession(const SecureRouter& router,
                                       graph::NodeId src, metric::Point target)
    : router_(&router) {
  visited_epoch_.assign(router.graph().size(), 0);
  restart(src, target);
}

void SecureRouteSession::restart(graph::NodeId src, metric::Point target) {
  const graph::OverlayGraph& g = router_->graph();
  util::require_in_range(src < g.size(), "route: src out of range");
  util::require(g.space().contains(target), "route: target outside space");
  src_ = src;
  target_node_ = g.node_nearest(target);
  goal_ = g.position(target_node_);
  walk_active_ = false;
  batch_left_ = router_->config().paths;
  done_ = false;
  // Field-wise reset keeps the walks vector's capacity (the pipeline's
  // lane-refill path must not churn allocations).
  result_.delivered = false;
  result_.successful_walks = 0;
  result_.total_messages = 0;
  result_.best_hops = 0;
  result_.walks_launched = 0;
  result_.walks_died = 0;
  result_.walks_stuck = 0;
  result_.walks_ttl_expired = 0;
  result_.escalations = 0;
  result_.completion_epoch = 0;
  result_.byzantine_epoch = 0;
  result_.walks.clear();
}

void SecureRouteSession::start_walk() {
  // Walks are loop-free: an honest node never forwards to a node this walk
  // has already visited, so diverse walks cannot remerge through distance
  // ties (misrouted hops are exempt — attackers do not cooperate). Visited
  // markers are epoch stamps so successive walks — and successive queries
  // through the same pipeline lane — reuse the buffer without clearing it.
  if (++epoch_ == 0) {
    std::fill(visited_epoch_.begin(), visited_epoch_.end(), 0u);
    epoch_ = 1;
  }
  current_ = src_;
  visited_epoch_[src_] = epoch_;
  current_dist_ =
      router_->graph().space().distance(router_->graph().position(src_), goal_);
  first_hop_ = true;
  budget_ = router_->walk_ttl();
  walk_hops_ = 0;
  path_.clear();
  ++result_.walks_launched;
  walk_active_ = true;
}

bool SecureRouteSession::tick(util::Rng& rng) {
  if (done_) return false;
  if (!walk_active_) start_walk();  // bookkeeping only; the hop happens below

  const SecureRouter& r = *router_;
  const graph::OverlayGraph& g = r.graph();
  const failure::FailureView& view = r.view();
  const SecureRouterConfig& cfg = r.config();

  // Crash churn first: a walk standing on a node killed since its last tick
  // dies where it stands — it never steps out of (or through) a crashed
  // node, no matter what the selection below would have chosen. On static
  // all-alive views this never fires.
  if (!view.node_alive(current_)) {
    finish_walk(WalkOutcome::kDied);
    return !done_;
  }
  if (budget_ == 0) {
    finish_walk(WalkOutcome::kTtlExpired);
    return !done_;
  }
  --budget_;
  if (current_ == target_node_) {
    finish_walk(WalkOutcome::kDelivered);
    return !done_;
  }

  failure::ReputationTable* rep = cfg.reputation;
  // Distrust is a *retry-time* bias: first-batch walks route at full greedy
  // speed (observations accumulate either way), and only escalation batches
  // — launched precisely because the adversary ate the whole first batch —
  // pay the detour cost of routing around suspects. Avoiding a distrusted
  // hub unconditionally costs more than it saves (hubs are what greedy
  // progress is made of); avoiding it on the retry of a search it plausibly
  // just killed is the favourable trade.
  const bool use_trust = rep != nullptr && rep->distrusted_count() != 0 &&
                         result_.escalations > 0;
  const auto seen = [&](graph::NodeId v) { return visited_epoch_[v] == epoch_; };

  graph::NodeId next = graph::kInvalidNode;
  if (current_ != src_ && r.byzantine().is_byzantine(current_)) {
    // The source itself is assumed honest (it originates the search);
    // intermediate Byzantine nodes misbehave.
    if (cfg.behavior == failure::ByzantineBehavior::kDrop) {
      finish_walk(WalkOutcome::kDied);  // blackholed
      return !done_;
    }
    // Misroute: forward to a uniformly random live neighbour. The attacker
    // does not consult the caller's reputation table.
    const auto neigh = g.neighbors(current_);
    for (int tries = 0; tries < 16 && next == graph::kInvalidNode; ++tries) {
      const std::size_t i = static_cast<std::size_t>(rng.next_below(neigh.size()));
      if (view.hop_usable(current_, i)) next = neigh[i];
    }
    if (next == graph::kInvalidNode) {
      finish_walk(WalkOutcome::kDied);  // isolated attacker
      return !done_;
    }
  } else if (first_hop_) {
    // Diverse egress: the first hop of walk i is the i-th *usable*
    // neighbour ranked by distance to the goal — including neighbours
    // farther than the source, so walks can leave in genuinely different
    // directions (a ring source has only one strictly-closer neighbour).
    // With reputation active, distrusted neighbours are filtered first and
    // the unfiltered ranking is the fallback — degrade, don't go dark.
    const auto neigh = g.neighbors(current_);
    const metric::Space& space = g.space();
    for (int pass = use_trust ? 0 : 1; pass < 2; ++pass) {
      ranked_.clear();
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        if (!view.hop_usable(current_, i)) continue;
        if (neigh[i] == current_ || seen(neigh[i])) continue;
        if (pass == 0 && !rep->trusted(neigh[i])) continue;
        ranked_.emplace_back(space.distance(g.position(neigh[i]), goal_),
                             neigh[i]);
      }
      if (!ranked_.empty()) break;
    }
    if (ranked_.empty()) {
      finish_walk(WalkOutcome::kStuck);  // isolated source
      return !done_;
    }
    std::sort(ranked_.begin(), ranked_.end());
    ranked_.erase(std::unique(ranked_.begin(), ranked_.end(),
                              [](const auto& a, const auto& b) {
                                return a.second == b.second;
                              }),
                  ranked_.end());
    const std::size_t rank = result_.walks_launched - 1;  // this walk's index
    next = ranked_[std::min(rank, ranked_.size() - 1)].second;
  } else {
    // Streaming selection: the best-ranked candidate this walk has not
    // visited yet, without materializing the candidate list. Escalation
    // batches scan through the trusted router (the distrust mask rides the
    // SIMD lanes); when the trusted scan comes up empty the plain greedy
    // scan is the fallback, so distrust biases selection without ever
    // disconnecting a walk.
    const Router& primary = use_trust ? r.trusted_ : r.greedy_;
    for (std::size_t rank = 0;; ++rank) {
      const graph::NodeId cand = primary.select_candidate(current_, goal_, rank);
      if (cand == graph::kInvalidNode) break;
      if (!seen(cand)) {
        next = cand;
        break;
      }
    }
    if (next == graph::kInvalidNode && use_trust) {
      for (std::size_t rank = 0;; ++rank) {
        const graph::NodeId cand = r.greedy_.select_candidate(current_, goal_, rank);
        if (cand == graph::kInvalidNode) break;
        if (!seen(cand)) {
          next = cand;
          break;
        }
      }
    }
    if (next == graph::kInvalidNode) {
      finish_walk(WalkOutcome::kStuck);  // honest but stuck
      return !done_;
    }
  }

  // One message transmission.
  const metric::Distance next_dist =
      g.space().distance(g.position(next), goal_);
  if (rep != nullptr && !first_hop_ && next_dist >= current_dist_) {
    // A non-first hop that fails to make strict greedy progress can only be
    // a misroute (honest selection is strictly-closer; the diverse first hop
    // is exempt by design) — charge the node that made the choice.
    rep->record(current_, failure::Observation::kRegressed);
    if (cfg.telemetry != nullptr) cfg.telemetry->record_penalty();
  }
  first_hop_ = false;
  current_ = next;
  current_dist_ = next_dist;
  visited_epoch_[next] = epoch_;
  ++walk_hops_;
  ++result_.total_messages;
  if (rep != nullptr) path_.push_back(next);
  return true;
}

void SecureRouteSession::finish_walk(WalkOutcome outcome) {
  const SecureRouterConfig& cfg = router_->config();
  failure::ReputationTable* rep = cfg.reputation;
  walk_active_ = false;
  switch (outcome) {
    case WalkOutcome::kDelivered:
      ++result_.successful_walks;
      if (result_.best_hops == 0 || walk_hops_ < result_.best_hops) {
        result_.best_hops = walk_hops_;
      }
      if (rep != nullptr) {
        // Reward every relay that carried the walk home (the target
        // included — it is on the path and plainly cooperating).
        for (const graph::NodeId v : path_) {
          rep->record(v, failure::Observation::kDelivered);
        }
        if (cfg.telemetry != nullptr) cfg.telemetry->record_reward(path_.size());
      }
      break;
    case WalkOutcome::kDied:
      ++result_.walks_died;
      // The node the walk died at is the prime suspect: its upstream
      // neighbour observed the hand-off and the silence that followed. But
      // only an *alive* node that swallowed a message earns distrust — a
      // visible crash is the failure view's business, and charging it would
      // make an innocent node revive into shunning.
      if (rep != nullptr && router_->view().node_alive(current_)) {
        rep->record(current_, failure::Observation::kDiedAtHop);
        if (cfg.telemetry != nullptr) cfg.telemetry->record_penalty();
      }
      break;
    case WalkOutcome::kStuck:
      ++result_.walks_stuck;  // honest dead-end; nobody to blame
      break;
    case WalkOutcome::kTtlExpired:
      ++result_.walks_ttl_expired;
      // Weak evidence against the last holder (it may be an innocent node a
      // misrouter dumped the message near — the small penalty_timeout plus
      // decay keeps this from condemning bystanders).
      if (rep != nullptr) {
        rep->record(current_, failure::Observation::kTimedOut);
        if (cfg.telemetry != nullptr) cfg.telemetry->record_penalty();
      }
      break;
  }
  if (cfg.record_walks) {
    result_.walks.push_back(WalkReport{outcome, walk_hops_,
                                       result_.walks_launched - 1, current_});
  }
  if (--batch_left_ > 0) return;  // next walk of the batch starts next tick
  if (result_.successful_walks == 0 &&
      result_.walks_launched < router_->max_walks()) {
    // Retry/backoff: the whole batch died — escalate with another round of
    // walks over later-ranked first hops.
    ++result_.escalations;
    batch_left_ = std::min(cfg.paths,
                           router_->max_walks() - result_.walks_launched);
    return;
  }
  result_.delivered = result_.successful_walks > 0;
  result_.completion_epoch = router_->view().epoch();
  result_.byzantine_epoch = router_->byzantine().epoch();
  done_ = true;
  // One record per retired query, shared by route(), session stepping and
  // the batch pipeline (all of which funnel through this terminal state).
  if (cfg.telemetry != nullptr) cfg.telemetry->record(result_);
}

SecureBatchPipeline::SecureBatchPipeline(const SecureRouter& router,
                                         std::span<const Query> queries,
                                         std::span<SecureRouteResult> results,
                                         std::uint64_t seed_base,
                                         std::size_t width)
    : router_(&router),
      queries_(queries),
      results_(results),
      seed_base_(seed_base) {
  util::require(results.size() >= queries.size(),
                "SecureBatchPipeline: results span shorter than queries");
  if (width < 1) width = 1;
  const std::size_t lanes = width < queries.size() ? width : queries.size();
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(
        Lane{SecureRouteSession(router, queries[i].src, queries[i].target),
             util::substream(seed_base, i), i});
  }
  next_query_ = lanes;
}

bool SecureBatchPipeline::tick() {
  if (lanes_.empty()) return false;
  Lane& lane = lanes_[cursor_];
  lane.session.tick(lane.rng);
  if (lane.session.finished()) {
    results_[lane.query] = lane.session.result();
    last_retired_ = lane.query;
    ++retired_;
    if (next_query_ < queries_.size()) {
      const std::size_t refill = next_query_++;
      lane.session.restart(queries_[refill].src, queries_[refill].target);
      lane.rng = util::substream(seed_base_, refill);
      lane.query = refill;
    } else {
      // Drain phase: compact the retired lane out of the ring. The lane
      // moved into this slot is stepped on the next tick, never skipped.
      if (&lane != &lanes_.back()) lane = std::move(lanes_.back());
      lanes_.pop_back();
      if (cursor_ == lanes_.size()) cursor_ = 0;
      return !lanes_.empty();
    }
  }
  if (++cursor_ == lanes_.size()) cursor_ = 0;
  return true;
}

}  // namespace p2p::core
