#include "core/router.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <utility>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "core/route_telemetry.h"
#include "failure/reputation.h"
#include "telemetry/flight_recorder.h"
#include "util/require.h"

namespace p2p::core {

namespace {

/// Router-lifetime invariants of the vectorized selection: x86 CPU with
/// AVX-512F, dense graph (position == id, so ids load straight into vector
/// lanes), two-sided greedy, and positions narrow enough for the
/// (distance << 32 | id) key packing. P2P_NO_SIMD=1 (read per Router
/// construction; empty or "0" means off) forces the scalar path so tests
/// can pin both implementations against each other on the same host.
bool simd_disabled_by_env() noexcept {
  const char* value = std::getenv("P2P_NO_SIMD");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

bool simd_select_eligible(const graph::OverlayGraph& g,
                          const RouterConfig& cfg) noexcept {
#if defined(__x86_64__) && defined(__GNUC__)
  // Every metric kind has a vectorized rank-0 scan — in intact and
  // failure-masked (dead links / dead targets) variants: the 1-D kernel
  // packs line/ring distances, the torus kernel splits row/col by reciprocal
  // multiplication. size <= 2^32 keeps ids and distances inside the
  // (dist << 32 | id) key packing — and, on the torus, bounds the side by
  // 2^16, the domain where the double-reciprocal coordinate split is exact.
  return __builtin_cpu_supports("avx512f") != 0 && !cfg.force_scalar &&
         !simd_disabled_by_env() && g.dense() &&
         cfg.sidedness == Sidedness::kTwoSided &&
         g.space().size() <= 0xffffffffull;
#else
  static_cast<void>(g);
  static_cast<void>(cfg);
  return false;
#endif
}

}  // namespace

Router::Router(const graph::OverlayGraph& g, const failure::FailureView& view,
               RouterConfig config)
    : graph_(&g), view_(&view), config_(config) {
  util::require(&view.graph() == &g, "Router: view must be over the same graph");
  util::require(config_.backtrack_window >= 1, "Router: backtrack_window must be >= 1");
  // §4.2.1's one-sided variant needs an ordering of the space ("never
  // traverses a link that would take it past its target"), which only the
  // line and the ring define; reject the combination here rather than
  // silently misroute on a 2-D metric.
  util::require(g.space().one_dimensional() ||
                    config_.sidedness == Sidedness::kTwoSided,
                "Router: one-sided routing requires a one-dimensional metric "
                "(line or ring)");
  util::require(config_.reputation == nullptr ||
                    &config_.reputation->graph() == &g,
                "Router: reputation table must be over the same graph");
  simd_ok_ = simd_select_eligible(g, config_);
}

std::size_t Router::effective_ttl() const noexcept {
  if (config_.ttl != 0) return config_.ttl;
  const double lg = std::ceil(std::log2(static_cast<double>(graph_->size()) + 1.0));
  const auto budget = static_cast<std::size_t>(8.0 * lg * lg);
  return budget < 64 ? 64 : budget;
}

namespace {

/// Core of select_candidate, compiled once per (layout, trust-check, dense,
/// link-check, node-check, sidedness) combination so the common
/// configurations run with no per-neighbour flag tests at all. Candidates
/// order by (distance-to-target, node id); duplicate links to the same
/// neighbour collapse. Streaming k-th order statistic: each round takes the
/// minimum pair strictly greater than the previous round's.
///
/// `trusted` is the reputation distrust sideband (trusted_bytes());
/// dereferenced only when kCheckTrust, nullptr otherwise.
///
/// On the compact layout each round re-decodes the node's delta stream in
/// place of the inline/spill walk; slot indices (h.offset + i) are identical
/// across layouts, so the failure-mask queries don't change shape.
///
/// A self-link (v == u) can never be selected — its distance equals du and
/// every round filters to dv < du — so no explicit check is needed.
template <bool kCompact, bool kCheckTrust, bool kDense, bool kCheckLinks,
          bool kCheckNodes, bool kOneSided>
graph::NodeId select_impl(const graph::OverlayGraph& g,
                          const failure::FailureView& view,
                          const std::uint8_t* trusted, graph::NodeId u,
                          metric::Point target, std::size_t rank) noexcept {
  constexpr std::size_t kInline = graph::OverlayGraph::kInlineEdges;
  const metric::Space& space = g.space();
  const metric::Point up = g.position(u);
  const metric::Distance du = space.distance(up, target);
  // Standard layout: one header cache line carries the offsets and the
  // inline slice prefix; the rest of the slice lives in the spill array,
  // which is small enough to stay cache-resident (and prefetched ahead by
  // the batch pipeline). Compact layout: the 16-byte header points at the
  // node's delta-encoded stream.
  const graph::OverlayGraph::NodeHeader* h = nullptr;
  const graph::OverlayGraph::CompactHeader* ch = nullptr;
  const graph::NodeId* tail = nullptr;
  std::uint32_t degree;
  std::size_t slot_base;
  if constexpr (kCompact) {
    ch = &g.cheader(u);
    degree = ch->degree;
    slot_base = ch->offset;
  } else {
    h = &g.header(u);
    tail = g.tail(*h);
    degree = h->degree;
    slot_base = h->offset;
  }
  const auto inline_n =
      degree < kInline ? degree : static_cast<std::uint32_t>(kInline);

  metric::Distance prev_d = 0;
  graph::NodeId prev_v = graph::kInvalidNode;
  bool have_prev = false;
  for (;;) {
    // best_d seeded with du realizes the strictly-closer filter without a
    // separate compare in the first round (the hot case).
    metric::Distance best_d = du;
    graph::NodeId best_v = graph::kInvalidNode;
    const auto consider = [&](graph::NodeId v, std::uint32_t i) {
      if constexpr (kCheckLinks) {
        if (!view.link_alive_at(slot_base + i)) return;
      }
      if constexpr (kCheckNodes) {
        if (!view.node_alive(v)) return;
      }
      if constexpr (kCheckTrust) {
        if (trusted[v] == 0) return;
      }
      const metric::Point vp = kDense ? static_cast<metric::Point>(v) : g.position(v);
      const metric::Distance dv = space.distance(vp, target);
      if constexpr (kOneSided) {
        if (dv < du && !space.between(vp, up, target)) {
          return;  // would overshoot the target
        }
      }
      if (have_prev) {
        if (dv >= du) return;
        if (dv < prev_d || (dv == prev_d && v <= prev_v)) return;
        if (best_v != graph::kInvalidNode &&
            (dv > best_d || (dv == best_d && v >= best_v))) {
          return;
        }
        best_d = dv;
        best_v = v;
        g.prefetch(v);
        return;
      }
      if (dv < best_d) {
        best_d = dv;
        best_v = v;
        // The winner is the node whose header the next hop will read; start
        // pulling it in while the scan finishes.
        g.prefetch(v);
      } else if (dv == best_d && best_v != graph::kInvalidNode && v < best_v) {
        best_v = v;
      }
    };
    if constexpr (kCompact) {
      const std::uint16_t* p = g.enc_stream(*ch);
      for (std::uint32_t i = 0; i < degree; ++i) {
        consider(graph::detail::decode_link(p, u), i);
      }
    } else {
      for (std::uint32_t i = 0; i < inline_n; ++i) consider(h->inline_edges[i], i);
      for (std::uint32_t i = kInline; i < degree; ++i)
        consider(tail[i - kInline], i);
    }
    if (best_v == graph::kInvalidNode) return graph::kInvalidNode;
    if (rank == 0) return best_v;
    --rank;
    prev_d = best_d;
    prev_v = best_v;
    have_prev = true;
  }
}

using SelectFn = graph::NodeId (*)(const graph::OverlayGraph&,
                                   const failure::FailureView&,
                                   const std::uint8_t*, graph::NodeId,
                                   metric::Point, std::size_t) noexcept;

template <std::size_t... Is>
constexpr std::array<SelectFn, 64> make_select_table(std::index_sequence<Is...>) {
  return {select_impl<(Is & 32) != 0, (Is & 16) != 0, (Is & 8) != 0,
                      (Is & 4) != 0, (Is & 2) != 0, (Is & 1) != 0>...};
}

constexpr std::array<SelectFn, 64> kSelectTable =
    make_select_table(std::make_index_sequence<64>{});

#if defined(__x86_64__) && defined(__GNUC__)
#define P2P_HAVE_AVX512_SELECT 1

/// Compact-layout SIMD staging: a node's delta stream is decoded into an
/// aligned id buffer and scanned as one segment. Degrees above the cap (far
/// beyond any paper configuration — ℓ + 2 per node; only adversarial inputs
/// exceed it) fall back to the scalar compact kernel.
inline constexpr std::uint32_t kSimdDecodeCap = 256;

// GCC's _mm512_* expansions seed results from _mm512_undefined_epi32, which
// -Wmaybe-uninitialized flags at -O3; the intrinsics are correct as written.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
/// Builds the admissibility mask of one 8-lane group: the remainder mask,
/// narrowed by the link-liveness bits of the scanned slots (kCheckLinks), by
/// a byte gather on the view's node-alive sideband (kCheckNodes), and by a
/// second byte gather on the reputation table's trusted sideband
/// (kCheckTrust). The masked failure-aware scans reuse the intact kernels'
/// key packing — a dead link, dead target or distrusted target simply never
/// contributes to the min-reduction, which is exactly the per-candidate
/// branch the scalar path pays, hoisted into mask arithmetic.
///
/// `live` is the caller's 64-bit liveness window cache: one
/// FailureView::link_live_word fetch covers the next 64 links, and groups
/// advance by 8, so a group's byte never straddles the fetched window.
/// `vid_out` receives the (masked-loaded) widened ids for the group.
template <bool kCheckLinks, bool kCheckNodes, bool kCheckTrust>
__attribute__((target("avx512f")))
inline __mmask8 avx512_group_mask(const graph::NodeId* ids, std::uint32_t i,
                                  std::uint32_t count,
                                  const failure::FailureView& view,
                                  std::size_t slot_base,
                                  const std::uint8_t* alive_bytes,
                                  const std::uint8_t* trusted_bytes,
                                  std::uint64_t& live, __m512i& vid_out) noexcept {
  const std::uint32_t left = count - i;
  __mmask8 m = left >= 8 ? static_cast<__mmask8>(0xff)
                         : static_cast<__mmask8>((1u << left) - 1u);
  if constexpr (kCheckLinks) {
    if ((i & 63u) == 0) live = view.link_live_word(slot_base + i);
    m &= static_cast<__mmask8>(live >> (i & 63u));
  }
  // Masked load of up to eight u32 ids (zeroed lanes), widened to u64. Dead
  // links are folded into the load mask: their lanes never touch memory and
  // never reach the min.
  vid_out = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(
      _mm512_maskz_loadu_epi32(static_cast<__mmask16>(m), ids + i)));
  if constexpr (kCheckNodes) {
    // Dead *targets* drop via one byte-granular gather per group instead of
    // a per-candidate bit-test branch: alive_bytes[v] is 0 or 1, so testing
    // bit 0 of the gathered dword is the aliveness predicate.
    const __m256i alive32 = _mm512_mask_i64gather_epi32(
        _mm256_setzero_si256(), m, vid_out, alive_bytes, 1);
    m &= _mm512_test_epi64_mask(_mm512_cvtepu32_epi64(alive32),
                                _mm512_set1_epi64(1));
  }
  if constexpr (kCheckTrust) {
    // Distrusted targets drop the same way — the reputation sideband has the
    // identical byte shape (trusted_bytes[v] is 0 or 1, padded past size()),
    // so distrust rides the kernel as a third mask source. Gathering under
    // the already-narrowed mask skips lanes node-gathering ruled out.
    const __m256i trust32 = _mm512_mask_i64gather_epi32(
        _mm256_setzero_si256(), m, vid_out, trusted_bytes, 1);
    m &= _mm512_test_epi64_mask(_mm512_cvtepu32_epi64(trust32),
                                _mm512_set1_epi64(1));
  }
  return m;
}

/// Vectorized rank-0 selection scan: dense graph, two-sided greedy. Packs
/// each admissible neighbour into the key
///   key(v) = (distance(v, target) << 32) | v
/// so the lexicographic (distance, id) minimum — candidates()[0] exactly,
/// ties to the lower id — is a single unsigned 64-bit min-reduction, eight
/// lanes at a time. The strictly-closer filter needs no per-lane mask: the
/// global minimum is admissible iff it is < (du << 32), and a self-link or
/// any not-closer neighbour can never win. Integer-only AVX-512 (no FMA), so
/// no meaningful license downclocking. Masked-out lanes (remainder, dead
/// link, dead target) keep the running min unchanged —
/// _mm512_mask_min_epu64 keeps vbest in those lanes.
template <bool kCheckLinks, bool kCheckNodes, bool kCheckTrust>
__attribute__((target("avx512f")))
inline __m512i avx512_scan_ids(__m512i vbest, const graph::NodeId* ids,
                               std::uint32_t count, __m512i vt, __m512i vn,
                               bool ring, const failure::FailureView& view,
                               std::size_t slot_base,
                               const std::uint8_t* alive_bytes,
                               const std::uint8_t* trusted_bytes) noexcept {
  std::uint64_t live = 0;
  for (std::uint32_t i = 0; i < count; i += 8) {
    __m512i vid;
    const __mmask8 m = avx512_group_mask<kCheckLinks, kCheckNodes, kCheckTrust>(
        ids, i, count, view, slot_base, alive_bytes, trusted_bytes, live, vid);
    const __m512i diff = _mm512_abs_epi64(_mm512_sub_epi64(vid, vt));
    const __m512i dv =
        ring ? _mm512_min_epu64(diff, _mm512_sub_epi64(vn, diff)) : diff;
    const __m512i key = _mm512_or_epi64(_mm512_slli_epi64(dv, 32), vid);
    vbest = _mm512_mask_min_epu64(vbest, m, vbest, key);
  }
  return vbest;
}

template <bool kCheckLinks, bool kCheckNodes, bool kCheckTrust>
__attribute__((target("avx512f")))
graph::NodeId select_best_avx512(const graph::OverlayGraph& g,
                                 const failure::FailureView& view,
                                 const std::uint8_t* trusted_bytes,
                                 graph::NodeId u, metric::Point target) noexcept {
  constexpr std::size_t kInline = graph::OverlayGraph::kInlineEdges;
  const metric::Space& space = g.space();
  // simd_ok_ admits 1-D spaces only, so the kind is line or ring here.
  const bool ring = space.kind() == metric::Space::Kind::kRing;
  const metric::Distance du =
      space.distance(static_cast<metric::Point>(u), target);
  const std::uint8_t* alive_bytes = kCheckNodes ? view.node_alive_bytes() : nullptr;

  const __m512i vt = _mm512_set1_epi64(static_cast<long long>(target));
  const __m512i vn = _mm512_set1_epi64(static_cast<long long>(space.size()));
  __m512i vbest = _mm512_set1_epi64(-1);
  if (g.compact()) {
    const graph::OverlayGraph::CompactHeader& ch = g.cheader(u);
    if (ch.degree > kSimdDecodeCap) {
      return select_impl<true, kCheckTrust, true, kCheckLinks, kCheckNodes,
                         false>(g, view, trusted_bytes, u, target, 0);
    }
    // Decode the delta stream into lane-loadable ids, then scan the buffer
    // as one segment (slot base = the node's flat slot base, exactly the
    // standard kernel's keying). Masked loads never touch lanes past the
    // remainder mask, so the buffer needs no padding.
    alignas(64) graph::NodeId buf[kSimdDecodeCap];
    g.decode_links(u, buf);
    vbest = avx512_scan_ids<kCheckLinks, kCheckNodes, kCheckTrust>(
        vbest, buf, ch.degree, vt, vn, ring, view, ch.offset, alive_bytes,
        trusted_bytes);
  } else {
    const graph::OverlayGraph::NodeHeader& h = g.header(u);
    const std::uint32_t degree = h.degree;
    const auto inline_n =
        degree < kInline ? degree : static_cast<std::uint32_t>(kInline);
    vbest = avx512_scan_ids<kCheckLinks, kCheckNodes, kCheckTrust>(
        vbest, h.inline_edges, inline_n, vt, vn, ring, view, h.offset,
        alive_bytes, trusted_bytes);
    if (degree > kInline) {
      vbest = avx512_scan_ids<kCheckLinks, kCheckNodes, kCheckTrust>(
          vbest, g.tail(h), degree - inline_n, vt, vn, ring, view,
          h.offset + kInline, alive_bytes, trusted_bytes);
    }
  }
  const std::uint64_t best = _mm512_reduce_min_epu64(vbest);
  if (best >= (static_cast<std::uint64_t>(du) << 32)) return graph::kInvalidNode;
  const auto best_v = static_cast<graph::NodeId>(best & 0xffffffffu);
  // The winner's header is what the next hop (or the batch pipeline a full
  // rotation later) reads.
  g.prefetch(best_v);
  return best_v;
}

/// Torus leg of the vectorized selection: eight neighbours at a time, each
/// flattened id split into (row, col) and scored by wrapped Manhattan
/// distance to the target, packed into the same (distance << 32 | id) key.
///
/// The split is id / side via a double-precision reciprocal: ids are < 2^32
/// (exact in a double) and sides < 2^16, so the truncated product is off by
/// at most one — only at exact multiples of the side — and a two-sided
/// masked fixup (col wrapped negative → row-1, col >= side → row+1) restores
/// floor division exactly. This keeps the whole scan in AVX-512F: the only
/// integer multiply needed is row * side, which fits vpmuludq's 32-bit
/// operands. Without it the scalar path burns two 64-bit divides per
/// neighbour and the torus hop is compute-bound instead of memory-bound.
template <bool kCheckLinks, bool kCheckNodes, bool kCheckTrust>
__attribute__((target("avx512f")))
inline __m512i avx512_torus_scan_ids(__m512i vbest, const graph::NodeId* ids,
                                     std::uint32_t count, __m512i vtr, __m512i vtc,
                                     __m512i vside, __m512d vinv_side,
                                     const failure::FailureView& view,
                                     std::size_t slot_base,
                                     const std::uint8_t* alive_bytes,
                                     const std::uint8_t* trusted_bytes) noexcept {
  const __m512i vone = _mm512_set1_epi64(1);
  const __m512i vmax32 = _mm512_set1_epi64(0xffffffffll);
  std::uint64_t live = 0;
  for (std::uint32_t i = 0; i < count; i += 8) {
    __m512i vid;
    const __mmask8 m = avx512_group_mask<kCheckLinks, kCheckNodes, kCheckTrust>(
        ids, i, count, view, slot_base, alive_bytes, trusted_bytes, live, vid);
    const __m256i ids32 = _mm512_cvtepi64_epi32(vid);
    // row = floor(id / side): reciprocal multiply, truncate, then fix up.
    const __m256i row32 = _mm512_cvttpd_epu32(
        _mm512_mul_pd(_mm512_cvtepu32_pd(ids32), vinv_side));
    __m512i vrow = _mm512_cvtepu32_epi64(row32);
    __m512i vcol = _mm512_sub_epi64(vid, _mm512_mul_epu32(vrow, vside));
    // Overestimated row: col wrapped negative (appears as > 2^32 - 1).
    const __mmask8 over =
        _mm512_cmp_epu64_mask(vcol, vmax32, _MM_CMPINT_NLE);
    vrow = _mm512_mask_sub_epi64(vrow, over, vrow, vone);
    vcol = _mm512_mask_add_epi64(vcol, over, vcol, vside);
    // Underestimated row: col landed in [side, 2*side).
    const __mmask8 under = _mm512_cmp_epu64_mask(vcol, vside, _MM_CMPINT_NLT);
    vrow = _mm512_mask_add_epi64(vrow, under, vrow, vone);
    vcol = _mm512_mask_sub_epi64(vcol, under, vcol, vside);
    // Wrapped Manhattan distance to the (pre-split) target.
    const __m512i drd = _mm512_abs_epi64(_mm512_sub_epi64(vrow, vtr));
    const __m512i dr = _mm512_min_epu64(drd, _mm512_sub_epi64(vside, drd));
    const __m512i dcd = _mm512_abs_epi64(_mm512_sub_epi64(vcol, vtc));
    const __m512i dc = _mm512_min_epu64(dcd, _mm512_sub_epi64(vside, dcd));
    const __m512i dv = _mm512_add_epi64(dr, dc);
    const __m512i key = _mm512_or_epi64(_mm512_slli_epi64(dv, 32), vid);
    vbest = _mm512_mask_min_epu64(vbest, m, vbest, key);
  }
  return vbest;
}

template <bool kCheckLinks, bool kCheckNodes, bool kCheckTrust>
__attribute__((target("avx512f")))
graph::NodeId select_best_torus_avx512(const graph::OverlayGraph& g,
                                       const failure::FailureView& view,
                                       const std::uint8_t* trusted_bytes,
                                       graph::NodeId u,
                                       metric::Point target) noexcept {
  constexpr std::size_t kInline = graph::OverlayGraph::kInlineEdges;
  const metric::Space& space = g.space();
  // simd_ok_ bounds size by 2^32, so the side is < 2^16 here.
  const auto side = static_cast<std::uint64_t>(space.as_torus().side());
  const metric::Distance du =
      space.distance(static_cast<metric::Point>(u), target);
  const std::uint8_t* alive_bytes = kCheckNodes ? view.node_alive_bytes() : nullptr;

  const auto tv = static_cast<std::uint64_t>(target);
  const __m512i vtr = _mm512_set1_epi64(static_cast<long long>(tv / side));
  const __m512i vtc = _mm512_set1_epi64(static_cast<long long>(tv % side));
  const __m512i vside = _mm512_set1_epi64(static_cast<long long>(side));
  const __m512d vinv_side = _mm512_set1_pd(1.0 / static_cast<double>(side));
  __m512i vbest = _mm512_set1_epi64(-1);
  if (g.compact()) {
    const graph::OverlayGraph::CompactHeader& ch = g.cheader(u);
    if (ch.degree > kSimdDecodeCap) {
      return select_impl<true, kCheckTrust, true, kCheckLinks, kCheckNodes,
                         false>(g, view, trusted_bytes, u, target, 0);
    }
    alignas(64) graph::NodeId buf[kSimdDecodeCap];
    g.decode_links(u, buf);
    vbest = avx512_torus_scan_ids<kCheckLinks, kCheckNodes, kCheckTrust>(
        vbest, buf, ch.degree, vtr, vtc, vside, vinv_side, view, ch.offset,
        alive_bytes, trusted_bytes);
  } else {
    const graph::OverlayGraph::NodeHeader& h = g.header(u);
    const std::uint32_t degree = h.degree;
    const auto inline_n =
        degree < kInline ? degree : static_cast<std::uint32_t>(kInline);
    vbest = avx512_torus_scan_ids<kCheckLinks, kCheckNodes, kCheckTrust>(
        vbest, h.inline_edges, inline_n, vtr, vtc, vside, vinv_side, view,
        h.offset, alive_bytes, trusted_bytes);
    if (degree > kInline) {
      vbest = avx512_torus_scan_ids<kCheckLinks, kCheckNodes, kCheckTrust>(
          vbest, g.tail(h), degree - inline_n, vtr, vtc, vside, vinv_side,
          view, h.offset + kInline, alive_bytes, trusted_bytes);
    }
  }
  const std::uint64_t best = _mm512_reduce_min_epu64(vbest);
  if (best >= (static_cast<std::uint64_t>(du) << 32)) return graph::kInvalidNode;
  const auto best_v = static_cast<graph::NodeId>(best & 0xffffffffu);
  g.prefetch(best_v);
  return best_v;
}

/// Masked-kernel dispatch: one instantiation per (metric family, link mask,
/// node mask, trust mask) so the intact case keeps its zero-overhead kernel
/// and every failure-aware shape pays only the masks it needs. Index:
/// (links?4:0) | (nodes?2:0) | (trust?1:0).
using SimdSelectFn = graph::NodeId (*)(const graph::OverlayGraph&,
                                       const failure::FailureView&,
                                       const std::uint8_t*, graph::NodeId,
                                       metric::Point) noexcept;

constexpr std::array<SimdSelectFn, 8> kSimdSelect1D = {
    select_best_avx512<false, false, false>,
    select_best_avx512<false, false, true>,
    select_best_avx512<false, true, false>,
    select_best_avx512<false, true, true>,
    select_best_avx512<true, false, false>,
    select_best_avx512<true, false, true>,
    select_best_avx512<true, true, false>,
    select_best_avx512<true, true, true>};
constexpr std::array<SimdSelectFn, 8> kSimdSelectTorus = {
    select_best_torus_avx512<false, false, false>,
    select_best_torus_avx512<false, false, true>,
    select_best_torus_avx512<false, true, false>,
    select_best_torus_avx512<false, true, true>,
    select_best_torus_avx512<true, false, false>,
    select_best_torus_avx512<true, false, true>,
    select_best_torus_avx512<true, true, false>,
    select_best_torus_avx512<true, true, true>};
#pragma GCC diagnostic pop
#else
#define P2P_HAVE_AVX512_SELECT 0
#endif

}  // namespace

graph::NodeId Router::select_candidate(graph::NodeId u, metric::Point target,
                                       std::size_t rank) const noexcept {
  // When nothing has ever failed the liveness bitsets are empty and both
  // knowledge models admit every link; dispatch to a specialization that
  // skips the per-slot queries outright. The distrust mask gates the same
  // way: while the reputation table distrusts nobody (or none is wired) the
  // trust-free kernels dispatch and selection costs exactly what it did
  // before reputation existed.
  const bool check_links = !view_->links_intact();
  const bool check_nodes =
      config_.knowledge == Knowledge::kLiveness && !view_->nodes_intact();
  const failure::ReputationTable* rep = config_.reputation;
  const bool check_trust = rep != nullptr && rep->distrusted_count() != 0;
  const std::uint8_t* trusted = check_trust ? rep->trusted_bytes() : nullptr;
#if P2P_HAVE_AVX512_SELECT
  // The §6/§4 sweeps — intact *and* failure-aware — spend nearly all their
  // time in this one call shape; simd_ok_ folds the per-router invariants
  // (dense two-sided graph, narrow positions, CPU support) computed at
  // construction, and the per-call view state picks the masked kernel
  // variant: dead links fold into the lane mask via the view's liveness
  // words, dead targets via a byte gather on its node-alive sideband, and
  // distrusted targets via a second byte gather on the reputation sideband.
  // Each metric family has its own kernel; all share the key packing and
  // the min-reduction.
  if (rank == 0 && simd_ok_) {
    const std::size_t masks = (check_links ? 4u : 0u) |
                              (check_nodes ? 2u : 0u) | (check_trust ? 1u : 0u);
    return graph_->space().one_dimensional()
               ? kSimdSelect1D[masks](*graph_, *view_, trusted, u, target)
               : kSimdSelectTorus[masks](*graph_, *view_, trusted, u, target);
  }
#endif
  const bool one_sided = config_.sidedness == Sidedness::kOneSided;
  const std::size_t index =
      (graph_->compact() ? 32u : 0u) | (check_trust ? 16u : 0u) |
      (graph_->dense() ? 8u : 0u) | (check_links ? 4u : 0u) |
      (check_nodes ? 2u : 0u) | (one_sided ? 1u : 0u);
  return kSelectTable[index](*graph_, *view_, trusted, u, target, rank);
}

std::vector<graph::NodeId> Router::candidates(graph::NodeId u,
                                              metric::Point target) const {
  const metric::Space& space = graph_->space();
  const metric::Point up = graph_->position(u);
  const metric::Distance du = space.distance(up, target);
  const auto neigh = graph_->neighbors(u);
  const failure::ReputationTable* rep = config_.reputation;
  const bool check_trust = rep != nullptr && rep->distrusted_count() != 0;

  std::vector<std::pair<metric::Distance, graph::NodeId>> ranked;
  ranked.reserve(neigh.size());
  // Iterate rather than index: NeighborRange::operator[] re-decodes the
  // stream prefix on the compact layout, turning an indexed loop quadratic.
  std::size_t i = 0;
  for (const graph::NodeId v : neigh) {
    const std::size_t link_index = i++;
    if (v == u) continue;
    if (check_trust && !rep->trusted(v)) continue;
    if (config_.knowledge == Knowledge::kLiveness) {
      // hop_usable(u, i) inlined against the already-decoded v (the member
      // helper would re-index neighbors(u)).
      if (!view_->link_alive(u, link_index) || !view_->node_alive(v)) continue;
    } else {
      // Stale mode: a failed link transmits nothing, so the sender can rule
      // it out, but the far node's aliveness is discovered only after
      // committing to the choice.
      if (!view_->link_alive(u, link_index)) continue;
    }
    const metric::Point vp = graph_->position(v);
    const metric::Distance dv = space.distance(vp, target);
    if (dv >= du) continue;  // greedy: strictly closer only
    if (config_.sidedness == Sidedness::kOneSided &&
        !space.between(vp, up, target)) {
      continue;  // would overshoot the target
    }
    ranked.emplace_back(dv, v);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<graph::NodeId> result;
  result.reserve(ranked.size());
  for (const auto& [d, v] : ranked) {
    if (result.empty() || result.back() != v) result.push_back(v);  // drop dup links
  }
  return result;
}

graph::NodeId Router::next_hop(graph::NodeId u, metric::Point target) const {
  util::require_in_range(u < graph_->size(), "next_hop: node out of range");
  util::require(graph_->space().contains(target), "next_hop: target outside space");
  const graph::NodeId best = select_candidate(u, target, 0);
  if (best == graph::kInvalidNode) return graph::kInvalidNode;
  if (config_.knowledge == Knowledge::kStale && !view_->node_alive(best)) {
    return graph::kInvalidNode;
  }
  return best;
}

RouteResult Router::route(graph::NodeId src, metric::Point target,
                          util::Rng& rng) const {
  RouteSession session(*this, src, target);
  while (session.step_inline(rng)) {
  }
  return session.progress();
}

void Router::route_batch(std::span<const Query> queries,
                         std::span<RouteResult> results, util::Rng& rng,
                         const BatchConfig& batch) const {
  BatchPipeline pipeline(*this, queries, results, rng(), batch);
  pipeline.run();
}

RouteSession::RouteSession(const Router& router, graph::NodeId src,
                           metric::Point target)
    : router_(&router),
      trail_(router.config().stuck_policy == StuckPolicy::kBacktrack
                 ? Trail(router.config().backtrack_window)
                 : Trail()) {
  restart(src, target);
}

void RouteSession::restart(graph::NodeId src, metric::Point target) {
  const graph::OverlayGraph& g = router_->graph();
  util::require_in_range(src < g.size(), "RouteSession: src out of range");
  util::require(g.space().contains(target), "RouteSession: target outside space");
  current_ = src;
  target_node_ = g.node_nearest(target);
  final_goal_ = g.position(target_node_);
  interim_.reset();
  interim_node_ = graph::kInvalidNode;
  trail_.clear();
  cursor_ = 0;
  budget_ = router_->effective_ttl();
  state_ = State::kInTransit;
  result_.status = RouteResult::Status::kStuck;
  result_.hops = 0;
  result_.backtracks = 0;
  result_.reroutes = 0;
  result_.completion_epoch = 0;
  result_.path.clear();
  if (router_->config().record_path) result_.path.push_back(current_);
}

std::optional<graph::NodeId> RouteSession::step(util::Rng& rng) {
  return step_inline(rng);
}

static_assert(telemetry::TraceBuffer::kNone == ~std::uint32_t{0},
              "BatchPipeline::kNoTrail must mirror TraceBuffer::kNone");

BatchPipeline::BatchPipeline(const Router& router, std::span<const Query> queries,
                             std::span<RouteResult> results,
                             std::uint64_t seed_base, const BatchConfig& config)
    : router_(&router),
      queries_(queries),
      results_(results),
      seed_base_(seed_base),
      prefetch_distance_(config.prefetch_distance) {
  util::require(results.size() >= queries.size(),
                "BatchPipeline: results span shorter than queries");
  if constexpr (telemetry::kCompiledIn) {
    telemetry_ = config.telemetry;
    trace_ = config.trace;
  }
  const std::size_t width = config.width < 1 ? 1 : config.width;
  const std::size_t lanes = width < queries.size() ? width : queries.size();
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(Lane{RouteSession(router, queries[i].src, queries[i].target),
                          util::substream(seed_base, i), i});
    if (trace_ != nullptr)
      lanes_.back().trail = trace_->begin(i, queries[i].src);
    // Start pulling the lane's first header now; its first step is >= one
    // full rotation away.
    router.graph().prefetch(lanes_.back().session.current());
  }
  next_query_ = lanes;
}

bool BatchPipeline::tick() {
  if (lanes_.empty()) return false;
  const graph::OverlayGraph& g = router_->graph();
  if (prefetch_distance_ != 0 && prefetch_distance_ < lanes_.size()) {
    // The lane stepped prefetch_distance ticks from now: its header is
    // already resident (the in-scan prefetch of its previous step, or the
    // construction/refill prefetch, ran a full rotation ago), which lets us
    // chase one level deeper and pull the spill line high-degree nodes will
    // read — the second dependent load the scalar path must eat serially.
    // Lanes compact on retire, so the lookahead always hits a live search;
    // rings already smaller than the lookahead skip it (lines are warm).
    std::size_t ahead = cursor_ + prefetch_distance_;
    if (ahead >= lanes_.size()) ahead -= lanes_.size();
    g.prefetch_spill(lanes_[ahead].session.current());
  }
  Lane& lane = lanes_[cursor_];
  const std::optional<graph::NodeId> moved = lane.session.step_inline(lane.rng);
  if constexpr (telemetry::kCompiledIn) {
    // Hop capture touches only sampled lanes; untraced batches pay one
    // predicted-not-taken branch here (compiled out under P2P_TELEMETRY=OFF).
    if (trace_ != nullptr && lane.trail != kNoTrail && moved.has_value()) {
      trace_->hop(lane.trail, *moved, lane.session.last_rank(),
                  router_->view().epoch());
    }
  }
  if (lane.session.finished()) {
    results_[lane.query] = lane.session.progress();
    ++retired_;
    if constexpr (telemetry::kCompiledIn) {
      if (telemetry_ != nullptr) telemetry_->record(results_[lane.query]);
      if (trace_ != nullptr && lane.trail != kNoTrail) {
        trace_->end(lane.trail,
                    static_cast<std::uint8_t>(results_[lane.query].status));
      }
    }
    if (next_query_ < queries_.size()) {
      const std::size_t refill = next_query_++;
      lane.session.restart(queries_[refill].src, queries_[refill].target);
      lane.rng = util::substream(seed_base_, refill);
      lane.query = refill;
      if constexpr (telemetry::kCompiledIn) {
        if (trace_ != nullptr)
          lane.trail = trace_->begin(refill, queries_[refill].src);
      }
      g.prefetch(lane.session.current());  // first header of the new search
    } else {
      // Drain phase: compact the retired lane out of the ring so rotation
      // and lookahead only ever touch live searches. The lane moved into
      // this slot is stepped on the next tick, never skipped.
      if (&lane != &lanes_.back()) lane = std::move(lanes_.back());
      lanes_.pop_back();
      if (cursor_ == lanes_.size()) cursor_ = 0;
      return !lanes_.empty();
    }
  }
  if (++cursor_ == lanes_.size()) cursor_ = 0;
  return true;
}

}  // namespace p2p::core
