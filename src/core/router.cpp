#include "core/router.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace p2p::core {

Router::Router(const graph::OverlayGraph& g, const failure::FailureView& view,
               RouterConfig config)
    : graph_(&g), view_(&view), config_(config) {
  util::require(&view.graph() == &g, "Router: view must be over the same graph");
  util::require(config_.backtrack_window >= 1, "Router: backtrack_window must be >= 1");
}

std::size_t Router::effective_ttl() const noexcept {
  if (config_.ttl != 0) return config_.ttl;
  const double lg = std::ceil(std::log2(static_cast<double>(graph_->size()) + 1.0));
  const auto budget = static_cast<std::size_t>(8.0 * lg * lg);
  return budget < 64 ? 64 : budget;
}

std::vector<graph::NodeId> Router::candidates(graph::NodeId u,
                                              metric::Point target) const {
  const metric::Space1D& space = graph_->space();
  const metric::Point up = graph_->position(u);
  const metric::Distance du = space.distance(up, target);
  const auto neigh = graph_->neighbors(u);

  std::vector<std::pair<metric::Distance, graph::NodeId>> ranked;
  ranked.reserve(neigh.size());
  for (std::size_t i = 0; i < neigh.size(); ++i) {
    const graph::NodeId v = neigh[i];
    if (v == u) continue;
    if (config_.knowledge == Knowledge::kLiveness) {
      if (!view_->hop_usable(u, i)) continue;
    } else {
      // Stale mode: a failed link transmits nothing, so the sender can rule
      // it out, but the far node's aliveness is discovered only after
      // committing to the choice.
      if (!view_->link_alive(u, i)) continue;
    }
    const metric::Point vp = graph_->position(v);
    const metric::Distance dv = space.distance(vp, target);
    if (dv >= du) continue;  // greedy: strictly closer only
    if (config_.sidedness == Sidedness::kOneSided &&
        !space.between(vp, up, target)) {
      continue;  // would overshoot the target
    }
    ranked.emplace_back(dv, v);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<graph::NodeId> result;
  result.reserve(ranked.size());
  for (const auto& [d, v] : ranked) {
    if (result.empty() || result.back() != v) result.push_back(v);  // drop dup links
  }
  return result;
}

graph::NodeId Router::next_hop(graph::NodeId u, metric::Point target) const {
  util::require_in_range(u < graph_->size(), "next_hop: node out of range");
  util::require(graph_->space().contains(target), "next_hop: target outside space");
  const auto cands = candidates(u, target);
  if (cands.empty()) return graph::kInvalidNode;
  if (config_.knowledge == Knowledge::kStale && !view_->node_alive(cands.front())) {
    return graph::kInvalidNode;
  }
  return cands.front();
}

RouteResult Router::route(graph::NodeId src, metric::Point target,
                          util::Rng& rng) const {
  RouteSession session(*this, src, target);
  while (session.step(rng)) {
  }
  return session.progress();
}

RouteSession::RouteSession(const Router& router, graph::NodeId src,
                           metric::Point target)
    : router_(&router), current_(src) {
  const graph::OverlayGraph& g = router.graph();
  util::require_in_range(src < g.size(), "RouteSession: src out of range");
  util::require(g.space().contains(target), "RouteSession: target outside space");
  target_node_ = g.node_nearest(target);
  final_goal_ = g.position(target_node_);
  budget_ = router.effective_ttl();
  if (router.config().record_path) result_.path.push_back(current_);
}

std::optional<graph::NodeId> RouteSession::step(util::Rng& rng) {
  if (state_ != State::kInTransit) return std::nullopt;
  const RouterConfig& cfg = router_->config();
  const graph::OverlayGraph& g = router_->graph();

  while (budget_ > 0) {
    --budget_;
    if (current_ == target_node_) {
      state_ = State::kDelivered;
      result_.status = RouteResult::Status::kDelivered;
      return std::nullopt;
    }
    if (interim_ && current_ == interim_node_) {
      interim_.reset();  // reached the detour node; resume toward the target
      cursor_ = 0;
      continue;
    }
    const metric::Point goal = interim_ ? *interim_ : final_goal_;
    const auto cands = router_->candidates(current_, goal);

    graph::NodeId next = graph::kInvalidNode;
    if (cursor_ < cands.size()) {
      const graph::NodeId cand = cands[cursor_];
      if (cfg.knowledge == Knowledge::kStale &&
          !router_->view().node_alive(cand)) {
        // §6: "once a node chooses its best neighbour, it does not send the
        // message to any other link" — a dead pick means this node is stuck.
        next = graph::kInvalidNode;
      } else {
        next = cand;
      }
    }

    if (next != graph::kInvalidNode) {
      if (cfg.stuck_policy == StuckPolicy::kBacktrack) {
        trail_.emplace_back(current_, cursor_ + 1);
        if (trail_.size() > cfg.backtrack_window) trail_.pop_front();
      }
      current_ = next;
      cursor_ = 0;
      ++result_.hops;
      if (cfg.record_path) result_.path.push_back(current_);
      return current_;
    }

    // Stuck: no (further) live neighbour strictly closer to the goal.
    switch (cfg.stuck_policy) {
      case StuckPolicy::kTerminate:
        state_ = State::kStuck;
        result_.status = RouteResult::Status::kStuck;
        return std::nullopt;
      case StuckPolicy::kRandomReroute: {
        if (result_.reroutes >= cfg.max_reroutes ||
            router_->view().alive_count() == 0) {
          state_ = State::kStuck;
          result_.status = RouteResult::Status::kStuck;
          return std::nullopt;
        }
        ++result_.reroutes;
        interim_node_ = router_->view().random_alive(rng);
        interim_ = g.position(interim_node_);
        cursor_ = 0;
        continue;
      }
      case StuckPolicy::kBacktrack: {
        if (trail_.empty()) {
          state_ = State::kStuck;
          result_.status = RouteResult::Status::kStuck;
          return std::nullopt;
        }
        const auto [prev, next_rank] = trail_.back();
        trail_.pop_back();
        current_ = prev;
        cursor_ = next_rank;
        ++result_.hops;  // the message physically travels back
        ++result_.backtracks;
        if (cfg.record_path) result_.path.push_back(current_);
        return current_;
      }
    }
  }
  state_ = State::kTtlExpired;
  result_.status = RouteResult::Status::kTtlExpired;
  return std::nullopt;
}

}  // namespace p2p::core
