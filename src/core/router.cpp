#include "core/router.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "util/require.h"

namespace p2p::core {

Router::Router(const graph::OverlayGraph& g, const failure::FailureView& view,
               RouterConfig config)
    : graph_(&g), view_(&view), config_(config) {
  util::require(&view.graph() == &g, "Router: view must be over the same graph");
  util::require(config_.backtrack_window >= 1, "Router: backtrack_window must be >= 1");
}

std::size_t Router::effective_ttl() const noexcept {
  if (config_.ttl != 0) return config_.ttl;
  const double lg = std::ceil(std::log2(static_cast<double>(graph_->size()) + 1.0));
  const auto budget = static_cast<std::size_t>(8.0 * lg * lg);
  return budget < 64 ? 64 : budget;
}

namespace {

/// Core of select_candidate, compiled once per (dense, link-check,
/// node-check, sidedness) combination so the common configurations run with
/// no per-neighbour flag tests at all. Candidates order by
/// (distance-to-target, node id); duplicate links to the same neighbour
/// collapse. Streaming k-th order statistic: each round takes the minimum
/// pair strictly greater than the previous round's.
///
/// A self-link (v == u) can never be selected — its distance equals du and
/// every round filters to dv < du — so no explicit check is needed.
template <bool kDense, bool kCheckLinks, bool kCheckNodes, bool kOneSided>
graph::NodeId select_impl(const graph::OverlayGraph& g,
                          const failure::FailureView& view, graph::NodeId u,
                          metric::Point target, std::size_t rank) noexcept {
  constexpr std::size_t kInline = graph::OverlayGraph::kInlineEdges;
  const metric::Space1D& space = g.space();
  const metric::Point up = g.position(u);
  const metric::Distance du = space.distance(up, target);
  // One header cache line carries the offsets and the inline slice prefix;
  // the rest of the slice lives in the compact spill array, which is small
  // enough to stay cache-resident.
  const graph::OverlayGraph::NodeHeader& h = g.header(u);
  const graph::NodeId* tail = g.tail(h);
  const std::uint32_t degree = h.degree;
  const auto inline_n =
      degree < kInline ? degree : static_cast<std::uint32_t>(kInline);

  metric::Distance prev_d = 0;
  graph::NodeId prev_v = graph::kInvalidNode;
  bool have_prev = false;
  for (;;) {
    // best_d seeded with du realizes the strictly-closer filter without a
    // separate compare in the first round (the hot case).
    metric::Distance best_d = du;
    graph::NodeId best_v = graph::kInvalidNode;
    const auto consider = [&](graph::NodeId v, std::uint32_t i) {
      if constexpr (kCheckLinks) {
        if (!view.link_alive_at(h.offset + i)) return;
      }
      if constexpr (kCheckNodes) {
        if (!view.node_alive(v)) return;
      }
      const metric::Point vp = kDense ? static_cast<metric::Point>(v) : g.position(v);
      const metric::Distance dv = space.distance(vp, target);
      if constexpr (kOneSided) {
        if (dv < du && !space.between(vp, up, target)) {
          return;  // would overshoot the target
        }
      }
      if (have_prev) {
        if (dv >= du) return;
        if (dv < prev_d || (dv == prev_d && v <= prev_v)) return;
        if (best_v != graph::kInvalidNode &&
            (dv > best_d || (dv == best_d && v >= best_v))) {
          return;
        }
        best_d = dv;
        best_v = v;
        g.prefetch(v);
        return;
      }
      if (dv < best_d) {
        best_d = dv;
        best_v = v;
        // The winner is the node whose header the next hop will read; start
        // pulling it in while the scan finishes.
        g.prefetch(v);
      } else if (dv == best_d && best_v != graph::kInvalidNode && v < best_v) {
        best_v = v;
      }
    };
    for (std::uint32_t i = 0; i < inline_n; ++i) consider(h.inline_edges[i], i);
    for (std::uint32_t i = kInline; i < degree; ++i) consider(tail[i - kInline], i);
    if (best_v == graph::kInvalidNode) return graph::kInvalidNode;
    if (rank == 0) return best_v;
    --rank;
    prev_d = best_d;
    prev_v = best_v;
    have_prev = true;
  }
}

using SelectFn = graph::NodeId (*)(const graph::OverlayGraph&,
                                   const failure::FailureView&, graph::NodeId,
                                   metric::Point, std::size_t) noexcept;

template <std::size_t... Is>
constexpr std::array<SelectFn, 16> make_select_table(std::index_sequence<Is...>) {
  return {select_impl<(Is & 8) != 0, (Is & 4) != 0, (Is & 2) != 0, (Is & 1) != 0>...};
}

constexpr std::array<SelectFn, 16> kSelectTable =
    make_select_table(std::make_index_sequence<16>{});

}  // namespace

graph::NodeId Router::select_candidate(graph::NodeId u, metric::Point target,
                                       std::size_t rank) const noexcept {
  // When nothing has ever failed the liveness bitsets are empty and both
  // knowledge models admit every link; dispatch to a specialization that
  // skips the per-slot queries outright.
  const bool check_links = !view_->links_intact();
  const bool check_nodes =
      config_.knowledge == Knowledge::kLiveness && !view_->nodes_intact();
  const bool one_sided = config_.sidedness == Sidedness::kOneSided;
  const std::size_t index = (graph_->dense() ? 8u : 0u) | (check_links ? 4u : 0u) |
                            (check_nodes ? 2u : 0u) | (one_sided ? 1u : 0u);
  return kSelectTable[index](*graph_, *view_, u, target, rank);
}

std::vector<graph::NodeId> Router::candidates(graph::NodeId u,
                                              metric::Point target) const {
  const metric::Space1D& space = graph_->space();
  const metric::Point up = graph_->position(u);
  const metric::Distance du = space.distance(up, target);
  const auto neigh = graph_->neighbors(u);

  std::vector<std::pair<metric::Distance, graph::NodeId>> ranked;
  ranked.reserve(neigh.size());
  for (std::size_t i = 0; i < neigh.size(); ++i) {
    const graph::NodeId v = neigh[i];
    if (v == u) continue;
    if (config_.knowledge == Knowledge::kLiveness) {
      if (!view_->hop_usable(u, i)) continue;
    } else {
      // Stale mode: a failed link transmits nothing, so the sender can rule
      // it out, but the far node's aliveness is discovered only after
      // committing to the choice.
      if (!view_->link_alive(u, i)) continue;
    }
    const metric::Point vp = graph_->position(v);
    const metric::Distance dv = space.distance(vp, target);
    if (dv >= du) continue;  // greedy: strictly closer only
    if (config_.sidedness == Sidedness::kOneSided &&
        !space.between(vp, up, target)) {
      continue;  // would overshoot the target
    }
    ranked.emplace_back(dv, v);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<graph::NodeId> result;
  result.reserve(ranked.size());
  for (const auto& [d, v] : ranked) {
    if (result.empty() || result.back() != v) result.push_back(v);  // drop dup links
  }
  return result;
}

graph::NodeId Router::next_hop(graph::NodeId u, metric::Point target) const {
  util::require_in_range(u < graph_->size(), "next_hop: node out of range");
  util::require(graph_->space().contains(target), "next_hop: target outside space");
  const graph::NodeId best = select_candidate(u, target, 0);
  if (best == graph::kInvalidNode) return graph::kInvalidNode;
  if (config_.knowledge == Knowledge::kStale && !view_->node_alive(best)) {
    return graph::kInvalidNode;
  }
  return best;
}

RouteResult Router::route(graph::NodeId src, metric::Point target,
                          util::Rng& rng) const {
  RouteSession session(*this, src, target);
  while (session.step(rng)) {
  }
  return session.progress();
}

RouteSession::RouteSession(const Router& router, graph::NodeId src,
                           metric::Point target)
    : router_(&router), current_(src) {
  const graph::OverlayGraph& g = router.graph();
  util::require_in_range(src < g.size(), "RouteSession: src out of range");
  util::require(g.space().contains(target), "RouteSession: target outside space");
  target_node_ = g.node_nearest(target);
  final_goal_ = g.position(target_node_);
  budget_ = router.effective_ttl();
  if (router.config().record_path) result_.path.push_back(current_);
}

std::optional<graph::NodeId> RouteSession::step(util::Rng& rng) {
  if (state_ != State::kInTransit) return std::nullopt;
  const RouterConfig& cfg = router_->config();
  const graph::OverlayGraph& g = router_->graph();

  while (budget_ > 0) {
    --budget_;
    if (current_ == target_node_) {
      state_ = State::kDelivered;
      result_.status = RouteResult::Status::kDelivered;
      return std::nullopt;
    }
    if (interim_ && current_ == interim_node_) {
      interim_.reset();  // reached the detour node; resume toward the target
      cursor_ = 0;
      continue;
    }
    const metric::Point goal = interim_ ? *interim_ : final_goal_;
    graph::NodeId next = router_->select_candidate(current_, goal, cursor_);
    if (next != graph::kInvalidNode && cfg.knowledge == Knowledge::kStale &&
        !router_->view().node_alive(next)) {
      // §6: "once a node chooses its best neighbour, it does not send the
      // message to any other link" — a dead pick means this node is stuck.
      next = graph::kInvalidNode;
    }

    if (next != graph::kInvalidNode) {
      if (cfg.stuck_policy == StuckPolicy::kBacktrack) {
        trail_.push(current_, cursor_ + 1, cfg.backtrack_window);
      }
      current_ = next;
      cursor_ = 0;
      ++result_.hops;
      if (cfg.record_path) result_.path.push_back(current_);
      return current_;
    }

    // Stuck: no (further) live neighbour strictly closer to the goal.
    switch (cfg.stuck_policy) {
      case StuckPolicy::kTerminate:
        state_ = State::kStuck;
        result_.status = RouteResult::Status::kStuck;
        return std::nullopt;
      case StuckPolicy::kRandomReroute: {
        if (result_.reroutes >= cfg.max_reroutes ||
            router_->view().alive_count() == 0) {
          state_ = State::kStuck;
          result_.status = RouteResult::Status::kStuck;
          return std::nullopt;
        }
        ++result_.reroutes;
        interim_node_ = router_->view().random_alive(rng);
        interim_ = g.position(interim_node_);
        cursor_ = 0;
        continue;
      }
      case StuckPolicy::kBacktrack: {
        if (trail_.empty()) {
          state_ = State::kStuck;
          result_.status = RouteResult::Status::kStuck;
          return std::nullopt;
        }
        const auto [prev, next_rank] = trail_.pop();
        current_ = prev;
        cursor_ = next_rank;
        ++result_.hops;  // the message physically travels back
        ++result_.backtracks;
        if (cfg.record_path) result_.path.push_back(current_);
        return current_;
      }
    }
  }
  state_ = State::kTtlExpired;
  result_.status = RouteResult::Status::kTtlExpired;
  return std::nullopt;
}

}  // namespace p2p::core
