// Overlay assembly: the mutable GraphBuilder and the ideal (one-shot)
// construction of §4.3.
//
// Overlays are built in two phases. A GraphBuilder accumulates links in
// cheap per-node buffers with the same contract as the frozen graph's
// incremental API (short links first, then long links); freeze() then packs
// everything into the flat CSR OverlayGraph the routing hot path wants.
// Building through the builder costs O(nodes + links) total — no flat-array
// shifting — so it is the only sanctioned path for large graphs.
//
// build_overlay realizes the random graph of §4.3 directly: every node links
// to its nearest neighbour on either side plus ℓ long-distance neighbours
// drawn from the configured distribution. This is the "ideal network" of
// Figure 7; the incremental §5 heuristic lives in core/construction.h.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/link_distribution.h"
#include "graph/overlay_graph.h"
#include "metric/space.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::graph {

/// How GraphBuilder::freeze materializes the frozen graph.
struct FreezeOptions {
  /// kStandard: the 64-byte-header CSR with inline/spill replicas (mutable,
  /// the churn experiments' form). kCompact: the 16-byte-header
  /// delta-encoded arena form (immutable, ~2x leaner; the scale sweeps').
  EdgeLayout layout = EdgeLayout::kStandard;
  /// Compact only: request MADV_HUGEPAGE on the arena chunks.
  bool huge_pages = true;
};

/// Mutable first phase of overlay construction; freeze() yields the CSR
/// OverlayGraph. The link contract matches OverlayGraph's incremental API:
/// all short links of a node must be added before its first long link.
class GraphBuilder {
 public:
  /// A builder whose node i sits at grid position i (fully populated grid).
  explicit GraphBuilder(metric::Space space);

  /// A builder over a sparse, strictly increasing set of occupied positions.
  /// Preconditions: positions sorted strictly increasing, all within space.
  GraphBuilder(metric::Space space, std::vector<metric::Point> positions);

  [[nodiscard]] const metric::Space& space() const noexcept { return space_; }
  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }

  /// Grid position of node u. Precondition: u < size().
  [[nodiscard]] metric::Point position(NodeId u) const noexcept {
    return positions_.empty() ? static_cast<metric::Point>(u) : positions_[u];
  }

  /// The node occupying grid position p exactly, or kInvalidNode.
  [[nodiscard]] NodeId node_at(metric::Point p) const noexcept {
    return detail::node_at(space_, positions_, p);
  }

  /// The node whose position is closest to p (ties break to the lower
  /// position). Precondition: size() > 0 and space().contains(p).
  [[nodiscard]] NodeId node_nearest(metric::Point p) const noexcept {
    return detail::node_nearest(space_, positions_, p);
  }

  [[nodiscard]] std::size_t short_degree(NodeId u) const noexcept {
    return short_degree_[u];
  }
  [[nodiscard]] std::size_t out_degree(NodeId u) const noexcept {
    return adjacency_[u].size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

  /// Long-distance out-neighbours of u accumulated so far.
  [[nodiscard]] std::span<const NodeId> long_neighbors(NodeId u) const noexcept {
    return {adjacency_[u].data() + short_degree_[u],
            adjacency_[u].size() - short_degree_[u]};
  }

  /// Reserves capacity for `per_node` links on every node (a build-speed
  /// hint; ℓ + 2 is the natural choice for the paper's overlays).
  void reserve_links(std::size_t per_node);

  /// Appends a short (immediate-neighbour) link u -> v. Short links must be
  /// added before any long link of u. Throws std::logic_error otherwise.
  void add_short_link(NodeId u, NodeId v);

  /// Appends a long-distance link u -> v.
  void add_long_link(NodeId u, NodeId v);

  /// True when u already has any link to v.
  [[nodiscard]] bool has_link(NodeId u, NodeId v) const noexcept;

  /// Wires every node to its nearest occupied neighbour on each side
  /// (wrapping on a ring). Call before any long links are added. 1-D spaces
  /// only (throws on a torus — lattice wiring is build_kleinberg_overlay's).
  void wire_short_links();

  /// Adds the reverse of every long link not already present, making the
  /// whole overlay usable in both directions (see BuildSpec::bidirectional).
  void make_bidirectional();

  /// As make_bidirectional(), fanning the missing-reverse discovery (the
  /// O(links · degree) has_link scans that dominate) across `pool`; the
  /// cheap appends stay serial in node order, so the result is bit-identical
  /// to the serial overload for any thread count.
  void make_bidirectional(util::ThreadPool& pool);

  /// Packs the accumulated links into a frozen OverlayGraph in the layout
  /// `opts` selects. The builder is consumed: left empty (size 0) afterwards.
  [[nodiscard]] OverlayGraph freeze(FreezeOptions opts = {});

  /// As freeze(), fanning the edge packing (per-node slice copies into the
  /// flat CSR array, plus the compact encode passes) across `pool`.
  /// Bit-identical to the serial overload: every slice lands at an offset
  /// fixed by the serial prefix sum.
  [[nodiscard]] OverlayGraph freeze(util::ThreadPool& pool,
                                    FreezeOptions opts = {});

 private:
  void check_node(NodeId u) const;

  [[nodiscard]] OverlayGraph freeze_impl(util::ThreadPool* pool,
                                         FreezeOptions opts);

  metric::Space space_;
  std::vector<metric::Point> positions_;        // empty when dense
  std::vector<std::vector<NodeId>> adjacency_;  // short links first
  std::vector<std::uint32_t> short_degree_;
  std::size_t link_count_ = 0;
};

/// Parameters of an ideal overlay build.
struct BuildSpec {
  /// Number of grid points of the metric space.
  std::uint64_t grid_size = 1024;

  metric::Space1D::Kind topology = metric::Space1D::Kind::kRing;

  /// How long-distance links are generated.
  enum class LinkModel {
    kPowerLaw,    ///< ℓ links, P ∝ d^-exponent (the paper's main model)
    kBaseBFull,   ///< offsets {j·bⁱ} both directions (Theorem 14)
    kBaseBPowers  ///< offsets {bⁱ} both directions (Theorem 16)
  };
  LinkModel link_model = LinkModel::kPowerLaw;

  /// Long links per node for kPowerLaw (drawn independently with
  /// replacement, as in Theorem 13).
  std::size_t long_links = 1;

  /// Power-law exponent r (1 = the paper's distribution; 0 = uniform).
  double exponent = 1.0;

  /// Base b of the deterministic strategies.
  unsigned base = 2;

  /// Binomial node presence (§4.3.4.1): each grid point holds a node
  /// independently with this probability. 1.0 = fully populated.
  double presence = 1.0;

  /// How long links resolve when the sampled grid point has no node
  /// (only relevant when presence < 1).
  enum class SparseLinkMode {
    kRejection,  ///< re-draw until an occupied point is hit: the distribution
                 ///< conditioned on existence (Theorem 17's model)
    kSnap        ///< connect to the node closest to the sampled point
                 ///< (§5's basin-of-attraction behaviour)
  };
  SparseLinkMode sparse_mode = SparseLinkMode::kRejection;

  /// When set, every long link is usable in both directions (the reverse
  /// link is added unless already present). §2 models links as "n knows m's
  /// network address"; once contacted, both endpoints know each other, so
  /// the §6 experiments treat the overlay as bidirectional. The §4 theorems
  /// analyze directed out-links, so the analytical benches keep this off.
  bool bidirectional = false;

  /// Frozen representation of the built graph (see FreezeOptions::layout).
  EdgeLayout layout = EdgeLayout::kStandard;
};

/// Builds a frozen overlay per `spec` through a GraphBuilder. All randomness
/// comes from `rng`: each node samples its long links from a private
/// util::substream, so the result depends only on (spec, rng).
///
/// Throws std::invalid_argument on malformed specs (grid_size < 2,
/// presence outside (0,1], exponent < 0, base < 2).
[[nodiscard]] OverlayGraph build_overlay(const BuildSpec& spec, util::Rng& rng);

/// As above, fanning the long-link sampling loop (the dominant build cost),
/// the make_bidirectional reverse-link discovery and the freeze edge packing
/// across `pool`. Bit-identical to the serial overload for any thread count.
/// Must not be called from inside a task already running on `pool`.
[[nodiscard]] OverlayGraph build_overlay(const BuildSpec& spec, util::Rng& rng,
                                         util::ThreadPool& pool);

/// Builds Kleinberg's small-world torus (§2, [5]) as a frozen CSR overlay on
/// the shared routing hot path: side × side nodes, each wired to its four
/// lattice neighbours (short links; the two distinct ones at side 2, where
/// ±1 coincide) plus `long_links` long-range links drawn with
/// P ∝ d^-exponent under wrapped Manhattan distance. Long links are
/// directed, as in Kleinberg's model; lattice links exist both ways by
/// symmetry. Randomness follows the build_overlay contract: one substream
/// per node, so the graph depends only on (side, long_links, exponent, rng)
/// and serial and pooled builds are bit-identical.
///
/// Preconditions (throws std::invalid_argument): side >= 2, exponent >= 0,
/// long_links == 0 allowed (bare lattice).
[[nodiscard]] OverlayGraph build_kleinberg_overlay(std::uint32_t side,
                                                   std::size_t long_links,
                                                   double exponent, util::Rng& rng);

/// As above, fanning the long-link sampling and freeze packing across `pool`.
[[nodiscard]] OverlayGraph build_kleinberg_overlay(std::uint32_t side,
                                                   std::size_t long_links,
                                                   double exponent, util::Rng& rng,
                                                   util::ThreadPool& pool);

/// Wires only the immediate-neighbour (short) links of g: every node to its
/// nearest neighbour on each side (wrapping on a ring). Legacy incremental
/// path (O(n²) on a frozen graph) — kept for tests and small fixtures;
/// large builds use GraphBuilder::wire_short_links.
void wire_short_links(OverlayGraph& g);

/// Adds the reverse of every long link not already present (in place).
/// Legacy incremental path — see BuildSpec::bidirectional and
/// GraphBuilder::make_bidirectional.
void make_bidirectional(OverlayGraph& g);

}  // namespace p2p::graph
