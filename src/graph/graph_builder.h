// Ideal (one-shot) overlay construction.
//
// Builds the random graph of §4.3 directly: every node links to its nearest
// neighbour on either side plus ℓ long-distance neighbours drawn from the
// configured distribution. This is the "ideal network" of Figure 7; the
// incremental §5 heuristic lives in core/construction.h.
#pragma once

#include <cstdint>

#include "graph/link_distribution.h"
#include "graph/overlay_graph.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::graph {

/// Parameters of an ideal overlay build.
struct BuildSpec {
  /// Number of grid points of the metric space.
  std::uint64_t grid_size = 1024;

  metric::Space1D::Kind topology = metric::Space1D::Kind::kRing;

  /// How long-distance links are generated.
  enum class LinkModel {
    kPowerLaw,    ///< ℓ links, P ∝ d^-exponent (the paper's main model)
    kBaseBFull,   ///< offsets {j·bⁱ} both directions (Theorem 14)
    kBaseBPowers  ///< offsets {bⁱ} both directions (Theorem 16)
  };
  LinkModel link_model = LinkModel::kPowerLaw;

  /// Long links per node for kPowerLaw (drawn independently with
  /// replacement, as in Theorem 13).
  std::size_t long_links = 1;

  /// Power-law exponent r (1 = the paper's distribution; 0 = uniform).
  double exponent = 1.0;

  /// Base b of the deterministic strategies.
  unsigned base = 2;

  /// Binomial node presence (§4.3.4.1): each grid point holds a node
  /// independently with this probability. 1.0 = fully populated.
  double presence = 1.0;

  /// How long links resolve when the sampled grid point has no node
  /// (only relevant when presence < 1).
  enum class SparseLinkMode {
    kRejection,  ///< re-draw until an occupied point is hit: the distribution
                 ///< conditioned on existence (Theorem 17's model)
    kSnap        ///< connect to the node closest to the sampled point
                 ///< (§5's basin-of-attraction behaviour)
  };
  SparseLinkMode sparse_mode = SparseLinkMode::kRejection;

  /// When set, every long link is usable in both directions (the reverse
  /// link is added unless already present). §2 models links as "n knows m's
  /// network address"; once contacted, both endpoints know each other, so
  /// the §6 experiments treat the overlay as bidirectional. The §4 theorems
  /// analyze directed out-links, so the analytical benches keep this off.
  bool bidirectional = false;
};

/// Builds an overlay per `spec`. All randomness comes from `rng`.
///
/// Throws std::invalid_argument on malformed specs (grid_size < 2,
/// presence outside (0,1], exponent < 0, base < 2).
[[nodiscard]] OverlayGraph build_overlay(const BuildSpec& spec, util::Rng& rng);

/// Wires only the immediate-neighbour (short) links of g: every node to its
/// nearest neighbour on each side (wrapping on a ring). Exposed for the
/// incremental construction and for tests.
void wire_short_links(OverlayGraph& g);

/// Adds the reverse of every long link not already present (in place), making
/// the whole overlay usable in both directions. See BuildSpec::bidirectional.
void make_bidirectional(OverlayGraph& g);

}  // namespace p2p::graph
