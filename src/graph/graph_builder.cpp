#include "graph/graph_builder.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/require.h"

namespace p2p::graph {

// ---------------------------------------------------------------------------
// GraphBuilder

GraphBuilder::GraphBuilder(metric::Space space)
    : space_(space),
      adjacency_(space.size()),
      short_degree_(space.size(), 0) {}

GraphBuilder::GraphBuilder(metric::Space space, std::vector<metric::Point> positions)
    : space_(space), positions_(std::move(positions)) {
  util::require(!positions_.empty(), "GraphBuilder: need at least one node");
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    util::require(space_.contains(positions_[i]),
                  "GraphBuilder: position outside the space");
    if (i > 0) {
      util::require(positions_[i - 1] < positions_[i],
                    "GraphBuilder: positions must be strictly increasing");
    }
  }
  adjacency_.resize(positions_.size());
  short_degree_.assign(positions_.size(), 0);
}

void GraphBuilder::check_node(NodeId u) const {
  util::require_in_range(u < adjacency_.size(), "GraphBuilder: node id out of range");
}

void GraphBuilder::reserve_links(std::size_t per_node) {
  for (auto& adj : adjacency_) adj.reserve(per_node);
}

void GraphBuilder::add_short_link(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (short_degree_[u] != adjacency_[u].size()) {
    throw std::logic_error("GraphBuilder: short links must precede long links");
  }
  adjacency_[u].push_back(v);
  ++short_degree_[u];
  ++link_count_;
}

void GraphBuilder::add_long_link(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  adjacency_[u].push_back(v);
  ++link_count_;
}

bool GraphBuilder::has_link(NodeId u, NodeId v) const noexcept {
  const auto& adj = adjacency_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

namespace {

/// Shared short-link wiring over anything with size/space/add_short_link.
/// Node order equals position order, so index neighbours are the nearest
/// occupied grid points on either side — a 1-D notion; the torus wires its
/// lattice in build_kleinberg_overlay instead.
template <typename GraphLike>
void wire_short_links_impl(GraphLike& g) {
  util::require(g.space().one_dimensional(),
                "wire_short_links: side neighbours are only defined on a "
                "one-dimensional space (use build_kleinberg_overlay for the "
                "torus lattice)");
  const std::size_t n = g.size();
  if (n < 2) return;
  const bool ring = g.space().kind() == metric::Space::Kind::kRing;
  for (NodeId u = 0; u < n; ++u) {
    if (u + 1 < n) {
      g.add_short_link(u, u + 1);
    } else if (ring && n > 2) {
      g.add_short_link(u, 0);
    }
    if (u > 0) {
      g.add_short_link(u, u - 1);
    } else if (ring && n > 2) {
      // n == 2 is excluded: the u+1 branch already wired 0 <-> 1 once.
      g.add_short_link(u, static_cast<NodeId>(n - 1));
    }
  }
}

template <typename GraphLike>
void make_bidirectional_impl(GraphLike& g, std::vector<NodeId>& scratch) {
  for (NodeId u = 0; u < g.size(); ++u) {
    // Snapshot u's current long neighbours before mutating anything.
    const auto longs = g.long_neighbors(u);
    scratch.assign(longs.begin(), longs.end());
    for (const NodeId v : scratch) {
      if (!g.has_link(v, u)) g.add_long_link(v, u);
    }
  }
}

}  // namespace

void GraphBuilder::wire_short_links() { wire_short_links_impl(*this); }

void GraphBuilder::make_bidirectional() {
  std::vector<NodeId> scratch;
  make_bidirectional_impl(*this, scratch);
}

void GraphBuilder::make_bidirectional(util::ThreadPool& pool) {
  const std::size_t n = adjacency_.size();
  if (pool.thread_count() <= 1 || n < 1024) {
    make_bidirectional();
    return;
  }
  // Phase 1 (parallel, read-only): for every original long link u -> v,
  // decide whether the reverse v -> u must be added. The serial loop's
  // has_link checks only ever see reverse links whose forward twin already
  // exists (adding v -> u cannot make any later has_link(x, y) flip for a
  // pair the serial loop still tests), so "missing" is decidable against the
  // immutable pre-call graph plus first-occurrence dedup within u's slice —
  // which is what makes this phase safely parallel and the result
  // bit-identical to the serial overload.
  std::vector<std::vector<NodeId>> missing(n);
  pool.parallel_chunks(n, pool.thread_count() * 8,
                       [&](std::size_t lo, std::size_t hi) {
                         for (std::size_t u = lo; u < hi; ++u) {
                           const auto id = static_cast<NodeId>(u);
                           const auto longs = long_neighbors(id);
                           for (std::size_t k = 0; k < longs.size(); ++k) {
                             const NodeId v = longs[k];
                             bool first = true;
                             for (std::size_t j = 0; j < k; ++j) {
                               if (longs[j] == v) {
                                 first = false;
                                 break;
                               }
                             }
                             if (first && !has_link(v, id)) {
                               missing[u].push_back(v);
                             }
                           }
                         }
                       });
  // Phase 2 (serial, cheap appends) in the serial loop's exact order.
  for (std::size_t u = 0; u < n; ++u) {
    for (const NodeId v : missing[u]) add_long_link(v, static_cast<NodeId>(u));
  }
}

OverlayGraph GraphBuilder::freeze(FreezeOptions opts) {
  return freeze_impl(nullptr, opts);
}

OverlayGraph GraphBuilder::freeze(util::ThreadPool& pool, FreezeOptions opts) {
  return freeze_impl(&pool, opts);
}

OverlayGraph GraphBuilder::freeze_impl(util::ThreadPool* pool, FreezeOptions opts) {
  util::require(link_count_ <= std::numeric_limits<std::uint32_t>::max(),
                "GraphBuilder::freeze: edge slot index overflow");
  const std::size_t n = adjacency_.size();
  std::vector<std::uint32_t> slice_sizes(n);
  std::vector<std::uint32_t> offsets(n);
  std::uint32_t offset = 0;
  for (std::size_t u = 0; u < n; ++u) {
    slice_sizes[u] = static_cast<std::uint32_t>(adjacency_[u].size());
    offsets[u] = offset;
    offset += slice_sizes[u];
  }
  // Every slice's destination is fixed by the prefix sum above, so packing
  // is embarrassingly parallel and bit-identical to the serial copy.
  std::vector<NodeId> edges(link_count_);
  const auto pack = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      std::copy(adjacency_[u].begin(), adjacency_[u].end(),
                edges.begin() + offsets[u]);
    }
  };
  if (pool != nullptr && pool->thread_count() > 1 && n >= 1024) {
    pool->parallel_chunks(n, pool->thread_count() * 8, pack);
  } else {
    pack(0, n);
  }
  OverlayGraph g =
      opts.layout == EdgeLayout::kCompact
          ? OverlayGraph::freeze_compact(space_, std::move(positions_),
                                         slice_sizes, short_degree_, edges,
                                         opts.huge_pages, pool)
          : OverlayGraph(space_, std::move(positions_), std::move(slice_sizes),
                         std::move(short_degree_), std::move(edges));
  // Leave the builder empty rather than half-moved-from.
  adjacency_.clear();
  positions_.clear();
  short_degree_.clear();
  link_count_ = 0;
  return g;
}

// ---------------------------------------------------------------------------
// Ideal (one-shot) construction

void wire_short_links(OverlayGraph& g) { wire_short_links_impl(g); }

void make_bidirectional(OverlayGraph& g) {
  std::vector<NodeId> scratch;
  make_bidirectional_impl(g, scratch);
}

namespace {

std::vector<metric::Point> draw_present_positions(std::uint64_t grid_size,
                                                  double presence, util::Rng& rng) {
  std::vector<metric::Point> positions;
  positions.reserve(static_cast<std::size_t>(static_cast<double>(grid_size) * presence) + 16);
  // Re-draw until at least two nodes exist; with any sane presence this runs
  // once. (Theorem 17's analysis assumes a non-degenerate network.)
  for (int attempt = 0; attempt < 1024; ++attempt) {
    positions.clear();
    for (std::uint64_t p = 0; p < grid_size; ++p) {
      if (rng.next_bool(presence)) positions.push_back(static_cast<metric::Point>(p));
    }
    if (positions.size() >= 2) return positions;
  }
  util::require(false, "build_overlay: presence too small to populate the grid");
  return positions;  // unreachable
}

/// Samples node u's long-link targets into `out[0..long_links)` using u's
/// private rng. Read-only on the builder, so any number of nodes can sample
/// concurrently; a slot is kInvalidNode when the draw produced no link.
void sample_power_law_targets(const GraphBuilder& g, const BuildSpec& spec,
                              const PowerLawLinkSampler& sampler, NodeId u,
                              util::Rng& rng, NodeId* out) {
  const bool sparse = spec.presence < 1.0;
  constexpr int kMaxRejections = 256;
  const metric::Point src = g.position(u);
  for (std::size_t k = 0; k < spec.long_links; ++k) {
    NodeId target = kInvalidNode;
    if (!sparse) {
      target = g.node_at(sampler.sample_target(rng, src));
    } else if (spec.sparse_mode == BuildSpec::SparseLinkMode::kRejection) {
      for (int tries = 0; tries < kMaxRejections; ++tries) {
        const NodeId candidate = g.node_at(sampler.sample_target(rng, src));
        if (candidate != kInvalidNode) {
          target = candidate;
          break;
        }
      }
      if (target == kInvalidNode) {
        // Degenerate sparsity: fall back to snapping so the build finishes.
        target = g.node_nearest(sampler.sample_target(rng, src));
      }
    } else {
      target = g.node_nearest(sampler.sample_target(rng, src));
    }
    out[k] = target == u ? kInvalidNode : target;
  }
}

/// The long-link sampling loop, optionally fanned over `pool`. Each node
/// samples from util::substream(base, u), so the built graph depends only on
/// (spec, rng) — serial and parallel builds of any thread count are
/// bit-identical. Sampling (the expensive part: one binary search per draw,
/// plus rejection in sparse mode) runs in parallel into a flat target table;
/// the cheap appends stay serial because GraphBuilder mutation is not
/// thread-safe.
void add_power_law_links(GraphBuilder& g, const BuildSpec& spec, util::Rng& rng,
                         util::ThreadPool* pool) {
  if (spec.long_links == 0) return;  // before the base draw: no links, no rng use
  const PowerLawLinkSampler sampler(g.space(), spec.exponent);
  const std::uint64_t base = rng();
  const std::size_t n = g.size();
  std::vector<NodeId> targets(n * spec.long_links);
  const auto sample_node = [&](NodeId u, util::Rng& node_rng) {
    sample_power_law_targets(g, spec, sampler, u, node_rng,
                             targets.data() + static_cast<std::size_t>(u) * spec.long_links);
  };
  if (pool != nullptr && pool->thread_count() > 1 && n >= 1024) {
    pool->parallel_chunks(n, pool->thread_count() * 8,
                          [&](std::size_t lo, std::size_t hi) {
                            for (std::size_t u = lo; u < hi; ++u) {
                              util::Rng node_rng = util::substream(base, u);
                              sample_node(static_cast<NodeId>(u), node_rng);
                            }
                          });
  } else {
    for (NodeId u = 0; u < n; ++u) {
      util::Rng node_rng = util::substream(base, u);
      sample_node(u, node_rng);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const NodeId* row = targets.data() + static_cast<std::size_t>(u) * spec.long_links;
    for (std::size_t k = 0; k < spec.long_links; ++k) {
      if (row[k] != kInvalidNode) g.add_long_link(u, row[k]);
    }
  }
}

void add_base_b_links(GraphBuilder& g, const BuildSpec& spec) {
  const std::uint64_t n = g.space().size();
  const auto offsets = spec.link_model == BuildSpec::LinkModel::kBaseBFull
                           ? base_b_full_offsets(n, spec.base)
                           : base_b_power_offsets(n, spec.base);
  const bool sparse = spec.presence < 1.0;
  for (NodeId u = 0; u < g.size(); ++u) {
    const metric::Point src = g.position(u);
    for (const std::uint64_t off : offsets) {
      for (const int sign : {+1, -1}) {
        const auto target_pos =
            g.space().offset(src, sign * static_cast<std::int64_t>(off));
        if (!target_pos) continue;  // fell off the line
        NodeId target = g.node_at(*target_pos);
        if (target == kInvalidNode && sparse &&
            spec.sparse_mode == BuildSpec::SparseLinkMode::kSnap) {
          target = g.node_nearest(*target_pos);
        }
        if (target != kInvalidNode && target != u && !g.has_link(u, target)) {
          g.add_long_link(u, target);
        }
      }
    }
  }
}

/// Shared implementation of the two public overloads (pool may be null).
OverlayGraph build_overlay_impl(const BuildSpec& spec, util::Rng& rng,
                                util::ThreadPool* pool) {
  util::require(spec.grid_size >= 2, "build_overlay: grid_size must be >= 2");
  util::require(spec.presence > 0.0 && spec.presence <= 1.0,
                "build_overlay: presence must be in (0,1]");
  util::require(spec.exponent >= 0.0, "build_overlay: exponent must be >= 0");
  util::require(spec.base >= 2 || spec.link_model == BuildSpec::LinkModel::kPowerLaw,
                "build_overlay: base must be >= 2");

  const metric::Space1D space = spec.topology == metric::Space1D::Kind::kRing
                                    ? metric::Space1D::ring(spec.grid_size)
                                    : metric::Space1D::line(spec.grid_size);

  GraphBuilder builder =
      spec.presence < 1.0
          ? GraphBuilder(space,
                         draw_present_positions(spec.grid_size, spec.presence, rng))
          : GraphBuilder(space);
  builder.reserve_links(spec.long_links + 2);
  builder.wire_short_links();
  if (spec.link_model == BuildSpec::LinkModel::kPowerLaw) {
    add_power_law_links(builder, spec, rng, pool);
  } else {
    add_base_b_links(builder, spec);
  }
  if (spec.bidirectional) {
    if (pool != nullptr) {
      builder.make_bidirectional(*pool);
    } else {
      builder.make_bidirectional();
    }
  }
  const FreezeOptions freeze_opts{.layout = spec.layout};
  return pool != nullptr ? builder.freeze(*pool, freeze_opts)
                         : builder.freeze(freeze_opts);
}

}  // namespace

OverlayGraph build_overlay(const BuildSpec& spec, util::Rng& rng) {
  return build_overlay_impl(spec, rng, nullptr);
}

OverlayGraph build_overlay(const BuildSpec& spec, util::Rng& rng,
                           util::ThreadPool& pool) {
  return build_overlay_impl(spec, rng, &pool);
}

namespace {

OverlayGraph build_kleinberg_overlay_impl(std::uint32_t side,
                                          std::size_t long_links, double exponent,
                                          util::Rng& rng, util::ThreadPool* pool) {
  util::require(side >= 2, "build_kleinberg_overlay: side must be >= 2");
  util::require(exponent >= 0.0, "build_kleinberg_overlay: exponent must be >= 0");
  const metric::Torus2D torus(side);
  util::require(torus.size() <= std::numeric_limits<NodeId>::max(),
                "build_kleinberg_overlay: torus larger than the node id space");

  GraphBuilder builder{metric::Space(torus)};
  builder.reserve_links(long_links + 4);
  // Four lattice neighbours per node (wrapping, so every node has all four).
  // These are the "short" links a failure model keeps alive, exactly like
  // the ±1 links of the 1-D overlays. At side 2 the ±1 neighbours coincide,
  // so only the two distinct ones are wired: duplicate slots would make
  // slot-keyed link kills silent no-ops (the twin slot stays alive).
  const bool tiny = side == 2;
  for (NodeId u = 0; u < builder.size(); ++u) {
    const auto [row, col] = torus.coords(static_cast<metric::Point>(u));
    const auto r = static_cast<std::int64_t>(row);
    const auto c = static_cast<std::int64_t>(col);
    builder.add_short_link(u, static_cast<NodeId>(torus.at(r + 1, c)));
    if (!tiny) builder.add_short_link(u, static_cast<NodeId>(torus.at(r - 1, c)));
    builder.add_short_link(u, static_cast<NodeId>(torus.at(r, c + 1)));
    if (!tiny) builder.add_short_link(u, static_cast<NodeId>(torus.at(r, c - 1)));
  }
  // Long-range links through the same unified sampler + per-node-substream
  // machinery as the 1-D builds; only the long-link fields of the spec are
  // read (the torus is always fully populated).
  BuildSpec link_spec;
  link_spec.long_links = long_links;
  link_spec.exponent = exponent;
  add_power_law_links(builder, link_spec, rng, pool);
  return pool != nullptr ? builder.freeze(*pool) : builder.freeze();
}

}  // namespace

OverlayGraph build_kleinberg_overlay(std::uint32_t side, std::size_t long_links,
                                     double exponent, util::Rng& rng) {
  return build_kleinberg_overlay_impl(side, long_links, exponent, rng, nullptr);
}

OverlayGraph build_kleinberg_overlay(std::uint32_t side, std::size_t long_links,
                                     double exponent, util::Rng& rng,
                                     util::ThreadPool& pool) {
  return build_kleinberg_overlay_impl(side, long_links, exponent, rng, &pool);
}

}  // namespace p2p::graph
