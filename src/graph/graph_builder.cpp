#include "graph/graph_builder.h"

#include <algorithm>

#include "util/require.h"

namespace p2p::graph {

void wire_short_links(OverlayGraph& g) {
  const std::size_t n = g.size();
  if (n < 2) return;
  const bool ring = g.space().kind() == metric::Space1D::Kind::kRing;
  for (NodeId u = 0; u < n; ++u) {
    // Node order equals position order, so index neighbours are the nearest
    // occupied grid points on either side.
    if (u + 1 < n) {
      g.add_short_link(u, u + 1);
    } else if (ring && n > 2) {
      g.add_short_link(u, 0);
    }
    if (u > 0) {
      g.add_short_link(u, u - 1);
    } else if (ring && n > 2) {
      // n == 2 is excluded: the u+1 branch already wired 0 <-> 1 once.
      g.add_short_link(u, static_cast<NodeId>(n - 1));
    }
  }
}

namespace {

std::vector<metric::Point> draw_present_positions(std::uint64_t grid_size,
                                                  double presence, util::Rng& rng) {
  std::vector<metric::Point> positions;
  positions.reserve(static_cast<std::size_t>(static_cast<double>(grid_size) * presence) + 16);
  // Re-draw until at least two nodes exist; with any sane presence this runs
  // once. (Theorem 17's analysis assumes a non-degenerate network.)
  for (int attempt = 0; attempt < 1024; ++attempt) {
    positions.clear();
    for (std::uint64_t p = 0; p < grid_size; ++p) {
      if (rng.next_bool(presence)) positions.push_back(static_cast<metric::Point>(p));
    }
    if (positions.size() >= 2) return positions;
  }
  util::require(false, "build_overlay: presence too small to populate the grid");
  return positions;  // unreachable
}

void add_power_law_links(OverlayGraph& g, const BuildSpec& spec, util::Rng& rng) {
  const PowerLawLinkSampler sampler(g.space(), spec.exponent);
  const bool sparse = spec.presence < 1.0;
  constexpr int kMaxRejections = 256;
  for (NodeId u = 0; u < g.size(); ++u) {
    const metric::Point src = g.position(u);
    for (std::size_t k = 0; k < spec.long_links; ++k) {
      NodeId target = kInvalidNode;
      if (!sparse) {
        target = g.node_at(sampler.sample_target(rng, src));
      } else if (spec.sparse_mode == BuildSpec::SparseLinkMode::kRejection) {
        for (int tries = 0; tries < kMaxRejections; ++tries) {
          const NodeId candidate = g.node_at(sampler.sample_target(rng, src));
          if (candidate != kInvalidNode) {
            target = candidate;
            break;
          }
        }
        if (target == kInvalidNode) {
          // Degenerate sparsity: fall back to snapping so the build finishes.
          target = g.node_nearest(sampler.sample_target(rng, src));
        }
      } else {
        target = g.node_nearest(sampler.sample_target(rng, src));
      }
      if (target != kInvalidNode && target != u) g.add_long_link(u, target);
    }
  }
}

void add_base_b_links(OverlayGraph& g, const BuildSpec& spec) {
  const std::uint64_t n = g.space().size();
  const auto offsets = spec.link_model == BuildSpec::LinkModel::kBaseBFull
                           ? base_b_full_offsets(n, spec.base)
                           : base_b_power_offsets(n, spec.base);
  const bool sparse = spec.presence < 1.0;
  for (NodeId u = 0; u < g.size(); ++u) {
    const metric::Point src = g.position(u);
    for (const std::uint64_t off : offsets) {
      for (const int sign : {+1, -1}) {
        const auto target_pos =
            g.space().offset(src, sign * static_cast<std::int64_t>(off));
        if (!target_pos) continue;  // fell off the line
        NodeId target = g.node_at(*target_pos);
        if (target == kInvalidNode && sparse &&
            spec.sparse_mode == BuildSpec::SparseLinkMode::kSnap) {
          target = g.node_nearest(*target_pos);
        }
        if (target != kInvalidNode && target != u && !g.has_link(u, target)) {
          g.add_long_link(u, target);
        }
      }
    }
  }
}

}  // namespace

OverlayGraph build_overlay(const BuildSpec& spec, util::Rng& rng) {
  util::require(spec.grid_size >= 2, "build_overlay: grid_size must be >= 2");
  util::require(spec.presence > 0.0 && spec.presence <= 1.0,
                "build_overlay: presence must be in (0,1]");
  util::require(spec.exponent >= 0.0, "build_overlay: exponent must be >= 0");
  util::require(spec.base >= 2 || spec.link_model == BuildSpec::LinkModel::kPowerLaw,
                "build_overlay: base must be >= 2");

  const metric::Space1D space = spec.topology == metric::Space1D::Kind::kRing
                                    ? metric::Space1D::ring(spec.grid_size)
                                    : metric::Space1D::line(spec.grid_size);

  OverlayGraph g = spec.presence < 1.0
                       ? OverlayGraph(space, draw_present_positions(spec.grid_size,
                                                                    spec.presence, rng))
                       : OverlayGraph(space);
  wire_short_links(g);
  if (spec.link_model == BuildSpec::LinkModel::kPowerLaw) {
    add_power_law_links(g, spec, rng);
  } else {
    add_base_b_links(g, spec);
  }
  if (spec.bidirectional) make_bidirectional(g);
  return g;
}

void make_bidirectional(OverlayGraph& g) {
  for (NodeId u = 0; u < g.size(); ++u) {
    // Snapshot u's current long neighbours before mutating anything.
    const auto longs = g.long_neighbors(u);
    const std::vector<NodeId> targets(longs.begin(), longs.end());
    for (const NodeId v : targets) {
      if (!g.has_link(v, u)) g.add_long_link(v, u);
    }
  }
}

}  // namespace p2p::graph
