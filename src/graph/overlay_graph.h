// The virtual overlay network: a directed graph over grid positions of a
// metric space (line, ring, or 2-D torus — see metric/space.h), frozen into
// a flat CSR layout.
//
// Nodes are identified by dense indices (NodeId); node i occupies grid
// position positions()[i]. In the common fully-populated case position ==
// NodeId; under binomial presence (§4.3.4.1) positions form a sparse sorted
// subset of the grid. Each node's adjacency slice stores its *short* links
// (immediate neighbours, always first) followed by its long-distance links —
// the split is what lets failure models keep ±1 links alive (§4.3.3 assumes
// "links to the immediate neighbours are always present").
//
// Storage is compressed sparse row: one flat edge array (edges_) plus
// per-node slot offsets, so neighbours are a contiguous slice and failure
// views key per-link state by a single flat slot number (edge_base(u) + i).
// Because greedy routing is a serial chain of dependent random accesses
// (you cannot load node v's links before choosing v), each node additionally
// owns a 64-byte-aligned header holding its offsets plus an inline replica
// of the first kInlineEdges slice entries; the remainder of the slice is
// replicated in a compact spill array small enough to stay cache-resident.
// The router walks headers (one cache line per hop); everything else reads
// the canonical CSR slice. All mutation paths write through both copies.
//
// Graphs are normally assembled through GraphBuilder (graph_builder.h) and
// frozen once; the frozen form still supports the in-place mutations the
// churn experiments need:
//
//  * replace_long_link — rewires a slot in place, O(1), offsets unchanged;
//  * clear_links       — truncates the node's degree to zero, O(1); the
//    slots stay reserved, so re-adding up to the old degree is also O(1);
//  * add_short_link / add_long_link — kept for incremental (test and
//    small-scale) construction; they reuse reserved slots when available and
//    otherwise fall back to an O(edges) insertion that shifts the flat
//    arrays. Bulk construction should go through GraphBuilder.
//
// Structural growth (an add_* call that cannot reuse a reserved slot) shifts
// every later node's slots, so FailureViews built over the graph must be
// rebuilt afterwards. replace_long_link and clear_links never move slots.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "metric/space.h"

namespace p2p::graph {

/// Dense node index within an OverlayGraph.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

namespace detail {

/// The index whose position equals p exactly, or kInvalidNode. `positions`
/// empty means the dense (position == index) case.
[[nodiscard]] NodeId node_at(const metric::Space& space,
                             std::span<const metric::Point> positions,
                             metric::Point p) noexcept;

/// The index whose position is closest to p (ties break to the lower
/// position). Preconditions: at least one node, space.contains(p).
/// O(log nodes) on a 1-D space (positions are sorted along the metric);
/// O(nodes) on a torus, whose flattened order is not metric order — sparse
/// 2-D overlays are a test-scale configuration, the torus builds dense.
[[nodiscard]] NodeId node_nearest(const metric::Space& space,
                                  std::span<const metric::Point> positions,
                                  metric::Point p) noexcept;

}  // namespace detail

/// Directed overlay graph embedded in a metric::Space, stored as CSR with a
/// cache-line header per node for the routing hot path.
class OverlayGraph {
 public:
  /// Slice-prefix length replicated inside each node's header. With the
  /// paper's lg n long links per node, the prefix covers the two short links
  /// plus most long links of any practical configuration.
  static constexpr std::size_t kInlineEdges = 13;

  /// Per-node header: CSR offsets plus the inline slice prefix. Exactly one
  /// cache line so a routing hop costs one header load for most nodes.
  struct alignas(64) NodeHeader {
    std::uint32_t offset = 0;  ///< flat slot base into edges_
    std::uint32_t tail = 0;    ///< spill base into tail_ (slice entries > kInlineEdges)
    std::uint32_t degree = 0;  ///< live out-degree
    NodeId inline_edges[kInlineEdges] = {};
  };
  static_assert(sizeof(NodeHeader) == 64);

  /// A graph whose node i sits at grid position i (fully populated grid).
  explicit OverlayGraph(metric::Space space);

  /// A graph over a sparse, strictly increasing set of occupied positions.
  /// Preconditions: positions sorted strictly increasing, all within space.
  OverlayGraph(metric::Space space, std::vector<metric::Point> positions);

  [[nodiscard]] const metric::Space& space() const noexcept { return space_; }

  /// Number of nodes (not grid points).
  [[nodiscard]] std::size_t size() const noexcept { return headers_.size() - 1; }

  /// True when node i sits at grid position i (no sparse position table).
  [[nodiscard]] bool dense() const noexcept { return positions_.empty(); }

  /// Grid position of node u. Precondition: u < size().
  [[nodiscard]] metric::Point position(NodeId u) const noexcept {
    return positions_.empty() ? static_cast<metric::Point>(u) : positions_[u];
  }

  /// The node occupying grid position p exactly, or kInvalidNode.
  [[nodiscard]] NodeId node_at(metric::Point p) const noexcept {
    return detail::node_at(space_, positions_, p);
  }

  /// The node whose position is closest to p (ties break to the lower
  /// position). Precondition: size() > 0 and space().contains(p).
  [[nodiscard]] NodeId node_nearest(metric::Point p) const noexcept {
    return detail::node_nearest(space_, positions_, p);
  }

  /// All out-neighbours of u: short links first, then long links. A view of
  /// the canonical CSR slice.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    const NodeHeader& h = headers_[u];
    return {edges_.data() + h.offset, h.degree};
  }

  /// Long-distance out-neighbours of u only.
  [[nodiscard]] std::span<const NodeId> long_neighbors(NodeId u) const noexcept {
    const NodeHeader& h = headers_[u];
    return {edges_.data() + h.offset + short_degree_[u],
            h.degree - short_degree_[u]};
  }

  /// The routing hot-path view of u's links: the header cache line (inline
  /// prefix) plus the spill pointer for entries beyond kInlineEdges.
  /// header(u).inline_edges[i] for i < kInlineEdges and tail(u)[i -
  /// kInlineEdges] otherwise equal neighbors(u)[i].
  [[nodiscard]] const NodeHeader& header(NodeId u) const noexcept {
    return headers_[u];
  }
  [[nodiscard]] const NodeId* tail(const NodeHeader& h) const noexcept {
    return tail_.data() + h.tail;
  }

  /// Prefetches u's header (the single line a routing hop reads).
  void prefetch(NodeId u) const noexcept {
    __builtin_prefetch(&headers_[u]);
  }

  /// Prefetches the spill line of a node whose degree exceeds the inline
  /// prefix. The spill address lives in the header, so this is only
  /// possible once the header is resident — the batch pipeline issues it a
  /// few ticks ahead of the hop, hiding the second dependent load of
  /// high-degree nodes that the in-scan header prefetch cannot cover.
  void prefetch_tail(const NodeHeader& h) const noexcept {
    __builtin_prefetch(tail_.data() + h.tail);
  }

  /// Number of short (immediate-neighbour) links of u.
  [[nodiscard]] std::size_t short_degree(NodeId u) const noexcept {
    return short_degree_[u];
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const noexcept {
    return headers_[u].degree;
  }

  /// Flat slot index of u's first link; link i of u lives in slot
  /// edge_base(u) + i. Failure views use this to key per-link state.
  [[nodiscard]] std::size_t edge_base(NodeId u) const noexcept {
    return headers_[u].offset;
  }

  /// Total number of link slots (live links plus slots reserved by
  /// clear_links truncation). Flat slot indices are < edge_slots().
  [[nodiscard]] std::size_t edge_slots() const noexcept { return edges_.size(); }

  /// Incremented by every slot-moving mutation (an add_* call that could not
  /// reuse a reserved slot and had to shift the flat arrays). FailureViews
  /// record the generation they were built against and refuse to operate —
  /// throw in mutators, assert in debug-build queries — once it moves, so
  /// "rebuild the view after structural growth" is enforced, not advisory.
  /// replace_long_link and clear_links never change the generation.
  [[nodiscard]] std::uint64_t structural_generation() const noexcept {
    return structural_generation_;
  }

  /// Total number of live directed links in the graph.
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

  /// Appends a short (immediate-neighbour) link u -> v. Short links must be
  /// added before any long link of u. Throws std::logic_error otherwise.
  void add_short_link(NodeId u, NodeId v);

  /// Appends a long-distance link u -> v.
  void add_long_link(NodeId u, NodeId v);

  /// Replaces the long link at `long_index` (index into long_neighbors(u))
  /// with a link to v, in place. Precondition: long_index < long degree of u.
  void replace_long_link(NodeId u, std::size_t long_index, NodeId v);

  /// Removes every link of u (short and long) by truncating its degree; the
  /// slots stay reserved for later re-adds.
  void clear_links(NodeId u);

  /// True when u has any link to v.
  [[nodiscard]] bool has_link(NodeId u, NodeId v) const noexcept;

  /// Metric distance between two nodes' positions.
  [[nodiscard]] metric::Distance node_distance(NodeId u, NodeId v) const noexcept {
    return space_.distance(position(u), position(v));
  }

  /// In-degrees of every node (O(links) scan).
  [[nodiscard]] std::vector<std::uint32_t> in_degrees() const;

  /// Lengths of every long-distance link (for Figure 5 style histograms).
  [[nodiscard]] std::vector<metric::Distance> long_link_lengths() const;

 private:
  friend class GraphBuilder;

  /// Frozen-form constructor used by GraphBuilder::freeze. `slice_sizes[u]`
  /// is the degree of node u; `edges` is the concatenated slices.
  OverlayGraph(metric::Space space, std::vector<metric::Point> positions,
               std::vector<std::uint32_t> slice_sizes,
               std::vector<std::uint32_t> short_degree, std::vector<NodeId> edges);

  void check_node(NodeId u) const;

  /// Capacity (reserved slots) of u's slice.
  [[nodiscard]] std::uint32_t slot_capacity(NodeId u) const noexcept {
    return headers_[u + 1].offset - headers_[u].offset;
  }

  /// Writes v into slice position `index` of node u in every replica
  /// (canonical slice, inline prefix, spill tail).
  void write_slice_entry(NodeId u, std::size_t index, NodeId v) noexcept;

  /// Makes room for one more link of u at slice position degree and writes v
  /// there. Reuses a reserved slot when one exists; otherwise inserts into
  /// the flat arrays (O(edges), shifts later nodes' offsets).
  void append_slot(NodeId u, NodeId v);

  metric::Space space_;
  std::vector<metric::Point> positions_;     // empty when dense
  std::vector<NodeHeader> headers_;          // size()+1: last entry is the sentinel
  std::vector<std::uint32_t> short_degree_;  // cold: router never reads it
  std::vector<NodeId> edges_;                // canonical flat slices, shorts first
  std::vector<NodeId> tail_;                 // spill replica of slice entries > prefix
  std::size_t link_count_ = 0;
  std::uint64_t structural_generation_ = 0;  // bumped when slots move
};

}  // namespace p2p::graph
