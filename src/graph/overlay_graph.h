// The virtual overlay network: a directed graph over grid positions of a
// metric space (line, ring, or 2-D torus — see metric/space.h), frozen into
// a flat CSR layout.
//
// Nodes are identified by dense indices (NodeId); node i occupies grid
// position positions()[i]. In the common fully-populated case position ==
// NodeId; under binomial presence (§4.3.4.1) positions form a sparse sorted
// subset of the grid. Each node's adjacency slice stores its *short* links
// (immediate neighbours, always first) followed by its long-distance links —
// the split is what lets failure models keep ±1 links alive (§4.3.3 assumes
// "links to the immediate neighbours are always present").
//
// Two frozen representations share one query surface (EdgeLayout):
//
//  * kStandard — compressed sparse row with a 64-byte header per node
//    (CSR offsets + an inline replica of the first kInlineEdges slice
//    entries) over a canonical flat edge array plus a spill replica. The
//    router walks headers (one cache line per hop); mutation paths write
//    through every replica. Supports in-place churn mutation.
//
//  * kCompact — a memory-lean immutable form for the 1e7–1e8 node scale
//    sweeps: a prefix-free 16-byte header per node (slot base, encoded
//    stream base, degree, short degree) over a single u16 stream of
//    delta-encoded link targets. Most long links are metric-local, so a
//    target v of node u is stored as the zigzag of v - u in one u16 word;
//    targets out of that range cost an escape word plus the absolute id in
//    two more words. Headers and stream live in a util::Arena backed by
//    transparent huge pages. Slot numbering (edge_base(u) + i) is identical
//    to the standard form, so FailureViews and churn deltas key the same;
//    mutators throw std::logic_error.
//
// Neighbour queries return a NeighborRange — a forward range that is a raw
// pointer walk on the standard layout and a decode-as-you-go cursor on the
// compact one; operator[] is O(1) standard, O(i) compact.
//
// Graphs are normally assembled through GraphBuilder (graph_builder.h) and
// frozen once; the standard frozen form still supports the in-place
// mutations the churn experiments need:
//
//  * replace_long_link — rewires a slot in place, O(1), offsets unchanged;
//  * clear_links       — truncates the node's degree to zero, O(1); the
//    slots stay reserved, so re-adding up to the old degree is also O(1);
//  * add_short_link / add_long_link — kept for incremental (test and
//    small-scale) construction; they reuse reserved slots when available and
//    otherwise fall back to an O(edges) insertion that shifts the flat
//    arrays. Bulk construction should go through GraphBuilder.
//
// Structural growth (an add_* call that cannot reuse a reserved slot) shifts
// every later node's slots, so FailureViews built over the graph must be
// rebuilt afterwards. replace_long_link and clear_links never move slots.
#pragma once

#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "metric/space.h"
#include "util/arena.h"

namespace p2p::util {
class ThreadPool;
}  // namespace p2p::util

namespace p2p::graph {

/// Dense node index within an OverlayGraph.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Frozen edge representation (see file comment).
enum class EdgeLayout : std::uint8_t { kStandard, kCompact };

namespace detail {

/// The index whose position equals p exactly, or kInvalidNode. `positions`
/// empty means the dense (position == index) case.
[[nodiscard]] NodeId node_at(const metric::Space& space,
                             std::span<const metric::Point> positions,
                             metric::Point p) noexcept;

/// The index whose position is closest to p (ties break to the lower
/// position). Preconditions: at least one node, space.contains(p).
/// O(log nodes) on a 1-D space (positions are sorted along the metric);
/// O(nodes) on a torus, whose flattened order is not metric order — sparse
/// 2-D overlays are a test-scale configuration, the torus builds dense.
/// The pool overload fans the torus scan; pass nullptr for the serial walk.
[[nodiscard]] NodeId node_nearest(const metric::Space& space,
                                  std::span<const metric::Point> positions,
                                  metric::Point p,
                                  util::ThreadPool* pool = nullptr) noexcept;

/// Escape marker of the compact encoding: the next two words hold the
/// absolute target (lo, hi). Any other word is the zigzag of (target - u).
inline constexpr std::uint16_t kEscapeWord = 0xFFFF;

/// Decodes one compact-stream link target of source node u; advances p past
/// the entry (1 word for an in-range delta, 3 for an escaped absolute).
inline NodeId decode_link(const std::uint16_t*& p, NodeId u) noexcept {
  const std::uint16_t w = *p++;
  if (w != kEscapeWord) {
    // Zigzag decode: 0,1,2,3,... -> 0,-1,1,-2,...
    const std::int32_t d = static_cast<std::int32_t>(w >> 1) ^
                           -static_cast<std::int32_t>(w & 1u);
    return static_cast<NodeId>(static_cast<std::int64_t>(u) + d);
  }
  const std::uint32_t lo = p[0];
  const std::uint32_t hi = p[1];
  p += 2;
  return static_cast<NodeId>(lo | (hi << 16));
}

}  // namespace detail

/// Forward range over a node's out-neighbours. On the standard layout this
/// is a contiguous NodeId slice; on the compact layout each step decodes the
/// next stream entry. operator[] is O(1) standard, O(i) compact — indexed
/// loops over compact graphs should prefer iteration.
class NeighborRange {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using pointer = const NodeId*;
    using reference = NodeId;

    iterator() = default;
    [[nodiscard]] NodeId operator*() const noexcept {
      return raw_ != nullptr ? raw_[i_] : cur_;
    }
    iterator& operator++() noexcept {
      ++i_;
      if (raw_ == nullptr) cur_ = detail::decode_link(enc_, u_);
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator t = *this;
      ++*this;
      return t;
    }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.i_ == b.i_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) noexcept {
      return a.i_ != b.i_;
    }

   private:
    friend class NeighborRange;
    iterator(const NodeId* raw, const std::uint16_t* enc, NodeId u,
             std::size_t i, bool decode_first) noexcept
        : raw_(raw), enc_(enc), u_(u), i_(i) {
      if (raw_ == nullptr && decode_first) cur_ = detail::decode_link(enc_, u_);
    }

    const NodeId* raw_ = nullptr;
    const std::uint16_t* enc_ = nullptr;
    NodeId u_ = 0;
    std::size_t i_ = 0;
    NodeId cur_ = kInvalidNode;
  };

  /// Standard-layout range over a contiguous slice.
  NeighborRange(const NodeId* raw, std::size_t n) noexcept : raw_(raw), n_(n) {}
  /// Compact-layout range decoding `n` entries of node u starting at enc.
  NeighborRange(const std::uint16_t* enc, NodeId u, std::size_t n) noexcept
      : enc_(enc), u_(u), n_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] iterator begin() const noexcept {
    return iterator(raw_, enc_, u_, 0, n_ > 0);
  }
  [[nodiscard]] iterator end() const noexcept {
    return iterator(raw_, enc_, u_, n_, false);
  }
  /// O(1) on the standard layout, O(i) on the compact one.
  [[nodiscard]] NodeId operator[](std::size_t i) const noexcept {
    if (raw_ != nullptr) return raw_[i];
    const std::uint16_t* p = enc_;
    NodeId v = kInvalidNode;
    for (std::size_t k = 0; k <= i; ++k) v = detail::decode_link(p, u_);
    return v;
  }
  [[nodiscard]] NodeId front() const noexcept { return (*this)[0]; }

 private:
  const NodeId* raw_ = nullptr;
  const std::uint16_t* enc_ = nullptr;
  NodeId u_ = 0;
  std::size_t n_ = 0;
};

/// Directed overlay graph embedded in a metric::Space, stored as CSR with a
/// cache-line header per node for the routing hot path (standard layout) or
/// as a delta-encoded stream behind 16-byte headers (compact layout).
class OverlayGraph {
 public:
  /// Slice-prefix length replicated inside each node's standard header. With
  /// the paper's lg n long links per node, the prefix covers the two short
  /// links plus most long links of any practical configuration.
  static constexpr std::size_t kInlineEdges = 13;

  /// Standard per-node header: CSR offsets plus the inline slice prefix.
  /// Exactly one cache line so a routing hop costs one header load for most
  /// nodes.
  struct alignas(64) NodeHeader {
    std::uint32_t offset = 0;  ///< flat slot base into edges_
    std::uint32_t tail = 0;    ///< spill base into tail_ (slice entries > kInlineEdges)
    std::uint32_t degree = 0;  ///< live out-degree
    NodeId inline_edges[kInlineEdges] = {};
  };
  static_assert(sizeof(NodeHeader) == 64);

  /// Compact per-node header: four per cache line. `enc` addresses the
  /// node's stream start in 4-byte (two-u16-word) units — per-node streams
  /// are padded to an even word count — so a u32 field spans the ~5e9-word
  /// streams a 1e8-node overlay needs.
  struct alignas(16) CompactHeader {
    std::uint32_t offset = 0;        ///< flat slot base (same keying as standard)
    std::uint32_t enc = 0;           ///< stream start, in 2-word units
    std::uint32_t degree = 0;        ///< live out-degree
    std::uint16_t short_degree = 0;  ///< immediate-neighbour prefix length
    std::uint16_t reserved = 0;
  };
  static_assert(sizeof(CompactHeader) == 16);

  /// A graph whose node i sits at grid position i (fully populated grid).
  explicit OverlayGraph(metric::Space space);

  /// A graph over a sparse, strictly increasing set of occupied positions.
  /// Preconditions: positions sorted strictly increasing, all within space.
  OverlayGraph(metric::Space space, std::vector<metric::Point> positions);

  OverlayGraph(const OverlayGraph& other);
  OverlayGraph& operator=(const OverlayGraph& other);
  OverlayGraph(OverlayGraph&&) noexcept = default;
  OverlayGraph& operator=(OverlayGraph&&) noexcept = default;
  ~OverlayGraph() = default;

  [[nodiscard]] const metric::Space& space() const noexcept { return space_; }

  /// Number of nodes (not grid points).
  [[nodiscard]] std::size_t size() const noexcept { return node_count_; }

  /// True when node i sits at grid position i (no sparse position table).
  [[nodiscard]] bool dense() const noexcept { return positions_.empty(); }

  /// The frozen edge representation this graph uses.
  [[nodiscard]] EdgeLayout layout() const noexcept { return layout_; }
  [[nodiscard]] bool compact() const noexcept {
    return layout_ == EdgeLayout::kCompact;
  }

  /// Grid position of node u. Precondition: u < size().
  [[nodiscard]] metric::Point position(NodeId u) const noexcept {
    return positions_.empty() ? static_cast<metric::Point>(u) : positions_[u];
  }

  /// The node occupying grid position p exactly, or kInvalidNode.
  [[nodiscard]] NodeId node_at(metric::Point p) const noexcept {
    return detail::node_at(space_, positions_, p);
  }

  /// The node whose position is closest to p (ties break to the lower
  /// position). Precondition: size() > 0 and space().contains(p). The pool
  /// overload fans the torus-sparse O(n) scan across workers.
  [[nodiscard]] NodeId node_nearest(metric::Point p) const noexcept {
    return detail::node_nearest(space_, positions_, p);
  }
  [[nodiscard]] NodeId node_nearest(metric::Point p,
                                    util::ThreadPool& pool) const noexcept {
    return detail::node_nearest(space_, positions_, p, &pool);
  }

  /// All out-neighbours of u: short links first, then long links.
  [[nodiscard]] NeighborRange neighbors(NodeId u) const noexcept {
    if (layout_ == EdgeLayout::kCompact) {
      const CompactHeader& h = cheaders_[u];
      return {enc_stream(h), u, h.degree};
    }
    const NodeHeader& h = headers_[u];
    return {edges_.data() + h.offset, h.degree};
  }

  /// Long-distance out-neighbours of u only.
  [[nodiscard]] NeighborRange long_neighbors(NodeId u) const noexcept {
    if (layout_ == EdgeLayout::kCompact) {
      const CompactHeader& h = cheaders_[u];
      const std::uint16_t* p = enc_stream(h);
      for (std::uint16_t k = 0; k < h.short_degree; ++k) {
        (void)detail::decode_link(p, u);
      }
      return {p, u, h.degree - h.short_degree};
    }
    const NodeHeader& h = headers_[u];
    return {edges_.data() + h.offset + short_degree_[u],
            h.degree - short_degree_[u]};
  }

  /// The standard-layout routing hot-path view of u's links: the header
  /// cache line (inline prefix) plus the spill pointer for entries beyond
  /// kInlineEdges. header(u).inline_edges[i] for i < kInlineEdges and
  /// tail(u)[i - kInlineEdges] otherwise equal neighbors(u)[i]. Standard
  /// layout only — compact routing reads cheader()/enc_stream().
  [[nodiscard]] const NodeHeader& header(NodeId u) const noexcept {
    return headers_[u];
  }
  [[nodiscard]] const NodeId* tail(const NodeHeader& h) const noexcept {
    return tail_.data() + h.tail;
  }

  /// Compact-layout counterparts of header()/tail().
  [[nodiscard]] const CompactHeader& cheader(NodeId u) const noexcept {
    return cheaders_[u];
  }
  [[nodiscard]] const std::uint16_t* enc_stream(const CompactHeader& h) const noexcept {
    return enc_ + (static_cast<std::size_t>(h.enc) * 2);
  }

  /// Decodes all of u's targets into out (compact layout; caller provides
  /// >= out_degree(u) slots). Returns the degree.
  std::size_t decode_links(NodeId u, NodeId* out) const noexcept {
    const CompactHeader& h = cheaders_[u];
    const std::uint16_t* p = enc_stream(h);
    for (std::uint32_t i = 0; i < h.degree; ++i) out[i] = detail::decode_link(p, u);
    return h.degree;
  }

  /// Prefetches u's header (the single line a routing hop reads first).
  void prefetch(NodeId u) const noexcept {
    if (layout_ == EdgeLayout::kCompact) {
      __builtin_prefetch(&cheaders_[u]);
    } else {
      __builtin_prefetch(&headers_[u]);
    }
  }

  /// Prefetches the second dependent line of u's adjacency — the spill line
  /// of a standard node whose degree exceeds the inline prefix, or the
  /// encoded stream of a compact node. The address lives in the header, so
  /// this is only possible once the header is resident — the batch pipeline
  /// issues it a few ticks ahead of the hop.
  void prefetch_spill(NodeId u) const noexcept {
    if (layout_ == EdgeLayout::kCompact) {
      __builtin_prefetch(enc_stream(cheaders_[u]));
    } else {
      const NodeHeader& h = headers_[u];
      if (h.degree > kInlineEdges) __builtin_prefetch(tail_.data() + h.tail);
    }
  }

  /// Standard-only spill prefetch kept for call sites that already hold the
  /// header.
  void prefetch_tail(const NodeHeader& h) const noexcept {
    __builtin_prefetch(tail_.data() + h.tail);
  }

  /// Number of short (immediate-neighbour) links of u.
  [[nodiscard]] std::size_t short_degree(NodeId u) const noexcept {
    return layout_ == EdgeLayout::kCompact ? cheaders_[u].short_degree
                                           : short_degree_[u];
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const noexcept {
    return layout_ == EdgeLayout::kCompact ? cheaders_[u].degree
                                           : headers_[u].degree;
  }

  /// Flat slot index of u's first link; link i of u lives in slot
  /// edge_base(u) + i. Failure views use this to key per-link state; the
  /// numbering is identical across layouts built from the same adjacency.
  [[nodiscard]] std::size_t edge_base(NodeId u) const noexcept {
    return layout_ == EdgeLayout::kCompact ? cheaders_[u].offset
                                           : headers_[u].offset;
  }

  /// Total number of link slots (live links plus slots reserved by
  /// clear_links truncation). Flat slot indices are < edge_slots().
  [[nodiscard]] std::size_t edge_slots() const noexcept {
    return layout_ == EdgeLayout::kCompact ? cheaders_[node_count_].offset
                                           : edges_.size();
  }

  /// Incremented by every slot-moving mutation (an add_* call that could not
  /// reuse a reserved slot and had to shift the flat arrays). FailureViews
  /// record the generation they were built against and refuse to operate —
  /// throw in mutators, assert in debug-build queries — once it moves, so
  /// "rebuild the view after structural growth" is enforced, not advisory.
  /// replace_long_link and clear_links never change the generation.
  [[nodiscard]] std::uint64_t structural_generation() const noexcept {
    return structural_generation_;
  }

  /// Total number of live directed links in the graph.
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

  /// Appends a short (immediate-neighbour) link u -> v. Short links must be
  /// added before any long link of u. Throws std::logic_error otherwise, and
  /// always on a compact graph.
  void add_short_link(NodeId u, NodeId v);

  /// Appends a long-distance link u -> v. Throws on a compact graph.
  void add_long_link(NodeId u, NodeId v);

  /// Replaces the long link at `long_index` (index into long_neighbors(u))
  /// with a link to v, in place. Precondition: long_index < long degree of u.
  /// Throws on a compact graph.
  void replace_long_link(NodeId u, std::size_t long_index, NodeId v);

  /// Removes every link of u (short and long) by truncating its degree; the
  /// slots stay reserved for later re-adds. Throws on a compact graph.
  void clear_links(NodeId u);

  /// True when u has any link to v.
  [[nodiscard]] bool has_link(NodeId u, NodeId v) const noexcept;

  /// Metric distance between two nodes' positions.
  [[nodiscard]] metric::Distance node_distance(NodeId u, NodeId v) const noexcept {
    return space_.distance(position(u), position(v));
  }

  /// In-degrees of every node — O(links) scan; the pool overload fans it.
  [[nodiscard]] std::vector<std::uint32_t> in_degrees() const;
  [[nodiscard]] std::vector<std::uint32_t> in_degrees(util::ThreadPool& pool) const;

  /// Lengths of every long-distance link (for Figure 5 style histograms).
  [[nodiscard]] std::vector<metric::Distance> long_link_lengths() const;

  /// Per-layer accounting of the frozen representation's resident bytes.
  struct MemoryBreakdown {
    std::size_t headers = 0;        ///< NodeHeader / CompactHeader array
    std::size_t edges = 0;          ///< canonical slices / encoded stream
    std::size_t tail = 0;           ///< spill replica (standard only)
    std::size_t short_degrees = 0;  ///< cold sideband (standard only)
    std::size_t positions = 0;      ///< sparse position table
    [[nodiscard]] std::size_t total() const noexcept {
      return headers + edges + tail + short_degrees + positions;
    }
  };
  [[nodiscard]] MemoryBreakdown memory_breakdown() const noexcept;
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return memory_breakdown().total();
  }

  /// What the same adjacency costs in the standard layout (analytic:
  /// 64 B/header + sentinel, the 4 B short-degree sideband, 4 B per edge
  /// slot, and the spill replica of every slice entry beyond the inline
  /// prefix). Equals memory_breakdown() minus `positions` on an actual
  /// standard-layout graph; on a compact graph it is the denominator of the
  /// bytes/node comparison.
  [[nodiscard]] std::size_t standard_layout_bytes() const noexcept;

 private:
  friend class GraphBuilder;

  /// Frozen-form constructor used by GraphBuilder::freeze. `slice_sizes[u]`
  /// is the degree of node u; `edges` is the concatenated slices.
  OverlayGraph(metric::Space space, std::vector<metric::Point> positions,
               std::vector<std::uint32_t> slice_sizes,
               std::vector<std::uint32_t> short_degree, std::vector<NodeId> edges);

  /// Compact frozen-form factory used by GraphBuilder::freeze with
  /// EdgeLayout::kCompact: encodes `edges` into the arena-backed stream.
  /// `pool` (optional) fans the encode passes.
  static OverlayGraph freeze_compact(metric::Space space,
                                     std::vector<metric::Point> positions,
                                     const std::vector<std::uint32_t>& slice_sizes,
                                     const std::vector<std::uint32_t>& short_degree,
                                     const std::vector<NodeId>& edges,
                                     bool huge_pages, util::ThreadPool* pool);

  /// Tag ctor for freeze_compact: space/positions only, edge state unset.
  struct CompactTag {};
  OverlayGraph(metric::Space space, std::vector<metric::Point> positions,
               CompactTag) noexcept;

  void check_node(NodeId u) const;
  void require_mutable() const;

  /// Capacity (reserved slots) of u's slice.
  [[nodiscard]] std::uint32_t slot_capacity(NodeId u) const noexcept {
    return headers_[u + 1].offset - headers_[u].offset;
  }

  /// Writes v into slice position `index` of node u in every replica
  /// (canonical slice, inline prefix, spill tail).
  void write_slice_entry(NodeId u, std::size_t index, NodeId v) noexcept;

  /// Makes room for one more link of u at slice position degree and writes v
  /// there. Reuses a reserved slot when one exists; otherwise inserts into
  /// the flat arrays (O(edges), shifts later nodes' offsets).
  void append_slot(NodeId u, NodeId v);

  metric::Space space_;
  std::vector<metric::Point> positions_;     // empty when dense
  std::size_t node_count_ = 0;
  EdgeLayout layout_ = EdgeLayout::kStandard;

  // Standard layout.
  std::vector<NodeHeader> headers_;          // size()+1: last entry is the sentinel
  std::vector<std::uint32_t> short_degree_;  // cold: router never reads it
  std::vector<NodeId> edges_;                // canonical flat slices, shorts first
  std::vector<NodeId> tail_;                 // spill replica of slice entries > prefix

  // Compact layout (arena-backed; pointers index into arena_ chunks).
  util::Arena arena_{util::Arena::kDefaultChunkBytes};
  const CompactHeader* cheaders_ = nullptr;  // size()+1: sentinel carries ends
  const std::uint16_t* enc_ = nullptr;       // concatenated per-node streams
  std::uint64_t enc_words_ = 0;              // total u16 words incl. padding

  std::size_t link_count_ = 0;
  std::uint64_t structural_generation_ = 0;  // bumped when slots move
};

}  // namespace p2p::graph
