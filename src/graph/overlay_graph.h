// The virtual overlay network: a directed graph over grid positions of a
// one-dimensional metric space.
//
// Nodes are identified by dense indices (NodeId); node i occupies grid
// position positions()[i]. In the common fully-populated case position ==
// NodeId; under binomial presence (§4.3.4.1) positions form a sparse sorted
// subset of the grid. Each node's adjacency list stores its *short* links
// (immediate neighbours, always first) followed by its long-distance links —
// the split is what lets failure models keep ±1 links alive (§4.3.3 assumes
// "links to the immediate neighbours are always present").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "metric/space1d.h"

namespace p2p::graph {

/// Dense node index within an OverlayGraph.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Directed overlay graph embedded in a Space1D.
class OverlayGraph {
 public:
  /// A graph whose node i sits at grid position i (fully populated grid).
  explicit OverlayGraph(metric::Space1D space);

  /// A graph over a sparse, strictly increasing set of occupied positions.
  /// Preconditions: positions sorted strictly increasing, all within space.
  OverlayGraph(metric::Space1D space, std::vector<metric::Point> positions);

  [[nodiscard]] const metric::Space1D& space() const noexcept { return space_; }

  /// Number of nodes (not grid points).
  [[nodiscard]] std::size_t size() const noexcept { return adjacency_.size(); }

  /// Grid position of node u. Precondition: u < size().
  [[nodiscard]] metric::Point position(NodeId u) const noexcept {
    return dense_ ? static_cast<metric::Point>(u) : positions_[u];
  }

  /// The node occupying grid position p exactly, or kInvalidNode.
  [[nodiscard]] NodeId node_at(metric::Point p) const noexcept;

  /// The node whose position is closest to p (ties break to the lower
  /// position). Precondition: size() > 0 and space().contains(p).
  [[nodiscard]] NodeId node_nearest(metric::Point p) const noexcept;

  /// All out-neighbours of u: short links first, then long links.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const noexcept {
    return adjacency_[u];
  }

  /// Long-distance out-neighbours of u only.
  [[nodiscard]] std::span<const NodeId> long_neighbors(NodeId u) const noexcept {
    return std::span<const NodeId>(adjacency_[u]).subspan(short_degree_[u]);
  }

  /// Number of short (immediate-neighbour) links of u.
  [[nodiscard]] std::size_t short_degree(NodeId u) const noexcept {
    return short_degree_[u];
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const noexcept {
    return adjacency_[u].size();
  }

  /// Total number of directed links in the graph.
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }

  /// Appends a short (immediate-neighbour) link u -> v. Short links must be
  /// added before any long link of u. Throws std::logic_error otherwise.
  void add_short_link(NodeId u, NodeId v);

  /// Appends a long-distance link u -> v.
  void add_long_link(NodeId u, NodeId v);

  /// Replaces the long link at `long_index` (index into long_neighbors(u))
  /// with a link to v. Precondition: long_index < long degree of u.
  void replace_long_link(NodeId u, std::size_t long_index, NodeId v);

  /// Removes every link of u (short and long).
  void clear_links(NodeId u);

  /// True when u has any link to v.
  [[nodiscard]] bool has_link(NodeId u, NodeId v) const noexcept;

  /// Metric distance between two nodes' positions.
  [[nodiscard]] metric::Distance node_distance(NodeId u, NodeId v) const noexcept {
    return space_.distance(position(u), position(v));
  }

  /// In-degrees of every node (O(links) scan).
  [[nodiscard]] std::vector<std::uint32_t> in_degrees() const;

  /// Lengths of every long-distance link (for Figure 5 style histograms).
  [[nodiscard]] std::vector<metric::Distance> long_link_lengths() const;

 private:
  void check_node(NodeId u) const;

  metric::Space1D space_;
  bool dense_;
  std::vector<metric::Point> positions_;        // empty when dense_
  std::vector<std::vector<NodeId>> adjacency_;  // short links first
  std::vector<std::uint32_t> short_degree_;
  std::size_t link_count_ = 0;
};

}  // namespace p2p::graph
