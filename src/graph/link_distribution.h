// Long-distance link distributions.
//
// The paper's core construction draws each long-distance neighbour v of u
// with probability proportional to 1/d(u,v) — the inverse power-law
// distribution with exponent 1 (§4.3). PowerLawLinkSampler implements the
// exact distribution P ∝ d(u,v)^-r for any exponent r >= 0 over any
// metric::Space: the line and the ring (r = 1 is the paper's model) and the
// Kleinberg 2-D torus under Manhattan distance (r = 2 is the
// dimension-matched exponent of [5]). One sampler, every topology — the
// cross-topology baselines draw their links from the same machinery.
//
// The deterministic strategies of Theorems 14 and 16 use fixed offset sets
// (digits times powers of a base b); base_b_full_offsets / base_b_power_offsets
// generate those sets.
#pragma once

#include <cstdint>
#include <vector>

#include "metric/space.h"
#include "util/rng.h"

namespace p2p::graph {

/// Exact sampler for P[target = v | source = u] ∝ d(u,v)^-r over a
/// metric::Space.
///
/// Build cost O(diameter), memory O(diameter) shared by all nodes of the
/// space; each draw costs O(log diameter) (inverse-CDF by binary search on a
/// prefix-sum table). On the torus the table weights each radius d by
/// ring_size(d) — the number of points at that distance, position
/// independent by translation invariance — so a draw picks a radius first
/// and then a uniform point at that radius.
class PowerLawLinkSampler {
 public:
  /// Preconditions: space.size() >= 2, exponent >= 0.
  PowerLawLinkSampler(metric::Space space, double exponent);

  /// Draws a target position != source. Precondition: space().contains(source).
  [[nodiscard]] metric::Point sample_target(util::Rng& rng, metric::Point source) const;

  /// Exact probability that `target` is drawn for `source` (for tests).
  [[nodiscard]] double probability(metric::Point source, metric::Point target) const;

  [[nodiscard]] const metric::Space& space() const noexcept { return space_; }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  /// Draws a magnitude in [1, limit] with P(d) ∝ prefix weights (1-D only).
  [[nodiscard]] metric::Distance sample_magnitude(util::Rng& rng,
                                                  metric::Distance limit) const;

  [[nodiscard]] metric::Point sample_torus_target(util::Rng& rng,
                                                  metric::Point source) const;

  metric::Space space_;
  double exponent_;
  // 1-D: prefix_[d] = sum_{i=1..d} i^-r. Torus: prefix_[d] additionally
  // weights each radius by ring_size(i). prefix_[0] = 0 in both.
  std::vector<double> prefix_;
};

/// Offsets {j * b^i : 1 <= j < b, 0 <= i < ceil(log_b n)} truncated to < n —
/// the Theorem 14 deterministic link set (digit elimination in base b).
/// Preconditions: base >= 2, n >= 2.
[[nodiscard]] std::vector<std::uint64_t> base_b_full_offsets(std::uint64_t n, unsigned base);

/// Offsets {b^i : 0 <= i <= floor(log_b n)} truncated to < n — the simplified
/// Theorem 16 link set. Preconditions: base >= 2, n >= 2.
[[nodiscard]] std::vector<std::uint64_t> base_b_power_offsets(std::uint64_t n, unsigned base);

}  // namespace p2p::graph
