// Long-distance link distributions.
//
// The paper's core construction draws each long-distance neighbour v of u
// with probability proportional to 1/d(u,v) — the inverse power-law
// distribution with exponent 1 (§4.3). PowerLawLinkSampler implements the
// exact distribution for any exponent r >= 0 over a Space1D (r = 0 gives
// uniform links; sweeping r reproduces Kleinberg's sensitivity result).
//
// The deterministic strategies of Theorems 14 and 16 use fixed offset sets
// (digits times powers of a base b); base_b_full_offsets / base_b_power_offsets
// generate those sets.
//
// KleinbergGridSampler draws links with P ∝ d^-r under Manhattan distance on
// a 2-D torus for the baseline comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "metric/grid2d.h"
#include "metric/space1d.h"
#include "util/rng.h"

namespace p2p::graph {

/// Exact sampler for P[target = v | source = u] ∝ d(u,v)^-r over a Space1D.
///
/// Build cost O(diameter), memory O(diameter) shared by all nodes of the
/// space; each draw costs O(log diameter) (inverse-CDF by binary search on a
/// prefix-sum table).
class PowerLawLinkSampler {
 public:
  /// Preconditions: space.size() >= 2, exponent >= 0.
  PowerLawLinkSampler(metric::Space1D space, double exponent);

  /// Draws a target position != source. Precondition: space().contains(source).
  [[nodiscard]] metric::Point sample_target(util::Rng& rng, metric::Point source) const;

  /// Exact probability that `target` is drawn for `source` (for tests).
  [[nodiscard]] double probability(metric::Point source, metric::Point target) const;

  [[nodiscard]] const metric::Space1D& space() const noexcept { return space_; }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  /// Draws a magnitude in [1, limit] with P(d) ∝ d^-r via the prefix table.
  [[nodiscard]] metric::Distance sample_magnitude(util::Rng& rng,
                                                  metric::Distance limit) const;

  metric::Space1D space_;
  double exponent_;
  // prefix_[d] = sum_{i=1..d} i^-r; prefix_[0] = 0.
  std::vector<double> prefix_;
};

/// Offsets {j * b^i : 1 <= j < b, 0 <= i < ceil(log_b n)} truncated to < n —
/// the Theorem 14 deterministic link set (digit elimination in base b).
/// Preconditions: base >= 2, n >= 2.
[[nodiscard]] std::vector<std::uint64_t> base_b_full_offsets(std::uint64_t n, unsigned base);

/// Offsets {b^i : 0 <= i <= floor(log_b n)} truncated to < n — the simplified
/// Theorem 16 link set. Preconditions: base >= 2, n >= 2.
[[nodiscard]] std::vector<std::uint64_t> base_b_power_offsets(std::uint64_t n, unsigned base);

/// Exact sampler for P[target = v | source = u] ∝ d(u,v)^-r with Manhattan
/// distance on a 2-D torus (Kleinberg's model; baseline).
class KleinbergGridSampler {
 public:
  /// Preconditions: torus.size() >= 2, exponent >= 0.
  KleinbergGridSampler(metric::Torus2D torus, double exponent);

  /// Draws a target position != source.
  [[nodiscard]] metric::Point sample_target(util::Rng& rng, metric::Point source) const;

  [[nodiscard]] const metric::Torus2D& torus() const noexcept { return torus_; }

 private:
  metric::Torus2D torus_;
  double exponent_;
  std::vector<double> radius_prefix_;  // prefix sums of ring_size(d) * d^-r
};

}  // namespace p2p::graph
