#include "graph/link_distribution.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace p2p::graph {

PowerLawLinkSampler::PowerLawLinkSampler(metric::Space space, double exponent)
    : space_(space), exponent_(exponent) {
  util::require(space_.size() >= 2, "PowerLawLinkSampler: need >= 2 grid points");
  util::require(exponent >= 0.0, "PowerLawLinkSampler: exponent must be >= 0");
  const metric::Distance diam = space_.diameter();
  prefix_.resize(diam + 1);
  prefix_[0] = 0.0;
  if (space_.one_dimensional()) {
    for (metric::Distance d = 1; d <= diam; ++d) {
      prefix_[d] = prefix_[d - 1] + std::pow(static_cast<double>(d), -exponent_);
    }
  } else {
    // Torus: weight each radius by its point count so a radius draw followed
    // by a uniform point at that radius is the exact per-point distribution.
    const metric::Torus2D torus = space_.as_torus();
    for (metric::Distance d = 1; d <= diam; ++d) {
      const double w = static_cast<double>(torus.ring_size(d)) *
                       std::pow(static_cast<double>(d), -exponent_);
      prefix_[d] = prefix_[d - 1] + w;
    }
  }
}

metric::Distance PowerLawLinkSampler::sample_magnitude(util::Rng& rng,
                                                       metric::Distance limit) const {
  // Inverse CDF over weights w(d) = d^-r for d in [1, limit].
  const double u = rng.next_double() * prefix_[limit];
  const auto first = prefix_.begin() + 1;
  const auto last = prefix_.begin() + static_cast<std::ptrdiff_t>(limit) + 1;
  const auto it = std::upper_bound(first, last, u);
  auto d = static_cast<metric::Distance>(it - prefix_.begin());
  return d > limit ? limit : d;
}

metric::Point PowerLawLinkSampler::sample_torus_target(util::Rng& rng,
                                                       metric::Point source) const {
  const metric::Torus2D torus = space_.as_torus();
  // Draw the radius first (P ∝ ring_size(d) * d^-r), then a uniform point at
  // that radius.
  const double u = rng.next_double() * prefix_.back();
  const auto it = std::upper_bound(prefix_.begin() + 1, prefix_.end(), u);
  auto d = static_cast<metric::Distance>(it - prefix_.begin());
  if (d >= prefix_.size()) d = prefix_.size() - 1;

  const auto s = static_cast<std::int64_t>(torus.side());
  const std::uint64_t half = static_cast<std::uint64_t>(s) / 2;
  // Count of offsets at wrapped axis-distance `x` within one period.
  const auto axis_count = [&](std::uint64_t x) -> std::uint64_t {
    if (x == 0) return 1;
    if (x < half) return 2;
    if (x == half) return (s % 2 == 0) ? 1 : 2;
    return 0;
  };
  const std::uint64_t max_axis = half;  // floor(s/2) for either parity
  // Choose the row component rd of the Manhattan distance with weight
  // axis_count(rd) * axis_count(d - rd).
  double total = 0.0;
  const std::uint64_t rd_max = std::min<std::uint64_t>(d, max_axis);
  for (std::uint64_t rd = 0; rd <= rd_max; ++rd) {
    total += static_cast<double>(axis_count(rd) * axis_count(d - rd));
  }
  double pick = rng.next_double() * total;
  std::uint64_t rd = 0;
  for (std::uint64_t r = 0; r <= rd_max; ++r) {
    const double w = static_cast<double>(axis_count(r) * axis_count(d - r));
    if (pick < w) {
      rd = r;
      break;
    }
    pick -= w;
    rd = r;  // fall back to the last valid radius on FP underflow
  }
  const std::uint64_t cd = d - rd;
  const auto signed_offset = [&](std::uint64_t dist) -> std::int64_t {
    const std::uint64_t options = axis_count(dist);
    if (options == 1) {
      return dist == 0 ? 0 : static_cast<std::int64_t>(dist);
    }
    return rng.next_bool(0.5) ? static_cast<std::int64_t>(dist)
                              : -static_cast<std::int64_t>(dist);
  };
  const auto [row, col] = torus.coords(source);
  return torus.at(static_cast<std::int64_t>(row) + signed_offset(rd),
                  static_cast<std::int64_t>(col) + signed_offset(cd));
}

metric::Point PowerLawLinkSampler::sample_target(util::Rng& rng,
                                                 metric::Point source) const {
  util::require(space_.contains(source), "sample_target: source outside space");
  if (space_.kind() == metric::Space::Kind::kTorus2D) {
    return sample_torus_target(rng, source);
  }
  if (space_.kind() == metric::Space::Kind::kLine) {
    const auto left = static_cast<metric::Distance>(source);
    const auto right = space_.size() - 1 - static_cast<metric::Distance>(source);
    const double mass_left = prefix_[left];
    const double mass_right = prefix_[right];
    const bool go_left = rng.next_double() * (mass_left + mass_right) < mass_left;
    const metric::Distance limit = go_left ? left : right;
    const metric::Distance d = sample_magnitude(rng, limit);
    return go_left ? source - static_cast<metric::Point>(d)
                   : source + static_cast<metric::Point>(d);
  }
  // Ring: every magnitude 1..floor(n/2) exists on both sides, except that for
  // even n the antipodal magnitude n/2 names a single node. Sampling by
  // magnitude with doubled weights and halving the antipodal weight keeps the
  // per-node distribution exact.
  const std::uint64_t n = space_.size();
  const metric::Distance half = n / 2;
  const bool even = (n % 2 == 0);
  // Total mass = 2 * prefix[half] minus the double-counted antipode.
  const double antipode_w =
      even ? std::pow(static_cast<double>(half), -exponent_) : 0.0;
  const double total = 2.0 * prefix_[half] - antipode_w;
  const double u = rng.next_double() * total;
  metric::Distance d;
  bool clockwise;
  if (u < prefix_[half]) {
    // Clockwise side carries full weight for each magnitude.
    const double v = u;
    const auto it = std::upper_bound(prefix_.begin() + 1,
                                     prefix_.begin() + static_cast<std::ptrdiff_t>(half) + 1, v);
    d = static_cast<metric::Distance>(it - prefix_.begin());
    if (d > half) d = half;
    clockwise = true;
  } else {
    // Counter-clockwise side, excluding the antipode when n is even.
    const metric::Distance limit = even ? half - 1 : half;
    const double v = u - prefix_[half];
    const auto it = std::upper_bound(prefix_.begin() + 1,
                                     prefix_.begin() + static_cast<std::ptrdiff_t>(limit) + 1, v);
    d = static_cast<metric::Distance>(it - prefix_.begin());
    if (d > limit) d = limit;
    clockwise = false;
  }
  const auto delta = clockwise ? static_cast<std::int64_t>(d) : -static_cast<std::int64_t>(d);
  return *space_.offset(source, delta);
}

double PowerLawLinkSampler::probability(metric::Point source, metric::Point target) const {
  util::require(space_.contains(source) && space_.contains(target),
                "probability: point outside space");
  if (source == target) return 0.0;
  const double w = std::pow(static_cast<double>(space_.distance(source, target)),
                            -exponent_);
  if (space_.kind() == metric::Space::Kind::kTorus2D) {
    // prefix_.back() is sum_d ring_size(d) d^-r — the per-point normalizer,
    // identical for every source by translation invariance.
    return w / prefix_.back();
  }
  if (space_.kind() == metric::Space::Kind::kLine) {
    const auto left = static_cast<metric::Distance>(source);
    const auto right = space_.size() - 1 - static_cast<metric::Distance>(source);
    return w / (prefix_[left] + prefix_[right]);
  }
  const std::uint64_t n = space_.size();
  const metric::Distance half = n / 2;
  const double antipode_w =
      (n % 2 == 0) ? std::pow(static_cast<double>(half), -exponent_) : 0.0;
  return w / (2.0 * prefix_[half] - antipode_w);
}

std::vector<std::uint64_t> base_b_full_offsets(std::uint64_t n, unsigned base) {
  util::require(base >= 2, "base_b_full_offsets: base must be >= 2");
  util::require(n >= 2, "base_b_full_offsets: n must be >= 2");
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t power = 1; power < n; power *= base) {
    for (std::uint64_t digit = 1; digit < base; ++digit) {
      const std::uint64_t off = digit * power;
      if (off < n) offsets.push_back(off);
    }
    if (power > n / base) break;  // next multiplication would overflow past n
  }
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

std::vector<std::uint64_t> base_b_power_offsets(std::uint64_t n, unsigned base) {
  util::require(base >= 2, "base_b_power_offsets: base must be >= 2");
  util::require(n >= 2, "base_b_power_offsets: n must be >= 2");
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t power = 1; power < n; power *= base) {
    offsets.push_back(power);
    if (power > n / base) break;
  }
  return offsets;
}

}  // namespace p2p::graph
