#include "graph/overlay_graph.h"

#include <algorithm>
#include <stdexcept>

#include "util/require.h"

namespace p2p::graph {

OverlayGraph::OverlayGraph(metric::Space1D space)
    : space_(space),
      dense_(true),
      adjacency_(space.size()),
      short_degree_(space.size(), 0) {}

OverlayGraph::OverlayGraph(metric::Space1D space, std::vector<metric::Point> positions)
    : space_(space), dense_(false), positions_(std::move(positions)) {
  util::require(!positions_.empty(), "OverlayGraph: need at least one node");
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    util::require(space_.contains(positions_[i]),
                  "OverlayGraph: position outside the space");
    if (i > 0) {
      util::require(positions_[i - 1] < positions_[i],
                    "OverlayGraph: positions must be strictly increasing");
    }
  }
  adjacency_.resize(positions_.size());
  short_degree_.assign(positions_.size(), 0);
}

NodeId OverlayGraph::node_at(metric::Point p) const noexcept {
  if (dense_) {
    return space_.contains(p) ? static_cast<NodeId>(p) : kInvalidNode;
  }
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), p);
  if (it == positions_.end() || *it != p) return kInvalidNode;
  return static_cast<NodeId>(it - positions_.begin());
}

NodeId OverlayGraph::node_nearest(metric::Point p) const noexcept {
  if (dense_) {
    return space_.contains(p) ? static_cast<NodeId>(p) : kInvalidNode;
  }
  if (positions_.empty()) return kInvalidNode;
  const auto it = std::lower_bound(positions_.begin(), positions_.end(), p);
  // Candidate indices around the insertion point; on a ring also the two ends
  // (wraparound neighbours).
  NodeId best = kInvalidNode;
  metric::Distance best_d = 0;
  const auto consider = [&](std::size_t idx) {
    const auto id = static_cast<NodeId>(idx);
    const metric::Distance d = space_.distance(positions_[idx], p);
    if (best == kInvalidNode || d < best_d ||
        (d == best_d && positions_[idx] < positions_[best])) {
      best = id;
      best_d = d;
    }
  };
  if (it != positions_.end()) consider(static_cast<std::size_t>(it - positions_.begin()));
  if (it != positions_.begin())
    consider(static_cast<std::size_t>(it - positions_.begin()) - 1);
  if (space_.kind() == metric::Space1D::Kind::kRing) {
    consider(0);
    consider(positions_.size() - 1);
  }
  return best;
}

void OverlayGraph::check_node(NodeId u) const {
  util::require_in_range(u < adjacency_.size(), "OverlayGraph: node id out of range");
}

void OverlayGraph::add_short_link(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (short_degree_[u] != adjacency_[u].size()) {
    throw std::logic_error("OverlayGraph: short links must precede long links");
  }
  adjacency_[u].push_back(v);
  ++short_degree_[u];
  ++link_count_;
}

void OverlayGraph::add_long_link(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  adjacency_[u].push_back(v);
  ++link_count_;
}

void OverlayGraph::replace_long_link(NodeId u, std::size_t long_index, NodeId v) {
  check_node(u);
  check_node(v);
  const std::size_t idx = short_degree_[u] + long_index;
  util::require_in_range(idx < adjacency_[u].size(),
                         "OverlayGraph::replace_long_link: index out of range");
  adjacency_[u][idx] = v;
}

void OverlayGraph::clear_links(NodeId u) {
  check_node(u);
  link_count_ -= adjacency_[u].size();
  adjacency_[u].clear();
  short_degree_[u] = 0;
}

bool OverlayGraph::has_link(NodeId u, NodeId v) const noexcept {
  const auto& adj = adjacency_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<std::uint32_t> OverlayGraph::in_degrees() const {
  std::vector<std::uint32_t> degrees(size(), 0);
  for (const auto& adj : adjacency_) {
    for (NodeId v : adj) ++degrees[v];
  }
  return degrees;
}

std::vector<metric::Distance> OverlayGraph::long_link_lengths() const {
  std::vector<metric::Distance> lengths;
  lengths.reserve(link_count_);
  for (NodeId u = 0; u < size(); ++u) {
    for (NodeId v : long_neighbors(u)) {
      lengths.push_back(node_distance(u, v));
    }
  }
  return lengths;
}

}  // namespace p2p::graph
