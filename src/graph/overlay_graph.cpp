#include "graph/overlay_graph.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/require.h"

namespace p2p::graph {

namespace detail {

NodeId node_at(const metric::Space& space,
               std::span<const metric::Point> positions, metric::Point p) noexcept {
  if (positions.empty()) {
    return space.contains(p) ? static_cast<NodeId>(p) : kInvalidNode;
  }
  const auto it = std::lower_bound(positions.begin(), positions.end(), p);
  if (it == positions.end() || *it != p) return kInvalidNode;
  return static_cast<NodeId>(it - positions.begin());
}

NodeId node_nearest(const metric::Space& space,
                    std::span<const metric::Point> positions,
                    metric::Point p) noexcept {
  if (positions.empty()) {
    return space.contains(p) ? static_cast<NodeId>(p) : kInvalidNode;
  }
  NodeId best = kInvalidNode;
  metric::Distance best_d = 0;
  const auto consider = [&](std::size_t idx) {
    const auto id = static_cast<NodeId>(idx);
    const metric::Distance d = space.distance(positions[idx], p);
    if (best == kInvalidNode || d < best_d ||
        (d == best_d && positions[idx] < positions[best])) {
      best = id;
      best_d = d;
    }
  };
  if (!space.one_dimensional()) {
    // Flattened row-major order is not metric order on a torus, so the
    // sorted-positions bisection below does not apply; scan. Sparse 2-D
    // overlays only occur at test scale — the torus builds fully populated.
    for (std::size_t idx = 0; idx < positions.size(); ++idx) consider(idx);
    return best;
  }
  const auto it = std::lower_bound(positions.begin(), positions.end(), p);
  // Candidate indices around the insertion point; on a ring also the two ends
  // (wraparound neighbours).
  if (it != positions.end()) consider(static_cast<std::size_t>(it - positions.begin()));
  if (it != positions.begin())
    consider(static_cast<std::size_t>(it - positions.begin()) - 1);
  if (space.kind() == metric::Space::Kind::kRing) {
    consider(0);
    consider(positions.size() - 1);
  }
  return best;
}

}  // namespace detail

OverlayGraph::OverlayGraph(metric::Space space)
    : space_(space),
      headers_(space.size() + 1),
      short_degree_(space.size(), 0) {}

OverlayGraph::OverlayGraph(metric::Space space, std::vector<metric::Point> positions)
    : space_(space), positions_(std::move(positions)) {
  util::require(!positions_.empty(), "OverlayGraph: need at least one node");
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    util::require(space_.contains(positions_[i]),
                  "OverlayGraph: position outside the space");
    if (i > 0) {
      util::require(positions_[i - 1] < positions_[i],
                    "OverlayGraph: positions must be strictly increasing");
    }
  }
  headers_.resize(positions_.size() + 1);
  short_degree_.assign(positions_.size(), 0);
}

OverlayGraph::OverlayGraph(metric::Space space, std::vector<metric::Point> positions,
                           std::vector<std::uint32_t> slice_sizes,
                           std::vector<std::uint32_t> short_degree,
                           std::vector<NodeId> edges)
    : space_(space),
      positions_(std::move(positions)),
      short_degree_(std::move(short_degree)),
      edges_(std::move(edges)),
      link_count_(edges_.size()) {
  const std::size_t n = slice_sizes.size();
  headers_.resize(n + 1);
  std::uint32_t offset = 0;
  std::uint32_t tail = 0;
  for (std::size_t u = 0; u < n; ++u) {
    NodeHeader& h = headers_[u];
    const std::uint32_t degree = slice_sizes[u];
    h.offset = offset;
    h.tail = tail;
    h.degree = degree;
    const std::uint32_t inl =
        degree < kInlineEdges ? degree : static_cast<std::uint32_t>(kInlineEdges);
    for (std::uint32_t i = 0; i < inl; ++i) h.inline_edges[i] = edges_[offset + i];
    tail += degree - inl;
    offset += degree;
  }
  headers_[n].offset = offset;
  headers_[n].tail = tail;
  tail_.resize(tail);
  for (std::size_t u = 0; u < n; ++u) {
    const NodeHeader& h = headers_[u];
    for (std::uint32_t i = kInlineEdges; i < h.degree; ++i) {
      tail_[h.tail + i - kInlineEdges] = edges_[h.offset + i];
    }
  }
}

void OverlayGraph::check_node(NodeId u) const {
  util::require_in_range(u < size(), "OverlayGraph: node id out of range");
}

void OverlayGraph::write_slice_entry(NodeId u, std::size_t index, NodeId v) noexcept {
  NodeHeader& h = headers_[u];
  edges_[h.offset + index] = v;
  if (index < kInlineEdges) {
    h.inline_edges[index] = v;
  } else {
    tail_[h.tail + index - kInlineEdges] = v;
  }
}

void OverlayGraph::append_slot(NodeId u, NodeId v) {
  NodeHeader& h = headers_[u];
  if (h.degree < slot_capacity(u)) {
    // Reuse a slot reserved by an earlier clear_links; the tail replica slot
    // exists whenever the capacity extends past the inline prefix.
    write_slice_entry(u, h.degree, v);
  } else {
    util::require(edges_.size() < std::numeric_limits<std::uint32_t>::max(),
                  "OverlayGraph: edge slot index overflow");
    ++structural_generation_;  // every later node's slots are about to move
    const std::size_t slot = h.offset + h.degree;
    edges_.insert(edges_.begin() + static_cast<std::ptrdiff_t>(slot), v);
    if (h.degree >= kInlineEdges) {
      const std::size_t tail_slot = h.tail + h.degree - kInlineEdges;
      tail_.insert(tail_.begin() + static_cast<std::ptrdiff_t>(tail_slot), v);
      for (std::size_t w = u + 1; w < headers_.size(); ++w) {
        ++headers_[w].offset;
        ++headers_[w].tail;
      }
    } else {
      h.inline_edges[h.degree] = v;
      for (std::size_t w = u + 1; w < headers_.size(); ++w) ++headers_[w].offset;
    }
  }
  ++h.degree;
  ++link_count_;
}

void OverlayGraph::add_short_link(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (short_degree_[u] != headers_[u].degree) {
    throw std::logic_error("OverlayGraph: short links must precede long links");
  }
  append_slot(u, v);
  ++short_degree_[u];
}

void OverlayGraph::add_long_link(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  append_slot(u, v);
}

void OverlayGraph::replace_long_link(NodeId u, std::size_t long_index, NodeId v) {
  check_node(u);
  check_node(v);
  const std::size_t idx = short_degree_[u] + long_index;
  util::require_in_range(idx < headers_[u].degree,
                         "OverlayGraph::replace_long_link: index out of range");
  write_slice_entry(u, idx, v);
}

void OverlayGraph::clear_links(NodeId u) {
  check_node(u);
  link_count_ -= headers_[u].degree;
  headers_[u].degree = 0;
  short_degree_[u] = 0;
}

bool OverlayGraph::has_link(NodeId u, NodeId v) const noexcept {
  const auto adj = neighbors(u);
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<std::uint32_t> OverlayGraph::in_degrees() const {
  std::vector<std::uint32_t> degrees(size(), 0);
  for (NodeId u = 0; u < size(); ++u) {
    for (const NodeId v : neighbors(u)) ++degrees[v];
  }
  return degrees;
}

std::vector<metric::Distance> OverlayGraph::long_link_lengths() const {
  std::vector<metric::Distance> lengths;
  lengths.reserve(link_count_);
  for (NodeId u = 0; u < size(); ++u) {
    for (NodeId v : long_neighbors(u)) {
      lengths.push_back(node_distance(u, v));
    }
  }
  return lengths;
}

}  // namespace p2p::graph
