#include "graph/overlay_graph.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "util/require.h"
#include "util/thread_pool.h"

namespace p2p::graph {

namespace detail {

NodeId node_at(const metric::Space& space,
               std::span<const metric::Point> positions, metric::Point p) noexcept {
  if (positions.empty()) {
    return space.contains(p) ? static_cast<NodeId>(p) : kInvalidNode;
  }
  const auto it = std::lower_bound(positions.begin(), positions.end(), p);
  if (it == positions.end() || *it != p) return kInvalidNode;
  return static_cast<NodeId>(it - positions.begin());
}

NodeId node_nearest(const metric::Space& space,
                    std::span<const metric::Point> positions, metric::Point p,
                    util::ThreadPool* pool) noexcept {
  if (positions.empty()) {
    return space.contains(p) ? static_cast<NodeId>(p) : kInvalidNode;
  }
  NodeId best = kInvalidNode;
  metric::Distance best_d = 0;
  const auto consider = [&](std::size_t idx) {
    const auto id = static_cast<NodeId>(idx);
    const metric::Distance d = space.distance(positions[idx], p);
    if (best == kInvalidNode || d < best_d ||
        (d == best_d && positions[idx] < positions[best])) {
      best = id;
      best_d = d;
    }
  };
  if (!space.one_dimensional()) {
    // Flattened row-major order is not metric order on a torus, so the
    // sorted-positions bisection below does not apply; scan. The pool fans
    // the scan with a chunk-deterministic reduction (ties break to the lower
    // position exactly as the serial walk does — positions are strictly
    // increasing, so lower index == lower position).
    if (pool != nullptr && positions.size() >= 4096) {
      struct Best {
        NodeId id = kInvalidNode;
        metric::Distance d = 0;
      };
      const Best top = pool->parallel_reduce(
          positions.size(), pool->thread_count() * 4, Best{},
          [&](std::size_t lo, std::size_t hi) {
            Best b;
            for (std::size_t idx = lo; idx < hi; ++idx) {
              const metric::Distance d = space.distance(positions[idx], p);
              if (b.id == kInvalidNode || d < b.d) {
                b.id = static_cast<NodeId>(idx);
                b.d = d;
              }
            }
            return b;
          },
          [](Best acc, Best part) {
            if (part.id == kInvalidNode) return acc;
            if (acc.id == kInvalidNode || part.d < acc.d) return part;
            return acc;  // equal distance: earlier chunk == lower position
          });
      return top.id;
    }
    for (std::size_t idx = 0; idx < positions.size(); ++idx) consider(idx);
    return best;
  }
  const auto it = std::lower_bound(positions.begin(), positions.end(), p);
  // Candidate indices around the insertion point; on a ring also the two ends
  // (wraparound neighbours).
  if (it != positions.end()) consider(static_cast<std::size_t>(it - positions.begin()));
  if (it != positions.begin())
    consider(static_cast<std::size_t>(it - positions.begin()) - 1);
  if (space.kind() == metric::Space::Kind::kRing) {
    consider(0);
    consider(positions.size() - 1);
  }
  return best;
}

}  // namespace detail

namespace {

/// Zigzag map: 0,-1,1,-2,... -> 0,1,2,3,...
inline std::uint64_t zigzag64(std::int64_t d) noexcept {
  return (static_cast<std::uint64_t>(d) << 1) ^ static_cast<std::uint64_t>(d >> 63);
}

/// u16 words the compact encoding of link u -> v occupies.
inline std::size_t encoded_words(NodeId u, NodeId v) noexcept {
  return zigzag64(static_cast<std::int64_t>(v) - static_cast<std::int64_t>(u)) <
                 detail::kEscapeWord
             ? 1
             : 3;
}

/// Appends the encoding of u -> v at p; returns the advanced cursor.
inline std::uint16_t* encode_link(std::uint16_t* p, NodeId u, NodeId v) noexcept {
  const std::uint64_t zz =
      zigzag64(static_cast<std::int64_t>(v) - static_cast<std::int64_t>(u));
  if (zz < detail::kEscapeWord) {
    *p++ = static_cast<std::uint16_t>(zz);
    return p;
  }
  *p++ = detail::kEscapeWord;
  *p++ = static_cast<std::uint16_t>(v & 0xFFFFu);
  *p++ = static_cast<std::uint16_t>(v >> 16);
  return p;
}

}  // namespace

OverlayGraph::OverlayGraph(metric::Space space)
    : space_(space),
      node_count_(space.size()),
      headers_(space.size() + 1),
      short_degree_(space.size(), 0) {}

OverlayGraph::OverlayGraph(metric::Space space, std::vector<metric::Point> positions)
    : space_(space), positions_(std::move(positions)) {
  util::require(!positions_.empty(), "OverlayGraph: need at least one node");
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    util::require(space_.contains(positions_[i]),
                  "OverlayGraph: position outside the space");
    if (i > 0) {
      util::require(positions_[i - 1] < positions_[i],
                    "OverlayGraph: positions must be strictly increasing");
    }
  }
  node_count_ = positions_.size();
  headers_.resize(positions_.size() + 1);
  short_degree_.assign(positions_.size(), 0);
}

OverlayGraph::OverlayGraph(metric::Space space, std::vector<metric::Point> positions,
                           std::vector<std::uint32_t> slice_sizes,
                           std::vector<std::uint32_t> short_degree,
                           std::vector<NodeId> edges)
    : space_(space),
      positions_(std::move(positions)),
      short_degree_(std::move(short_degree)),
      edges_(std::move(edges)),
      link_count_(edges_.size()) {
  const std::size_t n = slice_sizes.size();
  node_count_ = n;
  headers_.resize(n + 1);
  std::uint32_t offset = 0;
  std::uint32_t tail = 0;
  for (std::size_t u = 0; u < n; ++u) {
    NodeHeader& h = headers_[u];
    const std::uint32_t degree = slice_sizes[u];
    h.offset = offset;
    h.tail = tail;
    h.degree = degree;
    const std::uint32_t inl =
        degree < kInlineEdges ? degree : static_cast<std::uint32_t>(kInlineEdges);
    for (std::uint32_t i = 0; i < inl; ++i) h.inline_edges[i] = edges_[offset + i];
    tail += degree - inl;
    offset += degree;
  }
  headers_[n].offset = offset;
  headers_[n].tail = tail;
  tail_.resize(tail);
  for (std::size_t u = 0; u < n; ++u) {
    const NodeHeader& h = headers_[u];
    for (std::uint32_t i = kInlineEdges; i < h.degree; ++i) {
      tail_[h.tail + i - kInlineEdges] = edges_[h.offset + i];
    }
  }
}

OverlayGraph::OverlayGraph(metric::Space space, std::vector<metric::Point> positions,
                           CompactTag) noexcept
    : space_(space),
      positions_(std::move(positions)),
      layout_(EdgeLayout::kCompact) {}

OverlayGraph::OverlayGraph(const OverlayGraph& other)
    : space_(other.space_),
      positions_(other.positions_),
      node_count_(other.node_count_),
      layout_(other.layout_),
      headers_(other.headers_),
      short_degree_(other.short_degree_),
      edges_(other.edges_),
      tail_(other.tail_),
      link_count_(other.link_count_),
      structural_generation_(other.structural_generation_) {
  if (other.layout_ == EdgeLayout::kCompact) {
    auto* ch = arena_.allocate_array<CompactHeader>(node_count_ + 1);
    std::copy_n(other.cheaders_, node_count_ + 1, ch);
    auto* stream = arena_.allocate_array<std::uint16_t>(other.enc_words_);
    std::copy_n(other.enc_, other.enc_words_, stream);
    cheaders_ = ch;
    enc_ = stream;
    enc_words_ = other.enc_words_;
  }
}

OverlayGraph& OverlayGraph::operator=(const OverlayGraph& other) {
  if (this != &other) *this = OverlayGraph(other);
  return *this;
}

OverlayGraph OverlayGraph::freeze_compact(
    metric::Space space, std::vector<metric::Point> positions,
    const std::vector<std::uint32_t>& slice_sizes,
    const std::vector<std::uint32_t>& short_degree,
    const std::vector<NodeId>& edges, bool huge_pages, util::ThreadPool* pool) {
  const std::size_t n = slice_sizes.size();
  util::require(edges.size() <= std::numeric_limits<std::uint32_t>::max(),
                "freeze_compact: slot index overflow");
  OverlayGraph g(space, std::move(positions), CompactTag{});
  g.node_count_ = n;
  g.arena_ = util::Arena(util::Arena::kDefaultChunkBytes, huge_pages);
  g.link_count_ = edges.size();

  const auto fan = [&](std::size_t jobs, auto&& body) {
    if (pool != nullptr && jobs >= 1024) {
      pool->parallel_chunks(jobs, pool->thread_count() * 4, body);
    } else {
      body(0, jobs);
    }
  };

  // Slot bases (shared keying with the standard layout).
  std::vector<std::uint64_t> slot_off(n + 1);
  slot_off[0] = 0;
  for (std::size_t u = 0; u < n; ++u) slot_off[u + 1] = slot_off[u] + slice_sizes[u];
  util::require(slot_off[n] == edges.size(),
                "freeze_compact: slice sizes disagree with the edge array");

  // Pass 1: per-node encoded length, rounded up to a whole 2-word unit so
  // the u32 `enc` header field addresses streams past 2^32 words.
  std::vector<std::uint32_t> unit_len(n);
  fan(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      std::size_t words = 0;
      const std::size_t base = slot_off[u];
      for (std::size_t i = 0; i < slice_sizes[u]; ++i) {
        words += encoded_words(static_cast<NodeId>(u), edges[base + i]);
      }
      unit_len[u] = static_cast<std::uint32_t>((words + 1) / 2);
    }
  });

  std::vector<std::uint64_t> enc_unit_off(n + 1);
  enc_unit_off[0] = 0;
  for (std::size_t u = 0; u < n; ++u) enc_unit_off[u + 1] = enc_unit_off[u] + unit_len[u];
  util::require(enc_unit_off[n] <= std::numeric_limits<std::uint32_t>::max(),
                "freeze_compact: encoded stream exceeds the addressable range");
  const std::uint64_t total_words = enc_unit_off[n] * 2;

  auto* ch = g.arena_.allocate_array<CompactHeader>(n + 1);
  auto* stream = g.arena_.allocate_array<std::uint16_t>(
      static_cast<std::size_t>(total_words));

  // Pass 2: headers + encoding (parallel: workers first-touch their span of
  // the arena pages, which matters once shards pin their build pools).
  fan(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      CompactHeader& h = ch[u];
      h.offset = static_cast<std::uint32_t>(slot_off[u]);
      h.enc = static_cast<std::uint32_t>(enc_unit_off[u]);
      h.degree = slice_sizes[u];
      h.short_degree = static_cast<std::uint16_t>(short_degree[u]);
      h.reserved = 0;
      std::uint16_t* p = stream + enc_unit_off[u] * 2;
      std::uint16_t* const end = stream + enc_unit_off[u + 1] * 2;
      const std::size_t base = slot_off[u];
      for (std::size_t i = 0; i < slice_sizes[u]; ++i) {
        p = encode_link(p, static_cast<NodeId>(u), edges[base + i]);
      }
      if (p != end) *p = 0;  // even-unit padding word
    }
  });
  ch[n] = CompactHeader{static_cast<std::uint32_t>(slot_off[n]),
                        static_cast<std::uint32_t>(enc_unit_off[n]), 0, 0, 0};

  g.cheaders_ = ch;
  g.enc_ = stream;
  g.enc_words_ = total_words;
  return g;
}

void OverlayGraph::check_node(NodeId u) const {
  util::require_in_range(u < size(), "OverlayGraph: node id out of range");
}

void OverlayGraph::require_mutable() const {
  if (layout_ == EdgeLayout::kCompact) {
    throw std::logic_error(
        "OverlayGraph: the compact layout is immutable (build standard for "
        "churn mutation)");
  }
}

void OverlayGraph::write_slice_entry(NodeId u, std::size_t index, NodeId v) noexcept {
  NodeHeader& h = headers_[u];
  edges_[h.offset + index] = v;
  if (index < kInlineEdges) {
    h.inline_edges[index] = v;
  } else {
    tail_[h.tail + index - kInlineEdges] = v;
  }
}

void OverlayGraph::append_slot(NodeId u, NodeId v) {
  NodeHeader& h = headers_[u];
  if (h.degree < slot_capacity(u)) {
    // Reuse a slot reserved by an earlier clear_links; the tail replica slot
    // exists whenever the capacity extends past the inline prefix.
    write_slice_entry(u, h.degree, v);
  } else {
    util::require(edges_.size() < std::numeric_limits<std::uint32_t>::max(),
                  "OverlayGraph: edge slot index overflow");
    ++structural_generation_;  // every later node's slots are about to move
    const std::size_t slot = h.offset + h.degree;
    edges_.insert(edges_.begin() + static_cast<std::ptrdiff_t>(slot), v);
    if (h.degree >= kInlineEdges) {
      const std::size_t tail_slot = h.tail + h.degree - kInlineEdges;
      tail_.insert(tail_.begin() + static_cast<std::ptrdiff_t>(tail_slot), v);
      for (std::size_t w = u + 1; w < headers_.size(); ++w) {
        ++headers_[w].offset;
        ++headers_[w].tail;
      }
    } else {
      h.inline_edges[h.degree] = v;
      for (std::size_t w = u + 1; w < headers_.size(); ++w) ++headers_[w].offset;
    }
  }
  ++h.degree;
  ++link_count_;
}

void OverlayGraph::add_short_link(NodeId u, NodeId v) {
  require_mutable();
  check_node(u);
  check_node(v);
  if (short_degree_[u] != headers_[u].degree) {
    throw std::logic_error("OverlayGraph: short links must precede long links");
  }
  append_slot(u, v);
  ++short_degree_[u];
}

void OverlayGraph::add_long_link(NodeId u, NodeId v) {
  require_mutable();
  check_node(u);
  check_node(v);
  append_slot(u, v);
}

void OverlayGraph::replace_long_link(NodeId u, std::size_t long_index, NodeId v) {
  require_mutable();
  check_node(u);
  check_node(v);
  const std::size_t idx = short_degree_[u] + long_index;
  util::require_in_range(idx < headers_[u].degree,
                         "OverlayGraph::replace_long_link: index out of range");
  write_slice_entry(u, idx, v);
}

void OverlayGraph::clear_links(NodeId u) {
  require_mutable();
  check_node(u);
  link_count_ -= headers_[u].degree;
  headers_[u].degree = 0;
  short_degree_[u] = 0;
}

bool OverlayGraph::has_link(NodeId u, NodeId v) const noexcept {
  const auto adj = neighbors(u);
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<std::uint32_t> OverlayGraph::in_degrees() const {
  std::vector<std::uint32_t> degrees(size(), 0);
  for (NodeId u = 0; u < size(); ++u) {
    for (const NodeId v : neighbors(u)) ++degrees[v];
  }
  return degrees;
}

std::vector<std::uint32_t> OverlayGraph::in_degrees(util::ThreadPool& pool) const {
  std::vector<std::uint32_t> degrees(size(), 0);
  if (size() == 0) return degrees;
  // One shared output array with relaxed atomic bumps: in-degree targets are
  // near-uniform, so contention is negligible and no per-chunk partial
  // arrays (4n bytes each — prohibitive at 1e8) are needed.
  pool.parallel_chunks(
      size(), pool.thread_count() * 4, [&](std::size_t lo, std::size_t hi) {
        for (NodeId u = static_cast<NodeId>(lo); u < hi; ++u) {
          for (const NodeId v : neighbors(u)) {
            std::atomic_ref<std::uint32_t>(degrees[v])
                .fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
  return degrees;
}

std::vector<metric::Distance> OverlayGraph::long_link_lengths() const {
  std::vector<metric::Distance> lengths;
  lengths.reserve(link_count_);
  for (NodeId u = 0; u < size(); ++u) {
    for (NodeId v : long_neighbors(u)) {
      lengths.push_back(node_distance(u, v));
    }
  }
  return lengths;
}

OverlayGraph::MemoryBreakdown OverlayGraph::memory_breakdown() const noexcept {
  MemoryBreakdown m;
  m.positions = positions_.size() * sizeof(metric::Point);
  if (layout_ == EdgeLayout::kCompact) {
    m.headers = (node_count_ + 1) * sizeof(CompactHeader);
    m.edges = static_cast<std::size_t>(enc_words_) * sizeof(std::uint16_t);
  } else {
    m.headers = headers_.size() * sizeof(NodeHeader);
    m.edges = edges_.size() * sizeof(NodeId);
    m.tail = tail_.size() * sizeof(NodeId);
    m.short_degrees = short_degree_.size() * sizeof(std::uint32_t);
  }
  return m;
}

std::size_t OverlayGraph::standard_layout_bytes() const noexcept {
  const std::size_t n = node_count_;
  std::size_t spill = 0;
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t deg = out_degree(u);
    if (deg > kInlineEdges) spill += deg - kInlineEdges;
  }
  return (n + 1) * sizeof(NodeHeader) + n * sizeof(std::uint32_t) +
         edge_slots() * sizeof(NodeId) + spill * sizeof(NodeId);
}

}  // namespace p2p::graph
