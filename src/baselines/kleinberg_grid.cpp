#include "baselines/kleinberg_grid.h"

#include <utility>

#include "graph/link_distribution.h"
#include "util/require.h"

namespace p2p::baselines {

KleinbergGrid::KleinbergGrid(std::uint32_t side, std::size_t long_links,
                             double exponent, util::Rng& rng)
    : torus_(side) {
  util::require(side >= 2, "KleinbergGrid: side must be >= 2");
  const graph::PowerLawLinkSampler sampler(metric::Space(torus_), exponent);
  long_links_.resize(size());
  for (std::size_t u = 0; u < size(); ++u) {
    long_links_[u].reserve(long_links);
    for (std::size_t k = 0; k < long_links; ++k) {
      long_links_[u].push_back(
          sampler.sample_target(rng, static_cast<metric::Point>(u)));
    }
  }
}

KleinbergGrid::KleinbergGrid(std::uint32_t side,
                             std::vector<std::vector<metric::Point>> long_links)
    : torus_(side), long_links_(std::move(long_links)) {
  util::require(side >= 2, "KleinbergGrid: side must be >= 2");
  util::require(long_links_.size() == size(),
                "KleinbergGrid: need one long-link set per torus point");
  for (const auto& links : long_links_) {
    for (const metric::Point v : links) {
      util::require(torus_.contains(v), "KleinbergGrid: link outside the torus");
    }
  }
}

KleinbergGrid::Result KleinbergGrid::route(metric::Point src, metric::Point dst,
                                           const std::vector<std::uint8_t>* dead,
                                           std::size_t ttl) const {
  util::require(torus_.contains(src) && torus_.contains(dst),
                "KleinbergGrid::route: point outside the torus");
  const auto alive = [&](metric::Point v) {
    return dead == nullptr || (*dead)[static_cast<std::size_t>(v)] == 0;
  };
  if (ttl == 0) ttl = static_cast<std::size_t>(4) * torus_.side() + 64;

  Result result;
  metric::Point current = src;
  while (ttl-- > 0) {
    if (current == dst) {
      result.ok = true;
      return result;
    }
    const metric::Distance here = torus_.distance(current, dst);
    metric::Point best = -1;
    metric::Distance best_d = here;
    const auto consider = [&](metric::Point v) {
      if (v == current || !alive(v)) return;
      const metric::Distance d = torus_.distance(v, dst);
      if (d < best_d || (d == best_d && best >= 0 && v < best)) {
        best = v;
        best_d = d;
      }
    };
    const auto [row, col] = torus_.coords(current);
    const auto r = static_cast<std::int64_t>(row);
    const auto c = static_cast<std::int64_t>(col);
    consider(torus_.at(r + 1, c));
    consider(torus_.at(r - 1, c));
    consider(torus_.at(r, c + 1));
    consider(torus_.at(r, c - 1));
    for (const metric::Point v : long_links_[static_cast<std::size_t>(current)]) {
      consider(v);
    }
    if (best < 0) return result;  // stuck
    current = best;
    ++result.hops;
  }
  return result;  // ttl exhausted
}

}  // namespace p2p::baselines
