#include "baselines/flood.h"

#include <utility>
#include <vector>

#include "util/require.h"

namespace p2p::baselines {

FloodResult flood_search(const graph::OverlayGraph& g,
                         const failure::FailureView& view, graph::NodeId src,
                         graph::NodeId target, std::size_t ttl) {
  util::require_in_range(src < g.size() && target < g.size(),
                         "flood_search: node out of range");
  FloodResult result;
  if (!view.node_alive(src)) return result;

  std::vector<std::uint8_t> seen(g.size(), 0);
  std::vector<graph::NodeId> frontier{src};
  std::vector<graph::NodeId> next;  // reused across depths: swap, not realloc
  seen[src] = 1;
  result.nodes_touched = 1;
  if (src == target) {
    result.found = true;
    return result;
  }

  for (std::size_t depth = 1; depth <= ttl && !frontier.empty(); ++depth) {
    next.clear();
    for (const graph::NodeId u : frontier) {
      const auto neigh = g.neighbors(u);
      const std::size_t base = g.edge_base(u);
      for (std::size_t i = 0; i < neigh.size(); ++i) {
        if (!view.link_alive_at(base + i)) continue;
        ++result.messages;  // the query is transmitted regardless
        const graph::NodeId v = neigh[i];
        if (!view.node_alive(v) || seen[v]) continue;
        seen[v] = 1;
        ++result.nodes_touched;
        if (v == target) {
          result.found = true;
          result.depth = depth;
          return result;
        }
        next.push_back(v);
      }
    }
    std::swap(frontier, next);
  }
  return result;
}

}  // namespace p2p::baselines
