#include "baselines/chord.h"

#include <algorithm>

#include "util/require.h"

namespace p2p::baselines {

ChordNetwork::ChordNetwork(unsigned m, std::vector<std::uint64_t> ids)
    : m_(m), ring_size_(1ULL << m), ids_(std::move(ids)) {
  util::require(m >= 1 && m <= 63, "ChordNetwork: m must be in [1, 63]");
  util::require(!ids_.empty(), "ChordNetwork: need at least one node");
  util::require(std::is_sorted(ids_.begin(), ids_.end()),
                "ChordNetwork: ids must be sorted");
  util::require(std::adjacent_find(ids_.begin(), ids_.end()) == ids_.end(),
                "ChordNetwork: ids must be unique");
  util::require(ids_.back() < ring_size_, "ChordNetwork: id exceeds the ring");

  fingers_.resize(ids_.size() * m_);
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    for (unsigned k = 0; k < m_; ++k) {
      const std::uint64_t start = (ids_[i] + (1ULL << k)) & (ring_size_ - 1);
      fingers_[i * m_ + k] = static_cast<std::uint32_t>(successor_index(start));
    }
  }
}

ChordNetwork ChordNetwork::random(unsigned m, std::size_t n, util::Rng& rng) {
  util::require(m >= 1 && m <= 63, "ChordNetwork::random: m must be in [1, 63]");
  util::require(n >= 1 && n <= (1ULL << m), "ChordNetwork::random: too many nodes");
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    ids.push_back(rng.next_below(1ULL << m));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  return ChordNetwork(m, std::move(ids));
}

std::size_t ChordNetwork::successor_index(std::uint64_t id) const noexcept {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end()) return 0;  // wrap to the smallest id
  return static_cast<std::size_t>(it - ids_.begin());
}

bool ChordNetwork::in_clockwise(std::uint64_t x, std::uint64_t a,
                                std::uint64_t b) const noexcept {
  // x ∈ (a, b] walking clockwise (increasing ids, wrapping).
  if (a == b) return false;  // empty interval
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

ChordNetwork::Result ChordNetwork::route(std::size_t src_index,
                                         std::uint64_t target_id,
                                         const std::vector<std::uint8_t>* dead) const {
  util::require_in_range(src_index < ids_.size(), "route: src out of range");
  util::require(target_id < ring_size_, "route: target id exceeds the ring");

  const std::size_t owner = successor_index(target_id);
  const auto alive = [&](std::size_t idx) {
    return dead == nullptr || (*dead)[idx] == 0;
  };

  Result result;
  std::size_t current = src_index;
  // Any successful Chord route takes <= m hops; a generous budget guards
  // against pathological failure patterns.
  std::size_t budget = static_cast<std::size_t>(m_) * 4 + 16;
  while (budget-- > 0) {
    if (current == owner) {
      result.ok = true;
      return result;
    }
    // Farthest live finger that does not overshoot the target: finger id in
    // (current, target]. Scan from the longest finger down.
    const std::uint64_t cur_id = ids_[current];
    const auto fingers = fingers_of(current);
    std::size_t next = static_cast<std::size_t>(-1);
    for (unsigned k = m_; k-- > 0;) {
      const std::size_t f = fingers[k];
      if (f == current) continue;
      if (!in_clockwise(ids_[f], cur_id, target_id)) continue;
      if (!alive(f)) continue;
      next = f;
      break;
    }
    if (next == static_cast<std::size_t>(-1)) {
      // No finger lands in (current, target]: current is the predecessor of
      // the target, so its immediate successor *is* the owner.
      const std::size_t succ = fingers[0];
      if (succ == current || !alive(succ)) {
        return result;  // stuck: the final hop is dead
      }
      next = succ;
    }
    current = next;
    ++result.hops;
  }
  return result;  // budget exhausted (counts as failure)
}

}  // namespace p2p::baselines
