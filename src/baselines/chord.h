// Chord baseline (§3).
//
// "Chord maps nodes to identities of m bits placed around a modulo 2^m
// identifier circle. ... the i-th entry stores the key of the first node
// succeeding it by at least 2^{i-1} on the identifier circle. Routing is done
// greedily to the farthest possible node in the routing table" — implemented
// here with full finger tables and clockwise greedy routing, plus optional
// dead-node skipping so it can run under the same failure sweeps as the
// paper's overlay.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace p2p::baselines {

/// A static Chord ring with complete finger tables.
class ChordNetwork {
 public:
  /// Nodes at the given identifiers on a 2^m ring.
  /// Preconditions: 1 <= m <= 63, ids non-empty, sorted, unique, < 2^m.
  ChordNetwork(unsigned m, std::vector<std::uint64_t> ids);

  /// n nodes at distinct uniformly random identifiers.
  [[nodiscard]] static ChordNetwork random(unsigned m, std::size_t n, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] unsigned bits() const noexcept { return m_; }
  [[nodiscard]] std::uint64_t id_of(std::size_t index) const { return ids_.at(index); }

  /// Index of the first node whose id is >= `id` (mod 2^m) — the node that
  /// owns identifier `id`.
  [[nodiscard]] std::size_t successor_index(std::uint64_t id) const noexcept;

  /// Finger table of a node: entry i is the index of successor(id + 2^i).
  /// Tables are stored as one flat array with stride m (CSR-style), so the
  /// returned span views contiguous memory.
  [[nodiscard]] std::span<const std::uint32_t> fingers_of(std::size_t index) const {
    return {fingers_.data() + index * m_, m_};
  }

  struct Result {
    bool ok = false;
    std::size_t hops = 0;
  };

  /// Routes from the node at `src_index` to the owner of `target_id`.
  /// `dead`, when given, flags failed nodes (by index); routing skips dead
  /// fingers and fails when no live finger makes progress.
  [[nodiscard]] Result route(std::size_t src_index, std::uint64_t target_id,
                             const std::vector<std::uint8_t>* dead = nullptr) const;

 private:
  /// True when id x lies in the clockwise-open interval (a, b] on the ring.
  [[nodiscard]] bool in_clockwise(std::uint64_t x, std::uint64_t a,
                                  std::uint64_t b) const noexcept;

  unsigned m_;
  std::uint64_t ring_size_;
  std::vector<std::uint64_t> ids_;      // sorted
  std::vector<std::uint32_t> fingers_;  // flat, stride m_: node i at [i*m_, (i+1)*m_)
};

}  // namespace p2p::baselines
