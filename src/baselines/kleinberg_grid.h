// Kleinberg small-world grid baseline (§2, [5]) — reference implementation.
//
// Nodes at every point of a 2-D torus, each connected to its four lattice
// neighbours plus q long-range links drawn with P ∝ d^-r (Manhattan
// distance). Greedy routing forwards to the neighbour closest to the
// target. Sweeping r reproduces Kleinberg's classic result that r = 2 (the
// grid dimension) is the unique efficient exponent — the paper's motivation
// for using exponent 1 on a 1-D space.
//
// Since the metric layer grew the torus (metric/space.h), the production
// path for this topology is graph::build_kleinberg_overlay: a frozen CSR
// overlay routed through the shared core::Router / route_batch hot path,
// with FailureView / churn support for free. This class survives as the
// independent reference the CSR path is pinned against —
// tests/torus_overlay_test.cpp checks hop-for-hop equivalence on identical
// link sets — and is not used by any bench or example.
#pragma once

#include <cstdint>
#include <vector>

#include "metric/grid2d.h"
#include "util/rng.h"

namespace p2p::baselines {

/// A fully populated Kleinberg torus with stored long-range links.
class KleinbergGrid {
 public:
  /// side × side torus, `long_links` long-range links per node, exponent r.
  /// Preconditions: side >= 2, exponent >= 0.
  KleinbergGrid(std::uint32_t side, std::size_t long_links, double exponent,
                util::Rng& rng);

  /// A grid over an explicit per-node long-link table (one vector per torus
  /// point, entries are flattened positions) — lets tests pin this reference
  /// against a CSR overlay built on the *same* sampled links.
  /// Preconditions: side >= 2, long_links.size() == side², entries in range.
  KleinbergGrid(std::uint32_t side, std::vector<std::vector<metric::Point>> long_links);

  [[nodiscard]] const metric::Torus2D& torus() const noexcept { return torus_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(torus_.size());
  }
  [[nodiscard]] const std::vector<metric::Point>& long_links_of(std::size_t u) const {
    return long_links_.at(u);
  }

  struct Result {
    bool ok = false;
    std::size_t hops = 0;
  };

  /// Greedy route src -> dst. `dead` (by node index) marks failed nodes to
  /// skip; routing fails when no live neighbour is strictly closer.
  [[nodiscard]] Result route(metric::Point src, metric::Point dst,
                             const std::vector<std::uint8_t>* dead = nullptr,
                             std::size_t ttl = 0) const;

 private:
  metric::Torus2D torus_;
  std::vector<std::vector<metric::Point>> long_links_;
};

}  // namespace p2p::baselines
