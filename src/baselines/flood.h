// Gnutella-style flooding baseline (§3).
//
// "Gnutella floods the network to locate a resource. Flooding creates a
// trade-off between overloading every node in the network for each request
// and cutting off searches before completion." flood_search measures both
// sides of that trade-off: message count and success, as a function of TTL.
#pragma once

#include <cstddef>

#include "failure/failure_model.h"
#include "graph/overlay_graph.h"

namespace p2p::baselines {

struct FloodResult {
  bool found = false;
  /// Total messages sent (every edge traversal from an expanded node).
  std::size_t messages = 0;
  /// Hop radius at which the target was found (<= ttl).
  std::size_t depth = 0;
  /// Distinct nodes that handled the query.
  std::size_t nodes_touched = 0;
};

/// Breadth-first flood from `src` looking for `target`, expanding live nodes
/// over live links up to `ttl` hops.
[[nodiscard]] FloodResult flood_search(const graph::OverlayGraph& g,
                                       const failure::FailureView& view,
                                       graph::NodeId src, graph::NodeId target,
                                       std::size_t ttl);

}  // namespace p2p::baselines
