#include "util/options.h"

#include <cstdlib>

namespace p2p::util {

std::uint64_t env_u64(const std::string& name, std::uint64_t dflt) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return dflt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return dflt;
  return static_cast<std::uint64_t>(value);
}

namespace {
ScaleOptions::Preset preset_from_env() {
  const char* raw = std::getenv("P2P_SCALE");
  if (raw == nullptr) return ScaleOptions::Preset::kDefault;
  const std::string v(raw);
  if (v == "smoke") return ScaleOptions::Preset::kSmoke;
  if (v == "paper") return ScaleOptions::Preset::kPaper;
  return ScaleOptions::Preset::kDefault;
}

std::size_t resolve(std::size_t explicit_value, ScaleOptions::Preset preset,
                    std::size_t dflt, std::size_t paper) {
  if (explicit_value != 0) return explicit_value;
  switch (preset) {
    case ScaleOptions::Preset::kSmoke: {
      const std::size_t scaled = dflt / 8;
      return scaled > 0 ? scaled : 1;
    }
    case ScaleOptions::Preset::kPaper:
      return paper;
    case ScaleOptions::Preset::kDefault:
    default:
      return dflt;
  }
}
}  // namespace

ScaleOptions scale_options_from_env() {
  ScaleOptions opts;
  opts.preset = preset_from_env();
  opts.nodes = static_cast<std::size_t>(env_u64("P2P_NODES", 0));
  opts.trials = static_cast<std::size_t>(env_u64("P2P_TRIALS", 0));
  opts.messages = static_cast<std::size_t>(env_u64("P2P_MESSAGES", 0));
  opts.seed = env_u64("P2P_SEED", opts.seed);
  opts.batch_width = static_cast<std::size_t>(env_u64("P2P_WIDTH", 0));
  opts.prefetch_distance = static_cast<std::size_t>(
      env_u64("P2P_PREFETCH", ScaleOptions::kUnsetPrefetch));
  opts.threads = static_cast<std::size_t>(env_u64("P2P_THREADS", 0));
  opts.telemetry = env_u64("P2P_TELEMETRY", 1) != 0;
  opts.trace_sample = static_cast<std::size_t>(env_u64("P2P_TRACE_SAMPLE", 0));
  return opts;
}

std::size_t ScaleOptions::resolve_nodes(std::size_t dflt, std::size_t paper) const {
  return resolve(nodes, preset, dflt, paper);
}

std::size_t ScaleOptions::resolve_trials(std::size_t dflt, std::size_t paper) const {
  return resolve(trials, preset, dflt, paper);
}

std::size_t ScaleOptions::resolve_messages(std::size_t dflt, std::size_t paper) const {
  return resolve(messages, preset, dflt, paper);
}

}  // namespace p2p::util
