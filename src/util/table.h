// Aligned console tables and CSV emission for the benchmark harnesses.
//
// Every bench binary prints the series a paper figure/table reports. The
// default output is a human-readable aligned table; setting the environment
// variable P2P_CSV=1 switches to machine-readable CSV on stdout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace p2p::util {

/// Column-aligned table builder.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;

  /// Renders as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  /// Prints CSV when P2P_CSV=1 is set in the environment, else the aligned
  /// form. A `title` line precedes aligned output.
  void emit(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `x` with fixed `precision` decimals.
[[nodiscard]] std::string format_double(double x, int precision = 4);

/// True when the environment requests CSV output (P2P_CSV=1).
[[nodiscard]] bool csv_requested() noexcept;

}  // namespace p2p::util
