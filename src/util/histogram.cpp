#include "util/histogram.h"

#include <cmath>

#include "util/require.h"

namespace p2p::util {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  require(lo < hi, "LinearHistogram: lo must be < hi");
  require(bins >= 1, "LinearHistogram: need at least one bin");
}

void LinearHistogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    overflow_ += weight;
    return;
  }
  counts_[idx] += weight;
}

double LinearHistogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

ExactCounter::ExactCounter(std::uint64_t max_value) : counts_(max_value + 1, 0) {}

void ExactCounter::add(std::uint64_t value, std::uint64_t weight) noexcept {
  total_ += weight;
  if (value >= counts_.size()) {
    overflow_ += weight;
    return;
  }
  counts_[value] += weight;
}

void ExactCounter::merge(const ExactCounter& other) {
  require(counts_.size() == other.counts_.size(),
          "ExactCounter::merge: incompatible sizes");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::uint64_t ExactCounter::count(std::uint64_t value) const {
  require_in_range(value < counts_.size(), "ExactCounter::count: value out of range");
  return counts_[value];
}

double ExactCounter::probability(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

LogHistogram::LogHistogram(double base, std::uint64_t max_value) : base_(base) {
  require(base > 1.0, "LogHistogram: base must be > 1");
  require(max_value >= 1, "LogHistogram: max_value must be >= 1");
  std::uint64_t edge = 1;
  while (edge <= max_value) {
    edges_.push_back(edge);
    const auto next = static_cast<std::uint64_t>(std::ceil(static_cast<double>(edge) * base_));
    edge = next > edge ? next : edge + 1;
  }
  edges_.push_back(edge);  // sentinel upper edge
  counts_.assign(edges_.size() - 1, 0);
}

std::size_t LogHistogram::bin_index(std::uint64_t value) const noexcept {
  // Binary search for the last edge <= value.
  std::size_t lo = 0, hi = edges_.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (edges_[mid] <= value)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

void LogHistogram::add(std::uint64_t value, std::uint64_t weight) noexcept {
  if (value == 0) value = 1;
  total_ += weight;
  if (value >= edges_.back()) {
    counts_.back() += weight;
    return;
  }
  counts_[bin_index(value)] += weight;
}

std::uint64_t LogHistogram::bin_lo(std::size_t i) const {
  require_in_range(i < counts_.size(), "LogHistogram::bin_lo: out of range");
  return edges_[i];
}

std::uint64_t LogHistogram::bin_hi(std::size_t i) const {
  require_in_range(i < counts_.size(), "LogHistogram::bin_hi: out of range");
  return edges_[i + 1] - 1;
}

}  // namespace p2p::util
