#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace p2p::util {

std::vector<std::uint64_t> log_bucket_edges(double base, std::uint64_t max_value) {
  require(base > 1.0, "log_bucket_edges: base must be > 1");
  require(max_value >= 1, "log_bucket_edges: max_value must be >= 1");
  std::vector<std::uint64_t> edges;
  std::uint64_t edge = 1;
  while (edge <= max_value) {
    edges.push_back(edge);
    const auto next = static_cast<std::uint64_t>(std::ceil(static_cast<double>(edge) * base));
    edge = next > edge ? next : edge + 1;
  }
  edges.push_back(edge);  // sentinel upper edge
  return edges;
}

std::size_t log_bucket_index(std::span<const std::uint64_t> edges,
                             std::uint64_t value) noexcept {
  if (value == 0) value = 1;
  if (value >= edges.back()) return edges.size() - 2;
  // Binary search for the last edge <= value.
  std::size_t lo = 0, hi = edges.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (edges[mid] <= value)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double quantile_from_log_bins(std::span<const std::uint64_t> edges,
                              std::span<const std::uint64_t> counts,
                              std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double first = static_cast<double>(cum);
    cum += counts[i];
    if (rank < static_cast<double>(cum)) {
      const double lo = static_cast<double>(edges[i]);
      const double hi = static_cast<double>(edges[i + 1] - 1);
      const double frac = (rank - first) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
  }
  return static_cast<double>(edges.back() - 1);
}

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  require(lo < hi, "LinearHistogram: lo must be < hi");
  require(bins >= 1, "LinearHistogram: need at least one bin");
}

void LinearHistogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  const auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    overflow_ += weight;
    return;
  }
  counts_[idx] += weight;
}

void LinearHistogram::merge(const LinearHistogram& other) {
  require(lo_ == other.lo_ && width_ == other.width_ &&
              counts_.size() == other.counts_.size(),
          "LinearHistogram::merge: incompatible shapes");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double LinearHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total_ - 1);
  const double hi_edge = bin_hi(counts_.size() - 1);
  std::uint64_t cum = 0;
  // Underflow mass sits at lo, overflow mass at the top edge.
  if (underflow_ > 0) {
    cum += underflow_;
    if (rank < static_cast<double>(cum)) return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double first = static_cast<double>(cum);
    cum += counts_[i];
    if (rank < static_cast<double>(cum)) {
      const double frac = (rank - first) / static_cast<double>(counts_[i]);
      return bin_lo(i) + (bin_hi(i) - bin_lo(i)) * frac;
    }
  }
  return hi_edge;
}

double LinearHistogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

ExactCounter::ExactCounter(std::uint64_t max_value) : counts_(max_value + 1, 0) {}

void ExactCounter::add(std::uint64_t value, std::uint64_t weight) noexcept {
  total_ += weight;
  if (value >= counts_.size()) {
    overflow_ += weight;
    return;
  }
  counts_[value] += weight;
}

void ExactCounter::merge(const ExactCounter& other) {
  require(counts_.size() == other.counts_.size(),
          "ExactCounter::merge: incompatible sizes");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::uint64_t ExactCounter::count(std::uint64_t value) const {
  require_in_range(value < counts_.size(), "ExactCounter::count: value out of range");
  return counts_[value];
}

double ExactCounter::probability(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::uint64_t ExactCounter::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum > rank) return i;
  }
  return counts_.size();  // rank lands in overflow mass: > max_value()
}

LogHistogram::LogHistogram(double base, std::uint64_t max_value)
    : base_(base), edges_(log_bucket_edges(base, max_value)) {
  counts_.assign(edges_.size() - 1, 0);
}

void LogHistogram::add(std::uint64_t value, std::uint64_t weight) noexcept {
  total_ += weight;
  counts_[log_bucket_index(edges_, value)] += weight;
}

void LogHistogram::merge(const LogHistogram& other) {
  require(base_ == other.base_ && edges_ == other.edges_,
          "LogHistogram::merge: incompatible edges");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const noexcept {
  return quantile_from_log_bins(edges_, counts_, total_, q);
}

std::uint64_t LogHistogram::bin_lo(std::size_t i) const {
  require_in_range(i < counts_.size(), "LogHistogram::bin_lo: out of range");
  return edges_[i];
}

std::uint64_t LogHistogram::bin_hi(std::size_t i) const {
  require_in_range(i < counts_.size(), "LogHistogram::bin_hi: out of range");
  return edges_[i + 1] - 1;
}

}  // namespace p2p::util
