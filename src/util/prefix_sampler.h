// Discrete samplers for arbitrary weight vectors.
//
// The core overlay draws long-distance link lengths from P(d) ∝ 1/d over a
// range of up to n/2 distinct lengths. Two implementations are provided:
//
//  * PrefixSampler — exact inverse-CDF sampling via binary search on a prefix
//    sum table. O(n) build, O(log n) draw. This is the reference sampler.
//  * AliasSampler — Walker/Vose alias method. O(n) build, O(1) draw. Used by
//    the large sweeps where sampling dominates the run time.
//
// Both samplers draw index i with probability w[i] / Σw exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace p2p::util {

/// Exact inverse-CDF sampler over a fixed weight vector.
class PrefixSampler {
 public:
  /// Preconditions: weights non-empty, all weights >= 0, at least one > 0.
  explicit PrefixSampler(const std::vector<double>& weights);

  /// Draws index i with probability weights[i] / total_weight().
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] double total_weight() const noexcept { return prefix_.back(); }
  [[nodiscard]] std::size_t size() const noexcept { return prefix_.size(); }

  /// Probability mass assigned to index i.
  [[nodiscard]] double probability(std::size_t i) const;

 private:
  std::vector<double> prefix_;  // prefix_[i] = w[0] + ... + w[i]
};

/// O(1)-per-draw alias sampler (Vose's stable construction).
class AliasSampler {
 public:
  /// Preconditions: weights non-empty, all weights >= 0, at least one > 0.
  explicit AliasSampler(const std::vector<double>& weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;        // threshold within each column
  std::vector<std::uint32_t> alias_;
};

}  // namespace p2p::util
