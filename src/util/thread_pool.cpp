#include "util/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/require.h"

namespace p2p::util {

namespace {

void pin_current_thread(int cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best-effort: a cpuset-restricted or offlined CPU just leaves the worker
  // unpinned.
  (void)::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
#else
  (void)cpu;
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::ThreadPool(const std::vector<int>& affinity) {
  require(!affinity.empty(), "ThreadPool: affinity list must be non-empty");
  workers_.reserve(affinity.size());
  for (const int cpu : affinity) {
    workers_.emplace_back([this, cpu] {
      pin_current_thread(cpu);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task, std::size_t max_pending) {
  {
    std::unique_lock lock(mutex_);
    if (max_pending != 0 && queue_.size() >= max_pending) {
      ++bounded_waiters_;
      space_available_.wait(lock,
                            [&] { return queue_.size() < max_pending; });
      --bounded_waiters_;
    }
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue(std::move(task), 0);
}

void ThreadPool::submit_bounded(std::function<void()> task,
                                std::size_t max_pending) {
  require(max_pending >= 1, "submit_bounded: max_pending must be >= 1");
  enqueue(std::move(task), max_pending);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  ++idle_waiters_;
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  --idle_waiters_;
}

void ThreadPool::parallel_for(std::size_t jobs, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < jobs; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::parallel_chunks(
    std::size_t jobs, std::size_t max_chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (jobs == 0) return;
  const std::size_t chunks = std::min(jobs, max_chunks < 1 ? 1 : max_chunks);
  const std::size_t per_chunk = (jobs + chunks - 1) / chunks;
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * per_chunk;
    const std::size_t hi = std::min(jobs, lo + per_chunk);
    if (lo < hi) fn(lo, hi);
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      if (bounded_waiters_ > 0) space_available_.notify_one();
    }
    task();
    {
      std::unique_lock lock(mutex_);
      // Notify only when someone is actually blocked in wait_idle — the
      // common fire-and-forget submit pattern pays no wakeup syscall here.
      if (--in_flight_ == 0 && idle_waiters_ > 0) all_done_.notify_all();
    }
  }
}

}  // namespace p2p::util
