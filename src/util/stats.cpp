#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace p2p::util {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderror() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double Accumulator::ci95() const noexcept { return 1.959963984540054 * stderror(); }

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  Accumulator acc;
  for (double x : samples) acc.add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = samples.front();
  s.p25 = quantile_sorted(samples, 0.25);
  s.median = quantile_sorted(samples, 0.50);
  s.p75 = quantile_sorted(samples, 0.75);
  s.p99 = quantile_sorted(samples, 0.99);
  s.max = samples.back();
  return s;
}

}  // namespace p2p::util
