#include "util/arena.h"

#include <new>
#include <utility>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace p2p::util {

namespace {
constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;
}  // namespace

std::size_t round_up_huge(std::size_t bytes) noexcept {
  return (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
}

void* map_huge(std::size_t bytes, bool huge_pages) noexcept {
#if defined(__linux__)
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return nullptr;
  // THP hint only; a kernel with THP disabled leaves the mapping on 4 KiB
  // pages, which is the documented graceful fallback.
  if (huge_pages) (void)::madvise(p, bytes, MADV_HUGEPAGE);
  return p;
#else
  (void)bytes;
  (void)huge_pages;
  return nullptr;
#endif
}

void unmap_huge(void* p, std::size_t bytes) noexcept {
#if defined(__linux__)
  if (p != nullptr) ::munmap(p, bytes);
#else
  (void)p;
  (void)bytes;
#endif
}

Arena::Arena(std::size_t chunk_bytes, bool huge_pages)
    : chunk_bytes_(round_up_huge(chunk_bytes == 0 ? kDefaultChunkBytes
                                                  : chunk_bytes)),
      huge_pages_(huge_pages) {}

Arena::~Arena() { release(); }

Arena::Arena(Arena&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      active_(other.active_),
      offset_(other.offset_),
      chunk_bytes_(other.chunk_bytes_),
      huge_pages_(other.huge_pages_),
      allocated_(other.allocated_),
      reserved_(other.reserved_) {
  other.chunks_.clear();
  other.active_ = 0;
  other.offset_ = 0;
  other.allocated_ = 0;
  other.reserved_ = 0;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    release();
    chunks_ = std::move(other.chunks_);
    active_ = other.active_;
    offset_ = other.offset_;
    chunk_bytes_ = other.chunk_bytes_;
    huge_pages_ = other.huge_pages_;
    allocated_ = other.allocated_;
    reserved_ = other.reserved_;
    other.chunks_.clear();
    other.active_ = 0;
    other.offset_ = 0;
    other.allocated_ = 0;
    other.reserved_ = 0;
  }
  return *this;
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        allocated_ += bytes;
        return c.base + aligned;
      }
      // Exhausted; a retained chunk from before reset() may still fit.
      ++active_;
      offset_ = 0;
      continue;
    }
    const std::size_t want =
        bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
    chunks_.push_back(make_chunk(want));
    // active_ now indexes the fresh chunk; loop retries the bump.
  }
}

void Arena::reset() noexcept {
  active_ = 0;
  offset_ = 0;
  allocated_ = 0;
}

Arena::Chunk Arena::make_chunk(std::size_t bytes) {
  bytes = round_up_huge(bytes);
  Chunk c;
  c.size = bytes;
  if (void* p = map_huge(bytes, huge_pages_)) {
    c.base = static_cast<std::byte*>(p);
    c.mapped = true;
  } else {
    // Non-Linux or mmap exhaustion: plain heap chunk (operator new throws
    // bad_alloc if that also fails).
    c.base = static_cast<std::byte*>(::operator new(bytes));
    c.mapped = false;
  }
  reserved_ += bytes;
  return c;
}

void Arena::release() noexcept {
  for (Chunk& c : chunks_) {
    if (c.base == nullptr) continue;
    if (c.mapped) {
      unmap_huge(c.base, c.size);
    } else {
      ::operator delete(c.base);
    }
  }
  chunks_.clear();
  active_ = 0;
  offset_ = 0;
  allocated_ = 0;
  reserved_ = 0;
}

}  // namespace p2p::util
