// Bump allocation over transparent-huge-page-backed chunks.
//
// The frozen overlay's compact representation (headers + encoded edge
// streams) and the FailureView bitsets are large, long-lived, append-once
// arrays: the ideal tenants for 2 MiB pages. `Arena` grabs anonymous
// mmap chunks rounded to the huge-page size, hints MADV_HUGEPAGE (failure
// is harmless — the mapping simply stays on 4 KiB pages), and bump-allocates
// from them. `reset()` rewinds without unmapping so a rebuilt graph reuses
// the same physical pages.
//
// `HugePageAllocator<T>` applies the same policy to std::vector storage
// (FailureView bitsets / alive-byte sidebands): allocations of >= 1 MiB go
// through mmap + MADV_HUGEPAGE, smaller ones through plain operator new.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace p2p::util {

/// Rounds `bytes` up to a multiple of the 2 MiB huge-page size.
[[nodiscard]] std::size_t round_up_huge(std::size_t bytes) noexcept;

/// Anonymous private mapping of `bytes` (caller pre-rounds via
/// round_up_huge) with the MADV_HUGEPAGE hint applied; nullptr when mmap is
/// unavailable (non-Linux) or fails. The madvise result is ignored — a
/// kernel without THP still returns a perfectly usable 4 KiB-page mapping.
/// `huge_pages = false` skips the hint (measurement / fallback testing).
[[nodiscard]] void* map_huge(std::size_t bytes, bool huge_pages = true) noexcept;

/// Releases a map_huge mapping (no-op on nullptr).
void unmap_huge(void* p, std::size_t bytes) noexcept;

/// Chunked bump allocator. Not thread-safe; allocations are freed only in
/// bulk (destructor or reset). Alignment up to the chunk granularity is
/// honoured per allocation.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{8} << 20;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes,
                 bool huge_pages = true);
  ~Arena();

  Arena(Arena&& other) noexcept;
  Arena& operator=(Arena&& other) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Oversized
  /// requests get a dedicated chunk. Never returns nullptr (throws
  /// std::bad_alloc on genuine exhaustion).
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t));

  /// Typed convenience: uninitialized storage for `count` Ts.
  template <class T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds every chunk without unmapping — the next allocation generation
  /// reuses the already-faulted pages.
  void reset() noexcept;

  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    return allocated_;
  }
  [[nodiscard]] std::size_t reserved_bytes() const noexcept {
    return reserved_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  struct Chunk {
    std::byte* base = nullptr;
    std::size_t size = 0;
    bool mapped = false;  ///< true: map_huge; false: operator-new fallback
  };

  Chunk make_chunk(std::size_t bytes);
  void release() noexcept;

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< chunk currently bumped from
  std::size_t offset_ = 0;  ///< bump offset within chunks_[active_]
  std::size_t chunk_bytes_ = kDefaultChunkBytes;
  bool huge_pages_ = true;
  std::size_t allocated_ = 0;
  std::size_t reserved_ = 0;
};

/// std allocator routing large blocks through map_huge. Stateless, so all
/// instances compare equal and container copy/move semantics are unchanged;
/// propagate_on_container_copy_assignment stays false (the std default),
/// which keeps vector copy-assignment reusing existing capacity — the
/// ViewPublisher snapshot pool depends on that reuse.
template <class T>
struct HugePageAllocator {
  using value_type = T;

  /// Blocks at least this large go through mmap; smaller ones through
  /// operator new. deallocate branches on the same computed size, so the
  /// two paths can never be mismatched.
  static constexpr std::size_t kMmapThreshold = std::size_t{1} << 20;

  HugePageAllocator() noexcept = default;
  template <class U>
  HugePageAllocator(const HugePageAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
    if (bytes >= kMmapThreshold) {
      // A failed anonymous mmap is genuine address-space exhaustion; do not
      // fall back to operator new — deallocate would munmap a heap pointer.
      if (void* p = map_huge(round_up_huge(bytes))) return static_cast<T*>(p);
      throw std::bad_alloc();
    }
#endif
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
#if defined(__linux__)
    if (bytes >= kMmapThreshold) {
      unmap_huge(p, round_up_huge(bytes));
      return;
    }
#endif
    ::operator delete(p);
  }
};

template <class T, class U>
bool operator==(const HugePageAllocator<T>&,
                const HugePageAllocator<U>&) noexcept {
  return true;
}
template <class T, class U>
bool operator!=(const HugePageAllocator<T>&,
                const HugePageAllocator<U>&) noexcept {
  return false;
}

/// Vector whose backing store is huge-page-mapped once it crosses 1 MiB.
template <class T>
using HpVector = std::vector<T, HugePageAllocator<T>>;

}  // namespace p2p::util
