// Harmonic numbers H_n = 1 + 1/2 + ... + 1/n.
//
// The inverse power-law link distribution with exponent 1 is normalized by
// harmonic sums, and every delivery-time bound in the paper is stated in
// terms of H_n, so these helpers are used by graph sampling, the analysis
// library and the benches alike.
#pragma once

#include <cmath>
#include <cstdint>

namespace p2p::util {

/// Euler–Mascheroni constant.
inline constexpr double kEulerGamma = 0.5772156649015328606;

/// Exact H_n by summation for small n, asymptotic expansion for large n.
///
/// The switchover keeps absolute error below 1e-12 everywhere.
[[nodiscard]] inline double harmonic(std::uint64_t n) noexcept {
  if (n == 0) return 0.0;
  if (n <= 128) {
    double h = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double x = static_cast<double>(n);
  // H_n ~ ln n + γ + 1/(2n) - 1/(12n^2) + 1/(120n^4)
  return std::log(x) + kEulerGamma + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x) +
         1.0 / (120.0 * x * x * x * x);
}

/// Generalized harmonic number H_{n,r} = Σ_{i=1..n} i^-r (exact summation).
[[nodiscard]] inline double harmonic_general(std::uint64_t n, double r) noexcept {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += std::pow(static_cast<double>(i), -r);
  return h;
}

}  // namespace p2p::util
