// Streaming and batch statistics used by every experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace p2p::util {

/// Numerically stable streaming accumulator (Welford's algorithm).
///
/// Tracks count, mean, variance, min and max of a stream of doubles without
/// storing the samples.
class Accumulator {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean; 0 when fewer than two observations.
  [[nodiscard]] double stderror() const noexcept;

  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector: quantiles plus the Accumulator moments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; `samples` is copied so the caller's order is kept.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Linear-interpolated quantile (q in [0,1]) of *sorted* data.
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace p2p::util
