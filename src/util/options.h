// Environment-driven experiment scaling.
//
// The paper's headline experiment uses n = 2^17 nodes and 1000 simulations of
// 100 messages each — hours of CPU on one core. Bench binaries therefore run
// a scaled-down default that preserves every qualitative result, and honour:
//
//   P2P_SCALE=smoke|default|paper   overall preset
//   P2P_NODES=<int>                 override node count
//   P2P_TRIALS=<int>                override simulation count
//   P2P_MESSAGES=<int>              override messages per simulation
//   P2P_SEED=<int>                  override master seed
//   P2P_CSV=1                       CSV output (see util/table.h)
//   P2P_WIDTH=<int>                 override route_batch width
//   P2P_PREFETCH=<int>              override route_batch prefetch distance
//                                   (0 disables the lookahead prefetch)
//   P2P_THREADS=<int>               override thread count (ThreadPool fans,
//                                   service::RoutingService workers;
//                                   0/unset = hardware concurrency)
//   P2P_TELEMETRY=0                 disable runtime telemetry wiring in the
//                                   benches (1/unset = wire the registry;
//                                   the compile-out gate is the CMake option
//                                   of the same name)
//   P2P_TRACE_SAMPLE=<int>          flight-recorder sampling: capture the
//                                   hop trail of 1-in-<int> queries
//                                   (0/unset = recorder off)
//
// P2P_WIDTH/P2P_PREFETCH shape the batch pipeline (core::BatchConfig) so
// width/prefetch perf sweeps don't need recompiles; bench_common.h's
// batch_config_from_env() applies them, and its pool_from_env() applies
// P2P_THREADS, so every bench and the routing service pick their thread
// count uniformly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace p2p::util {

/// Global knobs resolved from the environment once per process.
struct ScaleOptions {
  std::size_t nodes = 0;      ///< 0 = use the bench's own default
  std::size_t trials = 0;     ///< 0 = use the bench's own default
  std::size_t messages = 0;   ///< 0 = use the bench's own default
  std::uint64_t seed = 0x5eed'0000'2002ULL;
  /// Multiplier applied to a bench's default sizes: 1.0 for "default",
  /// <1 for "smoke", and the paper's exact sizes for "paper".
  enum class Preset { kSmoke, kDefault, kPaper } preset = Preset::kDefault;

  /// Sentinel for "P2P_PREFETCH unset" (0 itself is meaningful: it disables
  /// the batch pipeline's lookahead prefetch).
  static constexpr std::size_t kUnsetPrefetch = static_cast<std::size_t>(-1);
  /// route_batch shape overrides; 0 / kUnsetPrefetch keep the caller's
  /// defaults.
  std::size_t batch_width = 0;
  std::size_t prefetch_distance = kUnsetPrefetch;
  /// Worker-thread override (P2P_THREADS); 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Runtime telemetry switch (P2P_TELEMETRY; default on). Benches skip
  /// registry/sink wiring entirely when false — the zero-overhead path even
  /// in builds where recording is compiled in.
  bool telemetry = true;
  /// Flight-recorder sampling period (P2P_TRACE_SAMPLE): hop trails are
  /// captured for 1-in-this-many queries; 0 = recorder off.
  std::size_t trace_sample = 0;

  /// Resolves a size: explicit override > preset-scaled default.
  [[nodiscard]] std::size_t resolve_nodes(std::size_t dflt, std::size_t paper) const;
  [[nodiscard]] std::size_t resolve_trials(std::size_t dflt, std::size_t paper) const;
  [[nodiscard]] std::size_t resolve_messages(std::size_t dflt, std::size_t paper) const;
};

/// Parses the P2P_* environment variables (no caching; cheap).
[[nodiscard]] ScaleOptions scale_options_from_env();

/// Parses a non-negative integer env var; returns `dflt` if unset/invalid.
[[nodiscard]] std::uint64_t env_u64(const std::string& name, std::uint64_t dflt);

}  // namespace p2p::util
