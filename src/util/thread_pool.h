// Minimal fixed-size thread pool used to fan independent simulation seeds
// across cores (CP.4: think in terms of tasks, not threads).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace p2p::util {

/// Fixed pool of worker threads executing void() tasks FIFO.
///
/// Exceptions escaping a task terminate the program (tasks are expected to
/// capture and report their own failures); experiment drivers wrap user work
/// accordingly.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, jobs) across the pool and waits for completion.
  void parallel_for(std::size_t jobs, const std::function<void(std::size_t)>& fn);

  /// Runs `fn(lo, hi)` over a fixed decomposition of [0, jobs) into at most
  /// max(1, max_chunks) contiguous ranges and waits for completion. The
  /// decomposition depends only on (jobs, max_chunks) — never on the thread
  /// count — so callers that derive per-index Rng substreams inside chunks
  /// stay deterministic on any machine; several chunks per worker lets
  /// stragglers rebalance. No-op when jobs == 0.
  void parallel_chunks(std::size_t jobs, std::size_t max_chunks,
                       const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace p2p::util
