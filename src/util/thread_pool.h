// Minimal fixed-size thread pool used to fan independent simulation seeds
// across cores (CP.4: think in terms of tasks, not threads).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace p2p::util {

/// Fixed pool of worker threads executing void() tasks FIFO.
///
/// Idle workers and idle waiters block on condition variables — nothing in
/// the pool spins — and completion/backpressure notifications only fire when
/// someone is actually waiting, so a producer that never blocks pays no
/// wakeup traffic. Exceptions escaping a task terminate the program (tasks
/// are expected to capture and report their own failures); experiment
/// drivers wrap user work accordingly.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Spawns one worker per entry of `affinity`, pinning worker i to CPU
  /// affinity[i] (Linux; a no-op elsewhere, and a failed pin is ignored —
  /// affinity is a performance hint, not a correctness requirement). The
  /// NUMA-sharded routing service uses this to keep each shard's workers —
  /// and therefore its snapshot pins and graph traffic — on one socket.
  /// Precondition: affinity non-empty.
  explicit ThreadPool(const std::vector<int>& affinity);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Enqueues a task, blocking while `max_pending` tasks are already
  /// queued (backpressure for producers that outrun the workers — a service
  /// frontend feeding ticks must stall, not grow the queue without bound).
  /// Precondition: max_pending >= 1.
  void submit_bounded(std::function<void()> task, std::size_t max_pending);

  /// Blocks until every submitted task has finished (condition-variable
  /// completion signaling; never polls).
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, jobs) across the pool and waits for completion.
  void parallel_for(std::size_t jobs, const std::function<void(std::size_t)>& fn);

  /// Runs `fn(lo, hi)` over a fixed decomposition of [0, jobs) into at most
  /// max(1, max_chunks) contiguous ranges and waits for completion. The
  /// decomposition depends only on (jobs, max_chunks) — never on the thread
  /// count — so callers that derive per-index Rng substreams inside chunks
  /// stay deterministic on any machine; several chunks per worker lets
  /// stragglers rebalance. No-op when jobs == 0.
  void parallel_chunks(std::size_t jobs, std::size_t max_chunks,
                       const std::function<void(std::size_t, std::size_t)>& fn);

  /// Map-reduce over the same fixed decomposition as parallel_chunks:
  /// `map(lo, hi)` produces one partial per chunk, and the partials are
  /// folded left-to-right in chunk order with `reduce(acc, partial)` after
  /// all chunks finish — the reduction order is a pure function of (jobs,
  /// max_chunks), so even a non-associative-in-floating-point reduce gives
  /// machine-independent results. Returns `init` when jobs == 0.
  template <typename T, typename MapFn, typename ReduceFn>
  [[nodiscard]] T parallel_reduce(std::size_t jobs, std::size_t max_chunks,
                                  T init, MapFn map, ReduceFn reduce) {
    if (jobs == 0) return init;
    const std::size_t chunks = std::min(jobs, max_chunks < 1 ? 1 : max_chunks);
    const std::size_t per_chunk = (jobs + chunks - 1) / chunks;
    std::vector<T> partials(chunks, init);
    parallel_for(chunks, [&](std::size_t c) {
      const std::size_t lo = c * per_chunk;
      const std::size_t hi = std::min(jobs, lo + per_chunk);
      if (lo < hi) partials[c] = map(lo, hi);
    });
    T acc = std::move(init);
    for (T& partial : partials) acc = reduce(std::move(acc), std::move(partial));
    return acc;
  }

 private:
  void enqueue(std::function<void()> task, std::size_t max_pending);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::condition_variable space_available_;
  std::size_t in_flight_ = 0;
  std::size_t idle_waiters_ = 0;     ///< threads blocked in wait_idle
  std::size_t bounded_waiters_ = 0;  ///< producers blocked in submit_bounded
  bool stopping_ = false;
};

}  // namespace p2p::util
