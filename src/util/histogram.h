// Histograms used to measure link-length distributions (Figure 5) and hop
// distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace p2p::util {

/// Geometric bucket edges over positive integers: edges[k] is the first value
/// of bin k and the final entry is a sentinel upper edge, so bin k covers
/// [edges[k], edges[k+1]). Shared by LogHistogram and the telemetry registry
/// so both sides bucket identically. Preconditions: base > 1, max_value >= 1.
[[nodiscard]] std::vector<std::uint64_t> log_bucket_edges(double base,
                                                          std::uint64_t max_value);

/// Index of the bin containing `value` for edges from log_bucket_edges().
/// Values below edges.front() clamp to bin 0; values at or above the sentinel
/// clamp to the last bin.
[[nodiscard]] std::size_t log_bucket_index(std::span<const std::uint64_t> edges,
                                           std::uint64_t value) noexcept;

/// Interpolated quantile (q in [0,1]) over integer log bins, where
/// edges.size() == counts.size() + 1 and bin i covers [edges[i], edges[i+1]-1]
/// inclusive. Returns 0 when total == 0.
[[nodiscard]] double quantile_from_log_bins(std::span<const std::uint64_t> edges,
                                            std::span<const std::uint64_t> counts,
                                            std::uint64_t total, double q);

/// Fixed-width linear histogram over [lo, hi); out-of-range samples are
/// counted in saturating under/overflow bins.
class LinearHistogram {
 public:
  /// Preconditions: lo < hi, bins >= 1 (throws std::invalid_argument).
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;

  /// Adds `other`'s bins into this one. Throws std::invalid_argument unless
  /// both histograms were built with identical lo/hi/bins.
  void merge(const LinearHistogram& other);

  /// Interpolated quantile, q in [0,1]. Underflow mass is treated as sitting
  /// at lo and overflow mass at hi. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Exact per-integer-value counter: bin i counts samples equal to i.
///
/// This is what Figure 5 needs: the probability that a long-distance link has
/// length exactly d, for every d in [1, n/2]. Memory is one counter per
/// possible length, which is fine for n <= 2^20.
class ExactCounter {
 public:
  /// Counts values in [0, max_value]; larger values go to overflow.
  explicit ExactCounter(std::uint64_t max_value);

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept;
  void merge(const ExactCounter& other);

  [[nodiscard]] std::uint64_t count(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return counts_.size() - 1; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

  /// Empirical probability mass at `value` (0 when no samples recorded).
  [[nodiscard]] double probability(std::uint64_t value) const;

  /// Exact quantile, q in [0,1]: the smallest value whose cumulative count
  /// reaches rank q*(total-1). Overflow mass is treated as max_value() + 1.
  /// Returns 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Geometric (log-spaced) histogram over positive integers: bin k covers
/// [base^k, base^(k+1)). Used for compact log-log plots of link lengths.
class LogHistogram {
 public:
  /// Preconditions: base > 1, max_value >= 1.
  LogHistogram(double base, std::uint64_t max_value);

  void add(std::uint64_t value, std::uint64_t weight = 1) noexcept;

  /// Adds `other`'s bins into this one. Throws std::invalid_argument unless
  /// both histograms share the same base and max_value (identical edges).
  void merge(const LogHistogram& other);

  /// Interpolated quantile, q in [0,1]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  /// Inclusive integer bounds of bin i.
  [[nodiscard]] std::uint64_t bin_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::span<const std::uint64_t> edges() const noexcept { return edges_; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept { return counts_; }

 private:
  double base_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> edges_;  // edges_[k] = first value of bin k
  std::uint64_t total_ = 0;
};

}  // namespace p2p::util
