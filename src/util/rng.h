// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in this library takes an explicit `Rng&` so that
// experiments are reproducible bit-for-bit given a seed. The generator is
// xoshiro256++ (Blackman & Vigna), seeded via splitmix64 so that small seeds
// (0, 1, 2, ...) still yield well-mixed, independent-looking streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace p2p::util {

/// Mixes a 64-bit value into a well-distributed 64-bit value.
///
/// This is the splitmix64 finalizer; it is used both for seeding Rng and as a
/// cheap stateless hash in tests.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions, but the convenience members below avoid
/// the libstdc++/libc++ portability trap: std::uniform_int_distribution is
/// not guaranteed to produce the same stream across standard libraries,
/// whereas Rng's own helpers are fully specified here.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit constexpr Rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  /// Re-initializes the stream from `seed`.
  constexpr void reseed(std::uint64_t seed) noexcept {
    // splitmix64 recurrence guarantees a non-zero, well-mixed state even for
    // adversarial seeds (e.g. 0).
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = splitmix64(x);
    }
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Returns the next 64 random bits.
  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  ///
  /// Uses Lemire's multiply-shift rejection method: unbiased and fast.
  [[nodiscard]] constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    __extension__ using uint128 = unsigned __int128;
    std::uint64_t x = (*this)();
    uint128 m = static_cast<uint128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<uint128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] constexpr double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  [[nodiscard]] constexpr bool next_bool(double p) noexcept {
    return next_double() < p;
  }

  /// Derives an independent child stream; used to fan experiments out across
  /// seeds/threads without correlated streams.
  [[nodiscard]] constexpr Rng split() noexcept {
    return Rng(splitmix64((*this)()) ^ 0xa5a5a5a5a5a5a5a5ULL);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Deterministic substream `index` of the family identified by `base`: the
/// returned generator depends only on (base, index), never on which thread
/// draws from it or how many sibling substreams exist. This is the one
/// derivation shared by the experiment driver (per-trial streams), the batch
/// route pipeline (per-query streams) and the parallel graph build (per-node
/// streams), so interleaved and sequential executions stay bit-identical.
[[nodiscard]] constexpr Rng substream(std::uint64_t base, std::uint64_t index) noexcept {
  return Rng(splitmix64(base ^ (0x9e3779b97f4a7c15ULL * (index + 1))));
}

/// Samples a Poisson(mean) variate by inversion (mean expected to be small,
/// e.g. the per-node link count ℓ ≤ ~40 used throughout the paper).
[[nodiscard]] int poisson_sample(Rng& rng, double mean) noexcept;

inline int poisson_sample(Rng& rng, double mean) noexcept {
  if (mean <= 0.0) return 0;
  // Inversion by sequential search; numerically fine for mean <= ~700.
  double p = 1.0;
  int k = 0;
  const double bound = [&] {
    // exp(-mean) computed stably via repeated halving for large means.
    double m = mean;
    double e = 1.0;
    while (m > 30.0) {
      e *= 9.357622968840175e-14;  // exp(-30)
      m -= 30.0;
    }
    double t = 1.0, term = 1.0;
    for (int i = 1; i < 64; ++i) {  // Taylor series of exp(-m), m in (0,30]
      term *= -m / i;
      t += term;
      if (term > -1e-18 && term < 1e-18) break;
    }
    return e * t;
  }();
  const double u = rng.next_double();
  double cdf = bound;
  while (u > cdf && k < 10'000) {
    ++k;
    p *= mean / k;
    cdf += bound * p;
  }
  return k;
}

}  // namespace p2p::util
