#include "util/prefix_sampler.h"

#include <algorithm>
#include <cstdint>

#include "util/require.h"

namespace p2p::util {

PrefixSampler::PrefixSampler(const std::vector<double>& weights) {
  require(!weights.empty(), "PrefixSampler: weights must be non-empty");
  prefix_.reserve(weights.size());
  double running = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "PrefixSampler: weights must be non-negative");
    running += w;
    prefix_.push_back(running);
  }
  require(running > 0.0, "PrefixSampler: total weight must be positive");
}

std::size_t PrefixSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double() * prefix_.back();
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), u);
  const auto idx = static_cast<std::size_t>(it - prefix_.begin());
  return idx < prefix_.size() ? idx : prefix_.size() - 1;
}

double PrefixSampler::probability(std::size_t i) const {
  require_in_range(i < prefix_.size(), "PrefixSampler::probability: out of range");
  const double lo = i == 0 ? 0.0 : prefix_[i - 1];
  return (prefix_[i] - lo) / prefix_.back();
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  require(!weights.empty(), "AliasSampler: weights must be non-empty");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "AliasSampler: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "AliasSampler: total weight must be positive");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled weights; "small" columns (< 1) are topped up from "large" ones.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Remaining columns are exactly 1 up to rounding.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const noexcept {
  const std::size_t col = static_cast<std::size_t>(rng.next_below(prob_.size()));
  return rng.next_double() < prob_[col] ? col : alias_[col];
}

}  // namespace p2p::util
