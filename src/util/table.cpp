#include "util/table.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.h"

namespace p2p::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double x : cells) out.push_back(format_double(x, precision));
  add_row(std::move(out));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  require_in_range(row < rows_.size() && col < headers_.size(),
                   "Table::cell: out of range");
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 2 * headers_.size();
  for (std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

void Table::emit(std::ostream& os, const std::string& title) const {
  if (csv_requested()) {
    os << "# " << title << '\n';
    print_csv(os);
  } else {
    os << "\n== " << title << " ==\n";
    print(os);
  }
}

std::string format_double(double x, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << x;
  return oss.str();
}

bool csv_requested() noexcept {
  const char* v = std::getenv("P2P_CSV");
  return v != nullptr && v[0] == '1';
}

}  // namespace p2p::util
