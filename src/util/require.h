// Precondition helpers for public API boundaries.
//
// Per the error-handling strategy (DESIGN.md §4): public entry points
// validate their arguments and throw; internal invariants use assert().
#pragma once

#include <stdexcept>
#include <string>

namespace p2p::util {

/// Throws std::invalid_argument with `message` unless `condition` holds.
///
/// The const char* overloads exist so literal messages cost nothing on the
/// success path: the std::string reference parameter would otherwise
/// materialize (and heap-allocate) a temporary on every call, which both
/// slows hot entry points and breaks the batch pipeline's allocation-free
/// tick loop.
inline void require(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}
inline void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::out_of_range with `message` unless `condition` holds.
inline void require_in_range(bool condition, const char* message) {
  if (!condition) throw std::out_of_range(message);
}
inline void require_in_range(bool condition, const std::string& message) {
  if (!condition) throw std::out_of_range(message);
}

}  // namespace p2p::util
