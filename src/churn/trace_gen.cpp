#include "churn/trace_gen.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "util/require.h"

namespace p2p::churn {

namespace {

using graph::NodeId;

/// O(1) uniform sampling from both the alive and the dead node population:
/// two swap-remove vectors plus a per-node (which list, where) index. The
/// generator keeps its own tracker rather than querying the log's shadow so
/// kills and revives cost O(1) draws instead of rejection sampling at low
/// alive fractions.
class Membership {
 public:
  explicit Membership(std::size_t n) : alive_(n), where_(n), is_alive_(n, 1) {
    std::iota(alive_.begin(), alive_.end(), NodeId{0});
    std::iota(where_.begin(), where_.end(), std::uint32_t{0});
  }

  [[nodiscard]] std::size_t alive_count() const noexcept { return alive_.size(); }
  [[nodiscard]] std::size_t dead_count() const noexcept { return dead_.size(); }
  [[nodiscard]] bool alive(NodeId u) const noexcept { return is_alive_[u] != 0; }

  [[nodiscard]] NodeId random_alive(util::Rng& rng) const {
    return alive_[rng.next_below(alive_.size())];
  }
  [[nodiscard]] NodeId random_dead(util::Rng& rng) const {
    return dead_[rng.next_below(dead_.size())];
  }

  void kill(NodeId u) {
    if (!alive(u)) return;
    swap_remove(alive_, where_[u]);
    is_alive_[u] = 0;
    where_[u] = static_cast<std::uint32_t>(dead_.size());
    dead_.push_back(u);
  }

  void revive(NodeId u) {
    if (alive(u)) return;
    swap_remove(dead_, where_[u]);
    is_alive_[u] = 1;
    where_[u] = static_cast<std::uint32_t>(alive_.size());
    alive_.push_back(u);
  }

 private:
  void swap_remove(std::vector<NodeId>& list, std::uint32_t at) {
    const NodeId moved = list.back();
    list[at] = moved;
    where_[moved] = at;
    list.pop_back();
  }

  std::vector<NodeId> alive_;
  std::vector<NodeId> dead_;
  std::vector<std::uint32_t> where_;   // index within the node's current list
  std::vector<std::uint8_t> is_alive_;
};

/// Keep at least two live nodes so every epoch stays routable (the same
/// floor sim::make_churn_trace maintains).
constexpr std::size_t kAliveFloor = 2;

void kill_random_nodes(ChurnLog& log, Membership& members, std::size_t count,
                       util::Rng& rng) {
  for (std::size_t i = 0; i < count && members.alive_count() > kAliveFloor; ++i) {
    const NodeId u = members.random_alive(rng);
    members.kill(u);
    log.kill_node(u);
  }
}

void revive_random_nodes(ChurnLog& log, Membership& members, std::size_t count,
                         util::Rng& rng) {
  for (std::size_t i = 0; i < count && members.dead_count() > 0; ++i) {
    const NodeId u = members.random_dead(rng);
    members.revive(u);
    log.revive_node(u);
  }
}

void commit_if_staged(ChurnLog& log, double when) {
  if (!log.staged_empty()) log.commit(when);
}

/// Memoryless background churn over [from, to): one batch per interval,
/// Poisson event counts per batch.
void poisson_phase(ChurnLog& log, Membership& members, const TraceSpec& spec,
                   double from, double to, double kill_rate, double revive_rate,
                   util::Rng& rng) {
  for (double t = from + spec.batch_interval; t <= to; t += spec.batch_interval) {
    kill_random_nodes(log, members,
                      static_cast<std::size_t>(util::poisson_sample(
                          rng, kill_rate * spec.batch_interval)),
                      rng);
    revive_random_nodes(log, members,
                        static_cast<std::size_t>(util::poisson_sample(
                            rng, revive_rate * spec.batch_interval)),
                        rng);
    commit_if_staged(log, t);
  }
}

ChurnLog make_poisson(const graph::OverlayGraph& g, const TraceSpec& spec,
                      util::Rng& rng) {
  ChurnLog log(g);
  Membership members(g.size());
  poisson_phase(log, members, spec, 0.0, spec.duration, spec.kill_rate,
                spec.revive_rate, rng);
  return log;
}

ChurnLog make_flash_crowd(const graph::OverlayGraph& g, const TraceSpec& spec,
                          util::Rng& rng) {
  ChurnLog log(g);
  Membership members(g.size());
  const double crowd_at = spec.crowd_time * spec.duration;
  poisson_phase(log, members, spec, 0.0, crowd_at, spec.kill_rate,
                spec.revive_rate, rng);
  // The flash departure: one delta, crowd_fraction of the live population.
  const auto crowd = static_cast<std::size_t>(
      spec.crowd_fraction * static_cast<double>(members.alive_count()));
  kill_random_nodes(log, members, crowd, rng);
  commit_if_staged(log, crowd_at);
  // Recovery: departures stop, revivals trickle back.
  poisson_phase(log, members, spec, crowd_at, spec.duration, /*kill_rate=*/0.0,
                spec.revive_rate, rng);
  return log;
}

ChurnLog make_regional(const graph::OverlayGraph& g, const TraceSpec& spec,
                       util::Rng& rng) {
  ChurnLog log(g);
  const std::size_t n = g.size();
  util::require(spec.outages > 0, "make_trace: outages must be > 0");
  const bool torus = g.space().kind() == metric::Space::Kind::kTorus2D;
  auto shape = spec.region_shape;
  if (shape == TraceSpec::RegionShape::kAuto) {
    shape = torus ? TraceSpec::RegionShape::kRect : TraceSpec::RegionShape::kArc;
  }
  util::require(shape == TraceSpec::RegionShape::kArc || torus,
                "make_trace: 2-D region shapes (rect, L1 ball) need a torus space");
  std::size_t target = static_cast<std::size_t>(
      spec.region_fraction * static_cast<double>(n));
  target = std::max<std::size_t>(1, std::min(target, n - kAliveFloor));
  const std::size_t max_kills = n - kAliveFloor;
  const double gap = spec.duration / static_cast<double>(spec.outages);

  // Nodes actually killed by the current outage. 2-D shapes collect them
  // explicitly: a wrapped enumeration can alias (revisit a lattice point on
  // a side smaller than the footprint) and a sparse overlay can leave grid
  // points unoccupied, so the revive batch must mirror the shadow state, not
  // the nominal footprint.
  std::vector<NodeId> killed;
  const auto try_kill = [&](metric::Point p) {
    if (killed.size() >= max_kills) return;
    const NodeId u = g.node_at(p);
    if (u == graph::kInvalidNode) return;
    if (!log.shadow().node_alive(u)) return;  // aliased revisit
    log.kill_node(u);
    killed.push_back(u);
  };

  for (std::size_t k = 0; k < spec.outages; ++k) {
    const double start = gap * static_cast<double>(k);
    killed.clear();
    switch (shape) {
      case TraceSpec::RegionShape::kAuto:  // resolved above; not reachable
      case TraceSpec::RegionShape::kArc: {
        // Node order equals position order on a 1-D space, so a contiguous
        // id arc is a contiguous region of the metric (wrapping on a ring).
        const auto base = static_cast<std::size_t>(rng.next_below(n));
        for (std::size_t i = 0; i < target && killed.size() < max_kills; ++i) {
          const auto u = static_cast<NodeId>((base + i) % n);
          log.kill_node(u);
          killed.push_back(u);
        }
        break;
      }
      case TraceSpec::RegionShape::kRect: {
        // A ~square w x h block of lattice coordinates around a random
        // anchor, sized to the target node count — the 2-D analogue of the
        // arc: one cloud region, both axes wrap.
        const metric::Torus2D t = g.space().as_torus();
        const auto side = static_cast<std::size_t>(t.side());
        std::size_t w = static_cast<std::size_t>(
            std::sqrt(static_cast<double>(target)) + 0.5);
        w = std::max<std::size_t>(1, std::min(w, side));
        std::size_t h = (target + w - 1) / w;
        h = std::max<std::size_t>(1, std::min(h, side));
        const auto r0 = static_cast<std::int64_t>(rng.next_below(side));
        const auto c0 = static_cast<std::int64_t>(rng.next_below(side));
        for (std::size_t dr = 0; dr < h; ++dr) {
          for (std::size_t dc = 0; dc < w; ++dc) {
            try_kill(t.at(r0 + static_cast<std::int64_t>(dr),
                          c0 + static_cast<std::int64_t>(dc)));
          }
        }
        break;
      }
      case TraceSpec::RegionShape::kL1Ball: {
        // The metric ball of the torus: every node within wrapped Manhattan
        // distance r of a random center, r chosen as the smallest radius
        // whose lattice ball (2r(r+1)+1 points) covers the target count.
        const metric::Torus2D t = g.space().as_torus();
        const auto side = static_cast<std::size_t>(t.side());
        std::int64_t r = 0;
        while (static_cast<std::size_t>(2 * r * (r + 1) + 1) < target) ++r;
        const auto r0 = static_cast<std::int64_t>(rng.next_below(side));
        const auto c0 = static_cast<std::int64_t>(rng.next_below(side));
        for (std::int64_t dr = -r; dr <= r; ++dr) {
          const std::int64_t reach = r - std::abs(dr);
          for (std::int64_t dc = -reach; dc <= reach; ++dc) {
            try_kill(t.at(r0 + dr, c0 + dc));
          }
        }
        break;
      }
    }
    commit_if_staged(log, start);
    for (const NodeId u : killed) log.revive_node(u);
    commit_if_staged(log, start + gap * 0.5);
  }
  return log;
}

ChurnLog make_adversarial(const graph::OverlayGraph& g, const TraceSpec& spec,
                          util::Rng& rng) {
  static_cast<void>(rng);  // hub ranking is deterministic; kept for API symmetry
  ChurnLog log(g);
  const std::size_t n = g.size();
  const std::size_t wave = std::max<std::size_t>(
      1, std::min(spec.wave_size, n - kAliveFloor));
  // Rank every node once; wave k rotates through the ranking so successive
  // waves decapitate fresh hubs instead of re-killing the same set.
  const auto ranked = high_degree_targets(g, n - kAliveFloor);
  util::require(spec.wave_period > 0.0, "make_trace: wave_period must be > 0");
  std::size_t k = 0;
  for (double t = 0.0; t < spec.duration; t += spec.wave_period, ++k) {
    const std::size_t base = (k * wave) % ranked.size();
    for (std::size_t i = 0; i < wave; ++i) {
      log.kill_node(ranked[(base + i) % ranked.size()]);
    }
    commit_if_staged(log, t);
    for (std::size_t i = 0; i < wave; ++i) {
      log.revive_node(ranked[(base + i) % ranked.size()]);
    }
    commit_if_staged(log, t + spec.wave_period * 0.5);
  }
  return log;
}

ChurnLog make_link_flap(const graph::OverlayGraph& g, const TraceSpec& spec,
                        util::Rng& rng) {
  ChurnLog log(g);
  // All long-link (u, link_index) pairs — short ±1 links never fail (§4.3.3).
  std::vector<std::pair<NodeId, std::uint32_t>> longs;
  for (NodeId u = 0; u < g.size(); ++u) {
    for (std::size_t i = g.short_degree(u); i < g.out_degree(u); ++i) {
      longs.emplace_back(u, static_cast<std::uint32_t>(i));
    }
  }
  if (longs.empty()) return log;
  const auto per_batch = static_cast<std::size_t>(
      spec.flap_fraction * static_cast<double>(longs.size()));
  std::vector<std::pair<NodeId, std::uint32_t>> flapped;
  for (double t = spec.batch_interval; t <= spec.duration;
       t += spec.batch_interval) {
    for (const auto& [u, i] : flapped) log.revive_link(u, i);
    flapped.clear();
    // Draws with replacement; in-batch duplicates normalize away in the log,
    // so a batch flaps *up to* per_batch distinct links.
    for (std::size_t d = 0; d < per_batch; ++d) {
      const auto& [u, i] = longs[rng.next_below(longs.size())];
      log.kill_link(u, i);
      flapped.emplace_back(u, i);
    }
    commit_if_staged(log, t);
  }
  return log;
}

}  // namespace

const char* scenario_name(TraceSpec::Scenario s) noexcept {
  switch (s) {
    case TraceSpec::Scenario::kPoissonChurn:
      return "poisson_churn";
    case TraceSpec::Scenario::kFlashCrowd:
      return "flash_crowd";
    case TraceSpec::Scenario::kRegionalOutage:
      return "regional_outage";
    case TraceSpec::Scenario::kAdversarialWaves:
      return "adversarial_waves";
    case TraceSpec::Scenario::kLinkFlap:
      return "link_flap";
  }
  return "unknown";
}

TraceSpec default_spec(TraceSpec::Scenario s, double duration, std::size_t n) {
  TraceSpec spec;
  spec.scenario = s;
  spec.duration = duration;
  spec.batch_interval = std::max(duration / 200.0, 1e-3);
  // Background node churn: ~1e-4 events per node per ms, so any network size
  // loses (and regains) the same fraction over one trace.
  const double churn = static_cast<double>(n) * 1e-4;
  spec.kill_rate = churn;
  spec.revive_rate = churn;
  switch (s) {
    case TraceSpec::Scenario::kPoissonChurn:
      break;
    case TraceSpec::Scenario::kFlashCrowd:
      spec.kill_rate = churn / 4.0;  // calm background, then the mass exit
      spec.crowd_fraction = 0.25;
      spec.crowd_time = 0.25;
      break;
    case TraceSpec::Scenario::kRegionalOutage:
      spec.region_fraction = 0.1;
      spec.outages = 4;
      break;
    case TraceSpec::Scenario::kAdversarialWaves:
      spec.wave_size = std::max<std::size_t>(8, n / 256);
      spec.wave_period = duration / 8.0;
      break;
    case TraceSpec::Scenario::kLinkFlap:
      spec.flap_fraction = 0.05;
      break;
  }
  return spec;
}

ChurnLog make_trace(const graph::OverlayGraph& g, const TraceSpec& spec,
                    util::Rng& rng) {
  util::require(g.size() > kAliveFloor, "make_trace: graph too small to churn");
  util::require(spec.duration >= 0.0, "make_trace: duration must be >= 0");
  util::require(spec.batch_interval > 0.0,
                "make_trace: batch_interval must be > 0");
  util::require(spec.kill_rate >= 0.0 && spec.revive_rate >= 0.0,
                "make_trace: rates must be >= 0");
  util::require(spec.crowd_fraction >= 0.0 && spec.crowd_fraction <= 1.0,
                "make_trace: crowd_fraction must be in [0,1]");
  util::require(spec.crowd_time >= 0.0 && spec.crowd_time <= 1.0,
                "make_trace: crowd_time must be in [0,1]");
  util::require(spec.region_fraction >= 0.0 && spec.region_fraction <= 1.0,
                "make_trace: region_fraction must be in [0,1]");
  util::require(spec.flap_fraction >= 0.0 && spec.flap_fraction <= 1.0,
                "make_trace: flap_fraction must be in [0,1]");
  switch (spec.scenario) {
    case TraceSpec::Scenario::kPoissonChurn:
      return make_poisson(g, spec, rng);
    case TraceSpec::Scenario::kFlashCrowd:
      return make_flash_crowd(g, spec, rng);
    case TraceSpec::Scenario::kRegionalOutage:
      return make_regional(g, spec, rng);
    case TraceSpec::Scenario::kAdversarialWaves:
      return make_adversarial(g, spec, rng);
    case TraceSpec::Scenario::kLinkFlap:
      return make_link_flap(g, spec, rng);
  }
  util::require(false, "make_trace: unknown scenario");
  return ChurnLog(g);  // unreachable
}

std::vector<graph::NodeId> high_degree_targets(const graph::OverlayGraph& g,
                                               std::size_t k) {
  const auto in = g.in_degrees();
  std::vector<NodeId> ids(g.size());
  std::iota(ids.begin(), ids.end(), NodeId{0});
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k),
                    ids.end(), [&](NodeId a, NodeId b) {
                      return in[a] != in[b] ? in[a] > in[b] : a < b;
                    });
  ids.resize(k);
  return ids;
}

failure::ByzantineSet hub_adversary(const graph::OverlayGraph& g, std::size_t k) {
  return failure::ByzantineSet::of(g, high_degree_targets(g, k));
}

std::vector<failure::ByzantineDelta> make_byzantine_waves(
    const graph::OverlayGraph& g, const ByzantineWaveSpec& spec) {
  util::require(g.size() > kAliveFloor,
                "make_byzantine_waves: graph too small");
  util::require(spec.duration >= 0.0,
                "make_byzantine_waves: duration must be >= 0");
  util::require(spec.wave_period > 0.0,
                "make_byzantine_waves: wave_period must be > 0");
  const std::size_t n = g.size();
  const std::size_t wave =
      std::max<std::size_t>(1, std::min(spec.wave_size, n - kAliveFloor));
  // Same rotation rhythm as kAdversarialWaves (wave k starts at rank
  // k·wave + hub_offset), so a composed trace built from one spec keeps the
  // crash and corruption waves aimed at predictable, disjoint hub tiers.
  const auto ranked = high_degree_targets(g, n - kAliveFloor);
  std::vector<failure::ByzantineDelta> deltas;
  std::size_t k = 0;
  for (double t = 0.0; t < spec.duration; t += spec.wave_period, ++k) {
    failure::ByzantineDelta corrupt;
    corrupt.when = t;
    const std::size_t base = (k * wave + spec.hub_offset) % ranked.size();
    for (std::size_t i = 0; i < wave; ++i) {
      corrupt.corrupts.push_back(ranked[(base + i) % ranked.size()]);
    }
    failure::ByzantineDelta heal;
    heal.when = t + spec.wave_period * 0.5;
    heal.heals = corrupt.corrupts;
    // Every wave heals before the next corrupts (half-period < period), so
    // applying the deltas in order is always normalized: membership returns
    // to empty between waves even when the rotating windows overlap.
    deltas.push_back(std::move(corrupt));
    deltas.push_back(std::move(heal));
  }
  return deltas;
}

}  // namespace p2p::churn
