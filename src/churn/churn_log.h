// The epoch-stamped churn delta log (ROADMAP: "Adaptive failure-view
// deltas").
//
// The paper's fault-tolerance experiments (§4.3.3–§4.3.4, §6) draw one
// failure pattern per trial; sustained-churn studies instead need a *trace* —
// thousands of kill/revive batches — replayed over one built network. A
// ChurnLog records that trace as a sequence of failure::FailureDelta batches,
// one per epoch: epoch e is the liveness state after applying deltas
// [0, e) to the baseline, so valid epochs run 0..size().
//
// Recording normalizes: staged changes that are no-ops against the running
// shadow state (killing the dead, reviving the living, kill+revive of the
// same bit inside one batch) are dropped at stage time, which is what makes
// every committed delta an exact, invertible bit-flip set. seek() then moves
// a live FailureView between any two epochs at O(changed bits) — forward via
// apply, backward via revert — instead of the O(n) from-scratch rebuild that
// materialize() provides as the equivalence/benchmark baseline
// (bench/churn_replay.cpp pins the speedup; tests/churn_log_test.cpp pins
// bit-equivalence).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "failure/failure_model.h"
#include "graph/overlay_graph.h"

namespace p2p::churn {

using failure::FailureDelta;

/// An append-only log of epoch-stamped kill/revive batches over one graph.
class ChurnLog {
 public:
  /// A log whose epoch 0 is `baseline` (copied). Precondition:
  /// baseline.epoch() == 0 — a log records deltas from a fresh state, not
  /// from the middle of another log.
  explicit ChurnLog(const failure::FailureView& baseline);

  /// A log over the all-alive baseline.
  explicit ChurnLog(const graph::OverlayGraph& g)
      : ChurnLog(failure::FailureView::all_alive(g)) {}

  [[nodiscard]] const graph::OverlayGraph& graph() const noexcept {
    return baseline_.graph();
  }

  /// The epoch-0 state.
  [[nodiscard]] const failure::FailureView& baseline() const noexcept {
    return baseline_;
  }

  /// The state after every committed delta plus the staged changes — what
  /// trace generators sample "currently alive" nodes from.
  [[nodiscard]] const failure::FailureView& shadow() const noexcept {
    return shadow_;
  }

  // -- Recording -----------------------------------------------------------
  // Stage changes, then commit them as one atomic epoch batch. Staged no-ops
  // (relative to shadow()) are dropped silently.

  void kill_node(graph::NodeId u);
  void revive_node(graph::NodeId u);
  void kill_link(graph::NodeId u, std::size_t link_index);
  void revive_link(graph::NodeId u, std::size_t link_index);

  [[nodiscard]] bool staged_empty() const noexcept { return staged_.empty(); }
  [[nodiscard]] std::size_t staged_changes() const noexcept {
    return staged_.change_count();
  }

  /// Commits the staged batch (possibly empty — a heartbeat epoch) stamped
  /// at virtual time `when`, and returns the new size(). Commit times must
  /// be non-decreasing.
  std::size_t commit(double when);

  // -- Reading / replay ----------------------------------------------------

  /// Number of committed deltas. Valid epochs are 0..size() inclusive.
  [[nodiscard]] std::size_t size() const noexcept { return deltas_.size(); }
  [[nodiscard]] bool empty() const noexcept { return deltas_.empty(); }

  /// The delta that advances epoch i to epoch i+1. Precondition: i < size().
  [[nodiscard]] const FailureDelta& delta(std::size_t i) const {
    return deltas_[i];
  }

  /// Total bit flips across all committed deltas.
  [[nodiscard]] std::size_t total_changes() const noexcept {
    return total_changes_;
  }

  /// Moves `view` from its current epoch to `target_epoch` by applying or
  /// reverting deltas in order — O(bits changed between the two epochs).
  /// Preconditions: `view` is a view over graph() whose epoch() was produced
  /// by replaying this log (epoch <= size()), and target_epoch <= size().
  void seek(failure::FailureView& view, std::uint64_t target_epoch) const;

  /// From-scratch build of the view at `epoch`: copies the baseline and
  /// applies the full delta prefix — the O(n + prefix) rebuild seek() makes
  /// unnecessary. Kept as the reference for equivalence tests and as the
  /// benchmark baseline. Precondition: epoch <= size().
  [[nodiscard]] failure::FailureView materialize(std::uint64_t epoch) const;

 private:
  /// Link slots recorded in deltas are keyed to the graph layout at log
  /// construction; throws if the graph has structurally changed since.
  void check_generation() const;

  failure::FailureView baseline_;
  /// State after every committed delta (advanced by apply at each commit).
  /// A bit that differs between committed_ and shadow_ is staged in the
  /// current batch — the O(1) test that keeps staging linear in batch size
  /// (the in-batch cancellation erase only runs on a genuine double flip).
  failure::FailureView committed_;
  failure::FailureView shadow_;
  FailureDelta staged_;
  std::vector<FailureDelta> deltas_;
  std::size_t total_changes_ = 0;
  std::uint64_t graph_generation_ = 0;
};

}  // namespace p2p::churn
