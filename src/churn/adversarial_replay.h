// Composed adversarial replay: crash churn AND Byzantine corruption driving
// redundant routing through one discrete-event trace.
//
// churn::Replay (replay.h) plays a ChurnLog against a plain Router: crash
// failures only. This driver composes the full threat model of ROADMAP
// item 2 on top of core::SecureRouter:
//
//  * crash churn   — ChurnLog deltas seek the shared FailureView exactly as
//    in Replay (epoch-stamped, O(changed bits));
//  * Byzantine churn — a ByzantineDelta schedule (churn::make_byzantine_waves
//    aims corrupt/heal waves at in-degree hubs) advances the shared
//    ByzantineSet's epoch cursor on the same sim::EventQueue, so a node can
//    crash, revive, turn coat and heal within one trace;
//  * reputation    — when the SecureRouter carries a ReputationTable, decay
//    epochs fire on the queue at a fixed virtual-time cadence, giving healed
//    hubs a recovery path while the replay is still running.
//
// Between consecutive events the SecureBatchPipeline advances by ticks_per_ms
// ticks per virtual millisecond — one message transmission per tick — so
// deltas of either kind land *between* transmissions and every in-flight walk
// sees them on its next hop (sessions re-read both the view and the set every
// step; a walk standing on a freshly killed node dies where it stands).
//
// Determinism: workload and per-query streams derive from the seed via
// util::substream; the tick/event interleave is a pure function of the two
// delta schedules' timestamps (same-instant events fire in scheduling order:
// crash, then corruption, then decay). A (graph, log, waves, config) tuple
// reproduces bit-for-bit. Each retired SecureRouteResult carries
// completion_epoch AND byzantine_epoch, and the driver timestamps every
// retirement (completion_times()), so delivery can be bucketed against both
// adversarial timelines — the recovery-time measurements in
// bench/adversarial_replay.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "churn/churn_log.h"
#include "core/secure_router.h"
#include "failure/byzantine.h"
#include "failure/failure_model.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"

namespace p2p::churn {

/// Adversarial-driver throughput handles: one counter per event class plus
/// pipeline ticks. Per-walk and per-query outcomes are NOT recorded here —
/// they flow through SecureRouterConfig::telemetry (core/route_telemetry.h)
/// on the router the replay drives.
struct AdversarialReplayMetrics {
  telemetry::Counter churn_deltas;
  telemetry::Counter byzantine_deltas;
  telemetry::Counter decays;
  telemetry::Counter ticks;

  static AdversarialReplayMetrics create(
      telemetry::Registry& reg, const std::string& prefix = "adversarial") {
    AdversarialReplayMetrics m;
    m.churn_deltas = reg.counter(prefix + ".churn_deltas");
    m.byzantine_deltas = reg.counter(prefix + ".byzantine_deltas");
    m.decays = reg.counter(prefix + ".decays");
    m.ticks = reg.counter(prefix + ".ticks");
    return m;
  }
};

/// What AdversarialReplayConfig::telemetry points at. The replay driver is
/// single-threaded, so one recorder (one shard) serves the whole run.
struct AdversarialReplayTelemetry {
  telemetry::Recorder recorder;
  AdversarialReplayMetrics metrics;
};

struct AdversarialReplayConfig {
  /// Pipeline ticks (message transmissions) per virtual millisecond.
  double ticks_per_ms = 256.0;
  /// Total searches routed over the run (src/dst drawn live at epoch 0).
  std::size_t queries = 4096;
  /// SecureBatchPipeline width (sessions in flight).
  std::size_t width = 32;
  /// Master seed: query workload and per-query routing streams.
  std::uint64_t seed = 1;
  /// Virtual ms between ReputationTable::decay_epoch calls; 0 disables the
  /// decay schedule (and is the only valid value when the router carries no
  /// reputation table — decay without a table is a config error).
  double decay_interval_ms = 50.0;
  /// Optional driver telemetry: event/tick throughput counters, recorded per
  /// event and per advance batch (never per hop). Null = off. Recording
  /// never perturbs replay determinism.
  AdversarialReplayTelemetry* telemetry = nullptr;
};

struct AdversarialReplayStats {
  std::size_t churn_deltas_applied = 0;
  std::size_t byzantine_deltas_applied = 0;
  std::size_t reputation_decays = 0;
  std::size_t ticks = 0;
  std::size_t routed = 0;     ///< searches retired
  std::size_t delivered = 0;  ///< subset that reached the target
  /// Redundancy cost numerator: messages across all walks of all searches.
  std::size_t total_messages = 0;
  std::size_t walks_launched = 0;
  std::size_t walks_died = 0;
  std::size_t walks_stuck = 0;
  std::size_t walks_ttl_expired = 0;
  std::size_t escalations = 0;
  std::uint64_t final_epoch = 0;            ///< FailureView epoch after the run
  std::uint64_t final_byzantine_epoch = 0;  ///< ByzantineSet epoch after the run
  double sim_end = 0.0;  ///< virtual time of the last applied event

  [[nodiscard]] double success_rate() const noexcept {
    return routed == 0 ? 0.0
                       : static_cast<double>(delivered) / static_cast<double>(routed);
  }
  /// Messages spent per delivered query — the redundancy cost the paper's
  /// plain greedy never pays (infinite when nothing was delivered).
  [[nodiscard]] double messages_per_delivery() const noexcept {
    return delivered == 0 ? 0.0
                          : static_cast<double>(total_messages) /
                                static_cast<double>(delivered);
  }
};

/// One composed replay run binding a SecureRouter, a crash-delta log, a
/// Byzantine-delta schedule, and the (view, set) pair the router reads.
///
/// `view` must be the FailureView `router` was constructed over at epoch 0
/// of `log`; `byzantine` must be the very set the router consults, at
/// epoch 0. Both are mutated in place as deltas fire. All referenced objects
/// must outlive the replay.
class AdversarialReplay {
 public:
  AdversarialReplay(const core::SecureRouter& router, const ChurnLog& log,
                    std::span<const failure::ByzantineDelta> waves,
                    failure::FailureView& view, failure::ByzantineSet& byzantine,
                    sim::EventQueue& queue, AdversarialReplayConfig config = {});

  /// Schedules both delta streams (plus the decay cadence) on the queue,
  /// runs it to exhaustion advancing the pipeline between events, drains the
  /// remaining searches, and returns aggregate stats. Single-shot: construct
  /// a fresh AdversarialReplay (and reset the queue) for another run.
  AdversarialReplayStats run();

  /// Per-query results, valid after run(). results()[i] answers queries()[i].
  [[nodiscard]] std::span<const core::SecureRouteResult> results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::span<const core::Query> queries() const noexcept {
    return queries_;
  }
  /// Virtual completion time (ms from run start) of each query — the
  /// windowed delivery / recovery-time axis. Valid after run().
  [[nodiscard]] std::span<const double> completion_times() const noexcept {
    return completion_ms_;
  }

 private:
  /// Advances the pipeline to the tick budget implied by virtual time `now`,
  /// timestamping each retirement.
  void advance_to(double now);
  void tick_once();

  const core::SecureRouter* router_;
  const ChurnLog* log_;
  std::span<const failure::ByzantineDelta> waves_;
  failure::FailureView* view_;
  failure::ByzantineSet* byzantine_;
  sim::EventQueue* queue_;
  AdversarialReplayConfig config_;
  std::vector<core::Query> queries_;
  std::vector<core::SecureRouteResult> results_;
  std::vector<double> completion_ms_;
  core::SecureBatchPipeline pipeline_;
  double start_time_ = 0.0;
  std::size_t ticks_done_ = 0;
  std::size_t retirements_seen_ = 0;
  bool pipeline_live_ = true;
  AdversarialReplayStats stats_;
};

}  // namespace p2p::churn
