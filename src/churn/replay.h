// Trace-driven discrete-event churn replay: millions of searches routed
// through a continuously mutating FailureView.
//
// Replay merges a ChurnLog's epoch batches with the discrete-event core
// (sim::EventQueue) and a software-pipelined search load (core::BatchPipeline,
// PR 2): every delta is scheduled at its virtual timestamp, and between
// consecutive events the pipeline advances by ticks_per_ms ticks per virtual
// millisecond — one message transmission per tick, exactly the granularity
// RouteSession exposes — so deltas land *between* transmissions and in-flight
// searches see the mutation on their very next hop (sessions re-read the view
// every step). After the last delta the pipeline drains to completion.
//
// Determinism: the query workload and every per-query routing stream derive
// from ReplayConfig::seed via util::substream, and the tick/event interleave
// is a pure function of the log's timestamps, so a (graph, log, config)
// triple reproduces results bit-for-bit. Each retired RouteResult carries
// completion_epoch — the view epoch at which the search terminated — so
// outcomes can be bucketed against the churn timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "churn/churn_log.h"
#include "core/router.h"
#include "failure/failure_model.h"
#include "sim/event_queue.h"
#include "telemetry/metric_registry.h"

namespace p2p::churn {

/// Replay-driver throughput handles: deltas applied and pipeline ticks
/// advanced. Per-query route outcomes are NOT recorded here — they flow
/// through ReplayConfig::batch.telemetry (core/route_telemetry.h), the same
/// sink every BatchPipeline uses.
struct ReplayMetrics {
  telemetry::Counter deltas;
  telemetry::Counter ticks;

  static ReplayMetrics create(telemetry::Registry& reg,
                              const std::string& prefix = "replay") {
    ReplayMetrics m;
    m.deltas = reg.counter(prefix + ".deltas");
    m.ticks = reg.counter(prefix + ".ticks");
    return m;
  }
};

/// What ReplayConfig::telemetry points at. The replay driver is
/// single-threaded, so one recorder (one shard) serves the whole run.
struct ReplayTelemetry {
  telemetry::Recorder recorder;
  ReplayMetrics metrics;
};

struct ReplayConfig {
  /// Pipeline ticks (message transmissions) per virtual millisecond.
  double ticks_per_ms = 256.0;
  /// Total searches routed over the run (src/dst drawn live at epoch 0).
  std::size_t queries = 4096;
  core::BatchConfig batch;
  /// Master seed: query workload and per-query routing streams.
  std::uint64_t seed = 1;
  /// Optional driver telemetry: delta/tick throughput counters, recorded per
  /// event and per advance batch (never per hop). Null = off. Recording
  /// never perturbs replay determinism.
  ReplayTelemetry* telemetry = nullptr;
};

struct ReplayStats {
  std::size_t deltas_applied = 0;
  std::size_t ticks = 0;
  std::size_t routed = 0;     ///< searches retired
  std::size_t delivered = 0;  ///< subset that reached the target
  double mean_hops_delivered = 0.0;
  std::uint64_t final_epoch = 0;
  double sim_end = 0.0;  ///< virtual time of the last delta

  [[nodiscard]] double success_rate() const noexcept {
    return routed == 0 ? 0.0
                       : static_cast<double>(delivered) / static_cast<double>(routed);
  }
};

/// One replay run binding a router, a log, and the view the router reads.
///
/// `view` must be the FailureView `router` was constructed over, positioned
/// at epoch 0 of `log`; Replay mutates it in place as deltas fire. The
/// router, log, view and queue must outlive the Replay.
class Replay {
 public:
  Replay(const core::Router& router, const ChurnLog& log,
         failure::FailureView& view, sim::EventQueue& queue,
         ReplayConfig config = {});

  /// Schedules every delta on the queue, runs it to exhaustion (advancing
  /// the pipeline between events), drains the remaining searches, and
  /// returns the aggregate stats. Single-shot: construct a fresh Replay (and
  /// reset the queue) for another run.
  ReplayStats run();

  /// Per-query results, valid after run(). results()[i] corresponds to
  /// queries()[i].
  [[nodiscard]] std::span<const core::RouteResult> results() const noexcept {
    return results_;
  }
  [[nodiscard]] std::span<const core::Query> queries() const noexcept {
    return queries_;
  }

 private:
  /// Advances the pipeline to the tick budget implied by virtual time `now`.
  void advance_to(double now);

  const ChurnLog* log_;
  failure::FailureView* view_;
  sim::EventQueue* queue_;
  ReplayConfig config_;
  std::vector<core::Query> queries_;
  std::vector<core::RouteResult> results_;
  core::BatchPipeline pipeline_;
  double start_time_ = 0.0;
  std::size_t ticks_done_ = 0;
  bool pipeline_live_ = true;
  ReplayStats stats_;
};

}  // namespace p2p::churn
