#include "churn/replay.h"

#include <algorithm>

#include "sim/workload.h"
#include "util/require.h"
#include "util/rng.h"

namespace p2p::churn {

namespace {

/// The fixed query workload: `count` live src/dst pairs drawn at epoch 0
/// from a private substream of `seed`.
std::vector<core::Query> make_queries(const failure::FailureView& view,
                                      std::size_t count, std::uint64_t seed) {
  util::require(count == 0 || view.alive_count() >= 2,
                "Replay: need two live nodes to generate queries");
  std::vector<core::Query> queries(count);
  util::Rng rng = util::substream(seed, 0x9e37'79b9'7f4a'7c15ULL);
  for (auto& q : queries) {
    const auto [src, dst] = sim::random_live_pair(view, rng);
    q = {src, view.graph().position(dst)};
  }
  return queries;
}

}  // namespace

Replay::Replay(const core::Router& router, const ChurnLog& log,
               failure::FailureView& view, sim::EventQueue& queue,
               ReplayConfig config)
    : log_(&log),
      view_(&view),
      queue_(&queue),
      config_(config),
      queries_(make_queries(view, config.queries, config.seed)),
      results_(queries_.size()),
      pipeline_(router, queries_, results_,
                util::splitmix64(config.seed ^ 0xc4ce'b9fe'1a85'ec53ULL),
                config.batch) {
  util::require(&router.view() == &view,
                "Replay: router must be built over the replayed view");
  util::require(&view.graph() == &log.graph(),
                "Replay: view and log must share one graph");
  util::require(view.epoch() == 0,
                "Replay: view must start at epoch 0 (seek it back before reuse)");
  util::require(config.ticks_per_ms > 0.0, "Replay: ticks_per_ms must be > 0");
}

void Replay::advance_to(double now) {
  const double elapsed = now - start_time_;
  const auto target =
      static_cast<std::size_t>(elapsed * config_.ticks_per_ms);
  const std::size_t before = stats_.ticks;
  while (pipeline_live_ && ticks_done_ < target) {
    pipeline_live_ = pipeline_.tick();
    ++ticks_done_;
    ++stats_.ticks;
  }
  // Once the workload drains, stop accounting tick debt: later deltas apply
  // back-to-back (the deltas/sec regime the churn bench measures).
  if (!pipeline_live_) ticks_done_ = std::max(ticks_done_, target);
  if (config_.telemetry != nullptr && stats_.ticks != before) {
    config_.telemetry->recorder.add(config_.telemetry->metrics.ticks,
                                    stats_.ticks - before);
  }
}

ReplayStats Replay::run() {
  start_time_ = queue_->now();
  stats_ = ReplayStats{};
  for (std::size_t e = 0; e < log_->size(); ++e) {
    const double when = start_time_ + log_->delta(e).when;
    queue_->schedule(std::max(when, queue_->now()), [this, e] {
      // Catch the pipeline up to this instant, then land the batch between
      // two transmissions: every in-flight search sees it on its next hop.
      advance_to(queue_->now());
      log_->seek(*view_, e + 1);
      ++stats_.deltas_applied;
      if (config_.telemetry != nullptr)
        config_.telemetry->recorder.add(config_.telemetry->metrics.deltas);
      stats_.sim_end = queue_->now() - start_time_;
    });
  }
  queue_->run();
  // The trace is exhausted; drain the remaining in-flight searches against
  // the final view.
  const std::size_t drain_start = stats_.ticks;
  while (pipeline_live_) {
    pipeline_live_ = pipeline_.tick();
    ++stats_.ticks;
  }
  if (config_.telemetry != nullptr && stats_.ticks != drain_start) {
    config_.telemetry->recorder.add(config_.telemetry->metrics.ticks,
                                    stats_.ticks - drain_start);
  }
  stats_.routed = pipeline_.retired();
  stats_.final_epoch = view_->epoch();
  double hops = 0.0;
  for (const auto& res : results_) {
    if (!res.delivered()) continue;
    ++stats_.delivered;
    hops += static_cast<double>(res.hops);
  }
  stats_.mean_hops_delivered =
      stats_.delivered == 0 ? 0.0 : hops / static_cast<double>(stats_.delivered);
  return stats_;
}

}  // namespace p2p::churn
