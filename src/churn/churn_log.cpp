#include "churn/churn_log.h"

#include <algorithm>

#include "util/require.h"

namespace p2p::churn {

namespace {

/// Removes the first occurrence of `value` from `batch`, returning whether
/// one was found — the in-batch cancellation path (kill then revive of the
/// same bit inside one staged batch nets out to nothing).
template <typename T>
bool erase_staged(std::vector<T>& batch, T value) {
  const auto it = std::find(batch.begin(), batch.end(), value);
  if (it == batch.end()) return false;
  batch.erase(it);
  return true;
}

}  // namespace

ChurnLog::ChurnLog(const failure::FailureView& baseline)
    : baseline_(baseline),
      committed_(baseline),
      shadow_(baseline),
      graph_generation_(baseline.graph().structural_generation()) {
  util::require(baseline.epoch() == 0,
                "ChurnLog: baseline must be an epoch-0 view");
}

void ChurnLog::check_generation() const {
  util::require(graph().structural_generation() == graph_generation_,
                "ChurnLog: graph changed structurally; the log's link slots "
                "are stale");
}

void ChurnLog::kill_node(graph::NodeId u) {
  util::require_in_range(u < graph().size(),
                         "ChurnLog::kill_node: node out of range");
  if (!shadow_.node_alive(u)) return;  // no-op against the running state
  shadow_.kill_node(u);
  // Alive in the shadow but dead at the last commit means this batch staged
  // a revive — cancel it; otherwise this kill is a fresh change.
  if (committed_.node_alive(u)) {
    staged_.node_kills.push_back(u);
  } else {
    erase_staged(staged_.node_revives, u);
  }
}

void ChurnLog::revive_node(graph::NodeId u) {
  util::require_in_range(u < graph().size(),
                         "ChurnLog::revive_node: node out of range");
  if (shadow_.node_alive(u)) return;
  shadow_.revive_node(u);
  if (!committed_.node_alive(u)) {
    staged_.node_revives.push_back(u);
  } else {
    erase_staged(staged_.node_kills, u);
  }
}

void ChurnLog::kill_link(graph::NodeId u, std::size_t link_index) {
  check_generation();
  util::require_in_range(u < graph().size(),
                         "ChurnLog::kill_link: node out of range");
  util::require_in_range(link_index < graph().out_degree(u),
                         "ChurnLog::kill_link: link index out of range");
  const auto slot =
      static_cast<std::uint32_t>(graph().edge_base(u) + link_index);
  if (!shadow_.link_alive_at(slot)) return;
  shadow_.kill_link_slot(slot);
  if (committed_.link_alive_at(slot)) {
    staged_.link_kills.push_back(slot);
  } else {
    erase_staged(staged_.link_revives, slot);
  }
}

void ChurnLog::revive_link(graph::NodeId u, std::size_t link_index) {
  check_generation();
  util::require_in_range(u < graph().size(),
                         "ChurnLog::revive_link: node out of range");
  util::require_in_range(link_index < graph().out_degree(u),
                         "ChurnLog::revive_link: link index out of range");
  const auto slot =
      static_cast<std::uint32_t>(graph().edge_base(u) + link_index);
  if (shadow_.link_alive_at(slot)) return;
  shadow_.revive_link_slot(slot);
  if (!committed_.link_alive_at(slot)) {
    staged_.link_revives.push_back(slot);
  } else {
    erase_staged(staged_.link_kills, slot);
  }
}

std::size_t ChurnLog::commit(double when) {
  util::require(deltas_.empty() || when >= deltas_.back().when,
                "ChurnLog::commit: timestamps must be non-decreasing");
  staged_.when = when;
  total_changes_ += staged_.change_count();
  committed_.apply(staged_);  // O(changes); also re-checks normalization
  deltas_.push_back(std::move(staged_));
  staged_ = FailureDelta{};
  return deltas_.size();
}

void ChurnLog::seek(failure::FailureView& view, std::uint64_t target_epoch) const {
  check_generation();
  util::require(&view.graph() == &graph(),
                "ChurnLog::seek: view belongs to a different graph");
  util::require(target_epoch <= deltas_.size(),
                "ChurnLog::seek: target epoch beyond the log");
  util::require(view.epoch() <= deltas_.size(),
                "ChurnLog::seek: view epoch beyond the log (wrong log?)");
  while (view.epoch() < target_epoch) view.apply(deltas_[view.epoch()]);
  while (view.epoch() > target_epoch) view.revert(deltas_[view.epoch() - 1]);
}

failure::FailureView ChurnLog::materialize(std::uint64_t epoch) const {
  check_generation();
  util::require(epoch <= deltas_.size(),
                "ChurnLog::materialize: epoch beyond the log");
  failure::FailureView view = baseline_;
  for (std::uint64_t e = 0; e < epoch; ++e) view.apply(deltas_[e]);
  return view;
}

}  // namespace p2p::churn
