// Churn-trace generators: diverse failure dynamics compiled into a ChurnLog.
//
// The paper evaluates static failure draws; the DHT measurement literature
// (Kong et al., PAPERS.md) and the robust-routing line (Lenzen–Medina)
// evaluate under *sustained* dynamics. Each generator here emits a different
// dynamic regime over one frozen overlay:
//
//  * kPoissonChurn     — memoryless join/leave: alive nodes die at kill_rate,
//    dead nodes revive at revive_rate (per ms, whole network), batched into
//    one delta per batch_interval.
//  * kFlashCrowd       — a mass departure: normal Poisson churn until
//    crowd_time, then crowd_fraction of the live nodes leave in ONE delta,
//    then departed nodes trickle back at revive_rate.
//  * kRegionalOutage   — correlated failures over the metric space: `outages`
//    times, a geographically contiguous region of region_fraction of the
//    nodes dies in one delta and revives midway to the next outage
//    (positions are correlated, exactly the case independent-failure
//    analysis misses). The damage shape follows the metric: a contiguous id
//    arc on the line/ring, a 2-D rectangle (or L1 ball) of lattice
//    coordinates on the torus — a flattened-id arc on a torus would be a
//    thin row stripe, not a region (TraceSpec::region_shape overrides).
//  * kAdversarialWaves — targeted attack: waves at wave_period kill the
//    wave_size highest in-degree nodes (the CSR hubs greedy routing leans
//    on — on the torus, the Kleinberg in-degree hubs), reviving them at
//    half-period; wave k rotates through the ranked hub list so successive
//    waves hit fresh hubs.
//  * kLinkFlap         — link-level churn: every batch_interval, revive the
//    previously flapped long links and kill a fresh random flap_fraction of
//    the long-link slots (±1 short links never fail, per §4.3.3).
//
// All generators draw exclusively from the caller's Rng, so a (graph, spec,
// seed) triple identifies a trace bit-for-bit. A floor of two live nodes is
// maintained throughout (a routable core, as sim::make_churn_trace does).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "churn/churn_log.h"
#include "failure/byzantine.h"
#include "graph/overlay_graph.h"
#include "util/rng.h"

namespace p2p::churn {

/// Parameters of one generated trace. Fields are grouped by the scenario
/// that reads them; unrelated fields are ignored.
struct TraceSpec {
  enum class Scenario {
    kPoissonChurn,
    kFlashCrowd,
    kRegionalOutage,
    kAdversarialWaves,
    kLinkFlap,
  };
  Scenario scenario = Scenario::kPoissonChurn;

  /// Trace length in virtual ms; deltas are committed every batch_interval.
  double duration = 1000.0;
  double batch_interval = 1.0;

  // kPoissonChurn / kFlashCrowd background churn.
  double kill_rate = 0.5;    ///< node deaths per ms across the network
  double revive_rate = 0.5;  ///< dead-node revivals per ms across the network

  // kFlashCrowd.
  double crowd_fraction = 0.25;  ///< fraction of live nodes departing at once
  double crowd_time = 0.25;      ///< departure instant, as a fraction of duration

  // kRegionalOutage.
  double region_fraction = 0.1;  ///< contiguous fraction of nodes per outage
  std::size_t outages = 4;
  /// Damage footprint of one outage. kAuto picks the geographically honest
  /// shape for the space: an id arc on the line/ring, a rectangle of lattice
  /// coordinates on the torus. kRect / kL1Ball are torus-only (make_trace
  /// throws on a 1-D space); kArc is valid anywhere (on a torus it is the
  /// flattened-id row stripe the 2-D shapes exist to replace).
  enum class RegionShape { kAuto, kArc, kRect, kL1Ball };
  RegionShape region_shape = RegionShape::kAuto;

  // kAdversarialWaves.
  std::size_t wave_size = 64;  ///< hubs killed per wave
  double wave_period = 100.0;  ///< ms between wave starts (revive at half)

  // kLinkFlap.
  double flap_fraction = 0.05;  ///< fraction of long links flapped per batch
};

/// Human-readable scenario name (tables, logs).
[[nodiscard]] const char* scenario_name(TraceSpec::Scenario s) noexcept;

/// All five dynamic regimes in declaration order — the sweep set for drivers
/// that exercise every regime (bench/object_availability, examples).
inline constexpr std::array<TraceSpec::Scenario, 5> kAllScenarios = {
    TraceSpec::Scenario::kPoissonChurn,   TraceSpec::Scenario::kFlashCrowd,
    TraceSpec::Scenario::kRegionalOutage, TraceSpec::Scenario::kAdversarialWaves,
    TraceSpec::Scenario::kLinkFlap};

/// A moderate default spec for scenario `s` over an n-node overlay, scaled
/// to `duration` virtual ms — the shared starting point for drivers sweeping
/// every regime (background node-churn rates scale with n so a trace damages
/// a comparable *fraction* of any network; callers override fields freely).
[[nodiscard]] TraceSpec default_spec(TraceSpec::Scenario s, double duration,
                                     std::size_t n);

/// Generates a trace over the all-alive baseline of `g` per `spec`.
[[nodiscard]] ChurnLog make_trace(const graph::OverlayGraph& g,
                                  const TraceSpec& spec, util::Rng& rng);

/// The `k` nodes with the highest in-degree, descending (ties broken by
/// lower id) — the hub set adversarial waves target. O(links + n log k).
[[nodiscard]] std::vector<graph::NodeId> high_degree_targets(
    const graph::OverlayGraph& g, std::size_t k);

/// The same hub set as a Byzantine adversary (failure/byzantine.h): nodes
/// that would be killed by the first adversarial wave instead stay up and
/// misbehave — links the crash-churn and Byzantine experiments to the same
/// targeting logic.
[[nodiscard]] failure::ByzantineSet hub_adversary(const graph::OverlayGraph& g,
                                                  std::size_t k);

/// Schedule of a time-varying hub adversary: corrupt/heal waves mirroring
/// kAdversarialWaves' kill/revive rhythm, but emitted as ByzantineDeltas for
/// ByzantineSet::apply — the Byzantine half of a composed adversarial
/// replay (crash waves through the ChurnLog, corruption waves through this).
struct ByzantineWaveSpec {
  /// Schedule length in virtual ms.
  double duration = 1000.0;
  /// ms between wave starts; each wave heals at half-period.
  double wave_period = 100.0;
  /// Hubs corrupted per wave.
  std::size_t wave_size = 64;
  /// Rotation offset into the in-degree hub ranking for wave 0. Crash waves
  /// start at rank 0; an offset lets a composed trace aim corruption at the
  /// *next* tier of hubs so the two adversaries hit disjoint targets (both
  /// rotate forward by wave_size per wave, so equal offsets stay aligned).
  std::size_t hub_offset = 0;
};

/// Generates the corrupt/heal wave schedule over `g`'s in-degree hub
/// ranking, ordered by ByzantineDelta::when (corrupt wave k at
/// k·wave_period, matching heal at k·wave_period + wave_period/2).
/// Deterministic — hub ranking needs no randomness. Apply against a set at
/// epoch 0 whose membership is empty (ByzantineSet::none).
[[nodiscard]] std::vector<failure::ByzantineDelta> make_byzantine_waves(
    const graph::OverlayGraph& g, const ByzantineWaveSpec& spec);

}  // namespace p2p::churn
