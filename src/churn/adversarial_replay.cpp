#include "churn/adversarial_replay.h"

#include <algorithm>

#include "failure/reputation.h"
#include "sim/workload.h"
#include "util/require.h"
#include "util/rng.h"

namespace p2p::churn {

namespace {

/// The fixed query workload: `count` live src/dst pairs drawn at epoch 0
/// from a private substream of `seed` — the same derivation as churn::Replay,
/// so a crash-only AdversarialReplay routes the identical workload.
std::vector<core::Query> make_queries(const failure::FailureView& view,
                                      std::size_t count, std::uint64_t seed) {
  util::require(count == 0 || view.alive_count() >= 2,
                "AdversarialReplay: need two live nodes to generate queries");
  std::vector<core::Query> queries(count);
  util::Rng rng = util::substream(seed, 0x9e37'79b9'7f4a'7c15ULL);
  for (auto& q : queries) {
    const auto [src, dst] = sim::random_live_pair(view, rng);
    q = {src, view.graph().position(dst)};
  }
  return queries;
}

}  // namespace

AdversarialReplay::AdversarialReplay(const core::SecureRouter& router,
                                     const ChurnLog& log,
                                     std::span<const failure::ByzantineDelta> waves,
                                     failure::FailureView& view,
                                     failure::ByzantineSet& byzantine,
                                     sim::EventQueue& queue,
                                     AdversarialReplayConfig config)
    : router_(&router),
      log_(&log),
      waves_(waves),
      view_(&view),
      byzantine_(&byzantine),
      queue_(&queue),
      config_(config),
      queries_(make_queries(view, config.queries, config.seed)),
      results_(queries_.size()),
      completion_ms_(queries_.size(), -1.0),
      pipeline_(router, queries_, results_,
                util::splitmix64(config.seed ^ 0xc4ce'b9fe'1a85'ec53ULL),
                config.width) {
  util::require(&router.view() == &view,
                "AdversarialReplay: router must be built over the replayed view");
  util::require(&router.byzantine() == &byzantine,
                "AdversarialReplay: router must consult the replayed Byzantine set");
  util::require(&view.graph() == &log.graph(),
                "AdversarialReplay: view and log must share one graph");
  util::require(&byzantine.graph() == &view.graph(),
                "AdversarialReplay: Byzantine set and view must share one graph");
  util::require(view.epoch() == 0,
                "AdversarialReplay: view must start at epoch 0 (seek it back "
                "before reuse)");
  util::require(byzantine.epoch() == 0,
                "AdversarialReplay: Byzantine set must start at epoch 0");
  util::require(config.ticks_per_ms > 0.0,
                "AdversarialReplay: ticks_per_ms must be > 0");
  util::require(config.decay_interval_ms >= 0.0,
                "AdversarialReplay: decay_interval_ms must be >= 0");
  util::require(config.decay_interval_ms == 0.0 || router.reputation() != nullptr,
                "AdversarialReplay: decay schedule needs a reputation table");
  for (std::size_t i = 1; i < waves_.size(); ++i) {
    util::require(waves_[i - 1].when <= waves_[i].when,
                  "AdversarialReplay: Byzantine deltas must be time-ordered");
  }
}

void AdversarialReplay::tick_once() {
  const std::size_t before = pipeline_.retired();
  pipeline_live_ = pipeline_.tick();
  ++ticks_done_;
  ++stats_.ticks;
  if (pipeline_.retired() != before) {
    // At most one search retires per tick; stamp it with the virtual time of
    // this transmission (ticks are the clock between events, so the tick
    // index *is* the time).
    completion_ms_[pipeline_.last_retired_query()] =
        static_cast<double>(ticks_done_) / config_.ticks_per_ms;
    ++retirements_seen_;
  }
}

void AdversarialReplay::advance_to(double now) {
  const double elapsed = now - start_time_;
  const auto target = static_cast<std::size_t>(elapsed * config_.ticks_per_ms);
  const std::size_t before = stats_.ticks;
  while (pipeline_live_ && ticks_done_ < target) tick_once();
  // Once the workload drains, stop accounting tick debt: later deltas apply
  // back-to-back (same rule as churn::Replay).
  if (!pipeline_live_) ticks_done_ = std::max(ticks_done_, target);
  if (config_.telemetry != nullptr && stats_.ticks != before) {
    config_.telemetry->recorder.add(config_.telemetry->metrics.ticks,
                                    stats_.ticks - before);
  }
}

AdversarialReplayStats AdversarialReplay::run() {
  start_time_ = queue_->now();
  stats_ = AdversarialReplayStats{};
  // Scheduling order fixes the same-instant event order: crash deltas first,
  // then corruption deltas, then reputation decay (EventQueue breaks time
  // ties by schedule sequence).
  double horizon = 0.0;
  for (std::size_t e = 0; e < log_->size(); ++e) {
    const double when = start_time_ + log_->delta(e).when;
    horizon = std::max(horizon, log_->delta(e).when);
    queue_->schedule(std::max(when, queue_->now()), [this, e] {
      advance_to(queue_->now());
      log_->seek(*view_, e + 1);
      ++stats_.churn_deltas_applied;
      if (config_.telemetry != nullptr)
        config_.telemetry->recorder.add(config_.telemetry->metrics.churn_deltas);
      stats_.sim_end = queue_->now() - start_time_;
    });
  }
  for (std::size_t i = 0; i < waves_.size(); ++i) {
    const double when = start_time_ + waves_[i].when;
    horizon = std::max(horizon, waves_[i].when);
    queue_->schedule(std::max(when, queue_->now()), [this, i] {
      advance_to(queue_->now());
      byzantine_->apply(waves_[i]);
      ++stats_.byzantine_deltas_applied;
      if (config_.telemetry != nullptr)
        config_.telemetry->recorder.add(
            config_.telemetry->metrics.byzantine_deltas);
      stats_.sim_end = queue_->now() - start_time_;
    });
  }
  if (config_.decay_interval_ms > 0.0) {
    failure::ReputationTable* rep = router_->reputation();
    for (double t = config_.decay_interval_ms; t <= horizon;
         t += config_.decay_interval_ms) {
      queue_->schedule(start_time_ + t, [this, rep] {
        advance_to(queue_->now());
        rep->decay_epoch();
        ++stats_.reputation_decays;
        if (config_.telemetry != nullptr)
          config_.telemetry->recorder.add(config_.telemetry->metrics.decays);
      });
    }
  }
  queue_->run();
  // Both adversarial schedules are exhausted; drain the remaining in-flight
  // searches against the final view/set.
  const std::size_t drain_start = stats_.ticks;
  while (pipeline_live_) tick_once();
  if (config_.telemetry != nullptr && stats_.ticks != drain_start) {
    config_.telemetry->recorder.add(config_.telemetry->metrics.ticks,
                                    stats_.ticks - drain_start);
  }
  stats_.routed = pipeline_.retired();
  stats_.final_epoch = view_->epoch();
  stats_.final_byzantine_epoch = byzantine_->epoch();
  for (const auto& res : results_) {
    if (res.delivered) ++stats_.delivered;
    stats_.total_messages += res.total_messages;
    stats_.walks_launched += res.walks_launched;
    stats_.walks_died += res.walks_died;
    stats_.walks_stuck += res.walks_stuck;
    stats_.walks_ttl_expired += res.walks_ttl_expired;
    stats_.escalations += res.escalations;
  }
  return stats_;
}

}  // namespace p2p::churn
