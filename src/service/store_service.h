// Multi-threaded quorum-store frontend over epoch-published FailureView
// snapshots — the object-store sibling of service/routing_service.h: many
// workers drain one client-op stream against a shared QuorumStore while a
// single churn writer advances epochs through a ViewPublisher.
//
// Hand-off is the same stripe-claiming pattern RoutingService uses: the op
// span is cut into fixed stripes, workers claim stripes with one atomic
// fetch-add, and per claimed stripe a worker pins the latest snapshot,
// builds a worker-local core::Router over the pinned immutable view, and
// runs QuorumStore::run_batch for the stripe (placement, routed sub-queries,
// failover and read-repair all bind to that one snapshot — a whole quorum
// operation observes a single consistent membership). Results land in
// disjoint slots of the caller's results span.
//
// Determinism: the stripe grid is a pure function of (ops.size(), stripe),
// and stripe s always runs run_batch with seed stripe_seed_base(seed, s) —
// identical to RoutingService's contract. With the writer idle and distinct
// keys across stripes, every OpResult is bit-identical across any worker
// count (tests/store_service_test.cpp pins this). Concurrent same-key
// writes from different stripes are merged by max version (convergent, but
// which version wins a seq tie is scheduling-dependent — same as any
// last-writer-wins register).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "core/router.h"
#include "service/view_publisher.h"
#include "store/quorum_store.h"
#include "store/store_telemetry.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace p2p::service {

struct StoreServiceConfig {
  /// Worker threads. 0 resolves P2P_THREADS, then hardware concurrency.
  std::size_t workers = 0;
  /// Ops per claimed stripe (one snapshot pin per stripe).
  std::size_t stripe = 256;
  /// Routing behaviour of replica sub-queries.
  core::RouterConfig router;
  std::uint64_t seed = 1;
  /// Optional telemetry: worker w records store metrics through registry
  /// shard w % shard_count(). Null = off.
  telemetry::Registry* registry = nullptr;
  /// Handles used when `registry` is set (create via StoreMetrics::create
  /// on the same registry).
  store::StoreMetrics metrics;
};

/// Aggregate outcome of one run_all() call.
struct StoreServiceStats {
  std::size_t ops = 0;        ///< requested
  std::size_t completed = 0;  ///< executed — the prefix [0, completed)
  std::size_t ok = 0;         ///< quorum reached among completed
  std::size_t stripes = 0;
  /// Snapshot churn-epoch range the stripes executed against.
  std::uint64_t min_epoch = 0;
  std::uint64_t max_epoch = 0;

  [[nodiscard]] double ok_fraction() const noexcept {
    return completed == 0
               ? 0.0
               : static_cast<double>(ok) / static_cast<double>(completed);
  }
};

/// The op frontend: W pool workers executing quorum ops against the latest
/// published snapshot.
class StoreService {
 public:
  /// `publisher` and `store` must outlive the service, be over the same
  /// graph, and the publisher must have reader capacity for worker_count()
  /// readers. Throws std::invalid_argument on config/graph mismatches.
  StoreService(ViewPublisher& publisher, store::QuorumStore& store,
               StoreServiceConfig config = {});

  /// Synchronous by contract — no job in flight at destruction.
  ~StoreService();

  StoreService(const StoreService&) = delete;
  StoreService& operator=(const StoreService&) = delete;

  /// Executes ops[i] into results[i] across the worker pool; blocks until
  /// every stripe is drained (or request_stop() cut the run short). One call
  /// at a time; results.size() >= ops.size().
  StoreServiceStats run_all(std::span<const store::Op> ops,
                            std::span<store::OpResult> results);

  /// Graceful drain: workers finish their in-flight stripe and claim no
  /// more; subsequent run_all() calls return zero-completed stats. Sticky.
  void request_stop() noexcept { stop_.store(true, std::memory_order_seq_cst); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_seq_cst);
  }

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return pool_.thread_count();
  }
  [[nodiscard]] const StoreServiceConfig& config() const noexcept {
    return config_;
  }

  /// Seed of stripe `stripe_index` — the same derivation RoutingService
  /// uses, so one master seed governs both frontends coherently.
  [[nodiscard]] static constexpr std::uint64_t stripe_seed_base(
      std::uint64_t seed, std::uint64_t stripe_index) noexcept {
    return util::splitmix64(seed ^
                            (0x9e3779b97f4a7c15ULL * (stripe_index + 1)));
  }

 private:
  struct Job {
    std::span<const store::Op> ops;
    std::span<store::OpResult> results;
    std::size_t stripe = 1;
    std::size_t stripe_count = 0;
    std::atomic<std::size_t> next_stripe{0};
    std::atomic<std::size_t> stripes_done{0};
    /// Slot-per-stripe, written by the completing worker only.
    std::vector<std::uint64_t> epoch_by_stripe;
  };

  void worker_loop(Job& job, std::size_t worker_index);

  ViewPublisher* publisher_;
  store::QuorumStore* store_;
  StoreServiceConfig config_;
  std::atomic<bool> stop_{false};
  util::ThreadPool pool_;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t workers_remaining_ = 0;
};

}  // namespace p2p::service
