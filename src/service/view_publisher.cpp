#include "service/view_publisher.h"

#include <algorithm>
#include <cassert>

#include "util/require.h"

namespace p2p::service {

ViewPublisher::ViewPublisher(failure::FailureView initial,
                             std::size_t max_readers)
    : writer_view_(std::move(initial)), slots_(max_readers) {
  util::require(max_readers >= 1, "ViewPublisher: max_readers must be >= 1");
  auto snap = std::make_unique<ViewSnapshot>(
      ViewSnapshot{writer_view_, writer_view_.epoch(), 0});
  latest_epoch_.store(snap->epoch, std::memory_order_seq_cst);
  head_.store(snap.release(), std::memory_order_seq_cst);
}

ViewPublisher::~ViewPublisher() {
#ifndef NDEBUG
  for (const Slot& slot : slots_) {
    assert(!slot.in_use.load(std::memory_order_acquire) &&
           "ViewPublisher destroyed while a Reader is still registered");
  }
#endif
  delete head_.load(std::memory_order_relaxed);
  // retired_ / free_pool_ unique_ptrs clean themselves up.
}

const ViewSnapshot* ViewPublisher::publish() {
  std::unique_ptr<ViewSnapshot> snap;
  {
    std::lock_guard lock(lists_mutex_);
    if (!free_pool_.empty()) {
      snap = std::move(free_pool_.back());
      free_pool_.pop_back();
    }
  }
  if (snap == nullptr) {
    snap = std::make_unique<ViewSnapshot>(ViewSnapshot{writer_view_, 0, 0});
  } else {
    // Copy-assignment reuses the pooled snapshot's bitset capacity: the
    // steady-state publish is a memcpy, not an allocation.
    snap->view = writer_view_;
  }
  snap->epoch = writer_view_.epoch();
  snap->sequence = sequence_.load(std::memory_order_relaxed) + 1;

  ViewSnapshot* published = snap.release();
  ViewSnapshot* old = head_.exchange(published, std::memory_order_seq_cst);
  // The retire stamp is taken *after* `old` left head_: any reader still
  // able to hold `old` announced a value strictly below it (see header).
  const std::uint64_t stamp =
      sequence_.fetch_add(1, std::memory_order_seq_cst) + 1;
  latest_epoch_.store(published->epoch, std::memory_order_seq_cst);
  std::size_t pending;
  std::size_t freed;
  {
    std::lock_guard lock(lists_mutex_);
    retired_.push_back(Retired{std::unique_ptr<ViewSnapshot>(old), stamp});
    freed = reclaim_locked();
    pending = retired_.size();
  }
  if (telem_recorder_.attached()) {
    telem_recorder_.add(telem_metrics_.publications);
    if (freed > 0) telem_recorder_.add(telem_metrics_.reclaimed, freed);
    telem_recorder_.set(telem_metrics_.latest_epoch, published->epoch);
    telem_recorder_.set(telem_metrics_.retired_pending, pending);
  }
  return published;
}

const ViewSnapshot* ViewPublisher::apply_and_publish(
    const failure::FailureDelta& delta) {
  writer_view_.apply(delta);
  return publish();
}

std::uint64_t ViewPublisher::min_announced() const noexcept {
  std::uint64_t min = kQuiescent;
  for (const Slot& slot : slots_) {
    // Unregistered slots announce kQuiescent, so no in_use check is needed.
    min = std::min(min, slot.announced.load(std::memory_order_seq_cst));
  }
  return min;
}

std::size_t ViewPublisher::reclaim_locked() {
  if (retired_.empty()) return 0;
  const std::uint64_t floor = min_announced();
  std::size_t freed = 0;
  auto keep = retired_.begin();
  for (auto it = retired_.begin(); it != retired_.end(); ++it) {
    if (it->stamp <= floor) {
      free_pool_.push_back(std::move(it->snapshot));
      ++freed;
    } else {
      *keep++ = std::move(*it);
    }
  }
  retired_.erase(keep, retired_.end());
  if (freed > 0) reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t ViewPublisher::reclaim() {
  std::lock_guard lock(lists_mutex_);
  return reclaim_locked();
}

Reader ViewPublisher::make_reader() {
  std::lock_guard lock(lists_mutex_);
  for (Slot& slot : slots_) {
    if (!slot.in_use.load(std::memory_order_relaxed)) {
      slot.in_use.store(true, std::memory_order_relaxed);
      slot.announced.store(kQuiescent, std::memory_order_seq_cst);
      return Reader(this, &slot);
    }
  }
  util::require(false, "ViewPublisher: all reader slots in use");
  return Reader();  // unreachable
}

std::uint64_t ViewPublisher::reclaimed() const noexcept {
  return reclaimed_.load(std::memory_order_relaxed);
}

std::size_t ViewPublisher::retired_pending() const {
  std::lock_guard lock(lists_mutex_);
  return retired_.size();
}

}  // namespace p2p::service
