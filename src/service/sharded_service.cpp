#include "service/sharded_service.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "failure/failure_model.h"
#include "util/require.h"
#include "util/rng.h"

namespace p2p::service {

ShardedRoutingService::ShardedRoutingService(const graph::BuildSpec& spec,
                                             ShardedConfig config) {
  NumaTopology topo = config.topology.domain_count() != 0
                          ? std::move(config.topology)
                          : NumaTopology::detect();
  const std::size_t shard_n = topo.domain_count();
  shards_.resize(shard_n);
  std::vector<std::exception_ptr> errors(shard_n);

  // Shard builds run on plain std::threads, never on a shared ThreadPool:
  // build_overlay(pool) must not be entered from inside another pool's task
  // (its wait_idle would deadlock), and a plain thread is also what lets
  // each shard's temporary build pool pin to its own domain so first-touch
  // page placement lands the graph on the shard's socket.
  std::vector<std::thread> builders;
  builders.reserve(shard_n);
  for (std::size_t k = 0; k < shard_n; ++k) {
    builders.emplace_back([&, k] {
      try {
        Shard& s = shards_[k];
        s.domain = topo.domains()[k];
        util::ThreadPool build_pool(s.domain.cpus);
        util::Rng rng(shard_seed(config.seed, k));
        s.graph = std::make_unique<graph::OverlayGraph>(
            graph::build_overlay(spec, rng, build_pool));
        failure::FailureView view =
            config.node_fail_p > 0.0
                ? failure::FailureView::with_node_failures(
                      *s.graph, config.node_fail_p, rng)
                : failure::FailureView::all_alive(*s.graph);
        s.publisher = std::make_unique<ViewPublisher>(std::move(view));
        ServiceConfig svc = config.service;
        svc.affinity = s.domain.cpus;
        svc.seed = shard_seed(config.seed, k);
        s.service = std::make_unique<RoutingService>(*s.publisher, svc);
      } catch (...) {
        errors[k] = std::current_exception();
      }
    });
  }
  for (std::thread& t : builders) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

std::size_t ShardedRoutingService::graph_memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.graph->memory_bytes();
  return total;
}

std::size_t ShardedRoutingService::node_count() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) total += s.graph->size();
  return total;
}

ServiceStats ShardedRoutingService::route_all(
    std::span<const core::Query> queries,
    std::span<core::RouteResult> results) {
  util::require(results.size() >= queries.size(),
                "ShardedRoutingService: results span shorter than queries");
  const std::size_t shard_n = shards_.size();
  const std::size_t per =
      queries.empty() ? 0 : (queries.size() + shard_n - 1) / shard_n;
  std::vector<ServiceStats> stats(shard_n);

  std::vector<std::thread> runners;
  runners.reserve(shard_n);
  for (std::size_t k = 0; k < shard_n; ++k) {
    const std::size_t lo = std::min(queries.size(), k * per);
    const std::size_t hi = std::min(queries.size(), lo + per);
    if (lo == hi) continue;
    runners.emplace_back([&, k, lo, hi] {
      stats[k] = shards_[k].service->route_all(
          queries.subspan(lo, hi - lo), results.subspan(lo, hi - lo));
    });
  }
  for (std::thread& t : runners) t.join();

  ServiceStats merged;
  double hop_sum = 0.0;
  bool have_epoch = false;
  for (const ServiceStats& s : stats) {
    merged.queries += s.queries;
    merged.routed += s.routed;
    merged.delivered += s.delivered;
    hop_sum += s.mean_hops_delivered * static_cast<double>(s.delivered);
    merged.stripes += s.stripes;
    if (s.stripes > 0) {
      if (!have_epoch) {
        merged.min_epoch = s.min_epoch;
        merged.max_epoch = s.max_epoch;
        have_epoch = true;
      } else {
        merged.min_epoch = std::min(merged.min_epoch, s.min_epoch);
        merged.max_epoch = std::max(merged.max_epoch, s.max_epoch);
      }
    }
    merged.staleness.insert(merged.staleness.end(), s.staleness.begin(),
                            s.staleness.end());
  }
  merged.mean_hops_delivered =
      merged.delivered == 0
          ? 0.0
          : hop_sum / static_cast<double>(merged.delivered);
  return merged;
}

}  // namespace p2p::service
