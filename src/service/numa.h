// NUMA topology discovery for the sharded routing service.
//
// A shard of ShardedRoutingService wants every byte it routes against —
// graph CSR, failure-view bitsets, snapshot pool — allocated and consumed on
// one socket, so detection answers exactly one question: which CPUs belong
// to which NUMA node. Linux publishes this as
// /sys/devices/system/node/node<k>/cpulist ("0-15,32-47" syntax); machines
// without the sysfs tree (containers with masked sysfs, non-Linux hosts)
// fall back to a single domain spanning every CPU, which degrades the
// sharded service to exactly the plain one-service behaviour.
//
// P2P_SHARDS=<k> overrides the detected domain count: k=1 forces the
// single-shard fallback anywhere, k>1 splits the detected CPUs round-robin
// into k synthetic domains — the way to exercise the multi-shard code path
// on a single-socket CI host.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace p2p::service {

/// One NUMA domain: its sysfs node id and the CPUs it owns.
struct NumaDomain {
  int id = 0;
  std::vector<int> cpus;
};

/// The machine's NUMA layout as the sharded service consumes it.
class NumaTopology {
 public:
  /// Reads /sys/devices/system/node; falls back to single() when the tree is
  /// absent or unreadable. Honours P2P_SHARDS (see file comment).
  [[nodiscard]] static NumaTopology detect();

  /// One domain holding CPUs [0, cpu_count); cpu_count 0 resolves to
  /// hardware concurrency (min 1).
  [[nodiscard]] static NumaTopology single(std::size_t cpu_count = 0);

  /// A topology with exactly `shards` synthetic domains over this one's
  /// CPUs: existing domains are kept when counts match, otherwise all CPUs
  /// are dealt round-robin. Precondition: shards >= 1.
  [[nodiscard]] NumaTopology resharded(std::size_t shards) const;

  [[nodiscard]] const std::vector<NumaDomain>& domains() const noexcept {
    return domains_;
  }
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }
  [[nodiscard]] std::size_t cpu_count() const noexcept;

 private:
  std::vector<NumaDomain> domains_;
};

namespace detail {

/// Parses the kernel's cpulist syntax ("0-3,8,10-11") into CPU ids, sorted
/// ascending. Malformed input yields an empty list (callers treat that as
/// "node absent"). Exposed for tests.
[[nodiscard]] std::vector<int> parse_cpulist(const std::string& text);

}  // namespace detail

}  // namespace p2p::service
