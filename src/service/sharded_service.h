// NUMA-sharded scale-out of the routing service: one (overlay, publisher,
// service) column per detected socket.
//
// The single RoutingService already saturates one socket's memory channels —
// its hot data (CSR headers, encoded streams, liveness bitsets, snapshot
// pool) is one shared working set, and on a multi-socket box remote-socket
// traffic dominates once the graph outgrows the last-level cache. At the
// 1e7–1e8 node scale the answer is sharding, not sharing: each NUMA domain
// gets its *own* overlay built by workers pinned to that domain (so
// first-touch lands every byte on the local socket), its own ViewPublisher,
// and its own RoutingService whose worker pool is pinned to the domain's
// CPUs — snapshot pins, stripe claims and per-hop loads never cross the
// interconnect.
//
// Query hand-off is partitioned shard-first, then striped: route_all() cuts
// the query span into shard_count() contiguous blocks (block k to shard k),
// and each shard's service stripes its block exactly as the plain service
// does. Every shard routes concurrently on its own pool; the call returns
// the merged stats. Results are deterministic per shard — shard k always
// builds from substream shard_seed(seed, k) and routes its block with the
// plain service's stripe-seed contract — so a 1-shard sharded service is
// bit-identical to a plain service over the same spec and seed (pinned by
// tests/sharded_service_test.cpp).
//
// Topology comes from service::NumaTopology (sysfs; single-domain fallback;
// P2P_SHARDS override), so on a 1-socket CI host this degrades to exactly
// one plain service behind the sharded interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph_builder.h"
#include "service/numa.h"
#include "service/routing_service.h"
#include "service/view_publisher.h"

namespace p2p::service {

struct ShardedConfig {
  /// Per-shard service shape; `affinity`/`workers` are overridden per shard
  /// with the shard's pinned CPU list.
  ServiceConfig service;
  /// Master seed: shard k builds and routes from shard_seed(seed, k).
  std::uint64_t seed = 1;
  /// Each shard's nodes dead independently with this probability (0 = the
  /// all-alive view the scale sweeps route against).
  double node_fail_p = 0.0;
  /// Shard layout; default-constructed (empty) means NumaTopology::detect().
  NumaTopology topology;
};

/// One socket's column of the sharded service.
struct Shard {
  NumaDomain domain;
  /// unique_ptr: the FailureView inside `publisher` holds the graph's
  /// address, so the graph must never relocate.
  std::unique_ptr<graph::OverlayGraph> graph;
  std::unique_ptr<ViewPublisher> publisher;
  std::unique_ptr<RoutingService> service;
};

class ShardedRoutingService {
 public:
  /// Builds shard_count() overlays per `spec` concurrently — each on a
  /// temporary thread pool pinned to its domain's CPUs, from the shard's own
  /// seed substream — then stands up one publisher + service per shard.
  /// Throws what build_overlay/RoutingService would (the first shard's error
  /// is rethrown after every build thread joins).
  ShardedRoutingService(const graph::BuildSpec& spec, ShardedConfig config);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Shard& shard(std::size_t k) const noexcept {
    return shards_[k];
  }

  /// Sum of every shard graph's resident bytes (OverlayGraph::memory_bytes).
  [[nodiscard]] std::size_t graph_memory_bytes() const noexcept;
  /// Total nodes across shards.
  [[nodiscard]] std::size_t node_count() const noexcept;

  /// Routes queries[i] into results[i]: the span is cut into shard_count()
  /// contiguous blocks, block k routed by shard k against its own overlay
  /// (query node ids are per-shard ids; every shard's space has the same
  /// grid). Blocks run concurrently; returns the merged stats (staleness
  /// concatenated in shard order).
  ServiceStats route_all(std::span<const core::Query> queries,
                         std::span<core::RouteResult> results);

  /// Build/route seed of shard k under master seed `seed`.
  [[nodiscard]] static constexpr std::uint64_t shard_seed(
      std::uint64_t seed, std::size_t shard) noexcept {
    return util::splitmix64(seed ^ (0xd1b54a32d192ed03ULL * (shard + 1)));
  }

 private:
  std::vector<Shard> shards_;
};

}  // namespace p2p::service
